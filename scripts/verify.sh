#!/usr/bin/env bash
# verify.sh — the single gate every SEBDB change must pass.
#
# Runs formatting, go vet, the project's own sebdb-vet analyzers, the
# build, the full test suite, and a race pass over the short tests.
# Everything is stdlib Go; no network or external tools needed.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l . | grep -v '^internal/lint/testdata/' || true)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== sebdb-vet =="
go run ./cmd/sebdb-vet ./...

echo "== sebdb-vet self-test (fixture expected-findings diff) =="
# The lint fixtures seed one violation per analyzer (lockio/trusttaint/
# rawlog included); these tests diff sebdb-vet's findings against the
# fixtures' want-comments and the CLI golden file, so analyzer
# regressions fail the gate like any other bug.
go test -count=1 ./internal/lint/... ./cmd/sebdb-vet

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

echo "== go test -race -short =="
go test -race -short ./...

echo "== obs race pass =="
go test -race ./internal/obs/... ./internal/parallel/...

echo "== faultfs crash matrix (-race) =="
go test -race -run 'Injector|CrashMatrix|RestartEquivalence' \
    ./internal/faultfs ./internal/snapshot ./internal/core

echo "== write pipeline stress (-race) =="
go test -race -run 'CommitPipeline|GroupFsync|RequireSigs' \
    ./internal/core ./internal/storage \
    ./internal/consensus/kafka ./internal/consensus/pbft

echo "== read view stress (-race) =="
go test -race -run 'TestView|TestCreateRollsBack|TestCreateKept|TestDeployContractRollsBack' \
    ./internal/core

echo "== metrics + flight-recorder endpoint smoke =="
# TestTraceLogEndpoints scrapes /debug/traces (recent + slow rings,
# filters) and /debug/log over a live engine; TestMetricsEndpoints
# covers /metrics, /debug/vars and the nil recorder/logger paths.
go test -race -run 'TestMetricsEndpoints|TestTraceLogEndpoints' ./cmd/sebdb-server

echo "== storage tier stress (-race) =="
# Mmap-vs-pread byte equivalence, the recompression crash matrix,
# sharded-cache stripe semantics, and readers racing recompression and
# commits across the storage, cache and core layers.
go test -race -run 'Tier|Compress|Sharded|HandleCache|MmapFallback' \
    ./internal/storage ./internal/cache ./internal/core

echo "== replication stress (-race) =="
# Follower tail-verify-apply vs concurrent pushes and reads, cursor
# resume across restarts, tampered/forged push rejection, and the
# client's stream/retry/timeout plumbing underneath it all.
go test -race -run 'Replica|Follower|Tampered|Forged|Stream|Call' \
    ./internal/replica ./internal/network ./internal/thinclient

echo "== bchainbench -json smoke =="
json_out=$(mktemp)
trap 'rm -f "$json_out"' EXIT
go run ./cmd/bchainbench -fig 12 -scale 0.01 -json "$json_out" >/dev/null
if ! grep -q '"figure"' "$json_out"; then
    echo "bchainbench -json produced no figure data" >&2
    exit 1
fi
go run ./cmd/bchainbench -fig 7 -scale 0.01 -json "$json_out" >/dev/null
if ! grep -q '"figure"' "$json_out"; then
    echo "bchainbench -fig 7 -json produced no figure data" >&2
    exit 1
fi
go run ./cmd/bchainbench -fig readview -scale 0.01 -json "$json_out" >/dev/null
if ! grep -q '"figure"' "$json_out"; then
    echo "bchainbench -fig readview -json produced no figure data" >&2
    exit 1
fi
go run ./cmd/bchainbench -fig replicas -scale 0.01 -json "$json_out" >/dev/null
if ! grep -q '"figure"' "$json_out"; then
    echo "bchainbench -fig replicas -json produced no figure data" >&2
    exit 1
fi
# fig storage errors out internally if the four tier variants' scan
# digests diverge, so this smoke doubles as a cross-tier equivalence
# check on a real chain.
go run ./cmd/bchainbench -fig storage -scale 0.01 -json "$json_out" >/dev/null
if ! grep -q '"figure"' "$json_out"; then
    echo "bchainbench -fig storage -json produced no figure data" >&2
    exit 1
fi

echo "verify: all gates passed"
