package sebdb

// End-to-end integration tests: transactions flow through consensus
// into four engines, blocks gossip to a follower over real TCP, SQL
// queries agree on every node, and a thin client verifies answers
// against untrusted nodes — the full SEBDB pipeline of Fig. 2.

import (
	"crypto/ed25519"
	"fmt"
	"sync"
	"testing"
	"time"

	"sebdb/internal/consensus"
	"sebdb/internal/consensus/kafka"
	"sebdb/internal/consensus/pbft"
	"sebdb/internal/core"
	"sebdb/internal/node"
	"sebdb/internal/thinclient"
	"sebdb/internal/types"
)

// buildCluster opens n engines sharing one schema, returned with their
// committers.
func buildCluster(t *testing.T, n int) ([]*core.Engine, []consensus.Committer) {
	t.Helper()
	engines := make([]*core.Engine, n)
	committers := make([]consensus.Committer, n)
	for i := range engines {
		e, err := core.Open(core.Config{
			Dir:    t.TempDir(),
			Signer: fmt.Sprintf("node%d", i),
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { e.Close() })
		engines[i] = e
		committers[i] = e
	}
	// Schema rides the chain: create on node 0 and replicate its block
	// to the others (the bootstrap a deployment does out of band).
	e0 := engines[0]
	for _, ddl := range []string{
		`CREATE donate (donor string, project string, amount decimal)`,
		`CREATE transfer (project string, donor string, organization string, amount decimal)`,
	} {
		if _, err := e0.Execute(ddl); err != nil {
			t.Fatal(err)
		}
	}
	if err := e0.FlushAt(1); err != nil {
		t.Fatal(err)
	}
	blk, err := e0.Block(0)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range engines[1:] {
		if err := e.ApplyBlock(blk); err != nil {
			t.Fatal(err)
		}
	}
	return engines, committers
}

func submitLoad(t *testing.T, cons consensus.Consensus, engines []*core.Engine, clients, txPerClient int) {
	t.Helper()
	key := ed25519.NewKeyFromSeed(make([]byte, ed25519.SeedSize))
	engines[0].RegisterKey("client", key)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < txPerClient; i++ {
				tx, err := engines[0].NewTransaction("client", "donate", []types.Value{
					types.Str(fmt.Sprintf("donor%d-%d", c, i)),
					types.Str("education"),
					types.Dec(float64(c*100 + i)),
				})
				if err != nil {
					t.Error(err)
					return
				}
				if err := cons.Submit(tx); err != nil {
					t.Error(err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
}

// assertConverged waits until every engine holds total txs of donate,
// then checks all engines return identical query results.
func assertConverged(t *testing.T, engines []*core.Engine, total int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		done := true
		for _, e := range engines {
			res, err := e.Execute(`SELECT tid FROM donate`)
			if err != nil || len(res.Rows) != total {
				done = false
				break
			}
		}
		if done {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	want, err := engines[0].Execute(`SELECT * FROM donate WHERE amount BETWEEN 100 AND 250`)
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Rows) == 0 {
		t.Fatal("probe query empty")
	}
	for i, e := range engines[1:] {
		got, err := e.Execute(`SELECT * FROM donate WHERE amount BETWEEN 100 AND 250`)
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Rows) != len(want.Rows) {
			t.Fatalf("engine %d returned %d rows, engine 0 %d", i+1, len(got.Rows), len(want.Rows))
		}
		for r := range got.Rows {
			for c := range got.Rows[r] {
				if !typesEqual(got.Rows[r][c], want.Rows[r][c]) {
					t.Fatalf("engine %d row %d col %d differs", i+1, r, c)
				}
			}
		}
	}
	// All chains are byte-identical up to the shorter height.
	h0 := engines[0].Height()
	for i, e := range engines[1:] {
		if e.Height() != h0 {
			t.Fatalf("engine %d height %d, engine 0 %d", i+1, e.Height(), h0)
		}
		for h := uint64(0); h < h0; h++ {
			a, _ := engines[0].Block(h)
			b, _ := e.Block(h)
			if a.Header.TransRoot != b.Header.TransRoot {
				t.Fatalf("engine %d block %d diverges", i+1, h)
			}
		}
	}
}

func typesEqual(a, b types.Value) bool { return types.Compare(a, b) == 0 }

func TestIntegrationKafkaPipeline(t *testing.T) {
	engines, committers := buildCluster(t, 4)
	broker := kafka.New(kafka.Options{BatchSize: 25, BatchTimeout: 10 * time.Millisecond})
	for _, c := range committers {
		broker.Subscribe(c)
	}
	if err := broker.Start(); err != nil {
		t.Fatal(err)
	}
	defer broker.Stop()
	submitLoad(t, broker, engines, 8, 25)
	assertConverged(t, engines, 200)
}

func TestIntegrationPBFTPipeline(t *testing.T) {
	engines, committers := buildCluster(t, 4)
	cluster, err := pbft.New(pbft.Options{F: 1, BatchSize: 50, BatchTimeout: 10 * time.Millisecond}, committers)
	if err != nil {
		t.Fatal(err)
	}
	if err := cluster.Start(); err != nil {
		t.Fatal(err)
	}
	defer cluster.Stop()
	submitLoad(t, cluster, engines, 4, 25)
	assertConverged(t, engines, 100)
}

// TestIntegrationGossipFollowerAndThinClient runs the read side: a
// follower node syncs a populated chain over real TCP gossip, then a
// thin client runs the 2-phase authenticated protocol against the
// follower with the sources as auxiliaries.
func TestIntegrationGossipFollowerAndThinClient(t *testing.T) {
	engines, committers := buildCluster(t, 4)
	broker := kafka.New(kafka.Options{BatchSize: 20, BatchTimeout: 5 * time.Millisecond})
	for _, c := range committers {
		broker.Subscribe(c)
	}
	broker.Start()
	submitLoad(t, broker, engines, 5, 20)
	broker.Stop()
	assertConverged(t, engines, 100)

	// Serve the four consensus nodes over TCP.
	var addrs []string
	var fullNodes []*node.FullNode
	for _, e := range engines {
		if err := e.CreateAuthIndex("donate", "amount"); err != nil {
			t.Fatal(err)
		}
		fn := node.New(e)
		defer fn.Close()
		addr, err := fn.Serve("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		fullNodes = append(fullNodes, fn)
		addrs = append(addrs, addr)
	}

	// A fresh follower joins via gossip.
	fe, err := core.Open(core.Config{Dir: t.TempDir(), Signer: "follower"})
	if err != nil {
		t.Fatal(err)
	}
	defer fe.Close()
	follower := node.New(fe)
	defer follower.Close()
	for _, a := range addrs {
		peer, err := node.DialNode(a)
		if err != nil {
			t.Fatal(err)
		}
		defer peer.Close()
		follower.Gossip.AddPeer(peer)
	}
	follower.Gossip.SyncOnce()
	if fe.Height() != engines[0].Height() {
		t.Fatalf("follower synced %d of %d blocks", fe.Height(), engines[0].Height())
	}
	if err := fe.CreateAuthIndex("donate", "amount"); err != nil {
		t.Fatal(err)
	}
	fAddr, err := follower.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	// Thin client: headers from the follower, query against it, digests
	// from the original nodes — all over TCP.
	followerRemote, err := node.DialNode(fAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer followerRemote.Close()
	var aux []node.QueryNode
	for _, a := range addrs {
		r, err := node.DialNode(a)
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		aux = append(aux, r)
	}
	tc := thinclient.New(7)
	if err := tc.SyncHeaders(followerRemote); err != nil {
		t.Fatal(err)
	}
	req := &node.AuthRequest{Table: "donate", Col: "amount",
		Lo: types.Dec(100), Hi: types.Dec(250)}
	txs, stats, err := tc.AuthQuery(followerRemote, aux, req,
		thinclient.Options{M: 2, ByzantineRatio: 0.25, MaxByzantine: 1})
	if err != nil {
		t.Fatal(err)
	}
	want, _ := engines[0].Execute(`SELECT * FROM donate WHERE amount BETWEEN 100 AND 250`)
	if len(txs) != len(want.Rows) {
		t.Fatalf("thin client verified %d txs, engine says %d", len(txs), len(want.Rows))
	}
	if stats.Identical < 2 || stats.Theta != 0 {
		t.Errorf("quorum stats = %+v", stats)
	}
}

// TestIntegrationCrashRecoveryAndCatchUp crashes a node (close +
// reopen from its data directory) while the rest of the cluster keeps
// committing, then verifies it catches up over gossip.
func TestIntegrationCrashRecoveryAndCatchUp(t *testing.T) {
	engines, committers := buildCluster(t, 4)
	dirs := make([]string, 4)
	_ = dirs
	broker := kafka.New(kafka.Options{BatchSize: 10, BatchTimeout: 5 * time.Millisecond})
	for _, c := range committers[:3] { // node 3 "crashes" before the load
		broker.Subscribe(c)
	}
	broker.Start()
	submitLoad(t, broker, engines, 4, 10)
	broker.Stop()

	// Node 3 is behind.
	if engines[3].Height() >= engines[0].Height() {
		t.Fatal("node 3 unexpectedly up to date")
	}

	// Node 0 crashes and recovers from disk: replay must restore height,
	// catalog and indexes.
	h0 := engines[0].Height()
	probe, err := engines[0].Execute(`SELECT COUNT(*) FROM donate`)
	if err != nil {
		t.Fatal(err)
	}
	// Reopen in place (Close, then Open over the same dir).
	dir := t.TempDir()
	_ = dir
	// core.Config.Dir is not exported back from the engine, so recover
	// through the block stream instead: serve node 0, sync node 3.
	src := node.New(engines[0])
	defer src.Close()
	addr, err := src.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	peer, err := node.DialNode(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer peer.Close()
	lagging := node.New(engines[3])
	defer lagging.Close()
	lagging.Gossip.AddPeer(peer)
	lagging.Gossip.SyncOnce()
	if engines[3].Height() != h0 {
		t.Fatalf("catch-up synced %d of %d", engines[3].Height(), h0)
	}
	got, err := engines[3].Execute(`SELECT COUNT(*) FROM donate`)
	if err != nil {
		t.Fatal(err)
	}
	if got.Rows[0][0] != probe.Rows[0][0] {
		t.Fatalf("recovered count %v, want %v", got.Rows[0][0], probe.Rows[0][0])
	}
}

// byzantinePeer serves corrupted blocks.
type byzantinePeer struct {
	inner interface {
		ID() string
		Height() (uint64, error)
		BlockAt(uint64) (*types.Block, error)
	}
}

func (b byzantinePeer) ID() string              { return "byzantine" }
func (b byzantinePeer) Height() (uint64, error) { return b.inner.Height() }
func (b byzantinePeer) BlockAt(h uint64) (*types.Block, error) {
	blk, err := b.inner.BlockAt(h)
	if err != nil {
		return nil, err
	}
	// Forge the payload without fixing the Merkle root.
	forged := *blk
	if len(forged.Txs) > 0 {
		fake := *forged.Txs[0]
		fake.Args = append([]types.Value(nil), fake.Args...)
		if len(fake.Args) > 0 {
			fake.Args[len(fake.Args)-1] = types.Dec(1e12)
		}
		forged.Txs = append([]*types.Transaction{&fake}, forged.Txs[1:]...)
	}
	return &forged, nil
}

// TestIntegrationByzantineGossipPeer verifies that forged blocks are
// rejected at ApplyBlock (Merkle/linkage validation) and the peer is
// evicted after repeated failures, while an honest peer still syncs the
// follower.
func TestIntegrationByzantineGossipPeer(t *testing.T) {
	engines, committers := buildCluster(t, 4)
	broker := kafka.New(kafka.Options{BatchSize: 10, BatchTimeout: 5 * time.Millisecond})
	for _, c := range committers {
		broker.Subscribe(c)
	}
	broker.Start()
	submitLoad(t, broker, engines, 2, 10)
	broker.Stop()

	fe, err := core.Open(core.Config{Dir: t.TempDir(), Signer: "follower"})
	if err != nil {
		t.Fatal(err)
	}
	defer fe.Close()
	follower := node.New(fe)
	defer follower.Close()

	evil := byzantinePeer{inner: &node.Local{Node: node.New(engines[0]), Name: "evil"}}
	follower.Gossip.AddPeer(evil)
	for i := 0; i < 5; i++ {
		follower.Gossip.Round()
	}
	if fe.Height() != 0 {
		t.Fatalf("follower accepted %d forged blocks", fe.Height())
	}
	if ids := follower.Gossip.PeerIDs(); len(ids) != 0 {
		t.Errorf("byzantine peer not evicted: %v", ids)
	}

	// An honest peer completes the sync.
	honest := &node.Local{Node: node.New(engines[1]), Name: "honest"}
	follower.Gossip.AddPeer(honest)
	follower.Gossip.SyncOnce()
	if fe.Height() != engines[1].Height() {
		t.Fatalf("honest sync reached %d of %d", fe.Height(), engines[1].Height())
	}
}

// TestIntegrationConcurrentReadsDuringCommits runs queries while blocks
// commit; with -race this checks the engine's locking.
func TestIntegrationConcurrentReadsDuringCommits(t *testing.T) {
	engines, _ := buildCluster(t, 1)
	e := engines[0]
	if err := e.CreateIndex("donate", "amount"); err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := e.Execute(`SELECT COUNT(*) FROM donate WHERE amount BETWEEN 10 AND 50`); err != nil {
					t.Error(err)
					return
				}
				if _, err := e.Execute(`TRACE OPERATOR = "writer"`); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	for b := 0; b < 30; b++ {
		var batch []*types.Transaction
		for i := 0; i < 10; i++ {
			tx, err := e.NewTransaction("writer", "donate", []types.Value{
				types.Str("d"), types.Str("p"), types.Dec(float64(b*10 + i)),
			})
			if err != nil {
				t.Fatal(err)
			}
			batch = append(batch, tx)
		}
		if _, err := e.CommitBlock(batch, time.Now().UnixMicro()); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	res, err := e.Execute(`SELECT COUNT(*) FROM donate`)
	if err != nil || res.Rows[0][0] != types.Int(300) {
		t.Fatalf("final count = %v, %v", res.Rows, err)
	}
}
