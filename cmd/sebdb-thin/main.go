// Command sebdb-thin is a thin client (paper §VI): it stores only block
// headers and verifies query answers from untrusted full nodes through
// the two-phase authenticated protocol — a verification object from one
// node, snapshot digests from sampled auxiliary nodes.
//
// Usage:
//
//	sebdb-thin -node 127.0.0.1:7070 [-aux host:port]... \
//	    [-replica host:port]... \
//	    -table donate -col amount -lo 100 -hi 250 \
//	    [-m 2] [-p 0.25] [-max 1]
//
// The queried column must have an authenticated index on the nodes
// (sebdb-server -auth table.col). System columns use -table "" (e.g.
// -col senid -lo org1 -hi org1 for authenticated tracking).
//
// With -replica (repeatable) the phase-one verification object comes
// from a read replica and every other node — the -node leader included —
// joins the phase-two auxiliary set, so VO generation scales with the
// fleet while a lying replica still cannot assemble a digest quorum.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"sebdb/internal/node"
	"sebdb/internal/obs"
	"sebdb/internal/thinclient"
	"sebdb/internal/types"
)

type listFlag []string

// String renders the accumulated values for flag's usage output.
func (l *listFlag) String() string { return strings.Join(*l, ",") }

// Set appends one occurrence of the repeatable flag.
func (l *listFlag) Set(v string) error {
	*l = append(*l, v)
	return nil
}

// parseBound turns a CLI bound into a typed value: numbers become
// decimals, everything else strings.
func parseBound(s string) types.Value {
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return types.Dec(f)
	}
	return types.Str(s)
}

func main() {
	nodeAddr := flag.String("node", "", "full node to query")
	table := flag.String("table", "", "on-chain table (empty = system column)")
	col := flag.String("col", "", "indexed column")
	lo := flag.String("lo", "", "range lower bound (inclusive)")
	hi := flag.String("hi", "", "range upper bound (inclusive)")
	m := flag.Int("m", 0, "identical digests required (default majority)")
	p := flag.Float64("p", 0.25, "assumed Byzantine ratio for the risk report")
	maxByz := flag.Int("max", 1, "maximum Byzantine nodes for the risk report")
	var auxAddrs, replicaAddrs listFlag
	flag.Var(&auxAddrs, "aux", "auxiliary full node (repeatable)")
	flag.Var(&replicaAddrs, "replica", "read replica; serves the phase-one VO while the leader joins the auxiliaries (repeatable)")
	flag.Parse()

	log := obs.NewLogger(obs.Default, os.Stderr, obs.LevelInfo).With("thin")

	if *nodeAddr == "" || *col == "" || *lo == "" || *hi == "" {
		log.Error("need -node, -col, -lo and -hi (see -h)")
		os.Exit(2)
	}

	full, err := node.DialNode(*nodeAddr)
	if err != nil {
		log.Error("node dial failed", "node", *nodeAddr, "err", err)
		os.Exit(1)
	}
	defer full.Close() //sebdb:ignore-err node teardown at process exit
	var aux []node.QueryNode
	for _, a := range auxAddrs {
		r, err := node.DialNode(a)
		if err != nil {
			log.Error("aux dial failed", "aux", a, "err", err)
			os.Exit(1)
		}
		defer r.Close() //sebdb:ignore-err connection teardown at process exit
		aux = append(aux, r)
	}
	phase1 := node.QueryNode(full)
	if len(replicaAddrs) > 0 {
		var reps []node.QueryNode
		for _, a := range replicaAddrs {
			r, err := node.DialNode(a)
			if err != nil {
				log.Error("replica dial failed", "replica", a, "err", err)
				os.Exit(1)
			}
			defer r.Close() //sebdb:ignore-err connection teardown at process exit
			reps = append(reps, r)
		}
		router := thinclient.NewRouter(full, reps...)
		var routed []node.QueryNode
		phase1, routed = router.AuthTargets()
		aux = append(aux, routed...)
	}
	if len(aux) == 0 {
		log.Warn("no -aux nodes; the answer's snapshot digest is unconfirmed")
		aux = []node.QueryNode{full} // degenerate: self-confirmation
	}

	tc := thinclient.New(time.Now().UnixNano())
	if err := tc.SyncHeaders(full); err != nil {
		log.Error("header sync failed", "err", err)
		os.Exit(1)
	}
	fmt.Printf("synced %d block headers\n", tc.Height())

	req := &node.AuthRequest{
		Table: *table, Col: *col,
		Lo: parseBound(*lo), Hi: parseBound(*hi),
	}
	start := time.Now()
	txs, stats, err := tc.AuthQuery(phase1, aux, req, thinclient.Options{
		M: *m, ByzantineRatio: *p, MaxByzantine: *maxByz,
	})
	if err != nil {
		log.Error("authenticated query failed", "err", err)
		os.Exit(1)
	}
	fmt.Printf("verified %d transactions in %v (VO %d bytes over %d blocks; %d/%d digests matched; wrong-digest probability %.3g)\n",
		len(txs), time.Since(start).Round(time.Millisecond),
		stats.VOSize, stats.BlocksInAnswer, stats.Identical, stats.AuxAsked, stats.Theta)
	for i, tx := range txs {
		if i == 20 {
			fmt.Printf("  ... and %d more\n", len(txs)-20)
			break
		}
		args := make([]string, len(tx.Args))
		for j, a := range tx.Args {
			args[j] = a.String()
		}
		fmt.Printf("  tid=%d ts=%d sender=%s table=%s args=[%s]\n",
			tx.Tid, tx.Ts, tx.SenID, tx.Tname, strings.Join(args, ", "))
	}
}
