// Command sebdb-cli is an interactive SQL-like shell for SEBDB. It
// speaks to a running sebdb-server (-connect) or opens a local data
// directory directly (-dir), and accepts the full language of Table II:
// CREATE, INSERT, SELECT (with WHERE / BETWEEN / WINDOW), TRACE, joins
// (including onchain./offchain. qualified) and GET BLOCK.
//
// Usage:
//
//	sebdb-cli -dir ./sebdb-data            # embedded engine
//	sebdb-cli -connect 127.0.0.1:7070      # remote node
//	sebdb-cli -connect 127.0.0.1:7070 \
//	    -replica 127.0.0.1:7071 -replica 127.0.0.1:7072
//	echo 'SELECT * FROM donate' | sebdb-cli -dir ./data
//
// With -replica (repeatable) reads (SELECT/TRACE/EXPLAIN/GET BLOCK/SHOW
// TRACES) round-robin over the replicas, falling back to the -connect
// leader when a replica is unreachable; writes always go to the leader.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"sebdb/internal/core"
	"sebdb/internal/node"
	"sebdb/internal/thinclient"
)

// executor abstracts local vs remote execution.
type executor func(sql string) (*core.Result, error)

// replicaList collects repeatable -replica flags.
type replicaList []string

// String renders the accumulated values for flag's usage output.
func (l *replicaList) String() string { return strings.Join(*l, ",") }

// Set appends one occurrence of the repeatable flag.
func (l *replicaList) Set(v string) error {
	*l = append(*l, v)
	return nil
}

func main() {
	dir := flag.String("dir", "", "local data directory (embedded mode)")
	connect := flag.String("connect", "", "remote node address (the leader when replicas are given)")
	callTimeout := flag.Duration("call-timeout", 10*time.Second, "deadline per request/response exchange (0 = none)")
	var replicas replicaList
	flag.Var(&replicas, "replica", "read replica address; reads round-robin over replicas with leader fallback (repeatable)")
	flag.Parse()

	var run executor
	switch {
	case *connect != "":
		remote, err := node.DialNode(*connect)
		if err != nil {
			fmt.Fprintln(os.Stderr, "connect:", err)
			os.Exit(1)
		}
		defer remote.Close() //sebdb:ignore-err connection teardown at process exit
		remote.TuneCalls(*callTimeout, 1, 100*time.Millisecond)
		if len(replicas) == 0 {
			run = remote.SQL
			break
		}
		fleet := make([]node.QueryNode, 0, len(replicas))
		for _, addr := range replicas {
			rep, err := node.DialNode(addr)
			if err != nil {
				// The router falls back to the leader for any read a
				// replica cannot serve; a dead replica at startup just
				// shrinks the fleet.
				fmt.Fprintln(os.Stderr, "replica unreachable, skipping:", addr, err)
				continue
			}
			defer rep.Close() //sebdb:ignore-err connection teardown at process exit
			rep.TuneCalls(*callTimeout, 1, 100*time.Millisecond)
			fleet = append(fleet, rep)
		}
		run = thinclient.NewRouter(remote, fleet...).SQL
	case *dir != "":
		engine, err := core.Open(core.Config{Dir: *dir})
		if err != nil {
			fmt.Fprintln(os.Stderr, "open:", err)
			os.Exit(1)
		}
		defer func() {
			if err := engine.Flush(); err != nil {
				fmt.Fprintln(os.Stderr, "flush:", err)
			}
			if err := engine.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "close:", err)
			}
		}()
		run = func(sql string) (*core.Result, error) { return engine.Execute(sql) }
	default:
		fmt.Fprintln(os.Stderr, "need -dir or -connect")
		os.Exit(2)
	}

	interactive := isTerminal()
	if interactive {
		fmt.Println("SEBDB shell — SQL-like statements, \\q to quit")
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		if interactive {
			fmt.Print("sebdb> ")
		}
		if !sc.Scan() {
			break
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if line == `\q` || strings.EqualFold(line, "quit") || strings.EqualFold(line, "exit") {
			break
		}
		res, err := run(line)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			continue
		}
		printResult(res)
	}
}

func printResult(res *core.Result) {
	widths := make([]int, len(res.Columns))
	for i, c := range res.Columns {
		widths[i] = len(c)
	}
	rendered := make([][]string, len(res.Rows))
	for r, row := range res.Rows {
		rendered[r] = make([]string, len(row))
		for i, v := range row {
			s := v.String()
			rendered[r][i] = s
			if i < len(widths) && len(s) > widths[i] {
				widths[i] = len(s)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Println(strings.Join(parts, " | "))
	}
	line(res.Columns)
	seps := make([]string, len(res.Columns))
	for i := range seps {
		seps[i] = strings.Repeat("-", widths[i])
	}
	line(seps)
	for _, row := range rendered {
		line(row)
	}
	fmt.Printf("(%d rows)\n", len(res.Rows))
}

func isTerminal() bool {
	fi, err := os.Stdin.Stat()
	return err == nil && fi.Mode()&os.ModeCharDevice != 0
}
