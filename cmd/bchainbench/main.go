// Command bchainbench regenerates the paper's evaluation figures
// (Figs. 7-22) using the BChainBench workload (Table II). Each figure
// prints as a table of the same series the paper plots.
//
// Usage:
//
//	bchainbench [-fig N|NAME] [-scale S] [-dir DIR] [-workers W] \
//	    [-json PATH] [-trace-sample N]
//
//	-fig F     regenerate only figure F: a number (7..27) or a name —
//	           "parallel" (23, the read-pipeline scaling sweep),
//	           "recovery" (24, the checkpoint restart/fast-sync sweep),
//	           "readview" (25, read throughput through the
//	           height-pinned views while commits run), "replicas"
//	           (26, aggregate read throughput and lag across a
//	           streaming-replication fleet) or "storage" (27, the
//	           tiered read path: pread vs mmap over plain vs
//	           recompressed segments); default all
//	-scale S   dataset scale relative to paper sizes (default 0.05;
//	           1.0 loads paper-scale datasets and can take a while)
//	-dir DIR   scratch directory for datasets (default a temp dir;
//	           reusing a directory reuses its datasets across runs)
//	-workers W upper bound of figure 23's worker sweep and the commit
//	           pipeline / signature-check parallelism of figure 7
//	           (default GOMAXPROCS); "-fig 7 -workers 1" vs
//	           "-fig 7 -workers 4" compares the serial and staged
//	           write paths
//	-json PATH also write the generated tables as a JSON array of
//	           {figure, title, x, series, values, quantiles} objects;
//	           quantiles carries each latency histogram's p50/p90/p99
//	-trace-sample N
//	           run the benchmark engines under the statement flight
//	           recorder, tracing one statement in every N (0 = off);
//	           "-fig 23" vs "-fig 23 -trace-sample 1" prices the
//	           recorder's overhead
package main

import (
	"flag"
	"fmt"
	"os"

	"sebdb/internal/bench"
)

func main() {
	fig := flag.String("fig", "", `figure number (7-27) or name ("parallel", "recovery", "readview", "replicas", "storage"); empty = all`)
	scale := flag.Float64("scale", 0.05, "dataset scale relative to the paper")
	dir := flag.String("dir", "", "scratch directory for datasets")
	workers := flag.Int("workers", 0, "worker sweep bound for figure 23 and commit-pipeline workers for figure 7 (0 = GOMAXPROCS)")
	jsonPath := flag.String("json", "", "also write results as JSON to this file")
	traceSample := flag.Int("trace-sample", 0, "run benchmark engines under the flight recorder, tracing one statement in N (0 = recorder off); compare -fig 23 with and without to price the recorder")
	flag.Parse()
	if *workers > 0 {
		bench.MaxWorkers = *workers
	}
	bench.TraceSample = *traceSample

	scratch := *dir
	if scratch == "" {
		var err error
		scratch, err = os.MkdirTemp("", "bchainbench-*")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer os.RemoveAll(scratch) //sebdb:ignore-err scratch directory removal at process exit
	}

	nums := make([]int, 0, len(bench.Figures))
	if *fig == "" {
		for _, f := range bench.Figures {
			nums = append(nums, f.Num)
		}
	} else {
		num, err := bench.FigureNum(*fig)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bchainbench:", err)
			os.Exit(2)
		}
		nums = append(nums, num)
	}

	var results []bench.FigureJSON
	for _, num := range nums {
		t, err := bench.FigureTable(num, scratch, *scale)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bchainbench:", err)
			os.Exit(1)
		}
		t.Fprint(os.Stdout)
		if *jsonPath != "" {
			fj := bench.TableJSON(num, t)
			fj.Quantiles = bench.HistogramQuantiles(nil)
			results = append(results, fj)
		}
	}

	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bchainbench:", err)
			os.Exit(1)
		}
		if err := bench.WriteJSON(f, results); err == nil {
			err = f.Close()
		} else {
			f.Close() //sebdb:ignore-err encode error already reported
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "bchainbench:", err)
			os.Exit(1)
		}
	}
}
