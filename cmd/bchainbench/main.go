// Command bchainbench regenerates the paper's evaluation figures
// (Figs. 7-22) using the BChainBench workload (Table II). Each figure
// prints as a table of the same series the paper plots.
//
// Usage:
//
//	bchainbench [-fig N] [-scale S] [-dir DIR] [-workers W]
//
//	-fig N     regenerate only figure N (7..23, where 23 is the
//	           parallel read-pipeline scaling sweep); default all
//	-scale S   dataset scale relative to paper sizes (default 0.05;
//	           1.0 loads paper-scale datasets and can take a while)
//	-dir DIR   scratch directory for datasets (default a temp dir;
//	           reusing a directory reuses its datasets across runs)
//	-workers W upper bound of figure 23's worker sweep (default
//	           GOMAXPROCS)
package main

import (
	"flag"
	"fmt"
	"os"

	"sebdb/internal/bench"
)

func main() {
	fig := flag.Int("fig", 0, "figure number (7-23); 0 = all")
	scale := flag.Float64("scale", 0.05, "dataset scale relative to the paper")
	dir := flag.String("dir", "", "scratch directory for datasets")
	workers := flag.Int("workers", 0, "worker sweep bound for figure 23 (0 = GOMAXPROCS)")
	flag.Parse()
	if *workers > 0 {
		bench.MaxWorkers = *workers
	}

	scratch := *dir
	if scratch == "" {
		var err error
		scratch, err = os.MkdirTemp("", "bchainbench-*")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer os.RemoveAll(scratch) //sebdb:ignore-err scratch directory removal at process exit
	}

	var err error
	if *fig == 0 {
		err = bench.RunAll(os.Stdout, scratch, *scale)
	} else {
		err = bench.RunFigure(os.Stdout, *fig, scratch, *scale)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "bchainbench:", err)
		os.Exit(1)
	}
}
