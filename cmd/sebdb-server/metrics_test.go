package main

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"testing"

	"sebdb/internal/clock"
	"sebdb/internal/core"
	"sebdb/internal/obs"
	"sebdb/internal/types"
)

// TestMetricsEndpoints drives the whole observability surface end to
// end: a live engine behind the metrics mux, a query and an EXPLAIN
// ANALYZE to populate the registry, then all three endpoints.
func TestMetricsEndpoints(t *testing.T) {
	reg := obs.NewRegistry(clock.UnixMicro)
	e, err := core.Open(core.Config{Dir: t.TempDir(), Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if _, err := e.Execute(`CREATE donate (donor string, amount int)`); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := e.Execute(`INSERT INTO donate VALUES (?, ?)`,
			types.Str("d"), types.Int(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Execute(`SELECT * FROM donate WHERE amount >= 0`); err != nil {
		t.Fatal(err)
	}
	res, err := e.Execute(`EXPLAIN ANALYZE SELECT * FROM donate WHERE amount >= 3`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) < 3 {
		t.Fatalf("EXPLAIN ANALYZE returned %d stages, want >= 3", len(res.Rows))
	}

	registerEngineMetrics(reg, e)
	srv := httptest.NewServer(metricsMux(reg))
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return resp.StatusCode, string(b)
	}

	code, body := get("/metrics")
	if code != 200 {
		t.Fatalf("/metrics status %d", code)
	}
	for _, want := range []string{
		"# TYPE ",
		"sebdb_chain_height 1",
		`sebdb_stage_micros_bucket{stage="query",le="+Inf"}`,
		`sebdb_exec_blocks_read_total{op="select",method=`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	code, body = get("/debug/vars")
	if code != 200 {
		t.Fatalf("/debug/vars status %d", code)
	}
	var vars map[string]any
	if err := json.Unmarshal([]byte(body), &vars); err != nil {
		t.Fatalf("/debug/vars is not valid JSON: %v", err)
	}
	for _, section := range []string{"counters", "gauges", "histograms"} {
		if _, ok := vars[section]; !ok {
			t.Errorf("/debug/vars missing section %q", section)
		}
	}

	if code, _ := get("/debug/pprof/"); code != 200 {
		t.Errorf("/debug/pprof/ status %d", code)
	}
}
