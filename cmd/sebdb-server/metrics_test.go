package main

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"testing"

	"sebdb/internal/clock"
	"sebdb/internal/core"
	"sebdb/internal/obs"
	"sebdb/internal/types"
)

// TestMetricsEndpoints drives the whole observability surface end to
// end: a live engine behind the metrics mux, a query and an EXPLAIN
// ANALYZE to populate the registry, then all three endpoints.
func TestMetricsEndpoints(t *testing.T) {
	reg := obs.NewRegistry(clock.UnixMicro)
	e, err := core.Open(core.Config{Dir: t.TempDir(), Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if _, err := e.Execute(`CREATE donate (donor string, amount int)`); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := e.Execute(`INSERT INTO donate VALUES (?, ?)`,
			types.Str("d"), types.Int(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Execute(`SELECT * FROM donate WHERE amount >= 0`); err != nil {
		t.Fatal(err)
	}
	res, err := e.Execute(`EXPLAIN ANALYZE SELECT * FROM donate WHERE amount >= 3`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) < 3 {
		t.Fatalf("EXPLAIN ANALYZE returned %d stages, want >= 3", len(res.Rows))
	}

	registerEngineMetrics(reg, e)
	srv := httptest.NewServer(metricsMux(reg, nil, nil))
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return resp.StatusCode, string(b)
	}

	code, body := get("/metrics")
	if code != 200 {
		t.Fatalf("/metrics status %d", code)
	}
	for _, want := range []string{
		"# TYPE ",
		"sebdb_chain_height 1",
		`sebdb_stage_micros_bucket{stage="query",le="+Inf"}`,
		`sebdb_exec_blocks_read_total{op="select",method=`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	code, body = get("/debug/vars")
	if code != 200 {
		t.Fatalf("/debug/vars status %d", code)
	}
	var vars map[string]any
	if err := json.Unmarshal([]byte(body), &vars); err != nil {
		t.Fatalf("/debug/vars is not valid JSON: %v", err)
	}
	for _, section := range []string{"counters", "gauges", "histograms"} {
		if _, ok := vars[section]; !ok {
			t.Errorf("/debug/vars missing section %q", section)
		}
	}

	if code, _ := get("/debug/pprof/"); code != 200 {
		t.Errorf("/debug/pprof/ status %d", code)
	}
}

// TestTraceLogEndpoints drives the flight recorder and the structured
// event log end to end: an engine wired with both, statements to fill
// the rings, then /debug/traces (recent + slow, with filters) and
// /debug/log over the metrics mux. Nil recorder/logger endpoints from
// TestMetricsEndpoints above cover the disabled path.
func TestTraceLogEndpoints(t *testing.T) {
	reg := obs.NewRegistry(clock.UnixMicro)
	rec := obs.NewRecorder(obs.RecorderConfig{Registry: reg, SampleEvery: 1, SlowMicros: 1})
	logger := obs.NewLogger(reg, nil, obs.LevelDebug)
	e, err := core.Open(core.Config{Dir: t.TempDir(), Obs: reg, Recorder: rec, Log: logger})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if _, err := e.Execute(`CREATE donate (donor string, amount int)`); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := e.Execute(`INSERT INTO donate VALUES (?, ?)`,
			types.Str("d"), types.Int(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Execute(`SELECT * FROM donate WHERE amount >= 0`); err != nil {
		t.Fatal(err)
	}

	srv := httptest.NewServer(metricsMux(reg, rec, logger))
	defer srv.Close()

	get := func(path string) []map[string]any {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		var out []map[string]any
		if err := json.Unmarshal(b, &out); err != nil {
			t.Fatalf("GET %s: not a JSON list: %v", path, err)
		}
		return out
	}

	recent := get("/debug/traces")
	if len(recent) < 7 { // create + 5 inserts + select, every one sampled
		t.Fatalf("/debug/traces returned %d records, want >= 7", len(recent))
	}
	for _, r := range recent {
		id, _ := r["trace_id"].(string)
		if id == "" {
			t.Errorf("record missing trace_id: %v", r)
		}
		if _, ok := r["root"].(map[string]any); !ok {
			t.Errorf("sampled record missing root span: %v", r)
		}
	}
	// Newest-first: the SELECT is the most recent statement.
	if got, _ := recent[0]["stage"].(string); got != "stmt.select" {
		t.Errorf("newest stage = %q, want stmt.select", got)
	}

	// SlowMicros=1 promotes every statement, so the slow ring mirrors the
	// recent one and keeps full span trees.
	slow := get("/debug/traces?ring=slow")
	if len(slow) < 7 {
		t.Fatalf("slow ring has %d records, want >= 7", len(slow))
	}
	root, ok := slow[0]["root"].(map[string]any)
	if !ok {
		t.Fatalf("slow record missing span tree: %v", slow[0])
	}
	if _, ok := root["children"].([]any); !ok {
		t.Errorf("slow root span has no children (want full tree): %v", root)
	}

	if got := get("/debug/traces?stage=stmt.insert"); len(got) != 5 {
		t.Errorf("stage filter returned %d records, want 5", len(got))
	}
	if got := get("/debug/traces?n=2"); len(got) != 2 {
		t.Errorf("n=2 returned %d records, want 2", len(got))
	}
	if got := get("/debug/traces?min_micros=99999999"); len(got) != 0 {
		t.Errorf("min_micros filter returned %d records, want 0", len(got))
	}

	events := get("/debug/log")
	if len(events) == 0 {
		t.Fatal("/debug/log is empty; want engine events")
	}
	seen := map[string]bool{}
	for _, ev := range events {
		msg, _ := ev["msg"].(string)
		seen[msg] = true
		if comp, _ := ev["component"].(string); comp == "" {
			t.Errorf("event missing component: %v", ev)
		}
	}
	for _, want := range []string{"engine opened", "table created", "block committed"} {
		if !seen[want] {
			t.Errorf("/debug/log missing %q event", want)
		}
	}
	if got := get("/debug/log?level=error"); len(got) != 0 {
		t.Errorf("level=error returned %d events, want 0", len(got))
	}
}
