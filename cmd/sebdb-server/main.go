// Command sebdb-server runs one SEBDB full node: the engine over a
// local data directory, a TCP service for peers and thin clients, and
// gossip-based block synchronisation against the given peers.
//
// Usage:
//
//	sebdb-server -dir ./data -listen 127.0.0.1:7070 \
//	    [-peer host:port]... [-signer node0] [-auth table.col]... \
//	    [-parallel N] [-sync] [-checkpoint-interval N] [-fast-sync] \
//	    [-mmap] [-compress-after N] [-cache-shards N] \
//	    [-follow host:port] [-call-timeout 5s] [-call-retries 1] \
//	    [-trace-sample N] [-slow-query-micros N] [-log-level info]
//
// A standalone node packages its own blocks (submit transactions via
// the SQL interface, e.g. from sebdb-cli); nodes with peers follow the
// longest chain via gossip. With -checkpoint-interval the node
// checkpoints its derived state every N blocks so restarts replay only
// the post-checkpoint suffix; with -fast-sync an empty node bootstraps
// by fetching a peer's checkpoint before opening the engine.
//
// With -follow the node runs as a read replica: it bootstraps from the
// leader (fast-sync when the data directory is fresh), subscribes to the
// leader's block stream, re-verifies and applies every pushed block
// locally, and serves SELECT/TRACE and authenticated queries from its
// own height-pinned views at bounded staleness (sebdb_replica_lag_blocks
// on /metrics). Local writes are rejected with core.ErrFollower; point
// sebdb-cli's -replica routing or writes at the leader instead.
//
// Diagnostics are structured JSON events on stderr (-log-level selects
// the floor); the flight recorder keeps the last sampled statement
// traces and every statement slower than -slow-query-micros, browsable
// via `SHOW [SLOW] TRACES` or /debug/traces behind -metrics-addr.
package main

import (
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"time"

	"sebdb/internal/core"
	"sebdb/internal/node"
	"sebdb/internal/obs"
	"sebdb/internal/replica"
)

type listFlag []string

// String renders the accumulated values for flag's usage output.
func (l *listFlag) String() string { return strings.Join(*l, ",") }

// Set appends one occurrence of the repeatable flag.
func (l *listFlag) Set(v string) error {
	*l = append(*l, v)
	return nil
}

func main() {
	dir := flag.String("dir", "./sebdb-data", "data directory")
	listen := flag.String("listen", "127.0.0.1:7070", "listen address")
	signer := flag.String("signer", "node0", "block signer identity")
	cacheMode := flag.String("cache", "tx", "cache policy: none | block | tx")
	par := flag.Int("parallel", 0, "worker count for the read pipeline (scans, replay, backfill) and the commit pipeline (tx hashing, index fan-out) (0 = GOMAXPROCS, 1 = sequential)")
	sync := flag.Bool("sync", false, "fsync block segments on commit; batched commits (consensus, flush) sync once per batch")
	mmap := flag.Bool("mmap", false, "serve reads from sealed block segments through memory maps (the active tail always uses pread; unsupported platforms fall back transparently)")
	compressAfter := flag.Int("compress-after", 0, "recompress sealed block segments at least N segments behind the active tail in the background (0 = disabled)")
	cacheShards := flag.Int("cache-shards", 0, "lock stripes for the block/tx cache, rounded up to a power of two (0 = default)")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics, /debug/vars, /debug/traces, /debug/log and /debug/pprof on this address (empty = disabled)")
	ckptInterval := flag.Int("checkpoint-interval", 0, "write a derived-state checkpoint every N blocks (0 = disabled)")
	fastSync := flag.Bool("fast-sync", false, "bootstrap an empty data directory from the first reachable peer's checkpoint")
	noCkptLoad := flag.Bool("no-checkpoint-load", false, "ignore existing checkpoints on startup and rebuild by full replay")
	traceSample := flag.Int("trace-sample", 1, "trace one statement in every N (1 = every statement)")
	slowMicros := flag.Int64("slow-query-micros", 100_000, "capture any statement at or above this latency into the slow-query ring regardless of sampling (0 = disabled)")
	logLevel := flag.String("log-level", "info", "structured event log floor: debug | info | warn | error")
	follow := flag.String("follow", "", "run as a read replica tailing this leader address; local writes are rejected and the chain advances only through the verified block stream")
	callTimeout := flag.Duration("call-timeout", 0, "deadline per peer request/response exchange (0 = none)")
	callRetries := flag.Int("call-retries", 1, "redial-and-resend attempts after a transport failure on a peer call")
	var peers, authIdx listFlag
	flag.Var(&peers, "peer", "peer address (repeatable)")
	flag.Var(&authIdx, "auth", "authenticated index to maintain, as table.col or .systemcol (repeatable)")
	flag.Parse()

	logger := obs.NewLogger(obs.Default, os.Stderr, obs.ParseLevel(*logLevel))
	log := logger.With("server")
	recorder := obs.NewRecorder(obs.RecorderConfig{
		Registry:    obs.Default,
		SampleEvery: *traceSample,
		SlowMicros:  *slowMicros,
	})

	mode := core.CacheTxs
	switch *cacheMode {
	case "none":
		mode = core.CacheNone
	case "block":
		mode = core.CacheBlocks
	case "tx":
	default:
		log.Error("unknown cache policy", "policy", *cacheMode)
		os.Exit(2)
	}

	// Fast-sync runs before the engine opens: with a populated snapshots/
	// directory in place, Open seeds every index from the checkpoint and
	// replays nothing. A failed attempt (no peer checkpoint, non-empty
	// dir, verification failure) degrades to a normal open + gossip sync.
	// A follower bootstraps the same way from its leader — the stream
	// then carries it from wherever fast-sync (or an empty open) left it.
	syncSources := peers
	if *follow != "" {
		syncSources = append(listFlag{*follow}, peers...)
	}
	bootstrap := *fastSync
	if *follow != "" && !bootstrap {
		// A follower bootstraps automatically when its data directory is
		// fresh; on restart it resumes from its cursor instead.
		if ents, err := os.ReadDir(*dir); err != nil || len(ents) == 0 {
			bootstrap = true
		}
	}
	if bootstrap {
		synced := false
		for _, p := range syncSources {
			remote, err := node.DialNode(p)
			if err != nil {
				log.Warn("fast-sync peer dial failed", "peer", p, "err", err)
				continue
			}
			remote.TuneCalls(*callTimeout, *callRetries, 100*time.Millisecond)
			res, err := node.FastSyncWithLog(*dir, remote, obs.Default, logger)
			if cerr := remote.Close(); cerr != nil {
				log.Warn("fast-sync peer close failed", "peer", p, "err", cerr)
			}
			if err != nil {
				log.Warn("fast-sync failed", "peer", p, "err", err)
				continue
			}
			fmt.Printf("sebdb-server: fast-synced %d blocks + checkpoint at height %d (%d checkpoint bytes) from %s\n",
				res.Blocks, res.CheckpointHeight, res.ChunkBytes, p)
			synced = true
			break
		}
		if !synced {
			log.Warn("fast-sync found no usable peer checkpoint; falling back to gossip sync")
		}
	}

	engine, err := core.Open(core.Config{Dir: *dir, Signer: *signer, CacheMode: mode, Parallelism: *par,
		Sync: *sync, CheckpointInterval: *ckptInterval, DisableCheckpointLoad: *noCkptLoad,
		Mmap: *mmap, CompressAfter: *compressAfter, CacheShards: *cacheShards,
		Recorder: recorder, Log: logger})
	if err != nil {
		log.Error("engine open failed", "dir", *dir, "err", err)
		os.Exit(1)
	}
	defer func() {
		if err := engine.Close(); err != nil {
			log.Error("engine close failed", "err", err)
		}
	}()

	for _, spec := range authIdx {
		i := strings.LastIndex(spec, ".")
		if i < 0 {
			log.Error("bad -auth spec (want table.col)", "spec", spec)
			os.Exit(2)
		}
		if err := engine.CreateAuthIndex(spec[:i], spec[i+1:]); err != nil {
			// A table created later (DDL rides the chain) cannot be
			// indexed yet; warn and continue so bootstrapping nodes can
			// start before the schema exists. Re-run with -auth once the
			// table is on chain.
			log.Warn("auth index deferred", "spec", spec, "err", err)
		}
	}

	if *metricsAddr != "" {
		registerEngineMetrics(obs.Default, engine)
		ml, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			log.Error("metrics listen failed", "addr", *metricsAddr, "err", err)
			os.Exit(1)
		}
		srv := &http.Server{Handler: metricsMux(obs.Default, recorder, logger)}
		go func() {
			if err := srv.Serve(ml); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Error("metrics serve failed", "err", err)
			}
		}()
		defer srv.Close() //sebdb:ignore-err best-effort teardown of the metrics listener at exit
		fmt.Printf("sebdb-server: metrics on http://%s/metrics\n", ml.Addr())
	}

	n := node.New(engine)
	defer func() {
		if err := n.Close(); err != nil {
			log.Error("node close failed", "err", err)
		}
	}()
	addr, err := n.Serve(*listen)
	if err != nil {
		log.Error("listen failed", "addr", *listen, "err", err)
		os.Exit(1)
	}
	fmt.Printf("sebdb-server: %s serving on %s, height %d\n", *signer, addr, engine.Height())

	if *follow != "" {
		// Follower mode: reject local writes (the leader is the only
		// write target) and tail the leader's block stream, re-verifying
		// and applying every pushed block. Reads keep being served from
		// this node's own height-pinned views.
		engine.SetFollower(true)
		f := replica.StartFollower(engine, replica.FollowerConfig{
			Leader: *follow,
			Log:    logger,
		})
		defer f.Stop()
		fmt.Printf("sebdb-server: following leader %s from height %d\n", *follow, engine.Height())
	}

	for _, p := range peers {
		remote, err := node.DialNode(p)
		if err != nil {
			log.Warn("peer dial failed", "peer", p, "err", err)
			continue
		}
		remote.TuneCalls(*callTimeout, *callRetries, 100*time.Millisecond)
		n.Gossip.AddPeer(remote)
		fmt.Printf("sebdb-server: gossiping with %s\n", p)
	}
	if len(peers) > 0 && *follow == "" {
		n.Gossip.Start()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	fmt.Println("sebdb-server: shutting down")
}
