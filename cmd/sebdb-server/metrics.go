package main

import (
	"net/http"
	"net/http/pprof"

	"sebdb/internal/core"
	"sebdb/internal/obs"
)

// metricsMux builds the observability HTTP surface served behind
// -metrics-addr:
//
//	/metrics       Prometheus text exposition
//	/debug/vars    the same registry as indented JSON (with quantiles)
//	/debug/traces  the flight recorder's recent + slow rings
//	               (?ring=slow, ?stage=, ?min_micros=, ?n=)
//	/debug/log     the structured event ring (?level=, ?n=)
//	/debug/pprof/  the runtime profiles
//
// rec and log may be nil; the trace and log endpoints then serve empty
// lists.
func metricsMux(reg *obs.Registry, rec *obs.Recorder, log *obs.Logger) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", obs.Handler(reg))
	mux.Handle("/debug/vars", obs.VarsHandler(reg))
	mux.Handle("/debug/traces", obs.TracesHandler(rec))
	mux.Handle("/debug/log", obs.LogHandler(log))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// registerEngineMetrics exposes the engine's point-in-time state as
// function-backed gauges; they are read at scrape time, so /metrics
// always reports the live height and cache occupancy.
func registerEngineMetrics(reg *obs.Registry, e *core.Engine) {
	reg.RegisterFunc("sebdb_chain_height", obs.TypeGauge,
		func() int64 { return int64(e.Height()) })
	reg.RegisterFunc("sebdb_parallelism", obs.TypeGauge,
		func() int64 { return int64(e.Parallelism()) })
	reg.RegisterFunc("sebdb_cache_hits_total", obs.TypeCounter,
		func() int64 { return int64(e.CacheStats().Hits) })
	reg.RegisterFunc("sebdb_cache_misses_total", obs.TypeCounter,
		func() int64 { return int64(e.CacheStats().Misses) })
	reg.RegisterFunc("sebdb_cache_evictions_total", obs.TypeCounter,
		func() int64 { return int64(e.CacheStats().Evictions) })
	reg.RegisterFunc("sebdb_cache_bytes", obs.TypeGauge,
		func() int64 { return e.CacheStats().Bytes })
	reg.RegisterFunc("sebdb_cache_entries", obs.TypeGauge,
		func() int64 { return int64(e.CacheStats().Entries) })
	reg.RegisterFunc("sebdb_cache_shard_contention_total", obs.TypeCounter,
		func() int64 { return int64(e.CacheStats().Contention) })
	reg.RegisterFunc("sebdb_cache_shards", obs.TypeGauge,
		func() int64 { return int64(len(e.CacheShardStats())) })
}
