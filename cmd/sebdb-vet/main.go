// Command sebdb-vet runs the project's static-analysis suite
// (internal/lint) over the module: bounded wire decoding, no dropped
// errors, deterministic consensus code, lock discipline, the
// interprocedural lock-I/O and trust-taint checks, and truncation-safe
// uint32 length casts. It exits non-zero when any violation survives
// the //sebdb:ignore-* directives.
//
// Usage:
//
//	sebdb-vet [-list] [-json] [dir]
//
// dir defaults to "." and may be the familiar "./..." (the suite always
// analyses the whole module rooted at dir's go.mod). With -json each
// finding is emitted as one JSON object per line, with the file path
// relative to the module root. Exit codes: 0 clean, 1 findings, 2 the
// module failed to load.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"sebdb/internal/lint"
)

// jsonFinding is the -json line format.
type jsonFinding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sebdb-vet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list the analyzers and exit")
	asJSON := fs.Bool("json", false, "emit findings as JSON, one object per line")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	dir := "."
	if fs.NArg() > 0 {
		dir = strings.TrimSuffix(fs.Arg(0), "...")
		dir = strings.TrimSuffix(dir, "/")
		if dir == "" {
			dir = "."
		}
	}

	loader, err := lint.NewLoader(dir)
	if err != nil {
		fmt.Fprintln(stderr, "sebdb-vet:", err)
		return 2
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		fmt.Fprintln(stderr, "sebdb-vet:", err)
		return 2
	}
	findings := lint.RunAll(pkgs)
	enc := json.NewEncoder(stdout)
	for _, f := range findings {
		if *asJSON {
			file := f.Pos.Filename
			if rel, rerr := filepath.Rel(loader.Root(), file); rerr == nil {
				file = filepath.ToSlash(rel)
			}
			if err := enc.Encode(jsonFinding{
				Analyzer: f.Analyzer,
				File:     file,
				Line:     f.Pos.Line,
				Col:      f.Pos.Column,
				Message:  f.Message,
			}); err != nil {
				fmt.Fprintln(stderr, "sebdb-vet:", err)
				return 2
			}
			continue
		}
		fmt.Fprintln(stdout, f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "sebdb-vet: %d violation(s)\n", len(findings))
		return 1
	}
	return 0
}
