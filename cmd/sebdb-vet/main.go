// Command sebdb-vet runs the project's static-analysis suite
// (internal/lint) over the module: bounded wire decoding, no dropped
// errors, deterministic consensus code, lock discipline, and
// truncation-safe uint32 length casts. It exits non-zero when any
// violation survives the //sebdb:ignore-* directives.
//
// Usage:
//
//	sebdb-vet [-list] [dir]
//
// dir defaults to "." and may be the familiar "./..." (the suite always
// analyses the whole module rooted at dir's go.mod).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"sebdb/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	dir := "."
	if flag.NArg() > 0 {
		dir = strings.TrimSuffix(flag.Arg(0), "...")
		dir = strings.TrimSuffix(dir, "/")
		if dir == "" {
			dir = "."
		}
	}

	loader, err := lint.NewLoader(dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sebdb-vet:", err)
		os.Exit(2)
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		fmt.Fprintln(os.Stderr, "sebdb-vet:", err)
		os.Exit(2)
	}
	findings := lint.RunAll(pkgs)
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "sebdb-vet: %d violation(s)\n", len(findings))
		os.Exit(1)
	}
}
