// Package broken has a go.mod with no module path.
package broken
