// Package clean is a violation-free module: the CLI test asserts
// sebdb-vet exits 0 with no output on it.
package clean

// Add is unremarkable on purpose.
func Add(a, b int) int { return a + b }
