package main

import (
	"bytes"
	"flag"
	"io"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden file from current output")

// The lint fixture module is deliberately dirty: -json output over it is
// pinned by a golden file, so both the finding set and the output format
// are regression-checked.
func TestDirtyTreeJSONMatchesGolden(t *testing.T) {
	fixture := filepath.Join("..", "..", "internal", "lint", "testdata", "src", "sebdb")
	var out, errOut bytes.Buffer
	code := run([]string{"-json", fixture}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (stderr: %s)", code, errOut.String())
	}
	golden := filepath.Join("testdata", "findings.golden")
	if *update {
		if err := os.WriteFile(golden, out.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(out.Bytes(), want) {
		t.Errorf("-json output diverged from %s (rerun with -update if intended)\ngot:\n%swant:\n%s",
			golden, out.String(), string(want))
	}
}

func TestCleanTreeExitsZero(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{filepath.Join("testdata", "clean")}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0 (stderr: %s)", code, errOut.String())
	}
	if out.Len() != 0 {
		t.Errorf("clean tree produced output:\n%s", out.String())
	}
}

// A go.mod without a module directive cannot be loaded; the broken
// fixture pins the load-failure exit code. (A nonexistent directory is
// not used here: the loader would walk up and find this repository's
// own go.mod.)
func TestBrokenModuleExitsTwo(t *testing.T) {
	code := run([]string{filepath.Join("testdata", "broken")}, io.Discard, io.Discard)
	if code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
}

func TestListExitsZero(t *testing.T) {
	var out bytes.Buffer
	if code := run([]string{"-list"}, &out, io.Discard); code != 0 {
		t.Fatalf("exit code = %d, want 0", code)
	}
	for _, name := range []string{"lockio", "trusttaint", "lockcheck"} {
		if !bytes.Contains(out.Bytes(), []byte(name)) {
			t.Errorf("-list output missing analyzer %s", name)
		}
	}
}
