// Package auth implements SEBDB's authenticated query machinery (paper
// §VI): the Authenticated Layered Index (ALI) — the layered index with
// its per-block second level replaced by Merkle B-trees — the 2-phase
// thin-client protocol (full node answers with a VO; auxiliary full
// nodes answer with a digest over the visited MB-roots), the Byzantine
// digest-sampling probability of Equation 6, and the ship-all-blocks
// baseline the paper compares against.
package auth

import (
	"sync"

	"sebdb/internal/index/bitmap"
	"sebdb/internal/index/layered"
	"sebdb/internal/mbtree"
	"sebdb/internal/types"
)

// ALI is an authenticated layered index on one attribute: the first
// level is the layered index's per-block filter, the second level one
// MB-tree per block. Each block height is a verifiable snapshot.
type ALI struct {
	// attr and fanout are fixed at construction; first carries its own
	// internal lock.
	attr   string
	first  *layered.Index
	fanout int

	mu    sync.RWMutex
	trees []*mbtree.Tree // indexed by block id; nil when block empty
	roots []mbtree.Hash
}

// NewDiscrete creates an ALI over a discrete attribute (e.g. Tname for
// authenticated tracking).
func NewDiscrete(attr string, fanout int) *ALI {
	return &ALI{attr: attr, first: layered.NewDiscrete(attr), fanout: fanout}
}

// NewContinuous creates an ALI over a continuous attribute with the
// given first-level histogram.
func NewContinuous(attr string, hist *layered.Histogram, fanout int) *ALI {
	return &ALI{attr: attr, first: layered.NewContinuous(attr, hist), fanout: fanout}
}

// Attr returns the indexed attribute name.
func (a *ALI) Attr() string { return a.attr }

// Continuous reports whether the first level uses histogram bucketing.
func (a *ALI) Continuous() bool { return a.first.Continuous() }

// Histogram returns the first-level histogram, or nil for a discrete
// ALI.
func (a *ALI) Histogram() *layered.Histogram { return a.first.Histogram() }

// BlockRecords returns the records of block bid's MB-tree in key
// order, or nil when the block has no indexed rows. Feeding them back
// to AppendBlock on a fresh ALI reproduces the block's tree and root
// exactly — the checkpoint subsystem serialises ALIs this way instead
// of persisting hashes.
func (a *ALI) BlockRecords(bid uint64) []mbtree.Record {
	t := a.Tree(bid)
	if t == nil {
		return nil
	}
	return t.Records()
}

// AppendBlock indexes a newly chained block: the MB-tree is built over
// the records and the first level updated. Blocks must be appended in
// height order; pass nil records for blocks without relevant rows.
func (a *ALI) AppendBlock(bid uint64, recs []mbtree.Record) {
	a.mu.Lock()
	defer a.mu.Unlock()
	for uint64(len(a.trees)) <= bid {
		a.trees = append(a.trees, nil)
		a.roots = append(a.roots, mbtree.Hash{})
	}
	entries := make([]layered.Entry, len(recs))
	for i, r := range recs {
		entries[i] = layered.Entry{Key: r.Key, Pos: uint32(i)}
	}
	a.first.AppendBlock(bid, entries)
	if len(recs) == 0 {
		return
	}
	t := mbtree.Build(recs, a.fanout)
	a.trees[bid] = t
	a.roots[bid] = t.Root()
}

// Blocks returns the number of block slots the ALI covers.
func (a *ALI) Blocks() int {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return len(a.trees)
}

// CandidateBlocks returns the first-level filter for [lo, hi].
func (a *ALI) CandidateBlocks(lo, hi types.Value) *bitmap.Bitmap {
	return a.first.CandidateBlocks(lo, hi)
}

// Tree returns the MB-tree of block bid, or nil.
func (a *ALI) Tree(bid uint64) *mbtree.Tree {
	a.mu.RLock()
	defer a.mu.RUnlock()
	if bid >= uint64(len(a.trees)) {
		return nil
	}
	return a.trees[bid]
}

// Root returns the MB-root of block bid; ok is false when the block has
// no indexed rows.
func (a *ALI) Root(bid uint64) (mbtree.Hash, bool) {
	a.mu.RLock()
	defer a.mu.RUnlock()
	if bid >= uint64(len(a.trees)) || a.trees[bid] == nil {
		return mbtree.Hash{}, false
	}
	return a.roots[bid], true
}
