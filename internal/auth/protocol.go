package auth

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"

	"sebdb/internal/index/bitmap"
	"sebdb/internal/mbtree"
	"sebdb/internal/merkle"
	"sebdb/internal/types"
)

// BlockVO is the verification object of one visited block.
type BlockVO struct {
	// Bid is the block id the VO belongs to.
	Bid uint64
	// Bytes is the encoded mbtree VO.
	Bytes []byte
}

// Answer is the first-phase reply of a full node: the snapshot height
// and one VO per candidate block (paper §VI: "the VO consists of one VO
// each MB-tree the query visited", plus the block height h).
type Answer struct {
	Height uint64
	Blocks []BlockVO
}

// Size returns the total VO size in bytes — the paper's Fig. 17 metric.
func (a *Answer) Size() int {
	n := 8
	for _, b := range a.Blocks {
		n += 8 + len(b.Bytes)
	}
	return n
}

// candidates computes the deterministic candidate-block set of a query
// at snapshot height: first-level filter ∩ eligible blocks ∩ bid < height.
func candidates(ali *ALI, height uint64, eligible *bitmap.Bitmap, lo, hi types.Value) []int {
	cand := ali.CandidateBlocks(lo, hi)
	if eligible != nil {
		cand.And(eligible)
	}
	var out []int
	cand.ForEach(func(bid int) bool {
		if uint64(bid) < height {
			out = append(out, bid)
		}
		return true
	})
	return out
}

// Serve is the full node's side of phase one: it executes the range
// query [lo, hi] over the ALI at the given snapshot height and returns
// the answer with one VO per candidate block. eligible restricts the
// block set (time window); nil means all blocks.
func Serve(ali *ALI, height uint64, eligible *bitmap.Bitmap, lo, hi types.Value) *Answer {
	ans := &Answer{Height: height}
	for _, bid := range candidates(ali, height, eligible, lo, hi) {
		t := ali.Tree(uint64(bid))
		if t == nil {
			continue
		}
		vo := t.RangeVO(lo, hi)
		ans.Blocks = append(ans.Blocks, BlockVO{Bid: uint64(bid), Bytes: vo.Encode()})
	}
	return ans
}

// Digest is the auxiliary full node's side of phase two: it recomputes
// the candidate set for the query at height h and hashes the visited
// MB-roots, bound to their block ids, into a single digest (paper §VI:
// "generates digest by hashing the concatenation of merkle roots of
// second level index in blocks that the query needs to visit").
func Digest(ali *ALI, height uint64, eligible *bitmap.Bitmap, lo, hi types.Value) [32]byte {
	h := sha256.New()
	var buf [8]byte
	for _, bid := range candidates(ali, height, eligible, lo, hi) {
		root, ok := ali.Root(uint64(bid))
		if !ok {
			continue
		}
		binary.BigEndian.PutUint64(buf[:], uint64(bid))
		h.Write(buf[:])
		h.Write(root[:])
	}
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// VerifyAnswer is the thin client's check: it reconstructs every block
// VO, rebuilding each MB-root, derives the digest the answer commits to
// and returns it together with the decoded in-range transactions. The
// caller compares the digest against the replies of sampled auxiliary
// nodes; only if enough agree is the result trusted (Equation 6).
func VerifyAnswer(ans *Answer, lo, hi types.Value) (digest [32]byte, txs []*types.Transaction, err error) {
	h := sha256.New()
	var buf [8]byte
	var prevBid uint64
	for i, bvo := range ans.Blocks {
		if bvo.Bid >= ans.Height {
			return digest, nil, fmt.Errorf("auth: block %d beyond snapshot height %d", bvo.Bid, ans.Height)
		}
		if i > 0 && bvo.Bid <= prevBid {
			return digest, nil, fmt.Errorf("auth: block VOs out of order")
		}
		prevBid = bvo.Bid
		vo, err := mbtree.DecodeVO(bvo.Bytes)
		if err != nil {
			return digest, nil, fmt.Errorf("auth: block %d: %w", bvo.Bid, err)
		}
		root, recs, err := mbtree.Reconstruct(vo, lo, hi)
		if err != nil {
			return digest, nil, fmt.Errorf("auth: block %d: %w", bvo.Bid, err)
		}
		binary.BigEndian.PutUint64(buf[:], bvo.Bid)
		h.Write(buf[:])
		h.Write(root[:])
		for _, r := range recs {
			tx, err := types.DecodeTransaction(types.NewDecoder(r.Payload))
			if err != nil {
				return digest, nil, fmt.Errorf("auth: block %d: %w", bvo.Bid, err)
			}
			txs = append(txs, tx)
		}
	}
	h.Sum(digest[:0])
	return digest, txs, nil
}

// BasicAnswer is the baseline the paper compares ALI against: the
// server ships every eligible block in full.
type BasicAnswer struct {
	Height uint64
	Blocks []*types.Block
}

// Size returns the baseline's "VO size": the bytes of all shipped
// blocks.
func (a *BasicAnswer) Size() int {
	n := 8
	for _, b := range a.Blocks {
		n += len(b.EncodeBytes())
	}
	return n
}

// BasicVerify is the thin client's baseline check: for each shipped
// block it recomputes the transaction Merkle root and compares it with
// the trusted header (thin clients store all headers), then filters the
// matching transactions itself.
func BasicVerify(ans *BasicAnswer, headers []types.BlockHeader,
	match func(*types.Transaction) bool) ([]*types.Transaction, error) {
	var out []*types.Transaction
	for _, b := range ans.Blocks {
		if b.Header.Height >= uint64(len(headers)) {
			return nil, fmt.Errorf("auth: block %d beyond known headers", b.Header.Height)
		}
		want := headers[b.Header.Height]
		if b.Header.Hash() != want.Hash() {
			return nil, fmt.Errorf("auth: block %d header mismatch", b.Header.Height)
		}
		if merkle.Root(types.TxLeaves(b.Txs)) != want.TransRoot {
			return nil, fmt.Errorf("auth: block %d transaction root mismatch", b.Header.Height)
		}
		for _, tx := range b.Txs {
			if match(tx) {
				out = append(out, tx)
			}
		}
	}
	return out, nil
}
