package auth

import "math"

// This file implements the digest-sampling analysis of paper §VI,
// Equations 4-6. A thin client sends the phase-two query to n auxiliary
// nodes and waits until m identical digests arrive. With p the fraction
// of Byzantine nodes, Equation 4 gives the probability p_w that the
// first m identical digests are all from Byzantine nodes (a negative-
// binomial race: the m-th Byzantine response arrives having seen i < m
// honest ones), Equation 5 the symmetric probability p_r for honest
// nodes, and Equation 6 the conditional probability θ that an accepted
// digest is wrong. θ is 0 outright when m exceeds the maximum possible
// number of Byzantine nodes — at least one of m identical digests then
// came from an honest node.

// binom returns C(n, k) as a float64; inputs stay small (n ≲ 200).
func binom(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	r := 1.0
	for i := 1; i <= k; i++ {
		r = r * float64(n-k+i) / float64(i)
	}
	return r
}

// WinProbability is Equation 4: the probability that m Byzantine
// responses arrive before m honest ones when each response is Byzantine
// with probability p.
func WinProbability(p float64, m int) float64 {
	if m <= 0 {
		return 1
	}
	sum := 0.0
	for i := 0; i < m; i++ {
		sum += binom(m-1+i, i) * math.Pow(p, float64(m-1)) * math.Pow(1-p, float64(i))
	}
	return p * sum
}

// HonestProbability is Equation 5, the mirror image of Equation 4.
func HonestProbability(p float64, m int) float64 {
	return WinProbability(1-p, m)
}

// WrongDigestProbability is Equation 6: the probability θ that a digest
// accepted after m identical replies out of n requests is wrong, with
// at most max Byzantine nodes in the system. It returns 0 when m > max
// (an honest node necessarily contributed) and 1 as a conservative
// answer when the protocol's precondition m <= n does not hold.
func WrongDigestProbability(p float64, n, m, max int) float64 {
	if m > max {
		return 0
	}
	if m <= 0 || m > n {
		return 1
	}
	pw := WinProbability(p, m)
	pr := HonestProbability(p, m)
	if pw+pr == 0 {
		return 0
	}
	return pw / (pw + pr)
}

// MinIdenticalFor returns the smallest m <= n with wrong-digest
// probability below theta, or 0 when no m achieves it — the knob the
// paper describes as "a user can adjust n and m to achieve different
// credibilities".
func MinIdenticalFor(p float64, n, max int, theta float64) int {
	for m := 1; m <= n; m++ {
		if WrongDigestProbability(p, n, m, max) < theta {
			return m
		}
	}
	return 0
}
