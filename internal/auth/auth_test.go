package auth

import (
	"fmt"
	"testing"

	"sebdb/internal/index/bitmap"
	"sebdb/internal/index/layered"
	"sebdb/internal/mbtree"
	"sebdb/internal/types"
)

// buildALI makes a continuous ALI over "amount": block b holds 10 txs
// with amounts b*10..b*10+9.
func buildALI(t testing.TB, blocks int) *ALI {
	t.Helper()
	var sample []float64
	for i := 0; i < blocks*10; i++ {
		sample = append(sample, float64(i))
	}
	ali := NewContinuous("amount", layered.NewEqualDepth(sample, 10), 8)
	tid := uint64(1)
	for b := 0; b < blocks; b++ {
		var recs []mbtree.Record
		for i := 0; i < 10; i++ {
			tx := &types.Transaction{
				Tid: tid, Ts: int64(tid), SenID: "org1", Tname: "donate",
				Args: []types.Value{types.Dec(float64(b*10 + i))},
			}
			tid++
			recs = append(recs, mbtree.Record{
				Key:     types.Dec(float64(b*10 + i)),
				Payload: tx.EncodeBytes(),
			})
		}
		ali.AppendBlock(uint64(b), recs)
	}
	return ali
}

func TestServeVerifyRoundTrip(t *testing.T) {
	ali := buildALI(t, 10)
	lo, hi := types.Dec(25), types.Dec(44)
	ans := Serve(ali, 10, nil, lo, hi)
	if len(ans.Blocks) == 0 {
		t.Fatal("no block VOs returned")
	}
	digest, txs, err := VerifyAnswer(ans, lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	if len(txs) != 20 {
		t.Errorf("got %d txs, want 20", len(txs))
	}
	for _, tx := range txs {
		v := tx.Args[0].Float()
		if v < 25 || v > 44 {
			t.Errorf("out-of-range tx amount %g", v)
		}
	}
	// Auxiliary digest from an identical replica matches.
	replica := buildALI(t, 10)
	if Digest(replica, 10, nil, lo, hi) != digest {
		t.Error("honest auxiliary digest mismatch")
	}
	// A diverged replica (different data) produces a different digest.
	bad := buildALI(t, 9)
	bad.AppendBlock(9, []mbtree.Record{{Key: types.Dec(30), Payload: []byte("forged")}})
	if Digest(bad, 10, nil, lo, hi) == digest {
		t.Error("forged auxiliary digest collided")
	}
}

func TestServeRespectsHeightSnapshot(t *testing.T) {
	ali := buildALI(t, 10)
	lo, hi := types.Dec(0), types.Dec(99)
	ans := Serve(ali, 5, nil, lo, hi) // snapshot at height 5
	for _, b := range ans.Blocks {
		if b.Bid >= 5 {
			t.Errorf("block %d served beyond snapshot", b.Bid)
		}
	}
	_, txs, err := VerifyAnswer(ans, lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	if len(txs) != 50 {
		t.Errorf("snapshot answer has %d txs, want 50", len(txs))
	}
	// Digest computed at the same height agrees even if the auxiliary
	// node has more blocks (the paper's motivation for carrying h).
	longer := buildALI(t, 12)
	d1, _, _ := VerifyAnswer(ans, lo, hi)
	if Digest(longer, 5, nil, lo, hi) != d1 {
		t.Error("height-bound digest should be chain-length independent")
	}
}

func TestVerifyAnswerRejectsTampering(t *testing.T) {
	ali := buildALI(t, 6)
	lo, hi := types.Dec(10), types.Dec(30)
	ans := Serve(ali, 6, nil, lo, hi)

	// Dropping a whole block VO changes the digest (detected when
	// compared with auxiliaries), but out-of-order or over-height blocks
	// fail locally.
	tamper := *ans
	tamper.Blocks = append([]BlockVO(nil), ans.Blocks...)
	tamper.Blocks[0].Bid = 99
	if _, _, err := VerifyAnswer(&tamper, lo, hi); err == nil {
		t.Error("over-height block accepted")
	}
	if len(ans.Blocks) >= 2 {
		tamper.Blocks = []BlockVO{ans.Blocks[1], ans.Blocks[0]}
		if _, _, err := VerifyAnswer(&tamper, lo, hi); err == nil {
			t.Error("out-of-order blocks accepted")
		}
	}
	// Corrupt VO bytes.
	tamper.Blocks = append([]BlockVO(nil), ans.Blocks...)
	tamper.Blocks[0].Bytes = append([]byte(nil), ans.Blocks[0].Bytes...)
	tamper.Blocks[0].Bytes[len(tamper.Blocks[0].Bytes)/2] ^= 0xFF
	if d, _, err := VerifyAnswer(&tamper, lo, hi); err == nil {
		honest, _, _ := VerifyAnswer(ans, lo, hi)
		if d == honest {
			t.Error("corrupted VO produced the honest digest")
		}
	}
}

func TestServeWithWindow(t *testing.T) {
	ali := buildALI(t, 10)
	window := bitmap.FromSlice([]int{2, 3})
	ans := Serve(ali, 10, window, types.Dec(0), types.Dec(99))
	if len(ans.Blocks) != 2 {
		t.Fatalf("window answer has %d blocks", len(ans.Blocks))
	}
	_, txs, err := VerifyAnswer(ans, types.Dec(0), types.Dec(99))
	if err != nil || len(txs) != 20 {
		t.Errorf("window verify: %d txs, %v", len(txs), err)
	}
}

func TestAnswerSize(t *testing.T) {
	ali := buildALI(t, 10)
	narrow := Serve(ali, 10, nil, types.Dec(30), types.Dec(35))
	wide := Serve(ali, 10, nil, types.Dec(0), types.Dec(99))
	if narrow.Size() >= wide.Size() {
		t.Errorf("narrow VO (%d) not smaller than wide (%d)", narrow.Size(), wide.Size())
	}
}

func TestDiscreteALI(t *testing.T) {
	ali := NewDiscrete("tname", 8)
	for b := 0; b < 5; b++ {
		var recs []mbtree.Record
		for i := 0; i < 4; i++ {
			name := "donate"
			if (b+i)%2 == 0 {
				name = "transfer"
			}
			tx := &types.Transaction{Tid: uint64(b*4 + i + 1), Tname: name, SenID: "org1"}
			recs = append(recs, mbtree.Record{Key: types.Str(name), Payload: tx.EncodeBytes()})
		}
		ali.AppendBlock(uint64(b), recs)
	}
	ans := Serve(ali, 5, nil, types.Str("transfer"), types.Str("transfer"))
	_, txs, err := VerifyAnswer(ans, types.Str("transfer"), types.Str("transfer"))
	if err != nil {
		t.Fatal(err)
	}
	if len(txs) != 10 {
		t.Errorf("tracking answer has %d txs, want 10", len(txs))
	}
	for _, tx := range txs {
		if tx.Tname != "transfer" {
			t.Errorf("wrong tx type %q", tx.Tname)
		}
	}
}

func TestBasicApproach(t *testing.T) {
	// Build a small real chain for the baseline.
	var headers []types.BlockHeader
	var blocks []*types.Block
	var prev *types.BlockHeader
	tid := uint64(1)
	for b := 0; b < 5; b++ {
		var txs []*types.Transaction
		for i := 0; i < 6; i++ {
			txs = append(txs, &types.Transaction{
				Tid: tid, Ts: int64(tid), SenID: "org1", Tname: "donate",
				Args: []types.Value{types.Dec(float64(tid))},
			})
			tid++
		}
		blk := types.NewBlock(prev, txs, int64(b), "node0")
		prev = &blk.Header
		headers = append(headers, blk.Header)
		blocks = append(blocks, blk)
	}
	ans := &BasicAnswer{Height: 5, Blocks: blocks}
	match := func(tx *types.Transaction) bool { return tx.Args[0].Float() >= 10 && tx.Args[0].Float() <= 20 }
	txs, err := BasicVerify(ans, headers, match)
	if err != nil {
		t.Fatal(err)
	}
	if len(txs) != 11 {
		t.Errorf("basic verify returned %d txs", len(txs))
	}
	if ans.Size() <= 0 {
		t.Error("basic answer size not accounted")
	}
	// Tampered block body must be rejected.
	blocks[2].Txs[0].Args[0] = types.Dec(9999)
	if _, err := BasicVerify(ans, headers, match); err == nil {
		t.Error("tampered block accepted by basic verify")
	}
}

func TestSamplingEquations(t *testing.T) {
	// With no Byzantine nodes a digest is never wrong.
	if got := WrongDigestProbability(0, 10, 3, 3); got != 0 {
		t.Errorf("p=0: θ = %g", got)
	}
	// m greater than the Byzantine maximum forces θ = 0.
	if got := WrongDigestProbability(0.4, 10, 4, 3); got != 0 {
		t.Errorf("m>max: θ = %g", got)
	}
	// θ decreases as m grows (more identical replies, more confidence).
	prev := 1.0
	for m := 1; m <= 5; m++ {
		θ := WrongDigestProbability(0.2, 20, m, 20)
		if θ > prev {
			t.Errorf("θ not monotone: m=%d gives %g > %g", m, θ, prev)
		}
		prev = θ
	}
	// For m=1, θ equals p: a single reply is wrong with probability p.
	if θ := WrongDigestProbability(0.3, 10, 1, 10); θ < 0.299 || θ > 0.301 {
		t.Errorf("m=1: θ = %g, want 0.3", θ)
	}
	// Degenerate inputs.
	if WrongDigestProbability(0.3, 5, 6, 10) != 1 {
		t.Error("m>n should be conservative 1")
	}
	if WrongDigestProbability(0.3, 5, 0, 10) != 1 {
		t.Error("m=0 should be conservative 1")
	}
	// Equations 4 and 5 are mirror images.
	for _, p := range []float64{0.1, 0.25, 0.33} {
		for m := 1; m <= 4; m++ {
			if w, h := WinProbability(p, m), HonestProbability(1-p, m); fmt.Sprintf("%.12g", w) != fmt.Sprintf("%.12g", h) {
				t.Errorf("p=%g m=%d: pw=%g mirror=%g", p, m, w, h)
			}
		}
	}
}

func TestMinIdenticalFor(t *testing.T) {
	// PBFT with 4 nodes, 1 Byzantine (p=0.25, max=1): m=2 suffices since
	// m > max.
	if m := MinIdenticalFor(0.25, 4, 1, 0.01); m != 2 {
		t.Errorf("PBFT-4: m = %d, want 2", m)
	}
	// Heavily Byzantine environment: larger m needed.
	m1 := MinIdenticalFor(0.3, 50, 50, 0.01)
	m2 := MinIdenticalFor(0.3, 50, 50, 0.0001)
	if m1 == 0 || m2 == 0 || m2 < m1 {
		t.Errorf("MinIdenticalFor not monotone in θ: %d vs %d", m1, m2)
	}
	// Unachievable credibility returns 0.
	if m := MinIdenticalFor(0.5, 3, 3, 1e-12); m != 0 {
		t.Errorf("impossible target returned %d", m)
	}
}

func TestBinom(t *testing.T) {
	cases := []struct {
		n, k int
		want float64
	}{
		{5, 0, 1}, {5, 5, 1}, {5, 2, 10}, {10, 3, 120}, {0, 0, 1}, {3, 5, 0}, {3, -1, 0},
	}
	for _, c := range cases {
		if got := binom(c.n, c.k); got != c.want {
			t.Errorf("binom(%d,%d) = %g, want %g", c.n, c.k, got, c.want)
		}
	}
}
