package sqlparser

import (
	"testing"

	"sebdb/internal/types"
)

func mustParse(t *testing.T, src string) Statement {
	t.Helper()
	st, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return st
}

func TestParseCreate(t *testing.T) {
	st := mustParse(t, `CREATE Donate ( donor string, project string, amount decimal)`)
	ct, ok := st.(*CreateTable)
	if !ok {
		t.Fatalf("got %T", st)
	}
	if ct.Name != "Donate" || len(ct.Columns) != 3 {
		t.Errorf("parsed %+v", ct)
	}
	if ct.Columns[2].Name != "amount" || ct.Columns[2].Kind != types.KindDecimal {
		t.Errorf("column 2 = %+v", ct.Columns[2])
	}
	// CREATE TABLE variant and trailing semicolon.
	st = mustParse(t, `create table t (a int);`)
	if st.(*CreateTable).Name != "t" {
		t.Error("CREATE TABLE variant failed")
	}
}

func TestParseInsert(t *testing.T) {
	st := mustParse(t, `INSERT into Donate VALUES("Jack", "Education", 100)`)
	ins := st.(*Insert)
	if ins.Table != "Donate" || len(ins.Values) != 3 {
		t.Fatalf("parsed %+v", ins)
	}
	if ins.Values[0] != types.Str("Jack") || ins.Values[2] != types.Int(100) {
		t.Errorf("values = %v", ins.Values)
	}
	// The paper's Example-1 syntax omits VALUES.
	st = mustParse(t, `INSERT into Donate ("Jack", "Education", 100.5)`)
	if v := st.(*Insert).Values[2]; v != types.Dec(100.5) {
		t.Errorf("decimal literal = %v", v)
	}
	// Placeholders (Table II Q1: INSERT INTO donate VALUES(?,?,?)).
	st = mustParse(t, `INSERT INTO donate VALUES(?,?,?)`)
	ins = st.(*Insert)
	if len(ins.Params) != 3 || ins.Params[1] != 1 {
		t.Errorf("params = %v", ins.Params)
	}
	// Booleans, null, negative numbers.
	st = mustParse(t, `INSERT INTO t (true, false, null, -5)`)
	vs := st.(*Insert).Values
	if !vs[0].AsBool() || vs[1].AsBool() || !vs[2].IsNull() || vs[3] != types.Int(-5) {
		t.Errorf("literals = %v", vs)
	}
}

func TestParseSelect(t *testing.T) {
	st := mustParse(t, `SELECT * FROM donate WHERE amount BETWEEN 10 AND 20`)
	s := st.(*Select)
	if s.Columns != nil || s.Table.Name != "donate" || len(s.Where) != 1 {
		t.Fatalf("parsed %+v", s)
	}
	pr := s.Where[0]
	if pr.Op != OpBetween || pr.Val != types.Int(10) || pr.Hi != types.Int(20) {
		t.Errorf("pred = %+v", pr)
	}

	st = mustParse(t, `SELECT donor, amount FROM donate WHERE donor = "Jack" AND amount >= 5 WINDOW [100, 200]`)
	s = st.(*Select)
	if len(s.Columns) != 2 || s.Columns[1] != "amount" {
		t.Errorf("columns = %v", s.Columns)
	}
	if len(s.Where) != 2 || s.Where[1].Op != OpGe {
		t.Errorf("where = %+v", s.Where)
	}
	if s.Window == nil || s.Window.Start != 100 || s.Window.End != 200 {
		t.Errorf("window = %+v", s.Window)
	}

	for _, src := range []string{
		`SELECT * FROM t WHERE a != 3`,
		`SELECT * FROM t WHERE a <> 3`,
	} {
		if st := mustParse(t, src); st.(*Select).Where[0].Op != OpNe {
			t.Errorf("%q: wrong op", src)
		}
	}
	ops := map[string]Op{"<": OpLt, "<=": OpLe, ">": OpGt, ">=": OpGe, "=": OpEq}
	for sym, want := range ops {
		st := mustParse(t, `SELECT * FROM t WHERE a `+sym+` 3`)
		if got := st.(*Select).Where[0].Op; got != want {
			t.Errorf("op %q parsed as %v", sym, got)
		}
	}
}

func TestParseOnChainJoin(t *testing.T) {
	st := mustParse(t, `SELECT * FROM transfer, distribute ON transfer.organization = distribute.organization`)
	j := st.(*Join)
	if j.Left.Name != "transfer" || j.Right.Name != "distribute" {
		t.Fatalf("tables = %+v", j)
	}
	if j.LeftCol != "organization" || j.RightCol != "organization" {
		t.Errorf("cols = %s/%s", j.LeftCol, j.RightCol)
	}
	// Reversed ON order still aligns.
	st = mustParse(t, `SELECT * FROM a, b ON b.y = a.x`)
	j = st.(*Join)
	if j.LeftCol != "x" || j.RightCol != "y" {
		t.Errorf("reversed ON: cols = %s/%s", j.LeftCol, j.RightCol)
	}
}

func TestParseOnOffJoin(t *testing.T) {
	st := mustParse(t, `SELECT * FROM onchain.distribute, offchain.donorinfo ON distribute.donee = donorinfo.donee`)
	j := st.(*Join)
	if j.Left.Chain != ChainOn || j.Right.Chain != ChainOff {
		t.Fatalf("chains = %+v", j)
	}
	if j.Left.Name != "distribute" || j.Right.Name != "donorinfo" {
		t.Errorf("names = %+v", j)
	}
	// Fully qualified columns in ON.
	st = mustParse(t, `SELECT * FROM onchain.a, offchain.b ON onchain.a.x = offchain.b.y`)
	j = st.(*Join)
	if j.LeftCol != "x" || j.RightCol != "y" {
		t.Errorf("qualified cols = %s/%s", j.LeftCol, j.RightCol)
	}
	// Join with window.
	st = mustParse(t, `SELECT * FROM a, b ON a.x = b.y WINDOW [1, 2]`)
	if st.(*Join).Window == nil {
		t.Error("join window lost")
	}
}

func TestParseTrace(t *testing.T) {
	st := mustParse(t, `TRACE OPERATOR = "org1"`)
	tr := st.(*Trace)
	if !tr.HasOperator || tr.Operator != "org1" || tr.HasOperation || tr.Window != nil {
		t.Fatalf("parsed %+v", tr)
	}
	st = mustParse(t, `TRACE [100,200] OPERATOR = "org1", OPERATION = "transfer";`)
	tr = st.(*Trace)
	if tr.Window == nil || tr.Window.Start != 100 || tr.Window.End != 200 {
		t.Errorf("window = %+v", tr.Window)
	}
	if tr.Operator != "org1" || tr.Operation != "transfer" {
		t.Errorf("dims = %q/%q", tr.Operator, tr.Operation)
	}
	st = mustParse(t, `TRACE OPERATION = "donate"`)
	tr = st.(*Trace)
	if tr.HasOperator || !tr.HasOperation {
		t.Errorf("operation-only trace = %+v", tr)
	}
}

func TestParseGetBlock(t *testing.T) {
	st := mustParse(t, `GET BLOCK ID=7`)
	g := st.(*GetBlock)
	if g.By != ByID || g.Val != 7 {
		t.Fatalf("parsed %+v", g)
	}
	if g := mustParse(t, `get block tid = 42`).(*GetBlock); g.By != ByTid || g.Val != 42 {
		t.Errorf("tid form = %+v", g)
	}
	if g := mustParse(t, `GET BLOCK TS=123456`).(*GetBlock); g.By != ByTs {
		t.Errorf("ts form = %+v", g)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`DROP TABLE t`,
		`CREATE t`,
		`CREATE t (a blob)`,
		`CREATE t (a int`,
		`INSERT donate (1)`,
		`INSERT INTO donate (1,`,
		`SELECT FROM t`,
		`SELECT * FROM t WHERE`,
		`SELECT * FROM t WHERE a`,
		`SELECT * FROM t WHERE a LIKE 3`,
		`SELECT * FROM t WHERE a BETWEEN 1`,
		`SELECT * FROM badchain.t`,
		`SELECT a FROM t, s ON t.a = s.a`, // join needs SELECT *
		`SELECT * FROM t, s ON t.a = x.b`, // ON table mismatch
		`SELECT * FROM t, s ON t.a`,
		`TRACE`,
		`TRACE WINDOW [1,2]`,
		`GET BLOCK`,
		`GET BLOCK HEIGHT=1`,
		`GET BLOCK ID=abc`,
		`SELECT * FROM t WINDOW [1,`,
		`SELECT * FROM t; garbage`,
		`INSERT INTO t ("unterminated)`,
		`SELECT * FROM t WHERE a = 3 @`,
	}
	for _, src := range bad {
		if st, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded: %+v", src, st)
		}
	}
}

func TestLexerBasics(t *testing.T) {
	toks, err := lex(`SELECT * FROM t WHERE a >= 3.5 AND b != 'x\'y'`)
	if err != nil {
		t.Fatal(err)
	}
	var kinds []tokenKind
	for _, tok := range toks {
		kinds = append(kinds, tok.kind)
	}
	if toks[len(toks)-1].kind != tkEOF {
		t.Error("missing EOF token")
	}
	// Escaped quote inside single-quoted string.
	for _, tok := range toks {
		if tok.kind == tkString && tok.text != `x'y` {
			t.Errorf("string literal = %q", tok.text)
		}
	}
	_ = kinds
}

func TestParseCount(t *testing.T) {
	st := mustParse(t, `SELECT COUNT(*) FROM donate WHERE amount > 5`)
	s := st.(*Select)
	if !s.Count || s.Columns != nil {
		t.Errorf("parsed %+v", s)
	}
	// Malformed COUNT forms fail.
	for _, src := range []string{
		`SELECT COUNT( FROM t`,
		`SELECT COUNT(a) FROM t`,
		`SELECT COUNT(*) FROM a, b ON a.x = b.y`,
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) accepted", src)
		}
	}
	// "count" as a plain column name still parses.
	st = mustParse(t, `SELECT count FROM t`)
	if s := st.(*Select); s.Count || len(s.Columns) != 1 || s.Columns[0] != "count" {
		t.Errorf("count column parsed as %+v", s)
	}
}
