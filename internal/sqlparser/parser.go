package sqlparser

import (
	"fmt"
	"strconv"
	"strings"

	"sebdb/internal/schema"
	"sebdb/internal/types"
)

// Parse parses one SQL-like statement.
func Parse(src string) (Statement, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, src: src}
	st, err := p.statement()
	if err != nil {
		return nil, err
	}
	p.accept(tkPunct, ";")
	if !p.at(tkEOF, "") {
		return nil, p.errf("trailing input %q", p.peek().text)
	}
	return st, nil
}

type parser struct {
	toks []token
	pos  int
	src  string
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tkEOF {
		p.pos++
	}
	return t
}

// at reports whether the current token matches kind and (case-
// insensitively) text; empty text matches any.
func (p *parser) at(kind tokenKind, text string) bool {
	t := p.peek()
	return t.kind == kind && (text == "" || strings.EqualFold(t.text, text))
}

// accept consumes the current token when it matches.
func (p *parser) accept(kind tokenKind, text string) bool {
	if p.at(kind, text) {
		p.next()
		return true
	}
	return false
}

func (p *parser) expect(kind tokenKind, text string) (token, error) {
	if p.at(kind, text) {
		return p.next(), nil
	}
	return token{}, p.errf("expected %q, found %q", text, p.peek().text)
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("sqlparser: %s (at offset %d in %q)",
		fmt.Sprintf(format, args...), p.peek().pos, p.src)
}

func (p *parser) statement() (Statement, error) {
	switch {
	case p.accept(tkIdent, "create"):
		return p.createTable()
	case p.accept(tkIdent, "insert"):
		return p.insert()
	case p.accept(tkIdent, "select"):
		return p.selectOrJoin()
	case p.accept(tkIdent, "trace"):
		return p.trace()
	case p.accept(tkIdent, "get"):
		return p.getBlock()
	case p.accept(tkIdent, "explain"):
		return p.explain()
	case p.accept(tkIdent, "show"):
		return p.showTraces()
	default:
		return nil, p.errf("unknown statement %q", p.peek().text)
	}
}

// showTraces parses SHOW [SLOW] TRACES [LIMIT n].
func (p *parser) showTraces() (Statement, error) {
	s := &ShowTraces{Slow: p.accept(tkIdent, "slow")}
	if _, err := p.expect(tkIdent, "traces"); err != nil {
		return nil, err
	}
	if p.accept(tkIdent, "limit") {
		n, err := p.expect(tkNumber, "")
		if err != nil {
			return nil, err
		}
		v, err := strconv.Atoi(n.text)
		if err != nil || v < 0 {
			return nil, p.errf("bad LIMIT %q", n.text)
		}
		s.Limit = v
	}
	return s, nil
}

// explain parses EXPLAIN [ANALYZE] <statement>.
func (p *parser) explain() (Statement, error) {
	analyze := p.accept(tkIdent, "analyze")
	start := p.peek().pos
	st, err := p.statement()
	if err != nil {
		return nil, err
	}
	if _, ok := st.(*Explain); ok {
		return nil, p.errf("EXPLAIN cannot be nested")
	}
	src := strings.TrimSpace(p.src[start:p.peek().pos])
	return &Explain{Analyze: analyze, Stmt: st, Src: src}, nil
}

// createTable parses CREATE [TABLE] name (col type, ...).
func (p *parser) createTable() (Statement, error) {
	p.accept(tkIdent, "table")
	name, err := p.expect(tkIdent, "")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tkPunct, "("); err != nil {
		return nil, err
	}
	var cols []schema.Column
	for {
		cn, err := p.expect(tkIdent, "")
		if err != nil {
			return nil, err
		}
		tn, err := p.expect(tkIdent, "")
		if err != nil {
			return nil, err
		}
		kind, err := types.ParseKind(tn.text)
		if err != nil {
			return nil, p.errf("%v", err)
		}
		cols = append(cols, schema.Column{Name: cn.text, Kind: kind})
		if p.accept(tkPunct, ",") {
			continue
		}
		if _, err := p.expect(tkPunct, ")"); err != nil {
			return nil, err
		}
		break
	}
	return &CreateTable{Name: name.text, Columns: cols}, nil
}

// insert parses INSERT INTO name [VALUES] (v1, ...).
func (p *parser) insert() (Statement, error) {
	if _, err := p.expect(tkIdent, "into"); err != nil {
		return nil, err
	}
	name, err := p.expect(tkIdent, "")
	if err != nil {
		return nil, err
	}
	p.accept(tkIdent, "values")
	if _, err := p.expect(tkPunct, "("); err != nil {
		return nil, err
	}
	ins := &Insert{Table: name.text}
	for {
		if p.accept(tkPunct, "?") {
			ins.Params = append(ins.Params, len(ins.Values))
			ins.Values = append(ins.Values, types.Null)
		} else {
			v, err := p.literal()
			if err != nil {
				return nil, err
			}
			ins.Values = append(ins.Values, v)
		}
		if p.accept(tkPunct, ",") {
			continue
		}
		if _, err := p.expect(tkPunct, ")"); err != nil {
			return nil, err
		}
		break
	}
	return ins, nil
}

// literal parses a string, number, or boolean literal.
func (p *parser) literal() (types.Value, error) {
	t := p.peek()
	switch {
	case t.kind == tkString:
		p.next()
		return types.Str(t.text), nil
	case t.kind == tkNumber:
		p.next()
		if strings.Contains(t.text, ".") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return types.Null, p.errf("bad number %q", t.text)
			}
			return types.Dec(f), nil
		}
		i, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return types.Null, p.errf("bad number %q", t.text)
		}
		return types.Int(i), nil
	case t.kind == tkIdent && strings.EqualFold(t.text, "true"):
		p.next()
		return types.Bool(true), nil
	case t.kind == tkIdent && strings.EqualFold(t.text, "false"):
		p.next()
		return types.Bool(false), nil
	case t.kind == tkIdent && strings.EqualFold(t.text, "null"):
		p.next()
		return types.Null, nil
	default:
		return types.Null, p.errf("expected literal, found %q", t.text)
	}
}

// tableRef parses [onchain.|offchain.] name.
func (p *parser) tableRef() (TableRef, error) {
	id, err := p.expect(tkIdent, "")
	if err != nil {
		return TableRef{}, err
	}
	ref := TableRef{Name: strings.ToLower(id.text)}
	if p.accept(tkPunct, ".") {
		second, err := p.expect(tkIdent, "")
		if err != nil {
			return TableRef{}, err
		}
		switch ref.Name {
		case "onchain":
			ref.Chain = ChainOn
		case "offchain":
			ref.Chain = ChainOff
		default:
			return TableRef{}, p.errf("unknown qualifier %q (want onchain/offchain)", ref.Name)
		}
		ref.Name = strings.ToLower(second.text)
	}
	return ref, nil
}

// selectOrJoin parses SELECT cols FROM t [, t2 ON a.x = b.y]
// [WHERE ...] [WINDOW [s,e]].
func (p *parser) selectOrJoin() (Statement, error) {
	var cols []string
	count := false
	if p.accept(tkPunct, "*") {
		cols = nil
	} else if p.at(tkIdent, "count") && p.toks[p.pos+1].kind == tkPunct && p.toks[p.pos+1].text == "(" {
		p.next() // count
		p.next() // (
		if _, err := p.expect(tkPunct, "*"); err != nil {
			return nil, err
		}
		if _, err := p.expect(tkPunct, ")"); err != nil {
			return nil, err
		}
		count = true
	} else {
		for {
			c, err := p.expect(tkIdent, "")
			if err != nil {
				return nil, err
			}
			cols = append(cols, strings.ToLower(c.text))
			if !p.accept(tkPunct, ",") {
				break
			}
		}
	}
	if _, err := p.expect(tkIdent, "from"); err != nil {
		return nil, err
	}
	left, err := p.tableRef()
	if err != nil {
		return nil, err
	}

	if p.accept(tkPunct, ",") {
		// Join form.
		right, err := p.tableRef()
		if err != nil {
			return nil, err
		}
		if cols != nil || count {
			return nil, p.errf("join supports SELECT * only")
		}
		if _, err := p.expect(tkIdent, "on"); err != nil {
			return nil, err
		}
		lt, lc, err := p.qualifiedCol()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tkOp, "="); err != nil {
			return nil, err
		}
		rt, rc, err := p.qualifiedCol()
		if err != nil {
			return nil, err
		}
		// Columns may come in either order; align to left/right tables.
		j := &Join{Left: left, Right: right}
		switch {
		case lt == left.Name && rt == right.Name:
			j.LeftCol, j.RightCol = lc, rc
		case lt == right.Name && rt == left.Name:
			j.LeftCol, j.RightCol = rc, lc
		default:
			return nil, p.errf("ON clause tables %q/%q do not match FROM tables", lt, rt)
		}
		if j.Where, err = p.whereOpt(); err != nil {
			return nil, err
		}
		if j.Window, err = p.windowOpt(); err != nil {
			return nil, err
		}
		return j, nil
	}

	s := &Select{Columns: cols, Count: count, Table: left}
	if s.Where, err = p.whereOpt(); err != nil {
		return nil, err
	}
	if s.Window, err = p.windowOpt(); err != nil {
		return nil, err
	}
	if err := p.orderLimitOpt(s); err != nil {
		return nil, err
	}
	return s, nil
}

// orderLimitOpt parses the optional ORDER BY and LIMIT suffixes.
func (p *parser) orderLimitOpt(s *Select) error {
	if p.accept(tkIdent, "order") {
		if _, err := p.expect(tkIdent, "by"); err != nil {
			return err
		}
		col, err := p.expect(tkIdent, "")
		if err != nil {
			return err
		}
		s.OrderBy = strings.ToLower(col.text)
		if p.accept(tkIdent, "desc") {
			s.Desc = true
		} else {
			p.accept(tkIdent, "asc")
		}
	}
	if p.accept(tkIdent, "limit") {
		n, err := p.expect(tkNumber, "")
		if err != nil {
			return err
		}
		v, err := strconv.Atoi(n.text)
		if err != nil || v < 0 {
			return p.errf("bad LIMIT %q", n.text)
		}
		s.Limit = v
	}
	return nil
}

// qualifiedCol parses table.col (table may itself be chain-qualified,
// e.g. onchain.distribute.donee) and returns (table, col).
func (p *parser) qualifiedCol() (string, string, error) {
	first, err := p.expect(tkIdent, "")
	if err != nil {
		return "", "", err
	}
	if _, err := p.expect(tkPunct, "."); err != nil {
		return "", "", err
	}
	second, err := p.expect(tkIdent, "")
	if err != nil {
		return "", "", err
	}
	a, b := strings.ToLower(first.text), strings.ToLower(second.text)
	if a == "onchain" || a == "offchain" {
		if !p.accept(tkPunct, ".") {
			return "", "", p.errf("expected .column after %s.%s", a, b)
		}
		third, err := p.expect(tkIdent, "")
		if err != nil {
			return "", "", err
		}
		return b, strings.ToLower(third.text), nil
	}
	return a, b, nil
}

// whereOpt parses an optional WHERE clause: conjuncts of col op literal
// and col BETWEEN lo AND hi.
func (p *parser) whereOpt() ([]Pred, error) {
	if !p.accept(tkIdent, "where") {
		return nil, nil
	}
	var preds []Pred
	for {
		col, err := p.expect(tkIdent, "")
		if err != nil {
			return nil, err
		}
		var pr Pred
		pr.Col = strings.ToLower(col.text)
		if p.accept(tkIdent, "between") {
			pr.Op = OpBetween
			if pr.Val, err = p.literal(); err != nil {
				return nil, err
			}
			if _, err := p.expect(tkIdent, "and"); err != nil {
				return nil, err
			}
			if pr.Hi, err = p.literal(); err != nil {
				return nil, err
			}
		} else {
			opTok := p.peek()
			if opTok.kind != tkOp {
				return nil, p.errf("expected comparison operator, found %q", opTok.text)
			}
			p.next()
			switch opTok.text {
			case "=":
				pr.Op = OpEq
			case "!=":
				pr.Op = OpNe
			case "<":
				pr.Op = OpLt
			case "<=":
				pr.Op = OpLe
			case ">":
				pr.Op = OpGt
			case ">=":
				pr.Op = OpGe
			default:
				return nil, p.errf("unsupported operator %q", opTok.text)
			}
			if pr.Val, err = p.literal(); err != nil {
				return nil, err
			}
		}
		preds = append(preds, pr)
		if !p.accept(tkIdent, "and") {
			break
		}
	}
	return preds, nil
}

// windowOpt parses an optional WINDOW [s, e] suffix. The bracket form
// alone ([s,e]) is also accepted, matching the paper's TRACE syntax.
func (p *parser) windowOpt() (*Window, error) {
	p.accept(tkIdent, "window")
	if !p.accept(tkPunct, "[") {
		return nil, nil
	}
	lo, err := p.expect(tkNumber, "")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tkPunct, ","); err != nil {
		return nil, err
	}
	hi, err := p.expect(tkNumber, "")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tkPunct, "]"); err != nil {
		return nil, err
	}
	s, err1 := strconv.ParseInt(lo.text, 10, 64)
	e, err2 := strconv.ParseInt(hi.text, 10, 64)
	if err1 != nil || err2 != nil {
		return nil, p.errf("bad window bounds")
	}
	return &Window{Start: s, End: e}, nil
}

// trace parses TRACE [s,e] OPERATOR = "x" [,|AND] OPERATION = "y".
func (p *parser) trace() (Statement, error) {
	t := &Trace{}
	var err error
	if t.Window, err = p.windowOpt(); err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept(tkIdent, "operator"):
			if _, err := p.expect(tkOp, "="); err != nil {
				return nil, err
			}
			v, err := p.literal()
			if err != nil {
				return nil, err
			}
			t.Operator, t.HasOperator = v.S, true
		case p.accept(tkIdent, "operation"):
			if _, err := p.expect(tkOp, "="); err != nil {
				return nil, err
			}
			v, err := p.literal()
			if err != nil {
				return nil, err
			}
			t.Operation, t.HasOperation = v.S, true
		default:
			if !t.HasOperator && !t.HasOperation {
				return nil, p.errf("TRACE needs OPERATOR and/or OPERATION")
			}
			return t, nil
		}
		if p.accept(tkPunct, ",") || p.accept(tkIdent, "and") {
			continue
		}
	}
}

// getBlock parses GET BLOCK ID=? | TID=? | TS=?.
func (p *parser) getBlock() (Statement, error) {
	if _, err := p.expect(tkIdent, "block"); err != nil {
		return nil, err
	}
	g := &GetBlock{}
	switch {
	case p.accept(tkIdent, "id"):
		g.By = ByID
	case p.accept(tkIdent, "tid"):
		g.By = ByTid
	case p.accept(tkIdent, "ts"):
		g.By = ByTs
	default:
		return nil, p.errf("GET BLOCK needs ID, TID or TS")
	}
	if _, err := p.expect(tkOp, "="); err != nil {
		return nil, err
	}
	n, err := p.expect(tkNumber, "")
	if err != nil {
		return nil, err
	}
	v, err := strconv.ParseInt(n.text, 10, 64)
	if err != nil {
		return nil, p.errf("bad block key %q", n.text)
	}
	g.Val = v
	return g, nil
}
