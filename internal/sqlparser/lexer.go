// Package sqlparser implements SEBDB's SQL-like language (paper §III-A,
// Table II): CREATE / INSERT / SELECT with time windows, the blockchain-
// specific TRACE clause, on-chain and on-off-chain JOINs, and GET BLOCK.
package sqlparser

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tkEOF tokenKind = iota
	tkIdent
	tkString
	tkNumber
	tkPunct // ( ) , . * [ ] ; ?
	tkOp    // = < > <= >= != <>
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

// lexer turns the input into tokens; keywords stay tkIdent and are
// matched case-insensitively by the parser.
type lexer struct {
	src  string
	pos  int
	toks []token
}

// lex tokenises src.
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case unicode.IsSpace(rune(c)):
			l.pos++
		case c == '"' || c == '\'':
			if err := l.lexString(c); err != nil {
				return nil, err
			}
		case c >= '0' && c <= '9' || (c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9'):
			l.lexNumber()
		case isIdentStart(c):
			l.lexIdent()
		case strings.ContainsRune("(),.*[];?", rune(c)):
			l.toks = append(l.toks, token{tkPunct, string(c), l.pos})
			l.pos++
		case c == '=' || c == '<' || c == '>' || c == '!':
			l.lexOp()
		default:
			return nil, fmt.Errorf("sqlparser: unexpected character %q at %d", c, l.pos)
		}
	}
	l.toks = append(l.toks, token{tkEOF, "", l.pos})
	return l.toks, nil
}

func isIdentStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}

func isIdentPart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c))
}

func (l *lexer) lexString(quote byte) error {
	start := l.pos
	l.pos++
	var sb strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == quote {
			l.pos++
			l.toks = append(l.toks, token{tkString, sb.String(), start})
			return nil
		}
		if c == '\\' && l.pos+1 < len(l.src) {
			l.pos++
			c = l.src[l.pos]
		}
		sb.WriteByte(c)
		l.pos++
	}
	return fmt.Errorf("sqlparser: unterminated string at %d", start)
}

func (l *lexer) lexNumber() {
	start := l.pos
	if l.src[l.pos] == '-' {
		l.pos++
	}
	seenDot := false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '.' && !seenDot {
			seenDot = true
			l.pos++
			continue
		}
		if c < '0' || c > '9' {
			break
		}
		l.pos++
	}
	l.toks = append(l.toks, token{tkNumber, l.src[start:l.pos], start})
}

func (l *lexer) lexIdent() {
	start := l.pos
	for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
		l.pos++
	}
	l.toks = append(l.toks, token{tkIdent, l.src[start:l.pos], start})
}

func (l *lexer) lexOp() {
	start := l.pos
	c := l.src[l.pos]
	l.pos++
	if l.pos < len(l.src) {
		two := string(c) + string(l.src[l.pos])
		switch two {
		case "<=", ">=", "!=", "<>":
			l.pos++
			if two == "<>" {
				two = "!="
			}
			l.toks = append(l.toks, token{tkOp, two, start})
			return
		}
	}
	l.toks = append(l.toks, token{tkOp, string(c), start})
}
