package sqlparser

import (
	"sebdb/internal/schema"
	"sebdb/internal/types"
)

// Statement is any parsed SQL-like statement.
type Statement interface{ stmt() }

// Chain identifies which side of the on/off-chain divide a table
// reference names.
type Chain int

const (
	// ChainDefault means the statement did not qualify the table; the
	// engine resolves it (on-chain first, then off-chain).
	ChainDefault Chain = iota
	// ChainOn is an explicit onchain.<table> reference.
	ChainOn
	// ChainOff is an explicit offchain.<table> reference.
	ChainOff
)

// TableRef is a possibly chain-qualified table name.
type TableRef struct {
	Chain Chain
	Name  string
}

// Op is a comparison operator in a WHERE predicate.
type Op int

const (
	OpEq Op = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpBetween
)

// String renders the operator in SQL syntax.
func (o Op) String() string {
	switch o {
	case OpEq:
		return "="
	case OpNe:
		return "!="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	case OpBetween:
		return "BETWEEN"
	default:
		return "?"
	}
}

// Pred is one conjunct of a WHERE clause: column <op> value, or
// column BETWEEN Val AND Hi.
type Pred struct {
	Col string
	Op  Op
	Val types.Value
	Hi  types.Value // BETWEEN upper bound
}

// Window is a [start, end] time restriction in Unix microseconds; End
// zero means unbounded above.
type Window struct {
	Start int64
	End   int64
}

// CreateTable is CREATE [TABLE] name (col type, ...).
type CreateTable struct {
	Name    string
	Columns []schema.Column
}

func (*CreateTable) stmt() {}

// Insert is INSERT INTO name [VALUES] (v1, ...). Values may contain
// placeholders (types.Null at positions listed in Params) bound at
// execution time.
type Insert struct {
	Table  string
	Values []types.Value
	// Params records the positions of '?' placeholders.
	Params []int
}

func (*Insert) stmt() {}

// Select is SELECT cols FROM table [WHERE preds] [WINDOW [s,e]]
// [ORDER BY col [ASC|DESC]] [LIMIT n].
type Select struct {
	// Columns is nil for SELECT *.
	Columns []string
	// Count marks SELECT COUNT(*): only the row count is returned.
	Count  bool
	Table  TableRef
	Where  []Pred
	Window *Window
	// OrderBy is the sort column; empty means chain order.
	OrderBy string
	// Desc reverses the sort.
	Desc bool
	// Limit caps the row count; zero means unlimited.
	Limit int
}

func (*Select) stmt() {}

// Join is SELECT * FROM left, right ON left.col = right.col — the
// on-chain and on-off-chain join statements (Table II, Q5/Q6).
type Join struct {
	Left, Right       TableRef
	LeftCol, RightCol string
	Where             []Pred
	Window            *Window
}

func (*Join) stmt() {}

// Trace is TRACE [start,end] OPERATOR = "..." [, OPERATION = "..."] —
// the track-trace clause (Table II, Q2/Q3). Either dimension may be
// empty but not both.
type Trace struct {
	Window   *Window
	Operator string
	// HasOperator distinguishes OPERATOR="" from absence.
	HasOperator  bool
	Operation    string
	HasOperation bool
}

func (*Trace) stmt() {}

// GetBlockBy selects the lookup key of a GET BLOCK statement.
type GetBlockBy int

const (
	ByID GetBlockBy = iota
	ByTid
	ByTs
)

// GetBlock is GET BLOCK ID=? | TID=? | TS=? (Table II, Q7).
type GetBlock struct {
	By  GetBlockBy
	Val int64
}

func (*GetBlock) stmt() {}

// Explain is EXPLAIN [ANALYZE] <statement>. Plain EXPLAIN reports the
// planner's access-path decision without running the statement;
// EXPLAIN ANALYZE executes it under a query trace and reports the
// per-stage span tree.
type Explain struct {
	// Analyze marks EXPLAIN ANALYZE.
	Analyze bool
	// Stmt is the statement being explained.
	Stmt Statement
	// Src is the statement's original text (without the EXPLAIN
	// prefix), kept so ANALYZE can re-parse it inside the trace.
	Src string
}

func (*Explain) stmt() {}

// ShowTraces is SHOW [SLOW] TRACES [LIMIT n] — node-local introspection
// over the statement flight recorder. SHOW TRACES lists the most recent
// sampled statements, SHOW SLOW TRACES the captured slow statements.
type ShowTraces struct {
	// Slow selects the slow-query ring instead of the recent ring.
	Slow bool
	// Limit caps the number of traces rendered (0 = all retained).
	Limit int
}

func (*ShowTraces) stmt() {}
