package cache

import "hash/fnv"

// Sharded is a byte-bounded LRU striped over N independently locked
// shards. Keys are distributed by FNV-1a hash, so concurrent readers
// on different keys contend on different mutexes — the single global
// cache mutex was the last shared lock on the otherwise lock-free view
// read path. Aggregate semantics (capacity, Counters) match a single
// LRU of the same total capacity; only eviction locality differs (each
// shard evicts within its own stripe).
type Sharded struct {
	shards []*LRU
	mask   uint32
}

// DefaultShards is the shard count used when callers pass zero.
const DefaultShards = 8

// NewSharded returns a sharded LRU bounded to capBytes in total,
// striped over the given number of shards (rounded up to a power of
// two; zero means DefaultShards). Each shard is bounded to its equal
// split of the capacity.
func NewSharded(capBytes int64, shards int) *Sharded {
	if shards <= 0 {
		shards = DefaultShards
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	per := capBytes / int64(n)
	s := &Sharded{shards: make([]*LRU, n), mask: uint32(n - 1)}
	for i := range s.shards {
		s.shards[i] = NewLRU(per)
	}
	return s
}

// shard maps a key to its stripe by FNV-1a hash.
func (s *Sharded) shard(key string) *LRU {
	h := fnv.New32a()
	h.Write([]byte(key)) //sebdb:ignore-err hash.Hash.Write never fails
	return s.shards[h.Sum32()&s.mask]
}

// Get returns the cached value for key and promotes it in its shard.
func (s *Sharded) Get(key string) (any, bool) { return s.shard(key).Get(key) }

// Put inserts or refreshes key in its shard, evicting within that
// shard to stay within its capacity split.
func (s *Sharded) Put(key string, val any, size int64) { s.shard(key).Put(key, val, size) }

// Shards returns the number of stripes.
func (s *Sharded) Shards() int { return len(s.shards) }

// Len returns the total number of cached entries.
func (s *Sharded) Len() int {
	n := 0
	for _, sh := range s.shards {
		n += sh.Len()
	}
	return n
}

// Used returns the total accounted bytes currently cached.
func (s *Sharded) Used() int64 {
	var n int64
	for _, sh := range s.shards {
		n += sh.Used()
	}
	return n
}

// Counters aggregates all shards' statistics — the same shape a single
// LRU reports, so dashboards and tests keyed on the unsharded cache
// read identically.
func (s *Sharded) Counters() Counters {
	var out Counters
	for _, sh := range s.shards {
		c := sh.Counters()
		out.Hits += c.Hits
		out.Misses += c.Misses
		out.Evictions += c.Evictions
		out.Contention += c.Contention
		out.Bytes += c.Bytes
		out.Entries += c.Entries
	}
	return out
}

// ShardCounters returns each shard's statistics in stripe order, for
// occupancy and contention introspection (Engine.CacheStats exposes the
// aggregate; the per-shard view shows skew).
func (s *Sharded) ShardCounters() []Counters {
	out := make([]Counters, len(s.shards))
	for i, sh := range s.shards {
		out[i] = sh.Counters()
	}
	return out
}

// Reset drops all entries and statistics in every shard.
func (s *Sharded) Reset() {
	for _, sh := range s.shards {
		sh.Reset()
	}
}
