package cache

import (
	"fmt"
	"sync"
	"testing"
)

func TestShardedPowerOfTwo(t *testing.T) {
	cases := []struct{ in, want int }{
		{0, 8}, {1, 1}, {2, 2}, {3, 4}, {5, 8}, {16, 16},
	}
	for _, tc := range cases {
		if got := NewSharded(1024, tc.in).Shards(); got != tc.want {
			t.Errorf("NewSharded(shards=%d).Shards() = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestShardedGetPut(t *testing.T) {
	c := NewSharded(1<<20, 4)
	for i := 0; i < 100; i++ {
		c.Put(fmt.Sprintf("k%d", i), i, 10)
	}
	for i := 0; i < 100; i++ {
		v, ok := c.Get(fmt.Sprintf("k%d", i))
		if !ok || v.(int) != i {
			t.Fatalf("Get(k%d) = %v, %v", i, v, ok)
		}
	}
	if c.Len() != 100 {
		t.Errorf("Len = %d", c.Len())
	}
	if c.Used() != 1000 {
		t.Errorf("Used = %d", c.Used())
	}
}

// TestShardedAggregateCounters checks the sharded cache reports the
// same aggregate shape a single LRU would for the same traffic.
func TestShardedAggregateCounters(t *testing.T) {
	c := NewSharded(1<<20, 4)
	for i := 0; i < 50; i++ {
		c.Put(fmt.Sprintf("k%d", i), i, 8)
	}
	for i := 0; i < 50; i++ {
		c.Get(fmt.Sprintf("k%d", i)) // hits
	}
	for i := 50; i < 70; i++ {
		c.Get(fmt.Sprintf("k%d", i)) // misses
	}
	agg := c.Counters()
	if agg.Hits != 50 || agg.Misses != 20 {
		t.Errorf("aggregate hits/misses = %d/%d, want 50/20", agg.Hits, agg.Misses)
	}
	if agg.Entries != 50 || agg.Bytes != 400 {
		t.Errorf("aggregate entries/bytes = %d/%d, want 50/400", agg.Entries, agg.Bytes)
	}
	// The per-shard view must sum to the aggregate.
	var hits, misses uint64
	var bytes int64
	for _, sc := range c.ShardCounters() {
		hits += sc.Hits
		misses += sc.Misses
		bytes += sc.Bytes
	}
	if hits != agg.Hits || misses != agg.Misses || bytes != agg.Bytes {
		t.Errorf("shard sum %d/%d/%d != aggregate %d/%d/%d",
			hits, misses, bytes, agg.Hits, agg.Misses, agg.Bytes)
	}
}

func TestShardedEvictionWithinStripe(t *testing.T) {
	// 4 shards of 64 bytes each: 32-byte entries mean each stripe holds
	// two, so pushing many keys must evict but never exceed capacity.
	c := NewSharded(256, 4)
	for i := 0; i < 64; i++ {
		c.Put(fmt.Sprintf("k%d", i), i, 32)
	}
	if used := c.Used(); used > 256 {
		t.Errorf("Used = %d exceeds total capacity", used)
	}
	if c.Counters().Evictions == 0 {
		t.Error("overfilling the cache never evicted")
	}
}

func TestShardedReset(t *testing.T) {
	c := NewSharded(1<<20, 2)
	c.Put("a", 1, 10)
	c.Get("a")
	c.Reset()
	if c.Len() != 0 || c.Used() != 0 {
		t.Errorf("after Reset: Len=%d Used=%d", c.Len(), c.Used())
	}
	if agg := c.Counters(); agg.Hits != 0 || agg.Misses != 0 {
		t.Errorf("after Reset: counters %+v", agg)
	}
}

// TestPutOversizeRefreshDropsStale covers the accounting fix: an
// oversize refresh of a cached key must drop the stale entry rather
// than leave the old value (and its accounted bytes) behind.
func TestPutOversizeRefreshDropsStale(t *testing.T) {
	c := NewLRU(100)
	c.Put("k", "old", 10)
	c.Put("k", "huge", 1000) // larger than the whole cache
	if _, ok := c.Get("k"); ok {
		t.Error("oversize refresh left the stale value cached")
	}
	if used := c.Used(); used != 0 {
		t.Errorf("Used = %d after oversize refresh, want 0", used)
	}
}

func TestPutRefreshAccounting(t *testing.T) {
	c := NewLRU(100)
	c.Put("k", "v1", 10)
	c.Put("k", "v2", 30) // refresh with a different size
	if used := c.Used(); used != 30 {
		t.Errorf("Used = %d after refresh, want 30", used)
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d after refresh, want 1", c.Len())
	}
}

// TestShardedConcurrent hammers all stripes from many goroutines; run
// under -race it checks stripe isolation, and the contention counter
// only ever grows.
func TestShardedConcurrent(t *testing.T) {
	c := NewSharded(1<<16, 4)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				key := fmt.Sprintf("k%d", (g*31+i)%512)
				if i%3 == 0 {
					c.Put(key, i, 16)
				} else {
					c.Get(key)
				}
			}
		}(g)
	}
	wg.Wait()
	agg := c.Counters()
	if agg.Hits+agg.Misses == 0 {
		t.Error("concurrent run recorded no gets")
	}
	if agg.Bytes > 1<<16 {
		t.Errorf("capacity exceeded: %d bytes", agg.Bytes)
	}
}
