package cache

import (
	"fmt"
	"sync"
	"testing"
)

func TestGetPut(t *testing.T) {
	c := NewLRU(100)
	if _, ok := c.Get("a"); ok {
		t.Error("empty cache hit")
	}
	c.Put("a", 1, 10)
	v, ok := c.Get("a")
	if !ok || v.(int) != 1 {
		t.Errorf("Get(a) = %v, %v", v, ok)
	}
	hits, misses := c.Stats()
	if hits != 1 || misses != 1 {
		t.Errorf("stats = %d/%d", hits, misses)
	}
}

func TestEvictionLRUOrder(t *testing.T) {
	c := NewLRU(30)
	c.Put("a", "A", 10)
	c.Put("b", "B", 10)
	c.Put("c", "C", 10)
	c.Get("a")          // promote a
	c.Put("d", "D", 10) // must evict b (least recently used)
	if _, ok := c.Get("b"); ok {
		t.Error("b should have been evicted")
	}
	for _, k := range []string{"a", "c", "d"} {
		if _, ok := c.Get(k); !ok {
			t.Errorf("%s should be cached", k)
		}
	}
	if c.Used() != 30 {
		t.Errorf("Used = %d", c.Used())
	}
}

func TestUpdateExistingKey(t *testing.T) {
	c := NewLRU(50)
	c.Put("a", 1, 10)
	c.Put("a", 2, 30)
	if c.Len() != 1 || c.Used() != 30 {
		t.Errorf("Len=%d Used=%d", c.Len(), c.Used())
	}
	v, _ := c.Get("a")
	if v.(int) != 2 {
		t.Errorf("value not updated: %v", v)
	}
}

func TestOversizedValueRejected(t *testing.T) {
	c := NewLRU(10)
	c.Put("big", 1, 100)
	if c.Len() != 0 {
		t.Error("oversized value admitted")
	}
	c.Put("ok", 1, 10)
	if c.Len() != 1 {
		t.Error("exact-fit value rejected")
	}
}

func TestEvictionCascade(t *testing.T) {
	c := NewLRU(100)
	for i := 0; i < 10; i++ {
		c.Put(fmt.Sprintf("k%d", i), i, 10)
	}
	c.Put("huge", 0, 95) // must evict nearly everything
	if c.Used() > 100 {
		t.Errorf("Used = %d exceeds cap", c.Used())
	}
	if _, ok := c.Get("huge"); !ok {
		t.Error("newest entry missing")
	}
}

func TestReset(t *testing.T) {
	c := NewLRU(100)
	c.Put("a", 1, 10)
	c.Get("a")
	c.Get("b")
	c.Reset()
	if c.Len() != 0 || c.Used() != 0 {
		t.Error("reset did not clear entries")
	}
	h, m := c.Stats()
	if h != 0 || m != 0 {
		t.Error("reset did not clear stats")
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := NewLRU(1000)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := fmt.Sprintf("k%d", (g*7+i)%50)
				c.Put(k, i, 10)
				c.Get(k)
			}
		}(g)
	}
	wg.Wait()
	if c.Used() > 1000 {
		t.Errorf("Used = %d exceeds cap after concurrent load", c.Used())
	}
}

// TestCountersEvictions checks the full Counters snapshot: eviction
// counting under pressure, occupancy, and Reset zeroing everything.
func TestCountersEvictions(t *testing.T) {
	c := NewLRU(30)
	for i := 0; i < 5; i++ {
		c.Put(fmt.Sprintf("k%d", i), i, 10) // cap 30: holds 3, evicts 2
	}
	c.Get("k4")
	c.Get("gone")
	cs := c.Counters()
	if cs.Evictions != 2 {
		t.Errorf("evictions = %d, want 2", cs.Evictions)
	}
	if cs.Hits != 1 || cs.Misses != 1 {
		t.Errorf("hits/misses = %d/%d, want 1/1", cs.Hits, cs.Misses)
	}
	if cs.Entries != 3 || cs.Bytes != 30 {
		t.Errorf("occupancy = %d entries / %d bytes, want 3/30", cs.Entries, cs.Bytes)
	}
	c.Reset()
	if got := c.Counters(); got != (Counters{}) {
		t.Errorf("counters after Reset = %+v, want zero", got)
	}
}
