// Package cache implements the LRU caches SEBDB interposes between the
// query engine and the block files. The paper (§IV-A, §VII-H) compares
// two policies: a block cache holding recently read blocks, and a
// transaction cache holding recently read transactions ("the cache unit
// is a transaction type"), the latter winning for index-driven queries.
package cache

import (
	"container/list"
	"sync"
)

// LRU is a byte-bounded least-recently-used cache. It is safe for
// concurrent use.
type LRU struct {
	mu    sync.Mutex
	cap   int64
	used  int64
	ll    *list.List
	items map[string]*list.Element

	hits, misses, evictions uint64
	// contention counts lock acquisitions that had to wait — the signal
	// sharding exists to drive down.
	contention uint64
}

// lock takes the cache mutex, counting the times it had to wait.
func (c *LRU) lock() {
	if c.mu.TryLock() {
		return
	}
	c.mu.Lock()
	c.contention++
}

type entry struct {
	key  string
	val  any
	size int64
}

// NewLRU returns an LRU bounded to capBytes of cached value sizes.
func NewLRU(capBytes int64) *LRU {
	return &LRU{cap: capBytes, ll: list.New(), items: make(map[string]*list.Element)}
}

// Get returns the cached value for key and promotes it.
func (c *LRU) Get(key string) (any, bool) {
	c.lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		return el.Value.(*entry).val, true
	}
	c.misses++
	return nil, false
}

// Put inserts or refreshes key with the given value and accounted size,
// evicting least-recently-used entries to stay within capacity. Values
// larger than the whole cache are not admitted; an oversize refresh of
// a cached key drops the stale entry instead of leaving it behind.
func (c *LRU) Put(key string, val any, size int64) {
	c.lock()
	defer c.mu.Unlock()
	if size > c.cap {
		// The early return used to skip this lookup, so an oversize
		// refresh left the previous (now stale) value cached — and two
		// racing refreshes could disagree about the accounted size.
		// Everything, including the admission check, now happens under
		// one critical section.
		if el, ok := c.items[key]; ok {
			e := el.Value.(*entry)
			delete(c.items, key)
			c.ll.Remove(el)
			c.used -= e.size
		}
		return
	}
	if el, ok := c.items[key]; ok {
		e := el.Value.(*entry)
		c.used += size - e.size
		e.val, e.size = val, size
		c.ll.MoveToFront(el)
	} else {
		c.items[key] = c.ll.PushFront(&entry{key: key, val: val, size: size})
		c.used += size
	}
	for c.used > c.cap {
		back := c.ll.Back()
		if back == nil {
			break
		}
		e := back.Value.(*entry)
		delete(c.items, e.key)
		c.ll.Remove(back)
		c.used -= e.size
		c.evictions++
	}
}

// Len returns the number of cached entries.
func (c *LRU) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Used returns the accounted bytes currently cached.
func (c *LRU) Used() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.used
}

// Stats returns cumulative hit and miss counts.
func (c *LRU) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Counters is a point-in-time snapshot of a cache's statistics and
// occupancy.
type Counters struct {
	// Hits and Misses are cumulative Get outcomes.
	Hits, Misses uint64
	// Evictions is the cumulative number of entries dropped to stay
	// within capacity (capacity misses, not Reset).
	Evictions uint64
	// Contention is the cumulative number of lock acquisitions that had
	// to wait for another goroutine.
	Contention uint64
	// Bytes is the accounted size of the entries currently cached.
	Bytes int64
	// Entries is the number of entries currently cached.
	Entries int
}

// Counters snapshots the cache's statistics and occupancy at once.
func (c *LRU) Counters() Counters {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Counters{
		Hits:       c.hits,
		Misses:     c.misses,
		Evictions:  c.evictions,
		Contention: c.contention,
		Bytes:      c.used,
		Entries:    c.ll.Len(),
	}
}

// Reset drops all entries and statistics.
func (c *LRU) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll = list.New()
	c.items = make(map[string]*list.Element)
	c.used, c.hits, c.misses, c.evictions = 0, 0, 0, 0
}
