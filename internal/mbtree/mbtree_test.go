package mbtree

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"sebdb/internal/types"
)

func recs(n int) []Record {
	out := make([]Record, n)
	for i := range out {
		out[i] = Record{Key: types.Int(int64(i * 2)), Payload: []byte(fmt.Sprintf("tx-%d", i))}
	}
	return out
}

func TestBuildAndRoot(t *testing.T) {
	rs := recs(500)
	a := Build(rs, 10)
	b := Build(rs, 10)
	if a.Root() != b.Root() {
		t.Error("same records must give same root")
	}
	if a.Len() != 500 {
		t.Errorf("Len = %d", a.Len())
	}
	// Shuffled input gives the same root (builder sorts).
	shuffled := recs(500)
	rand.New(rand.NewSource(3)).Shuffle(len(shuffled), func(i, j int) {
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	})
	if Build(shuffled, 10).Root() != a.Root() {
		t.Error("shuffle changed root")
	}
	// A different record changes the root.
	mod := recs(500)
	mod[250].Payload = []byte("evil")
	if Build(mod, 10).Root() == a.Root() {
		t.Error("tampered record did not change root")
	}
	// Fanout changes the shape and hence the root (acceptable: fanout is
	// a consensus-fixed parameter).
	if mn, _ := a.Min(); mn != types.Int(0) {
		t.Errorf("Min = %v", mn)
	}
	if mx, _ := a.Max(); mx != types.Int(998) {
		t.Errorf("Max = %v", mx)
	}
}

func TestEmptyTree(t *testing.T) {
	e := Build(nil, 0)
	if e.Len() != 0 {
		t.Error("empty tree has records")
	}
	if _, ok := e.Min(); ok {
		t.Error("empty tree has Min")
	}
	vo := e.RangeVO(types.Int(0), types.Int(10))
	got, err := Verify(vo, e.Root(), types.Int(0), types.Int(10))
	if err != nil || len(got) != 0 {
		t.Errorf("empty tree VO: %v, %v", got, err)
	}
}

func rangeWant(rs []Record, lo, hi types.Value) []Record {
	var out []Record
	for _, r := range rs {
		if types.Compare(r.Key, lo) >= 0 && types.Compare(r.Key, hi) <= 0 {
			out = append(out, r)
		}
	}
	return out
}

func TestRangeVOVerify(t *testing.T) {
	rs := recs(300) // keys 0,2,...,598
	tree := Build(rs, 8)
	root := tree.Root()
	cases := []struct{ lo, hi int64 }{
		{100, 120},   // interior
		{-10, 4},     // touches left edge
		{590, 700},   // touches right edge
		{-10, 10000}, // covers everything
		{101, 101},   // empty (odd key)
		{100, 100},   // single
		{700, 800},   // beyond max
		{-20, -10},   // below min
	}
	for _, c := range cases {
		lo, hi := types.Int(c.lo), types.Int(c.hi)
		vo := tree.RangeVO(lo, hi)
		got, err := Verify(vo, root, lo, hi)
		if err != nil {
			t.Errorf("[%d,%d]: %v", c.lo, c.hi, err)
			continue
		}
		want := rangeWant(rs, lo, hi)
		if !EqualRecords(got, want) {
			t.Errorf("[%d,%d]: got %d records, want %d", c.lo, c.hi, len(got), len(want))
		}
	}
}

func TestVerifyRejectsWrongRoot(t *testing.T) {
	tree := Build(recs(100), 8)
	vo := tree.RangeVO(types.Int(10), types.Int(20))
	bad := tree.Root()
	bad[0] ^= 0xFF
	if _, err := Verify(vo, bad, types.Int(10), types.Int(20)); err == nil {
		t.Error("wrong root accepted")
	}
}

func TestVerifyDetectsTamperedRecord(t *testing.T) {
	tree := Build(recs(100), 8)
	root := tree.Root()
	vo := tree.RangeVO(types.Int(10), types.Int(20))
	// Find an exposed leaf and corrupt a payload.
	var corrupt func(n *VONode) bool
	corrupt = func(n *VONode) bool {
		for i := range n.Entries {
			if r := n.Entries[i].Rec; r != nil && types.Compare(r.Key, types.Int(10)) >= 0 {
				r.Payload = []byte("forged")
				return true
			}
		}
		for _, k := range n.Kids {
			if corrupt(k) {
				return true
			}
		}
		return false
	}
	if !corrupt(vo.Root) {
		t.Fatal("no record to corrupt")
	}
	if _, err := Verify(vo, root, types.Int(10), types.Int(20)); err == nil {
		t.Error("tampered record accepted")
	}
}

// TestVerifyDetectsWithheldResults simulates a malicious server that
// drops part of the answer by substituting a pruned digest for a leaf
// that contains in-range records.
func TestVerifyDetectsWithheldResults(t *testing.T) {
	rs := recs(128)
	tree := Build(rs, 8)
	root := tree.Root()
	lo, hi := types.Int(100), types.Int(140)
	vo := tree.RangeVO(lo, hi)

	// Replace every exposed leaf holding in-range records with its
	// (correct!) digest: digests match, but completeness must fail.
	var prune func(n *VONode)
	prune = func(n *VONode) {
		for i, k := range n.Kids {
			if k.Entries != nil {
				inRange := false
				hs := make([]Hash, len(k.Entries))
				for j, le := range k.Entries {
					if le.Rec != nil {
						if types.Compare(le.Rec.Key, lo) >= 0 && types.Compare(le.Rec.Key, hi) <= 0 {
							inRange = true
						}
						hs[j] = recordHash(*le.Rec)
					} else {
						hs[j] = *le.Digest
					}
				}
				if inRange {
					d := leafHash(hs)
					n.Kids[i] = &VONode{Pruned: &d}
				}
			} else {
				prune(k)
			}
		}
	}
	prune(vo.Root)
	if _, err := Verify(vo, root, lo, hi); err == nil {
		t.Error("withheld results accepted: completeness check failed to fire")
	}
}

func TestVerifyRejectsReordered(t *testing.T) {
	tree := Build(recs(64), 8)
	root := tree.Root()
	vo := tree.RangeVO(types.Int(0), types.Int(126)) // whole tree exposed
	// Swap two records inside one leaf; digest changes, so this is caught
	// by the root check.
	var swap func(n *VONode) bool
	swap = func(n *VONode) bool {
		if len(n.Entries) >= 2 && n.Entries[0].Rec != nil && n.Entries[1].Rec != nil {
			n.Entries[0], n.Entries[1] = n.Entries[1], n.Entries[0]
			return true
		}
		for _, k := range n.Kids {
			if swap(k) {
				return true
			}
		}
		return false
	}
	if !swap(vo.Root) {
		t.Fatal("nothing to swap")
	}
	if _, err := Verify(vo, root, types.Int(0), types.Int(126)); err == nil {
		t.Error("reordered VO accepted")
	}
}

func TestVOEncodeDecodeRoundTrip(t *testing.T) {
	tree := Build(recs(200), 8)
	vo := tree.RangeVO(types.Int(50), types.Int(90))
	buf := vo.Encode()
	if vo.Size() != len(buf) {
		t.Error("Size != len(Encode)")
	}
	got, err := DecodeVO(buf)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Verify(got, tree.Root(), types.Int(50), types.Int(90))
	if err != nil {
		t.Fatal(err)
	}
	want := rangeWant(recs(200), types.Int(50), types.Int(90))
	if !EqualRecords(res, want) {
		t.Error("decoded VO verified to different records")
	}
	// Truncations must fail cleanly.
	for _, cut := range []int{0, 1, len(buf) / 2, len(buf) - 1} {
		if _, err := DecodeVO(buf[:cut]); err == nil {
			t.Errorf("truncated VO at %d decoded", cut)
		}
	}
}

func TestVOSizeGrowsSublinearly(t *testing.T) {
	// A selective VO must be far smaller than shipping the whole tree.
	rs := recs(10000)
	tree := Build(rs, 100)
	narrow := tree.RangeVO(types.Int(5000), types.Int(5020)).Size()
	full := tree.RangeVO(types.Int(-1), types.Int(1<<30)).Size()
	if narrow*10 > full {
		t.Errorf("narrow VO (%d) not much smaller than full (%d)", narrow, full)
	}
}

func TestDuplicateKeysVO(t *testing.T) {
	var rs []Record
	for i := 0; i < 60; i++ {
		rs = append(rs, Record{Key: types.Str("org1"), Payload: []byte(fmt.Sprintf("p%d", i))})
	}
	rs = append(rs, Record{Key: types.Str("aaa"), Payload: []byte("low")})
	rs = append(rs, Record{Key: types.Str("zzz"), Payload: []byte("high")})
	tree := Build(rs, 8)
	vo := tree.RangeVO(types.Str("org1"), types.Str("org1"))
	got, err := Verify(vo, tree.Root(), types.Str("org1"), types.Str("org1"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 60 {
		t.Errorf("duplicate-key VO returned %d of 60", len(got))
	}
}

func TestQuickRandomRanges(t *testing.T) {
	rs := recs(256)
	tree := Build(rs, 16)
	root := tree.Root()
	f := func(a, b int16) bool {
		lo, hi := int64(a), int64(b)
		if lo > hi {
			lo, hi = hi, lo
		}
		vo := tree.RangeVO(types.Int(lo), types.Int(hi))
		got, err := Verify(vo, root, types.Int(lo), types.Int(hi))
		if err != nil {
			return false
		}
		return EqualRecords(got, rangeWant(rs, types.Int(lo), types.Int(hi)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
