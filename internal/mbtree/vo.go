package mbtree

import (
	"bytes"
	"errors"
	"fmt"

	"sebdb/internal/types"
)

// LeafEntry is one slot of an exposed leaf: either the full record
// (for entries in the extended query range) or just its digest (for
// the leaf's out-of-range entries, which the client needs only to
// recompute the leaf hash).
type LeafEntry struct {
	Rec    *Record
	Digest *Hash
}

// VONode is one node of a verification object: either a pruned subtree
// (digest only), an exposed leaf, or an inner node whose children are
// themselves VO nodes.
type VONode struct {
	// Pruned is non-nil for a pruned subtree.
	Pruned *Hash
	// Entries holds an exposed leaf's slots.
	Entries []LeafEntry
	// Kids holds the children of an exposed inner node.
	Kids []*VONode
	// Leaf distinguishes an exposed empty leaf from an inner node;
	// only relevant for the degenerate empty tree.
	Leaf bool
}

// VO is the verification object for one range query against one
// MB-tree. The client reconstructs the root digest from it and checks
// soundness and completeness of the in-range records.
type VO struct {
	Root *VONode
}

// RangeVO answers [lo, hi] with a verification object. Exposed leaves
// cover the extended range (including boundary records); everything
// else is pruned to digests.
func (t *Tree) RangeVO(lo, hi types.Value) *VO {
	exLo, exHi := t.boundaries(lo, hi)
	var build func(n *node) *VONode
	build = func(n *node) *VONode {
		if t.size > 0 &&
			(types.Compare(n.max, exLo) < 0 || types.Compare(n.min, exHi) > 0) {
			d := n.digest
			return &VONode{Pruned: &d}
		}
		if n.leaf {
			out := &VONode{Leaf: true, Entries: make([]LeafEntry, len(n.recs))}
			for i := range n.recs {
				if types.Compare(n.recs[i].Key, exLo) >= 0 &&
					types.Compare(n.recs[i].Key, exHi) <= 0 {
					out.Entries[i].Rec = &n.recs[i]
				} else {
					d := recordHash(n.recs[i])
					out.Entries[i].Digest = &d
				}
			}
			return out
		}
		out := &VONode{Kids: make([]*VONode, len(n.kids))}
		for i, k := range n.kids {
			out.Kids[i] = build(k)
		}
		return out
	}
	return &VO{Root: build(t.root)}
}

// ErrVerify is the base error for all verification failures.
var ErrVerify = errors.New("mbtree: verification failed")

// Verify checks a VO against a trusted root digest for the query range
// [lo, hi]. On success it returns the in-range records, guaranteed
// sound (they hash into the root) and complete (boundary records or the
// VO shape prove no in-range record was withheld).
func Verify(vo *VO, root Hash, lo, hi types.Value) ([]Record, error) {
	got, recs, err := Reconstruct(vo, lo, hi)
	if err != nil {
		return nil, err
	}
	if got != root {
		return nil, fmt.Errorf("%w: root digest mismatch", ErrVerify)
	}
	return recs, nil
}

// Reconstruct rebuilds the root digest a VO commits to and returns it
// together with the in-range records, after checking the VO's internal
// consistency (ordering and completeness). SEBDB's two-phase thin-client
// protocol (paper §VI) uses this directly: the client reconstructs each
// block's MB-root from its VO, hashes the roots into a digest, and
// compares that digest against the answers of sampled auxiliary nodes
// instead of holding a trusted per-block root.
func Reconstruct(vo *VO, lo, hi types.Value) (Hash, []Record, error) {
	if vo == nil || vo.Root == nil {
		return Hash{}, nil, fmt.Errorf("%w: empty VO", ErrVerify)
	}
	// Flatten the VO in order, recomputing digests bottom-up.
	type item struct {
		rec    *Record
		pruned bool
	}
	var seq []item
	var rebuild func(n *VONode) (Hash, error)
	rebuild = func(n *VONode) (Hash, error) {
		switch {
		case n.Pruned != nil:
			seq = append(seq, item{pruned: true})
			return *n.Pruned, nil
		case n.Kids != nil:
			hs := make([]Hash, len(n.Kids))
			for i, k := range n.Kids {
				h, err := rebuild(k)
				if err != nil {
					return Hash{}, err
				}
				hs[i] = h
			}
			return innerHash(hs), nil
		case n.Leaf || n.Entries != nil:
			hs := make([]Hash, len(n.Entries))
			for i := range n.Entries {
				switch {
				case n.Entries[i].Rec != nil:
					hs[i] = recordHash(*n.Entries[i].Rec)
					seq = append(seq, item{rec: n.Entries[i].Rec})
				case n.Entries[i].Digest != nil:
					// A hidden entry could conceal anything; for the
					// completeness reasoning it behaves like a pruned
					// subtree.
					hs[i] = *n.Entries[i].Digest
					seq = append(seq, item{pruned: true})
				default:
					return Hash{}, fmt.Errorf("%w: empty leaf entry", ErrVerify)
				}
			}
			return leafHash(hs), nil
		default:
			return Hash{}, fmt.Errorf("%w: malformed VO node", ErrVerify)
		}
	}
	got, err := rebuild(vo.Root)
	if err != nil {
		return Hash{}, nil, err
	}

	// Exposed records must be sorted — otherwise the structure is not
	// the tree the root commits to (the builder sorts) and range
	// reasoning below would be unsound.
	var prev *Record
	for _, it := range seq {
		if it.rec == nil {
			continue
		}
		if prev != nil && types.Compare(prev.Key, it.rec.Key) > 0 {
			return Hash{}, nil, fmt.Errorf("%w: exposed records out of order", ErrVerify)
		}
		prev = it.rec
	}

	// Collect results and check completeness: no pruned subtree may sit
	// between the query range and an exposed boundary record. Concretely,
	// scanning in order, every pruned node must be (a) before an exposed
	// record with key < lo, or (b) after an exposed record with key > hi.
	var results []Record
	firstExposedGE := -1 // index in seq of first exposed record with key >= lo
	lastExposedLE := -1  // index in seq of last exposed record with key <= hi
	for i, it := range seq {
		if it.rec == nil {
			continue
		}
		if types.Compare(it.rec.Key, lo) >= 0 && firstExposedGE == -1 {
			firstExposedGE = i
		}
		if types.Compare(it.rec.Key, hi) <= 0 {
			lastExposedLE = i
		}
		if types.Compare(it.rec.Key, lo) >= 0 && types.Compare(it.rec.Key, hi) <= 0 {
			results = append(results, *it.rec)
		}
	}

	// Left completeness: any pruned node before firstExposedGE must be
	// separated from the range by a boundary record (< lo).
	sawBoundary := false
	for i, it := range seq {
		if firstExposedGE != -1 && i >= firstExposedGE {
			break
		}
		if it.rec != nil && types.Compare(it.rec.Key, lo) < 0 {
			sawBoundary = true
		}
	}
	if !sawBoundary {
		// No left boundary: then nothing may be pruned left of the range.
		for i, it := range seq {
			if firstExposedGE != -1 && i >= firstExposedGE {
				break
			}
			if it.pruned {
				return Hash{}, nil, fmt.Errorf("%w: left completeness violated", ErrVerify)
			}
		}
	}
	// Right completeness, symmetric.
	sawBoundary = false
	for i := len(seq) - 1; i >= 0; i-- {
		if lastExposedLE != -1 && i <= lastExposedLE {
			break
		}
		if seq[i].rec != nil && types.Compare(seq[i].rec.Key, hi) > 0 {
			sawBoundary = true
		}
	}
	if !sawBoundary {
		for i := len(seq) - 1; i >= 0; i-- {
			if lastExposedLE != -1 && i <= lastExposedLE {
				break
			}
			if seq[i].pruned {
				return Hash{}, nil, fmt.Errorf("%w: right completeness violated", ErrVerify)
			}
		}
	}
	return got, results, nil
}

// Encode serialises the VO; its length is the paper's "VO size" metric.
func (vo *VO) Encode() []byte {
	e := types.NewEncoder(256)
	var enc func(n *VONode)
	enc = func(n *VONode) {
		switch {
		case n.Pruned != nil:
			e.Uint8(0)
			e.Bytes32(*n.Pruned)
		case n.Kids != nil:
			e.Uint8(1)
			e.Count(len(n.Kids))
			for _, k := range n.Kids {
				enc(k)
			}
		default:
			e.Uint8(2)
			e.Count(len(n.Entries))
			for _, le := range n.Entries {
				if le.Rec != nil {
					e.Uint8(1)
					e.Value(le.Rec.Key)
					e.Blob(le.Rec.Payload)
				} else {
					e.Uint8(0)
					e.Bytes32(*le.Digest)
				}
			}
		}
	}
	enc(vo.Root)
	return e.Bytes()
}

// Size returns the encoded VO size in bytes.
func (vo *VO) Size() int { return len(vo.Encode()) }

// DecodeVO parses an encoded VO.
func DecodeVO(buf []byte) (*VO, error) {
	d := types.NewDecoder(buf)
	var dec func(depth int) (*VONode, error)
	dec = func(depth int) (*VONode, error) {
		if depth > 64 {
			return nil, fmt.Errorf("%w: VO too deep", types.ErrCorrupt)
		}
		tag, err := d.Uint8()
		if err != nil {
			return nil, err
		}
		switch tag {
		case 0:
			h, err := d.Bytes32()
			if err != nil {
				return nil, err
			}
			return &VONode{Pruned: &h}, nil
		case 1:
			n, err := d.Uint32()
			if err != nil {
				return nil, err
			}
			if int(n) > d.Remaining() {
				return nil, types.ErrCorrupt
			}
			out := &VONode{Kids: make([]*VONode, n)}
			for i := range out.Kids {
				if out.Kids[i], err = dec(depth + 1); err != nil {
					return nil, err
				}
			}
			return out, nil
		case 2:
			n, err := d.Uint32()
			if err != nil {
				return nil, err
			}
			if int(n) > d.Remaining() {
				return nil, types.ErrCorrupt
			}
			out := &VONode{Leaf: true, Entries: make([]LeafEntry, n)}
			for i := range out.Entries {
				tag, err := d.Uint8()
				if err != nil {
					return nil, err
				}
				if tag == 1 {
					r := &Record{}
					if r.Key, err = d.Value(); err != nil {
						return nil, err
					}
					if r.Payload, err = d.Blob(); err != nil {
						return nil, err
					}
					out.Entries[i].Rec = r
				} else {
					h, err := d.Bytes32()
					if err != nil {
						return nil, err
					}
					out.Entries[i].Digest = &h
				}
			}
			return out, nil
		default:
			return nil, fmt.Errorf("%w: VO tag %d", types.ErrCorrupt, tag)
		}
	}
	root, err := dec(0)
	if err != nil {
		return nil, err
	}
	if d.Remaining() != 0 {
		return nil, types.ErrCorrupt
	}
	return &VO{Root: root}, nil
}

// EqualRecords reports whether two record slices are identical; a test
// and client-side helper.
func EqualRecords(a, b []Record) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !types.Equal(a[i].Key, b[i].Key) || !bytes.Equal(a[i].Payload, b[i].Payload) {
			return false
		}
	}
	return true
}
