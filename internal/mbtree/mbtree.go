// Package mbtree implements the Merkle B-tree of Li et al. (SIGMOD'06)
// as used by SEBDB's authenticated layered index (paper §VI): a
// bulk-loaded B+-tree whose leaf entries carry record hashes and whose
// internal nodes hash the concatenation of their children. Range
// queries produce a verification object (VO) from which a client can
// reconstruct the root digest and check both the soundness and the
// completeness of the result set.
//
// Blocks in SEBDB are immutable, so each block's MB-tree is static and
// built once when the block is chained.
package mbtree

import (
	"crypto/sha256"
	"sort"

	"sebdb/internal/types"
)

// Hash is a 32-byte SHA-256 digest.
type Hash = [32]byte

// DefaultFanout approximates the paper's 4 KB MB-tree page: a page holds
// on the order of a hundred 33-byte (key, digest) slots.
const DefaultFanout = 100

// Record is one indexed item: the attribute key and the payload bytes
// it authenticates (in SEBDB, the encoded transaction).
type Record struct {
	Key     types.Value
	Payload []byte
}

// recordHash binds key and payload: H(0x02 || enc(key) || payload).
func recordHash(r Record) Hash {
	e := types.NewEncoder(32 + len(r.Payload))
	e.Uint8(0x02)
	e.Value(r.Key)
	e.Blob(r.Payload)
	return sha256.Sum256(e.Bytes())
}

func leafHash(hs []Hash) Hash {
	h := sha256.New()
	h.Write([]byte{0x00})
	for _, x := range hs {
		h.Write(x[:])
	}
	var out Hash
	h.Sum(out[:0])
	return out
}

func innerHash(hs []Hash) Hash {
	h := sha256.New()
	h.Write([]byte{0x01})
	for _, x := range hs {
		h.Write(x[:])
	}
	var out Hash
	h.Sum(out[:0])
	return out
}

type node struct {
	leaf   bool
	recs   []Record // leaf only
	kids   []*node  // inner only
	min    types.Value
	max    types.Value
	digest Hash
}

// Tree is a static Merkle B-tree.
type Tree struct {
	root   *node
	fanout int
	size   int
	// all is the sorted record slice; leaves alias sub-slices of it.
	all []Record
}

// Build constructs an MB-tree over the records, sorting them by key.
// fanout <= 1 selects DefaultFanout.
func Build(records []Record, fanout int) *Tree {
	if fanout <= 1 {
		fanout = DefaultFanout
	}
	t := &Tree{fanout: fanout, size: len(records)}
	rs := make([]Record, len(records))
	copy(rs, records)
	sort.SliceStable(rs, func(i, j int) bool {
		return types.Compare(rs[i].Key, rs[j].Key) < 0
	})
	t.all = rs
	if len(rs) == 0 {
		t.root = &node{leaf: true, digest: leafHash(nil)}
		return t
	}

	var level []*node
	for off := 0; off < len(rs); off += fanout {
		end := off + fanout
		if end > len(rs) {
			end = len(rs)
		}
		n := &node{leaf: true, recs: rs[off:end:end]}
		hs := make([]Hash, 0, end-off)
		for _, r := range n.recs {
			hs = append(hs, recordHash(r))
		}
		n.digest = leafHash(hs)
		n.min, n.max = n.recs[0].Key, n.recs[len(n.recs)-1].Key
		level = append(level, n)
	}
	for len(level) > 1 {
		var parents []*node
		for off := 0; off < len(level); off += fanout {
			end := off + fanout
			if end > len(level) {
				end = len(level)
			}
			p := &node{kids: level[off:end:end]}
			hs := make([]Hash, 0, end-off)
			for _, k := range p.kids {
				hs = append(hs, k.digest)
			}
			p.digest = innerHash(hs)
			p.min = p.kids[0].min
			p.max = p.kids[len(p.kids)-1].max
			parents = append(parents, p)
		}
		level = parents
	}
	t.root = level[0]
	return t
}

// Root returns the tree's root digest — the per-block snapshot the
// auxiliary full node hashes into its digest.
func (t *Tree) Root() Hash { return t.root.digest }

// Records returns a copy of the tree's records in key order. Building
// a tree over them reproduces this tree exactly (Build's sort is
// stable), which is how the checkpoint subsystem serialises per-block
// MB-trees without persisting hashes.
func (t *Tree) Records() []Record {
	return append([]Record(nil), t.all...)
}

// Len returns the number of records.
func (t *Tree) Len() int { return t.size }

// Min returns the smallest key; ok is false for an empty tree.
func (t *Tree) Min() (types.Value, bool) {
	if t.size == 0 {
		return types.Null, false
	}
	return t.root.min, true
}

// Max returns the largest key; ok is false for an empty tree.
func (t *Tree) Max() (types.Value, bool) {
	if t.size == 0 {
		return types.Null, false
	}
	return t.root.max, true
}

// boundaries returns the extended query range [exLo, exHi] that the VO
// must expose: the greatest key strictly below lo (the left boundary
// record proving nothing in range was omitted on the left) and the
// smallest key strictly above hi. When no such boundary exists the
// original bound is kept — the VO's shape then proves the range touches
// the edge of the tree.
func (t *Tree) boundaries(lo, hi types.Value) (types.Value, types.Value) {
	exLo, exHi := lo, hi
	// First record >= lo; its predecessor is the left boundary.
	i := sort.Search(len(t.all), func(i int) bool {
		return types.Compare(t.all[i].Key, lo) >= 0
	})
	if i > 0 {
		exLo = t.all[i-1].Key
	}
	// First record > hi is the right boundary.
	j := sort.Search(len(t.all), func(i int) bool {
		return types.Compare(t.all[i].Key, hi) > 0
	})
	if j < len(t.all) {
		exHi = t.all[j].Key
	}
	return exLo, exHi
}
