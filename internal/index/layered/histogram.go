// Package layered implements SEBDB's layered index (paper §IV-B,
// Fig. 4): the first level describes, per block, which attribute-value
// ranges (histogram buckets for continuous attributes, distinct values
// for discrete ones) occur in that block; the second level is a per-
// block B+-tree on the attribute, bulk-loaded when the block is chained.
// The structure appends without rebalancing, filters empty queries at
// the first level, and composes with the block-level index for
// time-window queries.
package layered

import (
	"math"
	"sort"
)

// Histogram is the equal-depth histogram that defines bucket boundaries
// for a continuous attribute. Bucket i covers (bound[i-1], bound[i]],
// with the first and last buckets open-ended.
type Histogram struct {
	// bounds are the p-1 inner boundaries of p buckets, ascending.
	bounds []float64
}

// NewEqualDepth builds a histogram with the given depth (bucket count)
// from a sample of historical attribute values (§IV-B: "created by
// sampling historical transactions during index creation"). A depth
// below 1 or an empty sample yields a single catch-all bucket.
func NewEqualDepth(sample []float64, depth int) *Histogram {
	if depth < 1 {
		depth = 1
	}
	if len(sample) == 0 || depth == 1 {
		return &Histogram{}
	}
	s := make([]float64, len(sample))
	copy(s, sample)
	sort.Float64s(s)
	bounds := make([]float64, 0, depth-1)
	for i := 1; i < depth; i++ {
		q := s[i*len(s)/depth]
		// Skip duplicate boundaries caused by heavy hitters; buckets must
		// be strictly increasing.
		if len(bounds) == 0 || q > bounds[len(bounds)-1] {
			bounds = append(bounds, q)
		}
	}
	return &Histogram{bounds: bounds}
}

// FromBounds reconstructs a histogram from bounds previously returned
// by Bounds — the checkpoint subsystem's serialised form.
func FromBounds(bounds []float64) *Histogram {
	return &Histogram{bounds: append([]float64(nil), bounds...)}
}

// Bounds returns a copy of the inner bucket boundaries, ascending.
func (h *Histogram) Bounds() []float64 {
	return append([]float64(nil), h.bounds...)
}

// Buckets returns the number of buckets.
func (h *Histogram) Buckets() int { return len(h.bounds) + 1 }

// Bucket maps a value to its bucket number in [0, Buckets()).
func (h *Histogram) Bucket(v float64) int {
	// First bound >= v: v belongs to that bucket because bucket i covers
	// (bound[i-1], bound[i]].
	return sort.SearchFloat64s(h.bounds, v)
}

// BucketBounds returns the (lo, hi] range of bucket i, using ±Inf for
// the open ends.
func (h *Histogram) BucketBounds(i int) (lo, hi float64) {
	lo, hi = math.Inf(-1), math.Inf(1)
	if i > 0 {
		lo = h.bounds[i-1]
	}
	if i < len(h.bounds) {
		hi = h.bounds[i]
	}
	return lo, hi
}

// BucketRange returns the inclusive bucket span covering values in
// [lo, hi].
func (h *Histogram) BucketRange(lo, hi float64) (first, last int) {
	return h.Bucket(lo), h.Bucket(hi)
}
