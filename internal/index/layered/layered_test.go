package layered

import (
	"math"
	"testing"

	"sebdb/internal/index/bitmap"
	"sebdb/internal/types"
)

func TestEqualDepthHistogram(t *testing.T) {
	var sample []float64
	for i := 0; i < 1000; i++ {
		sample = append(sample, float64(i))
	}
	h := NewEqualDepth(sample, 10)
	if h.Buckets() != 10 {
		t.Fatalf("Buckets = %d", h.Buckets())
	}
	// Every value maps into range, monotonically.
	prev := -1
	for _, v := range []float64{-5, 0, 100, 555, 999, 2000} {
		b := h.Bucket(v)
		if b < 0 || b >= h.Buckets() {
			t.Fatalf("Bucket(%g) = %d out of range", v, b)
		}
		if b < prev {
			t.Fatalf("Bucket not monotone at %g", v)
		}
		prev = b
	}
	// Equal depth: each bucket gets ~100 of the 1000 samples.
	counts := make([]int, h.Buckets())
	for _, v := range sample {
		counts[h.Bucket(v)]++
	}
	for i, c := range counts {
		if c < 50 || c > 200 {
			t.Errorf("bucket %d holds %d of 1000 — not equal-depth", i, c)
		}
	}
	// Bucket bounds tile the real line.
	lo0, _ := h.BucketBounds(0)
	if !math.IsInf(lo0, -1) {
		t.Error("first bucket not open below")
	}
	_, hiLast := h.BucketBounds(h.Buckets() - 1)
	if !math.IsInf(hiLast, 1) {
		t.Error("last bucket not open above")
	}
	for i := 0; i < h.Buckets()-1; i++ {
		_, hi := h.BucketBounds(i)
		lo, _ := h.BucketBounds(i + 1)
		if hi != lo {
			t.Errorf("buckets %d/%d do not tile: %g vs %g", i, i+1, hi, lo)
		}
	}
}

func TestHistogramDegenerate(t *testing.T) {
	if h := NewEqualDepth(nil, 10); h.Buckets() != 1 {
		t.Error("empty sample should give one bucket")
	}
	if h := NewEqualDepth([]float64{1, 2, 3}, 0); h.Buckets() != 1 {
		t.Error("depth 0 should clamp to one bucket")
	}
	// Heavy-hitter sample: duplicate boundaries collapse.
	same := make([]float64, 100)
	h := NewEqualDepth(same, 10)
	if h.Buckets() < 1 {
		t.Error("no buckets")
	}
	if h.Bucket(0) < 0 {
		t.Error("bucket of heavy hitter invalid")
	}
}

func TestBucketRange(t *testing.T) {
	var sample []float64
	for i := 0; i < 100; i++ {
		sample = append(sample, float64(i))
	}
	h := NewEqualDepth(sample, 5)
	first, last := h.BucketRange(0, 99)
	if first != 0 || last != h.Buckets()-1 {
		t.Errorf("covering range = [%d, %d]", first, last)
	}
	f2, l2 := h.BucketRange(50, 50)
	if f2 != l2 {
		t.Errorf("point range spans [%d, %d]", f2, l2)
	}
}

// buildContinuous indexes 10 blocks; block b holds 10 rows with amounts
// b*10 .. b*10+9 at positions 0..9.
func buildContinuous(t testing.TB) *Index {
	t.Helper()
	var sample []float64
	for i := 0; i < 100; i++ {
		sample = append(sample, float64(i))
	}
	x := NewContinuous("amount", NewEqualDepth(sample, 10))
	for b := 0; b < 10; b++ {
		var es []Entry
		for i := 0; i < 10; i++ {
			es = append(es, Entry{Key: types.Dec(float64(b*10 + i)), Pos: uint32(i)})
		}
		x.AppendBlock(uint64(b), es)
	}
	return x
}

func TestContinuousCandidateBlocks(t *testing.T) {
	x := buildContinuous(t)
	if !x.Continuous() || x.Attr() != "amount" {
		t.Error("metadata wrong")
	}
	if x.Blocks() != 10 {
		t.Errorf("Blocks = %d", x.Blocks())
	}
	// Values 25..34 live in blocks 2 and 3; the first level may
	// over-approximate (bucket granularity) but must include them.
	cand := x.CandidateBlocks(types.Dec(25), types.Dec(34))
	if !cand.Get(2) || !cand.Get(3) {
		t.Errorf("candidates %v miss true blocks", cand.Slice())
	}
	// It must prune far-away blocks.
	if cand.Get(9) {
		t.Error("first level failed to prune block 9")
	}
}

func TestSecondLevelRange(t *testing.T) {
	x := buildContinuous(t)
	var got []uint32
	x.BlockRange(2, types.Dec(25), types.Dec(27), func(_ types.Value, pos uint32) bool {
		got = append(got, pos)
		return true
	})
	if len(got) != 3 || got[0] != 5 || got[2] != 7 {
		t.Errorf("BlockRange = %v", got)
	}
	// Missing block tree.
	if x.BlockTree(99) != nil {
		t.Error("BlockTree(99) should be nil")
	}
	x.BlockRange(99, types.Dec(0), types.Dec(1), func(types.Value, uint32) bool {
		t.Error("callback on missing block")
		return false
	})
}

func TestBlockValueRange(t *testing.T) {
	x := buildContinuous(t)
	lo, hi, ok := x.BlockValueRange(3)
	if !ok || lo.Float() != 30 || hi.Float() != 39 {
		t.Errorf("BlockValueRange(3) = %v..%v, %v", lo, hi, ok)
	}
	if _, _, ok := x.BlockValueRange(99); ok {
		t.Error("missing block has value range")
	}
	// A skipped block (no entries) has no range.
	x.AppendBlock(10, nil)
	if _, _, ok := x.BlockValueRange(10); ok {
		t.Error("empty block has value range")
	}
}

func TestDiscreteIndex(t *testing.T) {
	x := NewDiscrete("senid")
	x.AppendBlock(0, []Entry{{types.Str("org1"), 0}, {types.Str("org2"), 1}})
	x.AppendBlock(1, []Entry{{types.Str("org1"), 0}})
	x.AppendBlock(2, []Entry{{types.Str("org3"), 0}})
	if x.Continuous() {
		t.Error("discrete index claims continuous")
	}
	got := x.ValueBlocks(types.Str("org1")).Slice()
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("ValueBlocks(org1) = %v", got)
	}
	if !x.ValueBlocks(types.Str("ghost")).Empty() {
		t.Error("unknown value has blocks")
	}
	// Point CandidateBlocks equals ValueBlocks.
	if got := x.CandidateBlocks(types.Str("org3"), types.Str("org3")).Slice(); len(got) != 1 || got[0] != 2 {
		t.Errorf("CandidateBlocks(org3) = %v", got)
	}
	// Second level finds positions.
	if refs := x.BlockTree(0).Lookup(types.Str("org2")); len(refs) != 1 || refs[0] != 1 {
		t.Errorf("second level lookup = %v", refs)
	}
	// AnyBlocks covers blocks with entries only.
	x.AppendBlock(3, nil)
	if got := x.AnyBlocks().Slice(); len(got) != 3 {
		t.Errorf("AnyBlocks = %v", got)
	}
}

func TestDiscreteKeyNumericUnification(t *testing.T) {
	x := NewDiscrete("code")
	x.AppendBlock(0, []Entry{{types.Int(3), 0}})
	// Dec(3) must find the block indexed under Int(3).
	if x.ValueBlocks(types.Dec(3)).Empty() {
		t.Error("numeric keys not unified across kinds")
	}
	// But string "3" is a different key space.
	if !x.ValueBlocks(types.Str("3")).Empty() {
		t.Error("string key collided with numeric")
	}
}

func TestIntersectsContinuous(t *testing.T) {
	r := buildContinuous(t) // block b covers [10b, 10b+9]
	s := buildContinuous(t)
	if !r.Intersects(s, 3, 3) {
		t.Error("same-range blocks must intersect")
	}
	if r.Intersects(s, 0, 9) {
		t.Error("disjoint blocks (0-9 vs 90-99) must not intersect")
	}
	if r.Intersects(s, 99, 0) {
		t.Error("missing block intersects")
	}
	if r.Intersects(s, 0, 99) {
		t.Error("intersect with missing right block")
	}
}

func TestIntersectsDiscrete(t *testing.T) {
	r := NewDiscrete("org")
	s := NewDiscrete("org")
	r.AppendBlock(0, []Entry{{types.Str("a"), 0}})
	r.AppendBlock(1, []Entry{{types.Str("b"), 0}})
	s.AppendBlock(0, []Entry{{types.Str("b"), 0}})
	s.AppendBlock(1, []Entry{{types.Str("c"), 0}})
	if !r.Intersects(s, 1, 0) {
		t.Error("blocks sharing value b must intersect")
	}
	if r.Intersects(s, 0, 0) {
		t.Error("a-only and b-only blocks must not intersect")
	}
}

func TestAppendBlockGapsAndGrowth(t *testing.T) {
	x := NewDiscrete("t")
	x.AppendBlock(5, []Entry{{types.Str("v"), 0}}) // skipping 0..4
	if x.Blocks() != 6 {
		t.Errorf("Blocks = %d", x.Blocks())
	}
	for b := uint64(0); b < 5; b++ {
		if x.BlockTree(b) != nil {
			t.Errorf("gap block %d has tree", b)
		}
	}
	if x.BlockTree(5) == nil {
		t.Error("appended block missing tree")
	}
}

func TestJoinPairsDiscrete(t *testing.T) {
	r := NewDiscrete("org")
	s := NewDiscrete("org")
	// r: block0={a}, block1={b,c}; s: block0={c}, block1={a}, block2={z}.
	r.AppendBlock(0, []Entry{{types.Str("a"), 0}})
	r.AppendBlock(1, []Entry{{types.Str("b"), 0}, {types.Str("c"), 1}})
	s.AppendBlock(0, []Entry{{types.Str("c"), 0}})
	s.AppendBlock(1, []Entry{{types.Str("a"), 0}})
	s.AppendBlock(2, []Entry{{types.Str("z"), 0}})
	mr := r.AnyBlocks()
	ms := s.AnyBlocks()
	pairs := r.JoinPairs(s, mr, ms)
	want := map[[2]uint64]bool{{0, 1}: true, {1, 0}: true}
	if len(pairs) != len(want) {
		t.Fatalf("pairs = %v", pairs)
	}
	for _, p := range pairs {
		if !want[p] {
			t.Errorf("unexpected pair %v", p)
		}
	}
	// Restricting mr prunes pairs.
	onlyB1 := bitmapOf(1)
	pairs = r.JoinPairs(s, onlyB1, ms)
	if len(pairs) != 1 || pairs[0] != [2]uint64{1, 0} {
		t.Errorf("restricted pairs = %v", pairs)
	}
	// Disjoint value sets → no pairs.
	empty := NewDiscrete("org")
	empty.AppendBlock(0, []Entry{{types.Str("nope"), 0}})
	if got := r.JoinPairs(empty, mr, empty.AnyBlocks()); len(got) != 0 {
		t.Errorf("disjoint pairs = %v", got)
	}
}

func bitmapOf(ids ...int) *bitmap.Bitmap {
	b := bitmap.New()
	for _, i := range ids {
		b.Set(i)
	}
	return b
}

func TestJoinPairsContinuous(t *testing.T) {
	r := buildContinuous(t) // block b covers [10b, 10b+9]
	s := buildContinuous(t)
	pairs := r.JoinPairs(s, r.AnyBlocks(), s.AnyBlocks())
	// Bucket bounds over-approximate; at minimum each diagonal pair is
	// present and far-apart pairs are pruned.
	onDiag := 0
	for _, p := range pairs {
		if p[0] == p[1] {
			onDiag++
		}
		d := int64(p[0]) - int64(p[1])
		if d < -3 || d > 3 {
			t.Errorf("far-apart pair survived: %v", p)
		}
	}
	if onDiag != 10 {
		t.Errorf("diagonal pairs = %d of 10", onDiag)
	}
	// Mixed continuous/discrete falls back to bounds comparison.
	d := NewDiscrete("x")
	d.AppendBlock(0, []Entry{{types.Dec(15), 0}})
	mixed := r.JoinPairs(d, r.AnyBlocks(), d.AnyBlocks())
	found := false
	for _, p := range mixed {
		if p[0] == 1 && p[1] == 0 { // r block 1 covers [10,19]
			found = true
		}
	}
	if !found {
		t.Errorf("mixed pairs = %v, missing (1,0)", mixed)
	}
}

func TestCandidateBlocksDiscreteRange(t *testing.T) {
	x := NewDiscrete("senid")
	x.AppendBlock(0, []Entry{{types.Str("a"), 0}})
	x.AppendBlock(1, []Entry{{types.Str("b"), 0}})
	// A non-point range over a discrete attribute unions all values (the
	// second level filters exactly).
	got := x.CandidateBlocks(types.Str("a"), types.Str("z")).Slice()
	if len(got) != 2 {
		t.Errorf("discrete range candidates = %v", got)
	}
}

func TestValueBlocksOnContinuousIndex(t *testing.T) {
	x := buildContinuous(t)
	// ValueBlocks falls back to CandidateBlocks for continuous indexes.
	got := x.ValueBlocks(types.Dec(35))
	if !got.Get(3) {
		t.Errorf("ValueBlocks(35) = %v, missing block 3", got.Slice())
	}
}

func TestBlockBucketBoundsFallback(t *testing.T) {
	// Discrete index: bounds come from the second level's min/max.
	x := NewDiscrete("v")
	x.AppendBlock(0, []Entry{{types.Dec(5), 0}, {types.Dec(9), 1}})
	lo, hi, ok := x.BlockBucketBounds(0)
	if !ok || lo != 5 || hi != 9 {
		t.Errorf("bounds = %g..%g, %v", lo, hi, ok)
	}
	if _, _, ok := x.BlockBucketBounds(99); ok {
		t.Error("missing block has bounds")
	}
}
