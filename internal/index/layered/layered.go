package layered

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"unsafe"

	"sebdb/internal/index/bitmap"
	"sebdb/internal/index/bptree"
	"sebdb/internal/types"
)

// Entry is one indexed transaction: its attribute value and its position
// within the block being appended.
type Entry struct {
	Key types.Value
	Pos uint32
}

// Index is a layered index on one attribute. Exactly one of hist
// (continuous) or values (discrete) drives the first level.
type Index struct {
	// attr, hist and order are fixed at construction.
	attr  string
	hist  *Histogram
	order int

	mu sync.RWMutex
	// Continuous first level: per block, a bitmap over histogram buckets.
	blockBuckets []*bitmap.Bitmap // indexed by block id; nil if absent
	// Discrete first level: per distinct value, a bitmap over blocks.
	values map[string]*bitmap.Bitmap
	// Second level: one B+-tree per block, bulk-loaded at append time.
	trees []*bptree.Tree // indexed by block id; nil if block has no rows
}

// NewContinuous creates a layered index over a continuous attribute
// using the given histogram for first-level bucketing.
func NewContinuous(attr string, hist *Histogram) *Index {
	return &Index{attr: attr, hist: hist}
}

// NewDiscrete creates a layered index over a discrete attribute (e.g.
// the system columns SenID or Tname).
func NewDiscrete(attr string) *Index {
	return &Index{attr: attr, values: make(map[string]*bitmap.Bitmap)}
}

// Attr returns the indexed attribute name.
func (x *Index) Attr() string { return x.attr }

// Continuous reports whether the index uses histogram bucketing.
func (x *Index) Continuous() bool { return x.hist != nil }

// Histogram returns the first-level histogram, or nil for a discrete
// index. The histogram is immutable after construction.
func (x *Index) Histogram() *Histogram { return x.hist }

// discreteKey normalises a value for use as a first-level map key.
// Numeric kinds share a key space so Int(3) and Dec(3) collide as the
// comparison semantics require.
func discreteKey(v types.Value) string {
	if v.Numeric() {
		return fmt.Sprintf("n:%g", v.Float())
	}
	return fmt.Sprintf("%d:%s", v.Kind, v.String())
}

func (x *Index) grow(bid uint64) {
	for uint64(len(x.trees)) <= bid {
		x.trees = append(x.trees, nil)
		if x.hist != nil {
			x.blockBuckets = append(x.blockBuckets, nil)
		}
	}
}

// AppendBlock indexes the relevant entries of a newly chained block:
// the second-level B+-tree is bulk-loaded and the first level updated,
// with no rebalancing of earlier blocks (§IV-B benefit (i)). Blocks
// must be appended in height order; a block with no relevant rows may
// be skipped or passed with empty entries.
func (x *Index) AppendBlock(bid uint64, entries []Entry) {
	x.mu.Lock()
	defer x.mu.Unlock()
	x.grow(bid)
	if len(entries) == 0 {
		return
	}
	es := make([]bptree.Entry, len(entries))
	for i, e := range entries {
		es[i] = bptree.Entry{Key: e.Key, Ref: uint64(e.Pos)}
		if x.hist != nil {
			if x.blockBuckets[bid] == nil {
				x.blockBuckets[bid] = bitmap.New()
			}
			x.blockBuckets[bid].Set(x.hist.Bucket(e.Key.Float()))
		} else {
			k := discreteKey(e.Key)
			b, ok := x.values[k]
			if !ok {
				b = bitmap.New()
				x.values[k] = b
			}
			b.Set(int(bid))
		}
	}
	x.trees[bid] = bptree.Bulk(es, x.order)
}

// BlockEntries returns the second-level entries of block bid in key
// order, or nil when the block holds no indexed rows. Feeding them
// back to AppendBlock on a fresh index reproduces the block's state
// exactly — the checkpoint subsystem serialises layered indexes this
// way.
func (x *Index) BlockEntries(bid uint64) []Entry {
	t := x.BlockTree(bid)
	if t == nil {
		return nil
	}
	out := make([]Entry, 0, t.Len())
	t.Scan(func(k types.Value, ref uint64) bool {
		out = append(out, Entry{Key: k, Pos: uint32(ref)})
		return true
	})
	return out
}

// Blocks returns the number of block slots the index covers.
func (x *Index) Blocks() int {
	x.mu.RLock()
	defer x.mu.RUnlock()
	return len(x.trees)
}

// CandidateBlocks returns the first-level filter: a bitmap of blocks
// that may contain values in [lo, hi]. For a discrete index lo and hi
// are typically equal (point lookup).
func (x *Index) CandidateBlocks(lo, hi types.Value) *bitmap.Bitmap {
	x.mu.RLock()
	defer x.mu.RUnlock()
	if x.hist != nil {
		first, last := x.hist.BucketRange(lo.Float(), hi.Float())
		want := bitmap.New()
		want.SetRange(first, last)
		out := bitmap.New()
		for bid, bb := range x.blockBuckets {
			if bb != nil && bb.Intersects(want) {
				out.Set(bid)
			}
		}
		return out
	}
	if types.Equal(lo, hi) {
		if b, ok := x.values[discreteKey(lo)]; ok {
			return b.Clone()
		}
		return bitmap.New()
	}
	// Range over a discrete attribute: union the bitmaps of matching
	// values. We must consult the second level keys, so fall back to the
	// union of all values within range by scanning value keys' trees is
	// not possible from the map alone; instead union every value bitmap
	// whose blocks may match and let the second level filter exactly.
	out := bitmap.New()
	for _, b := range x.values {
		out.Or(b)
	}
	return out
}

// ValueBlocks returns the first-level bitmap for one discrete value —
// Algorithm 1's First_level_bitmap(I(o)).
func (x *Index) ValueBlocks(v types.Value) *bitmap.Bitmap {
	x.mu.RLock()
	defer x.mu.RUnlock()
	if x.values == nil {
		return x.CandidateBlocks(v, v)
	}
	if b, ok := x.values[discreteKey(v)]; ok {
		return b.Clone()
	}
	return bitmap.New()
}

// AnyBlocks returns a bitmap of every block with at least one indexed
// row — Algorithm 2's First_level_bitmap(I_r) with no predicate.
func (x *Index) AnyBlocks() *bitmap.Bitmap {
	x.mu.RLock()
	defer x.mu.RUnlock()
	out := bitmap.New()
	for bid, t := range x.trees {
		if t != nil && t.Len() > 0 {
			out.Set(bid)
		}
	}
	return out
}

// BlockTree returns the second-level B+-tree of block bid, or nil when
// the block holds no indexed rows.
func (x *Index) BlockTree(bid uint64) *bptree.Tree {
	x.mu.RLock()
	defer x.mu.RUnlock()
	if bid >= uint64(len(x.trees)) {
		return nil
	}
	return x.trees[bid]
}

// BlockRange runs fn over the second-level entries of block bid with
// lo <= key <= hi, in key order.
func (x *Index) BlockRange(bid uint64, lo, hi types.Value, fn func(key types.Value, pos uint32) bool) {
	t := x.BlockTree(bid)
	if t == nil {
		return
	}
	t.Range(lo, hi, func(k types.Value, ref uint64) bool {
		return fn(k, uint32(ref))
	})
}

// BlockValueRange returns the min and max indexed values present in
// block bid; ok is false when the block holds no indexed rows. Used by
// the join operators' intersect() test (Algorithms 2 and 3).
func (x *Index) BlockValueRange(bid uint64) (lo, hi types.Value, ok bool) {
	t := x.BlockTree(bid)
	if t == nil || t.Len() == 0 {
		return types.Null, types.Null, false
	}
	lo, _ = t.Min()
	hi, _ = t.Max()
	return lo, hi, true
}

// BlockBucketBounds returns the value bounds implied by block bid's
// first-level bucket bitmap — the (l, u) pairs of Algorithm 2's
// intersect test. For discrete indexes it falls back to the second
// level's min/max.
func (x *Index) BlockBucketBounds(bid uint64) (lo, hi float64, ok bool) {
	x.mu.RLock()
	if x.hist != nil && bid < uint64(len(x.blockBuckets)) && x.blockBuckets[bid] != nil {
		lo, hi = math.Inf(1), math.Inf(-1)
		x.blockBuckets[bid].ForEach(func(i int) bool {
			bl, bh := x.hist.BucketBounds(i)
			if bl < lo {
				lo = bl
			}
			if bh > hi {
				hi = bh
			}
			return true
		})
		x.mu.RUnlock()
		return lo, hi, true
	}
	x.mu.RUnlock()
	l, h, ok2 := x.BlockValueRange(bid)
	if !ok2 {
		return 0, 0, false
	}
	return l.Float(), h.Float(), true
}

// JoinPairs returns the candidate block pairs of Algorithm 2: pairs
// (b_r ∈ mr, b_s ∈ ms) for which intersect(b_r, b_s) holds. For two
// discrete indexes it walks the shared first-level values — O(values)
// instead of the O(|mr|·|ms|) pairwise loop — and for continuous
// indexes it memoises each block's bucket bounds before the pairwise
// interval test.
//
//sebdb:ignore-lock the mutexes are acquired through the address-ordered first/second aliases, which the checker cannot trace
func (x *Index) JoinPairs(other *Index, mr, ms *bitmap.Bitmap) [][2]uint64 {
	var out [][2]uint64
	if x.hist == nil && other.hist == nil {
		// Lock in a global order (by address) so concurrent opposite-
		// direction joins cannot form a circular wait with a pending
		// writer.
		first, second := x, other
		if uintptr(unsafe.Pointer(other)) < uintptr(unsafe.Pointer(x)) {
			first, second = other, x
		}
		first.mu.RLock()
		if second != first {
			second.mu.RLock()
		}
		seen := make(map[uint64]struct{})
		for k, br := range x.values {
			bs, ok := other.values[k]
			if !ok {
				continue
			}
			rblocks := br.Clone().And(mr)
			if rblocks.Empty() {
				continue
			}
			sblocks := bs.Clone().And(ms)
			if sblocks.Empty() {
				continue
			}
			rblocks.ForEach(func(r int) bool {
				sblocks.ForEach(func(s int) bool {
					key := uint64(r)<<32 | uint64(s)
					if _, dup := seen[key]; !dup {
						seen[key] = struct{}{}
						out = append(out, [2]uint64{uint64(r), uint64(s)})
					}
					return true
				})
				return true
			})
		}
		if second != first {
			second.mu.RUnlock()
		}
		first.mu.RUnlock()
		sortPairs(out)
		return out
	}

	type bounds struct {
		lo, hi float64
		ok     bool
	}
	rb := make(map[int]bounds)
	mr.ForEach(func(r int) bool {
		lo, hi, ok := x.BlockBucketBounds(uint64(r))
		rb[r] = bounds{lo, hi, ok}
		return true
	})
	sb := make(map[int]bounds)
	ms.ForEach(func(s int) bool {
		lo, hi, ok := other.BlockBucketBounds(uint64(s))
		sb[s] = bounds{lo, hi, ok}
		return true
	})
	mr.ForEach(func(r int) bool {
		rbb := rb[r]
		if !rbb.ok {
			return true
		}
		ms.ForEach(func(s int) bool {
			sbb := sb[s]
			if sbb.ok && !(rbb.hi < sbb.lo || rbb.lo > sbb.hi) {
				out = append(out, [2]uint64{uint64(r), uint64(s)})
			}
			return true
		})
		return true
	})
	return out
}

func sortPairs(ps [][2]uint64) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i][0] != ps[j][0] {
			return ps[i][0] < ps[j][0]
		}
		return ps[i][1] < ps[j][1]
	})
}

// Intersects implements Algorithm 2's intersect(b_r, b_s): whether block
// bidR of this index and block bidS of other may produce equi-join
// matches. Continuous indexes compare bucket bounds; discrete indexes
// check for a shared first-level value.
func (x *Index) Intersects(other *Index, bidR, bidS uint64) bool {
	if x.hist == nil && other.hist == nil {
		x.mu.RLock()
		defer x.mu.RUnlock()
		other.mu.RLock()
		defer other.mu.RUnlock()
		for k, br := range x.values {
			if !br.Get(int(bidR)) {
				continue
			}
			if bs, ok := other.values[k]; ok && bs.Get(int(bidS)) {
				return true
			}
		}
		return false
	}
	rl, rh, ok := x.BlockBucketBounds(bidR)
	if !ok {
		return false
	}
	sl, sh, ok := other.BlockBucketBounds(bidS)
	if !ok {
		return false
	}
	return !(rh < sl || rl > sh)
}
