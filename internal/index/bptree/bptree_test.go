package bptree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"sebdb/internal/types"
)

func collectRange(t *Tree, lo, hi types.Value) []uint64 {
	var out []uint64
	t.Range(lo, hi, func(_ types.Value, ref uint64) bool {
		out = append(out, ref)
		return true
	})
	return out
}

func TestInsertAndRangeSmallOrder(t *testing.T) {
	tr := New(4)
	// Insert shuffled keys so splits happen on both sides.
	perm := rand.New(rand.NewSource(1)).Perm(200)
	for _, k := range perm {
		tr.Insert(types.Int(int64(k)), uint64(k))
	}
	if tr.Len() != 200 {
		t.Fatalf("Len = %d", tr.Len())
	}
	got := collectRange(tr, types.Int(50), types.Int(59))
	if len(got) != 10 {
		t.Fatalf("range [50,59] returned %d", len(got))
	}
	for i, r := range got {
		if r != uint64(50+i) {
			t.Errorf("range[%d] = %d", i, r)
		}
	}
	// Full scan is sorted.
	var prev types.Value = types.Null
	n := 0
	tr.Scan(func(k types.Value, _ uint64) bool {
		if types.Compare(k, prev) < 0 {
			t.Fatalf("scan out of order at %v", k)
		}
		prev = k
		n++
		return true
	})
	if n != 200 {
		t.Errorf("scan visited %d", n)
	}
}

func TestDuplicateKeys(t *testing.T) {
	tr := New(4)
	for i := 0; i < 50; i++ {
		tr.Insert(types.Str("dup"), uint64(i))
	}
	tr.Insert(types.Str("aaa"), 100)
	tr.Insert(types.Str("zzz"), 200)
	got := tr.Lookup(types.Str("dup"))
	if len(got) != 50 {
		t.Fatalf("Lookup(dup) returned %d", len(got))
	}
	seen := map[uint64]bool{}
	for _, r := range got {
		seen[r] = true
	}
	if len(seen) != 50 {
		t.Error("duplicate refs lost")
	}
	if got := tr.Lookup(types.Str("ghost")); len(got) != 0 {
		t.Errorf("Lookup(ghost) = %v", got)
	}
}

func TestBulkMatchesInsert(t *testing.T) {
	var entries []Entry
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		entries = append(entries, Entry{Key: types.Int(int64(rng.Intn(100))), Ref: uint64(i)})
	}
	bulk := Bulk(entries, 8)
	ins := New(8)
	for _, e := range entries {
		ins.Insert(e.Key, e.Ref)
	}
	if bulk.Len() != ins.Len() {
		t.Fatalf("Len %d vs %d", bulk.Len(), ins.Len())
	}
	for k := 0; k < 100; k++ {
		a := bulk.Lookup(types.Int(int64(k)))
		b := ins.Lookup(types.Int(int64(k)))
		if len(a) != len(b) {
			t.Errorf("key %d: bulk %d refs, insert %d refs", k, len(a), len(b))
		}
		sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
		sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
		for i := range a {
			if a[i] != b[i] {
				t.Errorf("key %d ref %d: %d vs %d", k, i, a[i], b[i])
			}
		}
	}
}

func TestBulkEmpty(t *testing.T) {
	tr := Bulk(nil, 0)
	if tr.Len() != 0 {
		t.Error("empty bulk has entries")
	}
	if _, ok := tr.Min(); ok {
		t.Error("empty tree has Min")
	}
	if _, ok := tr.Max(); ok {
		t.Error("empty tree has Max")
	}
	if got := collectRange(tr, types.Int(0), types.Int(10)); len(got) != 0 {
		t.Errorf("range over empty = %v", got)
	}
}

func TestMinMaxHeight(t *testing.T) {
	tr := New(4)
	for i := 100; i > 0; i-- {
		tr.Insert(types.Int(int64(i)), uint64(i))
	}
	if mn, _ := tr.Min(); mn != types.Int(1) {
		t.Errorf("Min = %v", mn)
	}
	if mx, _ := tr.Max(); mx != types.Int(100) {
		t.Errorf("Max = %v", mx)
	}
	if tr.Height() < 2 {
		t.Errorf("Height = %d for 100 keys order 4", tr.Height())
	}
}

func TestAppendPatternKeepsLeavesFull(t *testing.T) {
	// With strictly increasing keys the append-optimised split keeps all
	// but the last leaf full, so the tree stays shallow.
	seq := New(8)
	for i := 0; i < 1000; i++ {
		seq.Insert(types.Int(int64(i)), uint64(i))
	}
	bulk := Bulk(func() []Entry {
		es := make([]Entry, 1000)
		for i := range es {
			es[i] = Entry{Key: types.Int(int64(i)), Ref: uint64(i)}
		}
		return es
	}(), 8)
	if seq.Height() > bulk.Height()+1 {
		t.Errorf("append-pattern height %d far exceeds bulk height %d", seq.Height(), bulk.Height())
	}
	// And everything is still findable.
	for _, k := range []int64{0, 1, 499, 998, 999} {
		if got := seq.Lookup(types.Int(k)); len(got) != 1 || got[0] != uint64(k) {
			t.Errorf("Lookup(%d) = %v", k, got)
		}
	}
}

func TestFloor(t *testing.T) {
	tr := New(4)
	for _, k := range []int64{10, 20, 30, 40} {
		tr.Insert(types.Int(k), uint64(k))
	}
	cases := []struct {
		q    int64
		want uint64
		ok   bool
	}{
		{5, 0, false}, {10, 10, true}, {15, 10, true},
		{20, 20, true}, {39, 30, true}, {40, 40, true}, {100, 40, true},
	}
	for _, c := range cases {
		_, ref, ok := tr.Floor(types.Int(c.q))
		if ok != c.ok || (ok && ref != c.want) {
			t.Errorf("Floor(%d) = %d,%v; want %d,%v", c.q, ref, ok, c.want, c.ok)
		}
	}
	// Floor on duplicates returns the last duplicate.
	tr2 := New(4)
	for i := 0; i < 10; i++ {
		tr2.Insert(types.Int(5), uint64(i))
	}
	_, ref, ok := tr2.Floor(types.Int(5))
	if !ok || ref != 9 {
		t.Errorf("Floor over duplicates = %d,%v", ref, ok)
	}
	if _, _, ok := New(4).Floor(types.Int(1)); ok {
		t.Error("Floor on empty tree")
	}
}

func TestRangeBoundaryInclusive(t *testing.T) {
	tr := New(4)
	for i := 0; i < 20; i++ {
		tr.Insert(types.Int(int64(i)), uint64(i))
	}
	got := collectRange(tr, types.Int(5), types.Int(5))
	if len(got) != 1 || got[0] != 5 {
		t.Errorf("point range = %v", got)
	}
	if got := collectRange(tr, types.Int(-10), types.Int(-1)); len(got) != 0 {
		t.Errorf("range below min = %v", got)
	}
	if got := collectRange(tr, types.Int(100), types.Int(200)); len(got) != 0 {
		t.Errorf("range above max = %v", got)
	}
	if got := collectRange(tr, types.Int(-5), types.Int(100)); len(got) != 20 {
		t.Errorf("covering range = %d entries", len(got))
	}
}

func TestRangeEarlyStop(t *testing.T) {
	tr := New(4)
	for i := 0; i < 100; i++ {
		tr.Insert(types.Int(int64(i)), uint64(i))
	}
	n := 0
	tr.Range(types.Int(0), types.Int(99), func(_ types.Value, _ uint64) bool {
		n++
		return n < 7
	})
	if n != 7 {
		t.Errorf("early stop visited %d", n)
	}
	n = 0
	tr.Scan(func(_ types.Value, _ uint64) bool {
		n++
		return false
	})
	if n != 1 {
		t.Errorf("scan early stop visited %d", n)
	}
}

func TestQuickRangeMatchesSortedSlice(t *testing.T) {
	f := func(keys []int16, loRaw, hiRaw int16) bool {
		lo, hi := int64(loRaw), int64(hiRaw)
		if lo > hi {
			lo, hi = hi, lo
		}
		tr := New(6)
		want := 0
		for i, k := range keys {
			tr.Insert(types.Int(int64(k)), uint64(i))
			if int64(k) >= lo && int64(k) <= hi {
				want++
			}
		}
		return len(collectRange(tr, types.Int(lo), types.Int(hi))) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
