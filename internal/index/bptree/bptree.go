// Package bptree implements the in-memory B+-tree used as the second
// level of SEBDB's layered index (paper §IV-B): one tree per block per
// indexed attribute, bulk-loaded when the block is appended, mapping
// attribute values to transaction references. Leaves are chained so
// range scans and sort-merge joins read entries in key order.
package bptree

import (
	"sort"

	"sebdb/internal/types"
)

// DefaultOrder is the default maximum number of entries per node.
const DefaultOrder = 64

// Entry is one (key, reference) pair. Ref is opaque to the tree; SEBDB
// stores the transaction's position within its block.
type Entry struct {
	Key types.Value
	Ref uint64
}

type node struct {
	leaf bool
	keys []types.Value
	kids []*node  // internal nodes: len(kids) == len(keys)+1
	refs []uint64 // leaf nodes: parallel to keys
	next *node    // leaf chain
}

// Tree is a B+-tree over attribute values, allowing duplicate keys.
type Tree struct {
	root  *node
	order int
	size  int
}

// New returns an empty tree with the given order (0 means DefaultOrder).
func New(order int) *Tree {
	if order < 4 {
		order = DefaultOrder
	}
	return &Tree{root: &node{leaf: true}, order: order}
}

// Bulk builds a tree from entries, sorting them by key first. Leaves are
// packed full, matching the paper's append-time bulk-loading.
func Bulk(entries []Entry, order int) *Tree {
	if order < 4 {
		order = DefaultOrder
	}
	t := &Tree{order: order, size: len(entries)}
	if len(entries) == 0 {
		t.root = &node{leaf: true}
		return t
	}
	es := make([]Entry, len(entries))
	copy(es, entries)
	sort.SliceStable(es, func(i, j int) bool {
		return types.Compare(es[i].Key, es[j].Key) < 0
	})

	// Build the leaf level, packed full.
	var leaves []*node
	for off := 0; off < len(es); off += order {
		end := off + order
		if end > len(es) {
			end = len(es)
		}
		n := &node{leaf: true,
			keys: make([]types.Value, 0, end-off),
			refs: make([]uint64, 0, end-off)}
		for _, e := range es[off:end] {
			n.keys = append(n.keys, e.Key)
			n.refs = append(n.refs, e.Ref)
		}
		if len(leaves) > 0 {
			leaves[len(leaves)-1].next = n
		}
		leaves = append(leaves, n)
	}

	// Build internal levels until a single root remains.
	level := leaves
	for len(level) > 1 {
		var parents []*node
		for off := 0; off < len(level); off += order + 1 {
			end := off + order + 1
			if end > len(level) {
				end = len(level)
			}
			p := &node{kids: append([]*node(nil), level[off:end]...)}
			for i := 1; i < len(p.kids); i++ {
				p.keys = append(p.keys, firstKey(p.kids[i]))
			}
			parents = append(parents, p)
		}
		level = parents
	}
	t.root = level[0]
	return t
}

func firstKey(n *node) types.Value {
	for !n.leaf {
		n = n.kids[0]
	}
	return n.keys[0]
}

// Len returns the number of entries.
func (t *Tree) Len() int { return t.size }

// Insert adds an entry; duplicate keys are kept.
func (t *Tree) Insert(key types.Value, ref uint64) {
	t.size++
	newKid, sepKey := t.insert(t.root, key, ref)
	if newKid != nil {
		t.root = &node{
			keys: []types.Value{sepKey},
			kids: []*node{t.root, newKid},
		}
	}
}

// insert descends into n; on split it returns the new right sibling and
// its separator key.
func (t *Tree) insert(n *node, key types.Value, ref uint64) (*node, types.Value) {
	if n.leaf {
		// Upper bound: equal keys append after existing ones.
		i := sort.Search(len(n.keys), func(i int) bool {
			return types.Compare(n.keys[i], key) > 0
		})
		n.keys = append(n.keys, types.Null)
		copy(n.keys[i+1:], n.keys[i:])
		n.keys[i] = key
		n.refs = append(n.refs, 0)
		copy(n.refs[i+1:], n.refs[i:])
		n.refs[i] = ref
		if len(n.keys) <= t.order {
			return nil, types.Null
		}
		mid := len(n.keys) / 2
		if i == len(n.keys)-1 {
			// Append pattern (monotonically increasing keys, e.g. the
			// block-level index): split off only the new maximum so the
			// left leaf stays full — the paper's "leaf nodes are kept
			// full" behaviour.
			mid = len(n.keys) - 1
		}
		right := &node{leaf: true,
			keys: append([]types.Value(nil), n.keys[mid:]...),
			refs: append([]uint64(nil), n.refs[mid:]...),
			next: n.next}
		n.keys = n.keys[:mid]
		n.refs = n.refs[:mid]
		n.next = right
		return right, right.keys[0]
	}

	i := sort.Search(len(n.keys), func(i int) bool {
		return types.Compare(n.keys[i], key) > 0
	})
	newKid, sepKey := t.insert(n.kids[i], key, ref)
	if newKid == nil {
		return nil, types.Null
	}
	n.keys = append(n.keys, types.Null)
	copy(n.keys[i+1:], n.keys[i:])
	n.keys[i] = sepKey
	n.kids = append(n.kids, nil)
	copy(n.kids[i+2:], n.kids[i+1:])
	n.kids[i+1] = newKid
	if len(n.kids) <= t.order+1 {
		return nil, types.Null
	}
	mid := len(n.keys) / 2
	sep := n.keys[mid]
	right := &node{
		keys: append([]types.Value(nil), n.keys[mid+1:]...),
		kids: append([]*node(nil), n.kids[mid+1:]...)}
	n.keys = n.keys[:mid]
	n.kids = n.kids[:mid+1]
	return right, sep
}

// leafFor returns the first leaf that could contain key, descending by
// lower bound so duplicates to the left are not skipped.
func (t *Tree) leafFor(key types.Value) *node {
	n := t.root
	for !n.leaf {
		i := sort.Search(len(n.keys), func(i int) bool {
			return types.Compare(n.keys[i], key) >= 0
		})
		// Descend left of the first separator >= key: duplicates of key
		// may live in that subtree.
		n = n.kids[i]
	}
	return n
}

// Range calls fn for every entry with lo <= key <= hi, in key order;
// returning false stops early.
func (t *Tree) Range(lo, hi types.Value, fn func(key types.Value, ref uint64) bool) {
	n := t.leafFor(lo)
	for n != nil {
		for i, k := range n.keys {
			if types.Compare(k, lo) < 0 {
				continue
			}
			if types.Compare(k, hi) > 0 {
				return
			}
			if !fn(k, n.refs[i]) {
				return
			}
		}
		n = n.next
	}
}

// Lookup returns the refs of all entries equal to key.
func (t *Tree) Lookup(key types.Value) []uint64 {
	var out []uint64
	t.Range(key, key, func(_ types.Value, ref uint64) bool {
		out = append(out, ref)
		return true
	})
	return out
}

// Floor returns the largest entry with key <= k; ok is false when every
// entry is greater than k (or the tree is empty). Among duplicates the
// last one is returned.
func (t *Tree) Floor(k types.Value) (types.Value, uint64, bool) {
	n := t.root
	for !n.leaf {
		i := sort.Search(len(n.keys), func(i int) bool {
			return types.Compare(n.keys[i], k) > 0
		})
		n = n.kids[i]
	}
	// n is the leaf that would hold k; the floor is the last key <= k,
	// possibly in an earlier leaf if all of n's keys exceed k.
	for {
		i := sort.Search(len(n.keys), func(i int) bool {
			return types.Compare(n.keys[i], k) > 0
		})
		if i > 0 {
			return n.keys[i-1], n.refs[i-1], true
		}
		prev := t.prevLeaf(n)
		if prev == nil {
			return types.Null, 0, false
		}
		n = prev
	}
}

// prevLeaf walks the leaf chain from the left to find the leaf before n.
// The chain is singly linked; Floor only needs this on bucket
// boundaries, so the linear walk is acceptable.
func (t *Tree) prevLeaf(n *node) *node {
	c := t.root
	for !c.leaf {
		c = c.kids[0]
	}
	if c == n {
		return nil
	}
	for c != nil && c.next != n {
		c = c.next
	}
	return c
}

// Scan calls fn over every entry in key order; returning false stops.
func (t *Tree) Scan(fn func(key types.Value, ref uint64) bool) {
	n := t.root
	for !n.leaf {
		n = n.kids[0]
	}
	for n != nil {
		for i, k := range n.keys {
			if !fn(k, n.refs[i]) {
				return
			}
		}
		n = n.next
	}
}

// Min returns the smallest key; ok is false for an empty tree.
func (t *Tree) Min() (types.Value, bool) {
	if t.size == 0 {
		return types.Null, false
	}
	n := t.root
	for !n.leaf {
		n = n.kids[0]
	}
	return n.keys[0], true
}

// Max returns the largest key; ok is false for an empty tree.
func (t *Tree) Max() (types.Value, bool) {
	if t.size == 0 {
		return types.Null, false
	}
	n := t.root
	for !n.leaf {
		n = n.kids[len(n.kids)-1]
	}
	return n.keys[len(n.keys)-1], true
}

// Height returns the tree height (a single leaf root is height 1); used
// by tests and the cost-model ablation.
func (t *Tree) Height() int {
	h := 1
	n := t.root
	for !n.leaf {
		h++
		n = n.kids[0]
	}
	return h
}
