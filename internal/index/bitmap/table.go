package bitmap

import (
	"sort"
	"sync"
)

// TableIndex is the paper's table-level bitmap index (§IV-B): one bitmap
// per key, where bit i indicates that block i contains transactions for
// that key. SEBDB maintains one TableIndex keyed by Tname and can
// maintain another keyed by SenID for tracking queries.
type TableIndex struct {
	mu   sync.RWMutex
	bits map[string]*Bitmap
}

// NewTableIndex returns an empty table-level index.
func NewTableIndex() *TableIndex {
	return &TableIndex{bits: make(map[string]*Bitmap)}
}

// Mark records that block blockID contains rows for key. New keys
// (tables) get a fresh bitmap automatically.
func (t *TableIndex) Mark(key string, blockID int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	b, ok := t.bits[key]
	if !ok {
		b = New()
		t.bits[key] = b
	}
	b.Set(blockID)
}

// Blocks returns a copy of the bitmap for key; an empty bitmap if the
// key is unknown.
func (t *TableIndex) Blocks(key string) *Bitmap {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if b, ok := t.bits[key]; ok {
		return b.Clone()
	}
	return New()
}

// Contains reports whether block blockID holds rows for key.
func (t *TableIndex) Contains(key string, blockID int) bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	b, ok := t.bits[key]
	return ok && b.Get(blockID)
}

// Keys returns all indexed keys in sorted order.
func (t *TableIndex) Keys() []string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]string, 0, len(t.bits))
	for k := range t.bits {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
