package bitmap

import (
	"testing"
	"testing/quick"
)

func TestSetGetGrow(t *testing.T) {
	b := New()
	if b.Get(0) || b.Get(1000) {
		t.Error("fresh bitmap has set bits")
	}
	b.Set(0)
	b.Set(63)
	b.Set(64)
	b.Set(1000)
	for _, i := range []int{0, 63, 64, 1000} {
		if !b.Get(i) {
			t.Errorf("bit %d not set", i)
		}
	}
	if b.Get(1) || b.Get(999) || b.Get(-1) {
		t.Error("unexpected bits set")
	}
	if b.Count() != 4 {
		t.Errorf("Count = %d", b.Count())
	}
	if b.Empty() {
		t.Error("non-empty reported empty")
	}
	if !New().Empty() {
		t.Error("fresh bitmap not empty")
	}
}

func TestAndOrAndNot(t *testing.T) {
	a := FromSlice([]int{1, 5, 70, 200})
	b := FromSlice([]int{5, 70, 300})
	and := a.Clone().And(b)
	if got := and.Slice(); len(got) != 2 || got[0] != 5 || got[1] != 70 {
		t.Errorf("And = %v", got)
	}
	or := a.Clone().Or(b)
	if got := or.Slice(); len(got) != 5 || got[4] != 300 {
		t.Errorf("Or = %v", got)
	}
	not := a.Clone().AndNot(b)
	if got := not.Slice(); len(got) != 2 || got[0] != 1 || got[1] != 200 {
		t.Errorf("AndNot = %v", got)
	}
	// And with a shorter bitmap clears high words.
	c := FromSlice([]int{500}).And(FromSlice([]int{1}))
	if !c.Empty() {
		t.Error("And with short bitmap left high bits")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := FromSlice([]int{3})
	c := a.Clone()
	c.Set(4)
	if a.Get(4) {
		t.Error("Clone aliases the original")
	}
}

func TestSetRangeAndForEach(t *testing.T) {
	b := New()
	b.SetRange(60, 70)
	if b.Count() != 11 {
		t.Errorf("Count = %d", b.Count())
	}
	var got []int
	b.ForEach(func(i int) bool {
		got = append(got, i)
		return len(got) < 3
	})
	if len(got) != 3 || got[0] != 60 || got[2] != 62 {
		t.Errorf("ForEach early-stop = %v", got)
	}
}

func TestIntersects(t *testing.T) {
	a := FromSlice([]int{100})
	b := FromSlice([]int{100, 5})
	c := FromSlice([]int{5})
	if !a.Intersects(b) || !b.Intersects(a) {
		t.Error("overlapping bitmaps reported disjoint")
	}
	if a.Intersects(c) {
		t.Error("disjoint bitmaps reported overlapping")
	}
	if a.Intersects(New()) {
		t.Error("empty intersects")
	}
}

func TestRoundTripQuick(t *testing.T) {
	f := func(xs []uint16) bool {
		seen := map[int]bool{}
		var unique []int
		for _, x := range xs {
			i := int(x)
			if !seen[i] {
				seen[i] = true
				unique = append(unique, i)
			}
		}
		b := FromSlice(unique)
		if b.Count() != len(unique) {
			return false
		}
		for _, i := range unique {
			if !b.Get(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDeMorganQuick(t *testing.T) {
	// |A ∩ B| + |A \ B| == |A|
	f := func(as, bs []uint16) bool {
		toInts := func(xs []uint16) []int {
			out := make([]int, len(xs))
			for i, x := range xs {
				out[i] = int(x)
			}
			return out
		}
		a := FromSlice(toInts(as))
		b := FromSlice(toInts(bs))
		inter := a.Clone().And(b).Count()
		diff := a.Clone().AndNot(b).Count()
		return inter+diff == a.Count()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTableIndex(t *testing.T) {
	ti := NewTableIndex()
	ti.Mark("donate", 0)
	ti.Mark("donate", 5)
	ti.Mark("transfer", 5)
	if !ti.Contains("donate", 5) || ti.Contains("donate", 1) {
		t.Error("Contains misbehaves")
	}
	if ti.Contains("ghost", 0) {
		t.Error("unknown key contains block")
	}
	got := ti.Blocks("donate").Slice()
	if len(got) != 2 || got[0] != 0 || got[1] != 5 {
		t.Errorf("Blocks = %v", got)
	}
	if !ti.Blocks("ghost").Empty() {
		t.Error("unknown key bitmap not empty")
	}
	// Returned bitmap is a copy.
	ti.Blocks("donate").Set(9)
	if ti.Contains("donate", 9) {
		t.Error("Blocks returned aliased bitmap")
	}
	keys := ti.Keys()
	if len(keys) != 2 || keys[0] != "donate" || keys[1] != "transfer" {
		t.Errorf("Keys = %v", keys)
	}
}
