// Package bitmap provides the dense bitmaps used by SEBDB's table-level
// index and by the first level of the layered index (paper §IV-B): one
// bit per block, set when the block contains rows relevant to the
// bitmap's key (a table name, a SenID, or a histogram bucket).
package bitmap

import (
	"math/bits"
)

// Bitmap is a growable dense bitset indexed from zero.
type Bitmap struct {
	words []uint64
}

// New returns an empty bitmap.
func New() *Bitmap { return &Bitmap{} }

// Upto returns a bitmap with bits [0, n) set — the height mask a
// pinned read view intersects live index results with. It fills whole
// words instead of looping per bit.
func Upto(n int) *Bitmap {
	b := &Bitmap{}
	if n <= 0 {
		return b
	}
	b.words = make([]uint64, (n+63)>>6)
	for i := range b.words {
		b.words[i] = ^uint64(0)
	}
	if r := uint(n) & 63; r != 0 {
		b.words[len(b.words)-1] = 1<<r - 1
	}
	return b
}

// Set sets bit i, growing the bitmap as needed.
func (b *Bitmap) Set(i int) {
	w := i >> 6
	for w >= len(b.words) {
		b.words = append(b.words, 0)
	}
	b.words[w] |= 1 << (uint(i) & 63)
}

// Get reports whether bit i is set.
func (b *Bitmap) Get(i int) bool {
	w := i >> 6
	if i < 0 || w >= len(b.words) {
		return false
	}
	return b.words[w]&(1<<(uint(i)&63)) != 0
}

// Count returns the number of set bits.
func (b *Bitmap) Count() int {
	n := 0
	for _, w := range b.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Empty reports whether no bit is set.
func (b *Bitmap) Empty() bool {
	for _, w := range b.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Clone returns an independent copy.
func (b *Bitmap) Clone() *Bitmap {
	out := &Bitmap{words: make([]uint64, len(b.words))}
	copy(out.words, b.words)
	return out
}

// And intersects b with o in place and returns b.
func (b *Bitmap) And(o *Bitmap) *Bitmap {
	n := len(b.words)
	if len(o.words) < n {
		n = len(o.words)
	}
	for i := 0; i < n; i++ {
		b.words[i] &= o.words[i]
	}
	for i := n; i < len(b.words); i++ {
		b.words[i] = 0
	}
	return b
}

// Or unions o into b in place and returns b.
func (b *Bitmap) Or(o *Bitmap) *Bitmap {
	for len(b.words) < len(o.words) {
		b.words = append(b.words, 0)
	}
	for i, w := range o.words {
		b.words[i] |= w
	}
	return b
}

// AndNot clears from b every bit set in o, in place, and returns b.
func (b *Bitmap) AndNot(o *Bitmap) *Bitmap {
	n := len(b.words)
	if len(o.words) < n {
		n = len(o.words)
	}
	for i := 0; i < n; i++ {
		b.words[i] &^= o.words[i]
	}
	return b
}

// SetRange sets bits [lo, hi] inclusive.
func (b *Bitmap) SetRange(lo, hi int) {
	for i := lo; i <= hi; i++ {
		b.Set(i)
	}
}

// ForEach calls fn for every set bit in ascending order; returning
// false stops the iteration.
func (b *Bitmap) ForEach(fn func(i int) bool) {
	for wi, w := range b.words {
		for w != 0 {
			bit := bits.TrailingZeros64(w)
			if !fn(wi<<6 + bit) {
				return
			}
			w &= w - 1
		}
	}
}

// Slice returns the positions of all set bits in ascending order.
func (b *Bitmap) Slice() []int {
	out := make([]int, 0, b.Count())
	b.ForEach(func(i int) bool {
		out = append(out, i)
		return true
	})
	return out
}

// FromSlice builds a bitmap from bit positions.
func FromSlice(is []int) *Bitmap {
	b := New()
	for _, i := range is {
		b.Set(i)
	}
	return b
}

// Intersects reports whether b and o share any set bit, without
// materialising the intersection.
func (b *Bitmap) Intersects(o *Bitmap) bool {
	n := len(b.words)
	if len(o.words) < n {
		n = len(o.words)
	}
	for i := 0; i < n; i++ {
		if b.words[i]&o.words[i] != 0 {
			return true
		}
	}
	return false
}
