// Package blockindex implements the paper's block-level B+-tree (§IV-B):
// an index over (bid, tid, Ts) that locates a block given a block id, a
// transaction id, or a timestamp. Because all three keys grow
// monotonically as blocks are appended, the underlying B+-trees keep
// their leaves full (see bptree's append-optimised split).
package blockindex

import (
	"sync"

	"sebdb/internal/index/bitmap"
	"sebdb/internal/index/bptree"
	"sebdb/internal/types"
)

// Index locates blocks by id, first transaction id, or timestamp.
type Index struct {
	mu    sync.RWMutex
	byTid *bptree.Tree // firstTid -> bid
	byTs  *bptree.Tree // block timestamp -> bid
	// count is the number of indexed blocks; bids are dense [0, count).
	count uint64
	// lastTid tracks the largest tid seen so ByTid can reject ids beyond
	// the chain tip.
	lastTid uint64
}

// New returns an empty block index.
func New() *Index {
	return &Index{
		byTid: bptree.New(0),
		byTs:  bptree.New(0),
	}
}

// Append indexes a newly chained block. Blocks must be appended in
// height order; firstTid is the id of its first transaction, lastTid of
// its last, and ts its packaging timestamp.
func (x *Index) Append(bid uint64, firstTid, lastTid uint64, ts int64) {
	x.mu.Lock()
	defer x.mu.Unlock()
	x.byTid.Insert(types.Int(int64(firstTid)), bid)
	x.byTs.Insert(types.Time(ts), bid)
	if lastTid > x.lastTid {
		x.lastTid = lastTid
	}
	x.count++
}

// Count returns the number of indexed blocks.
func (x *Index) Count() uint64 {
	x.mu.RLock()
	defer x.mu.RUnlock()
	return x.count
}

// ByBlockID reports whether block bid exists.
func (x *Index) ByBlockID(bid uint64) bool {
	x.mu.RLock()
	defer x.mu.RUnlock()
	return bid < x.count
}

// ByTid returns the block containing transaction tid. Blocks partition
// the tid space, so the owner is the block with the greatest first tid
// not exceeding tid.
func (x *Index) ByTid(tid uint64) (uint64, bool) {
	x.mu.RLock()
	defer x.mu.RUnlock()
	if tid > x.lastTid {
		return 0, false
	}
	_, bid, ok := x.byTid.Floor(types.Int(int64(tid)))
	return bid, ok
}

// ByTime returns the block current at timestamp ts: the newest block
// packaged at or before ts.
func (x *Index) ByTime(ts int64) (uint64, bool) {
	x.mu.RLock()
	defer x.mu.RUnlock()
	_, bid, ok := x.byTs.Floor(types.Time(ts))
	return bid, ok
}

// TimeWindow returns a bitmap with bit i set when block i was packaged
// within [start, end] — the first step of Algorithms 1–3. A zero end
// means "no upper bound".
func (x *Index) TimeWindow(start, end int64) *bitmap.Bitmap {
	x.mu.RLock()
	defer x.mu.RUnlock()
	out := bitmap.New()
	if end == 0 {
		end = int64(^uint64(0) >> 1)
	}
	x.byTs.Range(types.Time(start), types.Time(end), func(_ types.Value, bid uint64) bool {
		out.Set(int(bid))
		return true
	})
	return out
}

// AllBlocks returns a bitmap with every indexed block set; used when a
// query has no time window.
func (x *Index) AllBlocks() *bitmap.Bitmap {
	x.mu.RLock()
	defer x.mu.RUnlock()
	out := bitmap.New()
	if x.count > 0 {
		out.SetRange(0, int(x.count-1))
	}
	return out
}
