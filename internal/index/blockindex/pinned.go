package blockindex

import (
	"sebdb/internal/index/bitmap"
)

// Reader is the read surface of the block-level index, implemented by
// the live *Index and by *Pinned, its height-pinned view. The query
// operators depend on Reader so a read pinned to height h never
// observes blocks a concurrent commit appends at h and beyond.
type Reader interface {
	// Count returns the number of visible blocks.
	Count() uint64
	// ByBlockID reports whether block bid is visible.
	ByBlockID(bid uint64) bool
	// ByTid returns the visible block containing transaction tid.
	ByTid(tid uint64) (uint64, bool)
	// ByTime returns the newest visible block packaged at or before ts.
	ByTime(ts int64) (uint64, bool)
	// TimeWindow returns a bitmap of the visible blocks packaged within
	// [start, end]; a zero end means "no upper bound".
	TimeWindow(start, end int64) *bitmap.Bitmap
	// AllBlocks returns a bitmap with every visible block set.
	AllBlocks() *bitmap.Bitmap
}

// Pinned is a Reader over the first height blocks of a live Index. It
// holds no lock of its own: the live index only ever gains state for
// blocks at or beyond the pin height (bids, first-tids and block
// timestamps all grow monotonically), so masking every answer to
// [0, height) yields exactly the index as it was when the pin was
// taken.
type Pinned struct {
	idx    *Index
	height uint64
	// lastTid is the largest transaction id of the pinned prefix; tids
	// beyond it belong to blocks outside the view.
	lastTid uint64
	// mask has bits [0, height) set. It is shared and read-only: And
	// reads only its operand's words, so concurrent pins of the same
	// view may intersect against it freely.
	mask *bitmap.Bitmap
}

// Pin returns a Reader over the first height blocks of idx. lastTid is
// the largest transaction id committed within that prefix and mask must
// have exactly bits [0, height) set; callers snapshot both under the
// same lock that made height stable.
func Pin(idx *Index, height, lastTid uint64, mask *bitmap.Bitmap) *Pinned {
	return &Pinned{idx: idx, height: height, lastTid: lastTid, mask: mask}
}

// Count returns the pinned height.
func (p *Pinned) Count() uint64 { return p.height }

// ByBlockID reports whether bid is inside the pinned prefix.
func (p *Pinned) ByBlockID(bid uint64) bool { return bid < p.height }

// ByTid returns the pinned block containing transaction tid.
func (p *Pinned) ByTid(tid uint64) (uint64, bool) {
	if tid > p.lastTid {
		return 0, false
	}
	bid, ok := p.idx.ByTid(tid)
	if !ok || bid >= p.height {
		// tid <= lastTid pins the floor inside the prefix; the bid check
		// is a belt-and-braces guard, not a reachable branch.
		return 0, false
	}
	return bid, true
}

// ByTime returns the newest pinned block packaged at or before ts. When
// the live floor lands beyond the pin, block timestamps being monotonic
// means every pinned block was packaged at or before ts too, so the
// newest pinned block is the answer.
func (p *Pinned) ByTime(ts int64) (uint64, bool) {
	bid, ok := p.idx.ByTime(ts)
	if !ok {
		return 0, false
	}
	if bid >= p.height {
		if p.height == 0 {
			return 0, false
		}
		bid = p.height - 1
	}
	return bid, true
}

// TimeWindow returns the pinned blocks packaged within [start, end].
func (p *Pinned) TimeWindow(start, end int64) *bitmap.Bitmap {
	return p.idx.TimeWindow(start, end).And(p.mask)
}

// AllBlocks returns a bitmap of the whole pinned prefix.
func (p *Pinned) AllBlocks() *bitmap.Bitmap { return p.mask.Clone() }
