package blockindex

import (
	"testing"
)

// buildIndex appends n blocks: block i holds tids [i*10+1, i*10+10] and
// was packaged at timestamp (i+1)*100.
func buildIndex(n int) *Index {
	x := New()
	for i := 0; i < n; i++ {
		first := uint64(i*10 + 1)
		x.Append(uint64(i), first, first+9, int64(i+1)*100)
	}
	return x
}

func TestByBlockID(t *testing.T) {
	x := buildIndex(5)
	if x.Count() != 5 {
		t.Fatalf("Count = %d", x.Count())
	}
	if !x.ByBlockID(0) || !x.ByBlockID(4) {
		t.Error("existing blocks not found")
	}
	if x.ByBlockID(5) {
		t.Error("missing block found")
	}
}

func TestByTid(t *testing.T) {
	x := buildIndex(5)
	cases := []struct {
		tid  uint64
		want uint64
		ok   bool
	}{
		{1, 0, true}, {10, 0, true}, {11, 1, true},
		{25, 2, true}, {50, 4, true}, {41, 4, true},
		{51, 0, false}, // beyond tip
	}
	for _, c := range cases {
		got, ok := x.ByTid(c.tid)
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("ByTid(%d) = %d,%v; want %d,%v", c.tid, got, ok, c.want, c.ok)
		}
	}
	if _, ok := New().ByTid(1); ok {
		t.Error("empty index resolved a tid")
	}
}

func TestByTime(t *testing.T) {
	x := buildIndex(5)
	cases := []struct {
		ts   int64
		want uint64
		ok   bool
	}{
		{100, 0, true}, {150, 0, true}, {200, 1, true},
		{500, 4, true}, {9999, 4, true}, {50, 0, false},
	}
	for _, c := range cases {
		got, ok := x.ByTime(c.ts)
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("ByTime(%d) = %d,%v; want %d,%v", c.ts, got, ok, c.want, c.ok)
		}
	}
}

func TestTimeWindow(t *testing.T) {
	x := buildIndex(10)
	got := x.TimeWindow(250, 650).Slice()
	// Blocks at ts 300..600 → ids 2..5.
	if len(got) != 4 || got[0] != 2 || got[3] != 5 {
		t.Errorf("TimeWindow = %v", got)
	}
	// Open-ended window.
	if n := x.TimeWindow(0, 0).Count(); n != 10 {
		t.Errorf("open window covers %d blocks", n)
	}
	if !x.TimeWindow(9000, 9999).Empty() {
		t.Error("future window not empty")
	}
}

func TestAllBlocks(t *testing.T) {
	if !New().AllBlocks().Empty() {
		t.Error("empty index AllBlocks not empty")
	}
	x := buildIndex(3)
	if got := x.AllBlocks().Slice(); len(got) != 3 || got[2] != 2 {
		t.Errorf("AllBlocks = %v", got)
	}
}
