package network

import (
	"math/rand/v2"
	"sync"
	"time"

	"sebdb/internal/types"
)

// Peer is the surface the gossiper pulls from. A peer may live in the
// same process (another node object) or behind a TCP client stub.
type Peer interface {
	// ID names the peer for membership bookkeeping.
	ID() string
	// Height returns the peer's chain height.
	Height() (uint64, error)
	// BlockAt fetches the block at the given height.
	BlockAt(h uint64) (*types.Block, error)
}

// Applier is the local sink for fetched blocks (core.Engine).
type Applier interface {
	Height() uint64
	ApplyBlock(b *types.Block) error
}

// Gossiper runs periodic anti-entropy: each round it asks one random
// peer for its height and pulls any blocks the local chain is missing,
// in order. Push-style propagation falls out of everyone pulling at
// gossip frequency — the classic epidemic broadcast used for block
// propagation and data recovery (§III-B).
type Gossiper struct {
	local    Applier
	interval time.Duration

	mu      sync.Mutex
	peers   []Peer
	stopCh  chan struct{}
	doneCh  chan struct{}
	running bool
	rng     *rand.Rand

	// failures counts per-peer consecutive errors; a peer failing
	// FailureThreshold rounds in a row is considered dead and dropped
	// (the failure-detection role of gossip membership).
	failures map[string]int
}

// FailureThreshold is how many consecutive failed rounds evict a peer.
const FailureThreshold = 3

// NewGossiper builds a gossiper over the local applier, drawing its
// peer-selection seed from the auto-seeded math/rand/v2 global source.
func NewGossiper(local Applier, interval time.Duration) *Gossiper {
	return NewGossiperSeeded(local, interval, rand.Uint64())
}

// NewGossiperSeeded fixes the peer-selection sequence, so tests and
// simulations can reproduce a gossip schedule exactly.
func NewGossiperSeeded(local Applier, interval time.Duration, seed uint64) *Gossiper {
	if interval <= 0 {
		interval = 100 * time.Millisecond
	}
	return &Gossiper{
		local:    local,
		interval: interval,
		rng:      rand.New(rand.NewPCG(seed, 0)),
		failures: make(map[string]int),
	}
}

// AddPeer registers a peer for anti-entropy.
func (g *Gossiper) AddPeer(p Peer) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.peers = append(g.peers, p)
	mPeers.Add(1)
}

// PeerIDs lists live peers.
func (g *Gossiper) PeerIDs() []string {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]string, len(g.peers))
	for i, p := range g.peers {
		out[i] = p.ID()
	}
	return out
}

// Start launches the gossip loop.
func (g *Gossiper) Start() {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.running {
		return
	}
	g.running = true
	g.stopCh = make(chan struct{})
	g.doneCh = make(chan struct{})
	go g.loop()
}

// Stop terminates the gossip loop.
func (g *Gossiper) Stop() {
	g.mu.Lock()
	if !g.running {
		g.mu.Unlock()
		return
	}
	g.running = false
	close(g.stopCh)
	g.mu.Unlock()
	<-g.doneCh
}

func (g *Gossiper) loop() {
	defer close(g.doneCh)
	ticker := time.NewTicker(g.interval)
	defer ticker.Stop()
	for {
		select {
		case <-g.stopCh:
			return
		case <-ticker.C:
			g.Round()
		}
	}
}

// Round performs one anti-entropy exchange with a random peer. It is
// exported so tests and simulations can drive gossip deterministically.
func (g *Gossiper) Round() {
	mRounds.Inc()
	g.mu.Lock()
	if len(g.peers) == 0 {
		g.mu.Unlock()
		return
	}
	i := g.rng.IntN(len(g.peers))
	peer := g.peers[i]
	g.mu.Unlock()

	if err := g.pullFrom(peer); err != nil {
		g.noteFailure(peer)
		return
	}
	g.mu.Lock()
	g.failures[peer.ID()] = 0
	g.mu.Unlock()
}

func (g *Gossiper) pullFrom(peer Peer) error {
	mMsgsOut.Inc()
	ph, err := peer.Height()
	if err != nil {
		return err
	}
	for h := g.local.Height(); h < ph; h = g.local.Height() {
		mMsgsOut.Inc()
		b, err := peer.BlockAt(h)
		if err != nil {
			return err
		}
		if err := g.local.ApplyBlock(b); err != nil {
			return err
		}
		mBlocksIn.Inc()
	}
	return nil
}

func (g *Gossiper) noteFailure(peer Peer) {
	g.mu.Lock()
	defer g.mu.Unlock()
	mFailures.Inc()
	id := peer.ID()
	g.failures[id]++
	if g.failures[id] < FailureThreshold {
		return
	}
	for i, p := range g.peers {
		if p.ID() == id {
			g.peers = append(g.peers[:i], g.peers[i+1:]...)
			mPeers.Add(-1)
			break
		}
	}
	delete(g.failures, id)
}

// SyncOnce pulls from every peer once, used for catch-up on start.
func (g *Gossiper) SyncOnce() {
	g.mu.Lock()
	peers := append([]Peer(nil), g.peers...)
	g.mu.Unlock()
	for _, p := range peers {
		if err := g.pullFrom(p); err != nil {
			g.noteFailure(p)
		}
	}
}
