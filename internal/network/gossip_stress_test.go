package network

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"sebdb/internal/types"
)

// TestGossipLifecycleStress hammers every exported Gossiper method from
// concurrent goroutines while the source chain keeps growing, so the
// race detector can see any unguarded state. Concurrent pulls may make
// a peer look flaky (two rounds racing to apply the same height), so
// membership is allowed to churn; what must hold is that the local
// chain stays a consistent prefix and a quiet sync still converges.
func TestGossipLifecycleStress(t *testing.T) {
	source := chainOf("source", 3)
	local := &memChain{id: "local"}
	g := NewGossiperSeeded(applierView{local}, time.Millisecond, 1)
	g.AddPeer(source)

	const (
		workers = 4
		iters   = 40
	)
	var wg sync.WaitGroup

	// Grow the source chain under gossip.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			source.mu.Lock()
			prev := &source.blocks[len(source.blocks)-1].Header
			source.blocks = append(source.blocks, types.NewBlock(prev, nil, int64(100+i), "source"))
			source.mu.Unlock()
		}
	}()

	// Flap the background loop.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			g.Start()
			g.Stop()
		}
	}()

	// Churn membership: flaky peers join and get evicted while rounds
	// run against them.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			g.AddPeer(&memChain{id: fmt.Sprintf("dead%d", i), bad: true})
			g.PeerIDs()
		}
	}()

	// Pull rounds from several goroutines at once.
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				g.Round()
				if i%8 == 0 {
					g.SyncOnce()
				}
			}
		}()
	}
	wg.Wait()
	g.Stop()

	// The local chain never overshoots the source and stays dense.
	if lh, sh := local.localHeight(), source.localHeight(); lh > sh {
		t.Errorf("local height %d overshot source height %d", lh, sh)
	}
	for i, b := range local.blocks {
		if b.Header.Height != uint64(i) {
			t.Fatalf("local chain has a gap: block %d at height %d", i, b.Header.Height)
		}
	}

	// The source may have been evicted by racing rounds; a fresh
	// gossiper over the same local chain must still converge.
	g2 := NewGossiperSeeded(applierView{local}, time.Millisecond, 2)
	g2.AddPeer(source)
	g2.SyncOnce()
	if lh, sh := local.localHeight(), source.localHeight(); lh != sh {
		t.Errorf("after quiet sync local height = %d, source = %d", lh, sh)
	}
}
