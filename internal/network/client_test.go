package network

import (
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"
)

// TestUnknownKindStableMessage pins the reply for an unregistered wire
// kind: clients (and their retry logic) key off this exact string, so
// it is part of the wire contract.
func TestUnknownKindStableMessage(t *testing.T) {
	srv := NewServer()
	srv.Handle(KindHeight, func(p []byte) ([]byte, error) { return []byte("0"), nil })
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Close()

	cl, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	_, err = cl.Call(KindAuthQuery, nil)
	if err == nil || err.Error() != UnknownKindMsg {
		t.Errorf("unknown kind reply = %v, want %q", err, UnknownKindMsg)
	}
	if !IsAppError(err) {
		t.Error("unknown-kind reply should be an application error (not retried)")
	}
}

// TestHandleStreamDispatch covers the subscription path: a stream
// handler takes over the connection and pushes frames until it returns;
// request/response kinds on other connections are unaffected.
func TestHandleStreamDispatch(t *testing.T) {
	srv := NewServer()
	srv.Handle(KindHeight, func(p []byte) ([]byte, error) { return []byte("7"), nil })
	srv.HandleStream(KindSubscribe, func(payload []byte, conn net.Conn) {
		for i := 0; i < 3; i++ {
			if err := WriteFrame(conn, KindBlockPush, append([]byte("push:"), payload...)); err != nil {
				return
			}
		}
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Close()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := WriteFrame(conn, KindSubscribe, []byte("c0")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		kind, payload, err := ReadFrame(conn)
		if err != nil {
			t.Fatalf("push %d: %v", i, err)
		}
		if kind != KindBlockPush || string(payload) != "push:c0" {
			t.Errorf("push %d = kind %d payload %q", i, kind, payload)
		}
	}
	// The handler returned, so the server closes the stream.
	if _, _, err := ReadFrame(conn); err == nil {
		t.Error("stream conn still open after handler returned")
	}

	// Request/response traffic on a fresh connection still works.
	cl, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if resp, err := cl.Call(KindHeight, nil); err != nil || string(resp) != "7" {
		t.Errorf("call after stream = %q, %v", resp, err)
	}
}

// TestCallTimeoutUnblocks points a client at a peer that accepts and
// then goes silent: with a deadline configured the Call must fail in
// bounded time instead of hanging forever.
func TestCallTimeoutUnblocks(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			// Swallow the request, never reply.
			go func() {
				buf := make([]byte, 1024)
				for {
					if _, err := conn.Read(buf); err != nil {
						conn.Close()
						return
					}
				}
			}()
		}
	}()

	cl, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cl.SetTimeout(100 * time.Millisecond)
	cl.SetRetry(0, 0)
	start := time.Now()
	_, err = cl.Call(KindHeight, nil)
	if err == nil {
		t.Fatal("call against a silent peer succeeded")
	}
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Errorf("err = %v, want a timeout", err)
	}
	if waited := time.Since(start); waited > 5*time.Second {
		t.Errorf("timeout took %v, want ~100ms", waited)
	}
}

// TestCallRedialAfterServerRestart drops the server under an open
// client; the next Call's retry must redial and reach the replacement
// server on the same address.
func TestCallRedialAfterServerRestart(t *testing.T) {
	newSrv := func() *Server {
		s := NewServer()
		s.Handle(KindHeight, func(p []byte) ([]byte, error) { return []byte("up"), nil })
		return s
	}
	srv := newSrv()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	go srv.Serve(ln)

	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cl.SetRetry(2, 10*time.Millisecond)
	if resp, err := cl.Call(KindHeight, nil); err != nil || string(resp) != "up" {
		t.Fatalf("first call = %q, %v", resp, err)
	}

	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	srv2 := newSrv()
	var ln2 net.Listener
	for i := 0; i < 100; i++ { // the freed port can take a moment to rebind
		if ln2, err = net.Listen("tcp", addr); err == nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("rebind %s: %v", addr, err)
	}
	go srv2.Serve(ln2)
	defer srv2.Close()

	// The cached conn is dead; the retry path must drop it and redial.
	if resp, err := cl.Call(KindHeight, nil); err != nil || string(resp) != "up" {
		t.Errorf("call after restart = %q, %v", resp, err)
	}
}

// TestAppErrorsNotRetried asserts retry only covers transport faults: a
// handler that answers with an application error must run exactly once
// even when the client is configured to retry.
func TestAppErrorsNotRetried(t *testing.T) {
	var calls atomic.Int64
	srv := NewServer()
	srv.Handle(KindSQL, func(p []byte) ([]byte, error) {
		calls.Add(1)
		return nil, errors.New("syntax error")
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Close()

	cl, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cl.SetRetry(3, time.Millisecond)
	_, err = cl.Call(KindSQL, []byte("SELEC"))
	if err == nil || err.Error() != "syntax error" {
		t.Fatalf("call = %v, want handler error", err)
	}
	if !IsAppError(err) {
		t.Error("handler error not marked as application error")
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("handler ran %d times, want exactly 1", got)
	}
}
