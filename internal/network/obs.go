package network

import "sebdb/internal/obs"

// Gossip metrics, reported to the default registry. Messages count
// peer RPCs issued (Height and BlockAt probes); blocks count blocks
// pulled and applied locally.
var (
	mRounds   = obs.Default.Counter("sebdb_gossip_rounds_total")
	mMsgsOut  = obs.Default.Counter("sebdb_gossip_messages_total")
	mBlocksIn = obs.Default.Counter("sebdb_gossip_blocks_pulled_total")
	mFailures = obs.Default.Counter("sebdb_gossip_failures_total")
	mPeers    = obs.Default.Gauge("sebdb_gossip_peers")
)
