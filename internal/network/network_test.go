package network

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"sebdb/internal/types"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, KindBlock, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	kind, payload, err := ReadFrame(&buf)
	if err != nil || kind != KindBlock || string(payload) != "payload" {
		t.Errorf("frame = %d %q %v", kind, payload, err)
	}
	// Empty payload.
	WriteFrame(&buf, KindHeight, nil)
	kind, payload, err = ReadFrame(&buf)
	if err != nil || kind != KindHeight || len(payload) != 0 {
		t.Errorf("empty frame = %d %q %v", kind, payload, err)
	}
	// Truncated stream.
	short := bytes.NewReader([]byte{1, 0, 0, 0, 10, 1, 2})
	if _, _, err := ReadFrame(short); err == nil {
		t.Error("truncated frame accepted")
	}
	// Oversized declared length.
	huge := bytes.NewReader([]byte{1, 0xFF, 0xFF, 0xFF, 0xFF})
	if _, _, err := ReadFrame(huge); err == nil {
		t.Error("oversized frame accepted")
	}
}

func TestServerClientOverTCP(t *testing.T) {
	srv := NewServer()
	srv.Handle(KindHeight, func(p []byte) ([]byte, error) {
		return []byte("42"), nil
	})
	srv.Handle(KindSQL, func(p []byte) ([]byte, error) {
		return nil, errors.New("boom")
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Close()

	cl, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	resp, err := cl.Call(KindHeight, nil)
	if err != nil || string(resp) != "42" {
		t.Errorf("call = %q, %v", resp, err)
	}
	// Handler error becomes a client error.
	if _, err := cl.Call(KindSQL, []byte("x")); err == nil || err.Error() != "boom" {
		t.Errorf("error propagation: %v", err)
	}
	// Unregistered kind.
	if _, err := cl.Call(KindAuthQuery, nil); err == nil {
		t.Error("unregistered kind accepted")
	}
	// Concurrent calls are serialised safely.
	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if r, err := cl.Call(KindHeight, nil); err != nil || string(r) != "42" {
				t.Errorf("concurrent call failed: %v", err)
			}
		}()
	}
	wg.Wait()
}

// memChain is an in-memory Applier + Peer for gossip tests.
type memChain struct {
	mu     sync.Mutex
	id     string
	blocks []*types.Block
	bad    bool // simulate failure
}

func (m *memChain) ID() string { return m.id }

func (m *memChain) Height() (uint64, error) {
	if m.bad {
		return 0, errors.New("down")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return uint64(len(m.blocks)), nil
}

func (m *memChain) localHeight() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return uint64(len(m.blocks))
}

func (m *memChain) BlockAt(h uint64) (*types.Block, error) {
	if m.bad {
		return nil, errors.New("down")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if h >= uint64(len(m.blocks)) {
		return nil, errors.New("no such block")
	}
	return m.blocks[h], nil
}

func (m *memChain) ApplyBlock(b *types.Block) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if b.Header.Height != uint64(len(m.blocks)) {
		return fmt.Errorf("out of order: %d at height %d", b.Header.Height, len(m.blocks))
	}
	m.blocks = append(m.blocks, b)
	return nil
}

// applierView adapts memChain to the Applier interface's non-error
// Height.
type applierView struct{ *memChain }

func (a applierView) Height() uint64 { return a.localHeight() }

func chainOf(id string, n int) *memChain {
	m := &memChain{id: id}
	var prev *types.BlockHeader
	for i := 0; i < n; i++ {
		b := types.NewBlock(prev, nil, int64(i+1), id)
		prev = &b.Header
		m.blocks = append(m.blocks, b)
	}
	return m
}

func TestGossipCatchUp(t *testing.T) {
	source := chainOf("peer1", 10)
	local := chainOf("local", 3)
	// Rebuild local's 3 blocks to be a prefix of source's chain so
	// ApplyBlock linkage (by height here) works.
	local.blocks = append([]*types.Block(nil), source.blocks[:3]...)

	g := NewGossiper(applierView{local}, time.Millisecond)
	g.AddPeer(source)
	g.Round()
	if local.localHeight() != 10 {
		t.Errorf("after round height = %d", local.localHeight())
	}
}

func TestGossipBackgroundLoop(t *testing.T) {
	source := chainOf("peer1", 5)
	local := &memChain{id: "local"}
	g := NewGossiper(applierView{local}, time.Millisecond)
	g.AddPeer(source)
	g.Start()
	defer g.Stop()
	deadline := time.Now().Add(2 * time.Second)
	for local.localHeight() < 5 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if local.localHeight() != 5 {
		t.Errorf("background gossip synced %d of 5", local.localHeight())
	}
	// New blocks keep flowing.
	source.mu.Lock()
	prev := &source.blocks[4].Header
	source.blocks = append(source.blocks, types.NewBlock(prev, nil, 99, "peer1"))
	source.mu.Unlock()
	deadline = time.Now().Add(2 * time.Second)
	for local.localHeight() < 6 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if local.localHeight() != 6 {
		t.Error("gossip missed the new block")
	}
}

func TestGossipFailureEviction(t *testing.T) {
	dead := &memChain{id: "dead", bad: true}
	local := &memChain{id: "local"}
	g := NewGossiper(applierView{local}, time.Millisecond)
	g.AddPeer(dead)
	for i := 0; i < FailureThreshold; i++ {
		g.Round()
	}
	if ids := g.PeerIDs(); len(ids) != 0 {
		t.Errorf("dead peer not evicted: %v", ids)
	}
	// A healthy peer resets its failure count.
	healthy := chainOf("ok", 2)
	g.AddPeer(healthy)
	g.Round()
	g.Round()
	if ids := g.PeerIDs(); len(ids) != 1 {
		t.Errorf("healthy peer evicted: %v", ids)
	}
}

func TestSyncOnce(t *testing.T) {
	a := chainOf("a", 4)
	b := chainOf("b", 7)
	// Make a's chain a prefix of b's.
	a.blocks = append([]*types.Block(nil), b.blocks[:4]...)
	local := &memChain{id: "local"}
	g := NewGossiper(applierView{local}, time.Hour)
	g.AddPeer(a)
	g.AddPeer(b)
	g.SyncOnce()
	if local.localHeight() != 7 {
		t.Errorf("SyncOnce height = %d", local.localHeight())
	}
}
