// Package network provides SEBDB's network layer (paper §III-B): a
// small length-prefixed request/response wire protocol over TCP, and a
// gossip component for block propagation and data recovery —
// anti-entropy rounds against random peers, as used both by distributed
// databases and by blockchains.
package network

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"sebdb/internal/clock"
)

// Frame kinds of the wire protocol.
const (
	KindHeight     uint8 = 1 // req: empty            resp: uint64 height
	KindBlock      uint8 = 2 // req: uint64 height    resp: encoded block
	KindHeaders    uint8 = 3 // req: uint64 from      resp: count + headers
	KindAuthQuery  uint8 = 4 // req/resp: auth payloads (node package)
	KindAuthDigest uint8 = 5
	KindSQL        uint8 = 6  // req: sql string       resp: encoded result
	KindSnapOffer  uint8 = 7  // req: empty            resp: checkpoint offer (node package)
	KindSnapChunk  uint8 = 8  // req: uint32 index     resp: index + chunk bytes
	KindSubscribe  uint8 = 9  // req: uint64 cursor    -> stream of KindBlockPush frames (replica package)
	KindBlockPush  uint8 = 10 // push: uint64 leader height + block bytes (empty = heartbeat)
	KindError      uint8 = 0xFF
)

// UnknownKindMsg is the stable KindError payload the server replies with
// when a frame arrives for a kind no handler is registered for. Clients
// match on it verbatim, so it must never change shape.
const UnknownKindMsg = "network: unknown wire kind"

// MaxFrame bounds a frame to 64 MiB; larger frames indicate corruption
// or abuse.
const MaxFrame = 64 << 20

// WriteFrame writes one kind-tagged, length-prefixed frame.
func WriteFrame(w io.Writer, kind uint8, payload []byte) error {
	if len(payload) > MaxFrame {
		return fmt.Errorf("network: frame of %d bytes exceeds limit", len(payload))
	}
	var hdr [5]byte
	hdr[0] = kind
	binary.BigEndian.PutUint32(hdr[1:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one frame.
func ReadFrame(r io.Reader) (kind uint8, payload []byte, err error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[1:])
	if n > MaxFrame {
		return 0, nil, fmt.Errorf("network: frame of %d bytes exceeds limit", n)
	}
	payload = make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return hdr[0], payload, nil
}

// Handler answers one request frame.
type Handler func(payload []byte) ([]byte, error)

// StreamHandler takes over a connection after its opening request frame.
// The server stops request/response dispatch on the connection and the
// handler owns it until it returns; the connection is closed afterwards.
// Subscription-style kinds (KindSubscribe) use this to push frames for
// the life of the session instead of answering one response per request.
type StreamHandler func(payload []byte, conn net.Conn)

// Server dispatches inbound frames to registered handlers.
type Server struct {
	mu       sync.RWMutex
	handlers map[uint8]Handler
	streams  map[uint8]StreamHandler
	ln       net.Listener
	conns    map[net.Conn]struct{}
	wg       sync.WaitGroup
	closed   chan struct{}
}

// NewServer returns a server with no handlers registered.
func NewServer() *Server {
	return &Server{
		handlers: make(map[uint8]Handler),
		streams:  make(map[uint8]StreamHandler),
		conns:    make(map[net.Conn]struct{}),
		closed:   make(chan struct{}),
	}
}

// Handle registers the handler for a frame kind.
func (s *Server) Handle(kind uint8, h Handler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.handlers[kind] = h
}

// HandleStream registers a stream handler for a frame kind.
func (s *Server) HandleStream(kind uint8, h StreamHandler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.streams[kind] = h
}

// Serve accepts connections on ln until Close. Each connection carries
// a sequence of request/response frame pairs.
func (s *Server) Serve(ln net.Listener) {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			select {
			case <-s.closed:
				return
			default:
			}
			return
		}
		s.mu.Lock()
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer func() {
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
				conn.Close() //sebdb:ignore-err best-effort teardown of a finished connection
			}()
			s.serveConn(conn)
		}()
	}
}

func (s *Server) serveConn(conn net.Conn) {
	for {
		kind, payload, err := ReadFrame(conn)
		if err != nil {
			return
		}
		s.mu.RLock()
		sh, isStream := s.streams[kind]
		h, ok := s.handlers[kind]
		s.mu.RUnlock()
		if isStream {
			sh(payload, conn)
			return
		}
		var resp []byte
		var herr error
		if !ok {
			herr = errors.New(UnknownKindMsg)
		} else {
			resp, herr = h(payload)
		}
		if herr != nil {
			if WriteFrame(conn, KindError, []byte(herr.Error())) != nil {
				return
			}
			continue
		}
		if WriteFrame(conn, kind, resp) != nil {
			return
		}
	}
}

// Close stops accepting, closes every open connection (clients must not
// be able to hold shutdown hostage by staying connected) and waits for
// the connection goroutines to drain.
func (s *Server) Close() error {
	close(s.closed)
	s.mu.Lock()
	ln := s.ln
	open := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		open = append(open, c)
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	for _, c := range open {
		c.Close() //sebdb:ignore-err unblocking a conn goroutine; the read's error is the signal
	}
	s.wg.Wait()
	return err
}

// appError marks a well-formed KindError reply from the peer: the
// request was delivered and the application refused it, so retrying the
// same bytes cannot help. Transport-level failures stay unwrapped and
// are eligible for redial + retry.
type appError struct{ msg string }

func (e *appError) Error() string { return e.msg }

// IsAppError reports whether err is an application-level KindError reply
// (as opposed to a transport failure).
func IsAppError(err error) bool {
	var ae *appError
	return errors.As(err, &ae)
}

// Client is a single-connection request/response client. It is safe for
// concurrent use; requests are serialised on the connection. A client
// created by Dial remembers its address and transparently redials after
// transport failures, bounded by SetRetry; SetTimeout bounds each
// write+read exchange so a stalled peer cannot block a caller forever.
type Client struct {
	// addr is the dial target, empty for NewClient-wrapped connections
	// (those cannot redial). Immutable after construction.
	addr string

	// timeout/retries/backoff tune Call. timeout and backoff hold
	// time.Duration nanoseconds; retries is the number of attempts
	// AFTER the first. Atomics so tuning races with in-flight calls
	// harmlessly.
	timeout atomic.Int64
	retries atomic.Int64
	backoff atomic.Int64

	// closed flips once; a closed client never redials.
	closed atomic.Bool

	// connMu guards the conn pointer only — it is never held across
	// I/O, so Close and redial cannot deadlock behind a hung exchange.
	connMu sync.Mutex
	conn   net.Conn

	// mu serialises request/response pairs on the connection. Close
	// stays off it so closing the conn can unblock a Call hung
	// mid-exchange.
	mu sync.Mutex
}

// Default Call tuning: one redial after a transport failure, a short
// pause before it, and no deadline (callers opt in via SetTimeout
// because VO and snapshot-chunk exchanges can legitimately run long).
const (
	defaultCallRetries = 1
	defaultCallBackoff = 50 * time.Millisecond
)

func newClient(conn net.Conn, addr string) *Client {
	c := &Client{conn: conn, addr: addr}
	c.retries.Store(defaultCallRetries)
	c.backoff.Store(int64(defaultCallBackoff))
	return c
}

// Dial connects to a server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return newClient(conn, addr), nil
}

// NewClient wraps an existing connection (tests use net.Pipe). Wrapped
// clients cannot redial: a transport failure ends the client.
func NewClient(conn net.Conn) *Client { return newClient(conn, "") }

// SetTimeout bounds each write+read exchange of a Call; zero or negative
// removes the bound.
func (c *Client) SetTimeout(d time.Duration) { c.timeout.Store(int64(d)) }

// SetRetry configures how many times Call redials and resends after a
// transport failure (attempts beyond the first) and the pause before
// each retry.
func (c *Client) SetRetry(retries int, backoff time.Duration) {
	if retries < 0 {
		retries = 0
	}
	c.retries.Store(int64(retries))
	c.backoff.Store(int64(backoff))
}

// current returns the live connection, redialing if a previous failure
// cleared it. Dialing happens outside every lock.
func (c *Client) current() (net.Conn, error) {
	c.connMu.Lock()
	conn := c.conn
	c.connMu.Unlock()
	if conn != nil {
		return conn, nil
	}
	if c.closed.Load() {
		return nil, errors.New("network: client closed")
	}
	if c.addr == "" {
		return nil, errors.New("network: connection lost and client cannot redial")
	}
	fresh, err := net.Dial("tcp", c.addr)
	if err != nil {
		return nil, err
	}
	c.connMu.Lock()
	if c.closed.Load() {
		c.connMu.Unlock()
		fresh.Close() //sebdb:ignore-err losing race with Close; discard the fresh conn
		return nil, errors.New("network: client closed")
	}
	if c.conn == nil {
		c.conn = fresh
		c.connMu.Unlock()
		return fresh, nil
	}
	// Another caller redialed first; use theirs.
	conn = c.conn
	c.connMu.Unlock()
	fresh.Close() //sebdb:ignore-err concurrent redial won; discard the spare conn
	return conn, nil
}

// drop retires a connection after a transport failure so the next
// attempt redials. Only the exact failed conn is cleared — a concurrent
// redial's fresh connection stays.
func (c *Client) drop(bad net.Conn) {
	c.connMu.Lock()
	if c.conn == bad {
		c.conn = nil
	}
	c.connMu.Unlock()
	bad.Close() //sebdb:ignore-err best-effort teardown of a failed connection
}

// exchange runs one serialised request/response pair on conn.
func (c *Client) exchange(conn net.Conn, kind uint8, payload []byte) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if d := time.Duration(c.timeout.Load()); d > 0 {
		// Absolute wall time: deadlines are the one place an injected
		// clock.Source cannot serve (obsclock allows clock.Wall).
		if err := conn.SetDeadline(clock.Wall().Add(d)); err != nil {
			return nil, err
		}
		defer conn.SetDeadline(time.Time{}) //sebdb:ignore-err conn may already be dead; next use fails anyway
	}
	//sebdb:ignore-lockio reason: c.mu is the request/response serialiser for this connection — holding it across the exchange IS its job; Close stays lock-free to unblock a hung Call
	if err := WriteFrame(conn, kind, payload); err != nil {
		return nil, err
	}
	//sebdb:ignore-lockio reason: response read is the second half of the serialised exchange under c.mu
	k, resp, err := ReadFrame(conn)
	if err != nil {
		return nil, err
	}
	if k == KindError {
		return nil, &appError{msg: string(resp)}
	}
	if k != kind {
		return nil, fmt.Errorf("network: response kind %d for request %d", k, kind)
	}
	return resp, nil
}

// Call sends one request and awaits its response. Transport failures
// (broken conn, deadline, mismatched reply kind) drop the connection
// and, within the SetRetry budget, redial and resend; a KindError reply
// is an application answer and is returned as-is without retry.
func (c *Client) Call(kind uint8, payload []byte) ([]byte, error) {
	attempts := int(c.retries.Load()) + 1
	var lastErr error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			if d := time.Duration(c.backoff.Load()); d > 0 {
				time.Sleep(d)
			}
		}
		conn, err := c.current()
		if err != nil {
			lastErr = err
			if c.closed.Load() || c.addr == "" {
				break
			}
			continue
		}
		resp, err := c.exchange(conn, kind, payload)
		if err == nil {
			return resp, nil
		}
		if IsAppError(err) {
			return nil, err
		}
		lastErr = err
		c.drop(conn)
		if c.addr == "" {
			break // wrapped conn: nothing to redial
		}
	}
	return nil, lastErr
}

// Close closes the underlying connection and disables redial.
func (c *Client) Close() error {
	c.closed.Store(true)
	c.connMu.Lock()
	conn := c.conn
	c.connMu.Unlock()
	if conn == nil {
		return nil
	}
	return conn.Close()
}
