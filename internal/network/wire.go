// Package network provides SEBDB's network layer (paper §III-B): a
// small length-prefixed request/response wire protocol over TCP, and a
// gossip component for block propagation and data recovery —
// anti-entropy rounds against random peers, as used both by distributed
// databases and by blockchains.
package network

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
)

// Frame kinds of the wire protocol.
const (
	KindHeight     uint8 = 1 // req: empty            resp: uint64 height
	KindBlock      uint8 = 2 // req: uint64 height    resp: encoded block
	KindHeaders    uint8 = 3 // req: uint64 from      resp: count + headers
	KindAuthQuery  uint8 = 4 // req/resp: auth payloads (node package)
	KindAuthDigest uint8 = 5
	KindSQL        uint8 = 6 // req: sql string       resp: encoded result
	KindSnapOffer  uint8 = 7 // req: empty            resp: checkpoint offer (node package)
	KindSnapChunk  uint8 = 8 // req: uint32 index     resp: index + chunk bytes
	KindError      uint8 = 0xFF
)

// MaxFrame bounds a frame to 64 MiB; larger frames indicate corruption
// or abuse.
const MaxFrame = 64 << 20

// WriteFrame writes one kind-tagged, length-prefixed frame.
func WriteFrame(w io.Writer, kind uint8, payload []byte) error {
	if len(payload) > MaxFrame {
		return fmt.Errorf("network: frame of %d bytes exceeds limit", len(payload))
	}
	var hdr [5]byte
	hdr[0] = kind
	binary.BigEndian.PutUint32(hdr[1:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one frame.
func ReadFrame(r io.Reader) (kind uint8, payload []byte, err error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[1:])
	if n > MaxFrame {
		return 0, nil, fmt.Errorf("network: frame of %d bytes exceeds limit", n)
	}
	payload = make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return hdr[0], payload, nil
}

// Handler answers one request frame.
type Handler func(payload []byte) ([]byte, error)

// Server dispatches inbound frames to registered handlers.
type Server struct {
	mu       sync.RWMutex
	handlers map[uint8]Handler
	ln       net.Listener
	wg       sync.WaitGroup
	closed   chan struct{}
}

// NewServer returns a server with no handlers registered.
func NewServer() *Server {
	return &Server{handlers: make(map[uint8]Handler), closed: make(chan struct{})}
}

// Handle registers the handler for a frame kind.
func (s *Server) Handle(kind uint8, h Handler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.handlers[kind] = h
}

// Serve accepts connections on ln until Close. Each connection carries
// a sequence of request/response frame pairs.
func (s *Server) Serve(ln net.Listener) {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			select {
			case <-s.closed:
				return
			default:
			}
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer conn.Close() //sebdb:ignore-err best-effort teardown of a finished connection
			s.serveConn(conn)
		}()
	}
}

func (s *Server) serveConn(conn net.Conn) {
	for {
		kind, payload, err := ReadFrame(conn)
		if err != nil {
			return
		}
		s.mu.RLock()
		h, ok := s.handlers[kind]
		s.mu.RUnlock()
		var resp []byte
		var herr error
		if !ok {
			herr = fmt.Errorf("network: no handler for kind %d", kind)
		} else {
			resp, herr = h(payload)
		}
		if herr != nil {
			if WriteFrame(conn, KindError, []byte(herr.Error())) != nil {
				return
			}
			continue
		}
		if WriteFrame(conn, kind, resp) != nil {
			return
		}
	}
}

// Close stops accepting and waits for in-flight connections.
func (s *Server) Close() error {
	close(s.closed)
	s.mu.RLock()
	ln := s.ln
	s.mu.RUnlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}

// Client is a single-connection request/response client. It is safe for
// concurrent use; requests are serialised on the connection.
type Client struct {
	// conn is set at construction and never reassigned; mu serialises
	// request/response pairs on it. Close stays lock-free so it can
	// unblock a Call hung mid-exchange.
	conn net.Conn

	mu sync.Mutex
}

// Dial connects to a server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn}, nil
}

// NewClient wraps an existing connection (tests use net.Pipe).
func NewClient(conn net.Conn) *Client { return &Client{conn: conn} }

// Call sends one request and awaits its response.
func (c *Client) Call(kind uint8, payload []byte) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	//sebdb:ignore-lockio reason: c.mu is the request/response serialiser for this connection — holding it across the exchange IS its job; Close stays lock-free to unblock a hung Call
	if err := WriteFrame(c.conn, kind, payload); err != nil {
		return nil, err
	}
	//sebdb:ignore-lockio reason: response read is the second half of the serialised exchange under c.mu
	k, resp, err := ReadFrame(c.conn)
	if err != nil {
		return nil, err
	}
	if k == KindError {
		return nil, errors.New(string(resp))
	}
	if k != kind {
		return nil, fmt.Errorf("network: response kind %d for request %d", k, kind)
	}
	return resp, nil
}

// Close closes the underlying connection.
func (c *Client) Close() error { return c.conn.Close() }
