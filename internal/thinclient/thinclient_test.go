package thinclient_test

import (
	"fmt"
	"testing"

	"sebdb/internal/auth"
	"sebdb/internal/core"
	"sebdb/internal/merkle"
	"sebdb/internal/node"
	"sebdb/internal/thinclient"
	"sebdb/internal/types"
)

// cluster builds k identical full nodes (same committed chain) with
// ALIs on donate.amount and tname, plus a thin client synced to node 0.
func cluster(t testing.TB, k, nBlocks, txPerBlock int) ([]*node.FullNode, []node.QueryNode, *thinclient.Client) {
	t.Helper()
	var nodes []*node.FullNode
	var qn []node.QueryNode
	for i := 0; i < k; i++ {
		e, err := core.Open(core.Config{Dir: t.TempDir(), HistogramDepth: 10, Signer: fmt.Sprintf("node%d", i)})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { e.Close() })
		nodes = append(nodes, node.New(e))
		qn = append(qn, &node.Local{Node: nodes[i], Name: fmt.Sprintf("node%d", i)})
	}
	// Drive the same ordered batches into every node — what consensus
	// guarantees. Node 0's blocks are replayed on the others so all
	// chains are byte-identical.
	e0 := nodes[0].Engine
	if _, err := e0.Execute(`CREATE donate (donor string, project string, amount decimal)`); err != nil {
		t.Fatal(err)
	}
	if err := e0.FlushAt(1); err != nil {
		t.Fatal(err)
	}
	seq := 0
	for b := 0; b < nBlocks; b++ {
		var batch []*types.Transaction
		for i := 0; i < txPerBlock; i++ {
			tx, err := e0.NewTransaction(fmt.Sprintf("org%d", seq%3), "donate", []types.Value{
				types.Str(fmt.Sprintf("donor%02d", seq%5)),
				types.Str("education"),
				types.Dec(float64(seq)),
			})
			if err != nil {
				t.Fatal(err)
			}
			tx.Ts = int64(b+1) * 1000
			batch = append(batch, tx)
			seq++
		}
		if _, err := e0.CommitBlock(batch, int64(b+1)*1000); err != nil {
			t.Fatal(err)
		}
	}
	for h := uint64(0); h < e0.Height(); h++ {
		blk, err := e0.Block(h)
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < k; i++ {
			if err := nodes[i].Engine.ApplyBlock(blk); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i := 0; i < k; i++ {
		if err := nodes[i].Engine.CreateAuthIndex("donate", "amount"); err != nil {
			t.Fatal(err)
		}
		if err := nodes[i].Engine.CreateAuthIndex("", "tname"); err != nil {
			t.Fatal(err)
		}
	}
	tc := thinclient.New(1)
	if err := tc.SyncHeaders(qn[0]); err != nil {
		t.Fatal(err)
	}
	return nodes, qn, tc
}

func TestAuthQueryHappyPath(t *testing.T) {
	_, qn, tc := cluster(t, 4, 6, 10)
	req := &node.AuthRequest{Table: "donate", Col: "amount",
		Lo: types.Dec(15), Hi: types.Dec(30)}
	txs, st, err := tc.AuthQuery(qn[0], qn[1:], req,
		thinclient.Options{M: 2, ByzantineRatio: 0.25, MaxByzantine: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(txs) != 16 {
		t.Errorf("got %d txs, want 16", len(txs))
	}
	for _, tx := range txs {
		if v := tx.Args[2].Float(); v < 15 || v > 30 {
			t.Errorf("out-of-range amount %g", v)
		}
	}
	if st.VOSize == 0 || st.Identical < 2 {
		t.Errorf("stats = %+v", st)
	}
	// m=2 > max=1 Byzantine ⇒ θ = 0.
	if st.Theta != 0 {
		t.Errorf("theta = %g", st.Theta)
	}
}

func TestAuthTrackingQuery(t *testing.T) {
	_, qn, tc := cluster(t, 4, 5, 8)
	req := &node.AuthRequest{Table: "", Col: "tname",
		Lo: types.Str("donate"), Hi: types.Str("donate")}
	txs, _, err := tc.AuthQuery(qn[0], qn[1:], req, thinclient.Options{M: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(txs) != 40 {
		t.Errorf("tracking got %d txs, want 40", len(txs))
	}
}

func TestAuthQueryWithWindow(t *testing.T) {
	_, qn, tc := cluster(t, 4, 6, 10)
	req := &node.AuthRequest{Table: "donate", Col: "amount",
		Lo: types.Dec(0), Hi: types.Dec(1000), WinStart: 2000, WinEnd: 3000}
	txs, _, err := tc.AuthQuery(qn[0], qn[1:], req, thinclient.Options{M: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(txs) != 20 { // blocks 1 and 2
		t.Errorf("windowed got %d txs, want 20", len(txs))
	}
	for _, tx := range txs {
		if tx.Ts < 2000 || tx.Ts > 3000 {
			t.Errorf("tx ts %d outside window", tx.Ts)
		}
	}
}

// byzantineNode wraps a QueryNode and forges digests.
type byzantineNode struct{ node.QueryNode }

func (b byzantineNode) AuthDigest(r *node.AuthRequest) ([32]byte, error) {
	return [32]byte{0xE, 0xF}, nil
}

func TestAuthQueryDetectsByzantineAuxiliaries(t *testing.T) {
	_, qn, tc := cluster(t, 4, 4, 6)
	req := &node.AuthRequest{Table: "donate", Col: "amount",
		Lo: types.Dec(0), Hi: types.Dec(5)}
	// All auxiliaries forge: quorum of honest digests unreachable.
	aux := []node.QueryNode{byzantineNode{qn[1]}, byzantineNode{qn[2]}, byzantineNode{qn[3]}}
	if _, _, err := tc.AuthQuery(qn[0], aux, req, thinclient.Options{M: 2}); err == nil {
		t.Error("all-Byzantine auxiliaries accepted")
	}
	// One forger among three: quorum still reached.
	aux = []node.QueryNode{byzantineNode{qn[1]}, qn[2], qn[3]}
	if _, _, err := tc.AuthQuery(qn[0], aux, req, thinclient.Options{M: 2}); err != nil {
		t.Errorf("one forger broke quorum: %v", err)
	}
}

func TestAuthQueryDetectsWithholdingFullNode(t *testing.T) {
	_, qn, _ := cluster(t, 4, 6, 10)
	req := &node.AuthRequest{Table: "donate", Col: "amount",
		Lo: types.Dec(0), Hi: types.Dec(1000)} // touches every block
	// Phase one from an honest node, then manually drop a block VO and
	// replay verification: the digest can no longer match auxiliaries.
	ans, err := qn[0].AuthQuery(req)
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Blocks) < 2 {
		t.Fatal("answer too small to truncate")
	}
	ans.Blocks = ans.Blocks[:len(ans.Blocks)-1]
	// Emulate the client pipeline on the truncated answer.
	digest, _, err := auth.VerifyAnswer(ans, req.Lo, req.Hi)
	if err != nil {
		t.Fatal(err)
	}
	req2 := *req
	req2.Height = ans.Height
	honest, err := qn[1].AuthDigest(&req2)
	if err != nil {
		t.Fatal(err)
	}
	if digest == honest {
		t.Error("withheld block escaped the digest comparison")
	}
}

func TestSyncHeadersRejectsForks(t *testing.T) {
	nodes, qn, tc := cluster(t, 2, 3, 4)
	_ = nodes
	if tc.Height() == 0 {
		t.Fatal("no headers synced")
	}
	// A second sync from an identical node is a no-op.
	if err := tc.SyncHeaders(qn[1]); err != nil {
		t.Errorf("re-sync from identical chain: %v", err)
	}
	// A diverged node (different chain) is rejected.
	e, err := core.Open(core.Config{Dir: t.TempDir(), Signer: "evil", BlockMaxTxs: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	e.Execute(`CREATE other (a int)`)
	e.FlushAt(1)
	for i := 0; i < 10; i++ {
		e.Execute(fmt.Sprintf(`INSERT INTO other (%d)`, i))
	}
	e.FlushAt(2)
	evil := node.New(e)
	defer evil.Close()
	if err := tc.SyncHeaders(&node.Local{Node: evil, Name: "evil"}); err == nil {
		t.Error("forked header chain accepted")
	}
}

func TestVerifyMembership(t *testing.T) {
	nodes, _, tc := cluster(t, 1, 3, 5)
	e := nodes[0].Engine
	blk, err := e.Block(1)
	if err != nil {
		t.Fatal(err)
	}
	leaves := types.TxLeaves(blk.Txs)
	proof, err := merkle.Prove(leaves, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !tc.VerifyMembership(blk.Txs[2], 1, proof) {
		t.Error("valid membership rejected")
	}
	// Wrong block or tampered tx fails.
	if tc.VerifyMembership(blk.Txs[2], 2, proof) {
		t.Error("wrong block accepted")
	}
	forged := *blk.Txs[2]
	forged.Args = append([]types.Value(nil), forged.Args...)
	forged.Args[2] = types.Dec(9999)
	if tc.VerifyMembership(&forged, 1, proof) {
		t.Error("forged tx accepted")
	}
	if tc.VerifyMembership(blk.Txs[2], 99, proof) {
		t.Error("unknown height accepted")
	}
}

func TestBasicQueryBaseline(t *testing.T) {
	_, qn, tc := cluster(t, 2, 5, 8)
	match := func(tx *types.Transaction) bool {
		return tx.Tname == "donate" && tx.Args[2].Float() < 10
	}
	txs, st, err := tc.BasicQuery(qn[0], match)
	if err != nil {
		t.Fatal(err)
	}
	if len(txs) != 10 {
		t.Errorf("basic query rows = %d", len(txs))
	}
	// The baseline ships every block; its VO size dwarfs ALI's.
	req := &node.AuthRequest{Table: "donate", Col: "amount",
		Lo: types.Dec(0), Hi: types.Dec(9)}
	_, aliStats, err := tc.AuthQuery(qn[0], qn[1:], req, thinclient.Options{M: 1})
	if err != nil {
		t.Fatal(err)
	}
	if aliStats.VOSize >= st.VOSize {
		t.Errorf("ALI VO (%d) not smaller than basic (%d)", aliStats.VOSize, st.VOSize)
	}
}

func TestAuthTrack(t *testing.T) {
	nodes, qn, tc := cluster(t, 4, 5, 8)
	for _, n := range nodes {
		if err := n.Engine.CreateAuthIndex("", "senid"); err != nil {
			t.Fatal(err)
		}
	}
	// One dimension: all of org1's transactions.
	txs, st, err := tc.AuthTrack(qn[0], qn[1:], "org1", "", 0, 0, thinclient.Options{M: 2})
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for seq := 0; seq < 40; seq++ {
		if seq%3 == 1 {
			want++
		}
	}
	if len(txs) != want {
		t.Errorf("one-dim track = %d, want %d", len(txs), want)
	}
	// Two dimensions: org1's donate transactions (all are donate here, so
	// filtering by a wrong operation empties the set).
	txs, _, err = tc.AuthTrack(qn[0], qn[1:], "org1", "donate", 0, 0, thinclient.Options{M: 2})
	if err != nil || len(txs) != want {
		t.Errorf("two-dim track = %d, %v", len(txs), err)
	}
	txs, _, err = tc.AuthTrack(qn[0], qn[1:], "org1", "transfer", 0, 0, thinclient.Options{M: 2})
	if err != nil || len(txs) != 0 {
		t.Errorf("mismatched operation = %d, %v", len(txs), err)
	}
	// With a window restricting to the first two data blocks.
	txs, _, err = tc.AuthTrack(qn[0], qn[1:], "org1", "", 1000, 3000, thinclient.Options{M: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, tx := range txs {
		if tx.Ts < 1000 || tx.Ts > 3000 {
			t.Errorf("windowed track leaked ts %d", tx.Ts)
		}
	}
	_ = st
}
