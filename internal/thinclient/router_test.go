package thinclient

import (
	"errors"
	"testing"

	"sebdb/internal/auth"
	"sebdb/internal/core"
	"sebdb/internal/node"
	"sebdb/internal/types"
)

// scriptNode is a QueryNode that records routed statements and can be
// told to fail them.
type scriptNode struct {
	id    string
	fail  bool
	calls []string
}

func (s *scriptNode) ID() string                                  { return s.id }
func (s *scriptNode) Height() (uint64, error)                     { return 0, nil }
func (s *scriptNode) BlockAt(uint64) (*types.Block, error)        { return nil, errors.New("n/a") }
func (s *scriptNode) Headers(uint64) ([]types.BlockHeader, error) { return nil, nil }
func (s *scriptNode) AuthQuery(*node.AuthRequest) (*auth.Answer, error) {
	return nil, errors.New("n/a")
}
func (s *scriptNode) AuthDigest(*node.AuthRequest) ([32]byte, error) {
	return [32]byte{}, errors.New("n/a")
}
func (s *scriptNode) SnapshotOffer() (*node.SnapshotOffer, error) { return nil, errors.New("n/a") }
func (s *scriptNode) SnapshotChunk(uint32) ([]byte, error)        { return nil, errors.New("n/a") }

func (s *scriptNode) SQL(query string) (*core.Result, error) {
	s.calls = append(s.calls, query)
	if s.fail {
		return nil, errors.New(s.id + " down")
	}
	return &core.Result{}, nil
}

func TestIsRead(t *testing.T) {
	reads := []string{
		`SELECT * FROM donate`,
		`select amount from donate`,
		`TRACE OPERATOR = "org1"`,
		`EXPLAIN SELECT * FROM donate`,
		`GET BLOCK 3`,
		`SHOW TRACES`,
		`  select 1`, // leading whitespace
	}
	writes := []string{
		`INSERT INTO donate VALUES ("a", "b", 1)`,
		`CREATE donate (donor string)`,
		``,
		`   `,
		`DROPTABLE donate`, // unrecognised verbs are treated as writes
	}
	for _, q := range reads {
		if !IsRead(q) {
			t.Errorf("IsRead(%q) = false, want true", q)
		}
	}
	for _, q := range writes {
		if IsRead(q) {
			t.Errorf("IsRead(%q) = true, want false", q)
		}
	}
}

func TestRouterRoundRobinReads(t *testing.T) {
	leader := &scriptNode{id: "leader"}
	r1, r2 := &scriptNode{id: "r1"}, &scriptNode{id: "r2"}
	rt := NewRouter(leader, r1, r2)
	for i := 0; i < 6; i++ {
		if _, err := rt.SQL(`SELECT * FROM donate`); err != nil {
			t.Fatal(err)
		}
	}
	if len(r1.calls) != 3 || len(r2.calls) != 3 {
		t.Errorf("round-robin split = %d/%d, want 3/3", len(r1.calls), len(r2.calls))
	}
	if len(leader.calls) != 0 {
		t.Errorf("leader served %d reads with a healthy fleet", len(leader.calls))
	}
}

func TestRouterWritesGoToLeader(t *testing.T) {
	leader := &scriptNode{id: "leader"}
	r1 := &scriptNode{id: "r1"}
	rt := NewRouter(leader, r1)
	stmts := []string{
		`INSERT INTO donate VALUES ("a", "b", 1)`,
		`CREATE idx (x string)`,
		`INSERT INTO donate VALUES ("c", "d", 2)`,
	}
	for _, q := range stmts {
		if _, err := rt.SQL(q); err != nil {
			t.Fatal(err)
		}
	}
	if len(leader.calls) != len(stmts) {
		t.Errorf("leader got %d writes, want %d", len(leader.calls), len(stmts))
	}
	if len(r1.calls) != 0 {
		t.Errorf("replica got %d writes, want 0", len(r1.calls))
	}
}

func TestRouterFallsBackToLeader(t *testing.T) {
	leader := &scriptNode{id: "leader"}
	r1 := &scriptNode{id: "r1", fail: true}
	r2 := &scriptNode{id: "r2", fail: true}
	rt := NewRouter(leader, r1, r2)
	if _, err := rt.SQL(`SELECT * FROM donate`); err != nil {
		t.Fatalf("read with dead fleet should fall back to the leader: %v", err)
	}
	if len(leader.calls) != 1 {
		t.Errorf("leader calls = %d, want 1 fallback", len(leader.calls))
	}
	// Both replicas were each tried once before the fallback.
	if len(r1.calls) != 1 || len(r2.calls) != 1 {
		t.Errorf("replica attempts = %d/%d, want 1/1", len(r1.calls), len(r2.calls))
	}

	// One healthy replica absorbs the read even when the other is down.
	r2.fail = false
	if _, err := rt.SQL(`SELECT * FROM donate`); err != nil {
		t.Fatal(err)
	}
	if len(leader.calls) != 1 {
		t.Errorf("leader calls = %d after healthy-replica read, want still 1", len(leader.calls))
	}
}

func TestRouterNoReplicasDegradesToLeader(t *testing.T) {
	leader := &scriptNode{id: "leader"}
	rt := NewRouter(leader)
	if _, err := rt.SQL(`SELECT * FROM donate`); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.SQL(`INSERT INTO donate VALUES ("a", "b", 1)`); err != nil {
		t.Fatal(err)
	}
	if len(leader.calls) != 2 {
		t.Errorf("leader calls = %d, want 2", len(leader.calls))
	}
}

func TestRouterAuthTargets(t *testing.T) {
	leader := &scriptNode{id: "leader"}
	r1, r2, r3 := &scriptNode{id: "r1"}, &scriptNode{id: "r2"}, &scriptNode{id: "r3"}
	rt := NewRouter(leader, r1, r2, r3)

	seen := map[string]bool{}
	for i := 0; i < 3; i++ {
		full, aux := rt.AuthTargets()
		seen[full.ID()] = true
		if full.ID() == "leader" {
			t.Error("phase one should come from a replica when the fleet is non-empty")
		}
		if len(aux) != 3 {
			t.Fatalf("aux set size = %d, want 3 (leader + other replicas)", len(aux))
		}
		if aux[0].ID() != "leader" {
			t.Errorf("aux[0] = %s, want the leader in every auxiliary set", aux[0].ID())
		}
		for _, a := range aux {
			if a.ID() == full.ID() {
				t.Errorf("phase-one node %s also in its own auxiliary set", full.ID())
			}
		}
	}
	if len(seen) != 3 {
		t.Errorf("phase-one rotation hit %d distinct replicas over 3 picks, want 3", len(seen))
	}

	// Empty fleet: the leader answers phase one, no auxiliaries added.
	full, aux := NewRouter(leader).AuthTargets()
	if full.ID() != "leader" || len(aux) != 0 {
		t.Errorf("empty fleet targets = %s/%d aux, want leader/0", full.ID(), len(aux))
	}
}
