// Package thinclient implements SEBDB's thin client (paper §VI): a
// participant that stores only block headers and verifies query answers
// from untrusted full nodes. Simple membership checks use Merkle proofs
// against the stored headers (SPV-style); rich queries use the 2-phase
// authenticated protocol — a VO from one full node, digests from n
// sampled auxiliary nodes, accepted once m identical digests match,
// with the residual risk given by Equation 6.
package thinclient

import (
	"errors"
	"fmt"
	"math/rand/v2"

	"sebdb/internal/auth"
	"sebdb/internal/merkle"
	"sebdb/internal/node"
	"sebdb/internal/obs"
	"sebdb/internal/types"
)

// Client is a header-only participant.
type Client struct {
	headers []types.BlockHeader
	rng     *rand.Rand
}

// New returns an empty thin client; seed fixes the auxiliary-node
// sampling for reproducible tests.
func New(seed int64) *Client {
	return &Client{rng: rand.New(rand.NewPCG(uint64(seed), 0))}
}

// Height returns the number of synced headers.
func (c *Client) Height() uint64 { return uint64(len(c.headers)) }

// Header returns the header at the given height.
func (c *Client) Header(h uint64) (types.BlockHeader, error) {
	if h >= uint64(len(c.headers)) {
		return types.BlockHeader{}, fmt.Errorf("thinclient: no header %d", h)
	}
	return c.headers[h], nil
}

// SyncHeaders pulls headers the client is missing from a full node,
// checking chain linkage as it appends — a header that does not extend
// the verified prefix is rejected.
func (c *Client) SyncHeaders(n node.QueryNode) error {
	hs, err := n.Headers(uint64(len(c.headers)))
	if err != nil {
		return err
	}
	for _, h := range hs {
		if len(c.headers) > 0 {
			tip := c.headers[len(c.headers)-1]
			if h.Height != tip.Height+1 || h.PrevHash != tip.Hash() {
				return fmt.Errorf("thinclient: header %d does not link", h.Height)
			}
		} else if h.Height != 0 {
			return fmt.Errorf("thinclient: first header has height %d", h.Height)
		}
		c.headers = append(c.headers, h)
	}
	return nil
}

// VerifyMembership checks a transaction's Merkle proof against the
// stored header of its block — the simple SPV-style authenticated query
// existing blockchains stop at.
func (c *Client) VerifyMembership(tx *types.Transaction, blockHeight uint64, proof merkle.Proof) bool {
	if blockHeight >= uint64(len(c.headers)) {
		return false
	}
	leaf := merkle.HashLeaf(tx.EncodeBytes())
	return merkle.Verify(leaf, proof, c.headers[blockHeight].TransRoot)
}

// Options tunes the 2-phase protocol's sampling.
type Options struct {
	// N is how many auxiliary nodes to ask; M how many identical digests
	// to require. Defaults: N = len(auxiliaries), M = majority.
	N, M int
	// ByzantineRatio p and MaxByzantine feed Equation 6 for the reported
	// residual risk.
	ByzantineRatio float64
	MaxByzantine   int
}

// Stats reports the verification-cost metrics of §VII-F.
type Stats struct {
	// VOSize is the phase-one answer size in bytes (Fig. 17).
	VOSize int
	// BlocksInAnswer is how many block VOs the answer carried.
	BlocksInAnswer int
	// AuxAsked and Identical describe the phase-two sample.
	AuxAsked  int
	Identical int
	// Theta is Equation 6's wrong-digest probability for the accepted
	// answer.
	Theta float64
}

// ErrNoQuorum is returned when fewer than M auxiliary digests match the
// reconstructed one.
var ErrNoQuorum = errors.New("thinclient: not enough matching auxiliary digests")

// AuthQuery runs the full 2-phase protocol: fetch a VO from full,
// reconstruct and locally verify it, then sample auxiliaries for
// digests until M identical matches confirm the snapshot. On success
// the returned transactions are sound and complete for [req.Lo,
// req.Hi] at the answer's snapshot height.
func (c *Client) AuthQuery(full node.QueryNode, auxiliaries []node.QueryNode,
	req *node.AuthRequest, opt Options) ([]*types.Transaction, Stats, error) {
	var st Stats
	if opt.N == 0 || opt.N > len(auxiliaries) {
		opt.N = len(auxiliaries)
	}
	if opt.M == 0 {
		opt.M = opt.N/2 + 1
	}
	if opt.MaxByzantine == 0 {
		opt.MaxByzantine = len(auxiliaries)
	}

	// Phase one.
	ans, err := full.AuthQuery(req)
	if err != nil {
		return nil, st, err
	}
	st.VOSize = ans.Size()
	st.BlocksInAnswer = len(ans.Blocks)
	mQueriesAuth.Inc()
	mVOBytesAuth.Add(uint64(st.VOSize))
	verifyStart := obs.Default.Now()
	digest, txs, err := auth.VerifyAnswer(ans, req.Lo, req.Hi)
	mVerifyMicros.Observe(obs.Default.Now() - verifyStart)
	if err != nil {
		return nil, st, err
	}

	// Phase two: same query and the answer's snapshot height to N
	// randomly selected auxiliary nodes.
	req2 := *req
	req2.Height = ans.Height
	order := c.rng.Perm(len(auxiliaries))[:opt.N]
	matching := 0
	for _, i := range order {
		st.AuxAsked++
		d, err := auxiliaries[i].AuthDigest(&req2)
		if err != nil {
			continue
		}
		if d == digest {
			matching++
			if matching >= opt.M {
				break
			}
		}
	}
	st.Identical = matching
	if matching < opt.M {
		return nil, st, fmt.Errorf("%w: %d of %d", ErrNoQuorum, matching, opt.M)
	}
	st.Theta = auth.WrongDigestProbability(opt.ByzantineRatio, opt.N, matching, opt.MaxByzantine)

	// Residual transaction-level window filter (block granularity was
	// applied server-side).
	if req.WinStart != 0 || req.WinEnd != 0 {
		filtered := txs[:0]
		for _, tx := range txs {
			if tx.Ts >= req.WinStart && (req.WinEnd == 0 || tx.Ts <= req.WinEnd) {
				filtered = append(filtered, tx)
			}
		}
		txs = filtered
	}
	return txs, st, nil
}

// BasicQuery is the baseline: fetch every block from the node, verify
// each against the stored headers, and filter matching transactions
// client-side. Stats carry the shipped bytes for Fig. 17's comparison.
func (c *Client) BasicQuery(n node.QueryNode, match func(*types.Transaction) bool) ([]*types.Transaction, Stats, error) {
	var st Stats
	height, err := n.Height()
	if err != nil {
		return nil, st, err
	}
	if height > uint64(len(c.headers)) {
		height = uint64(len(c.headers))
	}
	ans := &auth.BasicAnswer{Height: height}
	for h := uint64(0); h < height; h++ {
		b, err := n.BlockAt(h)
		if err != nil {
			return nil, st, err
		}
		ans.Blocks = append(ans.Blocks, b)
	}
	st.VOSize = ans.Size()
	st.BlocksInAnswer = len(ans.Blocks)
	mQueriesBasic.Inc()
	mVOBytesBasic.Add(uint64(st.VOSize))
	verifyStart := obs.Default.Now()
	txs, err := auth.BasicVerify(ans, c.headers, match)
	mVerifyMicros.Observe(obs.Default.Now() - verifyStart)
	return txs, st, err
}

// AuthTrack runs an authenticated track-trace query (paper §VI's
// Example 4 generalised to both dimensions): the operator dimension is
// answered through the ALI on SenID with full soundness and
// completeness; when an operation is also given, the client projects
// the verified result on Tname — a client-side filter over an already
// sound-and-complete set, so the final answer inherits both
// guarantees. The servers must maintain CreateAuthIndex("", "senid").
func (c *Client) AuthTrack(full node.QueryNode, auxiliaries []node.QueryNode,
	operator, operation string, winStart, winEnd int64, opt Options) ([]*types.Transaction, Stats, error) {
	req := &node.AuthRequest{
		Table: "", Col: "senid",
		Lo: types.Str(operator), Hi: types.Str(operator),
		WinStart: winStart, WinEnd: winEnd,
	}
	txs, st, err := c.AuthQuery(full, auxiliaries, req, opt)
	if err != nil {
		return nil, st, err
	}
	if operation == "" {
		return txs, st, nil
	}
	filtered := txs[:0]
	for _, tx := range txs {
		if tx.Tname == operation {
			filtered = append(filtered, tx)
		}
	}
	return filtered, st, nil
}
