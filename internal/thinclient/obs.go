package thinclient

import "sebdb/internal/obs"

// Thin-client metrics, reported to the default registry. VO bytes are
// the answer sizes the client shipped (Fig. 17's axis), split by
// protocol; verify time covers the client-side VO reconstruction.
var (
	mVOBytesAuth  = obs.Default.Counter(`sebdb_thinclient_vo_bytes_total{proto="auth"}`)
	mVOBytesBasic = obs.Default.Counter(`sebdb_thinclient_vo_bytes_total{proto="basic"}`)
	mQueriesAuth  = obs.Default.Counter(`sebdb_thinclient_queries_total{proto="auth"}`)
	mQueriesBasic = obs.Default.Counter(`sebdb_thinclient_queries_total{proto="basic"}`)
	mVerifyMicros = obs.Default.Histogram("sebdb_thinclient_verify_micros")
)
