package thinclient

import (
	"strings"
	"sync/atomic"

	"sebdb/internal/core"
	"sebdb/internal/node"
	"sebdb/internal/obs"
)

var (
	mRouteReplica  = obs.Default.Counter(`sebdb_router_statements_total{target="replica"}`)
	mRouteLeader   = obs.Default.Counter(`sebdb_router_statements_total{target="leader"}`)
	mRouteFallback = obs.Default.Counter("sebdb_router_fallbacks_total")
)

// Router fans statements across a read-replica fleet: read statements
// (SELECT/TRACE/EXPLAIN/GET BLOCK/SHOW TRACES) round-robin over the
// replicas with leader fallback when a replica errors; everything else —
// DDL, INSERT, anything unrecognised — goes to the leader, the only
// node that accepts writes. With no replicas configured it degrades to a
// plain leader connection.
//
// Replica answers are bounded-stale, not wrong: a follower serves from
// its own height-pinned view of the same verified chain, so a read may
// lag the leader by the replication lag but can never reflect
// unverified or forked state. Clients that need read-your-writes ask
// the leader directly.
type Router struct {
	leader   node.QueryNode
	replicas []node.QueryNode
	next     atomic.Uint64
}

// NewRouter builds a router over a leader and zero or more replicas.
func NewRouter(leader node.QueryNode, replicas ...node.QueryNode) *Router {
	return &Router{leader: leader, replicas: replicas}
}

// Leader returns the write target.
func (r *Router) Leader() node.QueryNode { return r.leader }

// Replicas returns the read fleet (possibly empty).
func (r *Router) Replicas() []node.QueryNode { return r.replicas }

// readVerbs are the statement-leading keywords the executor serves from
// a read view; everything else mutates chain or catalog state.
var readVerbs = map[string]bool{
	"select":  true,
	"trace":   true,
	"explain": true,
	"get":     true, // GET BLOCK
	"show":    true, // SHOW TRACES
}

// IsRead classifies a statement by its leading keyword, mirroring the
// parser's dispatch.
func IsRead(query string) bool {
	f := strings.Fields(query)
	if len(f) == 0 {
		return false
	}
	return readVerbs[strings.ToLower(f[0])]
}

// SQL routes one statement: reads fan over the replicas (each tried
// once, starting from the round-robin cursor) with the leader as final
// fallback; writes go straight to the leader.
func (r *Router) SQL(query string) (*core.Result, error) {
	if !IsRead(query) || len(r.replicas) == 0 {
		mRouteLeader.Inc()
		return r.leader.SQL(query)
	}
	start := int(r.next.Add(1) - 1)
	var lastErr error
	for i := range r.replicas {
		rep := r.replicas[(start+i)%len(r.replicas)]
		res, err := rep.SQL(query)
		if err == nil {
			mRouteReplica.Inc()
			return res, nil
		}
		lastErr = err
	}
	_ = lastErr // the leader answer (or its error) supersedes replica failures
	mRouteFallback.Inc()
	mRouteLeader.Inc()
	return r.leader.SQL(query)
}

// AuthTargets picks the full node for phase one of the 2-phase
// authenticated protocol (the next replica, or the leader when the
// fleet is empty) and the auxiliary set for phase two (every other
// node, leader included). Spreading phase one over replicas scales VO
// generation; keeping the leader among the auxiliaries means a lying
// replica cannot assemble a quorum alone.
func (r *Router) AuthTargets() (full node.QueryNode, aux []node.QueryNode) {
	if len(r.replicas) == 0 {
		return r.leader, nil
	}
	i := int(r.next.Add(1)-1) % len(r.replicas)
	full = r.replicas[i]
	aux = make([]node.QueryNode, 0, len(r.replicas))
	aux = append(aux, r.leader)
	for j, rep := range r.replicas {
		if j != i {
			aux = append(aux, rep)
		}
	}
	return full, aux
}
