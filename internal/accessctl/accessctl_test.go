package accessctl

import (
	"errors"
	"testing"
)

func TestDefaultIsOpen(t *testing.T) {
	c := New()
	if err := c.Check("anyone", "anytable", OpRead); err != nil {
		t.Errorf("public read denied: %v", err)
	}
	if err := c.Check("anyone", "anytable", OpWrite); err != nil {
		t.Errorf("public write denied: %v", err)
	}
	if ch := c.TableChannel("anytable"); ch != DefaultChannel {
		t.Errorf("TableChannel = %q", ch)
	}
}

func TestChannelMembership(t *testing.T) {
	c := New()
	if err := c.CreateChannel("health", "school1", "charity"); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateChannel("health"); err == nil {
		t.Error("duplicate channel accepted")
	}
	if err := c.CreateChannel(""); err == nil {
		t.Error("empty channel name accepted")
	}
	if err := c.AssignTable("doneeinfo", "health"); err != nil {
		t.Fatal(err)
	}
	if err := c.AssignTable("x", "ghost"); err == nil {
		t.Error("assignment to missing channel accepted")
	}

	// Members read and write; outsiders are denied.
	if err := c.Check("school1", "doneeinfo", OpRead); err != nil {
		t.Errorf("member read denied: %v", err)
	}
	if err := c.Check("CHARITY", "DoneeInfo", OpWrite); err != nil {
		t.Errorf("case-insensitive member write denied: %v", err)
	}
	err := c.Check("outsider", "doneeinfo", OpRead)
	if err == nil {
		t.Fatal("outsider read allowed")
	}
	var denied *ErrDenied
	if !errors.As(err, &denied) || denied.Sender != "outsider" || denied.Op != OpRead {
		t.Errorf("denial detail = %+v", err)
	}
	if denied.Error() == "" {
		t.Error("empty denial message")
	}

	// Membership changes take effect.
	if err := c.AddMember("health", "auditor"); err != nil {
		t.Fatal(err)
	}
	if err := c.Check("auditor", "doneeinfo", OpRead); err != nil {
		t.Errorf("new member denied: %v", err)
	}
	if err := c.RemoveMember("health", "auditor"); err != nil {
		t.Fatal(err)
	}
	if err := c.Check("auditor", "doneeinfo", OpRead); err == nil {
		t.Error("removed member still allowed")
	}
	if err := c.AddMember("ghost", "x"); err == nil {
		t.Error("AddMember on missing channel accepted")
	}
	if err := c.RemoveMember("ghost", "x"); err == nil {
		t.Error("RemoveMember on missing channel accepted")
	}
}

func TestWriterRestriction(t *testing.T) {
	c := New()
	c.CreateChannel("ledger", "org1", "org2", "auditor")
	c.AssignTable("transfer", "ledger")
	if err := c.RestrictWriters("ledger", "org1"); err != nil {
		t.Fatal(err)
	}
	if err := c.RestrictWriters("ghost", "x"); err == nil {
		t.Error("restriction on missing channel accepted")
	}
	// Readers unaffected; only org1 may write.
	if err := c.Check("auditor", "transfer", OpRead); err != nil {
		t.Errorf("reader denied: %v", err)
	}
	if err := c.Check("org1", "transfer", OpWrite); err != nil {
		t.Errorf("writer denied: %v", err)
	}
	if err := c.Check("org2", "transfer", OpWrite); err == nil {
		t.Error("non-writer member allowed to write")
	}
}

func TestChannelsListing(t *testing.T) {
	c := New()
	c.CreateChannel("a", "p1")
	c.CreateChannel("b", "p1", "p2")
	got := c.Channels("p1")
	if len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != DefaultChannel {
		t.Errorf("Channels(p1) = %v", got)
	}
	if got := c.Channels("p3"); len(got) != 1 || got[0] != DefaultChannel {
		t.Errorf("Channels(p3) = %v", got)
	}
}

func TestCheckAll(t *testing.T) {
	c := New()
	c.CreateChannel("priv", "insider")
	c.AssignTable("secret", "priv")
	if err := c.CheckAll("insider", []string{"open", "secret"}, OpRead); err != nil {
		t.Errorf("insider CheckAll: %v", err)
	}
	if err := c.CheckAll("outsider", []string{"open", "secret"}, OpRead); err == nil {
		t.Error("outsider CheckAll passed")
	}
}
