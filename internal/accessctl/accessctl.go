// Package accessctl implements the application layer's access control
// (paper §III-B): "The access control verifies request permission
// before execution, where a multi-channel method is adopted to protect
// users' privacy." Tables are assigned to channels; participants are
// members of channels; a request may only read or write tables of
// channels its sender belongs to. The default channel is open to every
// participant, so an engine without explicit configuration behaves as
// before.
package accessctl

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Op distinguishes reads from writes for permission purposes.
type Op int

const (
	// OpRead covers SELECT, TRACE, joins and GET BLOCK.
	OpRead Op = iota
	// OpWrite covers INSERT and CREATE.
	OpWrite
)

// String names the operation.
func (o Op) String() string {
	if o == OpWrite {
		return "write"
	}
	return "read"
}

// DefaultChannel is the channel tables belong to unless assigned
// elsewhere; every participant is implicitly a member.
const DefaultChannel = "public"

// Controller is the per-node access-control state. Like the schema
// catalog it is deterministic configuration replicated to all nodes of
// a channel (in a deployment it would itself ride in on-chain config
// transactions; the engine exposes hooks for that).
type Controller struct {
	mu sync.RWMutex
	// members maps channel -> set of participant ids.
	members map[string]map[string]bool
	// tables maps table name -> channel.
	tables map[string]string
	// writers maps channel -> set of participants allowed to write; an
	// absent entry means every member may write.
	writers map[string]map[string]bool
}

// New returns a controller where everything is public.
func New() *Controller {
	return &Controller{
		members: make(map[string]map[string]bool),
		tables:  make(map[string]string),
		writers: make(map[string]map[string]bool),
	}
}

// CreateChannel declares a channel with an initial member set.
func (c *Controller) CreateChannel(name string, members ...string) error {
	name = strings.ToLower(name)
	if name == "" {
		return fmt.Errorf("accessctl: empty channel name")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.members[name]; ok {
		return fmt.Errorf("accessctl: channel %q already exists", name)
	}
	set := make(map[string]bool, len(members))
	for _, m := range members {
		set[strings.ToLower(m)] = true
	}
	c.members[name] = set
	return nil
}

// AddMember joins a participant to a channel.
func (c *Controller) AddMember(channel, participant string) error {
	channel = strings.ToLower(channel)
	c.mu.Lock()
	defer c.mu.Unlock()
	set, ok := c.members[channel]
	if !ok {
		return fmt.Errorf("accessctl: no channel %q", channel)
	}
	set[strings.ToLower(participant)] = true
	return nil
}

// RemoveMember removes a participant from a channel.
func (c *Controller) RemoveMember(channel, participant string) error {
	channel = strings.ToLower(channel)
	c.mu.Lock()
	defer c.mu.Unlock()
	set, ok := c.members[channel]
	if !ok {
		return fmt.Errorf("accessctl: no channel %q", channel)
	}
	delete(set, strings.ToLower(participant))
	return nil
}

// AssignTable places a table in a channel; subsequent requests on the
// table are restricted to the channel's members.
func (c *Controller) AssignTable(table, channel string) error {
	table = strings.ToLower(table)
	channel = strings.ToLower(channel)
	c.mu.Lock()
	defer c.mu.Unlock()
	if channel != DefaultChannel {
		if _, ok := c.members[channel]; !ok {
			return fmt.Errorf("accessctl: no channel %q", channel)
		}
	}
	c.tables[table] = channel
	return nil
}

// RestrictWriters limits writes on a channel to the given participants
// (members may still read).
func (c *Controller) RestrictWriters(channel string, writers ...string) error {
	channel = strings.ToLower(channel)
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.members[channel]; !ok && channel != DefaultChannel {
		return fmt.Errorf("accessctl: no channel %q", channel)
	}
	set := make(map[string]bool, len(writers))
	for _, w := range writers {
		set[strings.ToLower(w)] = true
	}
	c.writers[channel] = set
	return nil
}

// TableChannel reports the channel a table belongs to.
func (c *Controller) TableChannel(table string) string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if ch, ok := c.tables[strings.ToLower(table)]; ok {
		return ch
	}
	return DefaultChannel
}

// Channels lists the participant's channels (always including the
// default channel), sorted.
func (c *Controller) Channels(participant string) []string {
	participant = strings.ToLower(participant)
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := []string{DefaultChannel}
	for ch, set := range c.members {
		if set[participant] {
			out = append(out, ch)
		}
	}
	sort.Strings(out)
	return out
}

// ErrDenied wraps every permission failure.
type ErrDenied struct {
	Sender string
	Table  string
	Op     Op
}

// Error renders the denial.
func (e *ErrDenied) Error() string {
	return fmt.Sprintf("accessctl: %s denied %s on table %q", e.Sender, e.Op, e.Table)
}

// Check verifies that sender may perform op on table. Unassigned
// tables live in the public channel, readable and writable by all.
func (c *Controller) Check(sender, table string, op Op) error {
	sender = strings.ToLower(sender)
	table = strings.ToLower(table)
	ch := c.TableChannel(table)
	c.mu.RLock()
	defer c.mu.RUnlock()
	if ch != DefaultChannel {
		set := c.members[ch]
		if set == nil || !set[sender] {
			return &ErrDenied{Sender: sender, Table: table, Op: op}
		}
	}
	if op == OpWrite {
		if w, ok := c.writers[ch]; ok && !w[sender] {
			return &ErrDenied{Sender: sender, Table: table, Op: op}
		}
	}
	return nil
}

// CheckAll verifies op on every table in the list.
func (c *Controller) CheckAll(sender string, tables []string, op Op) error {
	for _, t := range tables {
		if err := c.Check(sender, t, op); err != nil {
			return err
		}
	}
	return nil
}
