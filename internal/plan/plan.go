// Package plan implements SEBDB's access-path selection using the cost
// model of paper §IV-B (Equations 1-3): a full scan touches every block
// in the chain, the table-level bitmap index touches only the k blocks
// holding rows of the queried table, and the layered index performs one
// random access per resulting tuple. Which wins depends on the tuple
// distribution and predicate selectivity, so the planner compares the
// three estimated costs and picks the cheapest available path.
package plan

import (
	"sebdb/internal/exec"
)

// CostModel carries the device and layout parameters of Equations 1-3.
type CostModel struct {
	// TS is the average disk seek (block-access) time, t_S.
	TS float64
	// TT is the transfer time per disk block, t_T.
	TT float64
	// BlockBytes is f, the size of a packaged blockchain block.
	BlockBytes float64
	// DiskBlock is b, the size of a disk block.
	DiskBlock float64
}

// DefaultCostModel uses magnetic-disk-flavoured constants (4 ms seek,
// 0.1 ms per 4 KB transfer) and the paper's 4 MB chain blocks. Only the
// ratios matter for path selection.
func DefaultCostModel() CostModel {
	return CostModel{TS: 4.0, TT: 0.1, BlockBytes: 4 << 20, DiskBlock: 4 << 10}
}

// Scan is Equation 1: C = n*t_S + (f*n/b)*t_T for a chain of n blocks.
func (c CostModel) Scan(n int) float64 {
	return float64(n)*c.TS + c.BlockBytes*float64(n)/c.DiskBlock*c.TT
}

// Bitmap is Equation 2: the same shape over only the k <= n blocks the
// table-level bitmap flags.
func (c CostModel) Bitmap(k int) float64 {
	return float64(k)*c.TS + c.BlockBytes*float64(k)/c.DiskBlock*c.TT
}

// Layered is Equation 3: one seek and one transfer per resulting tuple
// (p random accesses through the second-level index).
func (c CostModel) Layered(p int) float64 {
	return float64(p)*c.TS + float64(p)*c.TT
}

// Choice is the planner's decision with its estimated costs, kept for
// EXPLAIN-style introspection and the cost-model ablation bench.
type Choice struct {
	Method exec.Method
	// CostScan, CostBitmap, CostLayered are the estimated costs of each
	// candidate; a negative value marks an unavailable path.
	CostScan    float64
	CostBitmap  float64
	CostLayered float64
}

// Choose picks the cheapest available access path given the chain
// height n, the bitmap block count k (negative when no bitmap index
// applies), and the estimated result size p (negative when no layered
// index applies).
func Choose(cm CostModel, n, k, p int) Choice {
	ch := Choice{Method: exec.MethodScan, CostScan: cm.Scan(n), CostBitmap: -1, CostLayered: -1}
	best := ch.CostScan
	if k >= 0 {
		ch.CostBitmap = cm.Bitmap(k)
		if ch.CostBitmap <= best {
			best = ch.CostBitmap
			ch.Method = exec.MethodBitmap
		}
	}
	if p >= 0 {
		ch.CostLayered = cm.Layered(p)
		if ch.CostLayered <= best {
			ch.Method = exec.MethodLayered
		}
	}
	return ch
}
