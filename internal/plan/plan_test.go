package plan

import (
	"testing"

	"sebdb/internal/exec"
)

func TestCostEquations(t *testing.T) {
	cm := CostModel{TS: 4, TT: 0.1, BlockBytes: 4 << 20, DiskBlock: 4 << 10}
	// Equation 1 with n=10: 10*4 + (4MB*10/4KB)*0.1 = 40 + 1024*10*0.1.
	want := 40 + 1024*10*0.1
	if got := cm.Scan(10); got != want {
		t.Errorf("Scan(10) = %g, want %g", got, want)
	}
	// Bitmap with k=n equals scan.
	if cm.Bitmap(10) != cm.Scan(10) {
		t.Error("bitmap with k=n must equal scan")
	}
	// Layered: p*(tS+tT).
	if got := cm.Layered(100); got != 100*4.1 {
		t.Errorf("Layered(100) = %g", got)
	}
}

func TestChoosePrefersCheapest(t *testing.T) {
	cm := DefaultCostModel()
	// Selective query: few results, layered wins.
	ch := Choose(cm, 1000, 500, 10)
	if ch.Method != exec.MethodLayered {
		t.Errorf("selective query chose %v", ch.Method)
	}
	// Huge result: random I/O loses, bitmap wins.
	ch = Choose(cm, 1000, 500, 10_000_000)
	if ch.Method != exec.MethodBitmap {
		t.Errorf("huge result chose %v", ch.Method)
	}
	// Table everywhere (k=n) and huge result: scan and bitmap tie; either
	// non-layered method is fine.
	ch = Choose(cm, 1000, 1000, 10_000_000)
	if ch.Method == exec.MethodLayered {
		t.Error("huge result should not choose layered")
	}
	// No indexes at all.
	ch = Choose(cm, 1000, -1, -1)
	if ch.Method != exec.MethodScan || ch.CostBitmap >= 0 || ch.CostLayered >= 0 {
		t.Errorf("no-index choice = %+v", ch)
	}
	// Only bitmap available.
	ch = Choose(cm, 1000, 3, -1)
	if ch.Method != exec.MethodBitmap {
		t.Errorf("bitmap-only choice = %v", ch.Method)
	}
}

func TestChooseCrossover(t *testing.T) {
	// The paper: "If the size of query result is large, using table-level
	// bitmap index may outperform layered index since random I/O is
	// slow." Find the crossover and check monotonicity around it.
	cm := DefaultCostModel()
	k := 100
	bitmapCost := cm.Bitmap(k)
	small, large := 10, 1_000_000
	if cm.Layered(small) >= bitmapCost {
		t.Error("small result should favour layered")
	}
	if cm.Layered(large) <= bitmapCost {
		t.Error("large result should favour bitmap")
	}
}
