package schema

import (
	"strings"
	"testing"

	"sebdb/internal/types"
)

func donate(t testing.TB) *Table {
	t.Helper()
	tbl, err := NewTable("Donate", []Column{
		{Name: "donor", Kind: types.KindString},
		{Name: "project", Kind: types.KindString},
		{Name: "amount", Kind: types.KindDecimal},
	})
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestNewTableNormalises(t *testing.T) {
	tbl := donate(t)
	if tbl.Name != "donate" {
		t.Errorf("name = %q", tbl.Name)
	}
	if tbl.Columns[0].Name != "donor" {
		t.Errorf("col0 = %q", tbl.Columns[0].Name)
	}
}

func TestNewTableRejections(t *testing.T) {
	cases := []struct {
		name string
		cols []Column
	}{
		{"", []Column{{"a", types.KindInt}}},
		{"_schema", []Column{{"a", types.KindInt}}},
		{"t", nil},
		{"t", []Column{{"", types.KindInt}}},
		{"t", []Column{{"a", types.KindInt}, {"A", types.KindString}}}, // dup, case-insensitive
		{"t", []Column{{"tid", types.KindInt}}},                        // shadows system column
		{"t", []Column{{"a", types.KindNull}}},
	}
	for _, c := range cases {
		if _, err := NewTable(c.name, c.cols); err == nil {
			t.Errorf("NewTable(%q, %v) should fail", c.name, c.cols)
		}
	}
}

func TestColumnLookup(t *testing.T) {
	tbl := donate(t)
	if i := tbl.ColumnIndex("AMOUNT"); i != 2 {
		t.Errorf("ColumnIndex = %d", i)
	}
	if i := tbl.ColumnIndex("nope"); i != -1 {
		t.Errorf("missing column index = %d", i)
	}
	k, sys, err := tbl.ColumnKind("senid")
	if err != nil || !sys || k != types.KindString {
		t.Errorf("senid kind = %v sys=%v err=%v", k, sys, err)
	}
	k, sys, err = tbl.ColumnKind("amount")
	if err != nil || sys || k != types.KindDecimal {
		t.Errorf("amount kind = %v sys=%v err=%v", k, sys, err)
	}
	if _, _, err = tbl.ColumnKind("ghost"); err == nil {
		t.Error("unknown column should error")
	}
	all := tbl.AllColumnNames()
	want := "tid ts senid tname donor project amount"
	if strings.Join(all, " ") != want {
		t.Errorf("AllColumnNames = %v", all)
	}
}

func TestValidateArgs(t *testing.T) {
	tbl := donate(t)
	out, err := tbl.ValidateArgs([]types.Value{types.Str("Jack"), types.Str("Edu"), types.Int(100)})
	if err != nil {
		t.Fatal(err)
	}
	if out[2].Kind != types.KindDecimal || out[2].F != 100 {
		t.Errorf("int not coerced to decimal: %v", out[2])
	}
	if _, err = tbl.ValidateArgs([]types.Value{types.Str("Jack")}); err == nil {
		t.Error("arity mismatch should fail")
	}
	if _, err = tbl.ValidateArgs([]types.Value{types.Bool(true), types.Str("x"), types.Dec(1)}); err == nil {
		t.Error("uncoercible value should fail")
	}
}

func TestTableValue(t *testing.T) {
	tbl := donate(t)
	tx := &types.Transaction{Tid: 7, Ts: 11, SenID: "org1", Tname: "donate",
		Args: []types.Value{types.Str("Jack"), types.Str("Edu"), types.Dec(100)}}
	if v, _ := tbl.Value(tx, "donor"); v != types.Str("Jack") {
		t.Errorf("donor = %v", v)
	}
	if v, _ := tbl.Value(tx, "TID"); v != types.Int(7) {
		t.Errorf("tid = %v", v)
	}
	if _, err := tbl.Value(tx, "ghost"); err == nil {
		t.Error("unknown column should error")
	}
}

func TestDDLRoundTrip(t *testing.T) {
	tbl := donate(t)
	got, err := DecodeDDL(tbl.EncodeDDL())
	if err != nil {
		t.Fatal(err)
	}
	if !sameTable(tbl, got) {
		t.Errorf("DDL round-trip mismatch: %+v", got)
	}
}

func TestDecodeDDLRejections(t *testing.T) {
	bad := [][]types.Value{
		nil,
		{types.Str("t")},                 // no columns
		{types.Str("t"), types.Str("a")}, // even length
		{types.Int(1), types.Str("a"), types.Int(1)},       // name not string
		{types.Str("t"), types.Int(1), types.Int(1)},       // col name not string
		{types.Str("t"), types.Str("a"), types.Str("int")}, // kind not int
		{types.Str("t"), types.Str("a"), types.Int(0)},     // null kind
	}
	for i, args := range bad {
		if _, err := DecodeDDL(args); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestCatalog(t *testing.T) {
	c := NewCatalog()
	tbl := donate(t)
	if err := c.Define(tbl); err != nil {
		t.Fatal(err)
	}
	if err := c.Define(tbl); err != nil {
		t.Errorf("idempotent redefine should pass: %v", err)
	}
	other, _ := NewTable("donate", []Column{{"x", types.KindInt}})
	if err := c.Define(other); err == nil {
		t.Error("conflicting redefine must fail")
	}
	got, err := c.Lookup("DONATE")
	if err != nil || got.Name != "donate" {
		t.Errorf("Lookup: %v, %v", got, err)
	}
	if _, err := c.Lookup("ghost"); err == nil {
		t.Error("missing table should error")
	}
	if !c.Has("donate") || c.Has("ghost") {
		t.Error("Has misbehaves")
	}
	if n := c.Names(); len(n) != 1 || n[0] != "donate" {
		t.Errorf("Names = %v", n)
	}
}

func TestCatalogApplyTx(t *testing.T) {
	c := NewCatalog()
	tbl := donate(t)
	ddl := &types.Transaction{Tname: MetaTable, Args: tbl.EncodeDDL()}
	if err := c.ApplyTx(ddl); err != nil {
		t.Fatal(err)
	}
	if !c.Has("donate") {
		t.Error("schema tx not applied")
	}
	// Non-schema txs are ignored.
	if err := c.ApplyTx(&types.Transaction{Tname: "donate"}); err != nil {
		t.Errorf("non-schema tx: %v", err)
	}
	// Malformed schema payload errors.
	if err := c.ApplyTx(&types.Transaction{Tname: MetaTable, Args: []types.Value{types.Int(1)}}); err == nil {
		t.Error("malformed schema tx should error")
	}
}
