package schema

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"sebdb/internal/types"
)

// Catalog is the node-local registry of table schemas. DDL reaches the
// catalog in two ways: locally via CreateTable before the schema
// transaction is packaged, and remotely via ApplyTx when a block
// containing a MetaTable transaction is replayed.
type Catalog struct {
	mu     sync.RWMutex
	tables map[string]*Table
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{tables: make(map[string]*Table)}
}

// Define registers a table. It fails if a different definition is
// already registered under the same name; re-registering an identical
// definition is a no-op (schema replay is idempotent).
func (c *Catalog) Define(t *Table) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if old, ok := c.tables[t.Name]; ok {
		if sameTable(old, t) {
			return nil
		}
		return fmt.Errorf("schema: table %q already exists with a different definition", t.Name)
	}
	c.tables[t.Name] = t
	return nil
}

func sameTable(a, b *Table) bool {
	if a.Name != b.Name || len(a.Columns) != len(b.Columns) {
		return false
	}
	for i := range a.Columns {
		if a.Columns[i] != b.Columns[i] {
			return false
		}
	}
	return true
}

// Lookup returns the table named name.
func (c *Catalog) Lookup(name string) (*Table, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.tables[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("schema: no such table %q", name)
	}
	return t, nil
}

// Has reports whether a table exists.
func (c *Catalog) Has(name string) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	_, ok := c.tables[strings.ToLower(name)]
	return ok
}

// Names lists the registered table names in sorted order.
func (c *Catalog) Names() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.tables))
	for n := range c.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// ApplyTx inspects a replayed transaction and, if it is a schema
// transaction, registers the table it defines. Non-schema transactions
// are ignored. This is how DDL synchronises across nodes (§IV-A: "The
// system sends a special transaction to synchronize schema").
func (c *Catalog) ApplyTx(tx *types.Transaction) error {
	if tx.Tname != MetaTable {
		return nil
	}
	t, err := DecodeDDL(tx.Args)
	if err != nil {
		return err
	}
	return c.Define(t)
}
