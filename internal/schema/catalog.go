package schema

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"sebdb/internal/types"
)

// Catalog is the node-local registry of table schemas. DDL reaches the
// catalog in two ways: locally via CreateTable before the schema
// transaction is packaged, and remotely via ApplyTx when a block
// containing a MetaTable transaction is replayed.
type Catalog struct {
	mu     sync.RWMutex
	tables map[string]*Table
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{tables: make(map[string]*Table)}
}

// Define registers a table. It fails if a different definition is
// already registered under the same name; re-registering an identical
// definition is a no-op (schema replay is idempotent).
func (c *Catalog) Define(t *Table) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if old, ok := c.tables[t.Name]; ok {
		if sameTable(old, t) {
			return nil
		}
		return fmt.Errorf("schema: table %q already exists with a different definition", t.Name)
	}
	c.tables[t.Name] = t
	return nil
}

func sameTable(a, b *Table) bool {
	if a.Name != b.Name || len(a.Columns) != len(b.Columns) {
		return false
	}
	for i := range a.Columns {
		if a.Columns[i] != b.Columns[i] {
			return false
		}
	}
	return true
}

// Undefine removes a table registration. It exists for one caller:
// CreateTable registers the table locally before the schema transaction
// is submitted, and must roll that registration back when the submit
// fails — otherwise the node's catalog diverges from the chain forever.
func (c *Catalog) Undefine(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.tables, strings.ToLower(name))
}

// Snapshot returns a point-in-time copy of the catalog's table map,
// keyed like the internal map. Tables are immutable once defined, so
// sharing the *Table pointers is safe; the map copy alone isolates the
// snapshot from later Define/Undefine calls.
func (c *Catalog) Snapshot() map[string]*Table {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make(map[string]*Table, len(c.tables))
	for n, t := range c.tables {
		out[n] = t
	}
	return out
}

// Lookup returns the table named name.
func (c *Catalog) Lookup(name string) (*Table, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.tables[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("schema: no such table %q", name)
	}
	return t, nil
}

// Has reports whether a table exists.
func (c *Catalog) Has(name string) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	_, ok := c.tables[strings.ToLower(name)]
	return ok
}

// Names lists the registered table names in sorted order.
func (c *Catalog) Names() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.tables))
	for n := range c.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// ApplyTx inspects a replayed transaction and, if it is a schema
// transaction, registers the table it defines. Non-schema transactions
// are ignored. This is how DDL synchronises across nodes (§IV-A: "The
// system sends a special transaction to synchronize schema").
func (c *Catalog) ApplyTx(tx *types.Transaction) error {
	if tx.Tname != MetaTable {
		return nil
	}
	t, err := DecodeDDL(tx.Args)
	if err != nil {
		return err
	}
	return c.Define(t)
}
