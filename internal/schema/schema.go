// Package schema implements SEBDB's relational layer over block data
// (paper §III-A): user-declared table schemas whose tuples are on-chain
// transactions, the catalog that tracks them, and the special schema
// transaction used to synchronise DDL among nodes.
package schema

import (
	"fmt"
	"strings"

	"sebdb/internal/types"
)

// Column is one application-level attribute of a table.
type Column struct {
	// Name is the lower-cased column name.
	Name string
	// Kind is the attribute type.
	Kind types.Kind
}

// Table describes one transaction type. The system-level columns (tid,
// ts, senid, tname) are implicit and precede the application columns in
// query results.
type Table struct {
	// Name is the lower-cased table name (the Tname of its transactions).
	Name string
	// Columns are the application-level attributes, in declaration order.
	Columns []Column
}

// MetaTable is the reserved transaction type that carries schema
// definitions on chain, so every node replays the same DDL.
const MetaTable = "_schema"

// Reserved reports whether a table name is reserved for system use.
func Reserved(name string) bool { return strings.HasPrefix(name, "_") }

// NewTable validates and normalises a table definition.
func NewTable(name string, cols []Column) (*Table, error) {
	name = strings.ToLower(strings.TrimSpace(name))
	if name == "" {
		return nil, fmt.Errorf("schema: empty table name")
	}
	if Reserved(name) {
		return nil, fmt.Errorf("schema: table name %q is reserved", name)
	}
	if len(cols) == 0 {
		return nil, fmt.Errorf("schema: table %q has no columns", name)
	}
	t := &Table{Name: name, Columns: make([]Column, len(cols))}
	seen := make(map[string]bool, len(cols)+len(types.SystemColumns))
	for _, s := range types.SystemColumns {
		seen[s] = true
	}
	for i, c := range cols {
		cn := strings.ToLower(strings.TrimSpace(c.Name))
		if cn == "" {
			return nil, fmt.Errorf("schema: table %q column %d has empty name", name, i)
		}
		if seen[cn] {
			return nil, fmt.Errorf("schema: table %q duplicates column %q", name, cn)
		}
		if c.Kind == types.KindNull {
			return nil, fmt.Errorf("schema: table %q column %q has no type", name, cn)
		}
		seen[cn] = true
		t.Columns[i] = Column{Name: cn, Kind: c.Kind}
	}
	return t, nil
}

// ColumnIndex returns the position of an application-level column, or
// -1 if the table has no such column.
func (t *Table) ColumnIndex(name string) int {
	name = strings.ToLower(name)
	for i, c := range t.Columns {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// ColumnKind resolves the kind of any column, system or application.
// The boolean reports whether the column is system-level.
func (t *Table) ColumnKind(name string) (types.Kind, bool, error) {
	name = strings.ToLower(name)
	if k, err := types.SystemColumnKind(name); err == nil {
		return k, true, nil
	}
	if i := t.ColumnIndex(name); i >= 0 {
		return t.Columns[i].Kind, false, nil
	}
	return types.KindNull, false, fmt.Errorf("schema: table %q has no column %q", t.Name, name)
}

// AllColumnNames lists system columns followed by application columns —
// the projection order of SELECT *.
func (t *Table) AllColumnNames() []string {
	out := make([]string, 0, len(types.SystemColumns)+len(t.Columns))
	out = append(out, types.SystemColumns...)
	for _, c := range t.Columns {
		out = append(out, c.Name)
	}
	return out
}

// ValidateArgs coerces the given values against the table's application
// columns, returning the normalised tuple.
func (t *Table) ValidateArgs(args []types.Value) ([]types.Value, error) {
	if len(args) != len(t.Columns) {
		return nil, fmt.Errorf("schema: table %q expects %d values, got %d",
			t.Name, len(t.Columns), len(args))
	}
	out := make([]types.Value, len(args))
	for i, v := range args {
		cv, err := types.Coerce(v, t.Columns[i].Kind)
		if err != nil {
			return nil, fmt.Errorf("schema: table %q column %q: %w", t.Name, t.Columns[i].Name, err)
		}
		out[i] = cv
	}
	return out, nil
}

// Value extracts a named column (system or application) from a
// transaction that belongs to this table.
func (t *Table) Value(tx *types.Transaction, name string) (types.Value, error) {
	name = strings.ToLower(name)
	if v, err := tx.SystemValue(name); err == nil {
		return v, nil
	}
	i := t.ColumnIndex(name)
	if i < 0 {
		return types.Null, fmt.Errorf("schema: table %q has no column %q", t.Name, name)
	}
	return tx.Column(i)
}

// EncodeDDL serialises the table definition as the Args payload of a
// MetaTable transaction: [name, col1, kind1, col2, kind2, ...].
func (t *Table) EncodeDDL() []types.Value {
	out := make([]types.Value, 0, 1+2*len(t.Columns))
	out = append(out, types.Str(t.Name))
	for _, c := range t.Columns {
		out = append(out, types.Str(c.Name), types.Int(int64(c.Kind)))
	}
	return out
}

// DecodeDDL parses a MetaTable transaction payload back into a table.
func DecodeDDL(args []types.Value) (*Table, error) {
	if len(args) < 3 || len(args)%2 != 1 {
		return nil, fmt.Errorf("schema: malformed DDL payload of %d values", len(args))
	}
	if args[0].Kind != types.KindString {
		return nil, fmt.Errorf("schema: DDL table name is %s, want string", args[0].Kind)
	}
	cols := make([]Column, 0, (len(args)-1)/2)
	for i := 1; i < len(args); i += 2 {
		if args[i].Kind != types.KindString || args[i+1].Kind != types.KindInt {
			return nil, fmt.Errorf("schema: malformed DDL column at %d", i)
		}
		cols = append(cols, Column{Name: args[i].S, Kind: types.Kind(args[i+1].I)})
	}
	return NewTable(args[0].S, cols)
}
