// Package lint implements sebdb-vet, the project's static-analysis
// suite. It enforces invariants the Go compiler cannot see — bounded
// wire decoding, no dropped errors, deterministic consensus code, lock
// discipline, and truncation-safe length casts — using only the
// standard library's go/ast, go/parser and go/types (the repository
// builds offline, so golang.org/x/tools is not available).
package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, parsed and type-checked package.
type Package struct {
	// Path is the import path ("sebdb/internal/types").
	Path string
	// Dir is the directory the package was loaded from.
	Dir string
	// Files holds the parsed non-test files, sorted by file name.
	Files []*ast.File
	// Fset positions all files of the load.
	Fset *token.FileSet
	// Info carries type-checker facts; it is always non-nil but may be
	// partial when type checking hit errors (e.g. an unresolvable
	// import). Analyzers must degrade gracefully on missing entries.
	Info *types.Info
	// Types is the checked package object (possibly incomplete).
	Types *types.Package
}

// Loader parses and type-checks the module's packages. Module-local
// imports are resolved recursively from source; standard-library
// imports go through go/importer's source importer, which reads GOROOT.
type Loader struct {
	Fset       *token.FileSet
	moduleRoot string
	modulePath string
	std        types.Importer
	pkgs       map[string]*Package // by import path; nil entry = in progress
}

// Root returns the loaded module's root directory.
func (l *Loader) Root() string { return l.moduleRoot }

// NewLoader returns a loader rooted at the module containing dir.
func NewLoader(dir string) (*Loader, error) {
	root, path, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:       fset,
		moduleRoot: root,
		modulePath: path,
		std:        importer.ForCompiler(fset, "source", nil),
		pkgs:       make(map[string]*Package),
	}, nil
}

// findModule walks up from dir to the enclosing go.mod and reads the
// module path from its first "module" directive.
func findModule(dir string) (root, path string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; d = filepath.Dir(d) {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module directive", d)
		}
		if filepath.Dir(d) == d {
			return "", "", fmt.Errorf("lint: no go.mod above %s", abs)
		}
	}
}

// LoadAll loads every package under the module root (the "./..."
// pattern), skipping testdata and hidden directories.
func (l *Loader) LoadAll() ([]*Package, error) {
	var paths []string
	err := filepath.WalkDir(l.moduleRoot, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != l.moduleRoot && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
			return filepath.SkipDir
		}
		ents, err := os.ReadDir(p)
		if err != nil {
			return err
		}
		for _, e := range ents {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
				rel, err := filepath.Rel(l.moduleRoot, p)
				if err != nil {
					return err
				}
				ip := l.modulePath
				if rel != "." {
					ip = l.modulePath + "/" + filepath.ToSlash(rel)
				}
				paths = append(paths, ip)
				break
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	var out []*Package
	for _, p := range paths {
		pkg, err := l.Load(p)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			out = append(out, pkg)
		}
	}
	return out, nil
}

// Load loads one module-local package by import path. It returns
// (nil, nil) for directories with no buildable non-test Go files.
func (l *Loader) Load(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	l.pkgs[path] = nil // mark in progress; import cycles resolve to nil
	dir := l.moduleRoot
	if path != l.modulePath {
		rest, ok := strings.CutPrefix(path, l.modulePath+"/")
		if !ok {
			return nil, fmt.Errorf("lint: %q is not under module %q", path, l.modulePath)
		}
		dir = filepath.Join(l.moduleRoot, filepath.FromSlash(rest))
	}
	files, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		l.pkgs[path] = nil
		return nil, nil
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{
		Importer:                 importerFunc(func(p string) (*types.Package, error) { return l.importPkg(p) }),
		Error:                    func(error) {}, // collect nothing; partial info is fine
		DisableUnusedImportCheck: true,
	}
	tpkg, _ := conf.Check(path, l.Fset, files, info) //sebdb:ignore-err type errors are tolerated by design; partial Info still feeds the analyzers
	pkg := &Package{
		Path:  path,
		Dir:   dir,
		Files: files,
		Fset:  l.Fset,
		Info:  info,
		Types: tpkg,
	}
	l.pkgs[path] = pkg
	return pkg, nil
}

// parseDir parses the non-test Go files of dir in name order.
func (l *Loader) parseDir(dir string) ([]*ast.File, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// importPkg resolves one import for the type checker.
func (l *Loader) importPkg(path string) (*types.Package, error) {
	if path == l.modulePath || strings.HasPrefix(path, l.modulePath+"/") {
		pkg, err := l.Load(path)
		if err != nil || pkg == nil || pkg.Types == nil {
			return nil, fmt.Errorf("lint: cannot import %q: %v", path, err)
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
