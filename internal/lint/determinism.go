package lint

import (
	"fmt"
	"go/ast"
	"strings"
)

// deterministicPrefixes lists the package subtrees whose behaviour must
// be a pure function of their inputs: consensus decides the one order
// every replica must reproduce, and merkle/mbtree digests must be
// recomputable byte-for-byte during replay and verification.
var deterministicPrefixes = []string{
	"sebdb/internal/consensus",
	"sebdb/internal/merkle",
	"sebdb/internal/mbtree",
}

// Determinism forbids ambient nondeterminism — time.Now and the
// globally seeded math/rand — inside consensus and digest code. Clocks
// and randomness must arrive through injected options so replicas and
// replay runs agree.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "consensus/merkle/mbtree code must not call time.Now or import math/rand; inject a clock/rng",
	Run:  runDeterminism,
}

func runDeterminism(pkg *Package) []Finding {
	covered := false
	for _, p := range deterministicPrefixes {
		if pkg.Path == p || strings.HasPrefix(pkg.Path, p+"/") {
			covered = true
			break
		}
	}
	if !covered {
		return nil
	}
	var out []Finding
	for _, f := range pkg.Files {
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if path == "math/rand" || path == "math/rand/v2" {
				out = append(out, Finding{
					Pos:      pkg.Fset.Position(imp.Pos()),
					Analyzer: "determinism",
					Message:  fmt.Sprintf("deterministic package imports %q; inject an rng seeded by the caller instead", path),
				})
			}
		}
		timeName, hasTime := importsPackage(f, "time")
		if !hasTime {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, isCall := n.(*ast.CallExpr)
			if !isCall {
				return true
			}
			sel, isSel := call.Fun.(*ast.SelectorExpr)
			if !isSel || sel.Sel.Name != "Now" {
				return true
			}
			id, isID := sel.X.(*ast.Ident)
			if !isID || id.Name != timeName {
				return true
			}
			// Confirm via type info when available: the object must come
			// from package time (not a local variable named "time").
			if path := pkgPathOf(pkg.Info, sel.Sel); path != "" && path != "time" {
				return true
			}
			out = append(out, Finding{
				Pos:      pkg.Fset.Position(call.Pos()),
				Analyzer: "determinism",
				Message:  "deterministic package calls time.Now; take the timestamp from an injected clock",
			})
			return true
		})
	}
	return out
}
