package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// DroppedErr forbids discarding error returns in non-test code: both
// the explicit `_ = f()` form and bare call statements (including defer
// and go) whose results include an error. The escape hatch is a
// `//sebdb:ignore-err <reason>` comment on (or directly above) the
// offending line.
var DroppedErr = &Analyzer{
	Name: "droppederr",
	Doc:  "error returns must be handled, not discarded (escape: //sebdb:ignore-err <reason>)",
	Run:  runDroppedErr,
}

// droppedErrExempt lists callees whose error result is documented to
// always be nil, so forcing handling would only add noise. Keys are
// "<pkg path>.<name>" for functions and "<type>.<method>" for methods,
// with any pointer star stripped from the receiver type.
var droppedErrExempt = map[string]bool{
	// fmt's Print family: terminal output, an error means stdout is gone.
	"fmt.Print": true, "fmt.Printf": true, "fmt.Println": true,
	"fmt.Fprint": true, "fmt.Fprintf": true, "fmt.Fprintln": true,
	// These writers never return a non-nil error per their docs.
	"bytes.Buffer.Write": true, "bytes.Buffer.WriteString": true,
	"bytes.Buffer.WriteByte": true, "bytes.Buffer.WriteRune": true,
	"strings.Builder.Write": true, "strings.Builder.WriteString": true,
	"strings.Builder.WriteByte": true, "strings.Builder.WriteRune": true,
	// hash.Hash.Write never returns an error (hash package docs).
	"hash.Hash.Write": true,
}

func runDroppedErr(pkg *Package) []Finding {
	var out []Finding
	report := func(n ast.Node, form string) {
		out = append(out, Finding{
			Pos:      pkg.Fset.Position(n.Pos()),
			Analyzer: "droppederr",
			Message:  fmt.Sprintf("%s discards an error result; handle it or annotate //sebdb:ignore-err <reason>", form),
		})
	}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.ExprStmt:
				if call, ok := s.X.(*ast.CallExpr); ok && dropsError(pkg.Info, call) {
					report(s, "call statement")
				}
			case *ast.DeferStmt:
				if dropsError(pkg.Info, s.Call) {
					report(s, "deferred call")
				}
			case *ast.GoStmt:
				if dropsError(pkg.Info, s.Call) {
					report(s, "go statement")
				}
			case *ast.AssignStmt:
				out = append(out, checkAssignDrops(pkg, s)...)
			}
			return true
		})
	}
	return out
}

// dropsError reports whether executing call as a statement discards an
// error result.
func dropsError(info *types.Info, call *ast.CallExpr) bool {
	hasErr, _, ok := returnsError(info, call)
	return ok && hasErr && !isExemptCallee(info, call)
}

// isExemptCallee matches the call against droppedErrExempt.
func isExemptCallee(info *types.Info, call *ast.CallExpr) bool {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return false
	}
	// Package-level function: pkg.Fn.
	if id, isID := sel.X.(*ast.Ident); isID {
		if path := pkgPathOf(info, sel.Sel); path != "" {
			_ = id
			if droppedErrExempt[path+"."+sel.Sel.Name] {
				return true
			}
		}
	}
	// Method: match the receiver's type string, ignoring pointerness so
	// both b.WriteByte and (&b).WriteByte resolve to the same key.
	if s, found := info.Selections[sel]; found && s.Recv() != nil {
		recv := strings.TrimPrefix(s.Recv().String(), "*")
		if droppedErrExempt[recv+"."+sel.Sel.Name] {
			return true
		}
	}
	return false
}

// checkAssignDrops flags assignments that send an error result to the
// blank identifier, in both the tuple form `v, _ := f()` and the
// parallel form `_ = f()`.
func checkAssignDrops(pkg *Package, s *ast.AssignStmt) []Finding {
	info := pkg.Info
	var out []Finding
	report := func() {
		out = append(out, Finding{
			Pos:      pkg.Fset.Position(s.Pos()),
			Analyzer: "droppederr",
			Message:  "error result assigned to _; handle it or annotate //sebdb:ignore-err <reason>",
		})
	}
	isBlank := func(e ast.Expr) bool {
		id, ok := e.(*ast.Ident)
		return ok && id.Name == "_"
	}
	if len(s.Rhs) == 1 && len(s.Lhs) > 1 {
		// v, _ := f() — map tuple positions to LHS.
		call, isCall := s.Rhs[0].(*ast.CallExpr)
		if !isCall || isExemptCallee(info, call) {
			return nil
		}
		tv, found := info.Types[call]
		if !found {
			return nil
		}
		tuple, isTuple := tv.Type.(*types.Tuple)
		if !isTuple || tuple.Len() != len(s.Lhs) {
			return nil
		}
		for i := 0; i < tuple.Len(); i++ {
			if isErrorType(tuple.At(i).Type()) && isBlank(s.Lhs[i]) {
				report()
				return out
			}
		}
		return nil
	}
	for i, lhs := range s.Lhs {
		if !isBlank(lhs) || i >= len(s.Rhs) {
			continue
		}
		call, isCall := s.Rhs[i].(*ast.CallExpr)
		if !isCall || isExemptCallee(info, call) {
			continue
		}
		if hasErr, results, ok := returnsError(info, call); ok && hasErr && results == 1 {
			report()
			return out
		}
	}
	return out
}
