// Package cg is the call-graph builder's fixture: method values,
// interface dispatch widening, closures and recursion, with leaf
// functions the tests use as reachability sinks.
package cg

// Ringer is dispatched through below; the builder widens Ring calls to
// every implementation in the module.
type Ringer interface {
	Ring()
}

// Bell implements Ringer on a pointer receiver.
type Bell struct{}

// Ring reaches clang.
func (b *Bell) Ring() { clang() }

// Horn implements Ringer on a value receiver.
type Horn struct{}

// Ring reaches honk.
func (h Horn) Ring() { honk() }

func clang() {}

func honk() {}

// Dispatch calls through the interface: widened to both Ring methods.
func Dispatch(r Ringer) { r.Ring() }

// MethodValue never calls Ring, but returns it as a value — the
// escaping reference still puts Bell.Ring on MethodValue's frontier.
func MethodValue(b *Bell) func() {
	return b.Ring
}

// Closure runs clang from a function literal; the literal's body is
// attributed to Closure itself.
func Closure() {
	run := func() { clang() }
	run()
}

// Loop recurses and calls Leaf on the way down.
func Loop(n int) int {
	if n == 0 {
		return 0
	}
	return Loop(n-1) + Leaf()
}

// Leaf terminates the recursion chain.
func Leaf() int { return 1 }

// Isolated calls nothing and nothing calls it.
func Isolated() {}
