package callgraph_test

import (
	"go/types"
	"path/filepath"
	"testing"

	"sebdb/internal/lint"
	"sebdb/internal/lint/callgraph"
)

// buildFixture loads the cg fixture module through the lint loader and
// builds its call graph.
func buildFixture(t *testing.T) *callgraph.Graph {
	t.Helper()
	loader, err := lint.NewLoader(filepath.Join("testdata", "src", "cg"))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) == 0 {
		t.Fatal("cg fixture loaded no packages")
	}
	cgPkgs := make([]*callgraph.Package, len(pkgs))
	for i, p := range pkgs {
		cgPkgs[i] = &callgraph.Package{Path: p.Path, Files: p.Files, Info: p.Info, Types: p.Types}
	}
	return callgraph.Build(loader.Fset, cgPkgs)
}

// fn finds a declared function by display name: "Name" for functions,
// "Recv.Name" for methods.
func fn(t *testing.T, g *callgraph.Graph, display string) *types.Func {
	t.Helper()
	for _, f := range g.Funcs() {
		name := f.Name()
		if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
			recv := sig.Recv().Type()
			if ptr, isPtr := recv.(*types.Pointer); isPtr {
				recv = ptr.Elem()
			}
			if named, isNamed := recv.(*types.Named); isNamed {
				name = named.Obj().Name() + "." + name
			}
		}
		if name == display {
			return f
		}
	}
	t.Fatalf("function %s not found in graph", display)
	return nil
}

// reachTo computes reachability with the named function as the sole sink.
func reachTo(t *testing.T, g *callgraph.Graph, sink string) *callgraph.Reach {
	t.Helper()
	target := fn(t, g, sink)
	return g.Reaches(func(f *types.Func) bool { return f == target })
}

func TestInterfaceDispatchWidens(t *testing.T) {
	g := buildFixture(t)
	dispatch := fn(t, g, "Dispatch")
	if r := reachTo(t, g, "clang"); !r.Reaches(dispatch) {
		t.Error("Dispatch does not reach clang through the widened Bell.Ring")
	}
	if r := reachTo(t, g, "honk"); !r.Reaches(dispatch) {
		t.Error("Dispatch does not reach honk through the widened Horn.Ring")
	}
}

func TestMethodValueEscapes(t *testing.T) {
	g := buildFixture(t)
	mv := fn(t, g, "MethodValue")
	if r := reachTo(t, g, "clang"); !r.Reaches(mv) {
		t.Error("escaping method value b.Ring did not add an edge from MethodValue")
	}
	if r := reachTo(t, g, "honk"); r.Reaches(mv) {
		t.Error("MethodValue reaches honk: method value widened too far")
	}
}

func TestClosureAttributedToEnclosing(t *testing.T) {
	g := buildFixture(t)
	if r := reachTo(t, g, "clang"); !r.Reaches(fn(t, g, "Closure")) {
		t.Error("closure body call to clang not attributed to Closure")
	}
}

func TestRecursionTerminatesAndReaches(t *testing.T) {
	g := buildFixture(t)
	loop := fn(t, g, "Loop")
	r := reachTo(t, g, "Leaf")
	if !r.Reaches(loop) {
		t.Error("Loop does not reach Leaf")
	}
	path := r.Path(loop)
	if len(path) != 2 || path[0] != loop || path[1] != fn(t, g, "Leaf") {
		t.Errorf("witness path Loop->Leaf has wrong shape: %v", path)
	}
}

func TestIsolatedFunctionReachesNothing(t *testing.T) {
	g := buildFixture(t)
	iso := fn(t, g, "Isolated")
	for _, sink := range []string{"clang", "honk", "Leaf"} {
		if r := reachTo(t, g, sink); r.Reaches(iso) {
			t.Errorf("Isolated spuriously reaches %s", sink)
		}
	}
	if len(g.Callees(iso)) != 0 {
		t.Errorf("Isolated has outgoing edges: %v", g.Callees(iso))
	}
}

func TestSinkIsItsOwnWitness(t *testing.T) {
	g := buildFixture(t)
	leaf := fn(t, g, "Leaf")
	r := reachTo(t, g, "Leaf")
	if !r.Reaches(leaf) {
		t.Error("a sink must report reaching itself")
	}
	if path := r.Path(leaf); len(path) != 1 || path[0] != leaf {
		t.Errorf("sink witness path should be [Leaf], got %v", path)
	}
}
