// Package callgraph builds a conservative static call graph over the
// type-checked packages of one module, for the interprocedural
// sebdb-vet analyzers (lockio, trusttaint). The graph is intentionally
// sound-leaning rather than precise:
//
//   - Direct calls and method calls are resolved through the type
//     checker (go/types Selections/Uses).
//   - Calls through an interface are widened to the matching method of
//     every in-module named type that implements the interface.
//   - Function literals have no node of their own: their bodies are
//     attributed to the enclosing declared function, so a closure built
//     and run inside a critical section counts as that section's code.
//   - A reference to a named function outside call position (a method
//     value, a handler registration) adds an edge from the referencing
//     function — the value may be invoked from there.
//   - Calls through plain function-typed variables whose target cannot
//     be resolved statically add no edge; the escaping-reference rule
//     above keeps the common patterns covered.
//
// Functions without a loaded body (standard library, interface
// methods) are terminal nodes; analyzers typically treat a curated
// subset of them as sinks.
package callgraph

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Package is the slice of a loaded, type-checked package the builder
// consumes. The lint loader's Package converts to it directly.
type Package struct {
	Path  string
	Files []*ast.File
	Info  *types.Info
	Types *types.Package
}

// Graph is the module's call graph.
type Graph struct {
	fset  *token.FileSet
	edges map[*types.Func][]*types.Func
	decls map[*types.Func]*ast.FuncDecl
	// order lists declared functions in load order, keeping BFS results
	// (witness-path choices in particular) deterministic across runs.
	order []*types.Func
	// named holds every non-interface named type declared in the module,
	// the candidate set for interface widening.
	named []*types.Named
	// widen memoises interface-method widening by interface method.
	widen map[*types.Func][]*types.Func
}

// Build constructs the graph over the given packages.
func Build(fset *token.FileSet, pkgs []*Package) *Graph {
	g := &Graph{
		fset:  fset,
		edges: make(map[*types.Func][]*types.Func),
		decls: make(map[*types.Func]*ast.FuncDecl),
		widen: make(map[*types.Func][]*types.Func),
	}
	for _, pkg := range pkgs {
		g.collectNamed(pkg)
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok || fn == nil {
					continue
				}
				g.decls[fn] = fd
				g.order = append(g.order, fn)
				g.addBodyEdges(pkg.Info, fn, fd.Body)
			}
		}
	}
	return g
}

// collectNamed records the package's named non-interface types.
func (g *Graph) collectNamed(pkg *Package) {
	if pkg.Types == nil {
		return
	}
	scope := pkg.Types.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		if _, isIface := named.Underlying().(*types.Interface); isIface {
			continue
		}
		g.named = append(g.named, named)
	}
}

// addBodyEdges walks one declared function's body (closures included)
// and records its outgoing edges.
func (g *Graph) addBodyEdges(info *types.Info, from *types.Func, body *ast.BlockStmt) {
	seen := make(map[*types.Func]bool, 8)
	add := func(to *types.Func) {
		if to == nil || to == from || seen[to] {
			return
		}
		seen[to] = true
		g.edges[from] = append(g.edges[from], to)
	}
	calls := make(map[ast.Expr]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			calls[n.Fun] = true
			for _, to := range g.CalleesAt(info, n) {
				add(to)
			}
		case *ast.Ident:
			// A function mentioned outside call position escapes: it may be
			// invoked by whatever it was handed to.
			if calls[ast.Expr(n)] {
				return true
			}
			if fn, ok := info.Uses[n].(*types.Func); ok {
				add(fn)
			}
		case *ast.SelectorExpr:
			if calls[ast.Expr(n)] {
				// The callee of a call already handled above; stop the
				// nested Ident from re-adding pkg-qualified names.
				calls[n.Sel] = true
			}
		}
		return true
	})
}

// CalleesAt resolves the possible static targets of one call: the
// type-checker's callee, widened over in-module implementations when
// the call goes through an interface. Unresolvable calls (plain
// function values, type conversions) yield nil.
func (g *Graph) CalleesAt(info *types.Info, call *ast.CallExpr) []*types.Func {
	fun := ast.Unparen(call.Fun)
	// Generic instantiations: f[T](...) / m[T1, T2](...).
	switch idx := fun.(type) {
	case *ast.IndexExpr:
		fun = idx.X
	case *ast.IndexListExpr:
		fun = idx.X
	}
	switch fun := fun.(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return []*types.Func{fn}
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok && sel.Kind() == types.MethodVal {
			fn, ok := sel.Obj().(*types.Func)
			if !ok {
				return nil
			}
			out := []*types.Func{fn}
			if iface, ok := sel.Recv().Underlying().(*types.Interface); ok {
				out = append(out, g.implementations(iface, fn)...)
			}
			return out
		}
		// Package-qualified function: pkg.F(...).
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return []*types.Func{fn}
		}
	}
	return nil
}

// implementations widens one interface method to the matching method of
// every in-module type implementing the interface.
func (g *Graph) implementations(iface *types.Interface, m *types.Func) []*types.Func {
	if out, ok := g.widen[m]; ok {
		return out
	}
	var out []*types.Func
	for _, named := range g.named {
		ptr := types.NewPointer(named)
		if !types.Implements(named, iface) && !types.Implements(ptr, iface) {
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(ptr, true, m.Pkg(), m.Name())
		if fn, ok := obj.(*types.Func); ok && fn != m {
			out = append(out, fn)
		}
	}
	g.widen[m] = out
	return out
}

// Decl returns the AST declaration of a module function, or nil for
// bodyless (imported / interface) functions.
func (g *Graph) Decl(fn *types.Func) *ast.FuncDecl { return g.decls[fn] }

// Funcs returns every declared module function in load order.
func (g *Graph) Funcs() []*types.Func {
	return append([]*types.Func(nil), g.order...)
}

// Callees returns fn's outgoing edges.
func (g *Graph) Callees(fn *types.Func) []*types.Func { return g.edges[fn] }

// Reach answers "does this function transitively reach a sink", with
// one witness path per function, for a fixed sink predicate.
type Reach struct {
	sink map[*types.Func]bool
	next map[*types.Func]*types.Func
}

// Reaches computes reachability to the functions matched by isSink via
// one reverse breadth-first pass, so per-function queries are O(1).
// Nodes are visited in declaration order (edge targets in call order),
// so witness paths are stable across runs.
func (g *Graph) Reaches(isSink func(*types.Func) bool) *Reach {
	// Reverse adjacency over every node mentioned in the graph.
	rev := make(map[*types.Func][]*types.Func, len(g.edges))
	var nodes []*types.Func
	seen := make(map[*types.Func]bool, len(g.edges))
	note := func(fn *types.Func) {
		if !seen[fn] {
			seen[fn] = true
			nodes = append(nodes, fn)
		}
	}
	for _, from := range g.order {
		note(from)
		for _, to := range g.edges[from] {
			note(to)
			rev[to] = append(rev[to], from)
		}
	}
	r := &Reach{sink: make(map[*types.Func]bool), next: make(map[*types.Func]*types.Func)}
	var queue []*types.Func
	for _, fn := range nodes {
		if isSink(fn) {
			r.sink[fn] = true
			queue = append(queue, fn)
		}
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, pred := range rev[cur] {
			if _, seen := r.next[pred]; seen || r.sink[pred] {
				continue
			}
			r.next[pred] = cur
			queue = append(queue, pred)
		}
	}
	return r
}

// Reaches reports whether fn is a sink or transitively calls one.
func (r *Reach) Reaches(fn *types.Func) bool {
	if r.sink[fn] {
		return true
	}
	_, ok := r.next[fn]
	return ok
}

// Path returns one witness call chain from fn to a sink (inclusive),
// or nil when fn reaches no sink.
func (r *Reach) Path(fn *types.Func) []*types.Func {
	if !r.Reaches(fn) {
		return nil
	}
	path := []*types.Func{fn}
	for cur := fn; !r.sink[cur]; {
		cur = r.next[cur]
		path = append(path, cur)
	}
	return path
}
