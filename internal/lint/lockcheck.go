package lint

import (
	"fmt"
	"go/ast"
)

// LockCheck enforces the repository's lock-grouping convention: in a
// struct, the fields declared in the same contiguous group as a
// `mu sync.Mutex` / `mu sync.RWMutex` field, below it, are guarded by
// that mutex (a blank line ends the guarded group). Every exported
// method on the struct that touches a guarded field must acquire the
// mutex somewhere in its body. This is a heuristic — it cannot prove
// the lock covers the access — but it catches the common regression of
// adding a fast-path accessor that forgets the lock entirely.
var LockCheck = &Analyzer{
	Name: "lockcheck",
	Doc:  "exported methods touching mu-guarded fields must acquire the mutex (escape: //sebdb:ignore-lock <reason>)",
	Run:  runLockCheck,
}

// guardedStruct records one struct's mutex-guarded field names.
type guardedStruct struct {
	name    string
	guarded map[string]bool
}

func runLockCheck(pkg *Package) []Finding {
	structs := make(map[string]*guardedStruct)
	for _, f := range pkg.Files {
		collectGuardedStructs(pkg, f, structs)
	}
	if len(structs) == 0 {
		return nil
	}
	var out []Finding
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, isFunc := decl.(*ast.FuncDecl)
			if !isFunc || fd.Recv == nil || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			recvName, typeName, ok := receiverOf(fd)
			if !ok {
				continue
			}
			gs, isGuarded := structs[typeName]
			if !isGuarded {
				continue
			}
			touched := touchedGuardedField(fd.Body, recvName, gs.guarded)
			if touched == "" || acquiresMutex(fd.Body, recvName) {
				continue
			}
			out = append(out, Finding{
				Pos:      pkg.Fset.Position(fd.Pos()),
				Analyzer: "lockcheck",
				Message: fmt.Sprintf("exported method %s.%s touches mu-guarded field %q without acquiring %s.mu",
					typeName, fd.Name.Name, touched, recvName),
			})
		}
	}
	return out
}

// collectGuardedStructs scans a file for structs with a mu mutex field
// and records the sibling fields in mu's contiguous declaration group.
func collectGuardedStructs(pkg *Package, f *ast.File, out map[string]*guardedStruct) {
	ast.Inspect(f, func(n ast.Node) bool {
		ts, isType := n.(*ast.TypeSpec)
		if !isType {
			return true
		}
		st, isStruct := ts.Type.(*ast.StructType)
		if !isStruct || st.Fields == nil {
			return true
		}
		muIdx := -1
		for i, field := range st.Fields.List {
			if !isMutexField(field) {
				continue
			}
			for _, name := range field.Names {
				if name.Name == "mu" {
					muIdx = i
				}
			}
		}
		if muIdx < 0 {
			return true
		}
		gs := &guardedStruct{name: ts.Name.Name, guarded: make(map[string]bool)}
		fields := st.Fields.List
		for i := muIdx + 1; i < len(fields); i++ {
			// A blank line between fields ends the guarded group; doc and
			// trailing comments stretch a field's extent.
			prevEnd := fields[i-1].End()
			if fields[i-1].Comment != nil && fields[i-1].Comment.End() > prevEnd {
				prevEnd = fields[i-1].Comment.End()
			}
			start := fields[i].Pos()
			if fields[i].Doc != nil {
				start = fields[i].Doc.Pos()
			}
			if pkg.Fset.Position(start).Line > pkg.Fset.Position(prevEnd).Line+1 {
				break
			}
			for _, name := range fields[i].Names {
				gs.guarded[name.Name] = true
			}
		}
		if len(gs.guarded) > 0 {
			out[gs.name] = gs
		}
		return true
	})
}

// isMutexField matches `mu sync.Mutex` and `mu sync.RWMutex`.
func isMutexField(field *ast.Field) bool {
	sel, isSel := field.Type.(*ast.SelectorExpr)
	if !isSel {
		return false
	}
	pkg, isID := sel.X.(*ast.Ident)
	return isID && pkg.Name == "sync" && (sel.Sel.Name == "Mutex" || sel.Sel.Name == "RWMutex")
}

// receiverOf extracts the receiver variable and base type name.
func receiverOf(fd *ast.FuncDecl) (recvName, typeName string, ok bool) {
	if len(fd.Recv.List) != 1 || len(fd.Recv.List[0].Names) != 1 {
		return "", "", false
	}
	recvName = fd.Recv.List[0].Names[0].Name
	t := fd.Recv.List[0].Type
	if star, isStar := t.(*ast.StarExpr); isStar {
		t = star.X
	}
	if gen, isGen := t.(*ast.IndexExpr); isGen { // generic receiver T[P]
		t = gen.X
	}
	id, isID := t.(*ast.Ident)
	if !isID {
		return "", "", false
	}
	return recvName, id.Name, true
}

// touchedGuardedField returns the first guarded field the body accesses
// through the receiver, or "".
func touchedGuardedField(body *ast.BlockStmt, recvName string, guarded map[string]bool) string {
	found := ""
	ast.Inspect(body, func(n ast.Node) bool {
		sel, isSel := n.(*ast.SelectorExpr)
		if !isSel {
			return true
		}
		id, isID := sel.X.(*ast.Ident)
		if isID && id.Name == recvName && guarded[sel.Sel.Name] {
			found = sel.Sel.Name
			return false
		}
		return true
	})
	return found
}

// acquiresMutex reports whether the body calls recv.mu.Lock or
// recv.mu.RLock anywhere.
func acquiresMutex(body *ast.BlockStmt, recvName string) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, isCall := n.(*ast.CallExpr)
		if !isCall {
			return true
		}
		sel, isSel := call.Fun.(*ast.SelectorExpr)
		if !isSel || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		inner, isInner := sel.X.(*ast.SelectorExpr)
		if !isInner || inner.Sel.Name != "mu" {
			return true
		}
		id, isID := inner.X.(*ast.Ident)
		if isID && id.Name == recvName {
			found = true
			return false
		}
		return true
	})
	return found
}
