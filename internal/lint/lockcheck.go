package lint

import (
	"fmt"
	"go/ast"
	"strings"
)

// LockCheck enforces the repository's lock-grouping convention: in a
// struct, the fields declared in the same contiguous group as a
// sync.Mutex / sync.RWMutex field named `mu` or ending in `Mu`
// (commitMu, ckptMu, ...), below it, are guarded by that mutex (a blank
// line or another mutex field ends the guarded group). Every exported
// method on the struct that touches a guarded field must acquire that
// specific mutex somewhere in its body. This is a heuristic — it cannot
// prove the lock covers the access — but it catches the common
// regression of adding a fast-path accessor that forgets the lock
// entirely.
var LockCheck = &Analyzer{
	Name: "lockcheck",
	Doc:  "exported methods touching mutex-guarded fields must acquire the guarding mutex (escape: //sebdb:ignore-lock <reason>)",
	Run:  runLockCheck,
}

// guardedStruct maps one struct's guarded field names to the name of
// the mutex field that guards each.
type guardedStruct struct {
	name    string
	guarded map[string]string
}

func runLockCheck(pkg *Package) []Finding {
	structs := make(map[string]*guardedStruct)
	for _, f := range pkg.Files {
		collectGuardedStructs(pkg, f, structs)
	}
	if len(structs) == 0 {
		return nil
	}
	var out []Finding
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, isFunc := decl.(*ast.FuncDecl)
			if !isFunc || fd.Recv == nil || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			recvName, typeName, byValue, ok := receiverOf(fd)
			if !ok {
				continue
			}
			gs, isGuarded := structs[typeName]
			if !isGuarded {
				continue
			}
			touched, guard := touchedGuardedField(fd.Body, recvName, gs.guarded)
			if touched == "" {
				continue
			}
			if byValue {
				// A value receiver copies the struct — including the mutex —
				// without holding the lock. Acquiring the copied mutex guards
				// nothing, so this is a violation whether or not the body
				// calls Lock.
				out = append(out, Finding{
					Pos:      pkg.Fset.Position(fd.Pos()),
					Analyzer: "lockcheck",
					Message: fmt.Sprintf("method %s.%s touches %s-guarded field %q through a value receiver — the receiver (and its mutex) is an unguarded copy; use a pointer receiver",
						typeName, fd.Name.Name, guard, touched),
				})
				continue
			}
			if acquiresMutex(fd.Body, recvName, guard) {
				continue
			}
			out = append(out, Finding{
				Pos:      pkg.Fset.Position(fd.Pos()),
				Analyzer: "lockcheck",
				Message: fmt.Sprintf("exported method %s.%s touches %s-guarded field %q without acquiring %s.%s",
					typeName, fd.Name.Name, guard, touched, recvName, guard),
			})
		}
	}
	return out
}

// collectGuardedStructs scans a file for structs with mutex fields and
// records, per mutex, the sibling fields in its contiguous declaration
// group. A struct may declare several guards (mu, commitMu, ckptMu);
// each guards only its own group.
func collectGuardedStructs(pkg *Package, f *ast.File, out map[string]*guardedStruct) {
	ast.Inspect(f, func(n ast.Node) bool {
		ts, isType := n.(*ast.TypeSpec)
		if !isType {
			return true
		}
		st, isStruct := ts.Type.(*ast.StructType)
		if !isStruct || st.Fields == nil {
			return true
		}
		gs := &guardedStruct{name: ts.Name.Name, guarded: make(map[string]string)}
		fields := st.Fields.List
		for muIdx, field := range fields {
			guard := mutexFieldName(field)
			if guard == "" {
				continue
			}
			for i := muIdx + 1; i < len(fields); i++ {
				// A blank line between fields ends the guarded group; doc and
				// trailing comments stretch a field's extent. A second mutex
				// ends it too — it starts its own group.
				prevEnd := fields[i-1].End()
				if fields[i-1].Comment != nil && fields[i-1].Comment.End() > prevEnd {
					prevEnd = fields[i-1].Comment.End()
				}
				start := fields[i].Pos()
				if fields[i].Doc != nil {
					start = fields[i].Doc.Pos()
				}
				if pkg.Fset.Position(start).Line > pkg.Fset.Position(prevEnd).Line+1 {
					break
				}
				if mutexFieldName(fields[i]) != "" {
					break
				}
				for _, name := range fields[i].Names {
					gs.guarded[name.Name] = guard
				}
			}
		}
		if len(gs.guarded) > 0 {
			out[gs.name] = gs
		}
		return true
	})
}

// mutexFieldName returns the field's name when it declares a guard —
// a `sync.Mutex` / `sync.RWMutex` named `mu` or ending in `Mu` — and
// "" otherwise.
func mutexFieldName(field *ast.Field) string {
	sel, isSel := field.Type.(*ast.SelectorExpr)
	if !isSel {
		return ""
	}
	pkg, isID := sel.X.(*ast.Ident)
	if !isID || pkg.Name != "sync" || (sel.Sel.Name != "Mutex" && sel.Sel.Name != "RWMutex") {
		return ""
	}
	for _, name := range field.Names {
		if name.Name == "mu" || strings.HasSuffix(name.Name, "Mu") {
			return name.Name
		}
	}
	return ""
}

// receiverOf extracts the receiver variable, base type name, and
// whether the method takes its receiver by value (a copy).
func receiverOf(fd *ast.FuncDecl) (recvName, typeName string, byValue, ok bool) {
	if len(fd.Recv.List) != 1 || len(fd.Recv.List[0].Names) != 1 {
		return "", "", false, false
	}
	recvName = fd.Recv.List[0].Names[0].Name
	t := fd.Recv.List[0].Type
	byValue = true
	if star, isStar := t.(*ast.StarExpr); isStar {
		t = star.X
		byValue = false
	}
	if gen, isGen := t.(*ast.IndexExpr); isGen { // generic receiver T[P]
		t = gen.X
	}
	id, isID := t.(*ast.Ident)
	if !isID {
		return "", "", false, false
	}
	return recvName, id.Name, byValue, true
}

// touchedGuardedField returns the first guarded field the body accesses
// through the receiver plus the mutex guarding it, or ("", "").
func touchedGuardedField(body *ast.BlockStmt, recvName string, guarded map[string]string) (field, guard string) {
	ast.Inspect(body, func(n ast.Node) bool {
		sel, isSel := n.(*ast.SelectorExpr)
		if !isSel {
			return true
		}
		id, isID := sel.X.(*ast.Ident)
		if isID && id.Name == recvName && guarded[sel.Sel.Name] != "" {
			field, guard = sel.Sel.Name, guarded[sel.Sel.Name]
			return false
		}
		return true
	})
	return field, guard
}

// acquiresMutex reports whether the body calls recv.<guard>.Lock or
// recv.<guard>.RLock anywhere, or — for the primary mutex "mu" — a
// conventional receiver-local lock helper (recv.lock() / recv.rlock(),
// the pattern contention-counting caches use to wrap mu.Lock).
func acquiresMutex(body *ast.BlockStmt, recvName, guard string) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, isCall := n.(*ast.CallExpr)
		if !isCall {
			return true
		}
		sel, isSel := call.Fun.(*ast.SelectorExpr)
		if !isSel {
			return true
		}
		if guard == "mu" && (sel.Sel.Name == "lock" || sel.Sel.Name == "rlock") {
			if id, isID := sel.X.(*ast.Ident); isID && id.Name == recvName {
				found = true
				return false
			}
		}
		if sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock" {
			return true
		}
		inner, isInner := sel.X.(*ast.SelectorExpr)
		if !isInner || inner.Sel.Name != guard {
			return true
		}
		id, isID := inner.X.(*ast.Ident)
		if isID && id.Name == recvName {
			found = true
			return false
		}
		return true
	})
	return found
}
