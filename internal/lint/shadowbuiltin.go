package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Shadowbuiltin rejects declarations that shadow a predeclared
// identifier: `const cap = 200_000`, `min := ...`, `type new struct`
// and the like. Inside the shadow's scope the builtin is silently
// gone, and code pasted into it — a `cap(s)` call, say — fails to
// compile or, worse, resolves to the shadow and does something else.
// The estimateLayered planner once capped its counting loop with a
// local `const cap`; this analyzer keeps that pattern from recurring.
//
// Scope: constants, variables (package-level, local and `:=` forms,
// including range variables), types, and plain functions. Function
// parameters, named results and struct fields are exempt — a
// parameter's shadow is visible in the signature, and fields never
// shadow anything.
var Shadowbuiltin = &Analyzer{
	Name: "shadowbuiltin",
	Doc:  "declarations must not shadow a predeclared identifier (escape: //sebdb:ignore-shadowbuiltin <why>)",
	Run:  runShadowBuiltin,
}

func runShadowBuiltin(pkg *Package) []Finding {
	var out []Finding
	report := func(id *ast.Ident, kind string) {
		if id == nil || id.Name == "_" || types.Universe.Lookup(id.Name) == nil {
			return
		}
		out = append(out, Finding{
			Pos:      pkg.Fset.Position(id.Pos()),
			Analyzer: "shadowbuiltin",
			Message:  fmt.Sprintf("%s %s shadows the predeclared identifier %q; rename it", kind, id.Name, id.Name),
		})
	}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch d := n.(type) {
			case *ast.FuncDecl:
				if d.Recv == nil {
					report(d.Name, "function")
				}
			case *ast.TypeSpec:
				report(d.Name, "type")
			case *ast.ValueSpec:
				for _, name := range d.Names {
					report(name, declKind(pkg, name))
				}
			case *ast.AssignStmt:
				if d.Tok == token.DEFINE {
					for _, lhs := range d.Lhs {
						if id, ok := lhs.(*ast.Ident); ok {
							report(id, "variable")
						}
					}
				}
			case *ast.RangeStmt:
				if d.Tok == token.DEFINE {
					if id, ok := d.Key.(*ast.Ident); ok {
						report(id, "variable")
					}
					if id, ok := d.Value.(*ast.Ident); ok {
						report(id, "variable")
					}
				}
			}
			return true
		})
	}
	return out
}

// declKind names a ValueSpec identifier's object class for the report.
func declKind(pkg *Package, id *ast.Ident) string {
	if _, ok := pkg.Info.Defs[id].(*types.Const); ok {
		return "constant"
	}
	return "variable"
}
