package lint

import (
	"fmt"
	"go/ast"
	"go/token"
)

// U32Trunc flags uint32(len(x)) / uint32(cap(x)) conversions with no
// visible truncation guard. SEBDB's wire format length-prefixes
// everything with uint32; on 64-bit hosts a >4 GiB slice silently
// truncates its prefix and desynchronises every decoder downstream.
// A conversion is considered guarded when the enclosing function
// compares the same len/cap expression (or the conversion itself)
// against a bound.
var U32Trunc = &Analyzer{
	Name: "u32trunc",
	Doc:  "uint32(len(x)) needs a truncation guard comparing len(x) against a bound (escape: //sebdb:ignore-u32 <reason>)",
	Run:  runU32Trunc,
}

func runU32Trunc(pkg *Package) []Finding {
	var out []Finding
	for _, f := range pkg.Files {
		funcBodies(f, func(fn ast.Node, body *ast.BlockStmt) {
			out = append(out, checkU32Func(pkg, body)...)
		})
	}
	return out
}

// lenCapArg returns the rendered argument of a len()/cap() call inside
// e ("" when e contains none).
func lenCapArg(pkg *Package, e ast.Expr) string {
	arg := ""
	ast.Inspect(e, func(n ast.Node) bool {
		call, isCall := n.(*ast.CallExpr)
		if !isCall {
			return true
		}
		id, isID := call.Fun.(*ast.Ident)
		if isID && (id.Name == "len" || id.Name == "cap") && len(call.Args) == 1 {
			arg = id.Name + "(" + exprText(pkg.Fset, call.Args[0]) + ")"
			return false
		}
		return true
	})
	return arg
}

func checkU32Func(pkg *Package, body *ast.BlockStmt) []Finding {
	// Collect every len/cap expression that appears under a comparison
	// operator anywhere in the function — those are the guards.
	guardedLens := make(map[string]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		bin, isBin := n.(*ast.BinaryExpr)
		if !isBin {
			return true
		}
		switch bin.Op {
		case token.LSS, token.GTR, token.LEQ, token.GEQ:
		default:
			return true
		}
		for _, side := range []ast.Expr{bin.X, bin.Y} {
			if arg := lenCapArg(pkg, side); arg != "" {
				guardedLens[arg] = true
			}
		}
		return true
	})

	var out []Finding
	ast.Inspect(body, func(n ast.Node) bool {
		call, isCall := n.(*ast.CallExpr)
		if !isCall || len(call.Args) != 1 {
			return true
		}
		id, isID := call.Fun.(*ast.Ident)
		if !isID || id.Name != "uint32" {
			return true
		}
		// Must be the builtin type, not a local shadow.
		if path := pkgPathOf(pkg.Info, id); path != "" {
			return true
		}
		arg := lenCapArg(pkg, call.Args[0])
		if arg == "" || guardedLens[arg] {
			return true
		}
		out = append(out, Finding{
			Pos:      pkg.Fset.Position(call.Pos()),
			Analyzer: "u32trunc",
			Message: fmt.Sprintf("uint32(%s) may truncate; guard %s against the wire limit first",
				arg, arg),
		})
		return true
	})
	return out
}
