package lint

import (
	"fmt"
	"go/ast"
	"strings"
)

// rawlogPrefixes lists the package subtrees whose diagnostics must go
// through the structured event logger (obs.Logger): the whole internal
// tree plus the two long-running binaries. The other commands
// (sebdb-cli's REPL, bchainbench's reports, sebdb-vet's findings) write
// human output to their streams by design and stay out of scope.
var rawlogPrefixes = []string{
	"sebdb/internal",
	"sebdb/cmd/sebdb-server",
	"sebdb/cmd/sebdb-thin",
}

// Rawlog forbids raw diagnostic output in the instrumented trees: no
// stdlib log package (log.Printf, log.Fatal, ...) and no fmt.Fprint*
// aimed at os.Stderr. Such prints bypass the structured event log —
// they carry no level, no component, no fields, and never reach the
// /debug/log ring — so operators lose them exactly when they matter.
// Wiring os.Stderr in as a logger sink is fine; printing to it is not.
var Rawlog = &Analyzer{
	Name: "rawlog",
	Doc:  "internal packages and the server binaries must log through obs.Logger, not stdlib log or fmt.Fprint*(os.Stderr, ...)",
	Run:  runRawlog,
}

func runRawlog(pkg *Package) []Finding {
	covered := false
	for _, p := range rawlogPrefixes {
		if pkg.Path == p || strings.HasPrefix(pkg.Path, p+"/") {
			covered = true
			break
		}
	}
	if !covered {
		return nil
	}
	var out []Finding
	for _, f := range pkg.Files {
		logName, hasLog := importsPackage(f, "log")
		fmtName, hasFmt := importsPackage(f, "fmt")
		if !hasLog && !hasFmt {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, isCall := n.(*ast.CallExpr)
			if !isCall {
				return true
			}
			sel, isSel := call.Fun.(*ast.SelectorExpr)
			if !isSel {
				return true
			}
			id, isID := sel.X.(*ast.Ident)
			if !isID {
				return true
			}
			// Any call into the stdlib log package: its package-level
			// logger writes straight to stderr.
			if hasLog && id.Name == logName {
				if path := pkgPathOf(pkg.Info, sel.Sel); path == "" || path == "log" {
					out = append(out, Finding{
						Pos:      pkg.Fset.Position(call.Pos()),
						Analyzer: "rawlog",
						Message:  fmt.Sprintf("raw log.%s call; emit a structured event through obs.Logger instead", sel.Sel.Name),
					})
				}
				return true
			}
			// fmt.Fprint/Fprintf/Fprintln with os.Stderr as the writer.
			if !hasFmt || id.Name != fmtName || !strings.HasPrefix(sel.Sel.Name, "Fprint") {
				return true
			}
			if path := pkgPathOf(pkg.Info, sel.Sel); path != "" && path != "fmt" {
				return true
			}
			if len(call.Args) == 0 {
				return true
			}
			w, isWSel := call.Args[0].(*ast.SelectorExpr)
			if !isWSel || w.Sel.Name != "Stderr" {
				return true
			}
			if path := pkgPathOf(pkg.Info, w.Sel); path != "" && path != "os" {
				return true
			}
			out = append(out, Finding{
				Pos:      pkg.Fset.Position(call.Pos()),
				Analyzer: "rawlog",
				Message:  fmt.Sprintf("fmt.%s to os.Stderr; emit a structured event through obs.Logger instead", sel.Sel.Name),
			})
			return true
		})
	}
	return out
}
