package lint

import (
	"fmt"
	"go/ast"
	"strings"
)

// atomicwritePrefixes lists the crash-tested subtrees. Their file I/O
// must route through the injected faultfs.FS so the fault-injection
// crash matrix intercepts every mutation — a direct os call is a
// mutation the harness can neither tear nor count, which silently
// shrinks the set of crash points the tests prove recovery from.
var atomicwritePrefixes = []string{
	"sebdb/internal/storage",
	"sebdb/internal/snapshot",
}

// osFSFuncs are the os entry points that touch the filesystem. Pure
// predicates (os.IsNotExist) and constants (os.O_CREATE, os.FileMode)
// stay fine — only calls that read or mutate the tree are flagged.
var osFSFuncs = map[string]bool{
	"Open": true, "OpenFile": true, "Create": true, "CreateTemp": true,
	"ReadFile": true, "WriteFile": true, "ReadDir": true,
	"Mkdir": true, "MkdirAll": true, "MkdirTemp": true,
	"Rename": true, "Remove": true, "RemoveAll": true,
	"Truncate": true, "Stat": true, "Lstat": true,
	"Chmod": true, "Chtimes": true, "Link": true, "Symlink": true,
}

// Atomicwrite enforces the crash-consistency discipline of the storage
// and snapshot packages: all file I/O goes through the injected
// faultfs.FS, and snapshot files are created under a temp path and
// renamed into place, never written directly under their published
// name (a crash mid-write must leave a torn temp file, not a torn
// checkpoint a later Open could half-trust). In storage the same
// staging rule applies to whole-file rewrites (OpenFile with
// O_CREATE|O_TRUNC, the recompression path): clobbering a published
// segment in place would turn a crash into data loss, so the only
// legal truncating creations target a tmp path that a later rename
// publishes.
var Atomicwrite = &Analyzer{
	Name: "atomicwrite",
	Doc:  "crash-tested packages must route file I/O through faultfs.FS; snapshot creations and storage rewrites must stage a tmp path and rename",
	Run:  runAtomicwrite,
}

func runAtomicwrite(pkg *Package) []Finding {
	covered := false
	for _, p := range atomicwritePrefixes {
		if pkg.Path == p || strings.HasPrefix(pkg.Path, p+"/") {
			covered = true
			break
		}
	}
	if !covered {
		return nil
	}
	inSnapshot := pkg.Path == "sebdb/internal/snapshot" ||
		strings.HasPrefix(pkg.Path, "sebdb/internal/snapshot/")
	inStorage := pkg.Path == "sebdb/internal/storage" ||
		strings.HasPrefix(pkg.Path, "sebdb/internal/storage/")
	var out []Finding
	for _, f := range pkg.Files {
		osName, hasOS := importsPackage(f, "os")
		ast.Inspect(f, func(n ast.Node) bool {
			call, isCall := n.(*ast.CallExpr)
			if !isCall {
				return true
			}
			sel, isSel := call.Fun.(*ast.SelectorExpr)
			if !isSel {
				return true
			}
			if hasOS {
				if id, isID := sel.X.(*ast.Ident); isID && id.Name == osName && osFSFuncs[sel.Sel.Name] {
					// Confirm via type info when available: the object must
					// come from package os, not a local named "os".
					if path := pkgPathOf(pkg.Info, sel.Sel); path == "" || path == "os" {
						out = append(out, Finding{
							Pos:      pkg.Fset.Position(call.Pos()),
							Analyzer: "atomicwrite",
							Message:  fmt.Sprintf("crash-tested package calls os.%s directly; route file I/O through the injected faultfs.FS", sel.Sel.Name),
						})
						return true
					}
				}
			}
			// In the snapshot subtree, any FS.OpenFile that creates a file
			// must target a staging path (its path expression mentions
			// "tmp") so the only published names are rename targets.
			if inSnapshot && sel.Sel.Name == "OpenFile" && len(call.Args) >= 2 &&
				mentionsFlag(call.Args[1], "O_CREATE") &&
				!strings.Contains(strings.ToLower(exprText(pkg.Fset, call.Args[0])), "tmp") {
				out = append(out, Finding{
					Pos:      pkg.Fset.Position(call.Pos()),
					Analyzer: "atomicwrite",
					Message:  "snapshot creates a file under its published name; write to a tmp path and rename into place",
				})
			}
			// In the storage subtree, creating opens of the active segment
			// (O_APPEND, no truncation) legitimately publish in place, but
			// a truncating creation is a whole-file rewrite — the
			// recompression path — and must stage a tmp path for rename.
			if inStorage && sel.Sel.Name == "OpenFile" && len(call.Args) >= 2 &&
				mentionsFlag(call.Args[1], "O_CREATE") && mentionsFlag(call.Args[1], "O_TRUNC") &&
				!strings.Contains(strings.ToLower(exprText(pkg.Fset, call.Args[0])), "tmp") {
				out = append(out, Finding{
					Pos:      pkg.Fset.Position(call.Pos()),
					Analyzer: "atomicwrite",
					Message:  "storage rewrites a file under its published name; stage the rewrite at a tmp path and rename into place",
				})
			}
			return true
		})
	}
	return out
}

// mentionsFlag reports whether the flags expression references the
// named open-flag constant (e.g. O_CREATE, O_TRUNC).
func mentionsFlag(e ast.Expr, name string) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, isID := n.(*ast.Ident); isID && id.Name == name {
			found = true
		}
		return !found
	})
	return found
}
