package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Finding is one reported invariant violation.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
}

// Analyzer is one invariant checker.
type Analyzer struct {
	// Name is the analyzer's identifier, used in reports and in
	// //sebdb:ignore-<name> directives.
	Name string
	// Doc is a one-line description of the enforced invariant.
	Doc string
	// Run reports the violations in one package.
	Run func(pkg *Package) []Finding
}

// Analyzers returns the full suite in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		Atomicwrite,
		DecodeBounds,
		DroppedErr,
		Determinism,
		LockCheck,
		Obsclock,
		U32Trunc,
	}
}

// directivePrefix introduces suppression comments:
// //sebdb:ignore-<name> <reason>. The reason is mandatory — a
// suppression nobody can justify is itself reported.
const directivePrefix = "//sebdb:ignore-"

// directiveAliases maps directive suffixes to analyzer names, so the
// documented //sebdb:ignore-err form reaches droppederr.
var directiveAliases = map[string]string{
	"atomic":       "atomicwrite",
	"atomicwrite":  "atomicwrite",
	"err":          "droppederr",
	"droppederr":   "droppederr",
	"decodebounds": "decodebounds",
	"determinism":  "determinism",
	"lock":         "lockcheck",
	"lockcheck":    "lockcheck",
	"obsclock":     "obsclock",
	"u32":          "u32trunc",
	"u32trunc":     "u32trunc",
}

// suppression records where one directive silences one analyzer.
type suppression struct {
	analyzer  string
	file      string
	line      int // directive's own line; also silences line+1
	from, to  int // optional declaration range (inclusive lines), 0 if none
	reasonOK  bool
	directive token.Position
}

// collectSuppressions gathers every directive in the package, attaching
// declaration ranges for doc comments.
func collectSuppressions(pkg *Package) []suppression {
	var out []suppression
	for _, f := range pkg.Files {
		// Map doc-comment positions to their declaration's line range so
		// a directive above a func/type suppresses the whole body.
		docRange := make(map[token.Pos][2]int)
		for _, decl := range f.Decls {
			var doc *ast.CommentGroup
			switch d := decl.(type) {
			case *ast.FuncDecl:
				doc = d.Doc
			case *ast.GenDecl:
				doc = d.Doc
			}
			if doc != nil {
				docRange[doc.Pos()] = [2]int{
					pkg.Fset.Position(decl.Pos()).Line,
					pkg.Fset.Position(decl.End()).Line,
				}
			}
		}
		for _, cg := range f.Comments {
			rng, isDoc := docRange[cg.Pos()]
			for _, c := range cg.List {
				name, reason, ok := parseDirective(c.Text)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				s := suppression{
					analyzer:  name,
					file:      pos.Filename,
					line:      pos.Line,
					reasonOK:  reason != "",
					directive: pos,
				}
				if isDoc {
					s.from, s.to = rng[0], rng[1]
				}
				out = append(out, s)
			}
		}
	}
	return out
}

// parseDirective splits a //sebdb:ignore-<name> <reason> comment.
func parseDirective(text string) (analyzer, reason string, ok bool) {
	rest, found := strings.CutPrefix(text, directivePrefix)
	if !found {
		return "", "", false
	}
	name, reason, _ := strings.Cut(rest, " ")
	canonical, known := directiveAliases[name]
	if !known {
		return "", "", false
	}
	return canonical, strings.TrimSpace(reason), true
}

// suppresses reports whether s silences a finding of the given analyzer
// at pos.
func (s suppression) suppresses(analyzer string, pos token.Position) bool {
	if s.analyzer != analyzer || s.file != pos.Filename {
		return false
	}
	if pos.Line == s.line || pos.Line == s.line+1 {
		return true
	}
	return s.from != 0 && pos.Line >= s.from && pos.Line <= s.to
}

// RunAll runs every analyzer over every package, applies suppression
// directives, and returns the surviving findings sorted by position.
// Directives without a reason are reported as findings themselves.
func RunAll(pkgs []*Package) []Finding {
	var out []Finding
	for _, pkg := range pkgs {
		sups := collectSuppressions(pkg)
		for _, s := range sups {
			if !s.reasonOK {
				out = append(out, Finding{
					Pos:      s.directive,
					Analyzer: s.analyzer,
					Message:  fmt.Sprintf("%s%s directive needs a reason", directivePrefix, s.analyzer),
				})
			}
		}
		for _, a := range Analyzers() {
			for _, f := range a.Run(pkg) {
				silenced := false
				for _, s := range sups {
					if s.reasonOK && s.suppresses(f.Analyzer, f.Pos) {
						silenced = true
						break
					}
				}
				if !silenced {
					out = append(out, f)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return out
}
