package lint

import (
	"fmt"
	"go/token"
	"go/types"
	"sort"

	"sebdb/internal/lint/callgraph"
)

// Finding is one reported invariant violation.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
}

// Analyzer is one invariant checker.
type Analyzer struct {
	// Name is the analyzer's identifier, used in reports and in
	// //sebdb:ignore-<name> directives.
	Name string
	// Doc is a one-line description of the enforced invariant.
	Doc string
	// Run reports the violations in one package. It is nil for the
	// interprocedural analyzers (lockio, trusttaint), which RunAll
	// drives off the shared module-wide call graph instead.
	Run func(pkg *Package) []Finding
}

// Analyzers returns the full suite in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		Atomicwrite,
		DecodeBounds,
		DroppedErr,
		Determinism,
		LockCheck,
		LockIO,
		Obsclock,
		Rawlog,
		ReadLock,
		Shadowbuiltin,
		TrustTaint,
		U32Trunc,
	}
}

// RunAll runs every analyzer over every package, applies suppression
// directives, and returns the surviving findings sorted by position.
// Directives without an accepted reason are reported as findings
// themselves. The interprocedural analyzers share one conservative
// call graph built over the whole module.
func RunAll(pkgs []*Package) []Finding {
	cgPkgs := make([]*callgraph.Package, len(pkgs))
	var fset *token.FileSet
	for i, p := range pkgs {
		cgPkgs[i] = &callgraph.Package{Path: p.Path, Files: p.Files, Info: p.Info, Types: p.Types}
		fset = p.Fset // the loader shares one FileSet across packages
	}
	graph := callgraph.Build(fset, cgPkgs)
	ioReach := graph.Reaches(func(fn *types.Func) bool { return matchSpec(lockIOSinks, fn) })
	taint := newTrustTaint(graph, pkgs)
	rlock := newReadLock(graph, pkgs)

	var out []Finding
	for _, pkg := range pkgs {
		sups := collectSuppressions(pkg)
		for _, s := range sups {
			if !s.reasonOK {
				msg := fmt.Sprintf("%s%s directive needs a reason", directivePrefix, s.analyzer)
				if reasonClauseRequired[s.analyzer] {
					msg = fmt.Sprintf("%s%s directive needs a `reason:` clause", directivePrefix, s.analyzer)
				}
				out = append(out, Finding{Pos: s.directive, Analyzer: s.analyzer, Message: msg})
			}
		}
		var found []Finding
		for _, a := range Analyzers() {
			if a.Run != nil {
				found = append(found, a.Run(pkg)...)
			}
		}
		found = append(found, runLockIO(pkg, graph, ioReach)...)
		found = append(found, taint.findings[pkg]...)
		found = append(found, rlock.findings[pkg]...)
		for _, f := range found {
			silenced := false
			for _, s := range sups {
				if s.reasonOK && s.suppresses(f.Analyzer, f.Pos) {
					silenced = true
					break
				}
			}
			if !silenced {
				out = append(out, f)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return out
}
