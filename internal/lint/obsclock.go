package lint

import (
	"fmt"
	"go/ast"
	"strings"
)

// obsclockPrefixes lists the instrumented package subtrees. Their
// timing must come from an injected clock.Source (obs.Registry.Now,
// engine Config.Clock, consensus Options.Now) so that EXPLAIN ANALYZE
// traces and latency histograms are reproducible under a test clock —
// a direct time.Now/time.Since call silently bypasses the injected
// source and splits a trace across two time bases.
var obsclockPrefixes = []string{
	"sebdb/internal/obs",
	"sebdb/internal/exec",
	"sebdb/internal/parallel",
	"sebdb/internal/storage",
	"sebdb/internal/cache",
	"sebdb/internal/core",
	"sebdb/internal/network",
	"sebdb/internal/thinclient",
	"sebdb/internal/replica",
}

// Obsclock forbids direct wall-clock reads (time.Now, time.Since) in
// the instrumented packages; timestamps must route through the
// injected clock.Source. Durations, tickers and timers (time.Duration,
// time.NewTicker, ...) remain fine — only the two ambient "what time
// is it" calls are flagged.
var Obsclock = &Analyzer{
	Name: "obsclock",
	Doc:  "instrumented packages must not call time.Now/time.Since; use the injected clock.Source",
	Run:  runObsclock,
}

func runObsclock(pkg *Package) []Finding {
	covered := false
	for _, p := range obsclockPrefixes {
		if pkg.Path == p || strings.HasPrefix(pkg.Path, p+"/") {
			covered = true
			break
		}
	}
	if !covered {
		return nil
	}
	var out []Finding
	for _, f := range pkg.Files {
		timeName, hasTime := importsPackage(f, "time")
		if !hasTime {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, isCall := n.(*ast.CallExpr)
			if !isCall {
				return true
			}
			sel, isSel := call.Fun.(*ast.SelectorExpr)
			if !isSel || (sel.Sel.Name != "Now" && sel.Sel.Name != "Since") {
				return true
			}
			id, isID := sel.X.(*ast.Ident)
			if !isID || id.Name != timeName {
				return true
			}
			// Confirm via type info when available: the object must come
			// from package time (not a local variable named "time").
			if path := pkgPathOf(pkg.Info, sel.Sel); path != "" && path != "time" {
				return true
			}
			out = append(out, Finding{
				Pos:      pkg.Fset.Position(call.Pos()),
				Analyzer: "obsclock",
				Message:  fmt.Sprintf("instrumented package calls time.%s; route timing through the injected clock.Source", sel.Sel.Name),
			})
			return true
		})
	}
	return out
}
