package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"

	"sebdb/internal/lint/callgraph"
)

// TrustTaint enforces the fast-sync trust model interprocedurally: no
// peer-derived value (bytes off the wire, decoded wire messages,
// snapshot chunks) may reach engine-state installation — checkpoint
// persist, catalog/contract registration, index/ALI appends, chain
// appends — without passing a verification sanitizer (signature check,
// block validation, Merkle/CRC comparison, checkpoint cross-check).
// This is the bug class the fast-sync hardening PR removed by hand
// (snapshot.Dir.Install of a peer checkpoint); the analyzer keeps it
// from coming back.
var TrustTaint = &Analyzer{
	Name: "trusttaint",
	Doc:  "peer-derived data must pass a verification sanitizer before reaching state installation (escape: //sebdb:ignore-trusttaint reason: <why>)",
	Run:  nil, // installed by RunAll via the shared call graph
}

// taintSources produce peer-controlled bytes.
var taintSources = []funcSpec{
	{"sebdb/internal/network", "Client", "Call"},
	{"sebdb/internal/network", "", "ReadFrame"},
	{"net", "Conn", "Read"},
}

// taintSanitizers are the verification chain: a value passed through
// one (argument or receiver) is considered verified, and taint does
// not propagate into a sanitizer's body.
var taintSanitizers = []funcSpec{
	{"sebdb/internal/types", "BlockHeader", "VerifySig"},
	{"sebdb/internal/types", "Block", "Validate"},
	{"sebdb/internal/types", "Block", "ValidateWorkers"},
	{"sebdb/internal/core", "Engine", "ApplyBlock"},
	{"sebdb/internal/network", "Applier", "ApplyBlock"},
	{"sebdb/internal/snapshot", "", "Diverges"},
	{"sebdb/internal/merkle", "", "Root"},
	{"hash/crc32", "", "ChecksumIEEE"},
}

// taintSinks install engine state.
var taintSinks = []funcSpec{
	{"sebdb/internal/snapshot", "Dir", "Write"},
	{"sebdb/internal/core", "Engine", "restoreCheckpoint"},
	{"sebdb/internal/core", "Engine", "CreateIndex"},
	{"sebdb/internal/core", "Engine", "CreateAuthIndex"},
	{"sebdb/internal/schema", "Catalog", "Define"},
	{"sebdb/internal/contract", "Registry", "Register"},
	{"sebdb/internal/storage", "Store", "Append"},
	{"sebdb/internal/storage", "Store", "AppendNoSync"},
	{"sebdb/internal/storage", "", "OpenWithMeta"},
	{"sebdb/internal/index/layered", "Index", "AppendBlock"},
	{"sebdb/internal/index/bitmap", "Table", "Mark"},
	{"sebdb/internal/auth", "ALI", "AppendBlock"},
}

// handlerRegistrars take a peer-facing handler function whose first
// parameter is a raw wire payload.
var handlerRegistrars = []funcSpec{
	{"sebdb/internal/network", "Server", "Handle"},
	{"sebdb/internal/network", "Server", "HandleStream"},
}

const sourceBit = uint64(1) // mask bit 0: derived from a root source

// maxSlots caps how many parameters a summary tracks (mask bits 1..63).
const maxSlots = 62

// taintSummary is one function's interprocedural taint behaviour.
type taintSummary struct {
	// retMask is the union taint of every return value, expressed in
	// the function's own slots: sourceBit when derived from a root
	// source, bit i+1 when derived from slot i.
	retMask uint64
	// concrete marks slots observed carrying source-derived data at
	// some call site; origin records one witness per slot.
	concrete []bool
	origin   []string
}

// trustTaint is the module-wide analysis state.
type trustTaint struct {
	graph     *callgraph.Graph
	pkgOf     map[*types.Func]*Package
	summaries map[*types.Func]*taintSummary
	findings  map[*Package][]Finding
}

// slotObjects returns the taint slots of a declared function: regular
// parameters first, then the receiver.
func slotObjects(info *types.Info, fd *ast.FuncDecl) []types.Object {
	var out []types.Object
	appendField := func(f *ast.Field) {
		for _, name := range f.Names {
			if obj := info.Defs[name]; obj != nil {
				out = append(out, obj)
			}
		}
	}
	if fd.Type.Params != nil {
		for _, f := range fd.Type.Params.List {
			appendField(f)
		}
	}
	if fd.Recv != nil {
		for _, f := range fd.Recv.List {
			appendField(f)
		}
	}
	if len(out) > maxSlots {
		out = out[:maxSlots]
	}
	return out
}

// newTrustTaint computes summaries to fixpoint, then propagates
// concrete taint from the root sources and collects sink findings.
func newTrustTaint(g *callgraph.Graph, pkgs []*Package) *trustTaint {
	tt := &trustTaint{
		graph:     g,
		pkgOf:     make(map[*types.Func]*Package),
		summaries: make(map[*types.Func]*taintSummary),
		findings:  make(map[*Package][]Finding),
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok && fn != nil {
					tt.pkgOf[fn] = pkg
					n := len(slotObjects(pkg.Info, fd))
					tt.summaries[fn] = &taintSummary{concrete: make([]bool, n), origin: make([]string, n)}
				}
			}
		}
	}

	// Iterate in the graph's load order so fixpoint tie-breaks (witness
	// origins in particular) are deterministic across runs.
	funcs := make([]*types.Func, 0, len(tt.summaries))
	for _, fn := range g.Funcs() {
		if _, ok := tt.summaries[fn]; ok {
			funcs = append(funcs, fn)
		}
	}

	// Phase A: symbolic return summaries to fixpoint.
	for changed := true; changed; {
		changed = false
		for _, fn := range funcs {
			env := tt.analyze(fn)
			if env == nil {
				continue
			}
			if ret := env.retMask; ret != tt.summaries[fn].retMask {
				tt.summaries[fn].retMask = ret
				changed = true
			}
		}
	}

	// Phase B: concrete taint roots — wire handlers registered with the
	// network server get a peer-controlled first parameter.
	for _, fn := range funcs {
		tt.markHandlerRegistrations(fn)
	}
	// Propagate concrete taint through call arguments to fixpoint.
	for changed := true; changed; {
		changed = false
		for _, fn := range funcs {
			if tt.propagate(fn) {
				changed = true
			}
		}
	}

	// Phase C: report sink calls with concretely tainted arguments.
	for _, fn := range funcs {
		tt.report(fn)
	}
	return tt
}

// taintEnv is the per-function flow-insensitive evaluation state.
type taintEnv struct {
	tt        *trustTaint
	fn        *types.Func
	pkg       *Package
	decl      *ast.FuncDecl
	slots     map[types.Object]int
	slotList  []types.Object
	masks     map[types.Object]uint64
	sanitized map[types.Object]bool
	retMask   uint64
}

// analyze evaluates fn's body, returning the stabilised environment
// (nil when the declaration is unavailable).
func (tt *trustTaint) analyze(fn *types.Func) *taintEnv {
	fd := tt.graph.Decl(fn)
	pkg := tt.pkgOf[fn]
	if fd == nil || pkg == nil {
		return nil
	}
	env := &taintEnv{
		tt:        tt,
		fn:        fn,
		pkg:       pkg,
		decl:      fd,
		slots:     make(map[types.Object]int),
		masks:     make(map[types.Object]uint64),
		sanitized: make(map[types.Object]bool),
	}
	env.slotList = slotObjects(pkg.Info, fd)
	for i, obj := range env.slotList {
		env.slots[obj] = i
	}
	// Sanitizer applications first: a value handed to the verification
	// chain anywhere in the function is treated as verified throughout
	// (flow-insensitive — removing the verification re-flags the flow).
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if env.calleeMatches(call, taintSanitizers) {
			for _, arg := range call.Args {
				if base := baseIdentObj(pkg.Info, arg); base != nil {
					env.sanitized[base] = true
				}
			}
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
				if base := baseIdentObj(pkg.Info, sel.X); base != nil {
					env.sanitized[base] = true
				}
			}
		}
		return true
	})
	// Assignment fixpoint.
	for changed := true; changed; {
		changed = false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for i, lhs := range n.Lhs {
					var rhsMask uint64
					if len(n.Rhs) == len(n.Lhs) {
						rhsMask = env.exprMask(n.Rhs[i])
					} else if len(n.Rhs) == 1 {
						rhsMask = env.exprMask(n.Rhs[0])
					}
					if env.taintObj(lhs, rhsMask) {
						changed = true
					}
				}
			case *ast.GenDecl:
				for _, spec := range n.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for i, name := range vs.Names {
						var rhsMask uint64
						if len(vs.Values) == len(vs.Names) {
							rhsMask = env.exprMask(vs.Values[i])
						} else if len(vs.Values) == 1 {
							rhsMask = env.exprMask(vs.Values[0])
						}
						if obj := env.pkg.Info.Defs[name]; obj != nil && rhsMask != 0 {
							if env.masks[obj]|rhsMask != env.masks[obj] {
								env.masks[obj] |= rhsMask
								changed = true
							}
						}
					}
				}
			case *ast.RangeStmt:
				m := env.exprMask(n.X)
				if m != 0 {
					if n.Key != nil && env.taintObj(n.Key, m) {
						changed = true
					}
					if n.Value != nil && env.taintObj(n.Value, m) {
						changed = true
					}
				}
			case *ast.ReturnStmt:
				var m uint64
				if len(n.Results) == 0 {
					// Naked return: union the named results.
					if env.decl.Type.Results != nil {
						for _, f := range env.decl.Type.Results.List {
							for _, name := range f.Names {
								if obj := env.pkg.Info.Defs[name]; obj != nil {
									m |= env.masks[obj]
								}
							}
						}
					}
				}
				for _, res := range n.Results {
					m |= env.exprMask(res)
				}
				if env.retMask|m != env.retMask {
					env.retMask |= m
					changed = true
				}
			}
			return true
		})
	}
	return env
}

// taintObj merges mask into the object behind one assignment target.
func (env *taintEnv) taintObj(lhs ast.Expr, mask uint64) bool {
	if mask == 0 {
		return false
	}
	obj := baseIdentObj(env.pkg.Info, lhs)
	if obj == nil {
		return false
	}
	if env.masks[obj]|mask == env.masks[obj] {
		return false
	}
	env.masks[obj] |= mask
	return true
}

// exprMask computes the taint mask of one expression in the
// function's own slots.
func (env *taintEnv) exprMask(e ast.Expr) uint64 {
	switch e := e.(type) {
	case *ast.Ident:
		obj := object(env.pkg.Info, e)
		if obj == nil || env.sanitized[obj] {
			return 0
		}
		m := env.masks[obj]
		if slot, ok := env.slots[obj]; ok {
			m |= uint64(1) << (slot + 1)
		}
		return m
	case *ast.SelectorExpr:
		// Field access or method value on a tainted base stays tainted;
		// package-qualified names are clean.
		if base := baseIdentObj(env.pkg.Info, e.X); base != nil {
			return env.exprMask(e.X)
		}
		return 0
	case *ast.IndexExpr:
		return env.exprMask(e.X) | env.exprMask(e.Index)
	case *ast.IndexListExpr:
		return env.exprMask(e.X)
	case *ast.SliceExpr:
		return env.exprMask(e.X)
	case *ast.StarExpr:
		return env.exprMask(e.X)
	case *ast.ParenExpr:
		return env.exprMask(e.X)
	case *ast.UnaryExpr:
		return env.exprMask(e.X)
	case *ast.BinaryExpr:
		return env.exprMask(e.X) | env.exprMask(e.Y)
	case *ast.TypeAssertExpr:
		return env.exprMask(e.X)
	case *ast.CompositeLit:
		var m uint64
		for _, elt := range e.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				m |= env.exprMask(kv.Value)
			} else {
				m |= env.exprMask(elt)
			}
		}
		return m
	case *ast.CallExpr:
		return env.callMask(e)
	case *ast.FuncLit:
		return 0
	default:
		return 0
	}
}

// callMask computes the taint of one call's results.
func (env *taintEnv) callMask(call *ast.CallExpr) uint64 {
	// Conversions carry their operand's taint.
	if tv, ok := env.pkg.Info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			return env.exprMask(call.Args[0])
		}
		return 0
	}
	callees := env.tt.graph.CalleesAt(env.pkg.Info, call)
	if env.calleeMatchesFns(callees, taintSources) {
		return sourceBit
	}
	if env.calleeMatchesFns(callees, taintSanitizers) {
		return 0
	}
	var recvMask uint64
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if s, isSel := env.pkg.Info.Selections[sel]; isSel && s.Kind() == types.MethodVal {
			recvMask = env.exprMask(sel.X)
		}
	}
	argUnion := recvMask
	for _, arg := range call.Args {
		argUnion |= env.exprMask(arg)
	}
	if len(callees) == 0 {
		// Builtins (append, copy, ...) and unresolved function values:
		// results carry the union of the inputs.
		return argUnion
	}
	var m uint64
	resolvedAny := false
	for _, callee := range callees {
		sum, isModule := env.tt.summaries[callee]
		if !isModule {
			continue
		}
		resolvedAny = true
		ret := sum.retMask
		if ret&sourceBit != 0 {
			m |= sourceBit
		}
		// Substitute callee slots with this call site's argument masks.
		calleeDecl := env.tt.graph.Decl(callee)
		calleePkg := env.tt.pkgOf[callee]
		if calleeDecl == nil || calleePkg == nil {
			continue
		}
		for i, argMask := range env.callSlotMasks(call, recvMask, calleeDecl, calleePkg) {
			if ret&(uint64(1)<<(i+1)) != 0 {
				m |= argMask
			}
		}
	}
	if !resolvedAny {
		// Imported function with no analysable body: conservative union.
		return argUnion
	}
	return m
}

// callSlotMasks maps one call site's arguments onto the callee's slot
// order (parameters first, then receiver). Variadic overflow arguments
// fold into the last parameter's slot.
func (env *taintEnv) callSlotMasks(call *ast.CallExpr, recvMask uint64, calleeDecl *ast.FuncDecl, calleePkg *Package) []uint64 {
	nParams := 0
	if calleeDecl.Type.Params != nil {
		for _, f := range calleeDecl.Type.Params.List {
			nParams += len(f.Names)
			if len(f.Names) == 0 {
				nParams++
			}
		}
	}
	slots := len(slotObjects(calleePkg.Info, calleeDecl))
	out := make([]uint64, slots)
	for i, arg := range call.Args {
		idx := i
		if idx >= nParams {
			idx = nParams - 1
		}
		if idx >= 0 && idx < slots {
			out[idx] |= env.exprMask(arg)
		}
	}
	if calleeDecl.Recv != nil && slots > 0 && slots == nParams+1 {
		out[slots-1] |= recvMask
	}
	return out
}

// calleeMatches reports whether a call resolves to one of the specs.
func (env *taintEnv) calleeMatches(call *ast.CallExpr, specs []funcSpec) bool {
	return env.calleeMatchesFns(env.tt.graph.CalleesAt(env.pkg.Info, call), specs)
}

func (env *taintEnv) calleeMatchesFns(callees []*types.Func, specs []funcSpec) bool {
	for _, fn := range callees {
		if matchSpec(specs, fn) {
			return true
		}
	}
	return false
}

// concrete reports whether a mask is source-derived under the
// function's currently known concrete slot taints.
func (tt *trustTaint) concreteMask(fn *types.Func, m uint64) bool {
	if m&sourceBit != 0 {
		return true
	}
	sum := tt.summaries[fn]
	for i := range sum.concrete {
		if sum.concrete[i] && m&(uint64(1)<<(i+1)) != 0 {
			return true
		}
	}
	return false
}

// markHandlerRegistrations roots concrete taint at wire handlers.
func (tt *trustTaint) markHandlerRegistrations(fn *types.Func) {
	fd := tt.graph.Decl(fn)
	pkg := tt.pkgOf[fn]
	if fd == nil || pkg == nil {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) < 2 {
			return true
		}
		matched := false
		for _, callee := range tt.graph.CalleesAt(pkg.Info, call) {
			if matchSpec(handlerRegistrars, callee) {
				matched = true
				break
			}
		}
		if !matched {
			return true
		}
		handler := handlerFunc(pkg.Info, call.Args[1])
		if handler == nil {
			return true
		}
		if sum, ok := tt.summaries[handler]; ok && len(sum.concrete) > 0 {
			if !sum.concrete[0] {
				sum.concrete[0] = true
				sum.origin[0] = fmt.Sprintf("registered as wire handler at %s", shortPos(pkg.Fset.Position(call.Pos())))
			}
		}
		return true
	})
}

// handlerFunc resolves the function a handler-registration argument
// refers to (a method value or a named function).
func handlerFunc(info *types.Info, e ast.Expr) *types.Func {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[e].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[e.Sel].(*types.Func)
		return fn
	}
	return nil
}

// propagate pushes fn's concrete taint into its callees' slots.
// Sanitizers are barriers: verified values enter them clean.
func (tt *trustTaint) propagate(fn *types.Func) bool {
	env := tt.analyze(fn)
	if env == nil {
		return false
	}
	changed := false
	ast.Inspect(env.decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callees := tt.graph.CalleesAt(env.pkg.Info, call)
		if env.calleeMatchesFns(callees, taintSanitizers) || env.calleeMatchesFns(callees, taintSources) {
			return true
		}
		var recvMask uint64
		if sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr); isSel {
			if s, isMethod := env.pkg.Info.Selections[sel]; isMethod && s.Kind() == types.MethodVal {
				recvMask = env.exprMask(sel.X)
			}
		}
		for _, callee := range callees {
			sum, isModule := tt.summaries[callee]
			calleeDecl := tt.graph.Decl(callee)
			calleePkg := tt.pkgOf[callee]
			if !isModule || calleeDecl == nil || calleePkg == nil {
				continue
			}
			for i, argMask := range env.callSlotMasks(call, recvMask, calleeDecl, calleePkg) {
				if i < len(sum.concrete) && !sum.concrete[i] && tt.concreteMask(fn, argMask) {
					sum.concrete[i] = true
					sum.origin[i] = fmt.Sprintf("peer-derived via %s at %s", fn.Name(), shortPos(env.pkg.Fset.Position(call.Pos())))
					changed = true
				}
			}
		}
		return true
	})
	return changed
}

// report flags sink calls whose arguments are concretely peer-derived
// and unsanitized.
func (tt *trustTaint) report(fn *types.Func) {
	env := tt.analyze(fn)
	if env == nil {
		return
	}
	ast.Inspect(env.decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		var sink *types.Func
		for _, callee := range tt.graph.CalleesAt(env.pkg.Info, call) {
			if matchSpec(taintSinks, callee) {
				sink = callee
				break
			}
		}
		if sink == nil {
			return true
		}
		for _, arg := range call.Args {
			m := env.exprMask(arg)
			if !tt.concreteMask(fn, m) {
				continue
			}
			origin := tt.witness(fn, m)
			tt.findings[env.pkg] = append(tt.findings[env.pkg], Finding{
				Pos:      env.pkg.Fset.Position(call.Pos()),
				Analyzer: "trusttaint",
				Message: fmt.Sprintf("%s installs peer-derived data via %s without a verification sanitizer (%s)",
					fn.Name(), funcDisplay(sink), origin),
			})
			break
		}
		return true
	})
}

// shortPos renders a position as base-filename:line, keeping messages
// independent of the checkout path.
func shortPos(p token.Position) string {
	return fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line)
}

// witness describes where the taint entered.
func (tt *trustTaint) witness(fn *types.Func, m uint64) string {
	if m&sourceBit != 0 {
		return "read off the wire in this function"
	}
	sum := tt.summaries[fn]
	for i := range sum.concrete {
		if sum.concrete[i] && m&(uint64(1)<<(i+1)) != 0 && sum.origin[i] != "" {
			return sum.origin[i]
		}
	}
	return "peer-derived"
}
