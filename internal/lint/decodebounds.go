package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// decoderPkgPath is the package whose Decoder produces attacker-
// controlled counts.
const decoderPkgPath = "sebdb/internal/types"

// DecodeBounds enforces the wire-decoding invariant: a count read from
// a types.Decoder (Uint32/Uint64) may only drive a loop bound or slice
// allocation after a Remaining() bounds check. Without the check, a
// corrupt or hostile frame carrying a huge count makes the decoder
// allocate gigabytes before the first element read fails (the classic
// unchecked-deserialization DoS the paper's verifiability story rules
// out).
var DecodeBounds = &Analyzer{
	Name: "decodebounds",
	Doc:  "decoder counts must pass a Remaining() check before sizing loops or allocations",
	Run:  runDecodeBounds,
}

func runDecodeBounds(pkg *Package) []Finding {
	var out []Finding
	for _, f := range pkg.Files {
		funcBodies(f, func(fn ast.Node, body *ast.BlockStmt) {
			out = append(out, checkDecodeBoundsFunc(pkg, body)...)
		})
	}
	return out
}

// isDecoderCountCall reports whether call reads a count from a
// types.Decoder: d.Uint32() or d.Uint64() with d of type
// *sebdb/internal/types.Decoder (or, when type information is missing,
// a receiver created by NewDecoder in the same function).
func isDecoderCountCall(pkg *Package, call *ast.CallExpr, decoderIdents map[types.Object]bool) bool {
	recv, name, ok := selectorCall(call)
	if !ok || (name != "Uint32" && name != "Uint64") {
		return false
	}
	if tv, found := pkg.Info.Types[recv]; found && tv.Type != nil {
		return isDecoderType(tv.Type)
	}
	// Degraded mode: receiver identifier previously assigned from
	// NewDecoder.
	if id, isID := recv.(*ast.Ident); isID {
		if o := object(pkg.Info, id); o != nil {
			return decoderIdents[o]
		}
	}
	return false
}

// isDecoderType matches *types.Decoder / types.Decoder from the wire
// package.
func isDecoderType(t types.Type) bool {
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Decoder" && obj.Pkg() != nil && obj.Pkg().Path() == decoderPkgPath
}

// checkDecodeBoundsFunc walks one function body in source order,
// tracking decoder count variables, the guards that sanctify them, and
// the loop bounds / allocations that consume them.
func checkDecodeBoundsFunc(pkg *Package, body *ast.BlockStmt) []Finding {
	info := pkg.Info
	var out []Finding

	// Pass 1: collect receivers of NewDecoder results for degraded-mode
	// matching, and every count variable with its birth position.
	decoderIdents := make(map[types.Object]bool)
	type countVar struct {
		obj     types.Object
		name    string
		born    token.Pos
		guarded token.Pos // earliest position after which uses are safe
	}
	var counts []*countVar
	ast.Inspect(body, func(n ast.Node) bool {
		assign, isAssign := n.(*ast.AssignStmt)
		if !isAssign || len(assign.Rhs) != 1 {
			return true
		}
		call, isCall := assign.Rhs[0].(*ast.CallExpr)
		if !isCall {
			return true
		}
		if _, name, ok := selectorCall(call); ok && name == "NewDecoder" {
			if id, isID := assign.Lhs[0].(*ast.Ident); isID {
				if o := object(info, id); o != nil {
					decoderIdents[o] = true
				}
			}
			return true
		}
		if !isDecoderCountCall(pkg, call, decoderIdents) {
			return true
		}
		if id, isID := assign.Lhs[0].(*ast.Ident); isID && id.Name != "_" {
			counts = append(counts, &countVar{
				obj:  object(info, id),
				name: id.Name,
				born: assign.Pos(),
			})
		}
		return true
	})
	if len(counts) == 0 {
		return nil
	}

	// Pass 2: find guards — any if-condition (or comparison) mentioning
	// both the count variable and a Remaining() call.
	ast.Inspect(body, func(n ast.Node) bool {
		ifStmt, isIf := n.(*ast.IfStmt)
		if !isIf {
			return true
		}
		mentionsRemaining := false
		ast.Inspect(ifStmt.Cond, func(m ast.Node) bool {
			if call, isCall := m.(*ast.CallExpr); isCall {
				if _, name, ok := selectorCall(call); ok && name == "Remaining" {
					mentionsRemaining = true
				}
			}
			return !mentionsRemaining
		})
		if !mentionsRemaining {
			return true
		}
		for _, cv := range counts {
			if ifStmt.Pos() > cv.born && containsIdentObj(info, ifStmt.Cond, cv.obj, cv.name) {
				if cv.guarded == token.NoPos || ifStmt.Pos() < cv.guarded {
					cv.guarded = ifStmt.Pos()
				}
			}
		}
		return true
	})

	// Pass 3: flag risky uses before the guard.
	flag := func(pos token.Pos, cv *countVar, what string) {
		out = append(out, Finding{
			Pos:      pkg.Fset.Position(pos),
			Analyzer: "decodebounds",
			Message: fmt.Sprintf("%s uses decoder count %q without a prior Remaining() bounds check",
				what, cv.name),
		})
	}
	safe := func(cv *countVar, use token.Pos) bool {
		return cv.guarded != token.NoPos && cv.guarded < use
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.CallExpr:
			if id, isID := s.Fun.(*ast.Ident); isID && id.Name == "make" && len(s.Args) >= 2 {
				for _, arg := range s.Args[1:] {
					for _, cv := range counts {
						if s.Pos() > cv.born && containsIdentObj(info, arg, cv.obj, cv.name) && !safe(cv, s.Pos()) {
							flag(s.Pos(), cv, "make")
						}
					}
				}
			}
		case *ast.ForStmt:
			if s.Cond == nil {
				return true
			}
			for _, cv := range counts {
				if s.Pos() > cv.born && containsIdentObj(info, s.Cond, cv.obj, cv.name) && !safe(cv, s.Pos()) {
					flag(s.Pos(), cv, "loop bound")
				}
			}
		}
		return true
	})
	return out
}
