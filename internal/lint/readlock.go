package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"

	"sebdb/internal/lint/callgraph"
)

// ReadLock enforces the height-pinned read-view contract
// interprocedurally: no function reachable from a query read entry
// point — SELECT, TRACE, JOIN, GET BLOCK, EXPLAIN planning, thin-client
// VO generation — may acquire the engine mutex (core.Engine.mu).
// Reads run against the published core.View precisely so they never
// contend with the commit pipeline; one e.mu acquisition smuggled into
// a helper shared with the write path silently reintroduces the
// contention the view removed, which no test notices until a profile
// does. The analyzer walks the call graph forward from the entry
// points and reports every engine-lock acquisition it can reach, with
// the witness call chain.
var ReadLock = &Analyzer{
	Name: "readlock",
	Doc:  "functions reachable from query read entry points must not acquire the engine mutex (escape: //sebdb:ignore-readlock reason: <why>)",
	Run:  nil, // installed by RunAll via the shared call graph
}

// readLockEntries are the read entry points the zero-engine-lock
// contract covers. EXPLAIN ANALYZE (execExplain/executeStmt) is
// deliberately absent: it re-executes the statement, and a traced
// INSERT legitimately reaches Submit and the commit pipeline.
var readLockEntries = []funcSpec{
	{"sebdb/internal/core", "Engine", "execSelect"},
	{"sebdb/internal/core", "Engine", "execTrace"},
	{"sebdb/internal/core", "Engine", "execJoin"},
	{"sebdb/internal/core", "Engine", "execGetBlock"},
	{"sebdb/internal/core", "Engine", "explainSelect"},
	{"sebdb/internal/node", "FullNode", "handleAuthQuery"},
	{"sebdb/internal/node", "FullNode", "handleAuthDigest"},
}

// isEngineType reports whether t (possibly behind a pointer) is the
// engine type whose mu field is the writer lock.
func isEngineType(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "sebdb/internal/core" && named.Obj().Name() == "Engine"
}

// readLock is the module-wide analysis state: findings per package,
// precomputed once by RunAll like trusttaint's.
type readLock struct {
	findings map[*Package][]Finding
}

// newReadLock runs the analysis: a forward BFS over the call graph
// from the entry points, then a scan of every reached body for
// engine-mutex acquisitions. Interface calls are widened to every
// in-module implementation by the graph, so routing a read through
// exec.Chain does not hide an engine-locking implementation.
func newReadLock(graph *callgraph.Graph, pkgs []*Package) *readLock {
	rl := &readLock{findings: make(map[*Package][]Finding)}

	pkgOf := make(map[*types.Func]*Package)
	for _, p := range pkgs {
		for _, f := range p.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok {
					continue
				}
				if fn, ok := p.Info.Defs[fd.Name].(*types.Func); ok {
					pkgOf[fn] = p
				}
			}
		}
	}

	// Forward BFS; entryOf doubles as the visited set, parent records
	// one witness edge per function. Seeding and expansion follow the
	// graph's load order, so witness paths are deterministic.
	entryOf := make(map[*types.Func]*types.Func)
	parent := make(map[*types.Func]*types.Func)
	var queue []*types.Func
	for _, fn := range graph.Funcs() {
		if matchSpec(readLockEntries, fn) {
			entryOf[fn] = fn
			queue = append(queue, fn)
		}
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		for _, callee := range graph.Callees(fn) {
			if _, seen := entryOf[callee]; seen {
				continue
			}
			entryOf[callee] = entryOf[fn]
			parent[callee] = fn
			queue = append(queue, callee)
		}
	}

	for _, fn := range graph.Funcs() {
		entry, reached := entryOf[fn]
		if !reached {
			continue
		}
		pkg, decl := pkgOf[fn], graph.Decl(fn)
		if pkg == nil || decl == nil || decl.Body == nil {
			continue
		}
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
				return true
			}
			inner, ok := sel.X.(*ast.SelectorExpr)
			if !ok || inner.Sel.Name != "mu" {
				return true
			}
			tv, ok := pkg.Info.Types[inner.X]
			if !ok || !isEngineType(tv.Type) {
				return true
			}
			rl.findings[pkg] = append(rl.findings[pkg], Finding{
				Pos:      pkg.Fset.Position(call.Pos()),
				Analyzer: "readlock",
				Message: fmt.Sprintf("%s acquires the engine lock (%s.%s) on the read path from %s: %s",
					funcDisplay(fn), exprText(pkg.Fset, sel.X), sel.Sel.Name,
					funcDisplay(entry), entryPath(parent, fn)),
			})
			return true
		})
	}
	return rl
}

// entryPath renders the witness call chain from the entry point down
// to fn.
func entryPath(parent map[*types.Func]*types.Func, fn *types.Func) string {
	var rev []*types.Func
	for f := fn; f != nil; f = parent[f] {
		rev = append(rev, f)
	}
	parts := make([]string, len(rev))
	for i, f := range rev {
		parts[len(rev)-1-i] = funcDisplay(f)
	}
	return strings.Join(parts, " -> ")
}
