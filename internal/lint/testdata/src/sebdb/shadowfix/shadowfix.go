// Package shadowfix seeds shadowbuiltin violations: declarations that
// shadow a predeclared identifier, plus the shapes the analyzer must
// leave alone (parameters, fields, non-colliding names).
package shadowfix

// estimate caps its counting loop with a local constant named after
// the builtin — the original sin this analyzer guards against.
func estimate(vals []int) int {
	const cap = 3 // want:shadowbuiltin
	total := 0
	for _, v := range vals {
		if v > 0 {
			total++
		}
		if total >= cap {
			break
		}
	}
	return total
}

// smallest shadows the predeclared min with a short variable
// declaration.
func smallest(a, b int) int {
	min := a // want:shadowbuiltin
	if b < a {
		min = b
	}
	return min
}

// new shadows the builtin allocator as a plain function.
func new() int { return 0 } // want:shadowbuiltin

// legacy pins the suppression path: the directive names a reason, so
// the shadow below survives the run unreported.
func legacy() int {
	//sebdb:ignore-shadowbuiltin retained to exercise the suppression path
	len := 1
	return len
}

// Fine shapes: a parameter named max (the shadow is visible in the
// signature), a field named cap, and non-colliding names.
func bounded(max int) int {
	if max < 1 {
		max = 1
	}
	return max
}

type ring struct {
	cap int
}

// Limit does not collide with anything predeclared.
const Limit = 10

func use() int {
	r := ring{cap: Limit}
	return bounded(r.cap) + estimate(nil) + smallest(1, 2) + new() + legacy()
}
