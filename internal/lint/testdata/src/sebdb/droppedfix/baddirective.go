package droppedfix

// BadDirective carries a suppression without a reason: the directive is
// reported and the call stays flagged. The lint tests match this file by
// name because a want comment here would become the directive's reason.
func BadDirective() {
	fail() //sebdb:ignore-err
}
