// Package droppedfix seeds droppederr violations in every discarded
// form, next to exempt and justified-suppression sites that must stay
// silent.
package droppedfix

import (
	"errors"
	"fmt"
	"strings"
)

func fail() error { return errors.New("boom") }

func failPair() (int, error) { return 0, errors.New("boom") }

// Bare drops the error of a call statement.
func Bare() {
	fail() // want:droppederr
}

// Deferred drops the error of a deferred call.
func Deferred() {
	defer fail() // want:droppederr
}

// Spawned drops the error of a go statement.
func Spawned() {
	go fail() // want:droppederr
}

// Blank sends a single error result to the blank identifier.
func Blank() {
	_ = fail() // want:droppederr
}

// TupleBlank blanks the error slot of a tuple return.
func TupleBlank() int {
	v, _ := failPair() // want:droppederr
	return v
}

// Quiet exercises the paths that must not be flagged: documented
// never-fail writers, fmt's print family, and a justified suppression.
func Quiet() string {
	var sb strings.Builder
	sb.WriteString("ok")
	fmt.Println("ok")
	fail() //sebdb:ignore-err fixture demonstrates a justified suppression
	return sb.String()
}

// Handled is the control: errors checked normally.
func Handled() error {
	if err := fail(); err != nil {
		return err
	}
	return nil
}
