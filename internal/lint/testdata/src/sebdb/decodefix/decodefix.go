// Package decodefix seeds decodebounds violations: wire counts sizing
// allocations and loops without a Remaining() check.
package decodefix

import (
	"errors"

	"sebdb/internal/types"
)

// BadDecode trusts the wire count outright.
func BadDecode(buf []byte) ([]uint64, error) {
	d := types.NewDecoder(buf)
	n, err := d.Uint32()
	if err != nil {
		return nil, err
	}
	out := make([]uint64, n)         // want:decodebounds
	for i := uint32(0); i < n; i++ { // want:decodebounds
		v, err := d.Uint64()
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// GoodDecode bounds the count against the unread bytes first.
func GoodDecode(buf []byte) ([]uint64, error) {
	d := types.NewDecoder(buf)
	n, err := d.Uint32()
	if err != nil {
		return nil, err
	}
	if int(n) > d.Remaining() {
		return nil, errors.New("decodefix: corrupt count")
	}
	out := make([]uint64, n)
	for i := uint32(0); i < n; i++ {
		v, err := d.Uint64()
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}
