module sebdb

go 1.22
