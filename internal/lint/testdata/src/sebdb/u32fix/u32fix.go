// Package u32fix seeds a u32trunc violation: a length cast feeding a
// wire prefix with no truncation guard.
package u32fix

// Bad truncates a >4 GiB length silently.
func Bad(b []byte) uint32 {
	return uint32(len(b)) // want:u32trunc
}

// Good compares the same length against a bound first.
func Good(b []byte) uint32 {
	if len(b) > 1<<20 {
		return 0
	}
	return uint32(len(b))
}
