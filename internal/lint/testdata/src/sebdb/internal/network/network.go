// Package network stubs the real network package's surface so the
// interprocedural fixtures resolve the same source/registrar specs
// (sebdb/internal/network.*) as the production tree.
package network

// Handler answers one request frame.
type Handler func(payload []byte) ([]byte, error)

// Client is the request/response client (trusttaint source: Call).
type Client struct{}

// Call sends one request and returns the peer's response bytes.
func (c *Client) Call(kind uint8, payload []byte) ([]byte, error) {
	return payload, nil
}

// Server dispatches inbound frames (trusttaint handler registrar).
type Server struct {
	handlers map[uint8]Handler
}

// Handle registers the handler for a frame kind; the handler's payload
// parameter is peer-controlled.
func (s *Server) Handle(kind uint8, h Handler) {
	if s.handlers == nil {
		s.handlers = make(map[uint8]Handler)
	}
	s.handlers[kind] = h
}
