// Package detfix seeds determinism violations inside the consensus
// subtree: ambient time and globally seeded randomness.
package detfix

import (
	"math/rand" // want:determinism
	"time"
)

// Stamp mixes the wall clock and the global rng into a decision every
// replica would have to reproduce.
func Stamp() int64 {
	return time.Now().UnixMicro() + int64(rand.Intn(10)) // want:determinism
}
