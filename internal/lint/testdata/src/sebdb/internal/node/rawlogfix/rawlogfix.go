// Package rawlogfix seeds rawlog violations inside an instrumented
// subtree: diagnostics printed past the structured event logger.
package rawlogfix

import (
	"fmt"
	"log"
	"os"
)

// Report writes diagnostics every way the analyzer must catch.
func Report(err error) {
	log.Printf("apply failed: %v", err)             // want:rawlog
	fmt.Fprintf(os.Stderr, "apply failed: %v", err) // want:rawlog
	fmt.Fprintln(os.Stderr, "giving up")            // want:rawlog
}

// Answer is fine: stdout is the program's answer channel, not a
// diagnostic stream.
func Answer(height uint64) {
	fmt.Printf("height %d\n", height)
	fmt.Fprintf(os.Stdout, "height %d\n", height)
}

//sebdb:ignore-rawlog crash handler of last resort; the logger may be the thing that failed
func lastResort(err error) {
	fmt.Fprintln(os.Stderr, "panic:", err)
}
