// Package trustfix seeds trusttaint violations: it reconstructs the
// removed fast-sync Dir.Install path, where a checkpoint fetched from a
// peer was decoded and installed into local state with no verification.
// The sanitized variants model the hardened flow and stay clean.
package trustfix

import (
	"errors"

	"sebdb/internal/network"
	"sebdb/internal/snapshot"
)

// Syncer models the fast-sync client side.
type Syncer struct {
	cli *network.Client
	dir *snapshot.Dir
}

// InstallUnverified is the removed bug: peer bytes flow through Decode
// straight into the checkpoint store, bypassing every sanitizer.
func (s *Syncer) InstallUnverified() error {
	payload, err := s.cli.Call(7, nil)
	if err != nil {
		return err
	}
	ck, err := snapshot.Decode(payload)
	if err != nil {
		return err
	}
	return s.dir.Write(ck) // want:trusttaint
}

// InstallVerified cross-checks the peer checkpoint against local state
// before installing it: the Diverges sanitizer clears the taint.
func (s *Syncer) InstallVerified(local *snapshot.Checkpoint) error {
	payload, err := s.cli.Call(7, nil)
	if err != nil {
		return err
	}
	ck, err := snapshot.Decode(payload)
	if err != nil {
		return err
	}
	if snapshot.Diverges(local, ck) {
		return errors.New("trustfix: peer checkpoint diverges")
	}
	return s.dir.Write(ck)
}

// Gate models the serving side: a handler registered with the network
// server receives a peer-controlled payload as its first parameter.
type Gate struct {
	dir *snapshot.Dir
}

// Register wires the handler; trusttaint roots concrete taint at the
// registration.
func (g *Gate) Register(srv *network.Server) {
	srv.Handle(8, g.handleChunk)
}

// handleChunk installs whatever the peer sent — the registration-rooted
// flavour of the same bug.
func (g *Gate) handleChunk(payload []byte) ([]byte, error) {
	ck, err := snapshot.Decode(payload)
	if err != nil {
		return nil, err
	}
	return nil, g.dir.Write(ck) // want:trusttaint
}

// handleLocal is never registered as a wire handler, so its parameter
// is trusted and the same body stays clean.
func (g *Gate) handleLocal(payload []byte) ([]byte, error) {
	ck, err := snapshot.Decode(payload)
	if err != nil {
		return nil, err
	}
	return nil, g.dir.Write(ck)
}
