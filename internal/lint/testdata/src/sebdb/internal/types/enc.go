// Package types is a stub of the real wire package — just enough
// surface for the analyzers' type checks to resolve Decoder counts.
package types

// Decoder mimics the wire decoder's count-producing API.
type Decoder struct{ buf []byte }

// NewDecoder wraps buf for decoding.
func NewDecoder(buf []byte) *Decoder { return &Decoder{buf: buf} }

// Uint32 reads a count.
func (d *Decoder) Uint32() (uint32, error) { return 0, nil }

// Uint64 reads a count.
func (d *Decoder) Uint64() (uint64, error) { return 0, nil }

// Remaining returns the number of unread bytes.
func (d *Decoder) Remaining() int { return len(d.buf) }
