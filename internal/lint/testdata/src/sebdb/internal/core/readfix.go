// Package core models the engine's read/write lock split for the
// readlock fixture: execSelect and execTrace stand in for the real
// read entry points, and Engine.mu for the writer lock a pinned read
// must never touch. The package lives at sebdb/internal/core so the
// analyzer's curated entry specs match it exactly.
package core

import "sync"

// Engine models the real engine: mu is the writer lock, tables the
// state it guards.
type Engine struct {
	mu     sync.RWMutex
	tables map[string]bool
}

// execSelect is a read entry point; everything it reaches must stay
// off e.mu.
func (e *Engine) execSelect(table string) bool {
	return e.lookup(table)
}

// lookup acquires the engine lock two calls below the entry point —
// the exact divergence the analyzer exists to catch.
func (e *Engine) lookup(table string) bool {
	e.mu.RLock() // want:readlock
	defer e.mu.RUnlock()
	return e.tables[table]
}

// execTrace is a second entry point whose acquisition is audited: the
// directive's reason: clause keeps it out of the findings.
func (e *Engine) execTrace(table string) bool {
	return e.auditedPeek(table)
}

func (e *Engine) auditedPeek(table string) bool {
	//sebdb:ignore-readlock reason: fixture-audited acquisition exercising the suppression path
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.tables[table]
}

// Commit is a writer; its acquisition is fine because no read entry
// point reaches it.
func (e *Engine) Commit(table string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.tables == nil {
		e.tables = make(map[string]bool)
	}
	e.tables[table] = true
}
