// Package ckptfix seeds lockio violations: it reconstructs the
// pre-lock-split commit pipeline, where the checkpoint was encoded and
// persisted while still holding the engine mutex — the exact regression
// the checkpoint/commit lock-split work removed and lockio now guards
// against. The sinks sit two calls deep, so only the interprocedural
// call graph can see them.
package ckptfix

import (
	"sync"

	"sebdb/internal/snapshot"
)

// Engine models the core engine's lock layout.
type Engine struct {
	mu     sync.Mutex
	height uint64

	dir *snapshot.Dir
}

// Commit models the pre-split pipeline: persist (which encodes and
// writes the checkpoint) runs under e.mu, two calls from the sink.
func (e *Engine) Commit() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.height++
	return e.persist() // want:lockio
}

// persist encodes and writes the current checkpoint. It takes no lock
// itself — the violation is holding one across this call.
func (e *Engine) persist() error {
	ck := &snapshot.Checkpoint{Height: e.height}
	ck.Raw = ck.Encode()
	return e.dir.Write(ck)
}

// CommitSplit models the post-split discipline: the checkpoint is built
// under the lock, encoded and persisted after release. Clean.
func (e *Engine) CommitSplit() error {
	e.mu.Lock()
	e.height++
	ck := &snapshot.Checkpoint{Height: e.height}
	e.mu.Unlock()
	return e.dir.Write(ck)
}

// FlushAudited persists under the lock behind an audited suppression
// with the mandatory reason: clause. No finding survives.
func (e *Engine) FlushAudited() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	//sebdb:ignore-lockio reason: fixture models an audited exception, serialised by design
	return e.persist()
}

// FlushUnaudited carries a suppression without the reason: clause the
// interprocedural analyzers demand: the directive itself is reported,
// and the call under it stays flagged.
func (e *Engine) FlushUnaudited() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	//sebdb:ignore-lockio checked by eye -- want:lockio
	return e.persist() // want:lockio
}

// Persister abstracts the checkpoint destination; lockio widens the
// interface call to every in-module implementation.
type Persister interface {
	Persist(ck *snapshot.Checkpoint) error
}

// DirPersister is the only implementation in the module; its Persist
// reaches the Dir.Write sink.
type DirPersister struct {
	dir *snapshot.Dir
}

// Persist writes the checkpoint through.
func (p *DirPersister) Persist(ck *snapshot.Checkpoint) error {
	return p.dir.Write(ck)
}

// CommitVia holds the lock across an interface call whose widened
// implementation blocks.
func (e *Engine) CommitVia(p Persister) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return p.Persist(nil) // want:lockio
}

// Background spawns the persist onto its own goroutine: the goroutine
// does not run under the caller's lock, so the `go` statement is clean —
// but the literal's own critical section is still scanned.
func (e *Engine) Background() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.height++
	go func() {
		if err := e.persist(); err != nil {
			return
		}
	}()
}
