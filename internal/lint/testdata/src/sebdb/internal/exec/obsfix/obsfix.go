// Package obsfix seeds obsclock violations inside an instrumented
// subtree: ambient wall-clock reads that bypass the injected
// clock.Source.
package obsfix

import "time"

// StageMicros times a stage with the ambient clock on both ends.
func StageMicros(stage func()) int64 {
	start := time.Now() // want:obsclock
	stage()
	return time.Since(start).Microseconds() // want:obsclock
}

// Tick is fine: tickers and durations are not ambient "what time is
// it" reads.
func Tick() *time.Ticker {
	return time.NewTicker(time.Second)
}

//sebdb:ignore-obsclock boot banner only; never feeds a trace or histogram
func bootStamp() int64 {
	return time.Now().UnixMicro()
}
