// Package snapshot stubs the real snapshot package's surface so the
// interprocedural fixtures resolve the same sink/sanitizer specs
// (sebdb/internal/snapshot.*) as the production tree. Matching is by
// package path, receiver and name, so the bodies are deliberately inert.
package snapshot

import "errors"

// Checkpoint is the persisted state image.
type Checkpoint struct {
	Height uint64
	Raw    []byte
}

// Encode serialises the checkpoint (lockio sink: checkpoint encode).
func (c *Checkpoint) Encode() []byte { return c.Raw }

// Decode parses a checkpoint from wire bytes; the result derives from
// the input, so taint flows through it.
func Decode(b []byte) (*Checkpoint, error) {
	if len(b) == 0 {
		return nil, errors.New("snapshot: empty payload")
	}
	return &Checkpoint{Height: uint64(len(b)), Raw: b}, nil
}

// Diverges cross-checks two checkpoints (trusttaint sanitizer).
func Diverges(a, b *Checkpoint) bool {
	return a != nil && b != nil && a.Height != b.Height
}

// Dir persists checkpoints (lockio + trusttaint sink: Dir.Write).
type Dir struct{}

// Write persists one checkpoint.
func (d *Dir) Write(c *Checkpoint) error {
	if c == nil {
		return errors.New("snapshot: nil checkpoint")
	}
	return nil
}

// Raw returns the serving copy of the newest checkpoint (lockio sink).
func (d *Dir) Raw() ([]byte, error) { return nil, nil }
