// Package atomfix seeds the snapshot half of the atomicwrite
// invariant: checkpoint files must be staged under a temp path and
// renamed into place, never created directly under their published
// name.
package atomfix

import (
	"io"
	"os"
)

// FS mirrors the faultfs surface the real snapshot code writes through.
type FS interface {
	OpenFile(name string, flag int, perm os.FileMode) (io.WriteCloser, error)
	Rename(oldpath, newpath string) error
}

// writeTo drains b into a freshly opened file.
func writeTo(f io.WriteCloser, b []byte) error {
	if _, err := f.Write(b); err != nil {
		f.Close() //sebdb:ignore-err the write error takes precedence
		return err
	}
	return f.Close()
}

// WriteDirect creates the final path directly — a crash mid-write
// leaves a torn file under the published name.
func WriteDirect(fs FS, path string, b []byte) error {
	f, err := fs.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644) // want:atomicwrite
	if err != nil {
		return err
	}
	return writeTo(f, b)
}

// WriteAtomic stages into a tmp path and renames into place: the only
// published names are rename targets.
func WriteAtomic(fs FS, path string, b []byte) error {
	tmp := path + ".tmp"
	f, err := fs.OpenFile(tmp, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if err := writeTo(f, b); err != nil {
		return err
	}
	return fs.Rename(tmp, path)
}

// Reopen without O_CREATE is fine anywhere: it cannot mint a new
// published name.
func Reopen(fs FS, path string) (io.WriteCloser, error) {
	return fs.OpenFile(path, os.O_WRONLY, 0o644)
}
