// Package rewritefix seeds the storage half of the atomicwrite staging
// rule: a truncating creation (O_CREATE|O_TRUNC — the recompression
// rewrite) must target a tmp path that a later rename publishes, while
// the append-only creation of the active segment legitimately opens its
// published name.
package rewritefix

import (
	"io"
	"os"
)

// FS mirrors the faultfs surface the real storage code writes through.
type FS interface {
	OpenFile(name string, flag int, perm os.FileMode) (io.WriteCloser, error)
	Rename(oldpath, newpath string) error
}

// RewriteInPlace clobbers the published segment directly — a crash
// mid-rewrite destroys committed blocks.
func RewriteInPlace(fs FS, seg string, b []byte) error {
	f, err := fs.OpenFile(seg, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644) // want:atomicwrite
	if err != nil {
		return err
	}
	if _, err := f.Write(b); err != nil {
		f.Close() //sebdb:ignore-err the write error takes precedence
		return err
	}
	return f.Close()
}

// RewriteStaged stages the rewrite at a tmp path and renames into
// place: the crash matrix can fire anywhere and the published segment
// is either the old file or the new one, never a tear.
func RewriteStaged(fs FS, seg string, b []byte) error {
	tmp := seg + ".tmp"
	f, err := fs.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(b); err != nil {
		f.Close() //sebdb:ignore-err the write error takes precedence
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return fs.Rename(tmp, seg)
}

// OpenTail is fine: the active segment's append-only creation never
// truncates, so a crash can tear at most the unsynced suffix the
// recovery scan already repairs.
func OpenTail(fs FS, seg string) (io.WriteCloser, error) {
	return fs.OpenFile(seg, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
}
