// Package atomfix seeds atomicwrite violations inside a crash-tested
// subtree: direct os filesystem calls that bypass the injected
// faultfs.FS, so the crash matrix can neither tear nor count them.
package atomfix

import "os"

// Persist mutates the tree with the ambient filesystem on both steps.
func Persist(path string, b []byte) error {
	if err := os.WriteFile(path+".tmp", b, 0o644); err != nil { // want:atomicwrite
		return err
	}
	return os.Rename(path+".tmp", path) // want:atomicwrite
}

// Probe is fine: error predicates and flag constants never touch the
// filesystem, only calls that read or mutate it are flagged.
func Probe(err error) (int, bool) {
	return os.O_CREATE, os.IsNotExist(err)
}

//sebdb:ignore-atomicwrite bootstrap probe outside the crash matrix
func exists(path string) bool {
	_, err := os.Stat(path)
	return err == nil
}
