// Package lockfix seeds a lockcheck violation: an exported fast-path
// accessor touching a mu-guarded field without the lock.
package lockfix

import "sync"

// Counter guards count with mu per the declaration-group convention.
type Counter struct {
	mu    sync.Mutex
	count int
}

// Add holds the lock.
func (c *Counter) Add() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.count++
}

// Peek forgets the lock.
func (c *Counter) Peek() int { // want:lockcheck
	return c.count
}

// Snapshot takes the receiver by value: the copy — mutex included — is
// made without the lock, so the Lock call below guards nothing.
func (c Counter) Snapshot() int { // want:lockcheck
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.count
}

// Drain also takes the receiver by value and does not even pretend to
// lock; formerly the value receiver made this escape analysis.
func (c Counter) Drain() int { // want:lockcheck
	return c.count
}

// Pipeline declares two guards: mu for the live state and ckptMu for
// the checkpoint floor. Each mutex guards only its own contiguous
// declaration group.
type Pipeline struct {
	mu     sync.RWMutex
	height int

	ckptMu sync.Mutex
	floor  uint64
}

// Height holds the right lock.
func (p *Pipeline) Height() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.height
}

// Floor holds the wrong lock: mu does not guard floor, ckptMu does.
func (p *Pipeline) Floor() uint64 { // want:lockcheck
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.floor
}

// Advance holds ckptMu, satisfying floor's guard.
func (p *Pipeline) Advance(v uint64) {
	p.ckptMu.Lock()
	defer p.ckptMu.Unlock()
	if v > p.floor {
		p.floor = v
	}
}
