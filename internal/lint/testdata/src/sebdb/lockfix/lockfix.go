// Package lockfix seeds a lockcheck violation: an exported fast-path
// accessor touching a mu-guarded field without the lock.
package lockfix

import "sync"

// Counter guards count with mu per the declaration-group convention.
type Counter struct {
	mu    sync.Mutex
	count int
}

// Add holds the lock.
func (c *Counter) Add() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.count++
}

// Peek forgets the lock.
func (c *Counter) Peek() int { // want:lockcheck
	return c.count
}
