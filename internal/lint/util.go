package lint

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"strings"
)

// Suppression directives. This is the single implementation of
// //sebdb:ignore-* comment parsing — analyzers never scan comments
// themselves; RunAll collects directives here and filters findings.

// directivePrefix introduces suppression comments:
// //sebdb:ignore-<name> <reason>. The reason is mandatory — a
// suppression nobody can justify is itself reported.
const directivePrefix = "//sebdb:ignore-"

// directiveAliases maps directive suffixes to analyzer names, so the
// documented //sebdb:ignore-err form reaches droppederr.
var directiveAliases = map[string]string{
	"atomic":        "atomicwrite",
	"atomicwrite":   "atomicwrite",
	"err":           "droppederr",
	"droppederr":    "droppederr",
	"decodebounds":  "decodebounds",
	"determinism":   "determinism",
	"lock":          "lockcheck",
	"lockcheck":     "lockcheck",
	"lockio":        "lockio",
	"obsclock":      "obsclock",
	"rawlog":        "rawlog",
	"readlock":      "readlock",
	"shadowbuiltin": "shadowbuiltin",
	"trusttaint":    "trusttaint",
	"u32":           "u32trunc",
	"u32trunc":      "u32trunc",
}

// reasonClauseRequired lists the analyzers whose suppressions must spell
// out an explicit `reason:` clause — the interprocedural analyzers guard
// crash-safety and trust invariants, and their audited exceptions are
// expected to read as documentation.
var reasonClauseRequired = map[string]bool{
	"lockio":     true,
	"readlock":   true,
	"trusttaint": true,
}

// suppression records where one directive silences one analyzer.
type suppression struct {
	analyzer  string
	file      string
	line      int // directive's own line; also silences line+1
	from, to  int // optional declaration range (inclusive lines), 0 if none
	reasonOK  bool
	directive token.Position
}

// collectSuppressions gathers every directive in the package, attaching
// declaration ranges for doc comments.
func collectSuppressions(pkg *Package) []suppression {
	var out []suppression
	for _, f := range pkg.Files {
		// Map doc-comment positions to their declaration's line range so
		// a directive above a func/type suppresses the whole body.
		docRange := make(map[token.Pos][2]int)
		for _, decl := range f.Decls {
			var doc *ast.CommentGroup
			switch d := decl.(type) {
			case *ast.FuncDecl:
				doc = d.Doc
			case *ast.GenDecl:
				doc = d.Doc
			}
			if doc != nil {
				docRange[doc.Pos()] = [2]int{
					pkg.Fset.Position(decl.Pos()).Line,
					pkg.Fset.Position(decl.End()).Line,
				}
			}
		}
		for _, cg := range f.Comments {
			rng, isDoc := docRange[cg.Pos()]
			for _, c := range cg.List {
				name, reason, ok := parseDirective(c.Text)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				s := suppression{
					analyzer:  name,
					file:      pos.Filename,
					line:      pos.Line,
					reasonOK:  reasonAccepted(name, reason),
					directive: pos,
				}
				if isDoc {
					s.from, s.to = rng[0], rng[1]
				}
				out = append(out, s)
			}
		}
	}
	return out
}

// parseDirective splits a //sebdb:ignore-<name> <reason> comment.
func parseDirective(text string) (analyzer, reason string, ok bool) {
	rest, found := strings.CutPrefix(text, directivePrefix)
	if !found {
		return "", "", false
	}
	name, reason, _ := strings.Cut(rest, " ")
	canonical, known := directiveAliases[name]
	if !known {
		return "", "", false
	}
	return canonical, strings.TrimSpace(reason), true
}

// reasonAccepted applies the per-analyzer reason policy: every
// suppression needs a reason, and the interprocedural analyzers need it
// introduced by an explicit `reason:` clause.
func reasonAccepted(analyzer, reason string) bool {
	if reason == "" {
		return false
	}
	if reasonClauseRequired[analyzer] {
		return strings.HasPrefix(reason, "reason:") && strings.TrimSpace(strings.TrimPrefix(reason, "reason:")) != ""
	}
	return true
}

// suppresses reports whether s silences a finding of the given analyzer
// at pos.
func (s suppression) suppresses(analyzer string, pos token.Position) bool {
	if s.analyzer != analyzer || s.file != pos.Filename {
		return false
	}
	if pos.Line == s.line || pos.Line == s.line+1 {
		return true
	}
	return s.from != 0 && pos.Line >= s.from && pos.Line <= s.to
}

// exprText renders an expression to canonical source text, used to
// compare guard expressions structurally.
func exprText(fset *token.FileSet, e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, e); err != nil {
		return ""
	}
	return buf.String()
}

// funcBodies visits every top-level function body in the file exactly
// once. Function literals are analysed as part of the declaration that
// encloses them, so guards established in the outer scope count for
// closures too.
func funcBodies(f *ast.File, visit func(fn ast.Node, body *ast.BlockStmt)) {
	for _, decl := range f.Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
			visit(fd, fd.Body)
		}
	}
}

// object resolves an identifier through Uses then Defs.
func object(info *types.Info, id *ast.Ident) types.Object {
	if o := info.Uses[id]; o != nil {
		return o
	}
	return info.Defs[id]
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	return t != nil && types.Identical(t, types.Universe.Lookup("error").Type())
}

// returnsError reports whether the call's result includes an error and
// how many results it has. ok is false when type information is
// unavailable for the call.
func returnsError(info *types.Info, call *ast.CallExpr) (hasErr bool, results int, ok bool) {
	tv, found := info.Types[call.Fun]
	if found && tv.IsType() {
		return false, 1, true // conversion, not a call
	}
	rtv, found := info.Types[call]
	if !found {
		return false, 0, false
	}
	switch t := rtv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				hasErr = true
			}
		}
		return hasErr, t.Len(), true
	default:
		return isErrorType(rtv.Type), 1, true
	}
}

// pkgPathOf returns the import path of the package an identifier's
// object belongs to ("" for builtins and unresolved identifiers).
func pkgPathOf(info *types.Info, id *ast.Ident) string {
	o := object(info, id)
	if o == nil || o.Pkg() == nil {
		return ""
	}
	return o.Pkg().Path()
}

// selectorCall matches a call of the form recv.Name(...) and returns
// the receiver expression and the method name.
func selectorCall(call *ast.CallExpr) (recv ast.Expr, name string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return nil, "", false
	}
	return sel.X, sel.Sel.Name, true
}

// importsPackage reports whether the file imports the given path, and
// returns the local name it is bound to ("time", or a rename).
func importsPackage(f *ast.File, path string) (localName string, ok bool) {
	for _, imp := range f.Imports {
		p := strings.Trim(imp.Path.Value, `"`)
		if p != path {
			continue
		}
		if imp.Name != nil {
			return imp.Name.Name, true
		}
		if i := strings.LastIndex(p, "/"); i >= 0 {
			p = p[i+1:]
		}
		return p, true
	}
	return "", false
}

// baseIdentObj unwraps selectors, indexing, slicing, derefs and parens
// to the object of the base identifier an expression is rooted in, or
// nil when the expression is not rooted in a plain identifier.
func baseIdentObj(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return object(info, x)
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.IndexListExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		case *ast.TypeAssertExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// containsIdentObj reports whether the expression mentions the given
// object (matching by types.Object when available, by name otherwise).
func containsIdentObj(info *types.Info, e ast.Expr, obj types.Object, name string) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, isID := n.(*ast.Ident); isID {
			if o := object(info, id); o != nil && obj != nil {
				if o == obj {
					found = true
				}
			} else if id.Name == name {
				found = true
			}
		}
		return !found
	})
	return found
}
