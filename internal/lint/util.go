package lint

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"strings"
)

// exprText renders an expression to canonical source text, used to
// compare guard expressions structurally.
func exprText(fset *token.FileSet, e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, e); err != nil {
		return ""
	}
	return buf.String()
}

// funcBodies visits every top-level function body in the file exactly
// once. Function literals are analysed as part of the declaration that
// encloses them, so guards established in the outer scope count for
// closures too.
func funcBodies(f *ast.File, visit func(fn ast.Node, body *ast.BlockStmt)) {
	for _, decl := range f.Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
			visit(fd, fd.Body)
		}
	}
}

// object resolves an identifier through Uses then Defs.
func object(info *types.Info, id *ast.Ident) types.Object {
	if o := info.Uses[id]; o != nil {
		return o
	}
	return info.Defs[id]
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	return t != nil && types.Identical(t, types.Universe.Lookup("error").Type())
}

// returnsError reports whether the call's result includes an error and
// how many results it has. ok is false when type information is
// unavailable for the call.
func returnsError(info *types.Info, call *ast.CallExpr) (hasErr bool, results int, ok bool) {
	tv, found := info.Types[call.Fun]
	if found && tv.IsType() {
		return false, 1, true // conversion, not a call
	}
	rtv, found := info.Types[call]
	if !found {
		return false, 0, false
	}
	switch t := rtv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				hasErr = true
			}
		}
		return hasErr, t.Len(), true
	default:
		return isErrorType(rtv.Type), 1, true
	}
}

// pkgPathOf returns the import path of the package an identifier's
// object belongs to ("" for builtins and unresolved identifiers).
func pkgPathOf(info *types.Info, id *ast.Ident) string {
	o := object(info, id)
	if o == nil || o.Pkg() == nil {
		return ""
	}
	return o.Pkg().Path()
}

// selectorCall matches a call of the form recv.Name(...) and returns
// the receiver expression and the method name.
func selectorCall(call *ast.CallExpr) (recv ast.Expr, name string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return nil, "", false
	}
	return sel.X, sel.Sel.Name, true
}

// importsPackage reports whether the file imports the given path, and
// returns the local name it is bound to ("time", or a rename).
func importsPackage(f *ast.File, path string) (localName string, ok bool) {
	for _, imp := range f.Imports {
		p := strings.Trim(imp.Path.Value, `"`)
		if p != path {
			continue
		}
		if imp.Name != nil {
			return imp.Name.Name, true
		}
		if i := strings.LastIndex(p, "/"); i >= 0 {
			p = p[i+1:]
		}
		return p, true
	}
	return "", false
}

// containsIdentObj reports whether the expression mentions the given
// object (matching by types.Object when available, by name otherwise).
func containsIdentObj(info *types.Info, e ast.Expr, obj types.Object, name string) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, isID := n.(*ast.Ident); isID {
			if o := object(info, id); o != nil && obj != nil {
				if o == obj {
					found = true
				}
			} else if id.Name == name {
				found = true
			}
		}
		return !found
	})
	return found
}
