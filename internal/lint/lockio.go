package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"

	"sebdb/internal/lint/callgraph"
)

// LockIO enforces the engine's lock-split discipline interprocedurally:
// no critical section guarded by a `mu`/`*Mu` mutex may reach blocking
// I/O — fsync, file create/rename/truncate, checkpoint encode or bulk
// checkpoint load, network reads and writes — through any chain of
// calls. The lock splits of the checkpoint and commit-pipeline work
// (build under e.mu, encode+fsync outside; prepare under commitMu,
// group fsync outside e.mu) stay machine-checked instead of relying on
// review. Audited exceptions (the segment store serialising its own
// I/O, ckptMu existing precisely to cover checkpoint persists) carry a
// //sebdb:ignore-lockio reason: <why> directive.
var LockIO = &Analyzer{
	Name: "lockio",
	Doc:  "mutex-guarded critical sections must not reach blocking I/O through any call chain (escape: //sebdb:ignore-lockio reason: <why>)",
	Run:  nil, // installed by RunAll via the shared call graph
}

// funcSpec names a function or method by package path, receiver base
// type ("" for plain functions) and name. It is how the
// interprocedural analyzers curate sinks, sources and sanitizers.
type funcSpec struct {
	pkg  string
	recv string
	name string
}

// lockIOSinks is the blocking-I/O frontier. Plain buffered writes to an
// already-open segment are deliberately absent: the commit pipeline
// appends under e.mu by design, and only durability operations (fsync,
// create, rename), bulk checkpoint encode/load and network I/O block
// long enough to break the lock contract.
var lockIOSinks = []funcSpec{
	// Standard library durability and file-creation operations.
	{"os", "File", "Sync"},
	{"os", "", "Rename"},
	{"os", "", "Create"},
	{"os", "", "OpenFile"},
	{"os", "", "WriteFile"},
	{"os", "", "Remove"},
	{"os", "", "RemoveAll"},
	{"os", "", "Truncate"},
	{"os", "", "Mkdir"},
	{"os", "", "MkdirAll"},
	// Network I/O.
	{"net", "Conn", "Read"},
	{"net", "Conn", "Write"},
	{"net", "", "Dial"},
	{"sebdb/internal/network", "", "WriteFrame"},
	{"sebdb/internal/network", "", "ReadFrame"},
	{"sebdb/internal/network", "Client", "Call"},
	// The injected filesystem the storage and snapshot layers write
	// through (the interface methods themselves are the sinks, so the
	// check holds regardless of which FS implementation is bound).
	{"sebdb/internal/faultfs", "File", "Sync"},
	{"sebdb/internal/faultfs", "FS", "Rename"},
	{"sebdb/internal/faultfs", "FS", "Remove"},
	{"sebdb/internal/faultfs", "FS", "Truncate"},
	{"sebdb/internal/faultfs", "FS", "OpenFile"},
	{"sebdb/internal/faultfs", "FS", "MkdirAll"},
	// Checkpoint encode and bulk checkpoint file I/O: the exact
	// operations the PR-5 lock split moved out of e.mu.
	{"sebdb/internal/snapshot", "Checkpoint", "Encode"},
	{"sebdb/internal/snapshot", "Dir", "Write"},
	{"sebdb/internal/snapshot", "Dir", "Load"},
	{"sebdb/internal/snapshot", "Dir", "Raw"},
}

// matchSpec reports whether fn matches one of the curated specs.
func matchSpec(specs []funcSpec, fn *types.Func) bool {
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	pkg, recv, name := fn.Pkg().Path(), "", fn.Name()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		recv = recvBaseName(sig.Recv().Type())
	}
	for _, s := range specs {
		if s.pkg == pkg && s.recv == recv && s.name == name {
			return true
		}
	}
	return false
}

// recvBaseName returns the base type name of a receiver type.
func recvBaseName(t types.Type) string {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// runLockIO runs the analyzer over one package given the module-wide
// call graph and the precomputed sink reachability.
func runLockIO(pkg *Package, g *callgraph.Graph, reach *callgraph.Reach) []Finding {
	var out []Finding
	for _, f := range pkg.Files {
		funcBodies(f, func(fn ast.Node, body *ast.BlockStmt) {
			name := "function"
			if fd, ok := fn.(*ast.FuncDecl); ok {
				name = fd.Name.Name
			}
			out = append(out, scanCriticalSections(pkg, g, reach, name, body.List, nil)...)
			// Function literals (goroutine bodies in particular) run on
			// their own flow: scan each as an independent section context
			// so a lock acquired inside one is still checked.
			ast.Inspect(body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					out = append(out, scanCriticalSections(pkg, g, reach, name+" (func literal)", lit.Body.List, nil)...)
				}
				return true
			})
		})
	}
	return out
}

// heldGuard is one mutex the current flow holds.
type heldGuard struct {
	expr string // canonical guard expression, e.g. "e.mu"
}

// scanCriticalSections walks one statement list in source order,
// tracking which guards are held, and checks every call made while any
// guard is held. Nested blocks inherit the held set; guards acquired
// inside a nested block do not leak out (acquiring in a branch and
// relying on it afterwards is not a pattern this codebase uses).
// Unlocks inside nested blocks likewise do not release the outer flow —
// conservative in the early-unlock-and-return idiom, where the branch
// ends in a return anyway.
func scanCriticalSections(pkg *Package, g *callgraph.Graph, reach *callgraph.Reach, fnName string, stmts []ast.Stmt, held []heldGuard) []Finding {
	var out []Finding
	held = append([]heldGuard(nil), held...)
	for _, stmt := range stmts {
		switch s := stmt.(type) {
		case *ast.ExprStmt:
			if guard, locks, ok := guardCall(pkg, s.X); ok {
				if locks {
					held = append(held, heldGuard{expr: guard})
				} else {
					held = releaseGuard(held, guard)
				}
				continue
			}
		case *ast.DeferStmt:
			if guard, locks, ok := guardCall(pkg, s.Call); ok && locks {
				held = append(held, heldGuard{expr: guard})
				continue
			}
			// A deferred unlock keeps the guard held to the end of the
			// function; deferred non-lock calls run before it (LIFO), i.e.
			// still under the lock — fall through to the generic check.
		}
		if len(held) > 0 {
			out = append(out, checkGuardedStmt(pkg, g, reach, fnName, held, stmt)...)
		}
		// Recurse into nested statement lists with the current held set,
		// skipping the ones checkGuardedStmt already covered.
		if len(held) == 0 {
			for _, nested := range nestedStmtLists(stmt) {
				out = append(out, scanCriticalSections(pkg, g, reach, fnName, nested, held)...)
			}
		}
	}
	return out
}

// nestedStmtLists returns the statement lists nested in one statement.
func nestedStmtLists(stmt ast.Stmt) [][]ast.Stmt {
	var out [][]ast.Stmt
	switch s := stmt.(type) {
	case *ast.BlockStmt:
		out = append(out, s.List)
	case *ast.IfStmt:
		out = append(out, s.Body.List)
		if s.Else != nil {
			out = append(out, nestedStmtLists(s.Else)...)
		}
	case *ast.ForStmt:
		out = append(out, s.Body.List)
	case *ast.RangeStmt:
		out = append(out, s.Body.List)
	case *ast.SwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				out = append(out, cc.Body)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				out = append(out, cc.Body)
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				out = append(out, cc.Body)
			}
		}
	case *ast.LabeledStmt:
		out = append(out, nestedStmtLists(s.Stmt)...)
	}
	return out
}

// guardCall matches expr as <guard>.Lock/RLock/Unlock/RUnlock() where
// the guard is a mutex-convention expression (final selector `mu` or
// `*Mu`). locks is true for acquisitions.
func guardCall(pkg *Package, expr ast.Expr) (guard string, locks, ok bool) {
	call, isCall := expr.(*ast.CallExpr)
	if !isCall {
		return "", false, false
	}
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", false, false
	}
	var isLock bool
	switch sel.Sel.Name {
	case "Lock", "RLock":
		isLock = true
	case "Unlock", "RUnlock":
	default:
		return "", false, false
	}
	inner, isInner := sel.X.(*ast.SelectorExpr)
	if !isInner || !isGuardName(inner.Sel.Name) {
		// A bare `mu.Lock()` on a package-level or local guard.
		if id, isID := sel.X.(*ast.Ident); isID && isGuardName(id.Name) {
			return id.Name, isLock, true
		}
		return "", false, false
	}
	return exprText(pkg.Fset, sel.X), isLock, true
}

// isGuardName matches the repository's mutex naming convention.
func isGuardName(name string) bool {
	return name == "mu" || strings.HasSuffix(name, "Mu") || strings.HasSuffix(name, "mu")
}

// releaseGuard drops the most recent acquisition of guard.
func releaseGuard(held []heldGuard, guard string) []heldGuard {
	for i := len(held) - 1; i >= 0; i-- {
		if held[i].expr == guard {
			return append(held[:i], held[i+1:]...)
		}
	}
	return held
}

// checkGuardedStmt reports every call in stmt (excluding `go`
// statements — a spawned goroutine does not run under the caller's
// lock) whose callee is, or transitively reaches, a blocking sink.
func checkGuardedStmt(pkg *Package, g *callgraph.Graph, reach *callgraph.Reach, fnName string, held []heldGuard, stmt ast.Stmt) []Finding {
	var out []Finding
	guards := make([]string, len(held))
	for i, h := range held {
		guards[i] = h.expr
	}
	ast.Inspect(stmt, func(n ast.Node) bool {
		if _, isGo := n.(*ast.GoStmt); isGo {
			return false
		}
		call, isCall := n.(*ast.CallExpr)
		if !isCall {
			return true
		}
		if _, _, isGuardOp := guardCall(pkg, call); isGuardOp {
			return true
		}
		for _, callee := range g.CalleesAt(pkg.Info, call) {
			if !reach.Reaches(callee) {
				continue
			}
			out = append(out, Finding{
				Pos:      pkg.Fset.Position(call.Pos()),
				Analyzer: "lockio",
				Message: fmt.Sprintf("%s holds %s while calling %s, which reaches blocking I/O: %s",
					fnName, strings.Join(guards, "+"), callee.Name(), sinkPath(reach, callee)),
			})
			break // one finding per call site is enough
		}
		return true
	})
	return out
}

// sinkPath renders the witness call chain to the sink.
func sinkPath(reach *callgraph.Reach, fn *types.Func) string {
	path := reach.Path(fn)
	parts := make([]string, len(path))
	for i, p := range path {
		parts[i] = funcDisplay(p)
	}
	return strings.Join(parts, " -> ")
}

// funcDisplay renders a function as pkg.Recv.Name or pkg.Name.
func funcDisplay(fn *types.Func) string {
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Name() + "."
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if base := recvBaseName(sig.Recv().Type()); base != "" {
			return pkg + base + "." + fn.Name()
		}
	}
	return pkg + fn.Name()
}
