package lint

import (
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// The fixture module under testdata/src/sebdb marks each seeded
// violation with a trailing "want:<analyzer>" comment; the tests demand
// an exact multiset match between those marks and RunAll's output.
var wantRe = regexp.MustCompile(`want:([a-z0-9]+)`)

type findingKey struct {
	file     string
	line     int
	analyzer string
}

func loadFixture(t *testing.T) []*Package {
	t.Helper()
	loader, err := NewLoader(filepath.Join("testdata", "src", "sebdb"))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) == 0 {
		t.Fatal("fixture module loaded no packages")
	}
	return pkgs
}

// fixtureFindings returns the actual and expected finding multisets,
// leaving out baddirective.go (covered by its own test below).
func fixtureFindings(t *testing.T) (got, want map[findingKey]int) {
	t.Helper()
	pkgs := loadFixture(t)
	got = make(map[findingKey]int)
	for _, f := range RunAll(pkgs) {
		if filepath.Base(f.Pos.Filename) == "baddirective.go" {
			continue
		}
		got[findingKey{filepath.Base(f.Pos.Filename), f.Pos.Line, f.Analyzer}]++
	}
	want = make(map[findingKey]int)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					for _, m := range wantRe.FindAllStringSubmatch(c.Text, -1) {
						pos := pkg.Fset.Position(c.Pos())
						want[findingKey{filepath.Base(pos.Filename), pos.Line, m[1]}]++
					}
				}
			}
		}
	}
	return got, want
}

func TestFixtureFindingsMatchWantComments(t *testing.T) {
	got, want := fixtureFindings(t)
	for k, n := range want {
		if got[k] != n {
			t.Errorf("%s:%d: want %d %s finding(s), got %d", k.file, k.line, n, k.analyzer, got[k])
		}
	}
	for k, n := range got {
		if want[k] != n {
			t.Errorf("%s:%d: unexpected %s finding (count %d, want %d)", k.file, k.line, k.analyzer, n, want[k])
		}
	}
}

// Each analyzer must flag at least one seeded violation — a vacuous
// analyzer would otherwise pass the comparison above with zero marks.
func TestAtomicwriteFlagsSeededViolation(t *testing.T)  { requireAnalyzerHit(t, "atomicwrite") }
func TestDecodeBoundsFlagsSeededViolation(t *testing.T) { requireAnalyzerHit(t, "decodebounds") }
func TestDroppedErrFlagsSeededViolation(t *testing.T)   { requireAnalyzerHit(t, "droppederr") }
func TestDeterminismFlagsSeededViolation(t *testing.T)  { requireAnalyzerHit(t, "determinism") }
func TestLockCheckFlagsSeededViolation(t *testing.T)    { requireAnalyzerHit(t, "lockcheck") }
func TestLockIOFlagsSeededViolation(t *testing.T)       { requireAnalyzerHit(t, "lockio") }
func TestReadLockFlagsSeededViolation(t *testing.T)     { requireAnalyzerHit(t, "readlock") }
func TestShadowBuiltinFlagsSeededViolation(t *testing.T) {
	requireAnalyzerHit(t, "shadowbuiltin")
}
func TestTrustTaintFlagsSeededViolation(t *testing.T) { requireAnalyzerHit(t, "trusttaint") }
func TestObsclockFlagsSeededViolation(t *testing.T)   { requireAnalyzerHit(t, "obsclock") }
func TestRawlogFlagsSeededViolation(t *testing.T)     { requireAnalyzerHit(t, "rawlog") }
func TestU32TruncFlagsSeededViolation(t *testing.T)   { requireAnalyzerHit(t, "u32trunc") }

func requireAnalyzerHit(t *testing.T, analyzer string) {
	t.Helper()
	got, _ := fixtureFindings(t)
	for k := range got {
		if k.analyzer == analyzer {
			return
		}
	}
	t.Errorf("analyzer %s flagged nothing in the fixture module", analyzer)
}

// A directive without a reason is reported, and the call it decorates
// stays flagged.
func TestReasonlessDirectiveIsReported(t *testing.T) {
	pkgs := loadFixture(t)
	var needsReason, stillFlagged bool
	for _, f := range RunAll(pkgs) {
		if filepath.Base(f.Pos.Filename) != "baddirective.go" {
			continue
		}
		if f.Analyzer != "droppederr" {
			t.Errorf("baddirective.go: unexpected %s finding: %s", f.Analyzer, f.Message)
			continue
		}
		if strings.Contains(f.Message, "needs a reason") {
			needsReason = true
		} else {
			stillFlagged = true
		}
	}
	if !needsReason {
		t.Error("reason-less //sebdb:ignore-err directive was not reported")
	}
	if !stillFlagged {
		t.Error("call under a reason-less directive was suppressed")
	}
}

func TestDirectiveParsing(t *testing.T) {
	for _, tc := range []struct {
		text             string
		analyzer, reason string
		ok               bool
	}{
		{"//sebdb:ignore-err storage teardown", "droppederr", "storage teardown", true},
		{"//sebdb:ignore-atomic bootstrap probe", "atomicwrite", "bootstrap probe", true},
		{"//sebdb:ignore-lock aliased acquisition", "lockcheck", "aliased acquisition", true},
		{"//sebdb:ignore-u32 framed above", "u32trunc", "framed above", true},
		{"//sebdb:ignore-droppederr full name", "droppederr", "full name", true},
		{"//sebdb:ignore-obsclock boot banner", "obsclock", "boot banner", true},
		{"//sebdb:ignore-err", "droppederr", "", true},
		{"//sebdb:ignore-lockio reason: store serialises its own fsync", "lockio", "reason: store serialises its own fsync", true},
		{"//sebdb:ignore-trusttaint reason: payload CRC-checked above", "trusttaint", "reason: payload CRC-checked above", true},
		{"//sebdb:ignore-unknown whatever", "", "", false},
		{"// plain comment", "", "", false},
	} {
		analyzer, reason, ok := parseDirective(tc.text)
		if analyzer != tc.analyzer || reason != tc.reason || ok != tc.ok {
			t.Errorf("parseDirective(%q) = (%q, %q, %v), want (%q, %q, %v)",
				tc.text, analyzer, reason, ok, tc.analyzer, tc.reason, tc.ok)
		}
	}
}

// The interprocedural analyzers demand an explicit reason: clause; the
// file-local ones accept any non-empty reason.
func TestReasonClausePolicy(t *testing.T) {
	for _, tc := range []struct {
		analyzer, reason string
		ok               bool
	}{
		{"droppederr", "teardown", true},
		{"droppederr", "", false},
		{"lockio", "serialised by design", false},
		{"lockio", "reason: serialised by design", true},
		{"lockio", "reason:", false},
		{"trusttaint", "checked above", false},
		{"trusttaint", "reason: CRC-checked above", true},
	} {
		if got := reasonAccepted(tc.analyzer, tc.reason); got != tc.ok {
			t.Errorf("reasonAccepted(%q, %q) = %v, want %v", tc.analyzer, tc.reason, got, tc.ok)
		}
	}
}
