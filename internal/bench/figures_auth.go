package bench

import (
	"fmt"
	"path/filepath"
	"time"

	"sebdb/internal/auth"
	"sebdb/internal/core"
	"sebdb/internal/types"
)

// The authenticated-query figures (17-19) compare the ALI against the
// ship-all-blocks baseline for Q2 (authenticated tracking on SenID) and
// Q4 (authenticated range on donate.amount), on three metrics: VO size,
// server-side query time and client-side verification time. Dataset
// per the paper: 100,000 donate transactions uniform over blocks,
// result size 10,000, blocks 500..2500.

// authDataset loads (or reopens) the Fig. 17-19 dataset and returns
// the engine with both ALIs ready.
func authDataset(dir string, blocks, total, result int) (*core.Engine, error) {
	e, err := NewEngine(dir, core.CacheNone)
	if err != nil {
		return nil, err
	}
	if e.Height() == 0 {
		txPerBlock := total / blocks
		if txPerBlock < 1 {
			txPerBlock = 1
		}
		// Result rows serve both queries: sent by org1 (Q2's tracking
		// target) with amounts inside [RangeLo, RangeHi] (Q4's window).
		err = LoadAuth(e, GenConfig{
			Blocks: blocks, TxPerBlock: txPerBlock, ResultSize: result,
			Dist: Uniform, Seed: 1,
		})
		if err != nil {
			e.Close() //sebdb:ignore-err best-effort cleanup on the error path
			return nil, err
		}
	}
	if err := e.CreateAuthIndex("", "senid"); err != nil {
		e.Close() //sebdb:ignore-err best-effort cleanup on the error path
		return nil, err
	}
	if err := e.CreateAuthIndex("donate", "amount"); err != nil {
		e.Close() //sebdb:ignore-err best-effort cleanup on the error path
		return nil, err
	}
	return e, nil
}

// authMetrics holds one (query, approach) measurement.
type authMetrics struct {
	voSize     int
	serverTime time.Duration
	clientTime time.Duration
}

// runALI measures the ALI path for one range query (best of three
// runs per phase, like the other harnesses).
func runALI(e *core.Engine, table, col string, lo, hi types.Value) (authMetrics, error) {
	var m authMetrics
	ali := e.AuthIndex(table, col)
	if ali == nil {
		return m, fmt.Errorf("bench: no ALI on %s.%s", table, col)
	}
	for r := 0; r < 3; r++ {
		t0 := time.Now()
		ans := auth.Serve(ali, e.Height(), nil, lo, hi)
		server := time.Since(t0)
		t1 := time.Now()
		if _, _, err := auth.VerifyAnswer(ans, lo, hi); err != nil {
			return m, err
		}
		client := time.Since(t1)
		if r == 0 || server < m.serverTime {
			m.serverTime = server
		}
		if r == 0 || client < m.clientTime {
			m.clientTime = client
		}
		m.voSize = ans.Size()
	}
	return m, nil
}

// runBasic measures the ship-all-blocks baseline (best of three).
func runBasic(e *core.Engine, match func(*types.Transaction) bool) (authMetrics, error) {
	var m authMetrics
	headers := e.Headers()
	for r := 0; r < 3; r++ {
		t0 := time.Now()
		ans := &auth.BasicAnswer{Height: e.Height()}
		for h := uint64(0); h < e.Height(); h++ {
			b, err := e.Block(h)
			if err != nil {
				return m, err
			}
			ans.Blocks = append(ans.Blocks, b)
		}
		server := time.Since(t0)
		t1 := time.Now()
		if _, err := auth.BasicVerify(ans, headers, match); err != nil {
			return m, err
		}
		client := time.Since(t1)
		if r == 0 || server < m.serverTime {
			m.serverTime = server
		}
		if r == 0 || client < m.clientTime {
			m.clientTime = client
		}
		m.voSize = ans.Size()
	}
	return m, nil
}

// authFigure runs the shared sweep and projects one metric per figure.
func authFigure(dir string, scale float64, title, note string,
	pick func(authMetrics) string) (*Table, error) {
	t := &Table{
		Title:  title,
		Header: []string{"blocks", "ALI-Q2", "ALI-Q4", "basic-Q2", "basic-Q4"},
		Note:   note,
	}
	total := scaled(100_000, scale, 600)
	result := scaled(10_000, scale, 60)
	for _, blocks := range blockSizesFor(scale) {
		e, err := authDataset(filepath.Join(dir, fmt.Sprintf("auth-%d", blocks)), blocks, total, result)
		if err != nil {
			return nil, err
		}
		aliQ2, err := runALI(e, "", "senid", types.Str("org1"), types.Str("org1"))
		if err != nil {
			e.Close() //sebdb:ignore-err best-effort cleanup on the error path
			return nil, err
		}
		aliQ4, err := runALI(e, "donate", "amount", types.Dec(RangeLo), types.Dec(RangeHi))
		if err != nil {
			e.Close() //sebdb:ignore-err best-effort cleanup on the error path
			return nil, err
		}
		basicQ2, err := runBasic(e, func(tx *types.Transaction) bool { return tx.SenID == "org1" })
		if err != nil {
			e.Close() //sebdb:ignore-err best-effort cleanup on the error path
			return nil, err
		}
		basicQ4, err := runBasic(e, func(tx *types.Transaction) bool {
			if tx.Tname != "donate" {
				return false
			}
			v := tx.Args[2].Float()
			return v >= RangeLo && v <= RangeHi
		})
		e.Close() //sebdb:ignore-err best-effort cleanup on the error path
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%d", blocks),
			pick(aliQ2), pick(aliQ4), pick(basicQ2), pick(basicQ4))
	}
	return t, nil
}

// Fig17 — VO size, ALI vs basic.
func Fig17(dir string, scale float64) (*Table, error) {
	return authFigure(dir, scale,
		"Fig. 17 — Authenticated query VO size, ALI vs ship-all-blocks",
		"ALI VO is a small multiple of the result; the baseline ships the whole chain",
		func(m authMetrics) string { return kb(m.voSize) })
}

// Fig18 — server-side query time.
func Fig18(dir string, scale float64) (*Table, error) {
	return authFigure(dir, scale,
		"Fig. 18 — Authenticated query running time at server side",
		"ALI touches only candidate blocks through the index; basic scans everything",
		func(m authMetrics) string { return ms(m.serverTime) })
}

// Fig19 — client-side verification time.
func Fig19(dir string, scale float64) (*Table, error) {
	return authFigure(dir, scale,
		"Fig. 19 — Authenticated query running time at client side",
		"reconstructing a few MB-tree roots beats rebuilding every block's Merkle tree",
		func(m authMetrics) string { return ms(m.clientTime) })
}
