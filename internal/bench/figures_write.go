package bench

import (
	"crypto/ed25519"
	"fmt"
	"math/rand"
	"path/filepath"
	"sync"
	"time"

	"sebdb/internal/consensus"
	"sebdb/internal/consensus/kafka"
	"sebdb/internal/consensus/pbft"
	"sebdb/internal/core"
)

// Fig7 — write performance (Q1): throughput and mean response time
// under the Kafka ordering service and the PBFT (Tendermint-style)
// consensus, 4 servers, varying concurrent clients (paper: 40..400
// clients, 100 transactions each, block 200 txs / 200 ms for Kafka,
// 10,000 txs for Tendermint). Every engine runs the staged commit
// pipeline at MaxWorkers, and both protocols verify batch signatures
// over the same pool, so -workers sweeps the write path's parallelism
// axis end to end.
func Fig7(dir string, scale float64) (*Table, error) {
	t := &Table{
		Title: fmt.Sprintf("Fig. 7 — Write performance (Q1), Kafka vs PBFT(Tendermint-style), 4 servers, %d workers",
			MaxWorkers),
		Header: []string{"clients", "kafka tx/s", "kafka resp", "pbft tx/s", "pbft resp"},
		Note:   "Kafka throughput >> PBFT; PBFT latency flat while underloaded, rising with clients",
	}
	txPerClient := scaled(100, scale, 5)
	for _, paperClients := range []int{40, 120, 200, 280, 400} {
		clients := scaled(paperClients, scale, 2)
		row := []string{fmt.Sprintf("%d", clients)}
		for _, proto := range []string{"kafka", "pbft"} {
			engines := make([]*core.Engine, 4)
			committers := make([]consensus.Committer, 4)
			for i := range engines {
				e, err := NewEngine(filepath.Join(dir,
					fmt.Sprintf("f7-%s-%d-n%d", proto, clients, i)), core.CacheNone)
				if err != nil {
					return nil, err
				}
				if e.Height() == 0 {
					if err := SetupSchema(e); err != nil {
						return nil, err
					}
				}
				e.SetParallelism(MaxWorkers)
				engines[i] = e
				committers[i] = e
			}

			var cons consensus.Consensus
			switch proto {
			case "kafka":
				// Batch sizes scale with the client population so the
				// saturation knee (paper: 200-tx blocks, ~240 clients)
				// appears at any harness scale.
				broker := kafka.New(kafka.Options{
					BatchSize:    scaled(200, scale, 5),
					BatchTimeout: 200 * time.Millisecond,
					RequireSigs:  true,
					Parallelism:  MaxWorkers,
				})
				for _, c := range committers {
					broker.Subscribe(c)
				}
				cons = broker
			default:
				cl, err := pbft.New(pbft.Options{
					F: 1, BatchSize: scaled(10_000, scale, 50),
					BatchTimeout: 200 * time.Millisecond,
					RequireSigs:  true,
					Parallelism:  MaxWorkers,
				}, committers)
				if err != nil {
					return nil, err
				}
				cons = cl
			}
			if err := cons.Start(); err != nil {
				return nil, err
			}

			key := ed25519.NewKeyFromSeed(make([]byte, ed25519.SeedSize))
			engines[0].RegisterKey("client", key)

			var wg sync.WaitGroup
			var latMu sync.Mutex
			var totalLatency time.Duration
			completed := 0
			start := time.Now()
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(c)))
					for i := 0; i < txPerClient; i++ {
						tx, err := Q1Tx(engines[0], rng, "client")
						if err != nil {
							return
						}
						t0 := time.Now()
						if err := cons.Submit(tx); err != nil {
							return
						}
						latMu.Lock()
						totalLatency += time.Since(t0)
						completed++
						latMu.Unlock()
					}
				}(c)
			}
			wg.Wait()
			elapsed := time.Since(start)
			cons.Stop() //sebdb:ignore-err benchmark teardown after results are collected
			for _, e := range engines {
				e.Close() //sebdb:ignore-err benchmark teardown after results are collected
			}
			if completed == 0 {
				return nil, fmt.Errorf("fig7: no transactions completed under %s", proto)
			}
			tput := float64(completed) / elapsed.Seconds()
			meanResp := totalLatency / time.Duration(completed)
			row = append(row, fmt.Sprintf("%.0f", tput), ms(meanResp))
		}
		t.AddRow(row...)
	}
	return t, nil
}
