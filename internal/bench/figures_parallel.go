package bench

import (
	"context"
	"fmt"
	"path/filepath"
	"runtime"

	"sebdb/internal/core"
	"sebdb/internal/exec"
)

// MaxWorkers bounds the worker sweep of the parallel-scaling entry
// (figure 23); bchainbench's -workers flag overrides it. The sweep
// runs 1, 2, 4, ... doubling up to this bound.
var MaxWorkers = runtime.GOMAXPROCS(0)

// workerSteps returns the 1, 2, 4, ..., max sweep, always ending at
// max itself.
func workerSteps(max int) []int {
	if max < 1 {
		max = 1
	}
	var out []int
	for w := 1; w < max; w *= 2 {
		out = append(out, w)
	}
	return append(out, max)
}

// FigParallel — not a paper figure: Q4 (range query) latency under the
// three access methods as the read pipeline's worker bound grows. The
// scan path fans whole-block fetch + predicate evaluation across the
// pool, so it should speed up with workers until the disk or
// GOMAXPROCS saturates; the layered path parallelizes its per-block
// B+-tree probes, so its gain tracks the number of candidate blocks.
func FigParallel(dir string, scale float64) (*Table, error) {
	t := &Table{
		Title:  fmt.Sprintf("Fig. 23 — parallel read pipeline: Q4 latency at 1..%d workers", MaxWorkers),
		Header: []string{"workers", "scan", "bitmap", "layered"},
		Note:   "scan/bitmap should drop as workers grow; all methods return identical results",
	}
	blocks := scaled(2_000, scale, 40)
	result := scaled(10_000, scale, 200)
	e, err := NewEngine(filepath.Join(dir, "figp"), core.CacheNone)
	if err != nil {
		return nil, err
	}
	if e.Height() == 0 {
		err = LoadRange(e, GenConfig{
			Blocks: blocks, TxPerBlock: 100, ResultSize: result,
			Dist: Uniform, Seed: 1,
		})
	} else {
		err = e.CreateIndex("donate", "amount")
	}
	if err != nil {
		e.Close() //sebdb:ignore-err best-effort cleanup on the error path
		return nil, err
	}
	defer e.Close() //sebdb:ignore-err best-effort cleanup; reads only

	want := -1
	for _, w := range workerSteps(MaxWorkers) {
		e.SetParallelism(w)
		row := []string{fmt.Sprintf("%d", w)}
		for _, m := range []exec.Method{exec.MethodScan, exec.MethodBitmap, exec.MethodLayered} {
			// Each query runs as one recorder statement (a no-op while
			// TraceSample is 0, when Recorder() is nil), so this figure
			// with and without -trace-sample prices the recorder's
			// per-statement overhead on an otherwise identical workload.
			n, d, err := Timed(func() (int, error) {
				_, st := e.Recorder().Begin(context.Background(), "Q4 range "+m.String())
				st.SetStage("select")
				n, err := Q4(e, RangeLo, RangeHi, m)
				st.Finish(err)
				return n, err
			})
			if err != nil {
				return nil, err
			}
			if want < 0 {
				want = n
			}
			if n != want {
				return nil, fmt.Errorf("fig23: %s at %d workers returned %d rows, want %d", m, w, n, want)
			}
			row = append(row, ms(d))
		}
		t.AddRow(row...)
	}
	return t, nil
}
