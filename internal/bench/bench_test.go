package bench

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"sebdb/internal/core"
	"sebdb/internal/exec"
)

func TestResultPlacementUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	got := resultPlacement(GenConfig{Blocks: 10, ResultSize: 100, Dist: Uniform}, rng)
	counts := make([]int, 10)
	for _, b := range got {
		if b < 0 || b >= 10 {
			t.Fatalf("block %d out of range", b)
		}
		counts[b]++
	}
	for b, c := range counts {
		if c != 10 {
			t.Errorf("block %d got %d results, want 10", b, c)
		}
	}
}

func TestResultPlacementGaussian(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	got := resultPlacement(GenConfig{Blocks: 100, ResultSize: 1000, Dist: Gaussian, Sigma: 10}, rng)
	center, tails := 0, 0
	for _, b := range got {
		if b < 0 || b >= 100 {
			t.Fatalf("block %d out of range", b)
		}
		if b >= 40 && b < 60 {
			center++
		}
		if b < 20 || b >= 80 {
			tails++
		}
	}
	if center < tails*3 {
		t.Errorf("gaussian not concentrated: center=%d tails=%d", center, tails)
	}
}

func TestLoadTrackingCountsExact(t *testing.T) {
	e, err := NewEngine(t.TempDir(), core.CacheNone)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	cfg := GenConfig{Blocks: 10, TxPerBlock: 20, ResultSize: 50, Dist: Gaussian, Sigma: 3, Seed: 1}
	if err := LoadTracking(e, cfg); err != nil {
		t.Fatal(err)
	}
	n, err := Q2(e, "org1", exec.MethodLayered)
	if err != nil {
		t.Fatal(err)
	}
	if n != 50 {
		t.Errorf("Q2 = %d, want 50", n)
	}
	// All three methods agree.
	for _, m := range []exec.Method{exec.MethodScan, exec.MethodBitmap} {
		if n2, _ := Q2(e, "org1", m); n2 != 50 {
			t.Errorf("%v = %d", m, n2)
		}
	}
}

func TestLoadRangeAndJoinAndOnOff(t *testing.T) {
	e, err := NewEngine(t.TempDir(), core.CacheNone)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if err := LoadRange(e, GenConfig{Blocks: 8, TxPerBlock: 25, ResultSize: 40, Dist: Uniform, Seed: 2}); err != nil {
		t.Fatal(err)
	}
	for _, m := range []exec.Method{exec.MethodScan, exec.MethodBitmap, exec.MethodLayered} {
		n, err := Q4(e, RangeLo, RangeHi, m)
		if err != nil || n != 40 {
			t.Errorf("Q4 %v = %d, %v", m, n, err)
		}
	}

	e2, err := NewEngine(t.TempDir(), core.CacheNone)
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if err := LoadJoin(e2, 8, 40, 100, 30, Gaussian, 2, 3); err != nil {
		t.Fatal(err)
	}
	for _, m := range []exec.Method{exec.MethodScan, exec.MethodBitmap, exec.MethodLayered} {
		n, err := Q5(e2, m)
		if err != nil || n != 30 {
			t.Errorf("Q5 %v = %d, %v", m, n, err)
		}
	}

	e3, err := NewEngine(t.TempDir(), core.CacheNone)
	if err != nil {
		t.Fatal(err)
	}
	defer e3.Close()
	if err := LoadOnOff(e3, 8, 40, 100, 25, Uniform, 0, 4); err != nil {
		t.Fatal(err)
	}
	for _, m := range []exec.Method{exec.MethodScan, exec.MethodBitmap, exec.MethodLayered} {
		n, err := Q6(e3, m)
		if err != nil || n != 25 {
			t.Errorf("Q6 %v = %d, %v", m, n, err)
		}
	}
}

func TestLoadTwoDimCounts(t *testing.T) {
	e, err := NewEngine(t.TempDir(), core.CacheNone)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if err := LoadTwoDim(e, 10, 30, 20, 40, 40, Uniform, 0, 5); err != nil {
		t.Fatal(err)
	}
	// Both-dimension result = nBoth.
	n, err := Q3(e, "org1", "transfer", nil, true)
	if err != nil || n != 20 {
		t.Errorf("Q3 TI = %d, %v", n, err)
	}
	// Single-index path agrees.
	n, err = Q3(e, "org1", "transfer", nil, false)
	if err != nil || n != 20 {
		t.Errorf("Q3 SI = %d, %v", n, err)
	}
	// org1's total = nBoth + org1Only.
	n, err = Q2(e, "org1", exec.MethodLayered)
	if err != nil || n != 60 {
		t.Errorf("Q2 = %d, %v", n, err)
	}
}

func TestQ7(t *testing.T) {
	e, err := NewEngine(t.TempDir(), core.CacheNone)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if err := LoadTracking(e, GenConfig{Blocks: 5, TxPerBlock: 10, ResultSize: 10, Dist: Uniform, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if n, err := Q7(e, 2); err != nil || n != 1 {
		t.Errorf("Q7 = %d, %v", n, err)
	}
}

// TestFiguresSmoke regenerates every figure at a tiny scale, checking
// they complete and produce plausible tables.
func TestFiguresSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("figure smoke test is slow")
	}
	var buf bytes.Buffer
	if err := RunAll(&buf, t.TempDir(), 0.01); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"Fig. 7", "Fig. 8", "Fig. 9", "Fig. 10", "Fig. 11", "Fig. 12",
		"Fig. 13", "Fig. 14", "Fig. 15", "Fig. 16", "Fig. 17", "Fig. 18",
		"Fig. 19", "Fig. 20", "Fig. 21", "Fig. 22", "Fig. 23", "Fig. 24",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	t.Logf("figures output:\n%s", out)
}

func TestRunFigureUnknown(t *testing.T) {
	var buf bytes.Buffer
	if err := RunFigure(&buf, 99, t.TempDir(), 0.01); err == nil {
		t.Error("unknown figure accepted")
	}
}

func TestFigureNum(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want int
	}{
		{"7", 7}, {"24", 24}, {"parallel", 23}, {"recovery", 24},
	} {
		got, err := FigureNum(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("FigureNum(%q) = %d, %v; want %d", tc.in, got, err, tc.want)
		}
	}
	if _, err := FigureNum("nope"); err == nil {
		t.Error("unknown figure name accepted")
	}
}
