package bench

import (
	"fmt"
	"path/filepath"

	"sebdb/internal/core"
	"sebdb/internal/exec"
	"sebdb/internal/sqlparser"
)

// The Fig* functions regenerate the paper's evaluation figures as
// tables. scale shrinks the paper-scale parameters (1.0 = paper-like
// sizes, fit for a workstation; benches use ~0.05). Every function
// loads its datasets under dir and returns a printable Table.

// blockSizesFor returns the paper's 500..2500 block sweep, scaled.
func blockSizesFor(scale float64) []int {
	out := make([]int, 0, 5)
	for _, b := range []int{500, 1000, 1500, 2000, 2500} {
		out = append(out, scaled(b, scale, 10))
	}
	return out
}

// methodRuns are the SU/SG/BU/BG/LU/LG series of Figs. 8-16.
var methodRuns = []struct {
	m    exec.Method
	dist Distribution
}{
	{exec.MethodScan, Uniform}, {exec.MethodScan, Gaussian},
	{exec.MethodBitmap, Uniform}, {exec.MethodBitmap, Gaussian},
	{exec.MethodLayered, Uniform}, {exec.MethodLayered, Gaussian},
}

func methodHeader(x string) []string {
	return []string{x, "SU", "SG", "BU", "BG", "LU", "LG"}
}

// Fig8 — tracking (Q2) vs blockchain size; result fixed at 10,000.
func Fig8(dir string, scale float64) (*Table, error) {
	t := &Table{
		Title:  "Fig. 8 — Tracking (Q2) latency, varying blockchain size",
		Header: methodHeader("blocks"),
		Note:   "expect layered << bitmap << scan; Gaussian <= uniform for B/L",
	}
	result := scaled(10_000, scale, 60)
	for _, blocks := range blockSizesFor(scale) {
		row := []string{fmt.Sprintf("%d", blocks)}
		for _, run := range methodRuns {
			e, err := NewEngine(filepath.Join(dir, fmt.Sprintf("f8-%d-%s", blocks, run.dist)), core.CacheNone)
			if err != nil {
				return nil, err
			}
			if e.Height() == 0 {
				err = LoadTracking(e, GenConfig{
					Blocks: blocks, TxPerBlock: 100, ResultSize: result,
					Dist: run.dist, Sigma: 20, Seed: 1,
				})
				if err != nil {
					return nil, err
				}
			}
			n, d, err := Timed(func() (int, error) { return Q2(e, "org1", run.m) })
			e.Close() //sebdb:ignore-err best-effort cleanup on the error path
			if err != nil {
				return nil, err
			}
			if n != result {
				return nil, fmt.Errorf("fig8: got %d results, want %d", n, result)
			}
			row = append(row, ms(d))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// Fig9 — tracking (Q2) vs result size; 1,000 blocks, Gaussian σ=50.
func Fig9(dir string, scale float64) (*Table, error) {
	t := &Table{
		Title:  "Fig. 9 — Tracking (Q2) latency, varying result size",
		Header: methodHeader("results"),
		Note:   "method gap narrows as the result size grows",
	}
	blocks := scaled(1000, scale, 20)
	for _, paperN := range []int{2_000, 10_000, 50_000, 250_000, 1_250_000} {
		result := scaled(paperN, scale, 20)
		if result > blocks*2000 {
			result = blocks * 2000
		}
		txPerBlock := 100
		if need := result/blocks + 1; need > txPerBlock {
			txPerBlock = need
		}
		row := []string{fmt.Sprintf("%d", result)}
		for _, run := range methodRuns {
			e, err := NewEngine(filepath.Join(dir, fmt.Sprintf("f9-%d-%s", result, run.dist)), core.CacheNone)
			if err != nil {
				return nil, err
			}
			if e.Height() == 0 {
				err = LoadTracking(e, GenConfig{
					Blocks: blocks, TxPerBlock: txPerBlock, ResultSize: result,
					Dist: run.dist, Sigma: 50, Seed: 1,
				})
				if err != nil {
					return nil, err
				}
			}
			n, d, err := Timed(func() (int, error) { return Q2(e, "org1", run.m) })
			e.Close() //sebdb:ignore-err best-effort cleanup on the error path
			if err != nil {
				return nil, err
			}
			if n != result {
				return nil, fmt.Errorf("fig9: got %d results, want %d", n, result)
			}
			row = append(row, ms(d))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// Fig10 — two-dimension tracking (Q3) over shrinking time windows
// TW1..TW5; SI (index on operator only) vs TI (both indexes).
func Fig10(dir string, scale float64) (*Table, error) {
	t := &Table{
		Title:  "Fig. 10 — Two-dimension tracking (Q3) latency over time windows",
		Header: []string{"window", "SIU", "SIG", "TIU", "TIG"},
		Note:   "TI below SI; all methods speed up as the window shrinks",
	}
	blocks := scaled(1000, scale, 40)
	nBoth := scaled(1_000, scale, 20)
	extra := scaled(9_000, scale, 40)
	engines := map[Distribution]*core.Engine{}
	for _, dist := range []Distribution{Uniform, Gaussian} {
		e, err := NewEngine(filepath.Join(dir, fmt.Sprintf("f10-%s", dist)), core.CacheNone)
		if err != nil {
			return nil, err
		}
		defer e.Close() //sebdb:ignore-err benchmark scratch engine; teardown errors are immaterial
		if e.Height() == 0 {
			if err := LoadTwoDim(e, blocks, 40, nBoth, extra, extra, dist, 20, 1); err != nil {
				return nil, err
			}
		}
		engines[dist] = e
	}
	endTs := int64(blocks+1) * 1000
	for i := 1; i <= 5; i++ {
		startBlock := blocks - blocks/(1<<(i-1))
		win := &sqlparser.Window{Start: int64(startBlock+1) * 1000, End: endTs}
		if i == 1 {
			win.Start = 0
		}
		row := []string{fmt.Sprintf("TW%d", i)}
		for _, cfg := range []struct {
			two  bool
			dist Distribution
		}{{false, Uniform}, {false, Gaussian}, {true, Uniform}, {true, Gaussian}} {
			e := engines[cfg.dist]
			_, d, err := Timed(func() (int, error) {
				return Q3(e, "org1", "transfer", win, cfg.two)
			})
			if err != nil {
				return nil, err
			}
			row = append(row, ms(d))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// Fig11 — range query (Q4) vs blockchain size; result fixed 1,000.
func Fig11(dir string, scale float64) (*Table, error) {
	t := &Table{
		Title:  "Fig. 11 — Range query (Q4) latency, varying blockchain size",
		Header: methodHeader("blocks"),
		Note:   "layered wins on the selective range; scan grows with chain size",
	}
	result := scaled(1_000, scale, 40)
	for _, blocks := range blockSizesFor(scale) {
		row := []string{fmt.Sprintf("%d", blocks)}
		for _, run := range methodRuns {
			e, err := NewEngine(filepath.Join(dir, fmt.Sprintf("f11-%d-%s", blocks, run.dist)), core.CacheNone)
			if err != nil {
				return nil, err
			}
			if e.Height() == 0 {
				err = LoadRange(e, GenConfig{
					Blocks: blocks, TxPerBlock: 100, ResultSize: result,
					Dist: run.dist, Sigma: 20, Seed: 1,
				})
				if err != nil {
					return nil, err
				}
			} else if err := e.CreateIndex("donate", "amount"); err != nil {
				return nil, err
			}
			n, d, err := Timed(func() (int, error) { return Q4(e, RangeLo, RangeHi, run.m) })
			e.Close() //sebdb:ignore-err best-effort cleanup on the error path
			if err != nil {
				return nil, err
			}
			if n != result {
				return nil, fmt.Errorf("fig11: got %d results, want %d", n, result)
			}
			row = append(row, ms(d))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// Fig12 — range query (Q4) vs result size; 1,000 blocks.
func Fig12(dir string, scale float64) (*Table, error) {
	t := &Table{
		Title:  "Fig. 12 — Range query (Q4) latency, varying result size",
		Header: methodHeader("results"),
		Note:   "scan/bitmap insensitive to result size; layered grows with it",
	}
	blocks := scaled(1000, scale, 20)
	for _, paperN := range []int{1_000, 2_500, 5_000, 7_500, 10_000} {
		result := scaled(paperN, scale, 20)
		row := []string{fmt.Sprintf("%d", result)}
		for _, run := range methodRuns {
			e, err := NewEngine(filepath.Join(dir, fmt.Sprintf("f12-%d-%s", result, run.dist)), core.CacheNone)
			if err != nil {
				return nil, err
			}
			if e.Height() == 0 {
				err = LoadRange(e, GenConfig{
					Blocks: blocks, TxPerBlock: 100, ResultSize: result,
					Dist: run.dist, Sigma: 20, Seed: 1,
				})
				if err != nil {
					return nil, err
				}
			} else if err := e.CreateIndex("donate", "amount"); err != nil {
				return nil, err
			}
			n, d, err := Timed(func() (int, error) { return Q4(e, RangeLo, RangeHi, run.m) })
			e.Close() //sebdb:ignore-err best-effort cleanup on the error path
			if err != nil {
				return nil, err
			}
			if n != result {
				return nil, fmt.Errorf("fig12: got %d results, want %d", n, result)
			}
			row = append(row, ms(d))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// Fig13 — on-chain join (Q5) vs blockchain size; 10,000 rows per
// table, 5,000 join results.
func Fig13(dir string, scale float64) (*Table, error) {
	t := &Table{
		Title:  "Fig. 13 — On-chain join (Q5) latency, varying blockchain size",
		Header: methodHeader("blocks"),
		Note:   "layered compares only intersecting block pairs; LU grows with block count",
	}
	perTable := scaled(10_000, scale, 100)
	result := scaled(5_000, scale, 50)
	for _, blocks := range blockSizesFor(scale) {
		row := []string{fmt.Sprintf("%d", blocks)}
		for _, run := range methodRuns {
			e, err := NewEngine(filepath.Join(dir, fmt.Sprintf("f13-%d-%s", blocks, run.dist)), core.CacheNone)
			if err != nil {
				return nil, err
			}
			if e.Height() == 0 {
				err = LoadJoin(e, blocks, 100, perTable, result, run.dist, 20, 1)
				if err != nil {
					return nil, err
				}
			} else {
				if err := e.CreateIndex("transfer", "organization"); err != nil {
					return nil, err
				}
				if err := e.CreateIndex("distribute", "organization"); err != nil {
					return nil, err
				}
			}
			n, d, err := Timed(func() (int, error) { return Q5(e, run.m) })
			e.Close() //sebdb:ignore-err best-effort cleanup on the error path
			if err != nil {
				return nil, err
			}
			if n != result {
				return nil, fmt.Errorf("fig13: got %d results, want %d", n, result)
			}
			row = append(row, ms(d))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// Fig14 — on-chain join (Q5) vs result size; 1,000 blocks.
func Fig14(dir string, scale float64) (*Table, error) {
	t := &Table{
		Title:  "Fig. 14 — On-chain join (Q5) latency, varying result size",
		Header: methodHeader("results"),
		Note:   "layered latency grows with result size as more block pairs join",
	}
	blocks := scaled(1000, scale, 20)
	perTable := scaled(10_000, scale, 100)
	for _, paperN := range []int{1_000, 2_500, 5_000, 7_500, 10_000} {
		result := scaled(paperN, scale, 20)
		if result > perTable {
			result = perTable
		}
		row := []string{fmt.Sprintf("%d", result)}
		for _, run := range methodRuns {
			e, err := NewEngine(filepath.Join(dir, fmt.Sprintf("f14-%d-%s", result, run.dist)), core.CacheNone)
			if err != nil {
				return nil, err
			}
			if e.Height() == 0 {
				err = LoadJoin(e, blocks, 100, perTable, result, run.dist, 20, 1)
				if err != nil {
					return nil, err
				}
			} else {
				if err := e.CreateIndex("transfer", "organization"); err != nil {
					return nil, err
				}
				if err := e.CreateIndex("distribute", "organization"); err != nil {
					return nil, err
				}
			}
			n, d, err := Timed(func() (int, error) { return Q5(e, run.m) })
			e.Close() //sebdb:ignore-err best-effort cleanup on the error path
			if err != nil {
				return nil, err
			}
			if n != result {
				return nil, fmt.Errorf("fig14: got %d results, want %d", n, result)
			}
			row = append(row, ms(d))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// Fig15 — on-off-chain join (Q6) vs blockchain size.
func Fig15(dir string, scale float64) (*Table, error) {
	t := &Table{
		Title:  "Fig. 15 — On-off-chain join (Q6) latency, varying blockchain size",
		Header: methodHeader("blocks"),
		Note:   "layered reads only blocks the off-chain side's range/values flag",
	}
	onChain := scaled(10_000, scale, 100)
	result := scaled(5_000, scale, 50)
	for _, blocks := range blockSizesFor(scale) {
		row := []string{fmt.Sprintf("%d", blocks)}
		for _, run := range methodRuns {
			e, err := NewEngine(filepath.Join(dir, fmt.Sprintf("f15-%d-%s", blocks, run.dist)), core.CacheNone)
			if err != nil {
				return nil, err
			}
			if e.Height() == 0 {
				err = LoadOnOff(e, blocks, 100, onChain, result, run.dist, 20, 1)
				if err != nil {
					return nil, err
				}
			} else {
				if err := SetupOffChain(e.OffChain(), result); err != nil {
					return nil, err
				}
				if err := e.CreateIndex("distribute", "donee"); err != nil {
					return nil, err
				}
			}
			n, d, err := Timed(func() (int, error) { return Q6(e, run.m) })
			e.Close() //sebdb:ignore-err best-effort cleanup on the error path
			if err != nil {
				return nil, err
			}
			if n != result {
				return nil, fmt.Errorf("fig15: got %d results, want %d", n, result)
			}
			row = append(row, ms(d))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// Fig16 — on-off-chain join (Q6) vs result size; 1,000 blocks.
func Fig16(dir string, scale float64) (*Table, error) {
	t := &Table{
		Title:  "Fig. 16 — On-off-chain join (Q6) latency, varying result size",
		Header: methodHeader("results"),
		Note:   "layered grows with result size; scan/bitmap dominated by block reads",
	}
	blocks := scaled(1000, scale, 20)
	onChain := scaled(10_000, scale, 100)
	for _, paperN := range []int{1_000, 2_500, 5_000, 7_500, 10_000} {
		result := scaled(paperN, scale, 20)
		if result > onChain {
			result = onChain
		}
		row := []string{fmt.Sprintf("%d", result)}
		for _, run := range methodRuns {
			e, err := NewEngine(filepath.Join(dir, fmt.Sprintf("f16-%d-%s", result, run.dist)), core.CacheNone)
			if err != nil {
				return nil, err
			}
			if e.Height() == 0 {
				err = LoadOnOff(e, blocks, 100, onChain, result, run.dist, 20, 1)
				if err != nil {
					return nil, err
				}
			} else {
				if err := SetupOffChain(e.OffChain(), result); err != nil {
					return nil, err
				}
				if err := e.CreateIndex("distribute", "donee"); err != nil {
					return nil, err
				}
			}
			n, d, err := Timed(func() (int, error) { return Q6(e, run.m) })
			e.Close() //sebdb:ignore-err best-effort cleanup on the error path
			if err != nil {
				return nil, err
			}
			if n != result {
				return nil, fmt.Errorf("fig16: got %d results, want %d", n, result)
			}
			row = append(row, ms(d))
		}
		t.AddRow(row...)
	}
	return t, nil
}
