package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"sebdb/internal/clock"
	"sebdb/internal/core"
	"sebdb/internal/node"
	"sebdb/internal/obs"
)

// FigRecovery — not a paper figure: restart and fresh-node bootstrap
// time as the chain grows, with and without the checkpoint subsystem.
// A full-replay restart re-derives every index from the block log, so
// it grows linearly with chain height; a checkpointed restart seeds the
// derived state from the newest snapshot and replays only the
// post-checkpoint suffix. The same split shows up for a fresh node:
// fast-sync streams the peer's block bodies plus its checkpoint and
// opens without replaying, while a plain sync streams the same bodies
// and then pays the full rebuild.
func FigRecovery(dir string, scale float64) (*Table, error) {
	t := &Table{
		Title:  "Fig. 24 — recovery: restart and fresh-node sync time vs chain height",
		Header: []string{"blocks", "restart/ckpt", "restart/replay", "sync/fast", "sync/replay"},
		Note:   "restart/ckpt should stay near-flat while restart/replay grows; both sync columns stream every block, but sync/fast skips the index rebuild",
	}
	base := scaled(4_000, scale, 200)
	for _, blocks := range []int{base / 4, base / 2, base} {
		row, err := recoveryRow(dir, blocks)
		if err != nil {
			return nil, fmt.Errorf("fig24 at %d blocks: %w", blocks, err)
		}
		t.AddRow(row...)
	}
	return t, nil
}

// recoveryRow measures one chain height: it builds (or reuses) a
// checkpointed chain, times a checkpoint-seeded and a full-replay
// restart, then bootstraps two throwaway nodes from it — one by
// fast-sync, one by streaming blocks into a fresh engine.
func recoveryRow(dir string, blocks int) ([]string, error) {
	cfg := core.Config{
		Dir:            filepath.Join(dir, fmt.Sprintf("figr-%d", blocks)),
		HistogramDepth: 100,
		DefaultSender:  "bench",
	}
	e, err := core.Open(cfg)
	if err != nil {
		return nil, err
	}
	if e.Height() == 0 {
		err = LoadRange(e, GenConfig{
			Blocks: blocks, TxPerBlock: 20, ResultSize: blocks,
			Dist: Uniform, Seed: 1,
		})
		if err == nil {
			err = e.CreateAuthIndex("donate", "amount")
		}
	}
	if err == nil {
		err = e.WriteCheckpoint()
	}
	height := e.Height() // DDL blocks ride the chain, so height > blocks
	if err == nil {
		err = e.Close()
	} else {
		e.Close() //sebdb:ignore-err best-effort cleanup on the error path
	}
	if err != nil {
		return nil, err
	}

	// Restart with the checkpoint: Open seeds derived state from the
	// snapshot and replays only the (empty) suffix.
	start := time.Now()
	e, err = core.Open(cfg)
	dCkpt := time.Since(start)
	if err != nil {
		return nil, err
	}
	if e.Height() != height {
		e.Close() //sebdb:ignore-err best-effort cleanup on the error path
		return nil, fmt.Errorf("checkpointed restart at height %d, want %d", e.Height(), height)
	}

	// Bootstrap two fresh nodes from the restarted engine, served as an
	// in-process peer so the figure measures recovery, not socket noise.
	src := node.New(e)
	peer := &node.Local{Node: src, Name: "src"}
	dFast, err := timeFastSync(dir, peer, height)
	var dRepl time.Duration
	if err == nil {
		dRepl, err = timeReplaySync(dir, peer, height)
	}
	if err == nil {
		err = src.Close()
	} else {
		src.Close() //sebdb:ignore-err best-effort cleanup on the error path
	}
	if err == nil {
		err = e.Close()
	} else {
		e.Close() //sebdb:ignore-err best-effort cleanup on the error path
	}
	if err != nil {
		return nil, err
	}

	// Restart again with the checkpoint ignored: the engine rebuilds
	// every index by replaying the whole chain.
	full := cfg
	full.DisableCheckpointLoad = true
	start = time.Now()
	e, err = core.Open(full)
	dFull := time.Since(start)
	if err != nil {
		return nil, err
	}
	if err := e.Close(); err != nil {
		return nil, err
	}
	return []string{
		fmt.Sprintf("%d", blocks), ms(dCkpt), ms(dFull), ms(dFast), ms(dRepl),
	}, nil
}

// timeFastSync bootstraps a throwaway node from the peer's checkpoint
// and times the transfer plus the checkpoint-seeded open.
func timeFastSync(dir string, peer node.QueryNode, height uint64) (time.Duration, error) {
	syncDir, err := os.MkdirTemp(dir, "figr-fast-*")
	if err != nil {
		return 0, err
	}
	defer os.RemoveAll(syncDir) //sebdb:ignore-err throwaway bootstrap directory

	reg := obs.NewRegistry(clock.UnixMicro)
	start := time.Now()
	if _, err := node.FastSync(syncDir, peer, reg); err != nil {
		return 0, err
	}
	e, err := core.Open(core.Config{Dir: syncDir, HistogramDepth: 100, Obs: reg})
	if err != nil {
		return 0, err
	}
	d := time.Since(start)
	defer e.Close() //sebdb:ignore-err throwaway engine; reads only
	if e.Height() != height {
		return 0, fmt.Errorf("fast-synced height %d, want %d", e.Height(), height)
	}
	if n := reg.Counter("sebdb_snapshot_suffix_blocks").Value(); n != 0 {
		return 0, fmt.Errorf("fast-synced open replayed %d blocks", n)
	}
	return d, nil
}

// timeReplaySync bootstraps a throwaway node without the checkpoint:
// it streams the peer's blocks into a fresh engine and then builds the
// same user indexes the checkpoint would have delivered — the
// pre-checkpoint baseline for reaching an equivalent serving state.
func timeReplaySync(dir string, peer node.QueryNode, height uint64) (time.Duration, error) {
	syncDir, err := os.MkdirTemp(dir, "figr-repl-*")
	if err != nil {
		return 0, err
	}
	defer os.RemoveAll(syncDir) //sebdb:ignore-err throwaway bootstrap directory

	start := time.Now()
	e, err := core.Open(core.Config{Dir: syncDir, HistogramDepth: 100})
	if err != nil {
		return 0, err
	}
	defer e.Close() //sebdb:ignore-err throwaway engine; reads only
	for h := uint64(0); h < height; h++ {
		b, err := peer.BlockAt(h)
		if err != nil {
			return 0, err
		}
		if err := e.ApplyBlock(b); err != nil {
			return 0, err
		}
	}
	if err := e.CreateIndex("donate", "amount"); err != nil {
		return 0, err
	}
	if err := e.CreateAuthIndex("donate", "amount"); err != nil {
		return 0, err
	}
	d := time.Since(start)
	if e.Height() != height {
		return 0, fmt.Errorf("replay-synced height %d, want %d", e.Height(), height)
	}
	return d, nil
}
