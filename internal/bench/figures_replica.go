package bench

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"sync"
	"time"

	"sebdb/internal/core"
	"sebdb/internal/exec"
	"sebdb/internal/node"
	"sebdb/internal/replica"
	"sebdb/internal/types"
)

// FigReplicas — not a paper figure: aggregate verified read throughput
// versus read-replica count. One leader serves a TCP block stream;
// followers bootstrap from empty directories, tail it, re-verify and
// apply every pushed block, and serve Q4 from their own height-pinned
// views. Each sweep measures the fleet's aggregate reads/s while the
// leader commits filler blocks beside the readers, plus the replication
// lag the moment the writer stops — the bounded-staleness number the
// replication contract promises.
func FigReplicas(dir string, scale float64) (*Table, error) {
	t := &Table{
		Title:  "Fig. 26 — read replicas: aggregate Q4 reads/s vs replica count under a committing leader",
		Header: []string{"replicas", "reads", "reads/s", "blocks committed", "lag at writer stop"},
		Note:   "replicas serve verified reads from their own height-pinned views; 0 replicas = all reads on the leader; lag is leader height minus the slowest follower's the moment the writer stops",
	}
	blocks := scaled(300, scale, 20)
	result := scaled(5_000, scale, 100)
	commits := scaled(60, scale, 8)
	counts := []int{0, 1, 2, 4}
	maxReplicas := counts[len(counts)-1]

	leaderEng, err := NewEngine(filepath.Join(dir, "figrep", "leader"), core.CacheNone)
	if err != nil {
		return nil, err
	}
	defer leaderEng.Close() //sebdb:ignore-err best-effort cleanup; the scratch dataset is disposable
	if leaderEng.Height() == 0 {
		err = LoadRange(leaderEng, GenConfig{
			Blocks: blocks, TxPerBlock: 100, ResultSize: result,
			Dist: Uniform, Seed: 1,
		})
	} else {
		err = leaderEng.CreateIndex("donate", "amount")
	}
	if err != nil {
		return nil, err
	}

	leader := node.New(leaderEng)
	leader.Replication().SetHeartbeat(50 * time.Millisecond)
	addr, err := leader.Serve("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer leader.Close() //sebdb:ignore-err best-effort node teardown after the sweep

	// Start the full fleet once; each sweep reads from a prefix of it.
	// Followers keep tailing between sweeps, so later sweeps start
	// converged — exactly how a standing fleet behaves.
	repEngs := make([]*core.Engine, maxReplicas)
	followers := make([]*replica.Follower, maxReplicas)
	defer func() {
		for i := range followers {
			if followers[i] != nil {
				followers[i].Stop()
			}
			if repEngs[i] != nil {
				repEngs[i].Close() //sebdb:ignore-err best-effort cleanup; the scratch dataset is disposable
			}
		}
	}()
	for i := range repEngs {
		repEngs[i], err = NewEngine(filepath.Join(dir, "figrep", fmt.Sprintf("rep%d", i)), core.CacheNone)
		if err != nil {
			return nil, err
		}
		repEngs[i].SetFollower(true)
		followers[i] = replica.StartFollower(repEngs[i], replica.FollowerConfig{
			Leader:    addr,
			Heartbeat: 50 * time.Millisecond,
			Backoff:   20 * time.Millisecond,
		})
	}
	converge := func() error {
		deadline := time.Now().Add(60 * time.Second)
		for {
			want := leaderEng.Height()
			behind := false
			for _, re := range repEngs {
				if re.Height() < want {
					behind = true
					break
				}
			}
			if !behind {
				return nil
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("fig26: fleet did not converge to height %d", want)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	if err := converge(); err != nil {
		return nil, err
	}
	// The layered index is node-local configuration, not chain state
	// (the trust model forbids installing peer index contents); each
	// follower creates its own and backfills from its verified chain.
	for _, re := range repEngs {
		if err := re.CreateIndex("donate", "amount"); err != nil {
			return nil, err
		}
	}

	// Filler blocks with amounts strictly below the Q4 window: the
	// answer set stays identical on every node at every height.
	rng := rand.New(rand.NewSource(2))
	fillerBlock := func() []*types.Transaction {
		txs := make([]*types.Transaction, 100)
		for i := range txs {
			txs[i] = &types.Transaction{
				SenID: fmt.Sprintf("org%d", 2+rng.Intn(20)),
				Tname: "donate",
				Args: []types.Value{
					types.Str(fmt.Sprintf("donor%06d", rng.Intn(1_000_000))),
					types.Str("education"),
					types.Dec(float64(rng.Intn(RangeLo - 1))),
				},
			}
		}
		return txs
	}

	for _, count := range counts {
		fleet := []*core.Engine{leaderEng}
		if count > 0 {
			fleet = repEngs[:count]
		}
		if err := converge(); err != nil {
			return nil, err
		}

		done := make(chan struct{})
		var wErr error
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer close(done)
			for i := 0; i < commits; i++ {
				if _, err := leaderEng.CommitBlock(fillerBlock(), 0); err != nil {
					wErr = err
					return
				}
			}
		}()

		// One reader goroutine per fleet engine, all racing the writer
		// (and, on the replicas, the apply loop). Each reader runs until
		// the writer is done AND it has met a minimum quota, so a sweep
		// at tiny scale still measures real reads.
		minReads := scaled(50, scale, 5)
		readCounts := make([]int, len(fleet))
		readErrs := make([]error, len(fleet))
		var rg sync.WaitGroup
		start := time.Now()
		for i, re := range fleet {
			rg.Add(1)
			go func(i int, re *core.Engine) {
				defer rg.Done()
				want := -1
				reads := 0
				defer func() { readCounts[i] = reads }()
				for {
					if reads >= minReads {
						select {
						case <-done:
							return
						default:
						}
					}
					n, err := Q4(re, RangeLo, RangeHi, exec.MethodLayered)
					if err != nil {
						readErrs[i] = err
						return
					}
					if want < 0 {
						want = n
					}
					if n != want {
						readErrs[i] = fmt.Errorf("fig26: node %d read returned %d rows, want %d", i, n, want)
						return
					}
					reads++
				}
			}(i, re)
		}
		rg.Wait()
		elapsed := time.Since(start).Seconds()
		wg.Wait()
		if wErr != nil {
			return nil, fmt.Errorf("fig26: concurrent commit: %w", wErr)
		}
		// Lag at the instant the writer stopped: how far the slowest
		// follower trails the leader before catch-up.
		lag := uint64(0)
		lh := leaderEng.Height()
		for _, re := range repEngs[:count] {
			if h := re.Height(); lh > h && lh-h > lag {
				lag = lh - h
			}
		}
		for i, err := range readErrs {
			if err != nil {
				return nil, fmt.Errorf("fig26: reader on node %d: %w", i, err)
			}
		}
		total := 0
		for _, n := range readCounts {
			total += n
		}
		t.AddRow(fmt.Sprintf("%d", count), fmt.Sprintf("%d", total),
			fmt.Sprintf("%.0f", float64(total)/elapsed),
			fmt.Sprintf("%d", commits), fmt.Sprintf("%d", lag))
	}
	return t, nil
}
