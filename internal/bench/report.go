package bench

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// Table is a printable benchmark result: one row per x-axis point, one
// column per series, mirroring the paper's figures.
type Table struct {
	// Title identifies the experiment, e.g. "Fig. 8 — Tracking, varying
	// blockchain size".
	Title string
	// Header names the columns; Header[0] is the x-axis label.
	Header []string
	// Rows hold the cells, already formatted.
	Rows [][]string
	// Note carries the expected shape, printed under the table.
	Note string
}

// AddRow appends one formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "\n%s\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintf(w, "  %s\n", strings.Join(parts, "  "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	if t.Note != "" {
		fmt.Fprintf(w, "  note: %s\n", t.Note)
	}
}

// ms formats a duration in milliseconds with sensible precision.
func ms(d time.Duration) string {
	v := float64(d.Microseconds()) / 1000
	switch {
	case v >= 100:
		return fmt.Sprintf("%.0fms", v)
	case v >= 1:
		return fmt.Sprintf("%.2fms", v)
	default:
		return fmt.Sprintf("%.3fms", v)
	}
}

// kb formats a byte count.
func kb(n int) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// scaled multiplies a paper-scale quantity by the harness scale,
// keeping at least min.
func scaled(paper int, scale float64, min int) int {
	v := int(float64(paper) * scale)
	if v < min {
		return min
	}
	return v
}
