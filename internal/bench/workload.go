package bench

import (
	"fmt"
	"math/rand"
	"time"

	"sebdb/internal/core"
	"sebdb/internal/exec"
	"sebdb/internal/sqlparser"
	"sebdb/internal/types"
)

// This file implements the BChainBench workload of Table II:
//
//	Q1  INSERT INTO donate VALUES(?,?,?)
//	Q2  TRACE OPERATOR = "org1"
//	Q3  TRACE [start,end] OPERATOR = "org1", OPERATION = "transfer"
//	Q4  SELECT * FROM donate WHERE amount BETWEEN ? AND ?
//	Q5  SELECT * FROM transfer, distribute ON
//	      transfer.organization = distribute.organization
//	Q6  SELECT * FROM onchain.distribute, offchain.doneeinfo ON
//	      distribute.donee = doneeinfo.donee
//	Q7  GET BLOCK ID=?
//
// Each runner takes the access method so the harness can reproduce the
// paper's scan / bitmap / layered comparisons, and returns the result
// count plus the elapsed wall time.

// Timed measures f's wall time, reporting the fastest of three runs to
// damp page-cache and scheduler noise.
func Timed(f func() (int, error)) (int, time.Duration, error) {
	var best time.Duration
	var n int
	for r := 0; r < 3; r++ {
		start := time.Now()
		var err error
		n, err = f()
		d := time.Since(start)
		if err != nil {
			return n, d, err
		}
		if r == 0 || d < best {
			best = d
		}
	}
	return n, best, nil
}

// Q1Tx builds one donate transaction for the write benchmark.
func Q1Tx(e *core.Engine, rng *rand.Rand, sender string) (*types.Transaction, error) {
	return e.NewTransaction(sender, "donate", []types.Value{
		types.Str(fmt.Sprintf("donor%06d", rng.Intn(1_000_000))),
		types.Str("education"),
		types.Dec(float64(rng.Intn(10_000))),
	})
}

// Q2 tracks all transactions of an operator.
func Q2(e *core.Engine, operator string, m exec.Method) (int, error) {
	q := &sqlparser.Trace{Operator: operator, HasOperator: true}
	txs, _, err := exec.Track(e, q, m)
	return len(txs), err
}

// Q3 tracks an operator's operations of one type in a time window.
// twoIndexes selects the TI runs (both SenID and Tname layered indexes
// drive Algorithm 1) versus the SI runs (only the SenID index; the
// operation dimension is filtered on the fetched transactions).
func Q3(e *core.Engine, operator, operation string, win *sqlparser.Window, twoIndexes bool) (int, error) {
	if twoIndexes {
		q := &sqlparser.Trace{
			Operator: operator, HasOperator: true,
			Operation: operation, HasOperation: true,
			Window: win,
		}
		txs, _, err := exec.Track(e, q, exec.MethodLayered)
		return len(txs), err
	}
	// Single index: track the operator, then filter the operation
	// client-side on the fetched transactions.
	q := &sqlparser.Trace{Operator: operator, HasOperator: true, Window: win}
	txs, _, err := exec.Track(e, q, exec.MethodLayered)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, tx := range txs {
		if tx.Tname == operation {
			n++
		}
	}
	return n, nil
}

// Q4 runs the range query on donate.amount.
func Q4(e *core.Engine, lo, hi float64, m exec.Method) (int, error) {
	preds := []sqlparser.Pred{{
		Col: "amount", Op: sqlparser.OpBetween,
		Val: types.Dec(lo), Hi: types.Dec(hi),
	}}
	txs, _, err := exec.Select(e, "donate", preds, nil, m)
	return len(txs), err
}

// Q5 joins transfer and distribute on organization.
func Q5(e *core.Engine, m exec.Method) (int, error) {
	rows, _, err := exec.OnChainJoin(e, "transfer", "distribute",
		"organization", "organization", nil, m)
	return len(rows), err
}

// Q6 joins on-chain distribute with off-chain doneeinfo on donee.
func Q6(e *core.Engine, m exec.Method) (int, error) {
	rows, _, err := exec.OnOffJoin(e, e.OffChain(), "distribute", "donee",
		"doneeinfo", "donee", nil, m)
	return len(rows), err
}

// Q7 fetches one block by id through the SQL surface.
func Q7(e *core.Engine, id uint64) (int, error) {
	res, err := e.Execute(fmt.Sprintf(`GET BLOCK ID=%d`, id))
	if err != nil {
		return 0, err
	}
	return len(res.Rows), nil
}
