package bench

import (
	"fmt"
	"math"
	"math/rand"

	"sebdb/internal/core"
	"sebdb/internal/obs"
	"sebdb/internal/types"
)

// Distribution selects how resulting transactions spread over blocks —
// the generator's time dimension (§VII-A).
type Distribution int

const (
	// Uniform spreads result transactions evenly across all blocks.
	Uniform Distribution = iota
	// Gaussian concentrates them around the middle block ("mean equals
	// the middle of block" in the paper) with configurable variance.
	Gaussian
)

// String names the distribution like the figure legends (U/G).
func (d Distribution) String() string {
	if d == Gaussian {
		return "G"
	}
	return "U"
}

// GenConfig parameterises one dataset.
type GenConfig struct {
	// Blocks is the chain size in blocks.
	Blocks int
	// TxPerBlock is the base number of transactions per block.
	TxPerBlock int
	// ResultSize is how many transactions satisfy the benchmark query.
	ResultSize int
	// Dist places the result transactions over blocks.
	Dist Distribution
	// Sigma is the Gaussian std-dev in blocks (paper: 20, or 50 for the
	// large result sizes of Fig. 9).
	Sigma float64
	// Seed fixes the generator.
	Seed int64
}

// resultPlacement assigns each result transaction a block id.
func resultPlacement(cfg GenConfig, rng *rand.Rand) []int {
	out := make([]int, cfg.ResultSize)
	switch cfg.Dist {
	case Gaussian:
		mean := float64(cfg.Blocks) / 2
		sigma := cfg.Sigma
		if sigma <= 0 {
			sigma = 20
		}
		for i := range out {
			b := int(math.Round(rng.NormFloat64()*sigma + mean))
			if b < 0 {
				b = 0
			}
			if b >= cfg.Blocks {
				b = cfg.Blocks - 1
			}
			out[i] = b
		}
	default:
		for i := range out {
			out[i] = i * cfg.Blocks / cfg.ResultSize
			if out[i] >= cfg.Blocks {
				out[i] = cfg.Blocks - 1
			}
		}
	}
	return out
}

// TxSpec describes one generated transaction.
type TxSpec struct {
	// Result marks the transaction as part of the query's answer.
	Result bool
	// Block is the block it lands in; Ts is derived from it.
	Block int
}

// TxMaker builds a transaction from its spec; the workload loaders
// plug in per-figure logic (which sender, which table, which amount).
type TxMaker func(spec TxSpec, rng *rand.Rand) *types.Transaction

// Load builds the chain: every block gets its base TxPerBlock filler
// transactions plus the result transactions placed by the
// distribution. Block b is committed at timestamp (b+1)*1000 and every
// transaction in it carries that timestamp, giving the workloads a
// deterministic time axis for window queries.
func Load(e *core.Engine, cfg GenConfig, mk TxMaker) error {
	if cfg.Blocks <= 0 {
		return fmt.Errorf("bench: config needs blocks")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	perBlock := make([][]*types.Transaction, cfg.Blocks)
	for _, b := range resultPlacement(cfg, rng) {
		tx := mk(TxSpec{Result: true, Block: b}, rng)
		tx.Ts = int64(b+1) * 1000
		perBlock[b] = append(perBlock[b], tx)
	}
	for b := 0; b < cfg.Blocks; b++ {
		for len(perBlock[b]) < cfg.TxPerBlock {
			tx := mk(TxSpec{Result: false, Block: b}, rng)
			tx.Ts = int64(b+1) * 1000
			perBlock[b] = append(perBlock[b], tx)
		}
		if _, err := e.CommitBlock(perBlock[b], int64(b+1)*1000); err != nil {
			return err
		}
		perBlock[b] = nil // release while loading large chains
	}
	return nil
}

// Placement exposes the distribution machinery for loaders with more
// than one transaction class (e.g. Fig. 10's transfer/org1 overlap): it
// returns a block id for each of n transactions.
func Placement(n, blocks int, dist Distribution, sigma float64, rng *rand.Rand) []int {
	return resultPlacement(GenConfig{Blocks: blocks, ResultSize: n, Dist: dist, Sigma: sigma}, rng)
}

// CommitChain commits pre-built per-block transaction lists on the
// canonical time axis (block b at ts (b+1)*1000, transactions stamped
// with their block's timestamp).
func CommitChain(e *core.Engine, perBlock [][]*types.Transaction) error {
	for b := range perBlock {
		for _, tx := range perBlock[b] {
			tx.Ts = int64(b+1) * 1000
		}
		if _, err := e.CommitBlock(perBlock[b], int64(b+1)*1000); err != nil {
			return err
		}
	}
	return nil
}

// TraceSample wires a flight recorder into benchmark engines, tracing
// one statement in every TraceSample; 0 (the default) leaves the
// recorder out entirely so figures measure the bare engine.
// bchainbench's -trace-sample flag sets it, which makes the recorder's
// overhead measurable: compare `-fig 23` against
// `-fig 23 -trace-sample N`.
var TraceSample int

// NewEngine opens a fresh engine in dir with benchmark-friendly
// settings (histogram depth 100 as in §VII-D; cache off by default so
// access-path comparisons measure I/O).
func NewEngine(dir string, cache core.CacheMode) (*core.Engine, error) {
	cfg := core.Config{
		Dir:            dir,
		HistogramDepth: 100,
		CacheMode:      cache,
		DefaultSender:  "bench",
	}
	if TraceSample > 0 {
		cfg.Recorder = obs.NewRecorder(obs.RecorderConfig{SampleEvery: TraceSample})
	}
	return core.Open(cfg)
}
