package bench

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"sync"
	"time"

	"sebdb/internal/core"
	"sebdb/internal/exec"
	"sebdb/internal/types"
)

// FigReadView — not a paper figure: read throughput of the height-
// pinned view path with the commit pipeline idle versus running flat
// out. Readers pin an immutable view per query and never touch the
// engine lock, so the committing phase should hold roughly the idle
// phase's reads/s; before the view refactor every read serialised
// behind e.mu and collapsed whenever a writer held it.
func FigReadView(dir string, scale float64) (*Table, error) {
	t := &Table{
		Title:  "Fig. 25 — height-pinned views: Q4 reads/s, idle vs during commits",
		Header: []string{"phase", "reads", "reads/s", "blocks committed"},
		Note:   "reads keep flowing while the writer commits (flat on multi-core hosts; on few cores the drop is CPU sharing, not lock waits); both phases return identical results",
	}
	blocks := scaled(500, scale, 20)
	result := scaled(5_000, scale, 100)
	iters := scaled(300, scale, 40)

	e, err := NewEngine(filepath.Join(dir, "figrv"), core.CacheNone)
	if err != nil {
		return nil, err
	}
	defer e.Close() //sebdb:ignore-err best-effort cleanup; the scratch dataset is disposable

	if e.Height() == 0 {
		err = LoadRange(e, GenConfig{
			Blocks: blocks, TxPerBlock: 100, ResultSize: result,
			Dist: Uniform, Seed: 1,
		})
	} else {
		err = e.CreateIndex("donate", "amount")
	}
	if err != nil {
		return nil, err
	}

	// Filler blocks the writer appends during the committing phase:
	// amounts strictly below the Q4 window, so the answer set — and with
	// it the work per read — is identical in both phases.
	rng := rand.New(rand.NewSource(2))
	fillerBlock := func() []*types.Transaction {
		txs := make([]*types.Transaction, 100)
		for i := range txs {
			txs[i] = &types.Transaction{
				SenID: fmt.Sprintf("org%d", 2+rng.Intn(20)),
				Tname: "donate",
				Args: []types.Value{
					types.Str(fmt.Sprintf("donor%06d", rng.Intn(1_000_000))),
					types.Str("education"),
					types.Dec(float64(rng.Intn(RangeLo - 1))),
				},
			}
		}
		return txs
	}

	// measure runs Q4 through the pinned-view path until keepGoing says
	// stop, demanding the identical answer from every read.
	measure := func(keepGoing func(reads int) bool) (reads int, qps float64, err error) {
		want := -1
		start := time.Now()
		for keepGoing(reads) {
			n, err := Q4(e, RangeLo, RangeHi, exec.MethodLayered)
			if err != nil {
				return 0, 0, err
			}
			if want < 0 {
				want = n
			}
			if n != want {
				return 0, 0, fmt.Errorf("fig25: read %d returned %d rows, want %d", reads, n, want)
			}
			reads++
		}
		return reads, float64(reads) / time.Since(start).Seconds(), nil
	}

	// Phase one: no writer, a fixed read count.
	reads, qps, err := measure(func(r int) bool { return r < iters })
	if err != nil {
		return nil, err
	}
	t.AddRow("idle", fmt.Sprintf("%d", reads), fmt.Sprintf("%.0f", qps), "0")

	// Phase two: the writer commits a fixed run of blocks while the
	// readers loop beside it, so every read of this phase races a live
	// commit pipeline.
	commits := scaled(100, scale, 10)
	done := make(chan struct{})
	var wErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(done)
		for i := 0; i < commits; i++ {
			if _, err := e.CommitBlock(fillerBlock(), 0); err != nil {
				wErr = err
				return
			}
		}
	}()
	writerDone := func(int) bool {
		select {
		case <-done:
			return false
		default:
			return true
		}
	}
	reads, qps, err = measure(writerDone)
	wg.Wait()
	if err != nil {
		return nil, err
	}
	if wErr != nil {
		return nil, fmt.Errorf("fig25: concurrent commit: %w", wErr)
	}
	t.AddRow("committing", fmt.Sprintf("%d", reads), fmt.Sprintf("%.0f", qps), fmt.Sprintf("%d", commits))
	return t, nil
}
