package bench

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math/rand"
	"path/filepath"
	"time"

	"sebdb/internal/core"
)

// FigStorage — not a paper figure: the tiered storage read path. One
// chain (fixed seed, small segments so it spans many files) is built
// four times and read through every tier combination: the pread and
// mmap segment backends, each over plain and recompressed segments.
// Each row reports a cold full scan, a batch of tuple-sized point
// reads, the on-disk footprint, and a digest folded over every block
// read — the digests must agree across all four rows, which is the
// byte-equivalence check that the tier never changes an answer.
func FigStorage(dir string, scale float64) (*Table, error) {
	t := &Table{
		Title:  "Fig. 27 — storage tiers: scan/point-read latency and footprint per backend",
		Header: []string{"tier", "cold scan", "point reads", "disk KB", "digest"},
		Note:   "mmap should meet or beat pread on cold scans; compressed rows shrink disk KB; digests must be identical",
	}
	blocks := scaled(1_200, scale, 60)
	// Every variant reads the SAME directory in sequence — the plain
	// rows first, then the in-place recompression, then the compressed
	// rows — so the digests compare reads of one chain, not four
	// separately built ones.
	chainDir := filepath.Join(dir, fmt.Sprintf("f27-%d", blocks))
	variants := []struct {
		name     string
		mmap     bool
		compress bool
	}{
		{"pread/plain", false, false},
		{"mmap/plain", true, false},
		{"pread/compressed", false, true},
		{"mmap/compressed", true, true},
	}
	var digest0 string
	for _, v := range variants {
		row, digest, err := storageRow(chainDir, blocks, v.mmap, v.compress)
		if err != nil {
			return nil, fmt.Errorf("fig27 %s: %w", v.name, err)
		}
		if digest0 == "" {
			digest0 = digest
		} else if digest != digest0 {
			return nil, fmt.Errorf("fig27 %s: digest %s diverges from %s — tiers returned different bytes",
				v.name, digest, digest0)
		}
		t.AddRow(append([]string{v.name}, row...)...)
	}
	return t, nil
}

// storageRow builds (or reuses) one chain variant and measures it. The
// chain content is seed-determined, so every variant is block-for-block
// identical before the tier treatment; compression then only changes
// the encoding at rest, never the bytes a read returns.
func storageRow(dir string, blocks int, mmap, compress bool) ([]string, string, error) {
	cfg := core.Config{
		Dir:            dir,
		HistogramDepth: 100,
		CacheMode:      core.CacheNone,
		DefaultSender:  "bench",
		SegmentSize:    64 << 10, // many small segments, so tiers matter
		Mmap:           mmap,
	}
	e, err := core.Open(cfg)
	if err != nil {
		return nil, "", err
	}
	defer e.Close() //sebdb:ignore-err read-mostly benchmark engine
	if e.Height() == 0 {
		err = LoadTracking(e, GenConfig{
			Blocks: blocks, TxPerBlock: 40, ResultSize: blocks * 10,
			Dist: Uniform, Seed: 1,
		})
		if err != nil {
			return nil, "", err
		}
	}
	if compress {
		// Synchronous recompression of every sealed segment, so the
		// timings below never race a background rewrite.
		if err := e.CompressSealed(1); err != nil {
			return nil, "", err
		}
	}
	disk, err := e.DiskBytes()
	if err != nil {
		return nil, "", err
	}

	// Cold scan: every block through the store with the cache off,
	// folding the encoded bytes into the cross-tier digest.
	h := sha256.New()
	n := e.NumBlocks()
	txs := make([]int, n) // per-block tx counts (DDL blocks are short)
	start := time.Now()
	for bid := 0; bid < n; bid++ {
		b, err := e.Block(uint64(bid))
		if err != nil {
			return nil, "", err
		}
		h.Write(b.EncodeBytes()) //sebdb:ignore-err hash.Hash.Write never fails
		txs[bid] = len(b.Txs)
	}
	dScan := time.Since(start)

	// Point reads: tuple-sized random transaction lookups, the access
	// pattern Equation 3 prices as p*(t_S + t_T).
	rng := rand.New(rand.NewSource(7))
	const points = 2_000
	start = time.Now()
	for i := 0; i < points; i++ {
		bid := rng.Intn(n)
		if _, err := e.Tx(uint64(bid), uint32(rng.Intn(txs[bid]))); err != nil {
			return nil, "", err
		}
	}
	dPoint := time.Since(start)

	digest := hex.EncodeToString(h.Sum(nil))[:12]
	return []string{
		ms(dScan), ms(dPoint), fmt.Sprintf("%d", disk/1024), digest,
	}, digest, nil
}
