package bench

import (
	"fmt"
	"io"
	"strconv"
)

// Figure is one reproducible experiment.
type Figure struct {
	// Num is the paper's figure number.
	Num int
	// Run regenerates it: datasets under dir, sizes scaled by scale.
	Run func(dir string, scale float64) (*Table, error)
}

// Figures lists every evaluation figure of the paper in order, plus
// five of our own: 23, the parallel read pipeline's worker-scaling
// sweep; 24, the checkpoint subsystem's restart/fast-sync recovery
// sweep (the paper's runs are single-threaded and replay the full chain
// on every start); 25, read throughput through the height-pinned views
// while the commit pipeline runs beside the readers; 26, aggregate
// read throughput across a streaming-replication fleet versus replica
// count; and 27, the tiered storage read path (pread vs mmap backends
// over plain vs recompressed segments).
var Figures = []Figure{
	{7, Fig7}, {8, Fig8}, {9, Fig9}, {10, Fig10}, {11, Fig11},
	{12, Fig12}, {13, Fig13}, {14, Fig14}, {15, Fig15}, {16, Fig16},
	{17, Fig17}, {18, Fig18}, {19, Fig19}, {20, Fig20}, {21, Fig21},
	{22, Fig22}, {23, FigParallel}, {24, FigRecovery}, {25, FigReadView},
	{26, FigReplicas}, {27, FigStorage},
}

// figureNames maps the named (non-paper) figures to their numbers, so
// `bchainbench -fig recovery` works without remembering the numbering.
var figureNames = map[string]int{
	"parallel": 23,
	"recovery": 24,
	"readview": 25,
	"replicas": 26,
	"storage":  27,
}

// FigureNum resolves a figure selector: either a figure number or the
// name of one of the non-paper figures ("parallel", "recovery",
// "readview", "replicas", "storage").
func FigureNum(s string) (int, error) {
	if n, err := strconv.Atoi(s); err == nil {
		return n, nil
	}
	if n, ok := figureNames[s]; ok {
		return n, nil
	}
	return 0, fmt.Errorf("bench: unknown figure %q (want 7..27, \"parallel\", \"recovery\", \"readview\", \"replicas\" or \"storage\")", s)
}

// FigureTable regenerates one figure by number and returns its table.
func FigureTable(num int, dir string, scale float64) (*Table, error) {
	for _, f := range Figures {
		if f.Num == num {
			t, err := f.Run(dir, scale)
			if err != nil {
				return nil, fmt.Errorf("fig %d: %w", num, err)
			}
			return t, nil
		}
	}
	return nil, fmt.Errorf("bench: no figure %d (have 7..27)", num)
}

// RunFigure regenerates one figure by number and prints its table.
func RunFigure(w io.Writer, num int, dir string, scale float64) error {
	t, err := FigureTable(num, dir, scale)
	if err != nil {
		return err
	}
	t.Fprint(w)
	return nil
}

// RunAll regenerates every figure in order.
func RunAll(w io.Writer, dir string, scale float64) error {
	for _, f := range Figures {
		if err := RunFigure(w, f.Num, dir, scale); err != nil {
			return err
		}
	}
	return nil
}
