// Package bench implements BChainBench, the paper's mini-benchmark for
// blockchain databases (§VII-A): the seven-table donation schema, a
// data generator controlling both the time dimension (how resulting
// transactions spread across blocks — uniform or Gaussian) and the
// attribute-value dimension (result sizes), the Q1-Q7 workload, and one
// harness per evaluation figure.
package bench

import (
	"fmt"

	"sebdb/internal/core"
	"sebdb/internal/rdbms"
	"sebdb/internal/types"
)

// On-chain DDL for the three main tables (Fig. 6).
var onChainDDL = []string{
	`CREATE donate (donor string, project string, amount decimal)`,
	`CREATE transfer (project string, donor string, organization string, amount decimal)`,
	`CREATE distribute (project string, donor string, organization string, donee string, amount decimal)`,
}

// SetupSchema creates the on-chain tables and packages the schema block
// at timestamp 1, so data blocks own the rest of the time axis.
func SetupSchema(e *core.Engine) error {
	for _, ddl := range onChainDDL {
		if _, err := e.Execute(ddl); err != nil {
			return err
		}
	}
	return e.FlushAt(1)
}

// SetupOffChain creates the four off-chain tables (DonorInfo kept by
// the charity, DoneeInfo by schools, ChildrenInfo by the welfare,
// Customer by the nursing home) and loads rows rows into each.
func SetupOffChain(db *rdbms.DB, rows int) error {
	tables := map[string][]rdbms.Column{
		"donorinfo": {
			{Name: "donor", Kind: types.KindString},
			{Name: "name", Kind: types.KindString},
			{Name: "age", Kind: types.KindInt},
		},
		"doneeinfo": {
			{Name: "donee", Kind: types.KindString},
			{Name: "school", Kind: types.KindString},
			{Name: "income", Kind: types.KindDecimal},
		},
		"childreninfo": {
			{Name: "child", Kind: types.KindString},
			{Name: "welfare", Kind: types.KindString},
			{Name: "age", Kind: types.KindInt},
		},
		"customer": {
			{Name: "customer", Kind: types.KindString},
			{Name: "home", Kind: types.KindString},
			{Name: "age", Kind: types.KindInt},
		},
	}
	for name, cols := range tables {
		if err := db.CreateTable(name, cols); err != nil {
			return err
		}
	}
	for i := 0; i < rows; i++ {
		if err := db.Insert("donorinfo", rdbms.Row{
			types.Str(fmt.Sprintf("donor%06d", i)),
			types.Str(fmt.Sprintf("name%d", i)),
			types.Int(int64(20 + i%60)),
		}); err != nil {
			return err
		}
		if err := db.Insert("doneeinfo", rdbms.Row{
			types.Str(fmt.Sprintf("donee%06d", i)),
			types.Str(fmt.Sprintf("school%d", i%50)),
			types.Dec(float64(1000 + i)),
		}); err != nil {
			return err
		}
		if err := db.Insert("childreninfo", rdbms.Row{
			types.Str(fmt.Sprintf("child%06d", i)),
			types.Str(fmt.Sprintf("welfare%d", i%10)),
			types.Int(int64(3 + i%15)),
		}); err != nil {
			return err
		}
		if err := db.Insert("customer", rdbms.Row{
			types.Str(fmt.Sprintf("cust%06d", i)),
			types.Str(fmt.Sprintf("home%d", i%10)),
			types.Int(int64(60 + i%40)),
		}); err != nil {
			return err
		}
	}
	return nil
}
