package bench

import (
	"encoding/json"
	"io"

	"sebdb/internal/obs"
)

// FigureJSON is one figure's table in machine-readable form, for
// plotting pipelines that consume `bchainbench -json`.
type FigureJSON struct {
	// Figure is the paper's figure number.
	Figure int `json:"figure"`
	// Title is the table title.
	Title string `json:"title"`
	// X is the x-axis label (Header[0]).
	X string `json:"x"`
	// Series are the remaining column names.
	Series []string `json:"series"`
	// Values holds the formatted cells, one row per x point; each row's
	// first element is the x value.
	Values [][]string `json:"values"`
	// Quantiles summarises the process's latency histograms as they
	// stood after this figure ran, keyed by metric name. Cumulative
	// across figures in one run (the registry is process-wide).
	Quantiles map[string]QuantilesJSON `json:"quantiles,omitempty"`
}

// QuantilesJSON is one histogram's p50/p90/p99 summary.
type QuantilesJSON struct {
	Count uint64  `json:"count"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
}

// HistogramQuantiles snapshots every populated histogram in reg
// (Default when nil) as a p50/p90/p99 summary.
func HistogramQuantiles(reg *obs.Registry) map[string]QuantilesJSON {
	if reg == nil {
		reg = obs.Default
	}
	out := make(map[string]QuantilesJSON)
	for name, s := range reg.Histograms() {
		if s.Count == 0 {
			continue
		}
		out[name] = QuantilesJSON{
			Count: s.Count,
			P50:   s.Quantile(0.50),
			P90:   s.Quantile(0.90),
			P99:   s.Quantile(0.99),
		}
	}
	return out
}

// TableJSON converts a rendered table to its JSON form.
func TableJSON(num int, t *Table) FigureJSON {
	out := FigureJSON{Figure: num, Title: t.Title, Values: t.Rows}
	if len(t.Header) > 0 {
		out.X = t.Header[0]
		out.Series = t.Header[1:]
	}
	if out.Values == nil {
		out.Values = [][]string{}
	}
	return out
}

// WriteJSON renders a list of figure results as an indented JSON
// array.
func WriteJSON(w io.Writer, figs []FigureJSON) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(figs)
}
