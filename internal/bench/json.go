package bench

import (
	"encoding/json"
	"io"
)

// FigureJSON is one figure's table in machine-readable form, for
// plotting pipelines that consume `bchainbench -json`.
type FigureJSON struct {
	// Figure is the paper's figure number.
	Figure int `json:"figure"`
	// Title is the table title.
	Title string `json:"title"`
	// X is the x-axis label (Header[0]).
	X string `json:"x"`
	// Series are the remaining column names.
	Series []string `json:"series"`
	// Values holds the formatted cells, one row per x point; each row's
	// first element is the x value.
	Values [][]string `json:"values"`
}

// TableJSON converts a rendered table to its JSON form.
func TableJSON(num int, t *Table) FigureJSON {
	out := FigureJSON{Figure: num, Title: t.Title, Values: t.Rows}
	if len(t.Header) > 0 {
		out.X = t.Header[0]
		out.Series = t.Header[1:]
	}
	if out.Values == nil {
		out.Values = [][]string{}
	}
	return out
}

// WriteJSON renders a list of figure results as an indented JSON
// array.
func WriteJSON(w io.Writer, figs []FigureJSON) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(figs)
}
