package bench

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"time"

	"sebdb/internal/chainsql"
	"sebdb/internal/core"
	"sebdb/internal/exec"
	"sebdb/internal/types"
)

// chainsqlReplica feeds an engine's chain into a ChainSQL node.
func chainsqlReplica(e *core.Engine) (*chainsql.Node, error) {
	n, err := chainsql.New()
	if err != nil {
		return nil, err
	}
	for h := uint64(0); h < e.Height(); h++ {
		b, err := e.Block(h)
		if err != nil {
			return nil, err
		}
		if err := n.ApplyBlock(b); err != nil {
			return nil, err
		}
	}
	return n, nil
}

// Fig20 — one-dimension tracking (Q2): SEBDB vs ChainSQL, varying
// blockchain size, result fixed at 10,000.
func Fig20(dir string, scale float64) (*Table, error) {
	t := &Table{
		Title:  "Fig. 20 — One-dimension tracking, SEBDB vs ChainSQL",
		Header: []string{"blocks", "SEBDB", "ChainSQL"},
		Note:   "both are index-backed and insensitive to blockchain size",
	}
	result := scaled(10_000, scale, 60)
	for _, blocks := range blockSizesFor(scale) {
		e, err := NewEngine(filepath.Join(dir, fmt.Sprintf("f20-%d", blocks)), core.CacheNone)
		if err != nil {
			return nil, err
		}
		if e.Height() == 0 {
			err = LoadTracking(e, GenConfig{
				Blocks: blocks, TxPerBlock: 100, ResultSize: result,
				Dist: Uniform, Seed: 1,
			})
			if err != nil {
				return nil, err
			}
		}
		cs, err := chainsqlReplica(e)
		if err != nil {
			e.Close() //sebdb:ignore-err best-effort cleanup on the error path
			return nil, err
		}
		nSe, dSe, err := Timed(func() (int, error) { return Q2(e, "org1", exec.MethodLayered) })
		if err != nil {
			e.Close() //sebdb:ignore-err best-effort cleanup on the error path
			return nil, err
		}
		nCs, dCs, err := Timed(func() (int, error) {
			txs, err := cs.TrackOneDim("org1")
			return len(txs), err
		})
		e.Close() //sebdb:ignore-err best-effort cleanup on the error path
		if err != nil {
			return nil, err
		}
		if nSe != result || nCs != result {
			return nil, fmt.Errorf("fig20: results %d/%d, want %d", nSe, nCs, result)
		}
		t.AddRow(fmt.Sprintf("%d", blocks), ms(dSe), ms(dCs))
	}
	return t, nil
}

// Fig21 — two-dimension tracking (Q3): SEBDB vs ChainSQL, 100,000
// transactions, 5,000 results, org1's transaction count growing
// 5,000 → 80,000 (transfer count fixed at 5,000).
func Fig21(dir string, scale float64) (*Table, error) {
	t := &Table{
		Title:  "Fig. 21 — Two-dimension tracking, SEBDB vs ChainSQL",
		Header: []string{"org1 txs", "SEBDB", "ChainSQL", "ChainSQL bytes"},
		Note:   "SEBDB flat (two-index intersection); ChainSQL grows with org1's volume (client-side filter)",
	}
	blocks := scaled(1000, scale, 20)
	total := scaled(100_000, scale, 2000)
	result := scaled(5_000, scale, 30)
	for _, paperOrg1 := range []int{5_000, 10_000, 20_000, 40_000, 80_000} {
		org1 := scaled(paperOrg1, scale, result)
		org1Only := org1 - result
		txPerBlock := total / blocks
		e, err := NewEngine(filepath.Join(dir, fmt.Sprintf("f21-%d", org1)), core.CacheNone)
		if err != nil {
			return nil, err
		}
		if e.Height() == 0 {
			// transfer count fixed: result matches + 0 extra transfers.
			if err := LoadTwoDim(e, blocks, txPerBlock, result, org1Only, 0, Uniform, 20, 1); err != nil {
				return nil, err
			}
		}
		cs, err := chainsqlReplica(e)
		if err != nil {
			e.Close() //sebdb:ignore-err best-effort cleanup on the error path
			return nil, err
		}
		nSe, dSe, err := Timed(func() (int, error) {
			return Q3(e, "org1", "transfer", nil, true)
		})
		if err != nil {
			e.Close() //sebdb:ignore-err best-effort cleanup on the error path
			return nil, err
		}
		var bytes int
		nCs, dCs, err := Timed(func() (int, error) {
			txs, b, err := cs.TrackTwoDimClient("org1", "transfer", 0, 0)
			bytes = b
			return len(txs), err
		})
		e.Close() //sebdb:ignore-err best-effort cleanup on the error path
		if err != nil {
			return nil, err
		}
		if nSe != result || nCs != result {
			return nil, fmt.Errorf("fig21: results %d/%d, want %d", nSe, nCs, result)
		}
		t.AddRow(fmt.Sprintf("%d", org1), ms(dSe), ms(dCs), kb(bytes))
	}
	return t, nil
}

// LoadCombined builds the Fig. 22 dataset: 10,000 transactions in each
// of donate/transfer/distribute, tracking and range results of 10,000
// (org1's donates, amounts in the Q4 window), join and on-off results
// of 5,000, with all needed layered indexes.
func LoadCombined(e *core.Engine, scale float64) error {
	if err := SetupSchema(e); err != nil {
		return err
	}
	per := scaled(10_000, scale, 200)
	joinRes := scaled(5_000, scale, 100)
	blocks := scaled(1_000, scale, 20)
	if err := SetupOffChain(e.OffChain(), joinRes); err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(7))
	perBlock := make([][]*types.Transaction, blocks)
	add := func(n int, mk func(i int) *types.Transaction) {
		for i, b := range Placement(n, blocks, Uniform, 0, rng) {
			perBlock[b] = append(perBlock[b], mk(i))
		}
	}
	// donate: all sent by org1 with in-window amounts (Q2/Q4 result).
	add(per, func(i int) *types.Transaction {
		return &types.Transaction{SenID: "org1", Tname: "donate", Args: []types.Value{
			types.Str(fmt.Sprintf("donor%06d", i)), types.Str("education"),
			types.Dec(float64(RangeLo + i%(RangeHi-RangeLo+1))),
		}}
	})
	// transfer/distribute: joinRes matching organizations (Q5), the rest
	// unique; distribute's first joinRes donees exist off-chain (Q6).
	add(per, func(i int) *types.Transaction {
		org := fmt.Sprintf("tonly%06d", i)
		if i < joinRes {
			org = fmt.Sprintf("shared%06d", i)
		}
		return &types.Transaction{SenID: "org2", Tname: "transfer", Args: []types.Value{
			types.Str("education"), types.Str(fmt.Sprintf("donor%06d", i)),
			types.Str(org), types.Dec(float64(i)),
		}}
	})
	add(per, func(i int) *types.Transaction {
		org := fmt.Sprintf("donly%06d", i)
		donee := fmt.Sprintf("ghost%06d", i)
		if i < joinRes {
			org = fmt.Sprintf("shared%06d", i)
			donee = fmt.Sprintf("donee%06d", i)
		}
		return &types.Transaction{SenID: "org3", Tname: "distribute", Args: []types.Value{
			types.Str("education"), types.Str(fmt.Sprintf("donor%06d", i)),
			types.Str(org), types.Str(donee), types.Dec(float64(i)),
		}}
	})
	if err := CommitChain(e, perBlock); err != nil {
		return err
	}
	for _, idx := range [][2]string{
		{"donate", "amount"},
		{"transfer", "organization"}, {"distribute", "organization"},
		{"distribute", "donee"},
	} {
		if err := e.CreateIndex(idx[0], idx[1]); err != nil {
			return err
		}
	}
	return nil
}

// Fig22 — block cache vs transaction cache: mean latency of Q2, Q4,
// Q5, Q6 and Q7 under a warmed LRU of each policy.
func Fig22(dir string, scale float64) (*Table, error) {
	t := &Table{
		Title:  "Fig. 22 — Block cache vs transaction cache (warmed LRU)",
		Header: []string{"query", "block cache", "tx cache"},
		Note:   "tx cache wins for index-driven Q2/Q4/Q5/Q6; block cache wins whole-block Q7",
	}
	queries := []struct {
		name string
		run  func(e *core.Engine) (int, error)
	}{
		{"Q2", func(e *core.Engine) (int, error) { return Q2(e, "org1", exec.MethodLayered) }},
		{"Q4", func(e *core.Engine) (int, error) { return Q4(e, RangeLo, RangeHi, exec.MethodLayered) }},
		{"Q5", func(e *core.Engine) (int, error) { return Q5(e, exec.MethodLayered) }},
		{"Q6", func(e *core.Engine) (int, error) { return Q6(e, exec.MethodLayered) }},
		{"Q7", func(e *core.Engine) (int, error) { return Q7(e, 1) }},
	}
	requests := scaled(100, scale, 5)
	type cell = time.Duration
	results := make(map[string]map[core.CacheMode]cell)
	for _, mode := range []core.CacheMode{core.CacheBlocks, core.CacheTxs} {
		e, err := NewEngine(filepath.Join(dir, fmt.Sprintf("f22-%d", mode)), mode)
		if err != nil {
			return nil, err
		}
		if e.Height() == 0 {
			if err := LoadCombined(e, scale); err != nil {
				return nil, err
			}
		} else {
			if err := SetupOffChain(e.OffChain(), scaled(5_000, scale, 100)); err != nil {
				return nil, err
			}
			for _, idx := range [][2]string{
				{"donate", "amount"},
				{"transfer", "organization"}, {"distribute", "organization"},
				{"distribute", "donee"},
			} {
				if err := e.CreateIndex(idx[0], idx[1]); err != nil {
					return nil, err
				}
			}
		}
		for _, q := range queries {
			// Cache warming (§VII-H runs each query for 10 minutes first).
			if _, err := q.run(e); err != nil {
				e.Close() //sebdb:ignore-err best-effort cleanup on the error path
				return nil, err
			}
			start := time.Now()
			for r := 0; r < requests; r++ {
				if _, err := q.run(e); err != nil {
					e.Close() //sebdb:ignore-err best-effort cleanup on the error path
					return nil, err
				}
			}
			mean := time.Since(start) / time.Duration(requests)
			if results[q.name] == nil {
				results[q.name] = make(map[core.CacheMode]cell)
			}
			results[q.name][mode] = mean
		}
		e.Close() //sebdb:ignore-err best-effort cleanup on the error path
	}
	for _, q := range queries {
		t.AddRow(q.name, ms(results[q.name][core.CacheBlocks]), ms(results[q.name][core.CacheTxs]))
	}
	return t, nil
}
