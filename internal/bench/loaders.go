package bench

import (
	"fmt"
	"math/rand"

	"sebdb/internal/core"
	"sebdb/internal/types"
)

// The loaders in this file build the datasets of §VII: each experiment
// fixes a chain size, a result size and a distribution of the resulting
// transactions over blocks.

// mkDonate builds a donate transaction; result rows carry org1 as
// sender (the tracking target), fillers rotate through other senders.
func mkDonate(spec TxSpec, rng *rand.Rand, resultAmount func() float64, fillerAmount func() float64) *types.Transaction {
	sender := "org1"
	amount := resultAmount()
	if !spec.Result {
		sender = fmt.Sprintf("org%d", 2+rng.Intn(20))
		amount = fillerAmount()
	}
	return &types.Transaction{
		SenID: sender,
		Tname: "donate",
		Args: []types.Value{
			types.Str(fmt.Sprintf("donor%06d", rng.Intn(1_000_000))),
			types.Str("education"),
			types.Dec(amount),
		},
	}
}

// LoadTracking builds the Q2 dataset: ResultSize transactions sent by
// org1, spread by the distribution; fillers from other senders.
func LoadTracking(e *core.Engine, cfg GenConfig) error {
	if err := SetupSchema(e); err != nil {
		return err
	}
	return Load(e, cfg, func(spec TxSpec, rng *rand.Rand) *types.Transaction {
		return mkDonate(spec, rng,
			func() float64 { return float64(rng.Intn(10_000)) },
			func() float64 { return float64(rng.Intn(10_000)) })
	})
}

// LoadAuth builds the Figs. 17-19 dataset: result transactions are
// sent by org1 AND carry amounts inside the Q4 window, so one chain
// serves both the authenticated tracking (Q2) and the authenticated
// range query (Q4); fillers come from other senders with amounts below
// the window.
func LoadAuth(e *core.Engine, cfg GenConfig) error {
	if err := SetupSchema(e); err != nil {
		return err
	}
	return Load(e, cfg, func(spec TxSpec, rng *rand.Rand) *types.Transaction {
		return mkDonate(spec, rng,
			func() float64 { return float64(RangeLo + rng.Intn(RangeHi-RangeLo+1)) },
			func() float64 { return float64(rng.Intn(RangeLo - 1)) })
	})
}

// RangeLo and RangeHi bound the Q4 result window: result transactions
// draw amounts inside it, fillers strictly below.
const (
	RangeLo = 1_000_000
	RangeHi = 1_000_999
)

// LoadRange builds the Q4 dataset and the layered index on
// donate.amount.
func LoadRange(e *core.Engine, cfg GenConfig) error {
	if err := SetupSchema(e); err != nil {
		return err
	}
	err := Load(e, cfg, func(spec TxSpec, rng *rand.Rand) *types.Transaction {
		return mkDonate(spec, rng,
			func() float64 { return float64(RangeLo + rng.Intn(RangeHi-RangeLo+1)) },
			func() float64 { return float64(rng.Intn(RangeLo - 1)) })
	})
	if err != nil {
		return err
	}
	return e.CreateIndex("donate", "amount")
}

// LoadTwoDim builds the Q3/Fig. 21 dataset: nBoth transactions that are
// both org1 and transfer (the answer), org1Only extra org1 donates,
// transferOnly extra transfers from other senders, spread by dist, and
// fillers to reach txPerBlock.
func LoadTwoDim(e *core.Engine, blocks, txPerBlock, nBoth, org1Only, transferOnly int,
	dist Distribution, sigma float64, seed int64) error {
	if err := SetupSchema(e); err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(seed))
	perBlock := make([][]*types.Transaction, blocks)
	add := func(n int, mk func(i int) *types.Transaction) {
		for i, b := range Placement(n, blocks, dist, sigma, rng) {
			perBlock[b] = append(perBlock[b], mk(i))
		}
	}
	transferArgs := func(i int) []types.Value {
		return []types.Value{
			types.Str("education"),
			types.Str(fmt.Sprintf("donor%06d", i)),
			types.Str(fmt.Sprintf("school%d", i%100)),
			types.Dec(float64(i)),
		}
	}
	donateArgs := func(i int) []types.Value {
		return []types.Value{
			types.Str(fmt.Sprintf("donor%06d", i)),
			types.Str("education"),
			types.Dec(float64(i)),
		}
	}
	add(nBoth, func(i int) *types.Transaction {
		return &types.Transaction{SenID: "org1", Tname: "transfer", Args: transferArgs(i)}
	})
	add(org1Only, func(i int) *types.Transaction {
		return &types.Transaction{SenID: "org1", Tname: "donate", Args: donateArgs(i)}
	})
	add(transferOnly, func(i int) *types.Transaction {
		return &types.Transaction{SenID: fmt.Sprintf("org%d", 2+i%20), Tname: "transfer", Args: transferArgs(i)}
	})
	for b := 0; b < blocks; b++ {
		for len(perBlock[b]) < txPerBlock {
			i := rng.Intn(1_000_000)
			perBlock[b] = append(perBlock[b], &types.Transaction{
				SenID: fmt.Sprintf("org%d", 30+i%20), Tname: "donate", Args: donateArgs(i)})
		}
	}
	return CommitChain(e, perBlock)
}

// LoadJoin builds the Q5 dataset: nPerTable transfer and distribute
// transactions each; resultSize matching organization pairs (1:1), the
// rest with side-unique organizations so they never join. Creates the
// layered indexes on both join columns.
func LoadJoin(e *core.Engine, blocks, txPerBlock, nPerTable, resultSize int,
	dist Distribution, sigma float64, seed int64) error {
	if err := SetupSchema(e); err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(seed))
	perBlock := make([][]*types.Transaction, blocks)
	add := func(n int, mk func(i int) *types.Transaction) {
		for i, b := range Placement(n, blocks, dist, sigma, rng) {
			perBlock[b] = append(perBlock[b], mk(i))
		}
	}
	// Matching pairs share org "shared%06d".
	add(resultSize, func(i int) *types.Transaction {
		return &types.Transaction{SenID: "org1", Tname: "transfer", Args: []types.Value{
			types.Str("education"), types.Str(fmt.Sprintf("donor%06d", i)),
			types.Str(fmt.Sprintf("shared%06d", i)), types.Dec(float64(i)),
		}}
	})
	add(resultSize, func(i int) *types.Transaction {
		return &types.Transaction{SenID: "org2", Tname: "distribute", Args: []types.Value{
			types.Str("education"), types.Str(fmt.Sprintf("donor%06d", i)),
			types.Str(fmt.Sprintf("shared%06d", i)),
			types.Str(fmt.Sprintf("donee%06d", i)), types.Dec(float64(i)),
		}}
	})
	// Non-matching remainder.
	add(nPerTable-resultSize, func(i int) *types.Transaction {
		return &types.Transaction{SenID: "org1", Tname: "transfer", Args: []types.Value{
			types.Str("education"), types.Str(fmt.Sprintf("donor%06d", i)),
			types.Str(fmt.Sprintf("tonly%06d", i)), types.Dec(float64(i)),
		}}
	})
	add(nPerTable-resultSize, func(i int) *types.Transaction {
		return &types.Transaction{SenID: "org2", Tname: "distribute", Args: []types.Value{
			types.Str("education"), types.Str(fmt.Sprintf("donor%06d", i)),
			types.Str(fmt.Sprintf("donly%06d", i)),
			types.Str(fmt.Sprintf("donee%06d", i)), types.Dec(float64(i)),
		}}
	})
	for b := 0; b < blocks; b++ {
		for len(perBlock[b]) < txPerBlock {
			i := rng.Intn(1_000_000)
			perBlock[b] = append(perBlock[b], &types.Transaction{
				SenID: "org9", Tname: "donate", Args: []types.Value{
					types.Str(fmt.Sprintf("donor%06d", i)), types.Str("education"), types.Dec(float64(i)),
				}})
		}
	}
	if err := CommitChain(e, perBlock); err != nil {
		return err
	}
	if err := e.CreateIndex("transfer", "organization"); err != nil {
		return err
	}
	return e.CreateIndex("distribute", "organization")
}

// LoadOnOff builds the Q6 dataset: nOnChain distribute transactions of
// which resultSize reference donees existing in the off-chain doneeinfo
// table; the rest reference ghosts. Creates the layered index on
// distribute.donee and loads the off-chain tables.
func LoadOnOff(e *core.Engine, blocks, txPerBlock, nOnChain, resultSize int,
	dist Distribution, sigma float64, seed int64) error {
	if err := SetupSchema(e); err != nil {
		return err
	}
	if err := SetupOffChain(e.OffChain(), resultSize); err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(seed))
	perBlock := make([][]*types.Transaction, blocks)
	add := func(n int, mk func(i int) *types.Transaction) {
		for i, b := range Placement(n, blocks, dist, sigma, rng) {
			perBlock[b] = append(perBlock[b], mk(i))
		}
	}
	distributeTx := func(donee string, i int) *types.Transaction {
		return &types.Transaction{SenID: "org2", Tname: "distribute", Args: []types.Value{
			types.Str("education"), types.Str(fmt.Sprintf("donor%06d", i)),
			types.Str(fmt.Sprintf("school%d", i%100)),
			types.Str(donee), types.Dec(float64(i)),
		}}
	}
	add(resultSize, func(i int) *types.Transaction {
		return distributeTx(fmt.Sprintf("donee%06d", i), i)
	})
	add(nOnChain-resultSize, func(i int) *types.Transaction {
		return distributeTx(fmt.Sprintf("ghost%06d", i), i)
	})
	for b := 0; b < blocks; b++ {
		for len(perBlock[b]) < txPerBlock {
			i := rng.Intn(1_000_000)
			perBlock[b] = append(perBlock[b], &types.Transaction{
				SenID: "org9", Tname: "donate", Args: []types.Value{
					types.Str(fmt.Sprintf("donor%06d", i)), types.Str("education"), types.Dec(float64(i)),
				}})
		}
	}
	if err := CommitChain(e, perBlock); err != nil {
		return err
	}
	return e.CreateIndex("distribute", "donee")
}
