package node_test

import (
	"bytes"
	"fmt"
	"hash/crc32"
	"strings"
	"testing"
	"time"

	"sebdb/internal/clock"
	"sebdb/internal/core"
	"sebdb/internal/node"
	"sebdb/internal/obs"
	"sebdb/internal/snapshot"
	"sebdb/internal/types"
)

// checkpointedNode is a seeded node that has written a checkpoint.
func checkpointedNode(t testing.TB, nBlocks, txPerBlock int) *node.FullNode {
	t.Helper()
	fn := seededNode(t, nBlocks, txPerBlock)
	if err := fn.Engine.WriteCheckpoint(); err != nil {
		t.Fatal(err)
	}
	return fn
}

func TestFastSyncOverTCP(t *testing.T) {
	source := checkpointedNode(t, 6, 5)
	addr, err := source.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	peer, err := node.DialNode(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer peer.Close()

	dir := t.TempDir()
	reg := obs.NewRegistry(clock.UnixMicro)
	res, err := node.FastSync(dir, peer, reg)
	if err != nil {
		t.Fatal(err)
	}
	srcHeight := source.Engine.Height()
	if res.CheckpointHeight != srcHeight || res.Blocks != srcHeight {
		t.Fatalf("fast-sync result %+v, source height %d", res, srcHeight)
	}
	if got := reg.Counter("sebdb_fastsync_chunks_total").Value(); got == 0 {
		t.Error("no chunk transfers recorded")
	}
	if got := reg.Counter("sebdb_fastsync_blocks_total").Value(); got != srcHeight {
		t.Errorf("blocks streamed = %d, want %d", got, srcHeight)
	}
	if reg.Histogram("sebdb_fastsync_chunk_micros").Snapshot().Count == 0 {
		t.Error("chunk latency not observed")
	}

	// The bootstrapped engine seeds from the checkpoint: zero blocks
	// replayed, and it answers exactly like the source.
	reg2 := obs.NewRegistry(clock.UnixMicro)
	e2, err := core.Open(core.Config{Dir: dir, Obs: reg2})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if e2.Height() != srcHeight {
		t.Fatalf("bootstrapped height = %d, want %d", e2.Height(), srcHeight)
	}
	if got := reg2.Counter("sebdb_snapshot_suffix_blocks").Value(); got != 0 {
		t.Errorf("bootstrapped open replayed %d blocks", got)
	}
	want, err := source.Engine.Execute(`SELECT * FROM donate WHERE amount BETWEEN 5 AND 9`)
	if err != nil {
		t.Fatal(err)
	}
	got, err := e2.Execute(`SELECT * FROM donate WHERE amount BETWEEN 5 AND 9`)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Rows) != len(want.Rows) || len(got.Rows) == 0 {
		t.Fatalf("bootstrapped query rows = %d, source = %d", len(got.Rows), len(want.Rows))
	}
	// The ALI survived the transfer: serve locally and verify.
	if e2.AuthIndex("donate", "amount") == nil {
		t.Fatal("auth index missing after fast-sync")
	}

	// New blocks still flow to the bootstrapped node via gossip.
	n2 := node.New(e2)
	defer n2.Close()
	n2.Gossip.AddPeer(peer)
	tx, err := source.Engine.NewTransaction("org0", "donate", []types.Value{
		types.Str("donor99"), types.Str("health"), types.Dec(999),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := source.Engine.CommitBlock([]*types.Transaction{tx}, 99_000); err != nil {
		t.Fatal(err)
	}
	n2.Gossip.Round()
	deadline := time.Now().Add(5 * time.Second)
	for e2.Height() < source.Engine.Height() && time.Now().Before(deadline) {
		n2.Gossip.Round()
		time.Sleep(10 * time.Millisecond)
	}
	if e2.Height() != source.Engine.Height() {
		t.Fatalf("post-sync gossip stalled at %d of %d", e2.Height(), source.Engine.Height())
	}
}

func TestFastSyncRejectsTamperedOffer(t *testing.T) {
	source := checkpointedNode(t, 4, 3)
	local := &node.Local{Node: source, Name: "src"}

	// An offer whose anchor is off the agreed header chain must be
	// rejected before any transfer.
	bad := &tamperedPeer{QueryNode: local}
	if _, err := node.FastSync(t.TempDir(), bad, nil); err == nil {
		t.Fatal("tampered anchor accepted")
	}
}

// tamperedPeer relays a real node but flips a bit in the offered anchor.
type tamperedPeer struct {
	node.QueryNode
}

func (p *tamperedPeer) SnapshotOffer() (*node.SnapshotOffer, error) {
	o, err := p.QueryNode.SnapshotOffer()
	if err != nil {
		return nil, err
	}
	o.Anchor[0] ^= 1
	return o, nil
}

// poisoningPeer relays a real node but rewrites the checkpoint payload
// (with a self-consistent offer: matching Size and CRC) so the derived
// state it serves no longer agrees with the chain.
type poisoningPeer struct {
	node.QueryNode
	payload []byte
}

func (p *poisoningPeer) SnapshotOffer() (*node.SnapshotOffer, error) {
	o, err := p.QueryNode.SnapshotOffer()
	if err != nil {
		return nil, err
	}
	raw := make([]byte, 0, o.Size)
	for i := uint32(0); i < o.Chunks; i++ {
		chunk, err := p.QueryNode.SnapshotChunk(i)
		if err != nil {
			return nil, err
		}
		raw = append(raw, chunk...)
	}
	ck, err := snapshot.Decode(raw)
	if err != nil {
		return nil, err
	}
	// Poison chain-derived facts a query would trust: a phantom table
	// bitmap entry and a bumped transaction high-water mark.
	ck.TableIdx["donate"] = append(ck.TableIdx["donate"], 0)
	ck.LastTid += 7
	p.payload = ck.Encode()
	o.Size = uint64(len(p.payload))
	o.CRC = crc32.ChecksumIEEE(p.payload)
	o.Chunks = uint32((o.Size + uint64(o.ChunkSize) - 1) / uint64(o.ChunkSize))
	return o, nil
}

func (p *poisoningPeer) SnapshotChunk(idx uint32) ([]byte, error) {
	start := int(idx) << 20
	if start >= len(p.payload) {
		return nil, fmt.Errorf("chunk %d out of range", idx)
	}
	end := start + (1 << 20)
	if end > len(p.payload) {
		end = len(p.payload)
	}
	return p.payload[start:end], nil
}

// TestFastSyncRejectsPoisonedCheckpoint serves a checkpoint whose
// derived state was fabricated (but whose offer is self-consistent and
// anchored to the genuine chain). The sync must rebuild state locally,
// detect the divergence and reject the peer.
func TestFastSyncRejectsPoisonedCheckpoint(t *testing.T) {
	source := checkpointedNode(t, 5, 4)
	local := &node.Local{Node: source, Name: "src"}
	bad := &poisoningPeer{QueryNode: local}
	reg := obs.NewRegistry(clock.UnixMicro)
	_, err := node.FastSync(t.TempDir(), bad, reg)
	if err == nil {
		t.Fatal("poisoned checkpoint accepted")
	}
	if !strings.Contains(err.Error(), "rejected") {
		t.Fatalf("unexpected error: %v", err)
	}
	if got := reg.Counter("sebdb_fastsync_divergent_checkpoints_total").Value(); got != 1 {
		t.Fatalf("divergence counter = %d, want 1", got)
	}
}

// hugeOfferPeer claims an absurd payload size; FastSync must reject the
// offer before fetching a single chunk (or allocating for it).
type hugeOfferPeer struct {
	node.QueryNode
	chunkCalls int
}

func (p *hugeOfferPeer) SnapshotOffer() (*node.SnapshotOffer, error) {
	o, err := p.QueryNode.SnapshotOffer()
	if err != nil {
		return nil, err
	}
	o.Size = 1 << 62
	return o, nil
}

func (p *hugeOfferPeer) SnapshotChunk(idx uint32) ([]byte, error) {
	p.chunkCalls++
	return p.QueryNode.SnapshotChunk(idx)
}

func TestFastSyncRejectsImplausibleOfferSize(t *testing.T) {
	source := checkpointedNode(t, 3, 2)
	local := &node.Local{Node: source, Name: "src"}
	bad := &hugeOfferPeer{QueryNode: local}
	if _, err := node.FastSync(t.TempDir(), bad, nil); err == nil {
		t.Fatal("implausible offer size accepted")
	}
	if bad.chunkCalls != 0 {
		t.Fatalf("%d chunks fetched for an implausible offer", bad.chunkCalls)
	}
}

// TestSnapChunkCacheFollowsCheckpoint serves chunks across a checkpoint
// rotation: the cached payload must be invalidated when a newer
// checkpoint repoints the manifest.
func TestSnapChunkCacheFollowsCheckpoint(t *testing.T) {
	source := checkpointedNode(t, 4, 3)
	local := &node.Local{Node: source, Name: "src"}

	o1, err := local.SnapshotOffer()
	if err != nil {
		t.Fatal(err)
	}
	// Repeated chunk reads come from the cache and stay consistent.
	c1, err := local.SnapshotChunk(0)
	if err != nil {
		t.Fatal(err)
	}
	c1again, err := local.SnapshotChunk(0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(c1, c1again) {
		t.Fatal("cached chunk differs from first read")
	}

	// Grow the chain and rotate the checkpoint: the offer and the chunk
	// content must both follow the new manifest.
	tx, err := source.Engine.NewTransaction("org0", "donate", []types.Value{
		types.Str("donorX"), types.Str("health"), types.Dec(41),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := source.Engine.CommitBlock([]*types.Transaction{tx}, 77_000); err != nil {
		t.Fatal(err)
	}
	if err := source.Engine.WriteCheckpoint(); err != nil {
		t.Fatal(err)
	}
	o2, err := local.SnapshotOffer()
	if err != nil {
		t.Fatal(err)
	}
	if o2.Height != o1.Height+1 {
		t.Fatalf("offer height = %d after rotation, want %d", o2.Height, o1.Height+1)
	}
	raw := make([]byte, 0, o2.Size)
	for i := uint32(0); i < o2.Chunks; i++ {
		chunk, err := local.SnapshotChunk(i)
		if err != nil {
			t.Fatal(err)
		}
		raw = append(raw, chunk...)
	}
	if uint64(len(raw)) != o2.Size || crc32.ChecksumIEEE(raw) != o2.CRC {
		t.Fatal("post-rotation chunks do not reassemble the new checkpoint")
	}
	ck, err := snapshot.Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	if ck.Height != o2.Height {
		t.Fatalf("served checkpoint height = %d, want %d", ck.Height, o2.Height)
	}
}

func TestFastSyncWithoutCheckpointErrors(t *testing.T) {
	source := seededNode(t, 3, 2) // no checkpoint written
	local := &node.Local{Node: source, Name: "src"}
	if _, err := node.FastSync(t.TempDir(), local, nil); err == nil {
		t.Fatal("fast-sync without a source checkpoint succeeded")
	}
}

func TestFastSyncRefusesNonEmptyDir(t *testing.T) {
	source := checkpointedNode(t, 3, 2)
	local := &node.Local{Node: source, Name: "src"}
	dir := t.TempDir()
	if _, err := node.FastSync(dir, local, nil); err != nil {
		t.Fatal(err)
	}
	// A second sync into the now-populated directory must refuse.
	if _, err := node.FastSync(dir, local, nil); err == nil {
		t.Fatal("fast-sync into a populated directory succeeded")
	}
}
