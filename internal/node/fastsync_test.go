package node_test

import (
	"testing"
	"time"

	"sebdb/internal/clock"
	"sebdb/internal/core"
	"sebdb/internal/node"
	"sebdb/internal/obs"
	"sebdb/internal/types"
)

// checkpointedNode is a seeded node that has written a checkpoint.
func checkpointedNode(t testing.TB, nBlocks, txPerBlock int) *node.FullNode {
	t.Helper()
	fn := seededNode(t, nBlocks, txPerBlock)
	if err := fn.Engine.WriteCheckpoint(); err != nil {
		t.Fatal(err)
	}
	return fn
}

func TestFastSyncOverTCP(t *testing.T) {
	source := checkpointedNode(t, 6, 5)
	addr, err := source.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	peer, err := node.DialNode(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer peer.Close()

	dir := t.TempDir()
	reg := obs.NewRegistry(clock.UnixMicro)
	res, err := node.FastSync(dir, peer, reg)
	if err != nil {
		t.Fatal(err)
	}
	srcHeight := source.Engine.Height()
	if res.CheckpointHeight != srcHeight || res.Blocks != srcHeight {
		t.Fatalf("fast-sync result %+v, source height %d", res, srcHeight)
	}
	if got := reg.Counter("sebdb_fastsync_chunks_total").Value(); got == 0 {
		t.Error("no chunk transfers recorded")
	}
	if got := reg.Counter("sebdb_fastsync_blocks_total").Value(); got != srcHeight {
		t.Errorf("blocks streamed = %d, want %d", got, srcHeight)
	}
	if reg.Histogram("sebdb_fastsync_chunk_micros").Snapshot().Count == 0 {
		t.Error("chunk latency not observed")
	}

	// The bootstrapped engine seeds from the checkpoint: zero blocks
	// replayed, and it answers exactly like the source.
	reg2 := obs.NewRegistry(clock.UnixMicro)
	e2, err := core.Open(core.Config{Dir: dir, Obs: reg2})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if e2.Height() != srcHeight {
		t.Fatalf("bootstrapped height = %d, want %d", e2.Height(), srcHeight)
	}
	if got := reg2.Counter("sebdb_snapshot_suffix_blocks").Value(); got != 0 {
		t.Errorf("bootstrapped open replayed %d blocks", got)
	}
	want, err := source.Engine.Execute(`SELECT * FROM donate WHERE amount BETWEEN 5 AND 9`)
	if err != nil {
		t.Fatal(err)
	}
	got, err := e2.Execute(`SELECT * FROM donate WHERE amount BETWEEN 5 AND 9`)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Rows) != len(want.Rows) || len(got.Rows) == 0 {
		t.Fatalf("bootstrapped query rows = %d, source = %d", len(got.Rows), len(want.Rows))
	}
	// The ALI survived the transfer: serve locally and verify.
	if e2.AuthIndex("donate", "amount") == nil {
		t.Fatal("auth index missing after fast-sync")
	}

	// New blocks still flow to the bootstrapped node via gossip.
	n2 := node.New(e2)
	defer n2.Close()
	n2.Gossip.AddPeer(peer)
	tx, err := source.Engine.NewTransaction("org0", "donate", []types.Value{
		types.Str("donor99"), types.Str("health"), types.Dec(999),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := source.Engine.CommitBlock([]*types.Transaction{tx}, 99_000); err != nil {
		t.Fatal(err)
	}
	n2.Gossip.Round()
	deadline := time.Now().Add(5 * time.Second)
	for e2.Height() < source.Engine.Height() && time.Now().Before(deadline) {
		n2.Gossip.Round()
		time.Sleep(10 * time.Millisecond)
	}
	if e2.Height() != source.Engine.Height() {
		t.Fatalf("post-sync gossip stalled at %d of %d", e2.Height(), source.Engine.Height())
	}
}

func TestFastSyncRejectsTamperedOffer(t *testing.T) {
	source := checkpointedNode(t, 4, 3)
	local := &node.Local{Node: source, Name: "src"}

	// An offer whose anchor is off the agreed header chain must be
	// rejected before any transfer.
	bad := &tamperedPeer{QueryNode: local}
	if _, err := node.FastSync(t.TempDir(), bad, nil); err == nil {
		t.Fatal("tampered anchor accepted")
	}
}

// tamperedPeer relays a real node but flips a bit in the offered anchor.
type tamperedPeer struct {
	node.QueryNode
}

func (p *tamperedPeer) SnapshotOffer() (*node.SnapshotOffer, error) {
	o, err := p.QueryNode.SnapshotOffer()
	if err != nil {
		return nil, err
	}
	o.Anchor[0] ^= 1
	return o, nil
}

func TestFastSyncWithoutCheckpointErrors(t *testing.T) {
	source := seededNode(t, 3, 2) // no checkpoint written
	local := &node.Local{Node: source, Name: "src"}
	if _, err := node.FastSync(t.TempDir(), local, nil); err == nil {
		t.Fatal("fast-sync without a source checkpoint succeeded")
	}
}

func TestFastSyncRefusesNonEmptyDir(t *testing.T) {
	source := checkpointedNode(t, 3, 2)
	local := &node.Local{Node: source, Name: "src"}
	dir := t.TempDir()
	if _, err := node.FastSync(dir, local, nil); err != nil {
		t.Fatal(err)
	}
	// A second sync into the now-populated directory must refuse.
	if _, err := node.FastSync(dir, local, nil); err == nil {
		t.Fatal("fast-sync into a populated directory succeeded")
	}
}
