package node_test

import (
	"fmt"
	"testing"
	"time"

	"sebdb/internal/core"
	"sebdb/internal/network"
	"sebdb/internal/node"
	"sebdb/internal/types"
)

// seededNode builds a full node with the donate table, nBlocks blocks
// of txPerBlock rows, and an ALI on donate.amount plus tname.
func seededNode(t testing.TB, nBlocks, txPerBlock int) *node.FullNode {
	t.Helper()
	e, err := core.Open(core.Config{Dir: t.TempDir(), HistogramDepth: 10})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	if _, err := e.Execute(`CREATE donate (donor string, project string, amount decimal)`); err != nil {
		t.Fatal(err)
	}
	if err := e.FlushAt(1); err != nil {
		t.Fatal(err)
	}
	seq := 0
	for b := 0; b < nBlocks; b++ {
		var batch []*types.Transaction
		for i := 0; i < txPerBlock; i++ {
			tx, err := e.NewTransaction(fmt.Sprintf("org%d", seq%3), "donate", []types.Value{
				types.Str(fmt.Sprintf("donor%02d", seq%5)),
				types.Str("education"),
				types.Dec(float64(seq)),
			})
			if err != nil {
				t.Fatal(err)
			}
			tx.Ts = int64(b+1) * 1000
			batch = append(batch, tx)
			seq++
		}
		if _, err := e.CommitBlock(batch, int64(b+1)*1000); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.CreateAuthIndex("donate", "amount"); err != nil {
		t.Fatal(err)
	}
	if err := e.CreateAuthIndex("", "tname"); err != nil {
		t.Fatal(err)
	}
	n := node.New(e)
	t.Cleanup(func() { _ = n.Close() })
	return n
}

func TestTCPQueryRoundTrip(t *testing.T) {
	fn := seededNode(t, 5, 10)
	addr, err := fn.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	remote, err := node.DialNode(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()

	h, err := remote.Height()
	if err != nil || h != fn.Engine.Height() {
		t.Errorf("Height = %d, %v", h, err)
	}
	b, err := remote.BlockAt(2)
	if err != nil || b.Header.Height != 2 {
		t.Errorf("BlockAt: %v, %v", b, err)
	}
	hs, err := remote.Headers(3)
	if err != nil || len(hs) != int(h)-3 {
		t.Errorf("Headers: %d, %v", len(hs), err)
	}
	res, err := remote.SQL(`SELECT * FROM donate WHERE amount BETWEEN 5 AND 9`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Errorf("SQL rows = %d", len(res.Rows))
	}
	// SQL errors cross the wire.
	if _, err := remote.SQL(`SELECT * FROM ghost`); err == nil {
		t.Error("remote SQL error lost")
	}
}

func TestTCPAuthProtocol(t *testing.T) {
	fn := seededNode(t, 5, 10)
	addr, _ := fn.Serve("127.0.0.1:0")
	remote, err := node.DialNode(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()

	req := &node.AuthRequest{Table: "donate", Col: "amount",
		Lo: types.Dec(10), Hi: types.Dec(20)}
	ans, err := remote.AuthQuery(req)
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Blocks) == 0 || ans.Height != fn.Engine.Height() {
		t.Errorf("answer = %d blocks at height %d", len(ans.Blocks), ans.Height)
	}
	req.Height = ans.Height
	d1, err := remote.AuthDigest(req)
	if err != nil {
		t.Fatal(err)
	}
	// The local view agrees.
	local := &node.Local{Node: fn, Name: "local"}
	d2, err := local.AuthDigest(req)
	if err != nil || d1 != d2 {
		t.Errorf("local/remote digest mismatch: %v", err)
	}
	// Missing ALI errors.
	bad := &node.AuthRequest{Table: "donate", Col: "project",
		Lo: types.Str("x"), Hi: types.Str("x")}
	if _, err := remote.AuthQuery(bad); err == nil {
		t.Error("missing ALI accepted")
	}
}

func TestGossipBetweenNodes(t *testing.T) {
	source := seededNode(t, 6, 5)
	// A fresh node with an empty chain catches up via gossip.
	e2, err := core.Open(core.Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	follower := node.New(e2)
	defer follower.Close()

	addr, _ := source.Serve("127.0.0.1:0")
	peer, err := node.DialNode(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer peer.Close()
	follower.Gossip.AddPeer(peer)
	follower.Gossip.Start()

	deadline := time.Now().Add(5 * time.Second)
	for e2.Height() < source.Engine.Height() && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if e2.Height() != source.Engine.Height() {
		t.Fatalf("follower synced %d of %d blocks", e2.Height(), source.Engine.Height())
	}
	// The follower replayed schema transactions and can answer queries.
	res, err := e2.Execute(`SELECT * FROM donate WHERE donor = "donor01"`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 {
		t.Errorf("follower query rows = %d", len(res.Rows))
	}
}

func TestWireProtocolErrorPaths(t *testing.T) {
	fn := seededNode(t, 3, 4)
	addr, err := fn.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cl, err := network.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// Malformed payloads must come back as errors, not kill the server.
	for _, kind := range []uint8{network.KindBlock, network.KindHeaders,
		network.KindAuthQuery, network.KindAuthDigest} {
		if _, err := cl.Call(kind, []byte{0x01}); err == nil {
			t.Errorf("kind %d accepted garbage payload", kind)
		}
	}
	// Out-of-range block height.
	e := types.NewEncoder(8)
	e.Uint64(999)
	if _, err := cl.Call(network.KindBlock, e.Bytes()); err == nil {
		t.Error("missing block served")
	}
	// Headers beyond the tip return an empty set, not an error.
	e2 := types.NewEncoder(8)
	e2.Uint64(999)
	resp, err := cl.Call(network.KindHeaders, e2.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	d := types.NewDecoder(resp)
	if n, _ := d.Uint32(); n != 0 {
		t.Errorf("beyond-tip headers = %d", n)
	}
	// The connection still works after all those errors.
	if _, err := cl.Call(network.KindHeight, nil); err != nil {
		t.Errorf("connection broken after errors: %v", err)
	}
}

func TestDecodeResultCorruption(t *testing.T) {
	fn := seededNode(t, 2, 3)
	addr, _ := fn.Serve("127.0.0.1:0")
	remote, err := node.DialNode(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()
	res, err := remote.SQL(`SELECT * FROM donate`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Truncated result payloads must error.
	for _, raw := range [][]byte{nil, {0xFF, 0xFF, 0xFF, 0xFF}, {0, 0, 0, 1}} {
		if _, err := node.DecodeResult(raw); err == nil {
			t.Errorf("DecodeResult(%v) accepted", raw)
		}
	}
}

func TestServeBadAddress(t *testing.T) {
	fn := seededNode(t, 1, 1)
	if _, err := fn.Serve("256.0.0.1:99999"); err == nil {
		t.Error("bad listen address accepted")
	}
}

func TestAuthRequestSystemColumnOverWire(t *testing.T) {
	fn := seededNode(t, 3, 6)
	addr, _ := fn.Serve("127.0.0.1:0")
	remote, err := node.DialNode(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()
	// Authenticated tracking on the system column tname, with a window.
	req := &node.AuthRequest{Table: "", Col: "tname",
		Lo: types.Str("donate"), Hi: types.Str("donate"),
		WinStart: 1000, WinEnd: 2000}
	ans, err := remote.AuthQuery(req)
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Blocks) == 0 {
		t.Fatal("windowed tracking answer empty")
	}
	for _, b := range ans.Blocks {
		if b.Bid > 2 {
			t.Errorf("block %d outside window answered", b.Bid)
		}
	}
}
