package node

import (
	"fmt"
	"time"

	"sebdb/internal/auth"
	"sebdb/internal/core"
	"sebdb/internal/network"
	"sebdb/internal/types"
)

// QueryNode is the surface thin clients and peers use to talk to a full
// node — implemented both in-process (*Local) and over TCP (*Remote).
type QueryNode interface {
	ID() string
	Height() (uint64, error)
	BlockAt(h uint64) (*types.Block, error)
	Headers(from uint64) ([]types.BlockHeader, error)
	AuthQuery(r *AuthRequest) (*auth.Answer, error)
	AuthDigest(r *AuthRequest) ([32]byte, error)
	SQL(query string) (*core.Result, error)
	SnapshotOffer() (*SnapshotOffer, error)
	SnapshotChunk(idx uint32) ([]byte, error)
}

// Remote is a TCP client stub for a full node; it implements QueryNode
// and network.Peer.
type Remote struct {
	addr   string
	client *network.Client
}

// DialNode connects to a full node at addr.
func DialNode(addr string) (*Remote, error) {
	cl, err := network.Dial(addr)
	if err != nil {
		return nil, err
	}
	return &Remote{addr: addr, client: cl}, nil
}

// Close closes the connection.
func (r *Remote) Close() error { return r.client.Close() }

// TuneCalls passes deadline and retry settings to the underlying wire
// client: timeout bounds each request/response exchange, retries bounds
// redial-and-resend attempts after transport failures, backoff is the
// pause before each retry. Zero timeout removes the bound.
func (r *Remote) TuneCalls(timeout time.Duration, retries int, backoff time.Duration) {
	r.client.SetTimeout(timeout)
	r.client.SetRetry(retries, backoff)
}

// ID returns the node's address as its identity.
func (r *Remote) ID() string { return r.addr }

// Height fetches the peer's chain height.
func (r *Remote) Height() (uint64, error) {
	resp, err := r.client.Call(network.KindHeight, nil)
	if err != nil {
		return 0, err
	}
	return types.NewDecoder(resp).Uint64()
}

// BlockAt fetches one block.
func (r *Remote) BlockAt(h uint64) (*types.Block, error) {
	e := types.NewEncoder(8)
	e.Uint64(h)
	resp, err := r.client.Call(network.KindBlock, e.Bytes())
	if err != nil {
		return nil, err
	}
	return types.DecodeBlock(types.NewDecoder(resp))
}

// Headers fetches headers starting at height from.
func (r *Remote) Headers(from uint64) ([]types.BlockHeader, error) {
	e := types.NewEncoder(8)
	e.Uint64(from)
	resp, err := r.client.Call(network.KindHeaders, e.Bytes())
	if err != nil {
		return nil, err
	}
	d := types.NewDecoder(resp)
	cnt, err := d.Uint32()
	if err != nil {
		return nil, err
	}
	if int(cnt) > d.Remaining() {
		return nil, types.ErrCorrupt
	}
	out := make([]types.BlockHeader, cnt)
	for i := range out {
		if out[i], err = types.DecodeBlockHeader(d); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// AuthQuery runs phase one of the §VI protocol.
func (r *Remote) AuthQuery(req *AuthRequest) (*auth.Answer, error) {
	resp, err := r.client.Call(network.KindAuthQuery, req.encode())
	if err != nil {
		return nil, err
	}
	return decodeAnswer(resp)
}

// AuthDigest runs phase two.
func (r *Remote) AuthDigest(req *AuthRequest) ([32]byte, error) {
	var out [32]byte
	resp, err := r.client.Call(network.KindAuthDigest, req.encode())
	if err != nil {
		return out, err
	}
	if len(resp) != 32 {
		return out, fmt.Errorf("node: digest of %d bytes", len(resp))
	}
	copy(out[:], resp)
	return out, nil
}

// SQL runs a SQL-like statement on the remote node.
func (r *Remote) SQL(query string) (*core.Result, error) {
	resp, err := r.client.Call(network.KindSQL, []byte(query))
	if err != nil {
		return nil, err
	}
	return DecodeResult(resp)
}

// Local adapts a FullNode to QueryNode without a network hop —
// simulations and benchmarks use it to avoid socket noise.
type Local struct {
	Node *FullNode
	Name string
}

// ID returns the node name.
func (l *Local) ID() string { return l.Name }

// Height returns the local chain height.
func (l *Local) Height() (uint64, error) { return l.Node.Engine.Height(), nil }

// BlockAt reads a local block.
func (l *Local) BlockAt(h uint64) (*types.Block, error) { return l.Node.Engine.Block(h) }

// Headers returns local headers from the given height.
func (l *Local) Headers(from uint64) ([]types.BlockHeader, error) {
	hs := l.Node.Engine.Headers()
	if from > uint64(len(hs)) {
		from = uint64(len(hs))
	}
	return hs[from:], nil
}

// AuthQuery serves phase one locally.
func (l *Local) AuthQuery(r *AuthRequest) (*auth.Answer, error) {
	ali, eligible, height, err := l.Node.resolve(r)
	if err != nil {
		return nil, err
	}
	return auth.Serve(ali, height, eligible, r.Lo, r.Hi), nil
}

// AuthDigest serves phase two locally.
func (l *Local) AuthDigest(r *AuthRequest) ([32]byte, error) {
	ali, eligible, height, err := l.Node.resolve(r)
	if err != nil {
		return [32]byte{}, err
	}
	return auth.Digest(ali, height, eligible, r.Lo, r.Hi), nil
}

// SQL executes locally.
func (l *Local) SQL(query string) (*core.Result, error) {
	return l.Node.Engine.Execute(query)
}

var (
	_ QueryNode    = (*Remote)(nil)
	_ QueryNode    = (*Local)(nil)
	_ network.Peer = (*Remote)(nil)
	_ network.Peer = (*Local)(nil)
)
