package node

import (
	"fmt"
	"hash/crc32"

	"sebdb/internal/network"
	"sebdb/internal/obs"
	"sebdb/internal/snapshot"
	"sebdb/internal/storage"
	"sebdb/internal/types"
)

// Snapshot fast-sync: a fresh node fetches a peer's checkpoint instead
// of re-deriving every index by replaying the whole chain. The block
// bodies still stream over the existing block protocol — the chain
// remains the only truth — but the expensive part of bootstrap, the
// derived-state rebuild, is skipped entirely. The checkpoint's anchor
// is verified against the linkage- and signature-checked header chain
// before anything is installed, so a lying peer can slow a node down
// but never poison it.

// snapChunkSize keeps each chunk frame well under network.MaxFrame.
const snapChunkSize = 1 << 20

// maxSnapshotBytes bounds a serveable checkpoint payload; FastSync
// rejects offers claiming more than the same bound.
const maxSnapshotBytes = network.MaxFrame * 64

// SnapshotOffer describes the checkpoint a peer is willing to serve.
type SnapshotOffer struct {
	// Height and Anchor pin the checkpoint (state covers [0, Height),
	// Anchor is block Height-1's hash).
	Height uint64
	Anchor types.Hash
	// Size and CRC describe the raw checkpoint payload; Chunks is how
	// many ChunkSize-sized pieces it transfers as.
	Size      uint64
	CRC       uint32
	ChunkSize uint32
	Chunks    uint32
}

func (o *SnapshotOffer) encode() []byte {
	e := types.NewEncoder(64)
	e.Uint64(o.Height)
	e.Bytes32(o.Anchor)
	e.Uint64(o.Size)
	e.Uint32(o.CRC)
	e.Uint32(o.ChunkSize)
	e.Uint32(o.Chunks)
	return e.Bytes()
}

func decodeSnapshotOffer(buf []byte) (*SnapshotOffer, error) {
	d := types.NewDecoder(buf)
	o := &SnapshotOffer{}
	var err error
	if o.Height, err = d.Uint64(); err != nil {
		return nil, err
	}
	if o.Anchor, err = d.Bytes32(); err != nil {
		return nil, err
	}
	if o.Size, err = d.Uint64(); err != nil {
		return nil, err
	}
	if o.CRC, err = d.Uint32(); err != nil {
		return nil, err
	}
	if o.ChunkSize, err = d.Uint32(); err != nil {
		return nil, err
	}
	if o.Chunks, err = d.Uint32(); err != nil {
		return nil, err
	}
	return o, nil
}

// offerFromManifest derives the wire offer for a manifest+payload pair.
func offerFromManifest(m *snapshot.Manifest, payload []byte) (*SnapshotOffer, error) {
	if uint64(len(payload)) > maxSnapshotBytes {
		return nil, fmt.Errorf("node: checkpoint of %d bytes exceeds the serveable bound", len(payload))
	}
	size := uint64(len(payload))
	return &SnapshotOffer{
		Height:    m.Height,
		Anchor:    m.Anchor,
		Size:      size,
		CRC:       m.CRC,
		ChunkSize: snapChunkSize,
		Chunks:    uint32((size + snapChunkSize - 1) / snapChunkSize),
	}, nil
}

func (n *FullNode) handleSnapOffer([]byte) ([]byte, error) {
	m, payload, err := n.Engine.SnapshotDir().Raw()
	if err != nil {
		return nil, err
	}
	if m == nil {
		return nil, fmt.Errorf("node: no checkpoint available")
	}
	o, err := offerFromManifest(m, payload)
	if err != nil {
		return nil, err
	}
	return o.encode(), nil
}

func (n *FullNode) handleSnapChunk(payload []byte) ([]byte, error) {
	idx, err := types.NewDecoder(payload).Uint32()
	if err != nil {
		return nil, err
	}
	m, raw, err := n.Engine.SnapshotDir().Raw()
	if err != nil {
		return nil, err
	}
	if m == nil {
		return nil, fmt.Errorf("node: no checkpoint available")
	}
	lo := uint64(idx) * snapChunkSize
	if lo >= uint64(len(raw)) {
		return nil, fmt.Errorf("node: chunk %d beyond checkpoint of %d bytes", idx, len(raw))
	}
	hi := lo + snapChunkSize
	if hi > uint64(len(raw)) {
		hi = uint64(len(raw))
	}
	e := types.NewEncoder(int(hi-lo) + 16)
	e.Uint32(idx)
	e.Blob(raw[lo:hi])
	return e.Bytes(), nil
}

// SnapshotOffer asks the peer what checkpoint it can serve.
func (r *Remote) SnapshotOffer() (*SnapshotOffer, error) {
	resp, err := r.client.Call(network.KindSnapOffer, nil)
	if err != nil {
		return nil, err
	}
	return decodeSnapshotOffer(resp)
}

// SnapshotChunk fetches one checkpoint chunk by index.
func (r *Remote) SnapshotChunk(idx uint32) ([]byte, error) {
	e := types.NewEncoder(8)
	e.Uint32(idx)
	resp, err := r.client.Call(network.KindSnapChunk, e.Bytes())
	if err != nil {
		return nil, err
	}
	d := types.NewDecoder(resp)
	got, err := d.Uint32()
	if err != nil {
		return nil, err
	}
	if got != idx {
		return nil, fmt.Errorf("node: chunk %d answered for request %d", got, idx)
	}
	return d.Blob()
}

// SnapshotOffer serves the offer without a network hop.
func (l *Local) SnapshotOffer() (*SnapshotOffer, error) {
	m, payload, err := l.Node.Engine.SnapshotDir().Raw()
	if err != nil {
		return nil, err
	}
	if m == nil {
		return nil, fmt.Errorf("node: no checkpoint available")
	}
	return offerFromManifest(m, payload)
}

// SnapshotChunk serves one chunk without a network hop.
func (l *Local) SnapshotChunk(idx uint32) ([]byte, error) {
	e := types.NewEncoder(8)
	e.Uint32(idx)
	resp, err := l.Node.handleSnapChunk(e.Bytes())
	if err != nil {
		return nil, err
	}
	d := types.NewDecoder(resp)
	if _, err := d.Uint32(); err != nil {
		return nil, err
	}
	return d.Blob()
}

// FastSyncResult summarises one bootstrap.
type FastSyncResult struct {
	// CheckpointHeight is the height of the installed checkpoint.
	CheckpointHeight uint64
	// Blocks is how many block bodies were streamed into local storage.
	Blocks uint64
	// ChunkBytes is the total checkpoint transfer volume.
	ChunkBytes uint64
}

// FastSync bootstraps an empty data directory from a peer: it fetches
// the peer's checkpoint offer, independently verifies the offered
// anchor against the peer's linkage- and signature-checked header
// chain, streams the block bodies for [0, Height) into local storage
// (verifying each against the agreed headers), downloads and CRC-checks
// the checkpoint chunks, and installs the checkpoint. A subsequent
// core.Open then seeds all derived state from the checkpoint and
// replays nothing; blocks past the checkpoint arrive through normal
// gossip. reg selects the metrics registry (nil = obs.Default).
func FastSync(dataDir string, peer QueryNode, reg *obs.Registry) (*FastSyncResult, error) {
	if reg == nil {
		reg = obs.Default
	}
	offer, err := peer.SnapshotOffer()
	if err != nil {
		return nil, err
	}
	if offer.Height == 0 || offer.ChunkSize == 0 || offer.Chunks == 0 {
		return nil, fmt.Errorf("node: degenerate snapshot offer")
	}
	if uint64(offer.Chunks)*uint64(offer.ChunkSize) > maxSnapshotBytes {
		return nil, fmt.Errorf("node: snapshot offer of %d chunks is implausible", offer.Chunks)
	}

	// The header chain is the consensus-agreed spine: verify linkage and
	// signatures first, then demand the offered anchor sits on it.
	headers, err := peer.Headers(0)
	if err != nil {
		return nil, err
	}
	if uint64(len(headers)) < offer.Height {
		return nil, fmt.Errorf("node: offer at height %d beyond peer's %d headers", offer.Height, len(headers))
	}
	for i := range headers {
		if headers[i].Height != uint64(i) {
			return nil, fmt.Errorf("node: header %d carries height %d", i, headers[i].Height)
		}
		if i > 0 && headers[i].PrevHash != headers[i-1].Hash() {
			return nil, fmt.Errorf("node: header chain breaks at height %d", i)
		}
		if !headers[i].VerifySig() {
			return nil, fmt.Errorf("node: header %d fails signature verification", i)
		}
	}
	if headers[offer.Height-1].Hash() != offer.Anchor {
		return nil, fmt.Errorf("node: offered anchor disagrees with the header chain at height %d", offer.Height-1)
	}

	// Stream the block bodies backing the checkpoint into local storage.
	// Appending the same blocks reproduces the same segment layout, so
	// the checkpoint's embedded storage metadata verifies on Open.
	st, err := storage.Open(dataDir, storage.Options{})
	if err != nil {
		return nil, err
	}
	if st.Count() != 0 {
		cerr := st.Close()
		return nil, fmt.Errorf("node: fast-sync needs an empty data directory (found %d blocks; close err %v)", st.Count(), cerr)
	}
	mBlocks := reg.Counter("sebdb_fastsync_blocks_total")
	for h := uint64(0); h < offer.Height; h++ {
		b, err := peer.BlockAt(h)
		if err != nil {
			cerr := st.Close()
			return nil, fmt.Errorf("node: fast-sync block %d: %w (close err %v)", h, err, cerr)
		}
		if b.Header.Hash() != headers[h].Hash() {
			cerr := st.Close()
			return nil, fmt.Errorf("node: peer served a block %d off the agreed chain (close err %v)", h, cerr)
		}
		if _, err := st.Append(b); err != nil {
			cerr := st.Close()
			return nil, fmt.Errorf("node: fast-sync append %d: %w (close err %v)", h, err, cerr)
		}
		mBlocks.Inc()
	}
	if err := st.Close(); err != nil {
		return nil, err
	}

	// Download and reassemble the checkpoint payload.
	mChunks := reg.Counter("sebdb_fastsync_chunks_total")
	mBytes := reg.Counter("sebdb_fastsync_chunk_bytes_total")
	hLat := reg.Histogram("sebdb_fastsync_chunk_micros")
	payload := make([]byte, 0, offer.Size)
	for i := uint32(0); i < offer.Chunks; i++ {
		t0 := reg.Now()
		chunk, err := peer.SnapshotChunk(i)
		if err != nil {
			return nil, err
		}
		hLat.Observe(reg.Now() - t0)
		mChunks.Inc()
		mBytes.Add(uint64(len(chunk)))
		payload = append(payload, chunk...)
	}
	if uint64(len(payload)) != offer.Size {
		return nil, fmt.Errorf("node: checkpoint transfer of %d bytes, offer said %d", len(payload), offer.Size)
	}
	if crc32.ChecksumIEEE(payload) != offer.CRC {
		return nil, fmt.Errorf("node: checkpoint transfer fails CRC")
	}

	// Install decodes (rejecting any structural tampering) and persists
	// atomically; its own anchor check re-verifies against the payload.
	ck, err := snapshot.NewDir(nil, dataDir).Install(payload)
	if err != nil {
		return nil, err
	}
	if ck.Height != offer.Height || ck.Anchor != offer.Anchor {
		return nil, fmt.Errorf("node: installed checkpoint disagrees with its offer")
	}
	return &FastSyncResult{
		CheckpointHeight: ck.Height,
		Blocks:           offer.Height,
		ChunkBytes:       uint64(len(payload)),
	}, nil
}
