package node

import (
	"fmt"
	"hash/crc32"

	"sebdb/internal/core"
	"sebdb/internal/network"
	"sebdb/internal/obs"
	"sebdb/internal/snapshot"
	"sebdb/internal/types"
)

// Snapshot fast-sync: a fresh node bootstraps from a peer in one
// streaming pass instead of the block-by-block catch-up of gossip. The
// trust model is strict — the peer supplies nothing the node installs
// unverified:
//
//   - The header chain is linkage- and signature-checked first; every
//     streamed block body must Merkle-commit to its agreed header
//     (storage.Append re-validates the TransRoot), so bodies are
//     tamper-evident.
//   - All derived state — catalog, contracts, table bitmaps, layered
//     indexes, ALIs, high-water marks — is rebuilt locally from those
//     verified bodies while they stream, and the checkpoint installed
//     at the end is the locally derived one.
//   - The peer's own checkpoint is downloaded as an integrity
//     cross-check and an index-definition hint: its chain-derived facts
//     must agree with the local rebuild (snapshot.Diverges), and its
//     user index definitions (names only, never contents) tell the
//     fresh node which indexes to build from its own chain.
//
// A lying peer can therefore waste a node's time but never poison its
// state: the worst a fabricated checkpoint achieves is a rejected sync.

// snapChunkSize keeps each chunk frame well under network.MaxFrame.
const snapChunkSize = 1 << 20

// maxSnapshotBytes bounds a serveable checkpoint payload; FastSync
// rejects offers claiming more than the same bound.
const maxSnapshotBytes = network.MaxFrame * 64

// SnapshotOffer describes the checkpoint a peer is willing to serve.
type SnapshotOffer struct {
	// Height and Anchor pin the checkpoint (state covers [0, Height),
	// Anchor is block Height-1's hash).
	Height uint64
	Anchor types.Hash
	// Size and CRC describe the raw checkpoint payload; Chunks is how
	// many ChunkSize-sized pieces it transfers as.
	Size      uint64
	CRC       uint32
	ChunkSize uint32
	Chunks    uint32
}

func (o *SnapshotOffer) encode() []byte {
	e := types.NewEncoder(64)
	e.Uint64(o.Height)
	e.Bytes32(o.Anchor)
	e.Uint64(o.Size)
	e.Uint32(o.CRC)
	e.Uint32(o.ChunkSize)
	e.Uint32(o.Chunks)
	return e.Bytes()
}

func decodeSnapshotOffer(buf []byte) (*SnapshotOffer, error) {
	d := types.NewDecoder(buf)
	o := &SnapshotOffer{}
	var err error
	if o.Height, err = d.Uint64(); err != nil {
		return nil, err
	}
	if o.Anchor, err = d.Bytes32(); err != nil {
		return nil, err
	}
	if o.Size, err = d.Uint64(); err != nil {
		return nil, err
	}
	if o.CRC, err = d.Uint32(); err != nil {
		return nil, err
	}
	if o.ChunkSize, err = d.Uint32(); err != nil {
		return nil, err
	}
	if o.Chunks, err = d.Uint32(); err != nil {
		return nil, err
	}
	return o, nil
}

// checkOffer rejects offers whose self-declared geometry is degenerate
// or implausible before any allocation or transfer happens — Size,
// ChunkSize and Chunks are all attacker-controlled.
func checkOffer(o *SnapshotOffer) error {
	if o.Height == 0 || o.ChunkSize == 0 || o.Chunks == 0 {
		return fmt.Errorf("node: degenerate snapshot offer")
	}
	if uint64(o.Chunks)*uint64(o.ChunkSize) > maxSnapshotBytes {
		return fmt.Errorf("node: snapshot offer of %d chunks is implausible", o.Chunks)
	}
	if o.Size > maxSnapshotBytes || o.Size > uint64(o.Chunks)*uint64(o.ChunkSize) {
		return fmt.Errorf("node: snapshot offer of %d bytes is implausible", o.Size)
	}
	return nil
}

// offerFromManifest derives the wire offer for the manifest's payload.
func offerFromManifest(m *snapshot.Manifest) (*SnapshotOffer, error) {
	if m.Size > maxSnapshotBytes {
		return nil, fmt.Errorf("node: checkpoint of %d bytes exceeds the serveable bound", m.Size)
	}
	return &SnapshotOffer{
		Height:    m.Height,
		Anchor:    m.Anchor,
		Size:      m.Size,
		CRC:       m.CRC,
		ChunkSize: snapChunkSize,
		Chunks:    uint32((m.Size + snapChunkSize - 1) / snapChunkSize),
	}, nil
}

func (n *FullNode) handleSnapOffer([]byte) ([]byte, error) {
	m, err := n.Engine.SnapshotDir().Manifest()
	if err != nil {
		return nil, err
	}
	if m == nil {
		return nil, fmt.Errorf("node: no checkpoint available")
	}
	o, err := offerFromManifest(m)
	if err != nil {
		return nil, err
	}
	return o.encode(), nil
}

func (n *FullNode) handleSnapChunk(payload []byte) ([]byte, error) {
	idx, err := types.NewDecoder(payload).Uint32()
	if err != nil {
		return nil, err
	}
	raw, err := n.snapshotPayload()
	if err != nil {
		return nil, err
	}
	lo := uint64(idx) * snapChunkSize
	if lo >= uint64(len(raw)) {
		return nil, fmt.Errorf("node: chunk %d beyond checkpoint of %d bytes", idx, len(raw))
	}
	hi := lo + snapChunkSize
	if hi > uint64(len(raw)) {
		hi = uint64(len(raw))
	}
	e := types.NewEncoder(int(hi-lo) + 16)
	e.Uint32(idx)
	e.Blob(raw[lo:hi])
	return e.Bytes(), nil
}

// snapshotPayload returns the current checkpoint payload, memoised per
// checkpoint generation: each request re-reads only the small manifest
// and the full payload is read (and CRC-verified) from disk once, not
// once per chunk.
func (n *FullNode) snapshotPayload() ([]byte, error) {
	dir := n.Engine.SnapshotDir()
	m, err := dir.Manifest()
	if err != nil {
		return nil, err
	}
	if m == nil {
		return nil, fmt.Errorf("node: no checkpoint available")
	}
	n.snap.mu.Lock()
	defer n.snap.mu.Unlock()
	if n.snap.payload != nil && n.snap.man == *m {
		return n.snap.payload, nil
	}
	//sebdb:ignore-lockio reason: n.snap.mu guards only the serving cache, not the engine; reading the checkpoint under it is what keeps concurrent chunk requests from re-reading the file
	mm, payload, err := dir.Raw()
	if err != nil {
		return nil, err
	}
	if mm == nil {
		return nil, fmt.Errorf("node: no checkpoint available")
	}
	n.snap.man, n.snap.payload = *mm, payload
	return payload, nil
}

// SnapshotOffer asks the peer what checkpoint it can serve.
func (r *Remote) SnapshotOffer() (*SnapshotOffer, error) {
	resp, err := r.client.Call(network.KindSnapOffer, nil)
	if err != nil {
		return nil, err
	}
	return decodeSnapshotOffer(resp)
}

// SnapshotChunk fetches one checkpoint chunk by index.
func (r *Remote) SnapshotChunk(idx uint32) ([]byte, error) {
	e := types.NewEncoder(8)
	e.Uint32(idx)
	resp, err := r.client.Call(network.KindSnapChunk, e.Bytes())
	if err != nil {
		return nil, err
	}
	d := types.NewDecoder(resp)
	got, err := d.Uint32()
	if err != nil {
		return nil, err
	}
	if got != idx {
		return nil, fmt.Errorf("node: chunk %d answered for request %d", got, idx)
	}
	return d.Blob()
}

// SnapshotOffer serves the offer without a network hop.
func (l *Local) SnapshotOffer() (*SnapshotOffer, error) {
	resp, err := l.Node.handleSnapOffer(nil)
	if err != nil {
		return nil, err
	}
	return decodeSnapshotOffer(resp)
}

// SnapshotChunk serves one chunk without a network hop.
func (l *Local) SnapshotChunk(idx uint32) ([]byte, error) {
	e := types.NewEncoder(8)
	e.Uint32(idx)
	resp, err := l.Node.handleSnapChunk(e.Bytes())
	if err != nil {
		return nil, err
	}
	d := types.NewDecoder(resp)
	if _, err := d.Uint32(); err != nil {
		return nil, err
	}
	return d.Blob()
}

// FastSyncResult summarises one bootstrap.
type FastSyncResult struct {
	// CheckpointHeight is the height of the installed checkpoint.
	CheckpointHeight uint64
	// Blocks is how many block bodies were streamed into local storage.
	Blocks uint64
	// ChunkBytes is the total checkpoint transfer volume.
	ChunkBytes uint64
}

// FastSync bootstraps an empty data directory from a peer. It fetches
// the peer's checkpoint offer, independently verifies the offered
// anchor against the peer's linkage- and signature-checked header
// chain, then streams the block bodies for [0, Height) through a local
// engine — each body is checked against its agreed header (hash and
// Merkle root) and indexed as it lands, so every piece of derived state
// is rebuilt from verified data. The peer's checkpoint payload is then
// downloaded, CRC-checked and cross-validated against the local rebuild
// (its user index definitions are adopted and backfilled from the local
// chain); the checkpoint finally installed is the locally derived one,
// never the peer's bytes. A subsequent core.Open seeds all derived
// state from that checkpoint and replays nothing; blocks past the
// checkpoint arrive through normal gossip. reg selects the metrics
// registry (nil = obs.Default).
func FastSync(dataDir string, peer QueryNode, reg *obs.Registry) (*FastSyncResult, error) {
	return FastSyncWithLog(dataDir, peer, reg, nil)
}

// FastSyncWithLog is FastSync with structured progress and rejection
// events on log (nil disables them).
func FastSyncWithLog(dataDir string, peer QueryNode, reg *obs.Registry, log *obs.Logger) (*FastSyncResult, error) {
	if reg == nil {
		reg = obs.Default
	}
	log = log.With("fastsync")
	offer, err := peer.SnapshotOffer()
	if err != nil {
		return nil, err
	}
	if err := checkOffer(offer); err != nil {
		log.Warn("snapshot offer rejected", "err", err)
		return nil, err
	}
	log.Info("snapshot offer accepted",
		"height", offer.Height, "bytes", offer.Size, "chunks", offer.Chunks)

	// The header chain is the consensus-agreed spine: verify linkage and
	// signatures first, then demand the offered anchor sits on it.
	headers, err := peer.Headers(0)
	if err != nil {
		return nil, err
	}
	if uint64(len(headers)) < offer.Height {
		return nil, fmt.Errorf("node: offer at height %d beyond peer's %d headers", offer.Height, len(headers))
	}
	for i := range headers {
		if headers[i].Height != uint64(i) {
			return nil, fmt.Errorf("node: header %d carries height %d", i, headers[i].Height)
		}
		if i > 0 && headers[i].PrevHash != headers[i-1].Hash() {
			return nil, fmt.Errorf("node: header chain breaks at height %d", i)
		}
		if !headers[i].VerifySig() {
			return nil, fmt.Errorf("node: header %d fails signature verification", i)
		}
	}
	if headers[offer.Height-1].Hash() != offer.Anchor {
		return nil, fmt.Errorf("node: offered anchor disagrees with the header chain at height %d", offer.Height-1)
	}

	eng, err := core.Open(core.Config{Dir: dataDir, Obs: reg})
	if err != nil {
		return nil, err
	}
	res, err := fastSyncInto(eng, offer, headers, peer, reg, log)
	cerr := eng.Close()
	if err != nil {
		return nil, err
	}
	if cerr != nil {
		return nil, cerr
	}
	log.Info("fast-sync complete",
		"height", res.CheckpointHeight, "blocks", res.Blocks, "chunk_bytes", res.ChunkBytes)
	return res, nil
}

// fastSyncInto streams and verifies the chain into eng, rebuilds the
// derived state, cross-checks the peer's checkpoint and persists the
// local one. It never closes eng.
func fastSyncInto(eng *core.Engine, offer *SnapshotOffer, headers []types.BlockHeader, peer QueryNode, reg *obs.Registry, log *obs.Logger) (*FastSyncResult, error) {
	if eng.Height() != 0 {
		return nil, fmt.Errorf("node: fast-sync needs an empty data directory (found %d blocks)", eng.Height())
	}

	// Stream the block bodies through the engine: ApplyBlock's append
	// re-validates each body against its header's Merkle root, and the
	// header must be the consensus-agreed one for that height, so the
	// catalog, bitmaps and indexes built here derive from verified data
	// only.
	mBlocks := reg.Counter("sebdb_fastsync_blocks_total")
	for h := uint64(0); h < offer.Height; h++ {
		b, err := peer.BlockAt(h)
		if err != nil {
			return nil, fmt.Errorf("node: fast-sync block %d: %w", h, err)
		}
		if b.Header.Hash() != headers[h].Hash() {
			return nil, fmt.Errorf("node: peer served a block %d off the agreed chain", h)
		}
		if err := eng.ApplyBlock(b); err != nil {
			return nil, fmt.Errorf("node: fast-sync append %d: %w", h, err)
		}
		mBlocks.Inc()
	}

	// Download and reassemble the peer's checkpoint payload. The offer
	// geometry was validated up front, so Size bounds the allocation.
	mChunks := reg.Counter("sebdb_fastsync_chunks_total")
	mBytes := reg.Counter("sebdb_fastsync_chunk_bytes_total")
	hLat := reg.Histogram("sebdb_fastsync_chunk_micros")
	payload := make([]byte, 0, offer.Size)
	for i := uint32(0); i < offer.Chunks; i++ {
		t0 := reg.Now()
		chunk, err := peer.SnapshotChunk(i)
		if err != nil {
			return nil, err
		}
		hLat.Observe(reg.Now() - t0)
		mChunks.Inc()
		mBytes.Add(uint64(len(chunk)))
		if uint64(len(chunk)) > uint64(offer.ChunkSize) ||
			uint64(len(payload))+uint64(len(chunk)) > offer.Size {
			return nil, fmt.Errorf("node: chunk %d overflows the offered checkpoint size", i)
		}
		payload = append(payload, chunk...)
	}
	if uint64(len(payload)) != offer.Size {
		return nil, fmt.Errorf("node: checkpoint transfer of %d bytes, offer said %d", len(payload), offer.Size)
	}
	if crc32.ChecksumIEEE(payload) != offer.CRC {
		return nil, fmt.Errorf("node: checkpoint transfer fails CRC")
	}
	ck, err := snapshot.Decode(payload)
	if err != nil {
		return nil, err
	}
	if ck.Height != offer.Height || ck.Anchor != offer.Anchor {
		return nil, fmt.Errorf("node: peer checkpoint disagrees with its offer")
	}

	// Adopt the peer's user index *definitions* (never their contents):
	// each one is created locally and backfilled from the verified
	// chain, exactly as if the operator had issued it.
	for i := range ck.Indexes {
		key := ck.Indexes[i].Key
		if key == ".senid" || key == ".tname" {
			continue
		}
		table, col := splitIndexKey(key)
		if err := eng.CreateIndex(table, col); err != nil {
			return nil, fmt.Errorf("node: peer index %q: %w", key, err)
		}
	}
	for i := range ck.ALIs {
		table, col := splitIndexKey(ck.ALIs[i].Key)
		if err := eng.CreateAuthIndex(table, col); err != nil {
			return nil, fmt.Errorf("node: peer auth index %q: %w", ck.ALIs[i].Key, err)
		}
	}

	// Cross-validate: every chain-derived fact in the peer's checkpoint
	// must match the state just rebuilt from verified blocks. What gets
	// installed is the local derivation either way; a divergence only
	// proves the peer lied and aborts the sync.
	local, err := eng.BuildCheckpoint()
	if err != nil {
		return nil, err
	}
	if err := snapshot.Diverges(ck, local); err != nil {
		reg.Counter("sebdb_fastsync_divergent_checkpoints_total").Inc()
		log.Error("peer checkpoint diverges from local rebuild",
			"height", ck.Height, "err", err)
		return nil, fmt.Errorf("node: peer checkpoint rejected: %w", err)
	}
	if err := eng.SnapshotDir().Write(local); err != nil {
		return nil, err
	}
	return &FastSyncResult{
		CheckpointHeight: local.Height,
		Blocks:           offer.Height,
		ChunkBytes:       uint64(len(payload)),
	}, nil
}

// splitIndexKey splits an index registry key ("table.col", or ".col"
// for system columns) into its parts.
func splitIndexKey(key string) (table, col string) {
	for i := 0; i < len(key); i++ {
		if key[i] == '.' {
			return key[:i], key[i+1:]
		}
	}
	return "", key
}
