// Package node assembles a SEBDB full node: the core engine, the gossip
// component for block propagation, and a TCP service answering peers
// (height/block/header sync) and thin clients (SQL and the two-phase
// authenticated query protocol of §VI).
package node

import (
	"fmt"
	"net"
	"sync"
	"time"

	"sebdb/internal/auth"
	"sebdb/internal/core"
	"sebdb/internal/index/bitmap"
	"sebdb/internal/network"
	"sebdb/internal/replica"
	"sebdb/internal/snapshot"
	"sebdb/internal/types"
)

// FullNode is one SEBDB participant.
type FullNode struct {
	Engine   *core.Engine
	Gossip   *network.Gossiper
	server   *network.Server
	listener net.Listener

	// leader is the replication subscription service (wire kind
	// KindSubscribe); every full node offers it, so any node can feed
	// read replicas.
	leader *replica.Leader

	// snap memoises the checkpoint payload served to fast-syncing peers
	// so a full transfer reads the file once per checkpoint generation,
	// not once per chunk (see snapshotPayload).
	snap snapCache
}

// snapCache holds the last checkpoint payload served, keyed by its
// manifest: a newer checkpoint changes the manifest and invalidates it.
type snapCache struct {
	mu      sync.Mutex
	man     snapshot.Manifest
	payload []byte
}

// New wraps an engine as a full node.
func New(engine *core.Engine) *FullNode {
	n := &FullNode{Engine: engine}
	n.Gossip = network.NewGossiper(engine, 100*time.Millisecond)
	n.server = network.NewServer()
	n.server.Handle(network.KindHeight, n.handleHeight)
	n.server.Handle(network.KindBlock, n.handleBlock)
	n.server.Handle(network.KindHeaders, n.handleHeaders)
	n.server.Handle(network.KindAuthQuery, n.handleAuthQuery)
	n.server.Handle(network.KindAuthDigest, n.handleAuthDigest)
	n.server.Handle(network.KindSQL, n.handleSQL)
	n.server.Handle(network.KindSnapOffer, n.handleSnapOffer)
	n.server.Handle(network.KindSnapChunk, n.handleSnapChunk)
	n.leader = replica.NewLeader(engine, engine.EventLog())
	n.leader.Register(n.server)
	return n
}

// Replication returns the node's replication subscription service
// (tests shrink its heartbeat through it).
func (n *FullNode) Replication() *replica.Leader { return n.leader }

// Serve starts answering on addr (e.g. "127.0.0.1:0") and returns the
// bound address.
func (n *FullNode) Serve(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	n.listener = ln
	go n.server.Serve(ln)
	return ln.Addr().String(), nil
}

// Close stops serving and gossiping, reporting listener teardown errors.
// The replication service closes first: subscription sessions run inside
// the wire server's connection goroutines, and Server.Close joins them.
func (n *FullNode) Close() error {
	if n.Gossip != nil {
		n.Gossip.Stop()
	}
	if n.leader != nil {
		n.leader.Close()
	}
	if n.listener != nil {
		return n.server.Close()
	}
	return nil
}

func (n *FullNode) handleHeight([]byte) ([]byte, error) {
	e := types.NewEncoder(8)
	e.Uint64(n.Engine.Height())
	return e.Bytes(), nil
}

func (n *FullNode) handleBlock(payload []byte) ([]byte, error) {
	h, err := types.NewDecoder(payload).Uint64()
	if err != nil {
		return nil, err
	}
	b, err := n.Engine.Block(h)
	if err != nil {
		return nil, err
	}
	return b.EncodeBytes(), nil
}

func (n *FullNode) handleHeaders(payload []byte) ([]byte, error) {
	from, err := types.NewDecoder(payload).Uint64()
	if err != nil {
		return nil, err
	}
	hs := n.Engine.Headers()
	if from > uint64(len(hs)) {
		from = uint64(len(hs))
	}
	hs = hs[from:]
	e := types.NewEncoder(64 * len(hs))
	e.Count(len(hs))
	for i := range hs {
		hs[i].Encode(e)
	}
	return e.Bytes(), nil
}

// AuthRequest is the wire form of a §VI phase-one/phase-two query.
type AuthRequest struct {
	// Table and Col name the ALI ("" table = system column).
	Table, Col string
	// Lo and Hi bound the range (equal for point/tracking queries).
	Lo, Hi types.Value
	// WinStart/WinEnd restrict blocks by time; both zero = no window.
	WinStart, WinEnd int64
	// Height pins the snapshot for phase two; zero = server's height.
	Height uint64
}

func (r *AuthRequest) encode() []byte {
	e := types.NewEncoder(128)
	e.Str(r.Table)
	e.Str(r.Col)
	e.Value(r.Lo)
	e.Value(r.Hi)
	e.Int64(r.WinStart)
	e.Int64(r.WinEnd)
	e.Uint64(r.Height)
	return e.Bytes()
}

func decodeAuthRequest(buf []byte) (*AuthRequest, error) {
	d := types.NewDecoder(buf)
	r := &AuthRequest{}
	var err error
	if r.Table, err = d.Str(); err != nil {
		return nil, err
	}
	if r.Col, err = d.Str(); err != nil {
		return nil, err
	}
	if r.Lo, err = d.Value(); err != nil {
		return nil, err
	}
	if r.Hi, err = d.Value(); err != nil {
		return nil, err
	}
	if r.WinStart, err = d.Int64(); err != nil {
		return nil, err
	}
	if r.WinEnd, err = d.Int64(); err != nil {
		return nil, err
	}
	if r.Height, err = d.Uint64(); err != nil {
		return nil, err
	}
	return r, nil
}

// resolve returns the ALI, eligible-block bitmap and snapshot height of
// a request. Everything comes from one pinned view, so VO generation
// never takes the engine lock and the default height, the window
// bitmap and the ALI all describe the same instant — a commit racing
// the request cannot leave the VO anchored at a height the bitmap has
// already outgrown.
func (n *FullNode) resolve(r *AuthRequest) (*auth.ALI, *bitmap.Bitmap, uint64, error) {
	v := n.Engine.CurrentView()
	ali := v.AuthIndex(r.Table, r.Col)
	if ali == nil {
		return nil, nil, 0, fmt.Errorf("node: no authenticated index on %q.%q", r.Table, r.Col)
	}
	var eligible *bitmap.Bitmap
	if r.WinStart != 0 || r.WinEnd != 0 {
		eligible = v.BlockIdx().TimeWindow(r.WinStart, r.WinEnd)
	}
	height := r.Height
	if height == 0 {
		height = v.Height()
	}
	return ali, eligible, height, nil
}

func (n *FullNode) handleAuthQuery(payload []byte) ([]byte, error) {
	r, err := decodeAuthRequest(payload)
	if err != nil {
		return nil, err
	}
	ali, eligible, height, err := n.resolve(r)
	if err != nil {
		return nil, err
	}
	ans := auth.Serve(ali, height, eligible, r.Lo, r.Hi)
	e := types.NewEncoder(1024)
	e.Uint64(ans.Height)
	e.Count(len(ans.Blocks))
	for _, b := range ans.Blocks {
		e.Uint64(b.Bid)
		e.Blob(b.Bytes)
	}
	return e.Bytes(), nil
}

func decodeAnswer(buf []byte) (*auth.Answer, error) {
	d := types.NewDecoder(buf)
	ans := &auth.Answer{}
	var err error
	if ans.Height, err = d.Uint64(); err != nil {
		return nil, err
	}
	cnt, err := d.Uint32()
	if err != nil {
		return nil, err
	}
	if int(cnt) > d.Remaining() {
		return nil, types.ErrCorrupt
	}
	for i := uint32(0); i < cnt; i++ {
		var b auth.BlockVO
		if b.Bid, err = d.Uint64(); err != nil {
			return nil, err
		}
		if b.Bytes, err = d.Blob(); err != nil {
			return nil, err
		}
		ans.Blocks = append(ans.Blocks, b)
	}
	return ans, nil
}

func (n *FullNode) handleAuthDigest(payload []byte) ([]byte, error) {
	r, err := decodeAuthRequest(payload)
	if err != nil {
		return nil, err
	}
	ali, eligible, height, err := n.resolve(r)
	if err != nil {
		return nil, err
	}
	d := auth.Digest(ali, height, eligible, r.Lo, r.Hi)
	return d[:], nil
}

func (n *FullNode) handleSQL(payload []byte) ([]byte, error) {
	res, err := n.Engine.Execute(string(payload))
	if err != nil {
		return nil, err
	}
	e := types.NewEncoder(1024)
	e.Count(len(res.Columns))
	for _, c := range res.Columns {
		e.Str(c)
	}
	e.Count(len(res.Rows))
	for _, row := range res.Rows {
		e.Values(row)
	}
	return e.Bytes(), nil
}

// DecodeResult parses the SQL response payload back into a result.
func DecodeResult(buf []byte) (*core.Result, error) {
	d := types.NewDecoder(buf)
	nc, err := d.Uint32()
	if err != nil {
		return nil, err
	}
	if int(nc) > d.Remaining() {
		return nil, types.ErrCorrupt
	}
	res := &core.Result{}
	for i := uint32(0); i < nc; i++ {
		c, err := d.Str()
		if err != nil {
			return nil, err
		}
		res.Columns = append(res.Columns, c)
	}
	nr, err := d.Uint32()
	if err != nil {
		return nil, err
	}
	if int(nr) > d.Remaining() {
		return nil, types.ErrCorrupt
	}
	for i := uint32(0); i < nr; i++ {
		row, err := d.Values()
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}
