package node_test

import (
	"sync"
	"testing"
	"time"

	"sebdb/internal/core"
	"sebdb/internal/network"
	"sebdb/internal/node"
)

// TestNodeServeSQLGossipStress drives a served node from several SQL
// clients while an initially empty follower gossips the whole chain
// from it over TCP — the serve, query, and gossip paths all active at
// once under the race detector.
func TestNodeServeSQLGossipStress(t *testing.T) {
	src := seededNode(t, 5, 8)
	addr, err := src.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	e2, err := core.Open(core.Config{Dir: t.TempDir(), HistogramDepth: 10})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e2.Close() })
	follower := node.New(e2)
	follower.Gossip = network.NewGossiperSeeded(e2, time.Millisecond, 7)
	t.Cleanup(func() { _ = follower.Close() })

	peer, err := node.DialNode(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer peer.Close()
	follower.Gossip.AddPeer(peer)
	follower.Gossip.Start()

	queries := []string{
		`SELECT * FROM donate WHERE amount BETWEEN 5 AND 9`,
		`SELECT donor FROM donate WHERE project = "education"`,
		`SELECT * FROM donate WHERE donor = "donor01"`,
	}
	const (
		clients = 4
		iters   = 25
	)
	var wg sync.WaitGroup
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := node.DialNode(addr)
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			for i := 0; i < iters; i++ {
				if _, err := c.SQL(queries[(w+i)%len(queries)]); err != nil {
					t.Errorf("client %d: %v", w, err)
					return
				}
				if _, err := c.Height(); err != nil {
					t.Errorf("client %d height: %v", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	deadline := time.Now().Add(5 * time.Second)
	for e2.Height() < src.Engine.Height() && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	follower.Gossip.Stop()
	if got, want := e2.Height(), src.Engine.Height(); got != want {
		t.Fatalf("follower gossiped to height %d, want %d", got, want)
	}

	// The replicated chain answers the same queries.
	res, err := e2.Execute(queries[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Errorf("follower SQL rows = %d, want 5", len(res.Rows))
	}
}
