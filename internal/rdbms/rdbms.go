// Package rdbms is SEBDB's off-chain data substrate: a small embedded
// relational engine standing in for the local MySQL instance the paper
// attaches to each node (§IV-A, §V-C). It provides exactly the surface
// the on-off-chain join and the benchmark need — typed tables, row
// predicates, secondary B+-tree indexes, ordered retrieval, min/max and
// distinct-value queries — behind an interface the executor treats as
// its ODBC/JDBC stand-in.
package rdbms

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"sebdb/internal/index/bptree"
	"sebdb/internal/types"
)

// Column is one attribute of an off-chain table.
type Column struct {
	Name string
	Kind types.Kind
}

// Row is one tuple, in column order.
type Row = []types.Value

// table is the heap storage plus optional secondary indexes.
type table struct {
	name    string
	cols    []Column
	rows    []Row
	indexes map[string]*bptree.Tree // column name -> tree of row ids
}

// DB is an embedded relational database: the node-local RDBMS that
// stores private, off-chain data.
type DB struct {
	mu     sync.RWMutex
	tables map[string]*table
}

// New returns an empty database.
func New() *DB {
	return &DB{tables: make(map[string]*table)}
}

// CreateTable registers a new off-chain table.
func (db *DB) CreateTable(name string, cols []Column) error {
	name = strings.ToLower(name)
	if name == "" || len(cols) == 0 {
		return fmt.Errorf("rdbms: table needs a name and columns")
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.tables[name]; ok {
		return fmt.Errorf("rdbms: table %q already exists", name)
	}
	t := &table{name: name, indexes: make(map[string]*bptree.Tree)}
	seen := map[string]bool{}
	for _, c := range cols {
		cn := strings.ToLower(c.Name)
		if cn == "" || seen[cn] {
			return fmt.Errorf("rdbms: bad column %q in table %q", c.Name, name)
		}
		seen[cn] = true
		t.cols = append(t.cols, Column{Name: cn, Kind: c.Kind})
	}
	db.tables[name] = t
	return nil
}

// Tables lists table names in sorted order.
func (db *DB) Tables() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.tables))
	for n := range db.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// HasTable reports whether name exists.
func (db *DB) HasTable(name string) bool {
	db.mu.RLock()
	defer db.mu.RUnlock()
	_, ok := db.tables[strings.ToLower(name)]
	return ok
}

// Columns returns the column definitions of a table.
func (db *DB) Columns(name string) ([]Column, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, err := db.get(name)
	if err != nil {
		return nil, err
	}
	out := make([]Column, len(t.cols))
	copy(out, t.cols)
	return out, nil
}

func (db *DB) get(name string) (*table, error) {
	t, ok := db.tables[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("rdbms: no such table %q", name)
	}
	return t, nil
}

func (t *table) colIndex(name string) int {
	name = strings.ToLower(name)
	for i, c := range t.cols {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// Insert appends a row, coercing values to the column kinds and
// maintaining any secondary indexes.
func (db *DB) Insert(name string, vals Row) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, err := db.get(name)
	if err != nil {
		return err
	}
	if len(vals) != len(t.cols) {
		return fmt.Errorf("rdbms: table %q expects %d values, got %d", t.name, len(t.cols), len(vals))
	}
	row := make(Row, len(vals))
	for i, v := range vals {
		cv, err := types.Coerce(v, t.cols[i].Kind)
		if err != nil {
			return fmt.Errorf("rdbms: column %q: %w", t.cols[i].Name, err)
		}
		row[i] = cv
	}
	rid := uint64(len(t.rows))
	t.rows = append(t.rows, row)
	for col, idx := range t.indexes {
		idx.Insert(row[t.colIndex(col)], rid)
	}
	return nil
}

// CreateIndex builds a secondary B+-tree index over one column.
func (db *DB) CreateIndex(name, col string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, err := db.get(name)
	if err != nil {
		return err
	}
	ci := t.colIndex(col)
	if ci < 0 {
		return fmt.Errorf("rdbms: table %q has no column %q", t.name, col)
	}
	col = strings.ToLower(col)
	if _, ok := t.indexes[col]; ok {
		return nil
	}
	entries := make([]bptree.Entry, len(t.rows))
	for rid, r := range t.rows {
		entries[rid] = bptree.Entry{Key: r[ci], Ref: uint64(rid)}
	}
	t.indexes[col] = bptree.Bulk(entries, 0)
	return nil
}

// Pred is a row predicate.
type Pred func(Row) bool

// Eq builds a predicate comparing column col (by position) to v.
func Eq(ci int, v types.Value) Pred {
	return func(r Row) bool { return types.Equal(r[ci], v) }
}

// Between builds a predicate checking lo <= row[ci] <= hi.
func Between(ci int, lo, hi types.Value) Pred {
	return func(r Row) bool {
		return types.Compare(r[ci], lo) >= 0 && types.Compare(r[ci], hi) <= 0
	}
}

// ColIndex exposes a column's position for building predicates.
func (db *DB) ColIndex(name, col string) (int, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, err := db.get(name)
	if err != nil {
		return 0, err
	}
	ci := t.colIndex(col)
	if ci < 0 {
		return 0, fmt.Errorf("rdbms: table %q has no column %q", t.name, col)
	}
	return ci, nil
}

// Select returns all rows satisfying every predicate (all rows when
// preds is empty). Rows are copied; callers may retain them.
func (db *DB) Select(name string, preds ...Pred) ([]Row, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, err := db.get(name)
	if err != nil {
		return nil, err
	}
	var out []Row
row:
	for _, r := range t.rows {
		for _, p := range preds {
			if !p(r) {
				continue row
			}
		}
		out = append(out, append(Row(nil), r...))
	}
	return out, nil
}

// SelectRange returns rows with lo <= col <= hi, in col order, using a
// secondary index when one exists.
func (db *DB) SelectRange(name, col string, lo, hi types.Value) ([]Row, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, err := db.get(name)
	if err != nil {
		return nil, err
	}
	ci := t.colIndex(col)
	if ci < 0 {
		return nil, fmt.Errorf("rdbms: table %q has no column %q", t.name, col)
	}
	if idx, ok := t.indexes[strings.ToLower(col)]; ok {
		var out []Row
		idx.Range(lo, hi, func(_ types.Value, rid uint64) bool {
			out = append(out, append(Row(nil), t.rows[rid]...))
			return true
		})
		return out, nil
	}
	var out []Row
	for _, r := range t.rows {
		if types.Compare(r[ci], lo) >= 0 && types.Compare(r[ci], hi) <= 0 {
			out = append(out, append(Row(nil), r...))
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		return types.Compare(out[i][ci], out[j][ci]) < 0
	})
	return out, nil
}

// negInf and posInf are sentinels below and above every real value in
// the total order defined by types.Compare (Null sorts lowest; an
// out-of-range kind tag sorts above all real kinds).
var (
	negInf = types.Null
	posInf = types.Value{Kind: types.KindTimestamp + 100}
)

// SortedBy returns all rows ordered by col — the sorted off-chain input
// of Algorithm 3's sort-merge join.
func (db *DB) SortedBy(name, col string) ([]Row, error) {
	return db.SelectRange(name, col, negInf, posInf)
}

// MinMax returns the smallest and largest value of col (Algorithm 3,
// lines 3–4); ok is false for an empty table.
func (db *DB) MinMax(name, col string) (lo, hi types.Value, ok bool, err error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, err := db.get(name)
	if err != nil {
		return types.Null, types.Null, false, err
	}
	ci := t.colIndex(col)
	if ci < 0 {
		return types.Null, types.Null, false,
			fmt.Errorf("rdbms: table %q has no column %q", t.name, col)
	}
	if len(t.rows) == 0 {
		return types.Null, types.Null, false, nil
	}
	if idx, okIdx := t.indexes[strings.ToLower(col)]; okIdx {
		mn, _ := idx.Min()
		mx, _ := idx.Max()
		return mn, mx, true, nil
	}
	lo, hi = t.rows[0][ci], t.rows[0][ci]
	for _, r := range t.rows[1:] {
		if types.Compare(r[ci], lo) < 0 {
			lo = r[ci]
		}
		if types.Compare(r[ci], hi) > 0 {
			hi = r[ci]
		}
	}
	return lo, hi, true, nil
}

// Distinct returns the distinct values of col in sorted order
// (Algorithm 3's discrete-attribute path).
func (db *DB) Distinct(name, col string) ([]types.Value, error) {
	rows, err := db.SortedBy(name, col)
	if err != nil {
		return nil, err
	}
	ci, err := db.ColIndex(name, col)
	if err != nil {
		return nil, err
	}
	var out []types.Value
	for _, r := range rows {
		if len(out) == 0 || !types.Equal(out[len(out)-1], r[ci]) {
			out = append(out, r[ci])
		}
	}
	return out, nil
}

// Count returns the number of rows in a table.
func (db *DB) Count(name string) (int, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, err := db.get(name)
	if err != nil {
		return 0, err
	}
	return len(t.rows), nil
}
