package rdbms

import (
	"fmt"
	"testing"

	"sebdb/internal/types"
)

func donorDB(t testing.TB, n int) *DB {
	t.Helper()
	db := New()
	err := db.CreateTable("donorinfo", []Column{
		{"donor", types.KindString},
		{"age", types.KindInt},
		{"balance", types.KindDecimal},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		err := db.Insert("donorinfo", Row{
			types.Str(fmt.Sprintf("donor%03d", i)),
			types.Int(int64(20 + i%50)),
			types.Int(int64(i * 100)), // coerced to decimal
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func TestCreateTableValidation(t *testing.T) {
	db := New()
	if err := db.CreateTable("", []Column{{"a", types.KindInt}}); err == nil {
		t.Error("empty name accepted")
	}
	if err := db.CreateTable("t", nil); err == nil {
		t.Error("no columns accepted")
	}
	if err := db.CreateTable("t", []Column{{"a", types.KindInt}, {"A", types.KindInt}}); err == nil {
		t.Error("duplicate column accepted")
	}
	if err := db.CreateTable("t", []Column{{"a", types.KindInt}}); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable("T", []Column{{"b", types.KindInt}}); err == nil {
		t.Error("duplicate table accepted")
	}
	if !db.HasTable("t") || db.HasTable("ghost") {
		t.Error("HasTable misbehaves")
	}
	if got := db.Tables(); len(got) != 1 || got[0] != "t" {
		t.Errorf("Tables = %v", got)
	}
	cols, err := db.Columns("t")
	if err != nil || len(cols) != 1 || cols[0].Name != "a" {
		t.Errorf("Columns = %v, %v", cols, err)
	}
	if _, err := db.Columns("ghost"); err == nil {
		t.Error("Columns on missing table")
	}
}

func TestInsertCoercionAndErrors(t *testing.T) {
	db := donorDB(t, 3)
	if n, _ := db.Count("donorinfo"); n != 3 {
		t.Errorf("Count = %d", n)
	}
	rows, _ := db.Select("donorinfo")
	if rows[0][2].Kind != types.KindDecimal {
		t.Error("insert did not coerce int to decimal")
	}
	if err := db.Insert("ghost", Row{}); err == nil {
		t.Error("insert into missing table")
	}
	if err := db.Insert("donorinfo", Row{types.Str("x")}); err == nil {
		t.Error("arity mismatch accepted")
	}
	if err := db.Insert("donorinfo", Row{types.Bool(true), types.Int(1), types.Dec(1)}); err == nil {
		t.Error("uncoercible value accepted")
	}
}

func TestSelectWithPredicates(t *testing.T) {
	db := donorDB(t, 100)
	ci, err := db.ColIndex("donorinfo", "age")
	if err != nil {
		t.Fatal(err)
	}
	rows, err := db.Select("donorinfo", Eq(ci, types.Int(25)))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 { // ages cycle mod 50 over 100 rows
		t.Errorf("Eq(age,25) returned %d rows", len(rows))
	}
	rows, _ = db.Select("donorinfo", Between(ci, types.Int(20), types.Int(24)))
	if len(rows) != 10 {
		t.Errorf("Between returned %d rows", len(rows))
	}
	// Select copies rows.
	rows[0][0] = types.Str("mutated")
	fresh, _ := db.Select("donorinfo")
	if fresh[0][0] == types.Str("mutated") {
		t.Error("Select returned aliased rows")
	}
}

func TestSelectRangeWithAndWithoutIndex(t *testing.T) {
	db := donorDB(t, 200)
	noIdx, err := db.SelectRange("donorinfo", "balance", types.Dec(1000), types.Dec(2000))
	if err != nil {
		t.Fatal(err)
	}
	if err := db.CreateIndex("donorinfo", "balance"); err != nil {
		t.Fatal(err)
	}
	withIdx, err := db.SelectRange("donorinfo", "balance", types.Dec(1000), types.Dec(2000))
	if err != nil {
		t.Fatal(err)
	}
	if len(noIdx) != len(withIdx) || len(noIdx) != 11 {
		t.Errorf("range rows: %d scan vs %d index", len(noIdx), len(withIdx))
	}
	// Both must be sorted by balance.
	for i := 1; i < len(withIdx); i++ {
		if types.Compare(withIdx[i-1][2], withIdx[i][2]) > 0 {
			t.Error("indexed range not sorted")
		}
	}
	// Index stays maintained across inserts.
	db.Insert("donorinfo", Row{types.Str("new"), types.Int(30), types.Dec(1500)})
	withIdx2, _ := db.SelectRange("donorinfo", "balance", types.Dec(1000), types.Dec(2000))
	if len(withIdx2) != 12 {
		t.Errorf("index not maintained: %d rows", len(withIdx2))
	}
	if err := db.CreateIndex("donorinfo", "balance"); err != nil {
		t.Errorf("re-creating index should be a no-op: %v", err)
	}
	if err := db.CreateIndex("donorinfo", "ghost"); err == nil {
		t.Error("index on missing column")
	}
	if err := db.CreateIndex("ghost", "x"); err == nil {
		t.Error("index on missing table")
	}
	if _, err := db.SelectRange("donorinfo", "ghost", types.Int(0), types.Int(1)); err == nil {
		t.Error("range on missing column")
	}
}

func TestSortedByAndMinMax(t *testing.T) {
	db := donorDB(t, 50)
	rows, err := db.SortedBy("donorinfo", "balance")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 50 {
		t.Fatalf("SortedBy returned %d rows", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if types.Compare(rows[i-1][2], rows[i][2]) > 0 {
			t.Fatal("SortedBy not sorted")
		}
	}
	lo, hi, ok, err := db.MinMax("donorinfo", "balance")
	if err != nil || !ok {
		t.Fatal(err)
	}
	if lo.Float() != 0 || hi.Float() != 4900 {
		t.Errorf("MinMax = %v..%v", lo, hi)
	}
	// With index the same answer comes from the tree.
	db.CreateIndex("donorinfo", "balance")
	lo2, hi2, _, _ := db.MinMax("donorinfo", "balance")
	if !types.Equal(lo, lo2) || !types.Equal(hi, hi2) {
		t.Error("indexed MinMax differs")
	}
	// Empty table.
	db.CreateTable("empty", []Column{{"x", types.KindInt}})
	if _, _, ok, _ := db.MinMax("empty", "x"); ok {
		t.Error("empty table has MinMax")
	}
	if _, _, _, err := db.MinMax("donorinfo", "ghost"); err == nil {
		t.Error("MinMax on missing column")
	}
}

func TestDistinct(t *testing.T) {
	db := donorDB(t, 100)
	vals, err := db.Distinct("donorinfo", "age")
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 50 {
		t.Errorf("Distinct(age) = %d values", len(vals))
	}
	for i := 1; i < len(vals); i++ {
		if types.Compare(vals[i-1], vals[i]) >= 0 {
			t.Fatal("Distinct not strictly sorted")
		}
	}
}
