package contract

import (
	"fmt"
	"strings"
	"testing"

	"sebdb/internal/types"
)

func TestParseValidatesSyntaxAndParams(t *testing.T) {
	c, err := Parse("Donate", []string{
		`INSERT INTO donate ($sender, $1, $2)`,
		`SELECT * FROM donate WHERE project = $1`,
	})
	if err != nil {
		t.Fatal(err)
	}
	if c.Name != "donate" || c.Params != 2 || len(c.Statements) != 2 {
		t.Errorf("parsed %+v", c)
	}

	bad := []struct {
		name  string
		stmts []string
	}{
		{"", []string{`SELECT * FROM t`}},
		{"x", nil},
		{"x", []string{`GARBAGE SQL`}},
		{"x", []string{`INSERT INTO t ($0)`}},
	}
	for _, b := range bad {
		if _, err := Parse(b.name, b.stmts); err == nil {
			t.Errorf("Parse(%q, %v) should fail", b.name, b.stmts)
		}
	}
}

func TestSubstitution(t *testing.T) {
	got := substitute(`INSERT INTO t ($sender, $1, $2)`,
		[]types.Value{types.Str(`he said "hi"`), types.Dec(3.5)}, "org1")
	if !strings.Contains(got, `"org1"`) {
		t.Errorf("sender not substituted: %s", got)
	}
	if !strings.Contains(got, `\"hi\"`) {
		t.Errorf("quotes not escaped: %s", got)
	}
	if !strings.Contains(got, "3.5") {
		t.Errorf("number not substituted: %s", got)
	}
	// Out-of-range placeholders stay (and will fail at parse).
	if got := substitute(`$3`, []types.Value{types.Int(1)}, "s"); got != "$3" {
		t.Errorf("out-of-range substitution = %q", got)
	}
}

func TestDeployRoundTrip(t *testing.T) {
	c, _ := Parse("flow", []string{
		`INSERT INTO donate ($sender, $1, $2)`,
		`TRACE OPERATOR = $sender`,
	})
	got, err := DecodeDeploy(c.EncodeDeploy())
	if err != nil {
		t.Fatal(err)
	}
	if !same(c, got) {
		t.Errorf("round trip mismatch: %+v", got)
	}
	// Malformed payloads.
	bad := [][]types.Value{
		nil,
		{types.Str("x")},
		{types.Int(1), types.Int(1), types.Str("s")},
		{types.Str("x"), types.Int(5), types.Str("only one")},
		{types.Str("x"), types.Int(1), types.Int(9)},
	}
	for i, args := range bad {
		if _, err := DecodeDeploy(args); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	c, _ := Parse("a", []string{`SELECT * FROM t`})
	if err := r.Register(c); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(c); err != nil {
		t.Errorf("idempotent register failed: %v", err)
	}
	c2, _ := Parse("a", []string{`SELECT * FROM other`})
	if err := r.Register(c2); err == nil {
		t.Error("conflicting register accepted")
	}
	if _, err := r.Get("A"); err != nil {
		t.Errorf("case-insensitive get failed: %v", err)
	}
	if _, err := r.Get("ghost"); err == nil {
		t.Error("missing contract found")
	}
	if n := r.Names(); len(n) != 1 {
		t.Errorf("Names = %v", n)
	}
	// ApplyTx ignores unrelated transactions, registers deployments.
	if err := r.ApplyTx("donate", nil); err != nil {
		t.Errorf("unrelated tx: %v", err)
	}
	c3, _ := Parse("b", []string{`SELECT * FROM t`})
	if err := r.ApplyTx(MetaTable, c3.EncodeDeploy()); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Get("b"); err != nil {
		t.Error("replayed deployment not registered")
	}
	if err := r.ApplyTx(MetaTable, []types.Value{types.Int(1)}); err == nil {
		t.Error("malformed deployment accepted")
	}
}

func TestInvoke(t *testing.T) {
	r := NewRegistry()
	c, _ := Parse("flow", []string{
		`INSERT INTO donate ($sender, $1, $2)`,
		`SELECT * FROM donate WHERE project = $1`,
	})
	r.Register(c)

	var executed []string
	ex := func(sender, sql string) ([]string, [][]types.Value, error) {
		executed = append(executed, fmt.Sprintf("%s: %s", sender, sql))
		return []string{"ok"}, [][]types.Value{{types.Str(sql)}}, nil
	}
	res, err := r.Invoke(ex, "org1", "flow", types.Str("edu"), types.Dec(10))
	if err != nil {
		t.Fatal(err)
	}
	if len(executed) != 2 {
		t.Fatalf("executed %d statements", len(executed))
	}
	if !strings.Contains(executed[0], `"org1"`) || !strings.Contains(executed[0], `"edu"`) {
		t.Errorf("statement 0 = %s", executed[0])
	}
	if len(res.Rows) != 1 {
		t.Errorf("result rows = %d", len(res.Rows))
	}
	// Arity errors.
	if _, err := r.Invoke(ex, "org1", "flow", types.Str("edu")); err == nil {
		t.Error("missing arg accepted")
	}
	if _, err := r.Invoke(ex, "org1", "ghost"); err == nil {
		t.Error("missing contract invoked")
	}
	// Executor failures propagate with context.
	bad := func(sender, sql string) ([]string, [][]types.Value, error) {
		return nil, nil, fmt.Errorf("boom")
	}
	if _, err := r.Invoke(bad, "org1", "flow", types.Str("e"), types.Int(1)); err == nil ||
		!strings.Contains(err.Error(), "boom") {
		t.Errorf("executor error lost: %v", err)
	}
}
