// Package contract implements the application layer's smart contracts
// (paper §III-B): "The system supports smart contract embedded SQL-like
// language to define a DApp, where SQL-like is responsible for
// accessing data." A contract is a named procedure whose body is a
// list of SQL-like statements with $1..$n parameter placeholders and
// $sender for the caller's identity; invoking the contract executes the
// statements in order against the engine, all as the caller, and
// returns the last statement's result set.
//
// Contracts deploy through a reserved transaction type so every node
// registers the same procedures; like DDL, deployment rides the chain.
package contract

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"sync"

	"sebdb/internal/sqlparser"
	"sebdb/internal/types"
)

// MetaTable is the reserved transaction type carrying contract
// deployments on chain.
const MetaTable = "_contract"

// Contract is one deployed procedure.
type Contract struct {
	// Name identifies the contract for Invoke.
	Name string
	// Params is the number of $n placeholders the body expects.
	Params int
	// Statements are the SQL-like statements executed in order.
	Statements []string
}

var paramPattern = regexp.MustCompile(`\$(\d+|sender)`)

// Parse validates a contract definition: every statement must be
// syntactically valid once placeholders are substituted, and parameter
// indexes must be contiguous from $1.
func Parse(name string, statements []string) (*Contract, error) {
	name = strings.ToLower(strings.TrimSpace(name))
	if name == "" {
		return nil, fmt.Errorf("contract: empty name")
	}
	if len(statements) == 0 {
		return nil, fmt.Errorf("contract: %q has no statements", name)
	}
	maxParam := 0
	for i, stmt := range statements {
		for _, m := range paramPattern.FindAllStringSubmatch(stmt, -1) {
			if m[1] == "sender" {
				continue
			}
			n, err := strconv.Atoi(m[1])
			if err != nil {
				return nil, fmt.Errorf("contract: %q statement %d: parameter %s: %w", name, i, m[0], err)
			}
			if n < 1 {
				return nil, fmt.Errorf("contract: %q statement %d uses $0", name, i)
			}
			if n > maxParam {
				maxParam = n
			}
		}
		// Validate syntax with dummy substitutions.
		probe := substitute(stmt, dummyArgs(maxParam), "probe")
		if _, err := sqlparser.Parse(probe); err != nil {
			return nil, fmt.Errorf("contract: %q statement %d: %w", name, i, err)
		}
	}
	return &Contract{Name: name, Params: maxParam, Statements: statements}, nil
}

func dummyArgs(n int) []types.Value {
	out := make([]types.Value, n)
	for i := range out {
		out[i] = types.Str("probe")
	}
	return out
}

// substitute renders placeholders into SQL literal syntax.
func substitute(stmt string, args []types.Value, sender string) string {
	return paramPattern.ReplaceAllStringFunc(stmt, func(m string) string {
		if m == "$sender" {
			return quote(types.Str(sender))
		}
		n, err := strconv.Atoi(m[1:])
		if err != nil || n < 1 || n > len(args) {
			return m
		}
		return quote(args[n-1])
	})
}

func quote(v types.Value) string {
	switch v.Kind {
	case types.KindString:
		return `"` + strings.ReplaceAll(v.S, `"`, `\"`) + `"`
	default:
		return v.String()
	}
}

// EncodeDeploy serialises the contract as a MetaTable transaction
// payload: [name, nstatements, stmt1, ...].
func (c *Contract) EncodeDeploy() []types.Value {
	out := []types.Value{types.Str(c.Name), types.Int(int64(len(c.Statements)))}
	for _, s := range c.Statements {
		out = append(out, types.Str(s))
	}
	return out
}

// DecodeDeploy parses a deployment payload.
func DecodeDeploy(args []types.Value) (*Contract, error) {
	if len(args) < 3 || args[0].Kind != types.KindString || args[1].Kind != types.KindInt {
		return nil, fmt.Errorf("contract: malformed deployment payload")
	}
	n := int(args[1].I)
	if len(args) != 2+n {
		return nil, fmt.Errorf("contract: deployment declares %d statements, has %d", n, len(args)-2)
	}
	stmts := make([]string, n)
	for i := 0; i < n; i++ {
		if args[2+i].Kind != types.KindString {
			return nil, fmt.Errorf("contract: statement %d not a string", i)
		}
		stmts[i] = args[2+i].S
	}
	return Parse(args[0].S, stmts)
}

// Executor is the SQL surface contracts run against. It is a function
// rather than an interface so core.Engine (which imports this package
// for deployment replay) can adapt its Execute method without an import
// cycle.
type Executor func(sender, sql string) (columns []string, rows [][]types.Value, err error)

// Result is a contract invocation's final result set.
type Result struct {
	Columns []string
	Rows    [][]types.Value
}

// Registry is a node's deployed-contract set.
type Registry struct {
	mu        sync.RWMutex
	contracts map[string]*Contract
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{contracts: make(map[string]*Contract)}
}

// Register adds a contract; re-registering the identical definition is
// a no-op, a conflicting one fails (mirrors schema.Catalog semantics).
func (r *Registry) Register(c *Contract) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if old, ok := r.contracts[c.Name]; ok {
		if same(old, c) {
			return nil
		}
		return fmt.Errorf("contract: %q already deployed with a different body", c.Name)
	}
	r.contracts[c.Name] = c
	return nil
}

func same(a, b *Contract) bool {
	if a.Name != b.Name || len(a.Statements) != len(b.Statements) {
		return false
	}
	for i := range a.Statements {
		if a.Statements[i] != b.Statements[i] {
			return false
		}
	}
	return true
}

// Unregister removes a contract registration. Like schema
// Catalog.Undefine it exists for submit-failure rollback: DeployContract
// registers locally before the deployment transaction is packaged, and
// a failed submit must not leave the registry ahead of the chain.
func (r *Registry) Unregister(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.contracts, strings.ToLower(name))
}

// Snapshot returns a point-in-time copy of the registry's contract map.
// Contracts are immutable once parsed, so sharing the pointers is safe.
func (r *Registry) Snapshot() map[string]*Contract {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]*Contract, len(r.contracts))
	for n, c := range r.contracts {
		out[n] = c
	}
	return out
}

// Get returns a deployed contract.
func (r *Registry) Get(name string) (*Contract, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	c, ok := r.contracts[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("contract: no contract %q", name)
	}
	return c, nil
}

// Names lists deployed contracts.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.contracts))
	for n := range r.contracts {
		out = append(out, n)
	}
	return out
}

// ApplyTx registers contracts deployed through replayed transactions.
func (r *Registry) ApplyTx(tname string, args []types.Value) error {
	if tname != MetaTable {
		return nil
	}
	c, err := DecodeDeploy(args)
	if err != nil {
		return err
	}
	return r.Register(c)
}

// Invoke runs the contract as sender with the given arguments,
// returning the final statement's result.
func (r *Registry) Invoke(ex Executor, sender, name string, args ...types.Value) (*Result, error) {
	c, err := r.Get(name)
	if err != nil {
		return nil, err
	}
	if len(args) != c.Params {
		return nil, fmt.Errorf("contract: %q expects %d args, got %d", c.Name, c.Params, len(args))
	}
	last := &Result{}
	for i, stmt := range c.Statements {
		sql := substitute(stmt, args, sender)
		cols, rows, err := ex(sender, sql)
		if err != nil {
			return nil, fmt.Errorf("contract: %q statement %d: %w", c.Name, i, err)
		}
		last = &Result{Columns: cols, Rows: rows}
	}
	return last, nil
}
