package merkle

import "testing"

// TestRootWorkersMatchesRoot pins the parallel reduction to the serial
// one across the interesting shapes: empty, single, odd-promotion
// chains, and sizes straddling the minParallelPairs threshold.
func TestRootWorkersMatchesRoot(t *testing.T) {
	sizes := []int{0, 1, 2, 3, 5, 63, 64, 127, 128, 129,
		2*minParallelPairs - 1, 2 * minParallelPairs, 2*minParallelPairs + 1, 1000}
	for _, n := range sizes {
		ls := leaves(n)
		want := Root(ls)
		for _, w := range []int{1, 2, 3, 4, 8, 16} {
			if got := RootWorkers(ls, w); got != want {
				t.Errorf("RootWorkers(n=%d, workers=%d) diverges from Root", n, w)
			}
		}
	}
}

// TestRootWorkersDoesNotMutateLeaves guards the chunked reduction's
// scratch buffer: the caller's slice must come back untouched.
func TestRootWorkersDoesNotMutateLeaves(t *testing.T) {
	ls := leaves(300)
	orig := make([]Hash, len(ls))
	copy(orig, ls)
	RootWorkers(ls, 4)
	for i := range ls {
		if ls[i] != orig[i] {
			t.Fatalf("leaf %d mutated by RootWorkers", i)
		}
	}
}
