package merkle

import (
	"crypto/sha256"
	"fmt"
	"testing"
	"testing/quick"
)

func leaves(n int) []Hash {
	out := make([]Hash, n)
	for i := range out {
		out[i] = sha256.Sum256([]byte(fmt.Sprintf("leaf-%d", i)))
	}
	return out
}

func TestRootEmptyAndSingle(t *testing.T) {
	if Root(nil) != (Hash{}) {
		t.Error("empty root must be zero")
	}
	ls := leaves(1)
	if Root(ls) != ls[0] {
		t.Error("single-leaf root must be the leaf")
	}
}

func TestRootSensitivity(t *testing.T) {
	ls := leaves(8)
	r := Root(ls)
	// Any change to any leaf changes the root.
	for i := range ls {
		mod := leaves(8)
		mod[i] = sha256.Sum256([]byte("evil"))
		if Root(mod) == r {
			t.Errorf("modifying leaf %d did not change root", i)
		}
	}
	// Reordering changes the root.
	mod := leaves(8)
	mod[0], mod[1] = mod[1], mod[0]
	if Root(mod) == r {
		t.Error("reordering leaves did not change root")
	}
	// Truncation changes the root (promotion, not duplication).
	if Root(leaves(7)) == Root(leaves(8)) {
		t.Error("7 and 8 leaves must differ")
	}
}

func TestOddPromotionDistinctFromDuplication(t *testing.T) {
	// With Bitcoin-style duplication, [a,b,c] and [a,b,c,c] collide.
	ls3 := leaves(3)
	ls4 := append(leaves(3), ls3[2])
	if Root(ls3) == Root(ls4) {
		t.Error("promotion must not collide with duplicated last leaf")
	}
}

func TestProveVerifyAllSizes(t *testing.T) {
	for n := 1; n <= 33; n++ {
		ls := leaves(n)
		root := Root(ls)
		for i := 0; i < n; i++ {
			p, err := Prove(ls, i)
			if err != nil {
				t.Fatalf("n=%d i=%d: %v", n, i, err)
			}
			if !Verify(ls[i], p, root) {
				t.Errorf("n=%d i=%d: proof does not verify", n, i)
			}
			// Wrong leaf must not verify.
			if Verify(sha256.Sum256([]byte("bogus")), p, root) {
				t.Errorf("n=%d i=%d: bogus leaf verified", n, i)
			}
		}
	}
}

func TestProveBadIndex(t *testing.T) {
	ls := leaves(4)
	if _, err := Prove(ls, -1); err != ErrBadIndex {
		t.Error("negative index must fail")
	}
	if _, err := Prove(ls, 4); err != ErrBadIndex {
		t.Error("overflow index must fail")
	}
}

func TestProofTamperedStepFails(t *testing.T) {
	ls := leaves(16)
	root := Root(ls)
	p, _ := Prove(ls, 5)
	p.Steps[1].Sibling[0] ^= 0xFF
	if Verify(ls[5], p, root) {
		t.Error("tampered proof verified")
	}
}

func TestHashLeafDomainSeparation(t *testing.T) {
	// An interior node's input begins with 0x01; a leaf's with 0x00, so a
	// 64-byte data blob cannot be confused with a pair of children.
	if HashLeaf([]byte("x")) == sha256.Sum256([]byte("x")) {
		t.Error("leaf hash must be domain separated from plain sha256")
	}
}

func TestRootMatchesProofQuick(t *testing.T) {
	f := func(seed uint8, idx uint8) bool {
		n := int(seed%40) + 1
		i := int(idx) % n
		ls := leaves(n)
		p, err := Prove(ls, i)
		if err != nil {
			return false
		}
		return Verify(ls[i], p, Root(ls))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestProofSize(t *testing.T) {
	ls := leaves(8)
	p, _ := Prove(ls, 0)
	if p.Size() != 8+3*33 {
		t.Errorf("Size = %d", p.Size())
	}
}
