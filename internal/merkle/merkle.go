// Package merkle implements the Merkle hash tree used for each block's
// transaction root (transRoot) and for membership proofs checked by thin
// clients (paper §IV-A, §VI).
//
// The tree is built over SHA-256 leaf digests. An odd node at any level
// is promoted unchanged (Bitcoin-style duplication would let two
// different transaction sets share a root; promotion does not).
package merkle

import (
	"crypto/sha256"
	"errors"

	"sebdb/internal/parallel"
)

// Hash is a 32-byte SHA-256 digest.
type Hash = [32]byte

// hashPair combines two child digests with a domain-separation prefix so
// interior nodes can never be confused with leaves.
func hashPair(l, r Hash) Hash {
	var buf [65]byte
	buf[0] = 0x01
	copy(buf[1:33], l[:])
	copy(buf[33:65], r[:])
	return sha256.Sum256(buf[:])
}

// HashLeaf computes the leaf digest of raw data, domain-separated from
// interior nodes.
func HashLeaf(data []byte) Hash {
	h := sha256.New()
	h.Write([]byte{0x00})
	h.Write(data)
	var out Hash
	h.Sum(out[:0])
	return out
}

// Root computes the Merkle root of the given leaf digests. The root of
// zero leaves is the all-zero hash; of one leaf, the leaf itself.
func Root(leaves []Hash) Hash {
	if len(leaves) == 0 {
		return Hash{}
	}
	level := make([]Hash, len(leaves))
	copy(level, leaves)
	for len(level) > 1 {
		next := level[: 0 : len(level)/2+1]
		next = next[:0]
		for i := 0; i+1 < len(level); i += 2 {
			next = append(next, hashPair(level[i], level[i+1]))
		}
		if len(level)%2 == 1 {
			next = append(next, level[len(level)-1])
		}
		level = next
	}
	return level[0]
}

// minParallelPairs is the smallest number of pairs at one tree level
// worth fanning out; below it the goroutine hand-off costs more than
// the SHA-256 work it saves.
const minParallelPairs = 64

// RootWorkers computes Root with each level's pair hashing fanned out
// over up to workers goroutines in contiguous chunks. Chunk boundaries
// fall on pairs, so the pairing — and therefore the root — is
// bit-identical to Root's; workers <= 1 or small inputs fall back to
// the sequential walk.
func RootWorkers(leaves []Hash, workers int) Hash {
	if workers <= 1 || len(leaves) < 2*minParallelPairs {
		return Root(leaves)
	}
	level := make([]Hash, len(leaves))
	copy(level, leaves)
	for len(level) > 1 {
		pairs := len(level) / 2
		next := make([]Hash, pairs+len(level)%2)
		if pairs >= minParallelPairs {
			chunk := (pairs + workers - 1) / workers
			nchunks := (pairs + chunk - 1) / chunk
			// Chunks write disjoint ranges of next; no consume step and
			// no error path.
			_ = parallel.Ordered(workers, nchunks, //sebdb:ignore-err tasks always return nil; chunks write next in place
				func(c int) (struct{}, error) {
					for p := c * chunk; p < pairs && p < (c+1)*chunk; p++ {
						next[p] = hashPair(level[2*p], level[2*p+1])
					}
					return struct{}{}, nil
				},
				func(int, struct{}) error { return nil })
		} else {
			for p := 0; p < pairs; p++ {
				next[p] = hashPair(level[2*p], level[2*p+1])
			}
		}
		if len(level)%2 == 1 {
			next[pairs] = level[len(level)-1]
		}
		level = next
	}
	return level[0]
}

// ProofStep is one sibling on the path from a leaf to the root.
type ProofStep struct {
	// Sibling is the digest combined with the running hash at this level.
	Sibling Hash
	// Left reports whether Sibling is the left operand of the pair.
	Left bool
}

// Proof is a Merkle membership proof for a single leaf.
type Proof struct {
	// Index is the leaf position the proof was generated for.
	Index int
	// Steps lists the siblings bottom-up.
	Steps []ProofStep
}

// ErrBadIndex is returned by Prove for an out-of-range leaf index.
var ErrBadIndex = errors.New("merkle: leaf index out of range")

// Prove builds a membership proof for leaves[index].
func Prove(leaves []Hash, index int) (Proof, error) {
	if index < 0 || index >= len(leaves) {
		return Proof{}, ErrBadIndex
	}
	p := Proof{Index: index}
	level := make([]Hash, len(leaves))
	copy(level, leaves)
	pos := index
	for len(level) > 1 {
		var next []Hash
		for i := 0; i+1 < len(level); i += 2 {
			next = append(next, hashPair(level[i], level[i+1]))
		}
		odd := len(level)%2 == 1
		if odd {
			next = append(next, level[len(level)-1])
		}
		if odd && pos == len(level)-1 {
			// Promoted unchanged: no sibling at this level.
			pos = len(next) - 1
		} else if pos%2 == 0 {
			p.Steps = append(p.Steps, ProofStep{Sibling: level[pos+1], Left: false})
			pos /= 2
		} else {
			p.Steps = append(p.Steps, ProofStep{Sibling: level[pos-1], Left: true})
			pos /= 2
		}
		level = next
	}
	return p, nil
}

// Verify replays the proof from the given leaf digest and reports
// whether it reproduces root.
func Verify(leaf Hash, p Proof, root Hash) bool {
	h := leaf
	for _, s := range p.Steps {
		if s.Left {
			h = hashPair(s.Sibling, h)
		} else {
			h = hashPair(h, s.Sibling)
		}
	}
	return h == root
}

// Size reports the byte size of a proof, used for VO-size accounting in
// the authenticated-query benchmarks.
func (p Proof) Size() int { return 8 + len(p.Steps)*33 }
