//go:build !linux

package faultfs

import "errors"

// ErrNoMmap reports that this platform build has no mmap support; the
// storage tier falls back to positional reads.
var ErrNoMmap = errors.New("faultfs: mmap not supported on this platform")

func mmapFile(path string) (Mapping, error) { return nil, ErrNoMmap }
