// Package faultfs abstracts the filesystem operations beneath SEBDB's
// durable layers (storage segments, snapshot checkpoints) behind a
// small interface with two implementations: the real OS filesystem and
// a fault injector that simulates crashes (power loss after a bounded
// number of mutating operations, with a torn final write), short reads
// and erroring Sync. The injector lets tests enumerate every
// crash-point in a write/rename/load sequence and assert crash-restart
// equivalence: state recovered after a crash must equal state rebuilt
// by full replay.
package faultfs

import (
	"errors"
	"io"
	"os"
)

// ErrCrashed is returned by every operation on an injector after its
// simulated crash fired: the "machine" is down until the test reopens
// the directory through a fresh FS.
var ErrCrashed = errors.New("faultfs: simulated crash")

// File is the handle surface the storage and snapshot layers need:
// sequential and positional reads, appends, Sync and Close.
type File interface {
	io.Reader
	io.ReaderAt
	io.Writer
	io.Closer
	// Sync flushes the file to stable storage.
	Sync() error
}

// FS is the filesystem surface the storage and snapshot layers need.
// All paths are interpreted as by the os package.
type FS interface {
	MkdirAll(path string, perm os.FileMode) error
	ReadDir(path string) ([]os.DirEntry, error)
	// Open opens a file read-only.
	Open(path string) (File, error)
	// OpenFile generalises Open with os.O_* flags.
	OpenFile(path string, flag int, perm os.FileMode) (File, error)
	ReadFile(path string) ([]byte, error)
	Rename(oldpath, newpath string) error
	Remove(path string) error
	Truncate(path string, size int64) error
	Stat(path string) (os.FileInfo, error)
}

// Mapping is a read-only memory-mapped view of a whole file. The bytes
// stay valid until Close; mapping a file that is later renamed over
// keeps exposing the old contents (the mapping pins the inode), which
// is exactly the snapshot semantics the storage tier wants.
type Mapping interface {
	// Bytes returns the mapped contents.
	Bytes() []byte
	// Close unmaps the file.
	Close() error
}

// Mapper is an optional FS capability: map an existing file read-only.
// The OS filesystem implements it on platforms with mmap support; a
// filesystem that does not implement it (or returns an error) makes
// callers fall back to positional reads. The fault injector implements
// it too, so tests can force the fallback path (Options.MmapErrors).
type Mapper interface {
	Mmap(path string) (Mapping, error)
}

// OS returns the real filesystem.
func OS() FS { return osFS{} }

type osFS struct{}

func (osFS) MkdirAll(path string, perm os.FileMode) error          { return os.MkdirAll(path, perm) }
func (osFS) ReadDir(path string) ([]os.DirEntry, error)            { return os.ReadDir(path) }
func (osFS) ReadFile(path string) ([]byte, error)                  { return os.ReadFile(path) }
func (osFS) Rename(oldpath, newpath string) error                  { return os.Rename(oldpath, newpath) }
func (osFS) Remove(path string) error                              { return os.Remove(path) }
func (osFS) Truncate(path string, size int64) error                { return os.Truncate(path, size) }
func (osFS) Stat(path string) (os.FileInfo, error)                 { return os.Stat(path) }
func (osFS) Open(path string) (File, error)                        { return os.Open(path) }
func (osFS) OpenFile(p string, f int, m os.FileMode) (File, error) { return os.OpenFile(p, f, m) }
func (osFS) Mmap(path string) (Mapping, error)                     { return mmapFile(path) }
