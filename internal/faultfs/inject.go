package faultfs

import (
	"errors"
	"os"
	"sync"
)

// ErrSync is the injected Sync failure.
var ErrSync = errors.New("faultfs: injected sync error")

// Options configures an Injector.
type Options struct {
	// OpsBeforeCrash is the number of mutating operations (writes,
	// syncs, renames, removes, truncates, file creations, mkdirs) that
	// succeed before the simulated power loss. Negative means never
	// crash. When the crashing operation is a write, a torn prefix of
	// the buffer reaches disk first — modelling a partial sector flush.
	OpsBeforeCrash int
	// SyncErrors makes every Sync fail with ErrSync without crashing,
	// modelling a filesystem that cannot honour durability requests.
	SyncErrors bool
	// ShortReads caps every sequential Read at ShortReads bytes per
	// call (0 disables), exercising io.ReadFull-style callers.
	ShortReads int
	// MmapErrors makes every Mmap fail with ErrMmap without crashing,
	// exercising the storage tier's transparent pread fallback.
	MmapErrors bool
}

// ErrMmap is the injected Mmap failure.
var ErrMmap = errors.New("faultfs: injected mmap error")

// Injector is an FS wrapper that injects faults into the real
// filesystem. After the simulated crash fires, every operation —
// including reads — returns ErrCrashed; the test then "reboots" by
// reopening the same directory through a clean FS.
type Injector struct {
	mu   sync.Mutex
	opts Options
	// ops counts mutating operations observed so far; syncs counts just
	// the Sync calls among them.
	ops     int
	syncs   int
	crashed bool
}

// New returns a fault injector over the real filesystem.
func New(opts Options) *Injector {
	return &Injector{opts: opts}
}

// Crashed reports whether the simulated crash has fired.
func (in *Injector) Crashed() bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.crashed
}

// Mutations returns the number of mutating operations observed, so a
// fault-free rehearsal run can size the crash matrix: crashing at op
// k for every k in [0, Mutations()) covers all crash-points.
func (in *Injector) Mutations() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.ops
}

// Syncs returns the number of Sync calls observed. Group-fsync tests
// use it to assert a batch of appends cost one fsync, not one per
// block.
func (in *Injector) Syncs() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.syncs
}

// down reports ErrCrashed once the crash fired.
func (in *Injector) down() error {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.crashed {
		return ErrCrashed
	}
	return nil
}

// mutate accounts for one mutating operation and reports whether it is
// the crashing one. The operation itself must not be performed when
// crash is true (except for a write's torn prefix, which the caller
// handles).
func (in *Injector) mutate() (crash bool, err error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.crashed {
		return false, ErrCrashed
	}
	if in.opts.OpsBeforeCrash >= 0 && in.ops == in.opts.OpsBeforeCrash {
		in.crashed = true
		in.ops++
		return true, nil
	}
	in.ops++
	return false, nil
}

func (in *Injector) MkdirAll(path string, perm os.FileMode) error {
	crash, err := in.mutate()
	if err != nil {
		return err
	}
	if crash {
		return ErrCrashed
	}
	return os.MkdirAll(path, perm)
}

func (in *Injector) ReadDir(path string) ([]os.DirEntry, error) {
	if err := in.down(); err != nil {
		return nil, err
	}
	return os.ReadDir(path)
}

func (in *Injector) ReadFile(path string) ([]byte, error) {
	if err := in.down(); err != nil {
		return nil, err
	}
	return os.ReadFile(path)
}

func (in *Injector) Rename(oldpath, newpath string) error {
	crash, err := in.mutate()
	if err != nil {
		return err
	}
	if crash {
		return ErrCrashed
	}
	return os.Rename(oldpath, newpath)
}

func (in *Injector) Remove(path string) error {
	crash, err := in.mutate()
	if err != nil {
		return err
	}
	if crash {
		return ErrCrashed
	}
	return os.Remove(path)
}

func (in *Injector) Truncate(path string, size int64) error {
	crash, err := in.mutate()
	if err != nil {
		return err
	}
	if crash {
		return ErrCrashed
	}
	return os.Truncate(path, size)
}

func (in *Injector) Stat(path string) (os.FileInfo, error) {
	if err := in.down(); err != nil {
		return nil, err
	}
	return os.Stat(path)
}

// Mmap maps a file read-only through the real filesystem. Mapping is
// not a mutation (nothing reaches disk), so it only honours the crash
// state and the MmapErrors knob; bytes read through a mapping taken
// before the crash stay readable, like any other pre-crash read handle.
func (in *Injector) Mmap(path string) (Mapping, error) {
	in.mu.Lock()
	crashed, mmapErr := in.crashed, in.opts.MmapErrors
	in.mu.Unlock()
	if crashed {
		return nil, ErrCrashed
	}
	if mmapErr {
		return nil, ErrMmap
	}
	return mmapFile(path)
}

func (in *Injector) Open(path string) (File, error) {
	if err := in.down(); err != nil {
		return nil, err
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	return &injectFile{in: in, f: f}, nil
}

func (in *Injector) OpenFile(path string, flag int, perm os.FileMode) (File, error) {
	// Creating or truncating a file mutates the directory; a pure
	// read-write open of an existing file does not.
	if flag&(os.O_CREATE|os.O_TRUNC) != 0 {
		crash, err := in.mutate()
		if err != nil {
			return nil, err
		}
		if crash {
			return nil, ErrCrashed
		}
	} else if err := in.down(); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, flag, perm)
	if err != nil {
		return nil, err
	}
	return &injectFile{in: in, f: f}, nil
}

// injectFile wraps an *os.File with the injector's fault model.
type injectFile struct {
	in *Injector
	f  *os.File
}

func (w *injectFile) Read(p []byte) (int, error) {
	if err := w.in.down(); err != nil {
		return 0, err
	}
	if n := w.in.opts.ShortReads; n > 0 && len(p) > n {
		p = p[:n]
	}
	return w.f.Read(p)
}

func (w *injectFile) ReadAt(p []byte, off int64) (int, error) {
	if err := w.in.down(); err != nil {
		return 0, err
	}
	return w.f.ReadAt(p, off)
}

func (w *injectFile) Write(p []byte) (int, error) {
	crash, err := w.in.mutate()
	if err != nil {
		return 0, err
	}
	if crash {
		// Torn write: a prefix of the buffer reaches disk before the
		// power fails.
		if n := len(p) / 2; n > 0 {
			w.f.Write(p[:n]) //sebdb:ignore-err simulating power loss mid-write; bytes beyond the tear are lost either way
		}
		return 0, ErrCrashed
	}
	return w.f.Write(p)
}

func (w *injectFile) Sync() error {
	if w.in.opts.SyncErrors {
		return ErrSync
	}
	crash, err := w.in.mutate()
	if err != nil {
		return err
	}
	if crash {
		return ErrCrashed
	}
	w.in.mu.Lock()
	w.in.syncs++
	w.in.mu.Unlock()
	return w.f.Sync()
}

func (w *injectFile) Close() error {
	// Close is allowed after a crash so deferred cleanup does not leak
	// descriptors; the data's fate was already decided.
	return w.f.Close()
}
