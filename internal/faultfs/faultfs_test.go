package faultfs

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
)

func TestOSRoundTrip(t *testing.T) {
	fs := OS()
	dir := t.TempDir()
	if err := fs.MkdirAll(filepath.Join(dir, "sub"), 0o755); err != nil {
		t.Fatal(err)
	}
	p := filepath.Join(dir, "sub", "a")
	f, err := fs.OpenFile(p, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename(p, p+".2"); err != nil {
		t.Fatal(err)
	}
	b, err := fs.ReadFile(p + ".2")
	if err != nil || string(b) != "hello" {
		t.Fatalf("ReadFile = %q, %v", b, err)
	}
}

func TestInjectorCrashTearsWrite(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "f")
	in := New(Options{OpsBeforeCrash: 1}) // op 0: create, op 1: write crashes
	f, err := in.OpenFile(p, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("0123456789")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("Write err = %v, want ErrCrashed", err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if !in.Crashed() {
		t.Fatal("injector should report crashed")
	}
	// Post-crash: everything fails, even reads.
	if _, err := in.Open(p); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash Open err = %v", err)
	}
	if err := in.Rename(p, p+"x"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash Rename err = %v", err)
	}
	// The torn prefix (half the buffer) reached disk.
	b, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != "01234" {
		t.Fatalf("torn file = %q, want half the buffer", b)
	}
}

func TestInjectorCrashSkipsRename(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "f")
	if err := os.WriteFile(p, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	in := New(Options{OpsBeforeCrash: 0})
	if err := in.Rename(p, p+".2"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("Rename err = %v, want ErrCrashed", err)
	}
	if _, err := os.Stat(p); err != nil {
		t.Fatalf("crashing rename must not move the file: %v", err)
	}
}

func TestInjectorMutationsCount(t *testing.T) {
	dir := t.TempDir()
	in := New(Options{OpsBeforeCrash: -1})
	f, err := in.OpenFile(filepath.Join(dir, "f"), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := f.Write([]byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if got := in.Mutations(); got != 5 { // create + 3 writes + sync
		t.Fatalf("Mutations = %d, want 5", got)
	}
	if in.Crashed() {
		t.Fatal("should never crash with OpsBeforeCrash < 0")
	}
}

func TestInjectorShortReads(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "f")
	if err := os.WriteFile(p, []byte("0123456789"), 0o644); err != nil {
		t.Fatal(err)
	}
	in := New(Options{OpsBeforeCrash: -1, ShortReads: 3})
	f, err := in.Open(p)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close() //sebdb:ignore-err read-only handle in a test
	buf := make([]byte, 10)
	n, err := f.Read(buf)
	if err != nil || n != 3 {
		t.Fatalf("short Read = %d, %v; want 3", n, err)
	}
	if _, err := io.ReadFull(f, buf[n:]); err != nil {
		t.Fatalf("ReadFull over short reads: %v", err)
	}
	if string(buf) != "0123456789" {
		t.Fatalf("assembled %q", buf)
	}
}

func TestInjectorSyncErrors(t *testing.T) {
	dir := t.TempDir()
	in := New(Options{OpsBeforeCrash: -1, SyncErrors: true})
	f, err := in.OpenFile(filepath.Join(dir, "f"), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close() //sebdb:ignore-err test handle
	if err := f.Sync(); !errors.Is(err, ErrSync) {
		t.Fatalf("Sync err = %v, want ErrSync", err)
	}
	if in.Crashed() {
		t.Fatal("sync errors must not crash")
	}
}
