//go:build linux

package faultfs

import (
	"fmt"
	"os"
	"syscall"
)

// mmapFile maps path read-only in its entirety. An empty file maps to
// an empty (nil-backed) Mapping — mmap of length zero is an error at
// the syscall level, but callers reading zero bytes from it are fine.
func mmapFile(path string) (Mapping, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close() //sebdb:ignore-err read-only descriptor; the mapping pins the inode
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := fi.Size()
	if size == 0 {
		return &osMapping{}, nil
	}
	if size != int64(int(size)) {
		return nil, fmt.Errorf("faultfs: %s too large to map (%d bytes)", path, size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, fmt.Errorf("faultfs: mmap %s: %w", path, err)
	}
	return &osMapping{data: data}, nil
}

// osMapping is a syscall.Mmap-backed Mapping.
type osMapping struct {
	data []byte
}

func (m *osMapping) Bytes() []byte { return m.data }

func (m *osMapping) Close() error {
	if m.data == nil {
		return nil
	}
	data := m.data
	m.data = nil
	return syscall.Munmap(data)
}
