package obs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
)

// TestRecorderSamplingDeterministic pins the sampling schedule and the
// trace IDs: both derive only from the statement sequence and the
// injected clock, so a fixed clock sees fixed IDs.
func TestRecorderSamplingDeterministic(t *testing.T) {
	clk := &stepClock{now: 1000}
	r := NewRecorder(RecorderConfig{Registry: NewRegistry(clk.src), SampleEvery: 3})

	var sampled []uint64
	for i := 0; i < 9; i++ {
		ctx, st := r.Begin(context.Background(), "SELECT 1")
		if st != nil {
			sampled = append(sampled, st.seq)
			if FromContext(ctx) == nil {
				t.Fatalf("statement %d sampled but context carries no span", i)
			}
		}
		st.Finish(nil)
	}
	// seq%3==1: statements 1, 4, 7 — the first is always sampled.
	if len(sampled) != 3 || sampled[0] != 1 || sampled[1] != 4 || sampled[2] != 7 {
		t.Fatalf("sampled seqs = %v, want [1 4 7]", sampled)
	}

	// Same seq + same clock => same ID, different seq => different ID.
	if a, b := traceID(1, 1000), traceID(1, 1000); a != b {
		t.Errorf("traceID not deterministic: %q != %q", a, b)
	}
	if a, b := traceID(1, 1000), traceID(2, 1000); a == b {
		t.Errorf("distinct seqs collided: %q", a)
	}
	recent := r.Recent()
	if len(recent) != 3 {
		t.Fatalf("recent ring has %d records, want 3", len(recent))
	}
	// Newest first: seq 7, 4, 1; IDs recomputable from (seq, start).
	for i, wantSeq := range []uint64{7, 4, 1} {
		rec := recent[i]
		if rec.Seq != wantSeq {
			t.Errorf("recent[%d].Seq = %d, want %d", i, rec.Seq, wantSeq)
		}
		if rec.ID != traceID(rec.Seq, rec.StartMicros) {
			t.Errorf("recent[%d].ID = %q, want %q", i, rec.ID, traceID(rec.Seq, rec.StartMicros))
		}
	}
}

// TestRecorderSlowPromotion covers both slow paths: a sampled slow
// statement keeps its span tree, and an unsampled one is promoted with
// a synthesized span-less record.
func TestRecorderSlowPromotion(t *testing.T) {
	clk := &stepClock{}
	r := NewRecorder(RecorderConfig{Registry: NewRegistry(clk.src), SampleEvery: 2, SlowMicros: 100})

	// seq 1: sampled, fast (50µs) — recent only.
	ctx, st := r.Begin(context.Background(), "fast")
	_, sp := StartSpan(ctx, "parse")
	sp.Finish()
	clk.now += 50
	st.Finish(nil)

	// seq 2: unsampled, slow (200µs) — promoted without a span tree.
	_, st = r.Begin(context.Background(), "slow unsampled")
	if st.Span() != nil {
		t.Fatal("unsampled statement has a root span")
	}
	clk.now += 200
	st.Finish(errors.New("boom"))

	// seq 3: sampled, slow — lands in both rings with its tree.
	ctx, st = r.Begin(context.Background(), "slow sampled")
	st.SetStage("select")
	_, sp = StartSpan(ctx, "exec.select.scan")
	sp.Finish()
	clk.now += 300
	st.Finish(nil)

	slow := r.Slow()
	if len(slow) != 2 {
		t.Fatalf("slow ring has %d records, want 2", len(slow))
	}
	if slow[0].Root == nil || slow[0].Stage != "stmt.select" || !slow[0].Slow {
		t.Errorf("sampled slow record malformed: %+v", slow[0])
	}
	if len(slow[0].Root.Children()) != 1 {
		t.Errorf("sampled slow record lost its span tree")
	}
	if slow[1].Root != nil || slow[1].Micros != 200 || slow[1].Err != "boom" {
		t.Errorf("unsampled slow record malformed: %+v", slow[1])
	}
	if slow[1].ID == "" || slow[1].ID != traceID(slow[1].Seq, slow[1].StartMicros) {
		t.Errorf("unsampled slow record ID %q not synthesized deterministically", slow[1].ID)
	}
	if recent := r.Recent(); len(recent) != 2 {
		t.Errorf("recent ring has %d records, want 2 (unsampled statements stay out)", len(recent))
	}
}

// TestRecorderDeclinesNestedTrace pins EXPLAIN ANALYZE behaviour: a
// statement already under a span must not be double-traced.
func TestRecorderDeclinesNestedTrace(t *testing.T) {
	r := NewRecorder(RecorderConfig{Registry: NewRegistry(clockAt(0))})
	ctx, _ := NewTrace(context.Background(), NewRegistry(clockAt(0)), "outer")
	if _, st := r.Begin(ctx, "inner"); st != nil {
		t.Fatal("Begin traced a statement already inside a trace")
	}
}

// TestRecorderBoundedMemory fills the rings far past capacity and
// checks they never grow beyond it.
func TestRecorderBoundedMemory(t *testing.T) {
	clk := &stepClock{}
	r := NewRecorder(RecorderConfig{
		Registry: NewRegistry(clk.src), SlowMicros: 1, RecentCap: 8, SlowCap: 4,
	})
	for i := 0; i < 100; i++ {
		_, st := r.Begin(context.Background(), "stmt")
		clk.now += 10
		st.Finish(nil)
	}
	if got := len(r.Recent()); got != 8 {
		t.Errorf("recent ring holds %d records, want capacity 8", got)
	}
	if got := len(r.Slow()); got != 4 {
		t.Errorf("slow ring holds %d records, want capacity 4", got)
	}
	// Newest-first over the survivors: the last pushes win.
	if r.Recent()[0].Seq != 100 || r.Recent()[7].Seq != 93 {
		t.Errorf("recent ring did not keep the newest records: %d..%d",
			r.Recent()[0].Seq, r.Recent()[7].Seq)
	}
}

// TestRecorderNilSafety exercises the whole API on a nil recorder and a
// nil statement — the disabled configuration every call site relies on.
func TestRecorderNilSafety(t *testing.T) {
	var r *Recorder
	ctx, st := r.Begin(context.Background(), "SELECT 1")
	if ctx == nil || st != nil {
		t.Fatal("nil recorder Begin must return the context and a nil statement")
	}
	st.SetStage("select")
	if st.Span() != nil {
		t.Error("nil statement has a span")
	}
	st.Finish(nil)
	if r.Recent() != nil || r.Slow() != nil || r.SlowMicros() != 0 {
		t.Error("nil recorder leaked state")
	}

	srv := httptest.NewServer(TracesHandler(nil))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out []any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil || len(out) != 0 {
		t.Errorf("nil recorder handler returned %v, %v; want empty list", out, err)
	}
}

// TestRecorderConcurrentCapture hammers the recorder from parallel
// statement runners while scrapers snapshot both rings and the HTTP
// handler — run under -race this is the recorder's data-race gate.
func TestRecorderConcurrentCapture(t *testing.T) {
	// A race-safe ticking clock: every read advances one microsecond, so
	// every statement has a positive duration and trips SlowMicros.
	var tick atomic.Int64
	r := NewRecorder(RecorderConfig{
		Registry:    NewRegistry(func() int64 { return tick.Add(1) }),
		SampleEvery: 2, SlowMicros: 1, RecentCap: 32, SlowCap: 16,
	})
	srv := httptest.NewServer(TracesHandler(r))
	defer srv.Close()

	const workers, perWorker = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				ctx, st := r.Begin(context.Background(), fmt.Sprintf("stmt %d/%d", w, i))
				st.SetStage("insert")
				if _, sp := StartSpan(ctx, "exec.insert"); sp != nil {
					sp.AddCounter("txs_examined", 1)
					sp.Finish()
				}
				var err error
				if i%3 == 0 {
					err = errors.New("synthetic")
				}
				st.Finish(err)
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			_ = r.Recent()
			_ = r.Slow()
			resp, err := srv.Client().Get(srv.URL + "?ring=slow&min_micros=0")
			if err == nil {
				resp.Body.Close()
			}
		}
	}()
	wg.Wait()

	if got := len(r.Recent()); got != 32 {
		t.Errorf("recent ring holds %d records after the stress, want 32", got)
	}
	if got := len(r.Slow()); got != 16 {
		t.Errorf("slow ring holds %d records after the stress, want 16", got)
	}
}

// clockAt returns a fixed clock source, the registry-facing shape of
// clock.Fixed without importing it into the package under test.
func clockAt(ts int64) func() int64 { return func() int64 { return ts } }
