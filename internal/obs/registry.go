// Package obs is SEBDB's stdlib-only observability layer: a lock-cheap
// metrics registry (counters, gauges, fixed-bucket histograms) plus the
// per-stage query tracing spans behind EXPLAIN ANALYZE. Hot paths touch
// only atomics; registration takes a lock once per metric name, and
// readers snapshot without stopping writers. All timing flows through
// an injectable clock.Source so traces and latency histograms stay
// deterministic under test (the invariant sebdb-vet's obsclock analyzer
// enforces on instrumented packages).
package obs

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"sebdb/internal/clock"
)

// MetricType tags a registered func metric for exposition.
type MetricType int

const (
	// TypeCounter is a monotonically non-decreasing cumulative count.
	TypeCounter MetricType = iota
	// TypeGauge is a value that can go up and down.
	TypeGauge
)

// Counter is a monotonic cumulative count. The zero value is ready.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an instantaneous value. The zero value is ready.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add applies a delta (negative to decrease).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// DefaultLatencyBounds are the upper bounds (inclusive, microseconds)
// of the default latency histogram: 25µs to 5s in a 1-2.5-5 ladder.
var DefaultLatencyBounds = []int64{
	25, 50, 100, 250, 500,
	1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 500_000,
	1_000_000, 2_500_000, 5_000_000,
}

// BatchSizeBounds suit batch-size histograms (transactions per batch).
var BatchSizeBounds = []int64{1, 2, 5, 10, 20, 50, 100, 200, 500, 1_000, 2_000, 5_000, 10_000}

// Histogram is a fixed-bucket histogram: bucket i counts observations
// v <= bounds[i]; the final implicit bucket counts the rest (+Inf).
// Observe touches only atomics, so concurrent writers never contend.
type Histogram struct {
	bounds  []int64
	buckets []atomic.Uint64 // len(bounds)+1
	count   atomic.Uint64
	sum     atomic.Int64
}

func newHistogram(bounds []int64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefaultLatencyBounds
	}
	return &Histogram{
		bounds:  append([]int64(nil), bounds...),
		buckets: make([]atomic.Uint64, len(bounds)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// HistSnapshot is a point-in-time copy of a histogram's state. Counts
// holds per-bucket (non-cumulative) counts; Counts[len(Bounds)] is the
// +Inf bucket.
type HistSnapshot struct {
	Bounds []int64
	Counts []uint64
	Count  uint64
	Sum    int64
}

// Snapshot copies the histogram's current state. Buckets are read one
// atomic at a time, so a snapshot taken during writes is approximate
// (sums may trail bucket counts by in-flight observations) but never
// torn per bucket.
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{
		Bounds: append([]int64(nil), h.bounds...),
		Counts: make([]uint64, len(h.buckets)),
		Count:  h.count.Load(),
		Sum:    h.sum.Load(),
	}
	for i := range h.buckets {
		s.Counts[i] = h.buckets[i].Load()
	}
	return s
}

// Quantile estimates the q-quantile (0 <= q <= 1) by linear
// interpolation within the bucket containing it. Values beyond the last
// finite bound are reported as that bound.
func (s HistSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(s.Count)
	var cum float64
	for i, n := range s.Counts {
		next := cum + float64(n)
		if next >= target && n > 0 {
			lo := int64(0)
			if i > 0 {
				lo = s.Bounds[i-1]
			}
			hi := s.Bounds[len(s.Bounds)-1]
			if i < len(s.Bounds) {
				hi = s.Bounds[i]
			}
			frac := (target - cum) / float64(n)
			return float64(lo) + frac*float64(hi-lo)
		}
		cum = next
	}
	return float64(s.Bounds[len(s.Bounds)-1])
}

// FuncMetric is a scrape-time metric: its value is computed by calling
// Fn at exposition time (chain height, cache occupancy, ...).
type FuncMetric struct {
	Type MetricType
	Fn   func() int64
}

// Registry holds a process's metrics. Metric names may embed Prometheus
// labels inline — `sebdb_exec_blocks_read_total{method="scan"}` — and
// the exposition writer splits them back out.
type Registry struct {
	now clock.Source

	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	funcs    map[string]FuncMetric
}

// NewRegistry returns an empty registry reading time from src
// (clock.UnixMicro outside tests).
func NewRegistry(src clock.Source) *Registry {
	if src == nil {
		src = clock.UnixMicro
	}
	return &Registry{
		now:      src,
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		funcs:    make(map[string]FuncMetric),
	}
}

// Default is the process-wide registry package-level instrumentation
// writes to; tests needing isolation or deterministic time inject their
// own instances instead.
var Default = NewRegistry(clock.UnixMicro)

// Now reads the registry's clock (Unix microseconds).
func (r *Registry) Now() int64 { return r.now() }

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c := r.counters[name]; c != nil {
		return c
	}
	c = &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g := r.gauges[name]; g != nil {
		return g
	}
	g = &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket upper bounds (DefaultLatencyBounds when none are given). The
// first registration fixes the bounds; later bounds are ignored.
func (r *Registry) Histogram(name string, bounds ...int64) *Histogram {
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h := r.hists[name]; h != nil {
		return h
	}
	h = newHistogram(bounds)
	r.hists[name] = h
	return h
}

// Histograms snapshots every registered histogram by name, for callers
// (bchainbench quantile output) that need to enumerate rather than
// look up.
func (r *Registry) Histograms() map[string]HistSnapshot {
	r.mu.RLock()
	hs := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hs[k] = v
	}
	r.mu.RUnlock()
	out := make(map[string]HistSnapshot, len(hs))
	for k, v := range hs {
		out[k] = v.Snapshot()
	}
	return out
}

// RegisterFunc registers (or replaces) a metric computed at scrape
// time. fn must be safe for concurrent use.
func (r *Registry) RegisterFunc(name string, typ MetricType, fn func() int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.funcs[name] = FuncMetric{Type: typ, Fn: fn}
}

// splitName separates a metric name from its inline label set:
// `name{a="b"}` yields ("name", `a="b"`).
func splitName(name string) (base, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 {
		return name, ""
	}
	return name[:i], strings.TrimSuffix(name[i+1:], "}")
}
