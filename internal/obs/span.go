package obs

import (
	"context"
	"sync"
)

// Spans form the query-trace tree behind EXPLAIN ANALYZE. A trace is
// opt-in: NewTrace plants a root span in the context, and StartSpan
// returns a nil *Span — every method of which is a safe no-op — when no
// trace is active, so instrumented code pays one context lookup and
// nothing else on the untraced hot path.
//
// The canonical stage names (see DESIGN.md "Observability"):
//
//	query                      the root of one traced statement
//	  parse                    SQL text -> AST
//	  plan                     cost-model access-path choice
//	  exec.select.scan         exec.Select under MethodScan
//	  exec.select.bitmap       ... MethodBitmap
//	  exec.select.layered      ... MethodLayered
//	  exec.track               exec.Track (track-trace)
//	  exec.join.onchain        exec.OnChainJoin
//	  exec.join.onoff          exec.OnOffJoin
//	  project                  sort / limit / projection
//	  verify                   thin-client VO verification
//
//	recovery                   the root of one Engine.Open
//	  recovery.checkpoint      newest-checkpoint load + derived-state restore
//	  recovery.replay          post-checkpoint suffix replay (counter: suffix_blocks)
//
// The commit pipeline reports its three stages straight to the stage
// histogram (no trace context crosses the write path):
//
//	commit.prepare             lock-free block build: tx sealing, parallel
//	                           Merkle hashing, header sign (or, on
//	                           ApplyBlock, parallel validation)
//	  commit.append            segment append under the engine lock
//	  commit.index             fan-out index maintenance under the lock
//
// Every Finish also feeds the span's duration into the registry's
// `sebdb_stage_micros{stage="<name>"}` histogram, so stage latencies
// aggregate on /metrics even when no one reads the trace.

// spanKey carries the active span through a context.
type spanKey struct{}

// SpanCounter is one named counter attached to a span (blocks read,
// rows produced, ...), in insertion order.
type SpanCounter struct {
	Name  string
	Value int64
}

// Span is one timed stage of a query trace.
type Span struct {
	reg  *Registry
	name string

	mu       sync.Mutex
	start    int64
	end      int64
	done     bool
	children []*Span
	counters []SpanCounter
}

// NewTrace starts a root span named name against reg (Default when nil)
// and returns a context carrying it. The caller must Finish the root.
func NewTrace(ctx context.Context, reg *Registry, name string) (context.Context, *Span) {
	if reg == nil {
		reg = Default
	}
	sp := &Span{reg: reg, name: name, start: reg.Now()}
	return context.WithValue(ctx, spanKey{}, sp), sp
}

// child opens and attaches a sub-span.
func (s *Span) child(name string) *Span {
	c := &Span{reg: s.reg, name: name, start: s.reg.Now()}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// StartSpan opens a stage span under the trace in ctx. With no active
// trace it returns (ctx, nil); a nil *Span accepts every method call as
// a no-op, so call sites need no guards.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent, _ := ctx.Value(spanKey{}).(*Span)
	if parent == nil {
		return ctx, nil
	}
	c := parent.child(name)
	return context.WithValue(ctx, spanKey{}, c), c
}

// FromContext returns the active span, or nil when ctx carries none.
func FromContext(ctx context.Context) *Span {
	sp, _ := ctx.Value(spanKey{}).(*Span)
	return sp
}

// Finish stamps the span's end time and feeds its duration into the
// registry's stage histogram. Only the first call counts.
func (s *Span) Finish() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.done {
		s.mu.Unlock()
		return
	}
	s.done = true
	s.end = s.reg.Now()
	d := s.end - s.start
	name := s.name
	s.mu.Unlock()
	s.reg.Histogram(`sebdb_stage_micros{stage="` + name + `"}`).Observe(d)
}

// rename replaces the span's stage name. The flight recorder opens every
// statement's root span before the SQL text is parsed, then renames it
// to the per-kind stage ("stmt.select", ...) once the statement kind is
// known; rename must happen before Finish for the histogram to see the
// final name.
func (s *Span) rename(name string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.name = name
	s.mu.Unlock()
}

// SetCounter sets a named counter on the span, replacing any prior
// value.
func (s *Span) SetCounter(name string, v int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.counters {
		if s.counters[i].Name == name {
			s.counters[i].Value = v
			return
		}
	}
	s.counters = append(s.counters, SpanCounter{Name: name, Value: v})
}

// AddCounter accumulates into a named counter on the span.
func (s *Span) AddCounter(name string, v int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.counters {
		if s.counters[i].Name == name {
			s.counters[i].Value += v
			return
		}
	}
	s.counters = append(s.counters, SpanCounter{Name: name, Value: v})
}

// Name returns the span's stage name ("" for nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.name
}

// StartMicros returns the span's start time (registry clock).
func (s *Span) StartMicros() int64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.start
}

// DurationMicros returns end-start for a finished span, 0 otherwise.
func (s *Span) DurationMicros() int64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.done {
		return 0
	}
	return s.end - s.start
}

// Children returns the span's child stages in start order.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Span(nil), s.children...)
}

// Counters returns the span's counters in insertion order.
func (s *Span) Counters() []SpanCounter {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]SpanCounter(nil), s.counters...)
}
