package obs

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"hash/fnv"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// The flight recorder keeps query tracing always on: every statement —
// not just EXPLAIN ANALYZE — runs under a sampled trace whose finished
// root span lands in a bounded ring, and any statement slower than a
// configurable threshold is captured unconditionally (slow-query log).
//
// Cost contract: a disabled (nil) recorder costs one nil check per
// statement. With the recorder enabled, an *unsampled* statement costs
// one atomic sequence increment plus two clock reads (for the slow
// threshold); only sampled statements allocate a span tree. The rings
// are fixed-capacity and hold at most RecentCap+SlowCap records, so
// memory is bounded no matter how many statements run.

// RecorderConfig configures a flight recorder. Zero values pick the
// defaults noted on each field.
type RecorderConfig struct {
	// Registry supplies the clock and the histograms span Finish feeds
	// (Default when nil).
	Registry *Registry
	// SampleEvery traces one statement in every SampleEvery; values
	// <= 1 trace every statement (the default). The first statement of
	// every run is always sampled, so sampling stays deterministic.
	SampleEvery int
	// SlowMicros promotes any statement at or above this duration into
	// the slow ring regardless of sampling; 0 disables slow capture.
	SlowMicros int64
	// RecentCap bounds the recent-trace ring (default 256).
	RecentCap int
	// SlowCap bounds the slow-query ring (default 64).
	SlowCap int
}

// TraceRecord is one finished statement in a recorder ring. Root is the
// statement's span tree when the statement was sampled, nil when an
// unsampled statement was promoted to the slow ring on latency alone.
type TraceRecord struct {
	ID          string
	Seq         uint64
	StartMicros int64
	Micros      int64
	Stage       string
	SQL         string
	Err         string
	Slow        bool
	Root        *Span
}

// traceRing is a fixed-capacity circular buffer of trace records. Push
// is a handful of word writes under a mutex; Snapshot copies out
// newest-first.
type traceRing struct {
	mu   sync.Mutex
	buf  []TraceRecord
	next int // next write position
	n    int // filled entries, <= len(buf)
}

func newTraceRing(capacity int) *traceRing {
	return &traceRing{buf: make([]TraceRecord, capacity)}
}

func (rg *traceRing) push(rec TraceRecord) {
	rg.mu.Lock()
	rg.buf[rg.next] = rec
	rg.next = (rg.next + 1) % len(rg.buf)
	if rg.n < len(rg.buf) {
		rg.n++
	}
	rg.mu.Unlock()
}

// snapshot returns the ring's records newest-first.
func (rg *traceRing) snapshot() []TraceRecord {
	rg.mu.Lock()
	defer rg.mu.Unlock()
	out := make([]TraceRecord, 0, rg.n)
	for i := 1; i <= rg.n; i++ {
		out = append(out, rg.buf[(rg.next-i+len(rg.buf))%len(rg.buf)])
	}
	return out
}

// Recorder is the statement flight recorder. A nil *Recorder is a valid
// disabled recorder: Begin returns a nil *Statement whose every method
// is a no-op.
type Recorder struct {
	reg         *Registry
	sampleEvery uint64
	slowMicros  int64
	seq         atomic.Uint64
	recent      *traceRing
	slow        *traceRing

	mSampled *Counter
	mSlow    *Counter
}

// NewRecorder builds a flight recorder from cfg.
func NewRecorder(cfg RecorderConfig) *Recorder {
	reg := cfg.Registry
	if reg == nil {
		reg = Default
	}
	se := uint64(1)
	if cfg.SampleEvery > 1 {
		se = uint64(cfg.SampleEvery)
	}
	rc := cfg.RecentCap
	if rc <= 0 {
		rc = 256
	}
	sc := cfg.SlowCap
	if sc <= 0 {
		sc = 64
	}
	return &Recorder{
		reg:         reg,
		sampleEvery: se,
		slowMicros:  cfg.SlowMicros,
		recent:      newTraceRing(rc),
		slow:        newTraceRing(sc),
		mSampled:    reg.Counter("sebdb_trace_sampled_total"),
		mSlow:       reg.Counter("sebdb_trace_slow_total"),
	}
}

// SlowMicros returns the recorder's slow-statement threshold (0 when
// disabled or for a nil recorder).
func (r *Recorder) SlowMicros() int64 {
	if r == nil {
		return 0
	}
	return r.slowMicros
}

// traceID derives the deterministic trace ID for statement seq started
// at start microseconds (registry clock): FNV-64a over both, rendered
// as 16 hex digits. No global randomness, no wall clock — the obsclock
// discipline holds and tests with a fixed clock see fixed IDs.
func traceID(seq uint64, start int64) string {
	h := fnv.New64a()
	var b [16]byte
	binary.BigEndian.PutUint64(b[:8], seq)
	binary.BigEndian.PutUint64(b[8:], uint64(start))
	h.Write(b[:]) //sebdb:ignore-err hash.Hash.Write never fails
	return strconv.FormatUint(h.Sum64(), 16)
}

// Statement is one in-flight statement's handle on the recorder. A nil
// *Statement (disabled recorder, unsampled-and-no-slow-capture, or a
// statement already inside another trace) accepts every method as a
// no-op.
type Statement struct {
	rec   *Recorder
	root  *Span // nil when unsampled (slow-capture only)
	id    string
	seq   uint64
	start int64

	mu    sync.Mutex
	stage string
	sql   string
}

// Begin starts recording one statement. When the statement is sampled
// the returned context carries a root span (stage "stmt" until SetStage
// renames it) so StartSpan works all the way down the execution path;
// otherwise ctx is returned unchanged. If ctx already carries a span —
// EXPLAIN ANALYZE's inner statement — Begin declines so the statement
// is not double-traced.
func (r *Recorder) Begin(ctx context.Context, sql string) (context.Context, *Statement) {
	if r == nil || FromContext(ctx) != nil {
		return ctx, nil
	}
	seq := r.seq.Add(1)
	sampled := r.sampleEvery <= 1 || seq%r.sampleEvery == 1
	if !sampled && r.slowMicros <= 0 {
		return ctx, nil
	}
	start := r.reg.Now()
	st := &Statement{rec: r, seq: seq, start: start, sql: sql, stage: "stmt"}
	if sampled {
		r.mSampled.Inc()
		ctx, st.root = NewTrace(ctx, r.reg, "stmt")
		st.id = traceID(seq, start)
	}
	return ctx, st
}

// SetStage records the statement's kind once parsing has revealed it;
// the root span (if any) is renamed to "stmt.<kind>" so the stage
// histogram and rings bucket per statement kind.
func (st *Statement) SetStage(kind string) {
	if st == nil {
		return
	}
	name := "stmt." + kind
	st.mu.Lock()
	st.stage = name
	st.mu.Unlock()
	st.root.rename(name)
}

// Span returns the statement's root span (nil when unsampled).
func (st *Statement) Span() *Span {
	if st == nil {
		return nil
	}
	return st.root
}

// Finish closes the statement: the root span (if any) is finished and
// the record lands in the recent ring; statements at or above the slow
// threshold are promoted to the slow ring, synthesizing a span-less
// record when the statement was unsampled.
func (st *Statement) Finish(err error) {
	if st == nil {
		return
	}
	r := st.rec
	st.mu.Lock()
	rec := TraceRecord{
		ID:          st.id,
		Seq:         st.seq,
		StartMicros: st.start,
		Stage:       st.stage,
		SQL:         st.sql,
	}
	st.mu.Unlock()
	if err != nil {
		rec.Err = err.Error()
	}
	if st.root != nil {
		st.root.Finish()
		rec.Micros = st.root.DurationMicros()
		rec.Root = st.root
	} else {
		rec.Micros = r.reg.Now() - st.start
		rec.ID = traceID(st.seq, st.start)
	}
	rec.Slow = r.slowMicros > 0 && rec.Micros >= r.slowMicros
	if rec.Slow {
		r.mSlow.Inc()
		r.slow.push(rec)
	}
	if st.root != nil {
		r.recent.push(rec)
	}
}

// Recent returns the most recent sampled statements, newest first. Nil
// recorders return nil.
func (r *Recorder) Recent() []TraceRecord {
	if r == nil {
		return nil
	}
	return r.recent.snapshot()
}

// Slow returns the captured slow statements, newest first. Nil
// recorders return nil.
func (r *Recorder) Slow() []TraceRecord {
	if r == nil {
		return nil
	}
	return r.slow.snapshot()
}

// SpanJSON is the wire form of one span subtree on /debug/traces.
type SpanJSON struct {
	Stage    string           `json:"stage"`
	Micros   int64            `json:"micros"`
	Counters map[string]int64 `json:"counters,omitempty"`
	Children []SpanJSON       `json:"children,omitempty"`
}

// spanToJSON converts a finished span tree to its wire form.
func spanToJSON(s *Span) SpanJSON {
	out := SpanJSON{Stage: s.Name(), Micros: s.DurationMicros()}
	if cs := s.Counters(); len(cs) > 0 {
		out.Counters = make(map[string]int64, len(cs))
		for _, c := range cs {
			out.Counters[c.Name] = c.Value
		}
	}
	for _, c := range s.Children() {
		out.Children = append(out.Children, spanToJSON(c))
	}
	return out
}

// traceJSON is one trace record on /debug/traces.
type traceJSON struct {
	TraceID     string    `json:"trace_id"`
	Seq         uint64    `json:"seq"`
	StartMicros int64     `json:"start_micros"`
	Micros      int64     `json:"micros"`
	Stage       string    `json:"stage"`
	SQL         string    `json:"sql,omitempty"`
	Err         string    `json:"err,omitempty"`
	Slow        bool      `json:"slow"`
	Root        *SpanJSON `json:"root,omitempty"`
}

func recordToJSON(rec TraceRecord) traceJSON {
	out := traceJSON{
		TraceID:     rec.ID,
		Seq:         rec.Seq,
		StartMicros: rec.StartMicros,
		Micros:      rec.Micros,
		Stage:       rec.Stage,
		SQL:         rec.SQL,
		Err:         rec.Err,
		Slow:        rec.Slow,
	}
	if rec.Root != nil {
		sj := spanToJSON(rec.Root)
		out.Root = &sj
	}
	return out
}

// TracesHandler serves the recorder's rings as JSON on /debug/traces.
// Query parameters: ring=recent|slow (default recent), stage=<prefix>
// filters by root stage name, min_micros=<n> drops faster statements,
// n=<k> caps the result count.
func TracesHandler(r *Recorder) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		if r == nil {
			if _, err := w.Write([]byte("[]\n")); err != nil {
				return
			}
			return
		}
		q := req.URL.Query()
		recs := r.Recent()
		if q.Get("ring") == "slow" {
			recs = r.Slow()
		}
		stage := q.Get("stage")
		var minMicros int64
		if v, err := strconv.ParseInt(q.Get("min_micros"), 10, 64); err == nil {
			minMicros = v
		}
		limit := len(recs)
		if n, err := strconv.Atoi(q.Get("n")); err == nil && n >= 0 {
			limit = n
		}
		out := make([]traceJSON, 0, len(recs))
		for _, rec := range recs {
			if len(out) >= limit {
				break
			}
			if stage != "" && !strings.HasPrefix(rec.Stage, stage) {
				continue
			}
			if rec.Micros < minMicros {
				continue
			}
			out = append(out, recordToJSON(rec))
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			return
		}
	})
}
