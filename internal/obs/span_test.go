package obs

import (
	"context"
	"testing"
)

// stepClock is a hand-advanced clock.Source for deterministic spans.
type stepClock struct{ now int64 }

func (c *stepClock) src() int64 { return c.now }

func TestTraceNestingAndDurations(t *testing.T) {
	clk := &stepClock{}
	r := NewRegistry(clk.src)

	ctx, root := NewTrace(context.Background(), r, "query")
	if FromContext(ctx) != root {
		t.Fatal("context does not carry the root span")
	}

	clk.now = 10
	pctx, parse := StartSpan(ctx, "parse")
	if FromContext(pctx) != parse {
		t.Fatal("child context does not carry the child span")
	}
	clk.now = 40
	parse.Finish()
	if got := parse.DurationMicros(); got != 30 {
		t.Errorf("parse duration = %d, want 30", got)
	}

	clk.now = 50
	_, exec := StartSpan(ctx, "exec.select.scan")
	exec.SetCounter("blocks_read", 4)
	exec.AddCounter("blocks_read", 2)
	exec.AddCounter("txs_examined", 9)
	clk.now = 150
	exec.Finish()

	clk.now = 200
	root.Finish()
	if got := root.DurationMicros(); got != 200 {
		t.Errorf("root duration = %d, want 200", got)
	}

	kids := root.Children()
	if len(kids) != 2 || kids[0] != parse || kids[1] != exec {
		t.Fatalf("children = %v, want [parse exec]", kids)
	}
	if parse.StartMicros() != 10 || exec.StartMicros() != 50 {
		t.Errorf("starts = %d, %d", parse.StartMicros(), exec.StartMicros())
	}
	cs := exec.Counters()
	if len(cs) != 2 || cs[0] != (SpanCounter{"blocks_read", 6}) || cs[1] != (SpanCounter{"txs_examined", 9}) {
		t.Errorf("counters = %v", cs)
	}

	// Every Finish feeds the per-stage latency histogram.
	for stage, want := range map[string]int64{"query": 200, "parse": 30, "exec.select.scan": 100} {
		s := r.Histogram(`sebdb_stage_micros{stage="` + stage + `"}`).Snapshot()
		if s.Count != 1 || s.Sum != want {
			t.Errorf("stage %s: count=%d sum=%d, want count=1 sum=%d", stage, s.Count, s.Sum, want)
		}
	}
}

func TestStartSpanWithoutTrace(t *testing.T) {
	ctx, sp := StartSpan(context.Background(), "parse")
	if sp != nil {
		t.Fatal("StartSpan without a trace should return nil")
	}
	if FromContext(ctx) != nil {
		t.Fatal("untraced context should carry no span")
	}
}

// TestNilSpanNoops pins the no-guards contract: every method of a nil
// *Span is a safe no-op.
func TestNilSpanNoops(t *testing.T) {
	var sp *Span
	sp.Finish()
	sp.SetCounter("x", 1)
	sp.AddCounter("x", 1)
	if sp.Name() != "" || sp.StartMicros() != 0 || sp.DurationMicros() != 0 {
		t.Error("nil span accessors should return zero values")
	}
	if sp.Children() != nil || sp.Counters() != nil {
		t.Error("nil span collections should be nil")
	}
}

func TestFinishIdempotent(t *testing.T) {
	clk := &stepClock{}
	r := NewRegistry(clk.src)
	_, root := NewTrace(context.Background(), r, "query")
	clk.now = 25
	root.Finish()
	clk.now = 999
	root.Finish()
	if got := root.DurationMicros(); got != 25 {
		t.Errorf("duration = %d, want 25 (second Finish must not restamp)", got)
	}
	s := r.Histogram(`sebdb_stage_micros{stage="query"}`).Snapshot()
	if s.Count != 1 {
		t.Errorf("histogram count = %d, want 1 (second Finish must not observe)", s.Count)
	}
}

func TestNewTraceNilRegistryUsesDefault(t *testing.T) {
	_, root := NewTrace(context.Background(), nil, "query")
	before := Default.Histogram(`sebdb_stage_micros{stage="query"}`).Snapshot().Count
	root.Finish()
	after := Default.Histogram(`sebdb_stage_micros{stage="query"}`).Snapshot().Count
	if after != before+1 {
		t.Errorf("Default stage histogram count %d -> %d, want +1", before, after)
	}
}
