package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
)

// Logger is SEBDB's structured, leveled event log: one JSON object per
// line on an injectable sink, timestamps from the registry clock, and a
// bounded in-memory ring of recent events behind /debug/log. Like
// spans, a nil *Logger is a valid disabled logger — every method is a
// no-op — so instrumented code needs no guards and pays one nil check
// when logging is off.

// Level orders event severities.
type Level int32

// The four event levels, least to most severe.
const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

// String renders the level name ("debug", "info", "warn", "error").
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	default:
		return "level(" + strconv.Itoa(int(l)) + ")"
	}
}

// ParseLevel maps a level name to its Level (defaulting to LevelInfo
// for unknown names).
func ParseLevel(s string) Level {
	switch s {
	case "debug":
		return LevelDebug
	case "info":
		return LevelInfo
	case "warn":
		return LevelWarn
	case "error":
		return LevelError
	default:
		return LevelInfo
	}
}

// Event is one structured log record.
type Event struct {
	Micros    int64          `json:"micros"`
	Level     string         `json:"level"`
	Component string         `json:"component,omitempty"`
	Msg       string         `json:"msg"`
	Fields    map[string]any `json:"fields,omitempty"`
}

// eventRing is a fixed-capacity circular buffer of events.
type eventRing struct {
	mu   sync.Mutex
	buf  []Event
	next int
	n    int
}

func (rg *eventRing) push(ev Event) {
	rg.mu.Lock()
	rg.buf[rg.next] = ev
	rg.next = (rg.next + 1) % len(rg.buf)
	if rg.n < len(rg.buf) {
		rg.n++
	}
	rg.mu.Unlock()
}

func (rg *eventRing) snapshot() []Event {
	rg.mu.Lock()
	defer rg.mu.Unlock()
	out := make([]Event, 0, rg.n)
	for i := 1; i <= rg.n; i++ {
		out = append(out, rg.buf[(rg.next-i+len(rg.buf))%len(rg.buf)])
	}
	return out
}

// logCore is the shared state behind a Logger and all its With
// derivatives: one sink, one ring, one level gate.
type logCore struct {
	reg  *Registry
	min  atomic.Int32
	ring eventRing

	mu   sync.Mutex
	sink io.Writer
}

// Logger emits structured events for one component. Derive per-
// component loggers with With; they share the sink, ring and level.
type Logger struct {
	core      *logCore
	component string
}

// NewLogger builds a logger writing JSON lines to sink (nil for
// ring-only logging) with timestamps from reg's clock (Default when
// nil), dropping events below min. The event ring keeps the last 512
// events for /debug/log.
func NewLogger(reg *Registry, sink io.Writer, min Level) *Logger {
	if reg == nil {
		reg = Default
	}
	c := &logCore{reg: reg, sink: sink}
	c.min.Store(int32(min))
	c.ring.buf = make([]Event, 512)
	return &Logger{core: c}
}

// With returns a logger tagging events with the given component name.
// Nil-safe: a nil logger derives a nil logger.
func (l *Logger) With(component string) *Logger {
	if l == nil {
		return nil
	}
	return &Logger{core: l.core, component: component}
}

// SetLevel changes the minimum level at runtime.
func (l *Logger) SetLevel(min Level) {
	if l == nil {
		return
	}
	l.core.min.Store(int32(min))
}

// Enabled reports whether events at lv would be emitted; use it to skip
// building expensive field sets.
func (l *Logger) Enabled(lv Level) bool {
	return l != nil && int32(lv) >= l.core.min.Load()
}

// emit builds, rings, and writes one event. kv is alternating
// key/value pairs; a trailing odd key is kept with a nil value rather
// than dropped.
func (l *Logger) emit(lv Level, msg string, kv []any) {
	if !l.Enabled(lv) {
		return
	}
	ev := Event{
		Micros:    l.core.reg.Now(),
		Level:     lv.String(),
		Component: l.component,
		Msg:       msg,
	}
	if len(kv) > 0 {
		ev.Fields = make(map[string]any, (len(kv)+1)/2)
		for i := 0; i < len(kv); i += 2 {
			k, ok := kv[i].(string)
			if !ok {
				k = "!badkey"
			}
			var v any
			if i+1 < len(kv) {
				v = kv[i+1]
			}
			if err, isErr := v.(error); isErr && err != nil {
				v = err.Error()
			}
			ev.Fields[k] = v
		}
	}
	l.core.ring.push(ev)
	l.core.mu.Lock()
	defer l.core.mu.Unlock()
	if l.core.sink == nil {
		return
	}
	line, err := json.Marshal(ev)
	if err != nil {
		return
	}
	if _, err := l.core.sink.Write(append(line, '\n')); err != nil {
		return
	}
}

// Debug emits a debug-level event.
func (l *Logger) Debug(msg string, kv ...any) { l.emit(LevelDebug, msg, kv) }

// Info emits an info-level event.
func (l *Logger) Info(msg string, kv ...any) { l.emit(LevelInfo, msg, kv) }

// Warn emits a warn-level event.
func (l *Logger) Warn(msg string, kv ...any) { l.emit(LevelWarn, msg, kv) }

// Error emits an error-level event.
func (l *Logger) Error(msg string, kv ...any) { l.emit(LevelError, msg, kv) }

// Events returns the ring's recent events, newest first (nil for a nil
// logger).
func (l *Logger) Events() []Event {
	if l == nil {
		return nil
	}
	return l.core.ring.snapshot()
}

// LogHandler serves the logger's event ring as JSON on /debug/log.
// Query parameters: level=<name> keeps only that level and above,
// n=<k> caps the result count.
func LogHandler(l *Logger) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		evs := l.Events()
		if evs == nil {
			evs = []Event{}
		}
		q := req.URL.Query()
		if name := q.Get("level"); name != "" {
			floor := ParseLevel(name)
			kept := evs[:0]
			for _, ev := range evs {
				if ParseLevel(ev.Level) >= floor {
					kept = append(kept, ev)
				}
			}
			evs = kept
		}
		if n, err := strconv.Atoi(q.Get("n")); err == nil && n >= 0 && n < len(evs) {
			evs = evs[:n]
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(evs); err != nil {
			return
		}
	})
}
