package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
)

// Exposition: the registry renders to the Prometheus text format
// (/metrics) and to a JSON snapshot (/debug/vars). Both snapshot the
// metric maps under the read lock, then read atomics lock-free.

// snapshotMaps copies the registration maps so exposition iterates
// without holding the registry lock while formatting.
func (r *Registry) snapshotMaps() (cs map[string]*Counter, gs map[string]*Gauge, hs map[string]*Histogram, fs map[string]FuncMetric) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	cs = make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		cs[k] = v
	}
	gs = make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gs[k] = v
	}
	hs = make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hs[k] = v
	}
	fs = make(map[string]FuncMetric, len(r.funcs))
	for k, v := range r.funcs {
		fs[k] = v
	}
	return cs, gs, hs, fs
}

// withLabel appends one more label to an inline label set.
func withLabel(labels, extra string) string {
	if labels == "" {
		return "{" + extra + "}"
	}
	return "{" + labels + "," + extra + "}"
}

// braced re-wraps an inline label set for output ("" stays "").
func braced(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}

// WritePrometheus renders every metric in the Prometheus text
// exposition format, sorted by name so scrapes are diff-stable.
func (r *Registry) WritePrometheus(w io.Writer) error {
	cs, gs, hs, fs := r.snapshotMaps()

	type line struct {
		base string
		typ  string
		text string
	}
	var lines []line
	for name, c := range cs {
		base, labels := splitName(name)
		lines = append(lines, line{base, "counter",
			fmt.Sprintf("%s%s %d\n", base, braced(labels), c.Value())})
	}
	for name, g := range gs {
		base, labels := splitName(name)
		lines = append(lines, line{base, "gauge",
			fmt.Sprintf("%s%s %d\n", base, braced(labels), g.Value())})
	}
	for name, f := range fs {
		base, labels := splitName(name)
		typ := "gauge"
		if f.Type == TypeCounter {
			typ = "counter"
		}
		lines = append(lines, line{base, typ,
			fmt.Sprintf("%s%s %d\n", base, braced(labels), f.Fn())})
	}
	for name, h := range hs {
		base, labels := splitName(name)
		s := h.Snapshot()
		var cum uint64
		text := ""
		for i, b := range s.Bounds {
			cum += s.Counts[i]
			text += fmt.Sprintf("%s_bucket%s %d\n",
				base, withLabel(labels, `le="`+strconv.FormatInt(b, 10)+`"`), cum)
		}
		text += fmt.Sprintf("%s_bucket%s %d\n", base, withLabel(labels, `le="+Inf"`), s.Count)
		text += fmt.Sprintf("%s_sum%s %d\n", base, braced(labels), s.Sum)
		text += fmt.Sprintf("%s_count%s %d\n", base, braced(labels), s.Count)
		lines = append(lines, line{base, "histogram", text})
	}

	sort.Slice(lines, func(i, j int) bool {
		if lines[i].base != lines[j].base {
			return lines[i].base < lines[j].base
		}
		return lines[i].text < lines[j].text
	})
	lastTyped := ""
	for _, l := range lines {
		if l.base != lastTyped {
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", l.base, l.typ); err != nil {
				return err
			}
			lastTyped = l.base
		}
		if _, err := io.WriteString(w, l.text); err != nil {
			return err
		}
	}
	return nil
}

// histJSON is one histogram in the /debug/vars snapshot.
type histJSON struct {
	Count  uint64   `json:"count"`
	Sum    int64    `json:"sum"`
	Bounds []int64  `json:"bounds"`
	Counts []uint64 `json:"counts"`
	P50    float64  `json:"p50"`
	P90    float64  `json:"p90"`
	P99    float64  `json:"p99"`
}

// WriteJSON renders the registry as a JSON object with "counters",
// "gauges" and "histograms" sections (func metrics fold into the first
// two by type). Map keys keep their inline label sets.
func (r *Registry) WriteJSON(w io.Writer) error {
	cs, gs, hs, fs := r.snapshotMaps()
	counters := make(map[string]uint64, len(cs))
	for name, c := range cs {
		counters[name] = c.Value()
	}
	gauges := make(map[string]int64, len(gs))
	for name, g := range gs {
		gauges[name] = g.Value()
	}
	for name, f := range fs {
		if f.Type == TypeCounter {
			counters[name] = uint64(f.Fn())
		} else {
			gauges[name] = f.Fn()
		}
	}
	hists := make(map[string]histJSON, len(hs))
	for name, h := range hs {
		s := h.Snapshot()
		hists[name] = histJSON{
			Count:  s.Count,
			Sum:    s.Sum,
			Bounds: s.Bounds,
			Counts: s.Counts,
			P50:    s.Quantile(0.50),
			P90:    s.Quantile(0.90),
			P99:    s.Quantile(0.99),
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(map[string]any{
		"counters":   counters,
		"gauges":     gauges,
		"histograms": hists,
	})
}

// Handler serves the registry in Prometheus text format.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := r.WritePrometheus(w); err != nil {
			// The connection is gone; nothing useful to report.
			return
		}
	})
}

// VarsHandler serves the registry as a JSON snapshot (/debug/vars).
func VarsHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		if err := r.WriteJSON(w); err != nil {
			return
		}
	})
}
