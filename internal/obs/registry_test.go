package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"

	"sebdb/internal/clock"
)

func TestCounterGaugeGetOrCreate(t *testing.T) {
	r := NewRegistry(clock.Fixed(0))
	c := r.Counter("a_total")
	c.Inc()
	c.Add(4)
	if got := r.Counter("a_total").Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("a_total") != c {
		t.Fatal("second Counter call returned a different instance")
	}
	g := r.Gauge("depth")
	g.Set(7)
	g.Add(-3)
	if got := r.Gauge("depth").Value(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
	if r.Gauge("depth") != g {
		t.Fatal("second Gauge call returned a different instance")
	}
}

// TestHistogramBoundaries pins the bucket semantics: bounds are
// inclusive upper edges, and values beyond the last bound land in the
// implicit +Inf bucket.
func TestHistogramBoundaries(t *testing.T) {
	r := NewRegistry(clock.Fixed(0))
	h := r.Histogram("lat", 10, 20, 30)
	for _, v := range []int64{0, 10, 11, 20, 21, 30, 31, 1000} {
		h.Observe(v)
	}
	s := h.Snapshot()
	want := []uint64{2, 2, 2, 2} // (..10], (10..20], (20..30], +Inf
	for i, w := range want {
		if s.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d", i, s.Counts[i], w)
		}
	}
	if s.Count != 8 {
		t.Errorf("count = %d, want 8", s.Count)
	}
	if s.Sum != 0+10+11+20+21+30+31+1000 {
		t.Errorf("sum = %d", s.Sum)
	}
	// The first registration fixed the bounds; later ones are ignored.
	if h2 := r.Histogram("lat", 1, 2); h2 != h || len(h2.Snapshot().Bounds) != 3 {
		t.Error("re-registration changed the histogram")
	}
}

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry(clock.Fixed(0))
	h := r.Histogram("q", 10, 20, 30)
	if got := h.Snapshot().Quantile(0.5); got != 0 {
		t.Errorf("empty quantile = %v, want 0", got)
	}
	for i := 0; i < 100; i++ {
		h.Observe(15) // all in (10..20]
	}
	s := h.Snapshot()
	if got := s.Quantile(0.5); got != 15 {
		t.Errorf("p50 = %v, want 15 (midpoint of (10,20])", got)
	}
	if got := s.Quantile(-1); got != s.Quantile(0) {
		t.Errorf("q<0 not clamped: %v", got)
	}
	if got := s.Quantile(2); got != s.Quantile(1) {
		t.Errorf("q>1 not clamped: %v", got)
	}
	h.Observe(99_999) // +Inf bucket
	if got := h.Snapshot().Quantile(1); got != 30 {
		t.Errorf("overflow quantile = %v, want clamp to last bound 30", got)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry(clock.Fixed(0))
	r.Counter(`reads_total{kind="block"}`).Add(3)
	r.Gauge("depth").Set(-2)
	r.RegisterFunc("height", TypeGauge, func() int64 { return 9 })
	h := r.Histogram(`stage{stage="parse"}`, 10, 20)
	h.Observe(5)
	h.Observe(15)
	h.Observe(99)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	want := `# TYPE depth gauge
depth -2
# TYPE height gauge
height 9
# TYPE reads_total counter
reads_total{kind="block"} 3
# TYPE stage histogram
stage_bucket{stage="parse",le="10"} 1
stage_bucket{stage="parse",le="20"} 2
stage_bucket{stage="parse",le="+Inf"} 3
stage_sum{stage="parse"} 119
stage_count{stage="parse"} 3
`
	if got != want {
		t.Errorf("exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestWriteJSON(t *testing.T) {
	r := NewRegistry(clock.Fixed(0))
	r.Counter(`reads_total{kind="tx"}`).Inc()
	r.Gauge("depth").Set(4)
	r.RegisterFunc("hits_total", TypeCounter, func() int64 { return 12 })
	r.Histogram("lat", 10).Observe(3)

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		Counters   map[string]uint64 `json:"counters"`
		Gauges     map[string]int64  `json:"gauges"`
		Histograms map[string]struct {
			Count uint64  `json:"count"`
			P50   float64 `json:"p50"`
		} `json:"histograms"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("not valid JSON: %v\n%s", err, buf.String())
	}
	if out.Counters[`reads_total{kind="tx"}`] != 1 {
		t.Errorf("counters = %v", out.Counters)
	}
	if out.Counters["hits_total"] != 12 {
		t.Errorf("func counter not folded in: %v", out.Counters)
	}
	if out.Gauges["depth"] != 4 {
		t.Errorf("gauges = %v", out.Gauges)
	}
	if h := out.Histograms["lat"]; h.Count != 1 {
		t.Errorf("histograms = %v", out.Histograms)
	}
}

func TestRegisterFuncReplace(t *testing.T) {
	r := NewRegistry(clock.Fixed(0))
	r.RegisterFunc("v", TypeGauge, func() int64 { return 1 })
	r.RegisterFunc("v", TypeGauge, func() int64 { return 2 })
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "v 2\n") {
		t.Errorf("replacement not in effect:\n%s", buf.String())
	}
}

func TestSplitName(t *testing.T) {
	for _, tc := range []struct{ in, base, labels string }{
		{"plain", "plain", ""},
		{`n{a="b"}`, "n", `a="b"`},
		{`n{a="b",c="d"}`, "n", `a="b",c="d"`},
	} {
		base, labels := splitName(tc.in)
		if base != tc.base || labels != tc.labels {
			t.Errorf("splitName(%q) = %q, %q", tc.in, base, labels)
		}
	}
}

// TestConcurrentWritersAndScrapes hammers one counter and one histogram
// from many goroutines while scraping both exposition formats; run
// under -race this pins the lock-free hot path.
func TestConcurrentWritersAndScrapes(t *testing.T) {
	r := NewRegistry(clock.Fixed(0))
	const writers, perWriter = 8, 2000
	stop := make(chan struct{})
	scraped := make(chan struct{})
	go func() {
		defer close(scraped)
		for {
			select {
			case <-stop:
				return
			default:
			}
			var buf bytes.Buffer
			if err := r.WritePrometheus(&buf); err != nil {
				t.Error(err)
				return
			}
			buf.Reset()
			if err := r.WriteJSON(&buf); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				r.Counter("hits_total").Inc()
				r.Histogram("lat", 10, 100, 1000).Observe(int64(w*perWriter + i))
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	<-scraped
	if got := r.Counter("hits_total").Value(); got != writers*perWriter {
		t.Errorf("counter = %d, want %d", got, writers*perWriter)
	}
	if got := r.Histogram("lat").Snapshot().Count; got != writers*perWriter {
		t.Errorf("histogram count = %d, want %d", got, writers*perWriter)
	}
}
