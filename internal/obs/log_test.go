package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// TestLoggerEmitsJSONLines checks the sink format, the component tag,
// the kv handling (pairs, errors, bad keys, trailing odd key) and the
// injected clock.
func TestLoggerEmitsJSONLines(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(NewRegistry(clockAt(42)), &buf, LevelDebug).With("core")

	l.Info("block committed", "height", 7, "err", errors.New("partial"), 3, "x", "trailing")
	line := strings.TrimSpace(buf.String())
	var ev Event
	if err := json.Unmarshal([]byte(line), &ev); err != nil {
		t.Fatalf("sink line is not JSON: %v (%q)", err, line)
	}
	if ev.Micros != 42 || ev.Level != "info" || ev.Component != "core" || ev.Msg != "block committed" {
		t.Errorf("event header = %+v", ev)
	}
	if ev.Fields["height"] != float64(7) {
		t.Errorf("height field = %v", ev.Fields["height"])
	}
	if ev.Fields["err"] != "partial" {
		t.Errorf("error value not stringified: %v", ev.Fields["err"])
	}
	if _, ok := ev.Fields["!badkey"]; !ok {
		t.Errorf("non-string key not tagged: %v", ev.Fields)
	}
	if v, ok := ev.Fields["trailing"]; !ok || v != nil {
		t.Errorf("trailing odd key mishandled: %v, %v", v, ok)
	}
}

// TestLoggerLevelGate checks the floor drops events, SetLevel moves it
// at runtime, and Enabled mirrors the gate.
func TestLoggerLevelGate(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(NewRegistry(clockAt(0)), &buf, LevelWarn)

	l.Debug("d")
	l.Info("i")
	l.Warn("w")
	l.Error("e")
	if got := len(l.Events()); got != 2 {
		t.Fatalf("%d events passed a warn floor, want 2", got)
	}
	if l.Enabled(LevelInfo) || !l.Enabled(LevelError) {
		t.Error("Enabled disagrees with the floor")
	}
	l.SetLevel(LevelDebug)
	l.Debug("d2")
	if evs := l.Events(); len(evs) != 3 || evs[0].Msg != "d2" {
		t.Errorf("SetLevel(debug) did not open the gate: %v", evs)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != 3 {
		t.Errorf("sink got %d lines, want 3", lines)
	}
}

// TestLoggerNilSafety drives every method on a nil logger.
func TestLoggerNilSafety(t *testing.T) {
	var l *Logger
	l.Debug("a")
	l.Info("b", "k", "v")
	l.Warn("c")
	l.Error("d")
	l.SetLevel(LevelDebug)
	if l.Enabled(LevelError) {
		t.Error("nil logger claims to be enabled")
	}
	if l.With("x") != nil {
		t.Error("nil logger With must stay nil")
	}
	if l.Events() != nil {
		t.Error("nil logger has events")
	}
}

// TestLoggerRingBounded overfills the 512-event ring and checks it
// keeps only the newest events.
func TestLoggerRingBounded(t *testing.T) {
	l := NewLogger(NewRegistry(clockAt(0)), nil, LevelInfo)
	for i := 0; i < 1000; i++ {
		l.Info("e", "i", i)
	}
	evs := l.Events()
	if len(evs) != 512 {
		t.Fatalf("ring holds %d events, want 512", len(evs))
	}
	if evs[0].Fields["i"] != 999 {
		t.Errorf("newest event i = %v, want 999", evs[0].Fields["i"])
	}
}

// TestLogHandler serves the ring over HTTP with level and count
// filters; nil loggers serve an empty list.
func TestLogHandler(t *testing.T) {
	l := NewLogger(NewRegistry(clockAt(5)), nil, LevelDebug).With("test")
	l.Debug("fine detail")
	l.Info("steady state")
	l.Warn("looking odd")
	l.Error("on fire")

	srv := httptest.NewServer(LogHandler(l))
	defer srv.Close()
	get := func(path string) []Event {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out []Event
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return out
	}

	if evs := get("/"); len(evs) != 4 || evs[0].Msg != "on fire" {
		t.Errorf("unfiltered = %v", evs)
	}
	if evs := get("/?level=warn"); len(evs) != 2 {
		t.Errorf("level=warn returned %d events, want 2", len(evs))
	}
	if evs := get("/?n=1"); len(evs) != 1 || evs[0].Msg != "on fire" {
		t.Errorf("n=1 = %v", evs)
	}

	nilSrv := httptest.NewServer(LogHandler(nil))
	defer nilSrv.Close()
	resp, err := nilSrv.Client().Get(nilSrv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out []Event
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil || len(out) != 0 {
		t.Errorf("nil logger handler returned %v, %v; want empty list", out, err)
	}
}

// TestLoggerConcurrent hammers one core from many components while a
// reader drains the ring — the logger's -race gate.
func TestLoggerConcurrent(t *testing.T) {
	var buf bytes.Buffer
	root := NewLogger(NewRegistry(clockAt(1)), &buf, LevelDebug)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			l := root.With("worker")
			for i := 0; i < 200; i++ {
				l.Info("tick", "worker", w, "i", i)
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			_ = root.Events()
		}
	}()
	wg.Wait()
	if lines := strings.Count(buf.String(), "\n"); lines != 8*200 {
		t.Errorf("sink got %d lines, want %d", lines, 8*200)
	}
}
