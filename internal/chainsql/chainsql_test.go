package chainsql

import (
	"fmt"
	"testing"

	"sebdb/internal/types"
)

func seeded(t testing.TB, blocks, txPerBlock int) *Node {
	t.Helper()
	n, err := New()
	if err != nil {
		t.Fatal(err)
	}
	tid := uint64(1)
	var prev *types.BlockHeader
	for b := 0; b < blocks; b++ {
		var txs []*types.Transaction
		for i := 0; i < txPerBlock; i++ {
			name := "donate"
			if tid%2 == 0 {
				name = "transfer"
			}
			txs = append(txs, &types.Transaction{
				Tid: tid, Ts: int64(b+1) * 1000,
				SenID: fmt.Sprintf("org%d", tid%3),
				Tname: name,
				Args:  []types.Value{types.Dec(float64(tid))},
			})
			tid++
		}
		blk := types.NewBlock(prev, txs, int64(b+1)*1000, "n")
		prev = &blk.Header
		if err := n.ApplyBlock(blk); err != nil {
			t.Fatal(err)
		}
	}
	return n
}

func TestReplication(t *testing.T) {
	n := seeded(t, 5, 6)
	if n.Count() != 30 {
		t.Errorf("Count = %d", n.Count())
	}
}

func TestTrackOneDim(t *testing.T) {
	n := seeded(t, 5, 6)
	txs, err := n.TrackOneDim("org1")
	if err != nil {
		t.Fatal(err)
	}
	if len(txs) != 10 {
		t.Errorf("org1 txs = %d", len(txs))
	}
	for _, tx := range txs {
		if tx.SenID != "org1" {
			t.Errorf("wrong sender %s", tx.SenID)
		}
	}
	// Unknown account: empty, no error.
	txs, err = n.TrackOneDim("ghost")
	if err != nil || len(txs) != 0 {
		t.Errorf("ghost: %d, %v", len(txs), err)
	}
}

func TestTrackTwoDimClientFilters(t *testing.T) {
	n := seeded(t, 5, 6)
	got, transferred, err := n.TrackTwoDimClient("org1", "transfer", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, tx := range got {
		if tx.SenID != "org1" || tx.Tname != "transfer" {
			t.Errorf("bad row %s/%s", tx.SenID, tx.Tname)
		}
	}
	// The wire carries ALL org1 transactions, not just the matches —
	// the defining inefficiency of Fig. 21.
	all, _ := n.TrackOneDim("org1")
	if len(got) >= len(all) {
		t.Errorf("filter removed nothing: %d of %d", len(got), len(all))
	}
	expected := 0
	for _, tx := range all {
		expected += tx.Size()
	}
	if transferred != expected {
		t.Errorf("transferred %d bytes, want %d (everything)", transferred, expected)
	}
	// Window filtering happens client-side too.
	w, _, err := n.TrackTwoDimClient("org1", "transfer", 2000, 3000)
	if err != nil {
		t.Fatal(err)
	}
	for _, tx := range w {
		if tx.Ts < 2000 || tx.Ts > 3000 {
			t.Errorf("tx outside window: %d", tx.Ts)
		}
	}
	if len(w) == 0 || len(w) >= len(got) {
		t.Errorf("windowed = %d of %d", len(w), len(got))
	}
}

func TestTransferGrowsWithAccountSize(t *testing.T) {
	small := seeded(t, 2, 6)
	big := seeded(t, 20, 6)
	_, tSmall, _ := small.TrackTwoDimClient("org1", "transfer", 0, 0)
	_, tBig, _ := big.TrackTwoDimClient("org1", "transfer", 0, 0)
	if tBig <= tSmall {
		t.Errorf("transfer bytes did not grow: %d vs %d", tSmall, tBig)
	}
}
