// Package chainsql implements the ChainSQL-style baseline the paper
// compares against in §VII-G. ChainSQL reaches agreement on-chain and
// then replicates every transaction into a local commercial RDBMS,
// answering queries from that replica. Its tracking support is the
// GET_TRANSACTION-style account API: the server returns *all*
// transactions of an account (index-backed, so insensitive to chain
// size — Fig. 20), and any further dimension, such as Q3's operation
// filter, is applied client-side after transferring everything
// (latency growing with the account's transaction count — Fig. 21).
package chainsql

import (
	"fmt"

	"sebdb/internal/rdbms"
	"sebdb/internal/types"
)

// Node is a ChainSQL participant: the chain's transactions replicated
// into the local RDBMS (a second copy of the data — one of the
// drawbacks SEBDB's single-copy design removes).
type Node struct {
	db *rdbms.DB
	// rows holds the replica's materialised transactions by tid;
	// the RDBMS rows reference them.
	txs map[uint64]*types.Transaction
}

// ledgerTable is the replica table holding one row per transaction.
const ledgerTable = "ledger"

// New returns an empty ChainSQL node with the account index created.
func New() (*Node, error) {
	db := rdbms.New()
	err := db.CreateTable(ledgerTable, []rdbms.Column{
		{Name: "tid", Kind: types.KindInt},
		{Name: "senid", Kind: types.KindString},
		{Name: "tname", Kind: types.KindString},
		{Name: "ts", Kind: types.KindTimestamp},
	})
	if err != nil {
		return nil, err
	}
	if err := db.CreateIndex(ledgerTable, "senid"); err != nil {
		return nil, err
	}
	return &Node{db: db, txs: make(map[uint64]*types.Transaction)}, nil
}

// ApplyBlock replicates a block's transactions into the RDBMS — the
// "transferring all transactions to RDBMS" step of ChainSQL's design.
func (n *Node) ApplyBlock(b *types.Block) error {
	for _, tx := range b.Txs {
		err := n.db.Insert(ledgerTable, rdbms.Row{
			types.Int(int64(tx.Tid)),
			types.Str(tx.SenID),
			types.Str(tx.Tname),
			types.Time(tx.Ts),
		})
		if err != nil {
			return err
		}
		n.txs[tx.Tid] = tx
	}
	return nil
}

// Count returns the replica's transaction count.
func (n *Node) Count() int { return len(n.txs) }

// GetAccountTransactions is the GET_TRANSACTION-style server API: all
// transactions sent by the account, resolved through the RDBMS index
// and serialised for transfer to the client.
func (n *Node) GetAccountTransactions(account string) ([][]byte, error) {
	rows, err := n.db.SelectRange(ledgerTable, "senid",
		types.Str(account), types.Str(account))
	if err != nil {
		return nil, err
	}
	out := make([][]byte, 0, len(rows))
	for _, r := range rows {
		tx, ok := n.txs[uint64(r[0].I)]
		if !ok {
			return nil, fmt.Errorf("chainsql: replica row %d without payload", r[0].I)
		}
		out = append(out, tx.EncodeBytes())
	}
	return out, nil
}

// TrackOneDim answers Q2 (all transactions of an operator): fully
// server-side via the account index, like SEBDB's Fig. 20 comparison.
func (n *Node) TrackOneDim(operator string) ([]*types.Transaction, error) {
	wire, err := n.GetAccountTransactions(operator)
	if err != nil {
		return nil, err
	}
	return decodeAll(wire)
}

// TrackTwoDimClient answers Q3 the ChainSQL way: the server ships every
// transaction of the operator over the wire and the *client* filters by
// operation and window — the cost Fig. 21 measures growing with the
// operator's transaction count.
func (n *Node) TrackTwoDimClient(operator, operation string, winStart, winEnd int64) ([]*types.Transaction, int, error) {
	wire, err := n.GetAccountTransactions(operator)
	if err != nil {
		return nil, 0, err
	}
	transferred := 0
	for _, w := range wire {
		transferred += len(w)
	}
	all, err := decodeAll(wire)
	if err != nil {
		return nil, transferred, err
	}
	var out []*types.Transaction
	for _, tx := range all {
		if tx.Tname != operation {
			continue
		}
		if winStart != 0 || winEnd != 0 {
			if tx.Ts < winStart || (winEnd != 0 && tx.Ts > winEnd) {
				continue
			}
		}
		out = append(out, tx)
	}
	return out, transferred, nil
}

func decodeAll(wire [][]byte) ([]*types.Transaction, error) {
	out := make([]*types.Transaction, 0, len(wire))
	for _, w := range wire {
		tx, err := types.DecodeTransaction(types.NewDecoder(w))
		if err != nil {
			return nil, err
		}
		out = append(out, tx)
	}
	return out, nil
}
