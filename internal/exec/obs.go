package exec

import (
	"sebdb/internal/obs"
)

// Observability plumbing for the operators: every public operator has a
// *Ctx variant that opens a trace span when the context carries one
// (EXPLAIN ANALYZE) and, always, folds its Stats into the registry's
// exec counters. The Stats values themselves are untouched — the cost
// model tests pin them — the registry is a second, cumulative view.

// ObsChain is optionally implemented by Chains that carry their own
// metrics registry (the engine exposes Config.Obs this way); operators
// fall back to obs.Default otherwise.
type ObsChain interface {
	Chain
	// Obs returns the registry the chain's operators report into.
	Obs() *obs.Registry
}

// registryOf resolves the registry the operator should report to.
func registryOf(c Chain) *obs.Registry {
	if o, ok := c.(ObsChain); ok {
		if r := o.Obs(); r != nil {
			return r
		}
	}
	return obs.Default
}

// recordStats folds one operator run's physical counters into the
// registry, labelled by operator and access method.
func recordStats(c Chain, op string, m Method, st Stats) {
	reg := registryOf(c)
	l := `{op="` + op + `",method="` + m.String() + `"}`
	reg.Counter("sebdb_exec_blocks_read_total" + l).Add(uint64(st.BlocksRead))
	reg.Counter("sebdb_exec_txs_examined_total" + l).Add(uint64(st.TxsExamined))
	reg.Counter("sebdb_exec_index_probes_total" + l).Add(uint64(st.IndexProbes))
}

// finishStats attaches the Stats to the span and closes it. Safe on a
// nil span (untraced run).
func finishStats(sp *obs.Span, st Stats) {
	sp.SetCounter("blocks_read", int64(st.BlocksRead))
	sp.SetCounter("txs_examined", int64(st.TxsExamined))
	sp.SetCounter("index_probes", int64(st.IndexProbes))
	sp.Finish()
}
