// Package exec implements SEBDB's query processing layer (paper §V):
// single-table selection under the three access methods (full scan,
// table-level bitmap, layered index), the track-trace operation
// (Algorithm 1), the on-chain join (Algorithm 2), and the on-off-chain
// join (Algorithm 3). Each operator works against the Chain interface
// so it can run over the live engine, a cached view, or a test fixture.
package exec

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"sebdb/internal/index/bitmap"
	"sebdb/internal/index/blockindex"
	"sebdb/internal/index/layered"
	"sebdb/internal/obs"
	"sebdb/internal/parallel"
	"sebdb/internal/schema"
	"sebdb/internal/sqlparser"
	"sebdb/internal/types"
)

// Chain is the read surface the executors need. Both the live engine
// and its height-pinned read view (core.View) implement it; queries
// normally run against a view, so they never contend with the commit
// pipeline's engine lock. Layered with an empty table name resolves the
// global system-column indexes (SenID, Tname) that span every table.
type Chain interface {
	// NumBlocks returns the chain height (number of blocks).
	NumBlocks() int
	// Block reads a full block, possibly from cache.
	Block(bid uint64) (*types.Block, error)
	// Tx reads one transaction by position, possibly from cache.
	Tx(bid uint64, pos uint32) (*types.Transaction, error)
	// BlockIdx returns the block-level index: the live one for the
	// engine, a height-masked pin for a view.
	BlockIdx() blockindex.Reader
	// TableBlocks returns the table-level bitmap for a table name.
	TableBlocks(name string) *bitmap.Bitmap
	// Layered returns the layered index on table.col, or nil when the
	// column is not indexed. table=="" addresses the global system
	// indexes keyed by column ("senid", "tname").
	Layered(table, col string) *layered.Index
	// Table resolves a table schema.
	Table(name string) (*schema.Table, error)
}

// Method selects the access path, mirroring the paper's SU/BU/LU runs.
type Method int

const (
	// MethodScan reads every block (Equation 1).
	MethodScan Method = iota
	// MethodBitmap reads only blocks flagged by the table-level bitmap
	// index (Equation 2).
	MethodBitmap
	// MethodLayered uses the layered index: first-level filtering plus
	// per-block B+-tree probes (Equation 3).
	MethodLayered
)

// String names the method like the paper's figure legends.
func (m Method) String() string {
	switch m {
	case MethodScan:
		return "scan"
	case MethodBitmap:
		return "bitmap"
	case MethodLayered:
		return "layered"
	default:
		return fmt.Sprintf("method(%d)", int(m))
	}
}

// Stats counts the physical work an operator performed; tests use it to
// check the cost model's ordering (Equations 1-3) empirically.
type Stats struct {
	// BlocksRead is the number of block bodies fetched.
	BlocksRead int
	// TxsExamined is the number of transactions inspected.
	TxsExamined int
	// IndexProbes is the number of second-level index probes.
	IndexProbes int
}

// ErrNoIndex is returned when MethodLayered is requested but the needed
// layered index does not exist.
var ErrNoIndex = errors.New("exec: no layered index on requested column")

// windowBlocks computes Algorithms 1-3's first bitmap B: blocks within
// the time window, or all blocks when win is nil.
func windowBlocks(c Chain, win *sqlparser.Window) *bitmap.Bitmap {
	if win == nil {
		return c.BlockIdx().AllBlocks()
	}
	return c.BlockIdx().TimeWindow(win.Start, win.End)
}

// inWindow checks the transaction-level time filter.
func inWindow(tx *types.Transaction, win *sqlparser.Window) bool {
	if win == nil {
		return true
	}
	if tx.Ts < win.Start {
		return false
	}
	return win.End == 0 || tx.Ts <= win.End
}

// evalPred evaluates one predicate against a transaction of table tbl.
func evalPred(tbl *schema.Table, tx *types.Transaction, p sqlparser.Pred) (bool, error) {
	v, err := tbl.Value(tx, p.Col)
	if err != nil {
		return false, err
	}
	cmp := types.Compare(v, p.Val)
	switch p.Op {
	case sqlparser.OpEq:
		return cmp == 0, nil
	case sqlparser.OpNe:
		return cmp != 0, nil
	case sqlparser.OpLt:
		return cmp < 0, nil
	case sqlparser.OpLe:
		return cmp <= 0, nil
	case sqlparser.OpGt:
		return cmp > 0, nil
	case sqlparser.OpGe:
		return cmp >= 0, nil
	case sqlparser.OpBetween:
		return cmp >= 0 && types.Compare(v, p.Hi) <= 0, nil
	default:
		return false, fmt.Errorf("exec: unsupported operator %v", p.Op)
	}
}

// matches evaluates the conjunction of predicates plus the membership
// and window filters.
func matches(tbl *schema.Table, tx *types.Transaction, preds []sqlparser.Pred, win *sqlparser.Window) (bool, error) {
	if tx.Tname != tbl.Name || !inWindow(tx, win) {
		return false, nil
	}
	for _, p := range preds {
		ok, err := evalPred(tbl, tx, p)
		if err != nil || !ok {
			return false, err
		}
	}
	return true, nil
}

// predBounds extracts the [lo, hi] range a predicate constrains its
// column to, for driving the layered index.
func predBounds(p sqlparser.Pred) (lo, hi types.Value, exact bool) {
	switch p.Op {
	case sqlparser.OpEq:
		return p.Val, p.Val, true
	case sqlparser.OpBetween:
		return p.Val, p.Hi, true
	case sqlparser.OpGe, sqlparser.OpGt:
		return p.Val, posInf, false
	case sqlparser.OpLe, sqlparser.OpLt:
		return negInf, p.Val, false
	default:
		return negInf, posInf, false
	}
}

// negInf and posInf bracket the total order of types.Compare.
var (
	negInf = types.Null
	posInf = types.Value{Kind: types.KindTimestamp + 100}
)

// Select executes SELECT ... FROM table WHERE preds [WINDOW win] with
// the given access method, returning matching transactions in chain
// order.
func Select(c Chain, table string, preds []sqlparser.Pred, win *sqlparser.Window, m Method) ([]*types.Transaction, Stats, error) {
	return SelectCtx(context.Background(), c, table, preds, win, m)
}

// SelectCtx is Select with trace support: when ctx carries a query
// trace (EXPLAIN ANALYZE) the run is recorded as an
// "exec.select.<method>" stage carrying its Stats; either way the
// Stats fold into the registry's exec counters.
func SelectCtx(ctx context.Context, c Chain, table string, preds []sqlparser.Pred, win *sqlparser.Window, m Method) ([]*types.Transaction, Stats, error) {
	_, sp := obs.StartSpan(ctx, "exec.select."+m.String())
	out, st, err := selectImpl(c, table, preds, win, m)
	finishStats(sp, st)
	recordStats(c, "select", m, st)
	return out, st, err
}

func selectImpl(c Chain, table string, preds []sqlparser.Pred, win *sqlparser.Window, m Method) ([]*types.Transaction, Stats, error) {
	var st Stats
	tbl, err := c.Table(table)
	if err != nil {
		return nil, st, err
	}
	blocks := windowBlocks(c, win)

	switch m {
	case MethodScan:
		// Equation 1: every block in the window is read.
	case MethodBitmap:
		blocks.And(c.TableBlocks(tbl.Name)) // Equation 2
	case MethodLayered:
		idx, drive := pickLayered(c, tbl, preds)
		if idx == nil {
			return nil, st, fmt.Errorf("%w: table %q", ErrNoIndex, table)
		}
		return layeredSelect(c, tbl, idx, drive, preds, win, blocks)
	default:
		return nil, st, fmt.Errorf("exec: unknown method %v", m)
	}

	// Fan block fetch + predicate evaluation across the worker pool and
	// merge per-block results back in chain order; Stats are summed in
	// the same order, so they match a sequential run exactly.
	ids := blockIDs(blocks)
	var out []*types.Transaction
	err = parallel.Ordered(workersOf(c), len(ids),
		func(i int) (blockMatches, error) {
			b, err := c.Block(ids[i])
			if err != nil {
				return blockMatches{}, err
			}
			p := blockMatches{st: Stats{BlocksRead: 1}}
			for _, tx := range b.Txs {
				p.st.TxsExamined++
				ok, err := matches(tbl, tx, preds, win)
				if err != nil {
					return blockMatches{}, err
				}
				if ok {
					p.txs = append(p.txs, tx)
				}
			}
			return p, nil
		},
		func(_ int, p blockMatches) error {
			out = append(out, p.txs...)
			st.add(p.st)
			return nil
		})
	return out, st, err
}

// blockMatches carries one block's matching transactions and the
// physical work spent finding them through the parallel merge.
type blockMatches struct {
	txs []*types.Transaction
	st  Stats
}

// add accumulates another block's counters.
func (s *Stats) add(o Stats) {
	s.BlocksRead += o.BlocksRead
	s.TxsExamined += o.TxsExamined
	s.IndexProbes += o.IndexProbes
}

// pickLayered chooses the layered index (and the predicate that drives
// it) for a query: the first predicate whose column is indexed.
func pickLayered(c Chain, tbl *schema.Table, preds []sqlparser.Pred) (*layered.Index, *sqlparser.Pred) {
	for i := range preds {
		if idx := c.Layered(tbl.Name, preds[i].Col); idx != nil {
			return idx, &preds[i]
		}
	}
	return nil, nil
}

// layeredSelect is the layered-index access path: first-level filter to
// candidate blocks, second-level B+-tree probe per block, then residual
// predicate evaluation on the fetched transactions. The per-block
// probes fan across the worker pool; each block's matched positions are
// sorted before fetching so the merged result preserves chain order
// (the B+-tree iterates in key order, not position order).
func layeredSelect(c Chain, tbl *schema.Table, idx *layered.Index, drive *sqlparser.Pred,
	preds []sqlparser.Pred, win *sqlparser.Window, blocks *bitmap.Bitmap) ([]*types.Transaction, Stats, error) {
	var st Stats
	lo, hi, _ := predBounds(*drive)
	cand := idx.CandidateBlocks(lo, hi)
	cand.And(blocks)
	ids := blockIDs(cand)

	var out []*types.Transaction
	err := parallel.Ordered(workersOf(c), len(ids),
		func(i int) (blockMatches, error) {
			bid := ids[i]
			p := blockMatches{st: Stats{IndexProbes: 1}}
			var poss []uint32
			idx.BlockRange(bid, lo, hi, func(_ types.Value, pos uint32) bool {
				poss = append(poss, pos)
				return true
			})
			sort.Slice(poss, func(a, b int) bool { return poss[a] < poss[b] })
			for _, pos := range poss {
				tx, err := c.Tx(bid, pos)
				if err != nil {
					return blockMatches{}, err
				}
				p.st.TxsExamined++
				ok, err := matches(tbl, tx, preds, win)
				if err != nil {
					return blockMatches{}, err
				}
				if ok {
					p.txs = append(p.txs, tx)
				}
			}
			return p, nil
		},
		func(_ int, p blockMatches) error {
			out = append(out, p.txs...)
			st.add(p.st)
			return nil
		})
	return out, st, err
}
