package exec

import (
	"context"
	"fmt"

	"sebdb/internal/index/bitmap"
	"sebdb/internal/index/layered"
	"sebdb/internal/obs"
	"sebdb/internal/rdbms"
	"sebdb/internal/schema"
	"sebdb/internal/sqlparser"
	"sebdb/internal/types"
)

// JoinRow is one on-chain equi-join result.
type JoinRow struct {
	Left  *types.Transaction
	Right *types.Transaction
}

// OnOffRow is one on-off-chain join result: an on-chain transaction
// paired with an off-chain row.
type OnOffRow struct {
	Tx  *types.Transaction
	Row rdbms.Row
}

// keyed is a (join key, transaction) pair used by the hash and merge
// phases.
type keyed struct {
	key types.Value
	tx  *types.Transaction
}

// collectKeyed reads the join column of every window-eligible
// transaction of table tbl in the given blocks.
func collectKeyed(c Chain, tbl *schema.Table, col string, blocks *bitmap.Bitmap,
	win *sqlparser.Window, st *Stats) ([]keyed, error) {
	var out []keyed
	var ferr error
	blocks.ForEach(func(bid int) bool {
		b, err := c.Block(uint64(bid))
		if err != nil {
			ferr = err
			return false
		}
		st.BlocksRead++
		for _, tx := range b.Txs {
			st.TxsExamined++
			if tx.Tname != tbl.Name || !inWindow(tx, win) {
				continue
			}
			v, err := tbl.Value(tx, col)
			if err != nil {
				ferr = err
				return false
			}
			out = append(out, keyed{key: v, tx: tx})
		}
		return true
	})
	return out, ferr
}

// hashKey buckets values for the hash join; numeric kinds share a key
// space to match types.Compare's cross-kind equality.
func hashKey(v types.Value) string {
	if v.Numeric() {
		return fmt.Sprintf("n:%g", v.Float())
	}
	return fmt.Sprintf("%d:%s", v.Kind, v.String())
}

// OnChainJoin implements the on-chain join (paper §V-B, Algorithm 2).
//
//   - MethodScan: one-pass hash join over every block in the window.
//   - MethodBitmap: the same hash join, but only blocks containing rows
//     of r or s (table-level bitmap) are read.
//   - MethodLayered: Algorithm 2 — candidate block pairs are filtered by
//     the first-level intersect() test, then each surviving pair is
//     joined by sort-merge over the second-level B+-trees.
func OnChainJoin(c Chain, r, s, rCol, sCol string, win *sqlparser.Window, m Method) ([]JoinRow, Stats, error) {
	return OnChainJoinCtx(context.Background(), c, r, s, rCol, sCol, win, m)
}

// OnChainJoinCtx is OnChainJoin with trace support ("exec.join.onchain"
// stage); the Stats always fold into the registry's exec counters.
func OnChainJoinCtx(ctx context.Context, c Chain, r, s, rCol, sCol string, win *sqlparser.Window, m Method) ([]JoinRow, Stats, error) {
	_, sp := obs.StartSpan(ctx, "exec.join.onchain")
	out, st, err := onChainJoinImpl(c, r, s, rCol, sCol, win, m)
	finishStats(sp, st)
	recordStats(c, "join", m, st)
	return out, st, err
}

func onChainJoinImpl(c Chain, r, s, rCol, sCol string, win *sqlparser.Window, m Method) ([]JoinRow, Stats, error) {
	var st Stats
	rt, err := c.Table(r)
	if err != nil {
		return nil, st, err
	}
	stt, err := c.Table(s)
	if err != nil {
		return nil, st, err
	}

	switch m {
	case MethodScan, MethodBitmap:
		// One-pass hash join (§V-B): a single scan over the relevant
		// blocks partitions both tables' rows, then r probes s's hash
		// table. Under MethodBitmap only blocks containing rows of r or
		// s are read.
		window := windowBlocks(c, win)
		scanBlocks := window
		rBlocks, sBlocks := window, window
		if m == MethodBitmap {
			rBlocks = window.Clone().And(c.TableBlocks(rt.Name))
			sBlocks = window.Clone().And(c.TableBlocks(stt.Name))
			scanBlocks = rBlocks.Clone().Or(sBlocks)
		}
		var rRows []keyed
		ht := make(map[string][]*types.Transaction)
		var ferr error
		scanBlocks.ForEach(func(bid int) bool {
			b, err := c.Block(uint64(bid))
			if err != nil {
				ferr = err
				return false
			}
			st.BlocksRead++
			inR := rBlocks.Get(bid)
			inS := sBlocks.Get(bid)
			for _, tx := range b.Txs {
				st.TxsExamined++
				if !inWindow(tx, win) {
					continue
				}
				if inR && tx.Tname == rt.Name {
					v, err := rt.Value(tx, rCol)
					if err != nil {
						ferr = err
						return false
					}
					rRows = append(rRows, keyed{key: v, tx: tx})
				}
				if inS && tx.Tname == stt.Name {
					v, err := stt.Value(tx, sCol)
					if err != nil {
						ferr = err
						return false
					}
					ht[hashKey(v)] = append(ht[hashKey(v)], tx)
				}
			}
			return true
		})
		if ferr != nil {
			return nil, st, ferr
		}
		var out []JoinRow
		for _, kr := range rRows {
			for _, sx := range ht[hashKey(kr.key)] {
				out = append(out, JoinRow{Left: kr.tx, Right: sx})
			}
		}
		return out, st, nil

	case MethodLayered:
		return onChainJoinLayered(c, rt, stt, rCol, sCol, win, &st)
	default:
		return nil, st, fmt.Errorf("exec: unknown method %v", m)
	}
}

func onChainJoinLayered(c Chain, rt, stt *schema.Table, rCol, sCol string,
	win *sqlparser.Window, st *Stats) ([]JoinRow, Stats, error) {
	ir := c.Layered(rt.Name, rCol)
	is := c.Layered(stt.Name, sCol)
	if ir == nil || is == nil {
		return nil, *st, fmt.Errorf("%w: join columns %s.%s/%s.%s",
			ErrNoIndex, rt.Name, rCol, stt.Name, sCol)
	}
	// Lines 2-7: window bitmap ANDed with each index's first level.
	window := windowBlocks(c, win)
	mr := ir.AnyBlocks().And(window)
	ms := is.AnyBlocks().And(window.Clone())

	// Lines 8-15: intersect test per candidate pair (driven by the
	// first-level values/buckets), then sort-merge per surviving pair.
	// Second-level entries are materialised once per block, not per
	// pair.
	var out []JoinRow
	rCache := make(map[uint64][]layered.Entry)
	sCache := make(map[uint64][]layered.Entry)
	for _, pair := range ir.JoinPairs(is, mr, ms) {
		st.IndexProbes++
		re, ok := rCache[pair[0]]
		if !ok {
			re = blockEntries(ir, pair[0])
			rCache[pair[0]] = re
		}
		se, ok := sCache[pair[1]]
		if !ok {
			se = blockEntries(is, pair[1])
			sCache[pair[1]] = se
		}
		rows, err := sortMergeEntries(c, re, se, pair[0], pair[1], win, st)
		if err != nil {
			return nil, *st, err
		}
		out = append(out, rows...)
	}
	return out, *st, nil
}

// blockEntries materialises a block's second-level index in key order.
func blockEntries(idx *layered.Index, bid uint64) []layered.Entry {
	var out []layered.Entry
	idx.BlockRange(bid, negInf, posInf, func(k types.Value, pos uint32) bool {
		out = append(out, layered.Entry{Key: k, Pos: pos})
		return true
	})
	return out
}

// sortMergeEntries merge-joins two blocks' second-level entry lists;
// leaves are key-sorted, so this is the SortMergeJoin(b_r, b_s) of
// Algorithm 2.
func sortMergeEntries(c Chain, re, se []layered.Entry,
	br, bs uint64, win *sqlparser.Window, st *Stats) ([]JoinRow, error) {
	var out []JoinRow
	i, j := 0, 0
	for i < len(re) && j < len(se) {
		cmp := types.Compare(re[i].Key, se[j].Key)
		switch {
		case cmp < 0:
			i++
		case cmp > 0:
			j++
		default:
			// Expand both duplicate runs.
			i2 := i
			for i2 < len(re) && types.Equal(re[i2].Key, re[i].Key) {
				i2++
			}
			j2 := j
			for j2 < len(se) && types.Equal(se[j2].Key, se[j].Key) {
				j2++
			}
			for a := i; a < i2; a++ {
				ltx, err := c.Tx(br, re[a].Pos)
				if err != nil {
					return nil, err
				}
				st.TxsExamined++
				if !inWindow(ltx, win) {
					continue
				}
				for b := j; b < j2; b++ {
					rtx, err := c.Tx(bs, se[b].Pos)
					if err != nil {
						return nil, err
					}
					st.TxsExamined++
					if !inWindow(rtx, win) {
						continue
					}
					out = append(out, JoinRow{Left: ltx, Right: rtx})
				}
			}
			i, j = i2, j2
		}
	}
	return out, nil
}
