package exec_test

// Empirical validation of the cost model (paper §IV-B, Equations 1-3):
// the physical work each access method reports through exec.Stats must
// match the equations' variables — scan touches all n blocks, bitmap
// only the k blocks holding the table, layered roughly p tuples.

import (
	"fmt"
	"testing"

	"sebdb/internal/core"
	"sebdb/internal/exec"
	"sebdb/internal/plan"
	"sebdb/internal/sqlparser"
	"sebdb/internal/types"
)

// sparseFixture builds a chain where the donate table occupies only
// every 4th block, so k (bitmap blocks) is visibly smaller than n.
func sparseFixture(t testing.TB, blocks, perBlock int) (*core.Engine, int) {
	t.Helper()
	e, err := core.Open(core.Config{Dir: t.TempDir(), HistogramDepth: 20})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	for _, ddl := range []string{
		`CREATE donate (donor string, project string, amount decimal)`,
		`CREATE noise (v int)`,
	} {
		if _, err := e.Execute(ddl); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.FlushAt(1); err != nil {
		t.Fatal(err)
	}
	seq := 0
	donateBlocks := 0
	for b := 0; b < blocks; b++ {
		var batch []*types.Transaction
		for i := 0; i < perBlock; i++ {
			var tx *types.Transaction
			var err error
			if b%4 == 0 {
				tx, err = e.NewTransaction("org1", "donate", []types.Value{
					types.Str(fmt.Sprintf("d%04d", seq)),
					types.Str("edu"),
					types.Dec(float64(seq)),
				})
			} else {
				tx, err = e.NewTransaction("org2", "noise", []types.Value{types.Int(int64(seq))})
			}
			if err != nil {
				t.Fatal(err)
			}
			tx.Ts = int64(b+1) * 1000
			batch = append(batch, tx)
			seq++
		}
		if b%4 == 0 {
			donateBlocks++
		}
		if _, err := e.CommitBlock(batch, int64(b+1)*1000); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.CreateIndex("donate", "amount"); err != nil {
		t.Fatal(err)
	}
	return e, donateBlocks
}

func TestCostModelVariablesMatchStats(t *testing.T) {
	const blocks, perBlock = 40, 20
	e, donateBlocks := sparseFixture(t, blocks, perBlock)
	n := e.NumBlocks() // includes the schema block

	// Donate rows live in blocks 0,4,8,... so their amounts (= seq) come
	// in runs of 20 per 80; [160,179] is block 8's run.
	preds := []sqlparser.Pred{{Col: "amount", Op: sqlparser.OpBetween,
		Val: types.Dec(160), Hi: types.Dec(179)}}

	// Equation 1: scan reads every block.
	_, sScan, err := exec.Select(e, "donate", preds, nil, exec.MethodScan)
	if err != nil {
		t.Fatal(err)
	}
	if sScan.BlocksRead != n {
		t.Errorf("scan read %d blocks, n = %d", sScan.BlocksRead, n)
	}

	// Equation 2: bitmap reads exactly the k blocks holding donate rows.
	_, sBm, err := exec.Select(e, "donate", preds, nil, exec.MethodBitmap)
	if err != nil {
		t.Fatal(err)
	}
	if sBm.BlocksRead != donateBlocks {
		t.Errorf("bitmap read %d blocks, k = %d", sBm.BlocksRead, donateBlocks)
	}

	// Equation 3: layered examines on the order of p tuples — here
	// exactly p, because the driving predicate is the only one.
	res, sLay, err := exec.Select(e, "donate", preds, nil, exec.MethodLayered)
	if err != nil {
		t.Fatal(err)
	}
	p := len(res)
	if p == 0 {
		t.Fatal("probe range empty")
	}
	if sLay.TxsExamined != p {
		t.Errorf("layered examined %d txs, p = %d", sLay.TxsExamined, p)
	}
	if sLay.BlocksRead != 0 {
		t.Errorf("layered read %d whole blocks", sLay.BlocksRead)
	}

	// The planner, fed the same variables, picks layered for this
	// selective query and bitmap once p dwarfs the block costs.
	cm := plan.DefaultCostModel()
	if ch := plan.Choose(cm, n, donateBlocks, p); ch.Method != exec.MethodLayered {
		t.Errorf("planner chose %v for selective query", ch.Method)
	}
	if ch := plan.Choose(cm, n, donateBlocks, 100_000_000); ch.Method == exec.MethodLayered {
		t.Error("planner chose layered for an enormous result")
	}
}

func TestTrackingStatsOrdering(t *testing.T) {
	e, _ := sparseFixture(t, 40, 20)
	q := &sqlparser.Trace{Operator: "org1", HasOperator: true}
	_, sScan, err := exec.Track(e, q, exec.MethodScan)
	if err != nil {
		t.Fatal(err)
	}
	_, sBm, err := exec.Track(e, q, exec.MethodBitmap)
	if err != nil {
		t.Fatal(err)
	}
	_, sLay, err := exec.Track(e, q, exec.MethodLayered)
	if err != nil {
		t.Fatal(err)
	}
	// org1 sends only donate rows (every 4th block): the bitmap on
	// senid:org1 prunes the same blocks, and the layered path touches
	// only org1's transactions.
	if !(sLay.TxsExamined <= sBm.TxsExamined && sBm.TxsExamined <= sScan.TxsExamined) {
		t.Errorf("tx work not ordered: layered %d, bitmap %d, scan %d",
			sLay.TxsExamined, sBm.TxsExamined, sScan.TxsExamined)
	}
	if !(sBm.BlocksRead < sScan.BlocksRead) {
		t.Errorf("bitmap read %d blocks, scan %d", sBm.BlocksRead, sScan.BlocksRead)
	}
}
