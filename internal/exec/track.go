package exec

import (
	"context"
	"fmt"

	"sebdb/internal/obs"
	"sebdb/internal/sqlparser"
	"sebdb/internal/types"
)

// Track implements the track-trace operation (paper §V-A, Algorithm 1):
// given an optional operator (SenID), an optional operation (Tname) and
// a time window, return every matching transaction across all tables.
//
// MethodLayered follows Algorithm 1 exactly: the block index supplies
// the window bitmap B, the first levels of the global SenID/Tname
// layered indexes supply B' and B”, candidate blocks are B & B' & B”,
// and the second-level trees are probed for the positions, intersecting
// the two position sets when tracking from both dimensions.
func Track(c Chain, q *sqlparser.Trace, m Method) ([]*types.Transaction, Stats, error) {
	return TrackCtx(context.Background(), c, q, m)
}

// TrackCtx is Track with trace support: an active query trace records
// the run as an "exec.track" stage; the Stats always fold into the
// registry's exec counters.
func TrackCtx(ctx context.Context, c Chain, q *sqlparser.Trace, m Method) ([]*types.Transaction, Stats, error) {
	_, sp := obs.StartSpan(ctx, "exec.track")
	out, st, err := trackImpl(c, q, m)
	finishStats(sp, st)
	recordStats(c, "track", m, st)
	return out, st, err
}

func trackImpl(c Chain, q *sqlparser.Trace, m Method) ([]*types.Transaction, Stats, error) {
	var st Stats
	if !q.HasOperator && !q.HasOperation {
		return nil, st, fmt.Errorf("exec: trace needs operator and/or operation")
	}

	switch m {
	case MethodScan, MethodBitmap:
		blocks := windowBlocks(c, q.Window)
		if m == MethodBitmap {
			// The table-level index can be keyed by Tname and by SenID
			// (§IV-B: "The index can also be created on SenID").
			if q.HasOperation {
				blocks.And(c.TableBlocks(q.Operation))
			}
			if q.HasOperator {
				blocks.And(c.TableBlocks("senid:" + q.Operator))
			}
		}
		var out []*types.Transaction
		var ferr error
		blocks.ForEach(func(bid int) bool {
			b, err := c.Block(uint64(bid))
			if err != nil {
				ferr = err
				return false
			}
			st.BlocksRead++
			for _, tx := range b.Txs {
				st.TxsExamined++
				if trackMatch(tx, q) {
					out = append(out, tx)
				}
			}
			return true
		})
		return out, st, ferr

	case MethodLayered:
		return trackLayered(c, q, &st)
	default:
		return nil, st, fmt.Errorf("exec: unknown method %v", m)
	}
}

func trackMatch(tx *types.Transaction, q *sqlparser.Trace) bool {
	if q.HasOperator && tx.SenID != q.Operator {
		return false
	}
	if q.HasOperation && tx.Tname != q.Operation {
		return false
	}
	return inWindow(tx, q.Window)
}

func trackLayered(c Chain, q *sqlparser.Trace, st *Stats) ([]*types.Transaction, Stats, error) {
	idxSen := c.Layered("", "senid")
	idxTn := c.Layered("", "tname")
	if (q.HasOperator && idxSen == nil) || (q.HasOperation && idxTn == nil) {
		return nil, *st, fmt.Errorf("%w: system senid/tname", ErrNoIndex)
	}

	// Lines 1-4: B & B' & B''.
	blocks := windowBlocks(c, q.Window)
	if q.HasOperator {
		blocks.And(idxSen.ValueBlocks(types.Str(q.Operator)))
	}
	if q.HasOperation {
		blocks.And(idxTn.ValueBlocks(types.Str(q.Operation)))
	}

	// Lines 6-13: per block, probe the second-level indexes, intersect
	// the resulting position sets, and read the transactions.
	var out []*types.Transaction
	var ferr error
	blocks.ForEach(func(bid int) bool {
		var positions []uint32
		switch {
		case q.HasOperator && q.HasOperation:
			st.IndexProbes += 2
			po := map[uint32]bool{}
			idxSen.BlockRange(uint64(bid), types.Str(q.Operator), types.Str(q.Operator),
				func(_ types.Value, pos uint32) bool {
					po[pos] = true
					return true
				})
			idxTn.BlockRange(uint64(bid), types.Str(q.Operation), types.Str(q.Operation),
				func(_ types.Value, pos uint32) bool {
					if po[pos] {
						positions = append(positions, pos)
					}
					return true
				})
		case q.HasOperator:
			st.IndexProbes++
			idxSen.BlockRange(uint64(bid), types.Str(q.Operator), types.Str(q.Operator),
				func(_ types.Value, pos uint32) bool {
					positions = append(positions, pos)
					return true
				})
		default:
			st.IndexProbes++
			idxTn.BlockRange(uint64(bid), types.Str(q.Operation), types.Str(q.Operation),
				func(_ types.Value, pos uint32) bool {
					positions = append(positions, pos)
					return true
				})
		}
		for _, pos := range positions {
			tx, err := c.Tx(uint64(bid), pos)
			if err != nil {
				ferr = err
				return false
			}
			st.TxsExamined++
			if inWindow(tx, q.Window) {
				out = append(out, tx)
			}
		}
		return true
	})
	return out, *st, ferr
}
