package exec

import (
	"sebdb/internal/index/bitmap"
)

// ParallelChain is optionally implemented by Chains whose reads may be
// fanned across a bounded worker pool (the engine exposes its
// Config.Parallelism this way). Operators fetch blocks and evaluate
// predicates concurrently but always merge results back in chain
// order, so results and Stats are identical to a sequential run.
type ParallelChain interface {
	Chain
	// Parallelism returns the worker bound for parallel reads (>= 1).
	Parallelism() int
}

// workersOf returns the worker bound for c: its declared parallelism
// when it implements ParallelChain, else 1 (sequential).
func workersOf(c Chain) int {
	if p, ok := c.(ParallelChain); ok {
		if n := p.Parallelism(); n > 1 {
			return n
		}
	}
	return 1
}

// blockIDs materialises a bitmap's set bits in ascending order, the
// work list a parallel operator fans out over.
func blockIDs(b *bitmap.Bitmap) []uint64 {
	out := make([]uint64, 0, b.Count())
	b.ForEach(func(bid int) bool {
		out = append(out, uint64(bid))
		return true
	})
	return out
}
