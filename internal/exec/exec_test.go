package exec_test

import (
	"fmt"
	"sort"
	"testing"

	"sebdb/internal/core"
	"sebdb/internal/exec"
	"sebdb/internal/rdbms"
	"sebdb/internal/sqlparser"
	"sebdb/internal/types"
)

// fixture builds an engine with the donation schema: nBlocks blocks of
// txPerBlock transactions alternating between donate and transfer,
// senders org0..org2, amounts increasing, all on a synthetic time axis
// (block i at ts (i+1)*1000).
func fixture(t testing.TB, nBlocks, txPerBlock int) *core.Engine {
	t.Helper()
	e, err := core.Open(core.Config{Dir: t.TempDir(), HistogramDepth: 20})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	for _, sql := range []string{
		`CREATE donate (donor string, project string, amount decimal)`,
		`CREATE transfer (project string, donor string, organization string, amount decimal)`,
	} {
		if _, err := e.Execute(sql); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.FlushAt(1); err != nil {
		t.Fatal(err)
	}
	seq := 0
	for b := 0; b < nBlocks; b++ {
		var batch []*types.Transaction
		for i := 0; i < txPerBlock; i++ {
			var tx *types.Transaction
			var err error
			if seq%2 == 0 {
				tx, err = e.NewTransaction(fmt.Sprintf("org%d", seq%3), "donate", []types.Value{
					types.Str(fmt.Sprintf("donor%02d", seq%7)),
					types.Str("education"),
					types.Dec(float64(seq)),
				})
			} else {
				tx, err = e.NewTransaction(fmt.Sprintf("org%d", seq%3), "transfer", []types.Value{
					types.Str("education"),
					types.Str(fmt.Sprintf("donor%02d", seq%7)),
					types.Str(fmt.Sprintf("school%d", seq%4)),
					types.Dec(float64(seq)),
				})
			}
			if err != nil {
				t.Fatal(err)
			}
			tx.Ts = int64(b+1) * 1000
			batch = append(batch, tx)
			seq++
		}
		if _, err := e.CommitBlock(batch, int64(b+1)*1000); err != nil {
			t.Fatal(err)
		}
	}
	for _, idx := range [][2]string{
		{"donate", "amount"}, {"transfer", "amount"},
		{"transfer", "organization"}, {"donate", "donor"},
	} {
		if err := e.CreateIndex(idx[0], idx[1]); err != nil {
			t.Fatal(err)
		}
	}
	return e
}

func tids(txs []*types.Transaction) []uint64 {
	out := make([]uint64, len(txs))
	for i, tx := range txs {
		out[i] = tx.Tid
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func sameTids(a, b []*types.Transaction) bool {
	x, y := tids(a), tids(b)
	if len(x) != len(y) {
		return false
	}
	for i := range x {
		if x[i] != y[i] {
			return false
		}
	}
	return true
}

func TestSelectMethodsAgree(t *testing.T) {
	e := fixture(t, 10, 10)
	preds := []sqlparser.Pred{{Col: "amount", Op: sqlparser.OpBetween,
		Val: types.Dec(20), Hi: types.Dec(45)}}
	scan, sScan, err := exec.Select(e, "donate", preds, nil, exec.MethodScan)
	if err != nil {
		t.Fatal(err)
	}
	bm, sBm, err := exec.Select(e, "donate", preds, nil, exec.MethodBitmap)
	if err != nil {
		t.Fatal(err)
	}
	lay, sLay, err := exec.Select(e, "donate", preds, nil, exec.MethodLayered)
	if err != nil {
		t.Fatal(err)
	}
	if len(scan) == 0 {
		t.Fatal("no results at all")
	}
	if !sameTids(scan, bm) || !sameTids(scan, lay) {
		t.Fatalf("methods disagree: scan=%d bitmap=%d layered=%d", len(scan), len(bm), len(lay))
	}
	// Work ordering mirrors Equations 1-3: scan >= bitmap blocks; layered
	// examines only (near) the result.
	if sBm.BlocksRead > sScan.BlocksRead {
		t.Errorf("bitmap read %d blocks, scan %d", sBm.BlocksRead, sScan.BlocksRead)
	}
	if sLay.TxsExamined > sBm.TxsExamined {
		t.Errorf("layered examined %d txs, bitmap %d", sLay.TxsExamined, sBm.TxsExamined)
	}
}

func TestSelectPointQueryDiscreteIndex(t *testing.T) {
	e := fixture(t, 8, 8)
	preds := []sqlparser.Pred{{Col: "donor", Op: sqlparser.OpEq, Val: types.Str("donor03")}}
	scan, _, _ := exec.Select(e, "donate", preds, nil, exec.MethodScan)
	lay, _, err := exec.Select(e, "donate", preds, nil, exec.MethodLayered)
	if err != nil {
		t.Fatal(err)
	}
	if len(scan) == 0 || !sameTids(scan, lay) {
		t.Errorf("discrete point query: scan=%d layered=%d", len(scan), len(lay))
	}
}

func TestSelectWithWindow(t *testing.T) {
	e := fixture(t, 10, 10)
	win := &sqlparser.Window{Start: 3000, End: 5000} // blocks 2..4
	all, _, _ := exec.Select(e, "donate", nil, nil, exec.MethodScan)
	windowed, _, err := exec.Select(e, "donate", nil, win, exec.MethodScan)
	if err != nil {
		t.Fatal(err)
	}
	if len(windowed) == 0 || len(windowed) >= len(all) {
		t.Errorf("window returned %d of %d", len(windowed), len(all))
	}
	for _, tx := range windowed {
		if tx.Ts < 3000 || tx.Ts > 5000 {
			t.Errorf("tx ts %d outside window", tx.Ts)
		}
	}
	// Bitmap and layered agree under the window.
	bm, _, _ := exec.Select(e, "donate", nil, win, exec.MethodBitmap)
	if !sameTids(windowed, bm) {
		t.Error("bitmap disagrees under window")
	}
}

func TestSelectResidualPredicates(t *testing.T) {
	e := fixture(t, 6, 10)
	// amount drives the index; project is residual.
	preds := []sqlparser.Pred{
		{Col: "amount", Op: sqlparser.OpBetween, Val: types.Dec(0), Hi: types.Dec(30)},
		{Col: "project", Op: sqlparser.OpEq, Val: types.Str("education")},
	}
	lay, _, err := exec.Select(e, "donate", preds, nil, exec.MethodLayered)
	if err != nil {
		t.Fatal(err)
	}
	scan, _, _ := exec.Select(e, "donate", preds, nil, exec.MethodScan)
	if !sameTids(scan, lay) {
		t.Error("residual predicate handling diverged")
	}
	// An impossible residual returns nothing.
	preds[1].Val = types.Str("ghost")
	lay, _, _ = exec.Select(e, "donate", preds, nil, exec.MethodLayered)
	if len(lay) != 0 {
		t.Error("impossible predicate returned rows")
	}
}

func TestSelectErrors(t *testing.T) {
	e := fixture(t, 2, 4)
	if _, _, err := exec.Select(e, "ghost", nil, nil, exec.MethodScan); err == nil {
		t.Error("missing table accepted")
	}
	// Layered without an index on any predicate column.
	preds := []sqlparser.Pred{{Col: "project", Op: sqlparser.OpEq, Val: types.Str("x")}}
	if _, _, err := exec.Select(e, "donate", preds, nil, exec.MethodLayered); err == nil {
		t.Error("layered without index accepted")
	}
	// Unknown predicate column.
	preds = []sqlparser.Pred{{Col: "ghost", Op: sqlparser.OpEq, Val: types.Str("x")}}
	if _, _, err := exec.Select(e, "donate", preds, nil, exec.MethodScan); err == nil {
		t.Error("unknown column accepted")
	}
	if _, _, err := exec.Select(e, "donate", nil, nil, exec.Method(99)); err == nil {
		t.Error("bogus method accepted")
	}
}

func TestTrackMethodsAgree(t *testing.T) {
	e := fixture(t, 10, 10)
	cases := []*sqlparser.Trace{
		{Operator: "org1", HasOperator: true},
		{Operation: "transfer", HasOperation: true},
		{Operator: "org1", HasOperator: true, Operation: "transfer", HasOperation: true},
		{Operator: "org2", HasOperator: true, Window: &sqlparser.Window{Start: 2000, End: 6000}},
	}
	for i, q := range cases {
		scan, sScan, err := exec.Track(e, q, exec.MethodScan)
		if err != nil {
			t.Fatalf("case %d scan: %v", i, err)
		}
		bm, _, err := exec.Track(e, q, exec.MethodBitmap)
		if err != nil {
			t.Fatalf("case %d bitmap: %v", i, err)
		}
		lay, sLay, err := exec.Track(e, q, exec.MethodLayered)
		if err != nil {
			t.Fatalf("case %d layered: %v", i, err)
		}
		if len(scan) == 0 {
			t.Fatalf("case %d: empty result", i)
		}
		if !sameTids(scan, bm) || !sameTids(scan, lay) {
			t.Errorf("case %d: methods disagree scan=%d bitmap=%d layered=%d",
				i, len(scan), len(bm), len(lay))
		}
		if sLay.TxsExamined > sScan.TxsExamined {
			t.Errorf("case %d: layered examined more txs than scan", i)
		}
	}
	// Verify all results actually match the dimensions.
	q := cases[2]
	got, _, _ := exec.Track(e, q, exec.MethodLayered)
	for _, tx := range got {
		if tx.SenID != "org1" || tx.Tname != "transfer" {
			t.Errorf("wrong tx in 2-dim track: %s/%s", tx.SenID, tx.Tname)
		}
	}
}

func TestTrackErrors(t *testing.T) {
	e := fixture(t, 2, 4)
	if _, _, err := exec.Track(e, &sqlparser.Trace{}, exec.MethodScan); err == nil {
		t.Error("dimensionless trace accepted")
	}
	if _, _, err := exec.Track(e, &sqlparser.Trace{Operator: "x", HasOperator: true}, exec.Method(9)); err == nil {
		t.Error("bogus method accepted")
	}
}

func TestOnChainJoinMethodsAgree(t *testing.T) {
	e := fixture(t, 8, 12)
	run := func(m exec.Method) []exec.JoinRow {
		rows, _, err := exec.OnChainJoin(e, "donate", "transfer", "amount", "amount", nil, m)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		return rows
	}
	// donate amounts are even, transfer odd — join on amount is empty;
	// switch to a column with matches: donor.
	if err := e.CreateIndex("transfer", "donor"); err != nil {
		t.Fatal(err)
	}
	runDonor := func(m exec.Method) []exec.JoinRow {
		rows, _, err := exec.OnChainJoin(e, "donate", "transfer", "donor", "donor", nil, m)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		return rows
	}
	if got := run(exec.MethodScan); len(got) != 0 {
		t.Errorf("disjoint join returned %d rows", len(got))
	}
	scan := runDonor(exec.MethodScan)
	bm := runDonor(exec.MethodBitmap)
	lay := runDonor(exec.MethodLayered)
	if len(scan) == 0 {
		t.Fatal("join empty")
	}
	if len(scan) != len(bm) || len(scan) != len(lay) {
		t.Fatalf("join methods disagree: %d/%d/%d", len(scan), len(bm), len(lay))
	}
	// Same multiset of (left, right) tid pairs.
	key := func(rows []exec.JoinRow) []string {
		out := make([]string, len(rows))
		for i, r := range rows {
			out[i] = fmt.Sprintf("%d-%d", r.Left.Tid, r.Right.Tid)
		}
		sort.Strings(out)
		return out
	}
	ks, kl := key(scan), key(lay)
	for i := range ks {
		if ks[i] != kl[i] {
			t.Fatalf("pair %d differs: %s vs %s", i, ks[i], kl[i])
		}
	}
	// Every pair satisfies the join predicate.
	dt, _ := e.Table("donate")
	tt, _ := e.Table("transfer")
	for _, r := range scan {
		lv, _ := dt.Value(r.Left, "donor")
		rv, _ := tt.Value(r.Right, "donor")
		if !types.Equal(lv, rv) {
			t.Fatalf("join pair violates predicate: %v vs %v", lv, rv)
		}
	}
}

func TestOnChainJoinWindow(t *testing.T) {
	e := fixture(t, 10, 10)
	e.CreateIndex("transfer", "donor")
	win := &sqlparser.Window{Start: 1000, End: 3000}
	all, _, _ := exec.OnChainJoin(e, "donate", "transfer", "donor", "donor", nil, exec.MethodScan)
	scan, _, _ := exec.OnChainJoin(e, "donate", "transfer", "donor", "donor", win, exec.MethodScan)
	lay, _, err := exec.OnChainJoin(e, "donate", "transfer", "donor", "donor", win, exec.MethodLayered)
	if err != nil {
		t.Fatal(err)
	}
	if len(scan) == 0 || len(scan) >= len(all) {
		t.Errorf("windowed join %d of %d", len(scan), len(all))
	}
	if len(scan) != len(lay) {
		t.Errorf("windowed join methods disagree: %d vs %d", len(scan), len(lay))
	}
}

func TestOnChainJoinErrors(t *testing.T) {
	e := fixture(t, 2, 4)
	if _, _, err := exec.OnChainJoin(e, "ghost", "transfer", "a", "a", nil, exec.MethodScan); err == nil {
		t.Error("missing left table accepted")
	}
	if _, _, err := exec.OnChainJoin(e, "donate", "ghost", "a", "a", nil, exec.MethodScan); err == nil {
		t.Error("missing right table accepted")
	}
	if _, _, err := exec.OnChainJoin(e, "donate", "transfer", "project", "project", nil, exec.MethodLayered); err == nil {
		t.Error("layered join without indexes accepted")
	}
}

func TestOnOffJoinMethodsAgree(t *testing.T) {
	e := fixture(t, 8, 10)
	db := e.OffChain()
	if err := db.CreateTable("donorinfo", []rdbms.Column{
		{Name: "donor", Kind: types.KindString},
		{Name: "age", Kind: types.KindInt},
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		db.Insert("donorinfo", rdbms.Row{types.Str(fmt.Sprintf("donor%02d", i)), types.Int(int64(20 + i))})
	}
	run := func(m exec.Method) []exec.OnOffRow {
		rows, _, err := exec.OnOffJoin(e, db, "donate", "donor", "donorinfo", "donor", nil, m)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		return rows
	}
	scan := run(exec.MethodScan)
	bm := run(exec.MethodBitmap)
	lay := run(exec.MethodLayered)
	if len(scan) == 0 {
		t.Fatal("on-off join empty")
	}
	if len(scan) != len(bm) || len(scan) != len(lay) {
		t.Fatalf("on-off methods disagree: %d/%d/%d", len(scan), len(bm), len(lay))
	}
	dt, _ := e.Table("donate")
	for _, r := range lay {
		tv, _ := dt.Value(r.Tx, "donor")
		if !types.Equal(tv, r.Row[0]) {
			t.Fatalf("on-off pair violates predicate: %v vs %v", tv, r.Row[0])
		}
	}
}

func TestOnOffJoinContinuousAttr(t *testing.T) {
	e := fixture(t, 8, 10)
	db := e.OffChain()
	db.CreateTable("pricing", []rdbms.Column{
		{Name: "amount", Kind: types.KindDecimal},
		{Name: "tier", Kind: types.KindString},
	})
	// Only amounts 10..20 exist off-chain: min/max filtering applies.
	for i := 10; i <= 20; i++ {
		db.Insert("pricing", rdbms.Row{types.Dec(float64(i)), types.Str("gold")})
	}
	run := func(m exec.Method) int {
		rows, _, err := exec.OnOffJoin(e, db, "donate", "amount", "pricing", "amount", nil, m)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		return len(rows)
	}
	nScan, nLay := run(exec.MethodScan), run(exec.MethodLayered)
	if nScan == 0 || nScan != nLay {
		t.Errorf("continuous on-off join: scan=%d layered=%d", nScan, nLay)
	}
	// The layered path must have skipped blocks outside [10, 20].
	_, stLay, _ := exec.OnOffJoin(e, db, "donate", "amount", "pricing", "amount", nil, exec.MethodLayered)
	_, stScan, _ := exec.OnOffJoin(e, db, "donate", "amount", "pricing", "amount", nil, exec.MethodScan)
	if stLay.TxsExamined >= stScan.TxsExamined {
		t.Errorf("layered examined %d txs, scan %d", stLay.TxsExamined, stScan.TxsExamined)
	}
}

func TestOnOffJoinErrors(t *testing.T) {
	e := fixture(t, 2, 4)
	db := e.OffChain()
	if _, _, err := exec.OnOffJoin(e, db, "donate", "donor", "ghost", "x", nil, exec.MethodScan); err == nil {
		t.Error("missing off-chain table accepted")
	}
	if _, _, err := exec.OnOffJoin(e, db, "ghost", "x", "ghost", "x", nil, exec.MethodScan); err == nil {
		t.Error("missing on-chain table accepted")
	}
	db.CreateTable("t2", []rdbms.Column{{Name: "x", Kind: types.KindInt}})
	if _, _, err := exec.OnOffJoin(e, db, "donate", "project", "t2", "x", nil, exec.MethodLayered); err == nil {
		t.Error("layered on-off without index accepted")
	}
	// Empty off-chain table: empty result, no error.
	rows, _, err := exec.OnOffJoin(e, db, "donate", "amount", "t2", "x", nil, exec.MethodScan)
	if err != nil || len(rows) != 0 {
		t.Errorf("empty off-chain join: %d rows, %v", len(rows), err)
	}
}
