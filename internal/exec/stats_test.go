package exec

import "testing"

// TestStatsAddAggregation pins Stats.add as a plain field-wise sum —
// the parallel merge and the obs counters both rely on per-block stats
// aggregating without loss.
func TestStatsAddAggregation(t *testing.T) {
	var s Stats
	s.add(Stats{BlocksRead: 1, TxsExamined: 10, IndexProbes: 2})
	s.add(Stats{BlocksRead: 3, TxsExamined: 0, IndexProbes: 5})
	s.add(Stats{})
	want := Stats{BlocksRead: 4, TxsExamined: 10, IndexProbes: 7}
	if s != want {
		t.Fatalf("aggregated stats = %+v, want %+v", s, want)
	}
}
