package exec

import (
	"context"
	"fmt"
	"sort"

	"sebdb/internal/obs"
	"sebdb/internal/rdbms"
	"sebdb/internal/sqlparser"
	"sebdb/internal/types"
)

// OnOffJoin implements the on-off-chain join (paper §V-C, Algorithm 3):
// join on-chain table r (column rCol) with off-chain table s (column
// sCol) held by the local RDBMS.
//
//   - MethodScan: hash join; every block in the window is read.
//   - MethodBitmap: hash join over blocks flagged for r by the
//     table-level bitmap index.
//   - MethodLayered: Algorithm 3 — the off-chain side's [min, max]
//     (continuous) or distinct values (discrete) filter candidate blocks
//     through r's layered index first level; each surviving block is
//     sort-merge joined against the sorted off-chain rows using the
//     second-level index.
func OnOffJoin(c Chain, db *rdbms.DB, r, rCol, s, sCol string,
	win *sqlparser.Window, m Method) ([]OnOffRow, Stats, error) {
	return OnOffJoinCtx(context.Background(), c, db, r, rCol, s, sCol, win, m)
}

// OnOffJoinCtx is OnOffJoin with trace support ("exec.join.onoff"
// stage); the Stats always fold into the registry's exec counters.
func OnOffJoinCtx(ctx context.Context, c Chain, db *rdbms.DB, r, rCol, s, sCol string,
	win *sqlparser.Window, m Method) ([]OnOffRow, Stats, error) {
	_, sp := obs.StartSpan(ctx, "exec.join.onoff")
	out, st, err := onOffJoinImpl(c, db, r, rCol, s, sCol, win, m)
	finishStats(sp, st)
	recordStats(c, "join", m, st)
	return out, st, err
}

func onOffJoinImpl(c Chain, db *rdbms.DB, r, rCol, s, sCol string,
	win *sqlparser.Window, m Method) ([]OnOffRow, Stats, error) {
	var st Stats
	rt, err := c.Table(r)
	if err != nil {
		return nil, st, err
	}
	sci, err := db.ColIndex(s, sCol)
	if err != nil {
		return nil, st, err
	}

	switch m {
	case MethodScan, MethodBitmap:
		blocks := windowBlocks(c, win)
		if m == MethodBitmap {
			blocks.And(c.TableBlocks(rt.Name))
		}
		sRows, err := db.Select(s)
		if err != nil {
			return nil, st, err
		}
		ht := make(map[string][]rdbms.Row, len(sRows))
		for _, row := range sRows {
			k := hashKey(row[sci])
			ht[k] = append(ht[k], row)
		}
		rRows, err := collectKeyed(c, rt, rCol, blocks, win, &st)
		if err != nil {
			return nil, st, err
		}
		var out []OnOffRow
		for _, kr := range rRows {
			for _, row := range ht[hashKey(kr.key)] {
				out = append(out, OnOffRow{Tx: kr.tx, Row: row})
			}
		}
		return out, st, nil

	case MethodLayered:
		return onOffJoinLayered(c, db, rt.Name, rCol, s, sCol, sci, win, &st)
	default:
		return nil, st, fmt.Errorf("exec: unknown method %v", m)
	}
}

func onOffJoinLayered(c Chain, db *rdbms.DB, r, rCol, s, sCol string, sci int,
	win *sqlparser.Window, st *Stats) ([]OnOffRow, Stats, error) {
	ir := c.Layered(r, rCol)
	if ir == nil {
		return nil, *st, fmt.Errorf("%w: %s.%s", ErrNoIndex, r, rCol)
	}

	// Lines 2, 5-7: window bitmap & first level of I_r.
	window := windowBlocks(c, win)
	cand := ir.AnyBlocks().And(window)

	// The off-chain side arrives sorted on the join attribute (§V-C:
	// "query results from off-chain data are sorted on join attribute").
	sRows, err := db.SortedBy(s, sCol)
	if err != nil {
		return nil, *st, err
	}
	if len(sRows) == 0 {
		return nil, *st, nil
	}

	if ir.Continuous() {
		// Lines 3-4, 9: filter blocks by (s_min, s_max).
		sMin, sMax := sRows[0][sci], sRows[len(sRows)-1][sci]
		filtered := ir.CandidateBlocks(sMin, sMax)
		cand.And(filtered)
	} else {
		// Discrete path: OR the first-level bitmaps of the off-chain
		// side's distinct join values.
		distinct, err := db.Distinct(s, sCol)
		if err != nil {
			return nil, *st, err
		}
		union := ir.ValueBlocks(distinct[0])
		for _, v := range distinct[1:] {
			union.Or(ir.ValueBlocks(v))
		}
		cand.And(union)
	}

	// Lines 8-13: sort-merge each surviving block against s.
	var out []OnOffRow
	var ferr error
	cand.ForEach(func(bid int) bool {
		st.IndexProbes++
		re := blockEntries(ir, uint64(bid))
		i, j := 0, 0
		for i < len(re) && j < len(sRows) {
			cmp := types.Compare(re[i].Key, sRows[j][sci])
			switch {
			case cmp < 0:
				i++
			case cmp > 0:
				j++
			default:
				i2 := i
				for i2 < len(re) && types.Equal(re[i2].Key, re[i].Key) {
					i2++
				}
				j2 := j
				for j2 < len(sRows) && types.Equal(sRows[j2][sci], sRows[j][sci]) {
					j2++
				}
				for a := i; a < i2; a++ {
					tx, err := c.Tx(uint64(bid), re[a].Pos)
					if err != nil {
						ferr = err
						return false
					}
					st.TxsExamined++
					if !inWindow(tx, win) {
						continue
					}
					for b := j; b < j2; b++ {
						out = append(out, OnOffRow{Tx: tx, Row: sRows[b]})
					}
				}
				i, j = i2, j2
			}
		}
		return true
	})
	if ferr != nil {
		return nil, *st, ferr
	}
	// Hash/merge paths emit in different orders; normalise to chain
	// order by transaction id for deterministic results.
	sort.SliceStable(out, func(a, b int) bool { return out[a].Tx.Tid < out[b].Tx.Tid })
	return out, *st, nil
}
