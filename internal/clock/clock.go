// Package clock provides an injectable time source. Consensus decides
// the block timestamp every replica must agree on, so deterministic
// components take their clock through an option instead of reading the
// ambient wall clock (the invariant sebdb-vet's determinism analyzer
// enforces); production wires in UnixMicro, tests and replays inject a
// fixed or scripted source.
package clock

import "time"

// Source yields a timestamp in microseconds since the Unix epoch.
type Source func() int64

// UnixMicro is the wall-clock source, the default outside tests.
func UnixMicro() int64 { return time.Now().UnixMicro() }

// Fixed returns a source frozen at ts, for tests and replay.
func Fixed(ts int64) Source { return func() int64 { return ts } }

// Wall returns the current wall-clock time. Socket deadlines
// (net.Conn.SetDeadline and friends) need an absolute wall time, which
// no injected Source can supply; instrumented packages (where sebdb-vet
// bans ambient time.Now) route that one legitimate read through here so
// the exception stays visible and greppable.
func Wall() time.Time { return time.Now() }
