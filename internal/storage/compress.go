package storage

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"sort"
)

// maxRawBodyLen caps the raw length a compressed record may claim, so a
// corrupt rawLen prefix cannot make inflateBody allocate gigabytes
// before the stream is even opened.
const maxRawBodyLen = 1 << 30

// deflateBody compresses a raw block body into the compressed-record
// payload: a 4-byte big-endian raw length followed by the DEFLATE
// stream (flate.BestSpeed — recompression is a background pass, but the
// read path pays the inflate cost on every cold access, so the fast
// level is the right trade). ok is false when compression does not
// shrink the body; such blocks stay plain in the rewritten segment.
func deflateBody(body []byte) (payload []byte, ok bool) {
	if int64(len(body)) > maxRawBodyLen {
		return nil, false
	}
	var buf bytes.Buffer
	buf.Grow(len(body)/2 + 8)
	var raw [4]byte
	binary.BigEndian.PutUint32(raw[:], uint32(len(body)))
	buf.Write(raw[:])
	w, err := flate.NewWriter(&buf, flate.BestSpeed)
	if err != nil {
		return nil, false
	}
	if _, err := w.Write(body); err != nil {
		return nil, false
	}
	if err := w.Close(); err != nil {
		return nil, false
	}
	if buf.Len() >= len(body) {
		return nil, false
	}
	return buf.Bytes(), true
}

// inflateBody decodes a compressed-record payload back to the raw body,
// verifying that the stream produces exactly the declared length.
func inflateBody(payload []byte) ([]byte, error) {
	if len(payload) < 4 {
		return nil, fmt.Errorf("storage: compressed payload of %d bytes has no length prefix", len(payload))
	}
	rawLen := binary.BigEndian.Uint32(payload)
	if int64(rawLen) > maxRawBodyLen {
		return nil, fmt.Errorf("storage: compressed record claims %d raw bytes", rawLen)
	}
	body := make([]byte, rawLen)
	r := flate.NewReader(bytes.NewReader(payload[4:]))
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, fmt.Errorf("storage: inflating record: %w", err)
	}
	var one [1]byte
	if n, _ := r.Read(one[:]); n != 0 { //sebdb:ignore-err probing for trailing garbage; any error here means no extra byte, which is the success condition
		return nil, fmt.Errorf("storage: compressed record longer than its declared %d bytes", rawLen)
	}
	if err := r.Close(); err != nil {
		return nil, fmt.Errorf("storage: inflating record: %w", err)
	}
	return body, nil
}

// segRangeLocked returns the half-open index range [lo, hi) of blocks
// stored in segment seg. Blocks are appended in segment order, so the
// range is found by binary search. Caller holds s.mu.
func (s *Store) segRangeLocked(seg uint32) (lo, hi int) {
	lo = sort.Search(len(s.locs), func(i int) bool { return s.locs[i].Segment >= seg })
	hi = sort.Search(len(s.locs), func(i int) bool { return s.locs[i].Segment > seg })
	return lo, hi
}

// CompressTargets returns the sealed segments a recompression sweep
// should rewrite: at least keep segments behind the active tail (so
// recently sealed, still-hot segments are left alone) and not already
// processed by an earlier sweep.
func (s *Store) CompressTargets(keep int) []uint32 {
	if keep < 1 {
		keep = 1
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []uint32
	for n := uint32(0); uint64(n)+uint64(keep) <= uint64(s.curSeg); n++ {
		if !s.compacted[n] {
			out = append(out, n)
		}
	}
	return out
}

// DiskBytes returns the total on-disk size of all segment files — the
// quantity compression exists to shrink.
func (s *Store) DiskBytes() (int64, error) {
	s.mu.RLock()
	cur := s.curSeg
	s.mu.RUnlock()
	var total int64
	for n := uint32(0); n <= cur; n++ {
		fi, err := s.fs.Stat(s.segPath(n))
		if err != nil {
			return 0, fmt.Errorf("storage: %w", err)
		}
		total += fi.Size()
	}
	return total, nil
}

// rewriteResult carries the new on-disk coordinates of a rewritten
// segment's records, in block order.
type rewriteResult struct {
	offs   []int64
	stored []int64
	comp   []bool
}

// CompressSegment rewrites one sealed segment with per-record
// compression: every block body that deflates smaller is stored as a
// compressed record, the rest stay plain, so mixed segments read
// correctly record by record. The rewrite streams into a temporary
// file (tmp + sync + rename), and the rename is swapped in atomically
// with the in-memory offsets and the segment's generation bump —
// concurrent readers either resolve against the old file (their handles
// pin its inode) or retry and see the new one. Raw body lengths, chain
// linkage and checkpoint divergence semantics are unchanged: only the
// representation on disk moves.
func (s *Store) CompressSegment(seg uint32) error {
	s.compactMu.Lock()
	defer s.compactMu.Unlock()

	s.mu.RLock()
	if seg >= s.curSeg {
		s.mu.RUnlock()
		return fmt.Errorf("storage: segment %06d is not sealed", seg)
	}
	if s.compacted[seg] {
		s.mu.RUnlock()
		return nil
	}
	lo, hi := s.segRangeLocked(seg)
	gen := s.gens[seg]
	oldStored := append([]int64(nil), s.stored[lo:hi]...)
	oldComp := append([]bool(nil), s.comp[lo:hi]...)
	s.mu.RUnlock()

	// Stream the rewrite. compactMu pins the segment's generation:
	// recompression is the only mutator of sealed segments and it is
	// serialised here, so the bodies read below are the bodies swapped
	// out below.
	tmp := s.segPath(seg) + ".tmp"
	//sebdb:ignore-lockio reason: compactMu exists to serialise whole-segment rewrites and is held across the tmp write by design; no read or commit path ever takes it
	res, err := s.writeRewrite(tmp, uint64(lo), uint64(hi))
	if err != nil {
		//sebdb:ignore-lockio reason: best-effort cleanup of the rewrite temporary under the rewrite serialiser; no latency-critical path takes compactMu
		s.fs.Remove(tmp) //sebdb:ignore-err recovery deletes leftover temporaries if this fails
		return err
	}

	// The swap: rename and metadata update are one atomic step under
	// the store lock, so no reader can pair the new bytes with the old
	// offsets or the old bytes with the new ones.
	s.mu.Lock()
	//sebdb:ignore-lockio reason: the rename IS the swap — it must be atomic with the offset and generation update, and it is a single same-directory rename, not open-ended I/O
	if err := s.fs.Rename(tmp, s.segPath(seg)); err != nil {
		s.mu.Unlock()
		//sebdb:ignore-lockio reason: best-effort cleanup of the rewrite temporary under the rewrite serialiser; no latency-critical path takes compactMu
		s.fs.Remove(tmp) //sebdb:ignore-err recovery deletes leftover temporaries if this fails
		return fmt.Errorf("storage: swapping rewritten segment: %w", err)
	}
	for i := lo; i < hi; i++ {
		s.locs[i].Offset = res.offs[i-lo]
		s.stored[i] = res.stored[i-lo]
		s.comp[i] = res.comp[i-lo]
	}
	s.gens[seg] = gen + 1
	s.compacted[seg] = true
	s.mu.Unlock()
	s.handles.drop(seg)

	var oldBytes, newBytes, oldZ, newZ int64
	for i := range oldStored {
		oldBytes += headerSize + oldStored[i] + trailerSize
		newBytes += headerSize + res.stored[i] + trailerSize
		if oldComp[i] {
			oldZ += oldStored[i]
		}
		if res.comp[i] {
			newZ += res.stored[i]
		}
	}
	mRecompressed.Inc()
	mCompressedBytes.Add(newZ - oldZ)
	if saved := oldBytes - newBytes; saved > 0 {
		mCompressSaved.Add(uint64(saved))
	}
	s.opts.Log.Info("segment recompressed", "segment", s.segPath(seg),
		"blocks", hi-lo, "bytes_before", oldBytes, "bytes_after", newBytes)
	return nil
}

// writeRewrite streams blocks [lo, hi) into a new segment file at tmp,
// compressing each body that deflates smaller, then syncs and closes
// it. The caller renames the file into place.
func (s *Store) writeRewrite(tmp string, lo, hi uint64) (rewriteResult, error) {
	f, err := s.fs.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return rewriteResult{}, fmt.Errorf("storage: rewrite: %w", err)
	}
	n := int(hi - lo)
	res := rewriteResult{
		offs:   make([]int64, 0, n),
		stored: make([]int64, 0, n),
		comp:   make([]bool, 0, n),
	}
	var off int64
	for h := lo; h < hi; h++ {
		body, _, err := s.readBody(h)
		if err != nil {
			f.Close() //sebdb:ignore-err the read error is what matters; the temporary is deleted by the caller
			return rewriteResult{}, err
		}
		payload, compressed := deflateBody(body)
		magic := uint32(recordMagicZ)
		if !compressed {
			payload, magic = body, recordMagic
		}
		rec := encodeRecord(magic, payload)
		if _, err := f.Write(rec); err != nil {
			f.Close() //sebdb:ignore-err the write error is what matters; the temporary is deleted by the caller
			return rewriteResult{}, fmt.Errorf("storage: rewrite: %w", err)
		}
		res.offs = append(res.offs, off)
		res.stored = append(res.stored, int64(len(payload)))
		res.comp = append(res.comp, compressed)
		off += int64(len(rec))
	}
	if err := f.Sync(); err != nil {
		f.Close() //sebdb:ignore-err the sync error is what matters; the temporary is deleted by the caller
		return rewriteResult{}, fmt.Errorf("storage: rewrite sync: %w", err)
	}
	if err := f.Close(); err != nil {
		return rewriteResult{}, fmt.Errorf("storage: rewrite close: %w", err)
	}
	return res, nil
}
