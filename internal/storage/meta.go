package storage

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"

	"sebdb/internal/types"
)

// Meta is a point-in-time image of the store's in-memory segment
// metadata for the first Count blocks of the chain: everything recover
// would rebuild by scanning the segments from byte zero. A checkpoint
// embeds a Meta so a restart can seed this state directly and scan
// only the suffix written after the checkpoint.
type Meta struct {
	// Headers holds the block headers in height order.
	Headers []types.BlockHeader
	// Locs holds each block's on-disk location.
	Locs []Location
	// Lens holds each block's raw encoded body length. This is
	// chain-derived (divergence checks compare it across nodes), so
	// recompression never changes it.
	Lens []int64
	// Stored holds each block's on-disk record payload length — equal
	// to Lens for plain records, smaller for compressed ones. Node-
	// local: two replicas of the same chain may disagree here.
	Stored []int64
	// Comp records which blocks are stored compressed.
	Comp []bool
	// TxOffs holds each block's transaction byte offsets (with the
	// final sentinel), as maintained by Append and scanSegment.
	TxOffs [][]uint32
}

// Count returns the number of blocks the metadata covers.
func (m *Meta) Count() int { return len(m.Headers) }

// Meta snapshots the store's segment metadata for blocks [0, count).
// count must not exceed the current chain length.
func (s *Store) Meta(count uint64) (*Meta, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if count > uint64(len(s.headers)) {
		return nil, ErrNoBlock
	}
	m := &Meta{
		Headers: append([]types.BlockHeader(nil), s.headers[:count]...),
		Locs:    append([]Location(nil), s.locs[:count]...),
		Lens:    append([]int64(nil), s.lens[:count]...),
		Stored:  append([]int64(nil), s.stored[:count]...),
		Comp:    append([]bool(nil), s.comp[:count]...),
		TxOffs:  make([][]uint32, count),
	}
	for i := range m.TxOffs {
		m.TxOffs[i] = append([]uint32(nil), s.txOffs[i]...)
	}
	return m, nil
}

// OpenWithMeta opens the store seeded with checkpoint metadata,
// scanning only the blocks appended after the metadata was taken. The
// metadata is verified against the segments before it is trusted: in
// every segment it covers, the last covered block is re-read from disk
// (magic, CRC, decoded header) and its hash must equal the metadata's —
// a per-segment anchor. One anchor per segment is what recompression
// demands: a rewrite shifts every offset after the first resized
// record, so the tip alone can no longer vouch for older segments.
// Any disagreement returns ErrMetaMismatch, on which callers must fall
// back to a full-replay Open.
func OpenWithMeta(dir string, opts Options, m *Meta) (*Store, error) {
	s, err := newStore(dir, opts)
	if err != nil {
		return nil, err
	}
	if err := s.openWithMeta(m); err != nil {
		s.Close() //sebdb:ignore-err releasing partially opened handles on the error path
		return nil, err
	}
	return s, nil
}

func (s *Store) openWithMeta(m *Meta) error {
	if m == nil || len(m.Headers) == 0 ||
		len(m.Headers) != len(m.Locs) || len(m.Headers) != len(m.Lens) ||
		len(m.Headers) != len(m.Stored) || len(m.Headers) != len(m.Comp) ||
		len(m.Headers) != len(m.TxOffs) {
		return fmt.Errorf("%w: malformed metadata", ErrMetaMismatch)
	}
	last := len(m.Headers) - 1
	loc := m.Locs[last]
	// Verify the last covered block of every covered segment. A stale
	// checkpoint — taken before a segment was recompressed — fails its
	// anchor (the record is no longer at the recorded offset, or its
	// representation changed) and degrades to a full replay.
	for i := last; i >= 0; {
		if err := s.verifyAnchor(m, i); err != nil {
			return err
		}
		seg := m.Locs[i].Segment
		for i >= 0 && m.Locs[i].Segment == seg {
			i--
		}
	}

	// The anchors match the bytes on disk: seed the in-memory state.
	s.headers = append([]types.BlockHeader(nil), m.Headers...)
	s.locs = append([]Location(nil), m.Locs...)
	s.lens = append([]int64(nil), m.Lens...)
	s.stored = append([]int64(nil), m.Stored...)
	s.comp = append([]bool(nil), m.Comp...)
	s.txOffs = make([][]uint32, len(m.TxOffs))
	for i := range m.TxOffs {
		s.txOffs[i] = append([]uint32(nil), m.TxOffs[i]...)
	}
	s.txBase = make([]uint64, len(m.Headers))
	for i := range m.Headers {
		s.txBase[i] = m.Headers[i].FirstTid
	}
	for i, c := range m.Comp {
		if c {
			s.compacted[m.Locs[i].Segment] = true
		}
	}

	if err := s.removeLeftoverTmp(); err != nil {
		return err
	}
	// Scan only the suffix: the bytes after the anchor block in its
	// segment, plus any later segments.
	segs, err := s.listSegs()
	if err != nil {
		return fmt.Errorf("%w: %v", ErrMetaMismatch, err)
	}
	if len(segs) == 0 || segs[len(segs)-1] < loc.Segment {
		return fmt.Errorf("%w: anchor segment %06d missing", ErrMetaMismatch, loc.Segment)
	}
	start := loc.Offset + headerSize + m.Stored[last] + trailerSize
	for _, n := range segs {
		if n < loc.Segment {
			continue
		}
		base := int64(0)
		if n == loc.Segment {
			base = start
		}
		f, err := s.fs.Open(s.segPath(n))
		if err != nil {
			return fmt.Errorf("storage: %w", err)
		}
		sr := io.NewSectionReader(f, base, math.MaxInt64-base)
		valid, err := s.scanSegment(sr, n, base)
		if cerr := f.Close(); err == nil && cerr != nil {
			err = fmt.Errorf("storage: %w", cerr)
		}
		if err != nil {
			return fmt.Errorf("%w: %v", ErrMetaMismatch, err)
		}
		if n == segs[len(segs)-1] {
			if err := s.repairTail(n, valid); err != nil {
				return err
			}
			s.curSeg, s.curSize = n, valid
		}
	}
	s.activeSeg.Store(s.curSeg)
	f, err := s.fs.OpenFile(s.segPath(s.curSeg), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	s.cur = f
	return nil
}

// verifyAnchor re-reads block i from disk and checks magic, CRC,
// stored and raw lengths and header hash against the metadata. All
// failures are ErrMetaMismatch.
func (s *Store) verifyAnchor(m *Meta, i int) error {
	loc := m.Locs[i]
	f, err := s.fs.Open(s.segPath(loc.Segment))
	if err != nil {
		return fmt.Errorf("%w: %v", ErrMetaMismatch, err)
	}
	defer f.Close() //sebdb:ignore-err read-only handle
	hdr := make([]byte, headerSize)
	if _, err := f.ReadAt(hdr, loc.Offset); err != nil {
		return fmt.Errorf("%w: reading anchor record: %v", ErrMetaMismatch, err)
	}
	magic, want := binary.BigEndian.Uint32(hdr), uint32(recordMagic)
	if m.Comp[i] {
		want = recordMagicZ
	}
	if magic != want {
		return fmt.Errorf("%w: bad magic at anchor (height %d)", ErrMetaMismatch, i)
	}
	n := binary.BigEndian.Uint32(hdr[4:])
	if int64(n) != m.Stored[i] {
		return fmt.Errorf("%w: anchor stored length %d != %d", ErrMetaMismatch, n, m.Stored[i])
	}
	payload := make([]byte, int(n)+trailerSize)
	if _, err := f.ReadAt(payload, loc.Offset+headerSize); err != nil {
		return fmt.Errorf("%w: reading anchor body: %v", ErrMetaMismatch, err)
	}
	body := payload[:n]
	if crc32.ChecksumIEEE(body) != binary.BigEndian.Uint32(payload[n:]) {
		return fmt.Errorf("%w: anchor CRC mismatch", ErrMetaMismatch)
	}
	if m.Comp[i] {
		if body, err = inflateBody(body); err != nil {
			return fmt.Errorf("%w: %v", ErrMetaMismatch, err)
		}
	}
	if int64(len(body)) != m.Lens[i] {
		return fmt.Errorf("%w: anchor raw length %d != %d", ErrMetaMismatch, len(body), m.Lens[i])
	}
	h, err := types.DecodeBlockHeader(types.NewDecoder(body))
	if err != nil {
		return fmt.Errorf("%w: %v", ErrMetaMismatch, err)
	}
	if h.Height != uint64(i) || h.Hash() != m.Headers[i].Hash() {
		return fmt.Errorf("%w: anchor hash disagrees at height %d", ErrMetaMismatch, i)
	}
	return nil
}
