package storage

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"

	"sebdb/internal/types"
)

// Meta is a point-in-time image of the store's in-memory segment
// metadata for the first Count blocks of the chain: everything recover
// would rebuild by scanning the segments from byte zero. A checkpoint
// embeds a Meta so a restart can seed this state directly and scan
// only the suffix written after the checkpoint.
type Meta struct {
	// Headers holds the block headers in height order.
	Headers []types.BlockHeader
	// Locs holds each block's on-disk location.
	Locs []Location
	// Lens holds each block's encoded body length.
	Lens []int64
	// TxOffs holds each block's transaction byte offsets (with the
	// final sentinel), as maintained by Append and scanSegment.
	TxOffs [][]uint32
}

// Count returns the number of blocks the metadata covers.
func (m *Meta) Count() int { return len(m.Headers) }

// Meta snapshots the store's segment metadata for blocks [0, count).
// count must not exceed the current chain length.
func (s *Store) Meta(count uint64) (*Meta, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if count > uint64(len(s.headers)) {
		return nil, ErrNoBlock
	}
	m := &Meta{
		Headers: append([]types.BlockHeader(nil), s.headers[:count]...),
		Locs:    append([]Location(nil), s.locs[:count]...),
		Lens:    append([]int64(nil), s.lens[:count]...),
		TxOffs:  make([][]uint32, count),
	}
	for i := range m.TxOffs {
		m.TxOffs[i] = append([]uint32(nil), s.txOffs[i]...)
	}
	return m, nil
}

// OpenWithMeta opens the store seeded with checkpoint metadata,
// scanning only the blocks appended after the metadata was taken. The
// metadata is verified against the segments before it is trusted: the
// last covered block is re-read from disk (magic, CRC, decoded header)
// and its hash must equal the metadata's tip hash — the checkpoint's
// anchor. Any disagreement returns ErrMetaMismatch, on which callers
// must fall back to a full-replay Open.
func OpenWithMeta(dir string, opts Options, m *Meta) (*Store, error) {
	s, err := newStore(dir, opts)
	if err != nil {
		return nil, err
	}
	if err := s.openWithMeta(m); err != nil {
		s.Close() //sebdb:ignore-err releasing partially opened handles on the error path
		return nil, err
	}
	return s, nil
}

func (s *Store) openWithMeta(m *Meta) error {
	if m == nil || len(m.Headers) == 0 ||
		len(m.Headers) != len(m.Locs) || len(m.Headers) != len(m.Lens) ||
		len(m.Headers) != len(m.TxOffs) {
		return fmt.Errorf("%w: malformed metadata", ErrMetaMismatch)
	}
	last := len(m.Headers) - 1
	loc := m.Locs[last]
	bodyLen, err := s.verifyAnchor(m, last)
	if err != nil {
		return err
	}

	// The anchor matches the bytes on disk: seed the in-memory state.
	s.headers = append([]types.BlockHeader(nil), m.Headers...)
	s.locs = append([]Location(nil), m.Locs...)
	s.lens = append([]int64(nil), m.Lens...)
	s.txOffs = make([][]uint32, len(m.TxOffs))
	for i := range m.TxOffs {
		s.txOffs[i] = append([]uint32(nil), m.TxOffs[i]...)
	}
	s.txBase = make([]uint64, len(m.Headers))
	for i := range m.Headers {
		s.txBase[i] = m.Headers[i].FirstTid
	}

	// Scan only the suffix: the bytes after the anchor block in its
	// segment, plus any later segments.
	segs, err := s.listSegs()
	if err != nil {
		return fmt.Errorf("%w: %v", ErrMetaMismatch, err)
	}
	if len(segs) == 0 || segs[len(segs)-1] < loc.Segment {
		return fmt.Errorf("%w: anchor segment %06d missing", ErrMetaMismatch, loc.Segment)
	}
	start := loc.Offset + headerSize + bodyLen + trailerSize
	for _, n := range segs {
		if n < loc.Segment {
			continue
		}
		base := int64(0)
		if n == loc.Segment {
			base = start
		}
		f, err := s.fs.Open(s.segPath(n))
		if err != nil {
			return fmt.Errorf("storage: %w", err)
		}
		sr := io.NewSectionReader(f, base, math.MaxInt64-base)
		valid, err := s.scanSegment(sr, n, base)
		if cerr := f.Close(); err == nil && cerr != nil {
			err = fmt.Errorf("storage: %w", cerr)
		}
		if err != nil {
			return fmt.Errorf("%w: %v", ErrMetaMismatch, err)
		}
		if n == segs[len(segs)-1] {
			if err := s.repairTail(n, valid); err != nil {
				return err
			}
			s.curSeg, s.curSize = n, valid
		}
	}
	f, err := s.fs.OpenFile(s.segPath(s.curSeg), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	s.cur = f
	return nil
}

// verifyAnchor re-reads block `last` from disk and checks magic, CRC
// and header hash against the metadata, returning the stored body
// length. All failures are ErrMetaMismatch.
func (s *Store) verifyAnchor(m *Meta, last int) (int64, error) {
	loc := m.Locs[last]
	f, err := s.fs.Open(s.segPath(loc.Segment))
	if err != nil {
		return 0, fmt.Errorf("%w: %v", ErrMetaMismatch, err)
	}
	defer f.Close() //sebdb:ignore-err read-only handle
	hdr := make([]byte, headerSize)
	if _, err := f.ReadAt(hdr, loc.Offset); err != nil {
		return 0, fmt.Errorf("%w: reading anchor record: %v", ErrMetaMismatch, err)
	}
	if magic := binary.BigEndian.Uint32(hdr); magic != recordMagic {
		return 0, fmt.Errorf("%w: bad magic at anchor", ErrMetaMismatch)
	}
	n := binary.BigEndian.Uint32(hdr[4:])
	if int64(n) != m.Lens[last] {
		return 0, fmt.Errorf("%w: anchor length %d != %d", ErrMetaMismatch, n, m.Lens[last])
	}
	payload := make([]byte, int(n)+trailerSize)
	if _, err := f.ReadAt(payload, loc.Offset+headerSize); err != nil {
		return 0, fmt.Errorf("%w: reading anchor body: %v", ErrMetaMismatch, err)
	}
	body := payload[:n]
	if crc32.ChecksumIEEE(body) != binary.BigEndian.Uint32(payload[n:]) {
		return 0, fmt.Errorf("%w: anchor CRC mismatch", ErrMetaMismatch)
	}
	h, err := types.DecodeBlockHeader(types.NewDecoder(body))
	if err != nil {
		return 0, fmt.Errorf("%w: %v", ErrMetaMismatch, err)
	}
	if h.Height != uint64(last) || h.Hash() != m.Headers[last].Hash() {
		return 0, fmt.Errorf("%w: anchor hash disagrees at height %d", ErrMetaMismatch, last)
	}
	return int64(n), nil
}
