package storage

import (
	"testing"

	"sebdb/internal/faultfs"
	"sebdb/internal/types"
)

// appendChainNoSync mirrors appendChain over the commit pipeline's
// deferred-fsync entry point, validating each block up front the way
// the prepare stage does.
func appendChainNoSync(t testing.TB, s *Store, blocks, txPerBlock int) {
	t.Helper()
	var prev *types.BlockHeader
	tid := uint64(1)
	if tip, ok := s.Tip(); ok {
		cp := tip
		prev = &cp
		tid = tip.FirstTid + uint64(tip.TxCount)
	}
	for i := 0; i < blocks; i++ {
		b := mkBlock(prev, tid, txPerBlock)
		if err := b.Validate(); err != nil {
			t.Fatal(err)
		}
		if _, err := s.AppendNoSync(b); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		prev = &b.Header
		tid += uint64(txPerBlock)
	}
}

// TestGroupFsyncOnePerBatch is the group-fsync contract: a batch of
// AppendNoSync calls costs exactly one fsync at SyncBatch, and an
// already-synced store makes SyncBatch a no-op.
func TestGroupFsyncOnePerBatch(t *testing.T) {
	inj := faultfs.New(faultfs.Options{OpsBeforeCrash: -1})
	s, err := Open(t.TempDir(), Options{Sync: true, FS: inj})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	base := inj.Syncs()
	appendChainNoSync(t, s, 8, 2)
	if got := inj.Syncs(); got != base {
		t.Fatalf("AppendNoSync synced %d times before SyncBatch", got-base)
	}
	if err := s.SyncBatch(); err != nil {
		t.Fatal(err)
	}
	if got := inj.Syncs(); got != base+1 {
		t.Fatalf("SyncBatch issued %d fsyncs, want 1", got-base)
	}
	if err := s.SyncBatch(); err != nil {
		t.Fatal(err)
	}
	if got := inj.Syncs(); got != base+1 {
		t.Fatal("SyncBatch on a clean store was not a no-op")
	}
}

// TestGroupFsyncNoSyncOption: with Options.Sync off, neither the batch
// appends nor SyncBatch touch fsync at all.
func TestGroupFsyncNoSyncOption(t *testing.T) {
	inj := faultfs.New(faultfs.Options{OpsBeforeCrash: -1})
	s, err := Open(t.TempDir(), Options{FS: inj})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	base := inj.Syncs()
	appendChainNoSync(t, s, 4, 1)
	if err := s.SyncBatch(); err != nil {
		t.Fatal(err)
	}
	if got := inj.Syncs(); got != base {
		t.Fatalf("unsynced store issued %d fsyncs", got-base)
	}
}

// TestGroupFsyncSegmentRoll: when an unsynced batch spans a segment
// roll, the old segment is made durable before it is closed; the batch
// then survives reopen in full.
func TestGroupFsyncSegmentRoll(t *testing.T) {
	dir := t.TempDir()
	inj := faultfs.New(faultfs.Options{OpsBeforeCrash: -1})
	s, err := Open(dir, Options{Sync: true, SegmentSize: 512, FS: inj})
	if err != nil {
		t.Fatal(err)
	}
	base := inj.Syncs()
	appendChainNoSync(t, s, 12, 3) // ~200 bytes per block: several rolls
	rolls := inj.Syncs() - base
	if rolls == 0 {
		t.Fatal("batch spanning a roll never synced the rolled segment")
	}
	if err := s.SyncBatch(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(dir, Options{SegmentSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Count() != 12 {
		t.Fatalf("reopen recovered %d of 12 blocks", re.Count())
	}
}

// TestAppendNoSyncStillChecksLinkage: AppendNoSync skips Validate (the
// pipeline validates in its prepare stage) but must still refuse a
// block that does not extend the tip.
func TestAppendNoSyncStillChecksLinkage(t *testing.T) {
	s, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	appendChainNoSync(t, s, 2, 1)
	stranger := mkBlock(nil, 100, 1) // genesis-shaped: wrong height, wrong prev
	if _, err := s.AppendNoSync(stranger); err == nil {
		t.Fatal("AppendNoSync accepted a block that does not link to the tip")
	}
}
