package storage

import (
	"container/list"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"sebdb/internal/faultfs"
)

// Read tiers. Every segment read is attributed to the tier that served
// it (sebdb_storage_tier_reads_total{tier=...}).
const (
	// TierPread is the positional-read path over an open descriptor —
	// the active tail segment's only tier, and every segment's fallback.
	TierPread = "pread"
	// TierMmap serves sealed (read-only) segments straight from a
	// read-only memory map: no syscall per block read, and the OS page
	// cache is the only copy of hot data.
	TierMmap = "mmap"
)

// SegmentReader is the narrow backend interface one segment is read
// through. Implementations must support concurrent positional reads;
// Close releases the descriptor or mapping once the last reference is
// gone.
type SegmentReader interface {
	io.ReaderAt
	// Tier names the backend ("pread" or "mmap") for metrics and tests.
	Tier() string
	Close() error
}

// preadReader reads a segment through an open file descriptor — the
// classic page-cache-mediated path, and the only one legal for the
// active tail segment (its size still grows).
type preadReader struct {
	f faultfs.File
}

func (r preadReader) ReadAt(p []byte, off int64) (int, error) { return r.f.ReadAt(p, off) }
func (r preadReader) Tier() string                            { return TierPread }
func (r preadReader) Close() error                            { return r.f.Close() }

// mmapReader serves positional reads from a read-only memory map of a
// sealed segment. The mapping pins the inode, so a recompression
// rewrite renaming a new file over the segment never disturbs reads in
// flight through an old mapping.
type mmapReader struct {
	m    faultfs.Mapping
	data []byte
}

func (r *mmapReader) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 || off > int64(len(r.data)) {
		return 0, fmt.Errorf("storage: mmap read at %d beyond %d mapped bytes", off, len(r.data))
	}
	n := copy(p, r.data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (r *mmapReader) Tier() string { return TierMmap }
func (r *mmapReader) Close() error { return r.m.Close() }

// segHandle is one segment's cached reader plus a reference count: the
// handle cache holds one reference while the handle is resident, and
// every in-flight read (or Iter snapshot) holds its own. The underlying
// descriptor or mapping closes when the last reference is released, so
// close-on-evict and the recompression swap never yank a file out from
// under a concurrent positional read.
type segHandle struct {
	seg uint32
	// gen is the segment generation the handle was opened at; a
	// recompression rewrite bumps the store's generation, making every
	// older handle stale (see Store.resolve).
	gen  uint64
	r    SegmentReader
	refs atomic.Int32
}

// release drops one reference, closing the reader when it was the last.
func (h *segHandle) release() {
	if h.refs.Add(-1) == 0 {
		h.r.Close() //sebdb:ignore-err read-only descriptor or mapping; the data's fate was decided at open
	}
}

// handleCache bounds the store's per-segment read handles with a
// close-on-evict LRU: the active tail segment is never evicted, and the
// N hottest sealed segments keep their descriptor (or mapping) warm.
// Before it existed the map grew one descriptor per rolled segment,
// forever.
type handleCache struct {
	mu  sync.Mutex
	cap int
	// open opens a reader for a segment; sealed selects the tier.
	open func(seg uint32, sealed bool) (SegmentReader, error)
	// active returns the tail segment number, which is exempt from
	// eviction.
	active func() uint32
	ll     *list.List // of *segHandle; front = hottest
	elems  map[uint32]*list.Element
}

func newHandleCache(cap int, open func(uint32, bool) (SegmentReader, error), active func() uint32) *handleCache {
	if cap < 2 {
		cap = 2 // the active segment plus at least one sealed one
	}
	return &handleCache{
		cap:    cap,
		open:   open,
		active: active,
		ll:     list.New(),
		elems:  make(map[uint32]*list.Element),
	}
}

// lock takes the cache mutex, counting the times it had to wait.
func (c *handleCache) lock() {
	if c.mu.TryLock() {
		return
	}
	mHandleContention.Inc()
	c.mu.Lock()
}

// acquire returns a referenced handle for seg at generation gen, opening
// (and caching) one if necessary. A cached handle from an older
// generation is dropped and reopened. Callers must release() the handle
// and re-validate the store generation afterwards — acquire alone
// cannot rule out a concurrent recompression swap.
func (c *handleCache) acquire(seg uint32, gen uint64, sealed bool) (*segHandle, error) {
	c.lock()
	defer c.mu.Unlock()
	if el, ok := c.elems[seg]; ok {
		h := el.Value.(*segHandle)
		if h.gen == gen {
			h.refs.Add(1)
			c.ll.MoveToFront(el)
			return h, nil
		}
		c.removeLocked(el)
	}
	r, err := c.open(seg, sealed)
	if err != nil {
		return nil, err
	}
	h := &segHandle{seg: seg, gen: gen, r: r}
	h.refs.Store(2) // one for the cache, one for the caller
	c.elems[seg] = c.ll.PushFront(h)
	c.evictLocked()
	return h, nil
}

// evictLocked drops cold handles until the cache fits, skipping the
// active tail segment and the hottest entry (just inserted).
func (c *handleCache) evictLocked() {
	act := c.active()
	for c.ll.Len() > c.cap {
		el := c.ll.Back()
		for el != nil && (el == c.ll.Front() || el.Value.(*segHandle).seg == act) {
			el = el.Prev()
		}
		if el == nil {
			return
		}
		c.removeLocked(el)
		mHandleEvictions.Inc()
	}
}

// drop invalidates seg's cached handle (the recompression swap path);
// in-flight readers still hold their references.
func (c *handleCache) drop(seg uint32) {
	c.lock()
	defer c.mu.Unlock()
	if el, ok := c.elems[seg]; ok {
		c.removeLocked(el)
	}
}

// removeLocked unlinks one entry and releases the cache's reference.
func (c *handleCache) removeLocked(el *list.Element) {
	h := el.Value.(*segHandle)
	delete(c.elems, h.seg)
	c.ll.Remove(el)
	h.release()
}

// closeAll releases every cached handle (store shutdown). Handles still
// referenced by in-flight reads or Iter snapshots close when their last
// reference is released.
func (c *handleCache) closeAll() {
	c.lock()
	defer c.mu.Unlock()
	for el := c.ll.Front(); el != nil; {
		next := el.Next()
		c.removeLocked(el)
		el = next
	}
}

// Len returns the number of resident handles.
func (c *handleCache) Len() int {
	c.lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
