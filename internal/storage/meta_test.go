package storage

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// reopenBoth reopens dir twice — once via OpenWithMeta, once via full
// replay — and asserts both see the same chain.
func assertSameChain(t *testing.T, a, b *Store) {
	t.Helper()
	if a.Count() != b.Count() {
		t.Fatalf("Count %d != %d", a.Count(), b.Count())
	}
	for i := 0; i < a.Count(); i++ {
		ha, _ := a.Header(uint64(i))
		hb, _ := b.Header(uint64(i))
		if ha.Hash() != hb.Hash() {
			t.Fatalf("header %d hash mismatch", i)
		}
		ba, err := a.Block(uint64(i))
		if err != nil {
			t.Fatal(err)
		}
		bb, err := b.Block(uint64(i))
		if err != nil {
			t.Fatal(err)
		}
		if len(ba.Txs) != len(bb.Txs) {
			t.Fatalf("block %d tx count mismatch", i)
		}
	}
}

func TestOpenWithMetaSuffixScan(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendChain(t, s, 8, 2)
	m, err := s.Meta(5) // checkpoint covers blocks [0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	fast, err := OpenWithMeta(dir, Options{}, m)
	if err != nil {
		t.Fatal(err)
	}
	defer fast.Close()
	if fast.Count() != 8 {
		t.Fatalf("Count = %d, want 8 (5 from meta + 3 scanned)", fast.Count())
	}
	full, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer full.Close()
	assertSameChain(t, fast, full)

	// The fast-opened store must accept appends that extend the tip.
	tip, _ := fast.Tip()
	next := mkBlock(&tip, 17, 2)
	if _, err := fast.Append(next); err != nil {
		t.Fatalf("append after fast open: %v", err)
	}
	if tip, _ = fast.Tip(); tip.Hash() != next.Header.Hash() {
		t.Fatal("append after fast open did not advance the tip")
	}
	if tx, err := fast.ReadTx(6, 1); err != nil || tx == nil {
		t.Fatalf("ReadTx through fast-opened store: %v", err)
	}
}

func TestOpenWithMetaAcrossSegments(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{SegmentSize: 1024}) // force rolls
	if err != nil {
		t.Fatal(err)
	}
	appendChain(t, s, 12, 2)
	if s.curSeg == 0 {
		t.Fatal("test needs multiple segments; lower SegmentSize")
	}
	m, err := s.Meta(3)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	fast, err := OpenWithMeta(dir, Options{SegmentSize: 1024}, m)
	if err != nil {
		t.Fatal(err)
	}
	defer fast.Close()
	if fast.Count() != 12 {
		t.Fatalf("Count = %d, want 12", fast.Count())
	}
	full, err := Open(dir, Options{SegmentSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	defer full.Close()
	assertSameChain(t, fast, full)
}

func TestOpenWithMetaRejectsTamperedAnchor(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendChain(t, s, 4, 1)
	m, err := s.Meta(4)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// A metadata tip that disagrees with the bytes on disk must be
	// rejected, not trusted.
	m.Headers[3].Timestamp++
	if _, err := OpenWithMeta(dir, Options{}, m); !errors.Is(err, ErrMetaMismatch) {
		t.Fatalf("err = %v, want ErrMetaMismatch", err)
	}

	// Malformed metadata shapes are rejected too.
	if _, err := OpenWithMeta(dir, Options{}, &Meta{}); !errors.Is(err, ErrMetaMismatch) {
		t.Fatalf("empty meta err = %v", err)
	}
}

func TestOpenWithMetaMissingSegment(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendChain(t, s, 3, 1)
	m, err := s.Meta(3)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, "blocks-000000.seg")); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenWithMeta(dir, Options{}, m); !errors.Is(err, ErrMetaMismatch) {
		t.Fatalf("err = %v, want ErrMetaMismatch", err)
	}
}

func TestOpenWithMetaTruncatesTornSuffix(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendChain(t, s, 6, 2)
	m, err := s.Meta(4)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the last record: chop some trailing bytes off the segment.
	path := filepath.Join(dir, "blocks-000000.seg")
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-5); err != nil {
		t.Fatal(err)
	}

	fast, err := OpenWithMeta(dir, Options{}, m)
	if err != nil {
		t.Fatal(err)
	}
	defer fast.Close()
	if fast.Count() != 5 {
		t.Fatalf("Count = %d, want 5 (torn block 5 dropped)", fast.Count())
	}
	// The tail was repaired: a follow-up append must link cleanly.
	tip, _ := fast.Tip()
	b := mkBlock(&tip, 11, 2)
	if _, err := fast.Append(b); err != nil {
		t.Fatalf("append after repair: %v", err)
	}
}

func TestMetaBounds(t *testing.T) {
	s, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	appendChain(t, s, 2, 1)
	if _, err := s.Meta(3); !errors.Is(err, ErrNoBlock) {
		t.Fatalf("Meta beyond tip err = %v", err)
	}
	m, err := s.Meta(2)
	if err != nil || m.Count() != 2 {
		t.Fatalf("Meta(2) = %v, %v", m, err)
	}
	// Mutating the copy must not alias store state.
	m.TxOffs[0][0] = 999
	if tx, err := s.ReadTx(0, 0); err != nil || tx == nil {
		t.Fatalf("store state aliased by Meta copy: %v", err)
	}
}
