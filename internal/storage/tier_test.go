package storage

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"sebdb/internal/faultfs"
)

// chainDigest reads every block through the store's public read path
// and folds the encoded bytes into one hash: two stores serving the
// same chain must produce identical digests regardless of tier.
func chainDigest(t *testing.T, s *Store) [32]byte {
	t.Helper()
	h := sha256.New()
	for i := 0; i < s.Count(); i++ {
		b, err := s.Block(uint64(i))
		if err != nil {
			t.Fatalf("block %d: %v", i, err)
		}
		h.Write(b.EncodeBytes())
	}
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

// copyTree clones a segment directory so crash-matrix runs can mutate
// a throwaway copy.
func copyTree(t *testing.T, src, dst string) {
	t.Helper()
	ents, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if e.IsDir() {
			sub := filepath.Join(dst, e.Name())
			if err := os.MkdirAll(sub, 0o755); err != nil {
				t.Fatal(err)
			}
			copyTree(t, filepath.Join(src, e.Name()), sub)
			continue
		}
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// compressAll recompresses every sealed segment at least one behind
// the tail.
func compressAll(t *testing.T, s *Store) {
	t.Helper()
	for _, seg := range s.CompressTargets(1) {
		if err := s.CompressSegment(seg); err != nil {
			t.Fatalf("compress segment %d: %v", seg, err)
		}
	}
}

func TestMmapPreadByteEquivalence(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{SegmentSize: 2048})
	if err != nil {
		t.Fatal(err)
	}
	appendChain(t, s, 30, 3)
	want := chainDigest(t, s)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	mmapBefore := mTierMmap.Value()
	m, err := Open(dir, Options{SegmentSize: 2048, Mmap: true})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if got := chainDigest(t, m); got != want {
		t.Error("mmap store returned different bytes than pread store")
	}
	for i := 0; i < 30; i += 7 {
		tx, err := m.ReadTx(uint64(i), 1)
		if err != nil {
			t.Fatalf("ReadTx(%d, 1): %v", i, err)
		}
		if tx.SenID != "org1" {
			t.Errorf("ReadTx(%d, 1).SenID = %q", i, tx.SenID)
		}
	}
	if mTierMmap.Value() == mmapBefore {
		t.Error("no reads were served by the mmap tier")
	}
}

func TestMmapFallbackToPread(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{SegmentSize: 2048})
	if err != nil {
		t.Fatal(err)
	}
	appendChain(t, s, 20, 3)
	want := chainDigest(t, s)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	fbBefore := mMmapFallbacks.Value()
	inj := faultfs.New(faultfs.Options{OpsBeforeCrash: -1, MmapErrors: true})
	f, err := Open(dir, Options{SegmentSize: 2048, Mmap: true, FS: inj})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if got := chainDigest(t, f); got != want {
		t.Error("fallback store returned different bytes")
	}
	if mMmapFallbacks.Value() == fbBefore {
		t.Error("mmap failure did not register a fallback")
	}
}

func TestCompressRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{SegmentSize: 2048})
	if err != nil {
		t.Fatal(err)
	}
	appendChain(t, s, 30, 3)
	want := chainDigest(t, s)
	before, err := s.DiskBytes()
	if err != nil {
		t.Fatal(err)
	}
	targets := s.CompressTargets(1)
	if len(targets) == 0 {
		t.Fatal("test needs sealed segments; lower SegmentSize")
	}
	compressAll(t, s)
	after, err := s.DiskBytes()
	if err != nil {
		t.Fatal(err)
	}
	if after >= before {
		t.Errorf("recompression grew the chain: %d -> %d bytes", before, after)
	}
	// Reads through the same store see identical bytes, and at least
	// one early block is now stored compressed (shorter than raw).
	if got := chainDigest(t, s); got != want {
		t.Error("reads diverged after recompression")
	}
	comp, err := s.Compressed(0)
	if err != nil {
		t.Fatal(err)
	}
	if !comp {
		t.Error("block 0 not compressed after recompression")
	}
	raw, _ := s.BodyLen(0)
	stored, _ := s.StoredLen(0)
	if stored >= raw {
		t.Errorf("block 0 stored %d bytes >= raw %d", stored, raw)
	}
	// A second sweep must find nothing left to do.
	if again := s.CompressTargets(1); len(again) != 0 {
		t.Errorf("second sweep still wants segments %v", again)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Full-scan recovery over the mixed plain/compressed files, with
	// the mmap tier on top.
	re, err := Open(dir, Options{SegmentSize: 2048, Mmap: true})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := chainDigest(t, re); got != want {
		t.Error("reopened store returned different bytes")
	}
	// Recovery must also remember which segments are done.
	if again := re.CompressTargets(1); len(again) != 0 {
		t.Errorf("reopen forgot recompressed segments: %v", again)
	}
}

func TestCompressedReadTxMatchesBlock(t *testing.T) {
	s, err := Open(t.TempDir(), Options{SegmentSize: 2048})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	appendChain(t, s, 20, 4)
	compressAll(t, s)
	for i := 0; i < 20; i++ {
		b, err := s.Block(uint64(i))
		if err != nil {
			t.Fatal(err)
		}
		for pos := range b.Txs {
			tx, err := s.ReadTx(uint64(i), uint32(pos))
			if err != nil {
				t.Fatalf("ReadTx(%d, %d): %v", i, pos, err)
			}
			if !bytes.Equal(tx.EncodeBytes(), b.Txs[pos].EncodeBytes()) {
				t.Fatalf("ReadTx(%d, %d) diverges from Block", i, pos)
			}
		}
	}
}

func TestStaleCheckpointAfterCompression(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{SegmentSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	appendChain(t, s, 16, 3)
	want := chainDigest(t, s)
	stale, err := s.Meta(uint64(s.Count()))
	if err != nil {
		t.Fatal(err)
	}
	compressAll(t, s)
	fresh, err := s.Meta(uint64(s.Count()))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// A checkpoint taken before the rewrite carries dead offsets; the
	// per-segment anchors must reject it rather than serve garbage.
	if _, err := OpenWithMeta(dir, Options{SegmentSize: 1024}, stale); !errors.Is(err, ErrMetaMismatch) {
		t.Fatalf("stale checkpoint: err = %v, want ErrMetaMismatch", err)
	}
	// The post-rewrite checkpoint seeds a working store.
	re, err := OpenWithMeta(dir, Options{SegmentSize: 1024}, fresh)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := chainDigest(t, re); got != want {
		t.Error("checkpoint-seeded store returned different bytes")
	}
}

func TestIterSurvivesCompression(t *testing.T) {
	s, err := Open(t.TempDir(), Options{SegmentSize: 2048})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	blocks := appendChain(t, s, 24, 3)
	it, err := s.Blocks(0, uint64(len(blocks)))
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	// The iterator pinned its handles; rewriting every sealed segment
	// underneath it must not disturb the reads (the renamed inode stays
	// readable through the pinned descriptors).
	compressAll(t, s)
	for i, want := range blocks {
		got, err := it.Read(uint64(i))
		if err != nil {
			t.Fatalf("iter read %d after rewrite: %v", i, err)
		}
		if got.Header.Hash() != want.Header.Hash() {
			t.Errorf("iter block %d hash mismatch after rewrite", i)
		}
	}
}

func TestHandleCacheBounded(t *testing.T) {
	s, err := Open(t.TempDir(), Options{SegmentSize: 1024, MaxOpenSegments: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	appendChain(t, s, 40, 3)
	evBefore := mHandleEvictions.Value()
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 400; i++ {
		h := uint64(rng.Intn(s.Count()))
		if _, err := s.Block(h); err != nil {
			t.Fatalf("block %d: %v", h, err)
		}
		// The cache may briefly hold cap entries plus the active
		// segment's exempt handle.
		if n := s.OpenHandles(); n > 3 {
			t.Fatalf("handle cache grew to %d descriptors", n)
		}
	}
	if mHandleEvictions.Value() == evBefore {
		t.Error("random reads over 40 segments never evicted a handle")
	}
}

// TestRecompressionCrashMatrix crashes a recompression pass at every
// mutating operation and checks the reopened chain is byte-identical
// to the original every time: the tmp+sync+rename discipline means a
// crash can lose at most the rewrite, never a block.
func TestRecompressionCrashMatrix(t *testing.T) {
	seed := t.TempDir()
	s, err := Open(seed, Options{SegmentSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	appendChain(t, s, 12, 3)
	want := chainDigest(t, s)
	count := s.Count()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Fault-free rehearsal sizes the matrix.
	rehearsal := t.TempDir()
	copyTree(t, seed, rehearsal)
	inj := faultfs.New(faultfs.Options{OpsBeforeCrash: -1})
	re, err := Open(rehearsal, Options{SegmentSize: 1024, FS: inj})
	if err != nil {
		t.Fatal(err)
	}
	compressAll(t, re)
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
	total := inj.Mutations()
	if total == 0 {
		t.Fatal("rehearsal performed no mutating operations")
	}

	for k := 0; k < total; k++ {
		crashDir := t.TempDir()
		copyTree(t, seed, crashDir)
		inj := faultfs.New(faultfs.Options{OpsBeforeCrash: k})
		cs, err := Open(crashDir, Options{SegmentSize: 1024, FS: inj})
		if err == nil {
			for _, seg := range cs.CompressTargets(1) {
				if err := cs.CompressSegment(seg); err != nil {
					break
				}
			}
			cs.Close() //sebdb:ignore-err post-crash close; the simulated machine is already down
		}
		// Reboot on a clean filesystem: whatever the crash left behind
		// must recover to the identical chain.
		rb, err := Open(crashDir, Options{SegmentSize: 1024})
		if err != nil {
			t.Fatalf("k=%d: reboot failed: %v", k, err)
		}
		if rb.Count() != count {
			t.Fatalf("k=%d: rebooted with %d blocks, want %d", k, rb.Count(), count)
		}
		if got := chainDigest(t, rb); got != want {
			t.Fatalf("k=%d: rebooted chain diverges", k)
		}
		if err := rb.Close(); err != nil {
			t.Fatalf("k=%d: close: %v", k, err)
		}
	}
}

// TestTierRaceReadsVsCompression races block reads, tuple reads and
// iterators against recompression rewrites and appends; run under
// -race it checks the generation-tagged swap protocol.
func TestTierRaceReadsVsCompression(t *testing.T) {
	s, err := Open(t.TempDir(), Options{SegmentSize: 1024, Mmap: true, MaxOpenSegments: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	blocks := appendChain(t, s, 24, 3)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				h := uint64(rng.Intn(len(blocks)))
				b, err := s.Block(h)
				if err != nil {
					t.Errorf("block %d: %v", h, err)
					return
				}
				if b.Header.Hash() != blocks[h].Header.Hash() {
					t.Errorf("block %d hash mismatch mid-rewrite", h)
					return
				}
				if _, err := s.ReadTx(h, uint32(rng.Intn(3))); err != nil {
					t.Errorf("tx read %d: %v", h, err)
					return
				}
			}
		}(int64(g))
	}
	// Rewrite every sealed segment while the readers hammer, then keep
	// appending so fresh segments seal and a second sweep finds work.
	for round := 0; round < 3; round++ {
		for _, seg := range s.CompressTargets(1) {
			if err := s.CompressSegment(seg); err != nil {
				t.Errorf("compress %d: %v", seg, err)
			}
		}
		tip, _ := s.Tip()
		prev := tip
		b := mkBlock(&prev, uint64(1000+round*10), 3)
		if _, err := s.Append(b); err != nil {
			t.Errorf("append: %v", err)
		}
	}
	close(stop)
	wg.Wait()
}
