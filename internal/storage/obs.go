package storage

import "sebdb/internal/obs"

// Physical-read metrics, reported to the default registry. Reads are
// split by granularity: "block" covers whole-body transfers (Block,
// Iter.Read — the t_S + B·t_T term of Equations 1-2), "tx" covers the
// tuple-sized random reads of the layered index path (ReadTx,
// Equation 3's p·(t_S + t_T)).
var (
	mBlockReads = obs.Default.Counter(`sebdb_storage_segment_reads_total{kind="block"}`)
	mTxReads    = obs.Default.Counter(`sebdb_storage_segment_reads_total{kind="tx"}`)
	mBlockBytes = obs.Default.Counter(`sebdb_storage_read_bytes_total{kind="block"}`)
	mTxBytes    = obs.Default.Counter(`sebdb_storage_read_bytes_total{kind="tx"}`)
	mAppends    = obs.Default.Counter("sebdb_storage_appends_total")
	mAppendWr   = obs.Default.Counter("sebdb_storage_append_bytes_total")
)

// Tiered-read-path metrics: which backend served each segment read,
// how much the cold tier saved, and how the bounded handle cache is
// behaving.
var (
	mTierPread = obs.Default.Counter(`sebdb_storage_tier_reads_total{tier="pread"}`)
	mTierMmap  = obs.Default.Counter(`sebdb_storage_tier_reads_total{tier="mmap"}`)
	// mCompressedBytes tracks the stored (deflated) payload bytes
	// currently on disk in compressed records.
	mCompressedBytes = obs.Default.Gauge("sebdb_storage_compressed_bytes")
	// mCompressSaved accumulates raw-minus-stored byte savings across
	// all recompression rewrites.
	mCompressSaved = obs.Default.Counter("sebdb_storage_compress_saved_bytes_total")
	mRecompressed  = obs.Default.Counter("sebdb_storage_segments_recompressed_total")
	// mMmapFallbacks counts sealed-segment opens that wanted mmap but
	// fell back to pread (platform without mmap, mapping failure, or an
	// FS that does not implement faultfs.Mapper).
	mMmapFallbacks = obs.Default.Counter("sebdb_storage_mmap_fallbacks_total")
	// Handle-cache health: evicted descriptors and lock contention.
	mHandleEvictions  = obs.Default.Counter("sebdb_storage_handle_evictions_total")
	mHandleContention = obs.Default.Counter("sebdb_storage_handle_lock_contention_total")
)

// tierCounter maps a SegmentReader tier to its read counter.
func tierCounter(tier string) *obs.Counter {
	if tier == TierMmap {
		return mTierMmap
	}
	return mTierPread
}
