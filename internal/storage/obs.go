package storage

import "sebdb/internal/obs"

// Physical-read metrics, reported to the default registry. Reads are
// split by granularity: "block" covers whole-body transfers (Block,
// Iter.Read — the t_S + B·t_T term of Equations 1-2), "tx" covers the
// tuple-sized random reads of the layered index path (ReadTx,
// Equation 3's p·(t_S + t_T)).
var (
	mBlockReads = obs.Default.Counter(`sebdb_storage_segment_reads_total{kind="block"}`)
	mTxReads    = obs.Default.Counter(`sebdb_storage_segment_reads_total{kind="tx"}`)
	mBlockBytes = obs.Default.Counter(`sebdb_storage_read_bytes_total{kind="block"}`)
	mTxBytes    = obs.Default.Counter(`sebdb_storage_read_bytes_total{kind="tx"}`)
	mAppends    = obs.Default.Counter("sebdb_storage_appends_total")
	mAppendWr   = obs.Default.Counter("sebdb_storage_append_bytes_total")
)
