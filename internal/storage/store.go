// Package storage implements SEBDB's on-chain physical storage (paper
// §IV-A): blocks are appended to segment files on disk (default segment
// size 256 MB, configurable) and are immutable once written. The store
// maintains the chain invariant — each appended block must link to the
// current tip — and can rebuild its in-memory state by scanning the
// segments on open (crash recovery).
package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"sebdb/internal/faultfs"
	"sebdb/internal/obs"
	"sebdb/internal/types"
)

const (
	recordMagic = 0x5EBD_B10C
	// DefaultSegmentSize is the paper's default block-file size.
	DefaultSegmentSize = 256 << 20
	headerSize         = 8 // magic + length
	trailerSize        = 4 // crc32 of payload
)

// ErrNoBlock is returned when a requested block height does not exist.
var ErrNoBlock = errors.New("storage: no such block")

// ErrNotLinked is returned when an appended block does not extend the
// current tip.
var ErrNotLinked = errors.New("storage: block does not link to tip")

// ErrMetaMismatch is returned by OpenWithMeta when the supplied
// checkpoint metadata does not match the segment files on disk
// (wrong anchor, missing segments, malformed metadata). Callers fall
// back to a full-replay Open: never wrong answers, only slower ones.
var ErrMetaMismatch = errors.New("storage: checkpoint metadata does not match segments")

// Location identifies where a block lives on disk.
type Location struct {
	// Segment is the segment file number.
	Segment uint32
	// Offset is the byte offset of the record header within the segment.
	Offset int64
}

// Options configures a Store.
type Options struct {
	// SegmentSize is the maximum segment file size in bytes before the
	// store rolls to a new file. Zero means DefaultSegmentSize.
	SegmentSize int64
	// Sync forces an fsync after every append. Consensus already
	// replicates blocks, so the default is false.
	Sync bool
	// FS is the filesystem the store operates on. Nil means the real
	// OS filesystem; tests inject faultfs fault models here.
	FS faultfs.FS
	// Log receives structured storage events (segment rolls, torn-tail
	// truncation). Nil disables them.
	Log *obs.Logger
}

// Store is an append-only block store over a directory of segment files.
type Store struct {
	mu      sync.RWMutex
	dir     string
	opts    Options
	fs      faultfs.FS
	cur     faultfs.File
	curSeg  uint32
	curSize int64
	// dirty records that AppendNoSync wrote records the configured
	// per-append fsync has not yet covered; SyncBatch (or a segment
	// roll) clears it. Only meaningful when opts.Sync is set.
	dirty   bool
	locs    []Location
	headers []types.BlockHeader
	// txBase[i] is the Tid of the first transaction of block i; used by
	// callers that map tid ranges to blocks without reading bodies.
	txBase []uint64
	// txOffs[i] holds, for block i, the byte offset of each transaction
	// within the block body plus a final sentinel (the body length).
	// They make ReadTx a single tuple-sized random read — the p*(t_S+t_T)
	// cost the paper's Equation 3 models for the layered index.
	txOffs [][]uint32
	// lens[i] is the encoded body length of block i as stored on disk,
	// so callers can account for a block's footprint (cache sizing) and
	// the Blocks iterator can read bodies without re-reading record
	// headers.
	lens []int64
	// readers caches read-only handles per segment; segments are
	// immutable once rolled and the current one is append-only, so
	// positional reads through a shared handle are safe.
	readers map[uint32]faultfs.File
}

// Open opens (creating if necessary) a block store in dir and recovers
// its state by scanning existing segments.
func Open(dir string, opts Options) (*Store, error) {
	s, err := newStore(dir, opts)
	if err != nil {
		return nil, err
	}
	if err := s.recover(); err != nil {
		return nil, err
	}
	return s, nil
}

func newStore(dir string, opts Options) (*Store, error) {
	if opts.SegmentSize <= 0 {
		opts.SegmentSize = DefaultSegmentSize
	}
	if opts.FS == nil {
		opts.FS = faultfs.OS()
	}
	if err := opts.FS.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: %w", err)
	}
	return &Store{dir: dir, opts: opts, fs: opts.FS, readers: make(map[uint32]faultfs.File)}, nil
}

func (s *Store) segPath(n uint32) string {
	return filepath.Join(s.dir, fmt.Sprintf("blocks-%06d.seg", n))
}

// listSegs enumerates the store's segment file numbers in order and
// verifies they are contiguous from zero.
func (s *Store) listSegs() ([]uint32, error) {
	entries, err := s.fs.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("storage: %w", err)
	}
	var segs []uint32
	for _, e := range entries {
		var n uint32
		if _, err := fmt.Sscanf(e.Name(), "blocks-%06d.seg", &n); err == nil {
			segs = append(segs, n)
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	for i, n := range segs {
		if uint32(i) != n {
			return nil, fmt.Errorf("storage: segment files not contiguous: missing %06d", i)
		}
	}
	return segs, nil
}

// repairTail truncates segment n to valid when bytes beyond it exist —
// a torn final record. A clean tail is left untouched so opening an
// intact store on a read-only filesystem succeeds; a failed truncation
// is an error (the tail would stay corrupt), reported with the segment
// path.
func (s *Store) repairTail(n uint32, valid int64) error {
	path := s.segPath(n)
	fi, err := s.fs.Stat(path)
	if err != nil {
		return fmt.Errorf("storage: stat %s: %w", path, err)
	}
	if fi.Size() <= valid {
		return nil
	}
	if err := s.fs.Truncate(path, valid); err != nil {
		return fmt.Errorf("storage: truncating torn tail of %s: %w", path, err)
	}
	s.opts.Log.Warn("torn tail truncated",
		"segment", path, "dropped_bytes", fi.Size()-valid, "valid_bytes", valid)
	return nil
}

// recover scans segment files in order, validating records and chain
// linkage, and truncates a torn final record if one exists.
func (s *Store) recover() error {
	segs, err := s.listSegs()
	if err != nil {
		return err
	}

	for _, n := range segs {
		f, err := s.fs.Open(s.segPath(n))
		if err != nil {
			return fmt.Errorf("storage: %w", err)
		}
		valid, err := s.scanSegment(f, n, 0)
		if cerr := f.Close(); err == nil && cerr != nil {
			err = fmt.Errorf("storage: %w", cerr)
		}
		if err != nil {
			return err
		}
		// A torn write can only be at the tail of the last segment.
		if n == segs[len(segs)-1] {
			if err := s.repairTail(n, valid); err != nil {
				return err
			}
			s.curSeg, s.curSize = n, valid
		}
	}
	if len(segs) == 0 {
		s.curSeg, s.curSize = 0, 0
	}
	f, err := s.fs.OpenFile(s.segPath(s.curSeg), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	s.cur = f
	return nil
}

// scanSegment reads records from r (positioned at byte offset base of
// segment seg), appending to the in-memory state, and returns the
// offset of the first invalid byte (the valid length).
func (s *Store) scanSegment(r io.Reader, seg uint32, base int64) (int64, error) {
	off := base
	hdr := make([]byte, headerSize)
	for {
		if _, err := io.ReadFull(r, hdr); err != nil {
			return off, nil // clean EOF or torn header: stop here
		}
		if binary.BigEndian.Uint32(hdr) != recordMagic {
			return off, nil
		}
		n := binary.BigEndian.Uint32(hdr[4:])
		payload := make([]byte, int(n)+trailerSize)
		if _, err := io.ReadFull(r, payload); err != nil {
			return off, nil // torn payload
		}
		body := payload[:n]
		want := binary.BigEndian.Uint32(payload[n:])
		if crc32.ChecksumIEEE(body) != want {
			return off, nil // corrupt tail
		}
		b, offs, err := decodeBlockOffsets(body)
		if err != nil {
			return off, nil
		}
		if err := s.checkLinkage(&b.Header); err != nil {
			return 0, err // mid-chain corruption is not recoverable silently
		}
		s.locs = append(s.locs, Location{Segment: seg, Offset: off})
		s.headers = append(s.headers, b.Header)
		s.txBase = append(s.txBase, b.Header.FirstTid)
		s.txOffs = append(s.txOffs, offs)
		s.lens = append(s.lens, int64(n))
		off += headerSize + int64(n) + trailerSize
	}
}

func (s *Store) checkLinkage(h *types.BlockHeader) error {
	if len(s.headers) == 0 {
		if h.Height != 0 {
			return fmt.Errorf("%w: first block has height %d", ErrNotLinked, h.Height)
		}
		return nil
	}
	tip := &s.headers[len(s.headers)-1]
	if h.Height != tip.Height+1 {
		return fmt.Errorf("%w: height %d after %d", ErrNotLinked, h.Height, tip.Height)
	}
	if h.PrevHash != tip.Hash() {
		return fmt.Errorf("%w: prev hash mismatch at height %d", ErrNotLinked, h.Height)
	}
	return nil
}

// Append validates and durably appends a block, returning its location.
func (s *Store) Append(b *types.Block) (Location, error) {
	if err := b.Validate(); err != nil {
		return Location{}, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	//sebdb:ignore-lockio reason: the store lock is the segment-file lock — Append's contract is a durable record, so the fsync must happen under it
	return s.appendLocked(b, true)
}

// AppendNoSync appends a block the caller has already validated,
// deferring the segment fsync to a later SyncBatch. It is the commit
// pipeline's append: block validation (types.Block.ValidateWorkers)
// runs in the lock-free prepare stage, and a batch of blocks committed
// together is made durable by one SyncBatch instead of one fsync per
// block. This is safe because recovery truncates a torn or unsynced
// suffix back to the last valid record — a crash between appends and
// the batch sync can only shorten the chain, never leave a gap. Chain
// linkage is still checked here, under the store lock.
func (s *Store) AppendNoSync(b *types.Block) (Location, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	//sebdb:ignore-lockio reason: buffered append; appendLocked reaches Sync only on a segment roll, which must be atomic with respect to the segment-file lock
	return s.appendLocked(b, false)
}

// SyncBatch fsyncs the current segment when unsynced appends are
// pending and Options.Sync is set; otherwise it is a no-op. Appends
// that cross a segment roll are covered too: rollSegment syncs the old
// segment before closing it.
func (s *Store) SyncBatch() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.dirty {
		return nil
	}
	//sebdb:ignore-lockio reason: the group fsync must run under the segment-file lock so no append can roll the segment out from under it
	if err := s.cur.Sync(); err != nil {
		return fmt.Errorf("storage: sync: %w", err)
	}
	s.dirty = false
	return nil
}

func (s *Store) appendLocked(b *types.Block, sync bool) (Location, error) {
	if err := s.checkLinkage(&b.Header); err != nil {
		return Location{}, err
	}

	body := b.EncodeBytes()
	if int64(len(body)) > math.MaxUint32 {
		return Location{}, fmt.Errorf("storage: block of %d bytes exceeds the record length prefix", len(body))
	}
	rec := make([]byte, headerSize+len(body)+trailerSize)
	binary.BigEndian.PutUint32(rec, recordMagic)
	binary.BigEndian.PutUint32(rec[4:], uint32(len(body)))
	copy(rec[headerSize:], body)
	binary.BigEndian.PutUint32(rec[headerSize+len(body):], crc32.ChecksumIEEE(body))

	if s.curSize > 0 && s.curSize+int64(len(rec)) > s.opts.SegmentSize {
		if err := s.rollSegment(); err != nil {
			return Location{}, err
		}
	}
	loc := Location{Segment: s.curSeg, Offset: s.curSize}
	if _, err := s.cur.Write(rec); err != nil {
		return Location{}, fmt.Errorf("storage: append: %w", err)
	}
	if s.opts.Sync {
		if sync {
			if err := s.cur.Sync(); err != nil {
				return Location{}, fmt.Errorf("storage: sync: %w", err)
			}
		} else {
			s.dirty = true
		}
	}
	s.curSize += int64(len(rec))
	mAppends.Inc()
	mAppendWr.Add(uint64(len(rec)))
	s.locs = append(s.locs, loc)
	s.headers = append(s.headers, b.Header)
	s.txBase = append(s.txBase, b.Header.FirstTid)
	_, offs, err := decodeBlockOffsets(body)
	if err != nil {
		return Location{}, fmt.Errorf("storage: offsets: %w", err)
	}
	s.txOffs = append(s.txOffs, offs)
	s.lens = append(s.lens, int64(len(body)))
	return loc, nil
}

func (s *Store) rollSegment() error {
	// A batch of unsynced appends may span the roll: the old segment must
	// be durable before it is closed, or SyncBatch on the new one would
	// leave a hole in the middle of the batch.
	if s.dirty {
		if err := s.cur.Sync(); err != nil {
			return fmt.Errorf("storage: sync: %w", err)
		}
		s.dirty = false
	}
	if err := s.cur.Close(); err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	s.curSeg++
	s.curSize = 0
	f, err := s.fs.OpenFile(s.segPath(s.curSeg), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	s.cur = f
	s.opts.Log.Info("segment rolled", "segment", s.segPath(s.curSeg), "blocks", len(s.locs))
	return nil
}

// Count returns the number of blocks in the chain.
func (s *Store) Count() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.locs)
}

// Tip returns the header of the newest block; ok is false for an empty
// chain.
func (s *Store) Tip() (types.BlockHeader, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if len(s.headers) == 0 {
		return types.BlockHeader{}, false
	}
	return s.headers[len(s.headers)-1], true
}

// Header returns the header of the block at the given height.
func (s *Store) Header(height uint64) (types.BlockHeader, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if height >= uint64(len(s.headers)) {
		return types.BlockHeader{}, ErrNoBlock
	}
	return s.headers[height], nil
}

// Headers returns a copy of all block headers in height order.
func (s *Store) Headers() []types.BlockHeader {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]types.BlockHeader, len(s.headers))
	copy(out, s.headers)
	return out
}

// FirstTid returns the Tid of the first transaction in the block at the
// given height.
func (s *Store) FirstTid(height uint64) (uint64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if height >= uint64(len(s.txBase)) {
		return 0, ErrNoBlock
	}
	return s.txBase[height], nil
}

// Block reads the full block at the given height from disk.
func (s *Store) Block(height uint64) (*types.Block, error) {
	s.mu.RLock()
	if height >= uint64(len(s.locs)) {
		s.mu.RUnlock()
		return nil, ErrNoBlock
	}
	loc := s.locs[height]
	s.mu.RUnlock()
	return s.readAt(loc)
}

func (s *Store) readAt(loc Location) (*types.Block, error) {
	f, err := s.reader(loc.Segment)
	if err != nil {
		return nil, err
	}
	hdr := make([]byte, headerSize)
	if _, err := f.ReadAt(hdr, loc.Offset); err != nil {
		return nil, fmt.Errorf("storage: %w", err)
	}
	if binary.BigEndian.Uint32(hdr) != recordMagic {
		return nil, fmt.Errorf("storage: bad magic at %v", loc)
	}
	n := binary.BigEndian.Uint32(hdr[4:])
	body := make([]byte, n)
	if _, err := f.ReadAt(body, loc.Offset+headerSize); err != nil {
		return nil, fmt.Errorf("storage: %w", err)
	}
	mBlockReads.Inc()
	mBlockBytes.Add(uint64(headerSize + len(body)))
	return types.DecodeBlock(types.NewDecoder(body))
}

// Close releases the store's file handles, reporting the first failure.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var err error
	for seg, f := range s.readers {
		if cerr := f.Close(); err == nil && cerr != nil {
			err = cerr
		}
		delete(s.readers, seg)
	}
	if s.cur == nil {
		return err
	}
	if cerr := s.cur.Close(); err == nil && cerr != nil {
		err = cerr
	}
	s.cur = nil
	return err
}

// reader returns a cached read-only handle for a segment.
func (s *Store) reader(seg uint32) (faultfs.File, error) {
	s.mu.RLock()
	f, ok := s.readers[seg]
	s.mu.RUnlock()
	if ok {
		return f, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if f, ok := s.readers[seg]; ok {
		return f, nil
	}
	f, err := s.fs.Open(s.segPath(seg))
	if err != nil {
		return nil, fmt.Errorf("storage: %w", err)
	}
	s.readers[seg] = f
	return f, nil
}

// decodeBlockOffsets decodes a block and records each transaction's
// byte offset within body, with a final sentinel at the body's end.
func decodeBlockOffsets(body []byte) (*types.Block, []uint32, error) {
	d := types.NewDecoder(body)
	h, err := types.DecodeBlockHeader(d)
	if err != nil {
		return nil, nil, err
	}
	n, err := d.Uint32()
	if err != nil {
		return nil, nil, err
	}
	if int(n) > d.Remaining() {
		return nil, nil, types.ErrCorrupt
	}
	b := &types.Block{Header: h, Txs: make([]*types.Transaction, n)}
	offs := make([]uint32, n+1)
	for i := range b.Txs {
		offs[i] = uint32(d.Offset())
		if b.Txs[i], err = types.DecodeTransaction(d); err != nil {
			return nil, nil, err
		}
	}
	offs[n] = uint32(d.Offset())
	return b, offs, nil
}

// BodyLen returns the encoded length in bytes of the block stored at
// the given height — the exact size Append wrote — so callers can
// account for a block's storage footprint without re-encoding it.
func (s *Store) BodyLen(height uint64) (int64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if height >= uint64(len(s.lens)) {
		return 0, ErrNoBlock
	}
	return s.lens[height], nil
}

// Iter is a read-only snapshot over the block height range [lo, hi):
// locations, body lengths and segment handles are resolved once at
// construction, so the workers of a parallel read pipeline issue pure
// positional reads without re-taking the store lock per block.
type Iter struct {
	lo, hi  uint64
	locs    []Location
	lens    []int64
	readers map[uint32]faultfs.File
}

// Blocks snapshots the range [lo, hi) for iteration, clamping hi to
// the current chain height. Blocks appended after the call are not
// part of the snapshot. The iterator shares the store's segment
// handles; it stops working once the store is closed.
func (s *Store) Blocks(lo, hi uint64) (*Iter, error) {
	s.mu.RLock()
	if hi > uint64(len(s.locs)) {
		hi = uint64(len(s.locs))
	}
	if lo > hi {
		lo = hi
	}
	it := &Iter{lo: lo, hi: hi, readers: make(map[uint32]faultfs.File)}
	if lo < hi {
		it.locs = append([]Location(nil), s.locs[lo:hi]...)
		it.lens = append([]int64(nil), s.lens[lo:hi]...)
	}
	s.mu.RUnlock()
	for _, loc := range it.locs {
		if _, ok := it.readers[loc.Segment]; !ok {
			f, err := s.reader(loc.Segment)
			if err != nil {
				return nil, err
			}
			it.readers[loc.Segment] = f
		}
	}
	return it, nil
}

// Lo returns the first height of the snapshot.
func (it *Iter) Lo() uint64 { return it.lo }

// Hi returns the exclusive upper height of the snapshot.
func (it *Iter) Hi() uint64 { return it.hi }

// Len returns the number of blocks in the snapshot.
func (it *Iter) Len() int { return int(it.hi - it.lo) }

// Read decodes the block at the given absolute height, which must lie
// within the snapshot's range. It takes no locks and is safe for
// concurrent use by multiple workers.
func (it *Iter) Read(height uint64) (*types.Block, error) {
	if height < it.lo || height >= it.hi {
		return nil, ErrNoBlock
	}
	i := height - it.lo
	loc := it.locs[i]
	body := make([]byte, it.lens[i])
	if _, err := it.readers[loc.Segment].ReadAt(body, loc.Offset+headerSize); err != nil {
		return nil, fmt.Errorf("storage: %w", err)
	}
	mBlockReads.Inc()
	mBlockBytes.Add(uint64(len(body)))
	return types.DecodeBlock(types.NewDecoder(body))
}

// ReadTx reads a single transaction with one tuple-sized random read —
// the access pattern of the layered index's second level (Equation 3),
// as opposed to Block's whole-block transfer (Equations 1 and 2).
func (s *Store) ReadTx(height uint64, pos uint32) (*types.Transaction, error) {
	s.mu.RLock()
	if height >= uint64(len(s.locs)) {
		s.mu.RUnlock()
		return nil, ErrNoBlock
	}
	loc := s.locs[height]
	offs := s.txOffs[height]
	s.mu.RUnlock()
	if int(pos)+1 >= len(offs) {
		return nil, fmt.Errorf("storage: block %d has no tx at %d", height, pos)
	}
	start, end := offs[pos], offs[pos+1]
	f, err := s.reader(loc.Segment)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, end-start)
	if _, err := f.ReadAt(buf, loc.Offset+headerSize+int64(start)); err != nil {
		return nil, fmt.Errorf("storage: %w", err)
	}
	mTxReads.Inc()
	mTxBytes.Add(uint64(len(buf)))
	return types.DecodeTransaction(types.NewDecoder(buf))
}
