// Package storage implements SEBDB's on-chain physical storage (paper
// §IV-A): blocks are appended to segment files on disk (default segment
// size 256 MB, configurable) and are immutable once written. The store
// maintains the chain invariant — each appended block must link to the
// current tip — and can rebuild its in-memory state by scanning the
// segments on open (crash recovery).
//
// Reads go through a tiered backend per segment: the active tail is
// always read with positional reads over a descriptor (pread), while
// sealed segments may be served from a read-only memory map when
// Options.Mmap is set, falling back to pread transparently. Sealed
// segments can also be recompressed in place (CompressSegment): each
// record's body is deflated block-by-block into a rewritten segment
// file swapped in with tmp+sync+rename, so a chain that has gone cold
// costs less disk without giving up record-level random access.
package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"sebdb/internal/faultfs"
	"sebdb/internal/obs"
	"sebdb/internal/types"
)

const (
	recordMagic = 0x5EBD_B10C
	// recordMagicZ marks a compressed record: its payload is the raw
	// body length (4 bytes, big-endian) followed by the DEFLATE stream
	// of the body. The CRC trailer covers the stored payload, so torn
	// and corrupt tails are detected without inflating anything.
	recordMagicZ = 0x5EBD_B10D
	// DefaultSegmentSize is the paper's default block-file size.
	DefaultSegmentSize = 256 << 20
	// DefaultMaxOpenSegments bounds the per-segment read-handle cache:
	// the active tail plus the hottest sealed segments keep a live
	// descriptor or mapping, everything colder is reopened on demand.
	DefaultMaxOpenSegments = 8
	headerSize             = 8 // magic + length
	trailerSize            = 4 // crc32 of payload
	// maxReadRetries bounds the resolve/acquire retry loop a reader runs
	// when recompression keeps swapping a segment underneath it. One
	// retry already needs a swap to land inside a microsecond window;
	// hitting the bound means something is pathologically wrong.
	maxReadRetries = 8
)

// ErrNoBlock is returned when a requested block height does not exist.
var ErrNoBlock = errors.New("storage: no such block")

// ErrNotLinked is returned when an appended block does not extend the
// current tip.
var ErrNotLinked = errors.New("storage: block does not link to tip")

// ErrMetaMismatch is returned by OpenWithMeta when the supplied
// checkpoint metadata does not match the segment files on disk
// (wrong anchor, missing segments, malformed metadata, or a segment
// recompressed after the checkpoint was taken). Callers fall back to a
// full-replay Open: never wrong answers, only slower ones.
var ErrMetaMismatch = errors.New("storage: checkpoint metadata does not match segments")

// errSegSwapped reports that a reader exhausted maxReadRetries without
// observing a stable segment generation.
var errSegSwapped = errors.New("storage: segment kept being rewritten during read")

// Location identifies where a block lives on disk.
type Location struct {
	// Segment is the segment file number.
	Segment uint32
	// Offset is the byte offset of the record header within the segment.
	Offset int64
}

// Options configures a Store.
type Options struct {
	// SegmentSize is the maximum segment file size in bytes before the
	// store rolls to a new file. Zero means DefaultSegmentSize.
	SegmentSize int64
	// Sync forces an fsync after every append. Consensus already
	// replicates blocks, so the default is false.
	Sync bool
	// Mmap serves sealed segments from read-only memory maps when the
	// filesystem supports it (faultfs.Mapper). The active tail segment
	// is always read with pread; a failed map falls back to pread.
	Mmap bool
	// MaxOpenSegments bounds the number of segments with a live read
	// handle (descriptor or mapping). Zero means
	// DefaultMaxOpenSegments; the active segment is always retained.
	MaxOpenSegments int
	// FS is the filesystem the store operates on. Nil means the real
	// OS filesystem; tests inject faultfs fault models here.
	FS faultfs.FS
	// Log receives structured storage events (segment rolls, torn-tail
	// truncation, recompression). Nil disables them.
	Log *obs.Logger
}

// Store is an append-only block store over a directory of segment files.
type Store struct {
	mu      sync.RWMutex
	dir     string
	opts    Options
	fs      faultfs.FS
	cur     faultfs.File
	curSeg  uint32
	curSize int64
	// activeSeg mirrors curSeg for lock-free reads by the handle
	// cache's eviction policy (which runs under the cache's own mutex
	// and must not take the store lock).
	activeSeg atomic.Uint32
	// dirty records that AppendNoSync wrote records the configured
	// per-append fsync has not yet covered; SyncBatch (or a segment
	// roll) clears it. Only meaningful when opts.Sync is set.
	dirty   bool
	locs    []Location
	headers []types.BlockHeader
	// txBase[i] is the Tid of the first transaction of block i; used by
	// callers that map tid ranges to blocks without reading bodies.
	txBase []uint64
	// txOffs[i] holds, for block i, the byte offset of each transaction
	// within the block body plus a final sentinel (the body length).
	// They make ReadTx a single tuple-sized random read — the p*(t_S+t_T)
	// cost the paper's Equation 3 models for the layered index.
	txOffs [][]uint32
	// lens[i] is the raw (uncompressed) encoded body length of block i,
	// exactly as Append wrote it. It is chain-derived — checkpoint
	// divergence checks compare it — so recompression never changes it.
	lens []int64
	// stored[i] is the payload length of block i's record as it sits on
	// disk right now: equal to lens[i] for plain records, smaller for
	// compressed ones. Node-local, changed by recompression.
	stored []int64
	// comp[i] records whether block i's record is compressed on disk.
	comp []bool
	// gens tracks a generation per segment, bumped whenever a
	// recompression rewrite swaps the segment file. Readers tag the
	// handle they acquire with the generation they resolved under the
	// lock and re-validate it afterwards, so a location from generation
	// g is never applied to the bytes of generation g+1. Segments
	// absent from the map are at generation zero.
	gens map[uint32]uint64
	// compacted marks segments a recompression pass has already
	// processed, so mixed segments (some records incompressible) are
	// not rewritten again every sweep.
	compacted map[uint32]bool
	// compactMu serialises recompression rewrites. It is ordered before
	// s.mu: a rewrite reads source records without s.mu (its segment's
	// generation cannot change while compactMu is held) and takes s.mu
	// only for the final swap.
	compactMu sync.Mutex

	// handles is the bounded per-segment read-handle cache; it carries
	// its own mutex and is safe to use without s.mu or compactMu.
	handles *handleCache
}

// Open opens (creating if necessary) a block store in dir and recovers
// its state by scanning existing segments.
func Open(dir string, opts Options) (*Store, error) {
	s, err := newStore(dir, opts)
	if err != nil {
		return nil, err
	}
	if err := s.recover(); err != nil {
		return nil, err
	}
	return s, nil
}

func newStore(dir string, opts Options) (*Store, error) {
	if opts.SegmentSize <= 0 {
		opts.SegmentSize = DefaultSegmentSize
	}
	if opts.MaxOpenSegments <= 0 {
		opts.MaxOpenSegments = DefaultMaxOpenSegments
	}
	if opts.FS == nil {
		opts.FS = faultfs.OS()
	}
	if err := opts.FS.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: %w", err)
	}
	s := &Store{
		dir:       dir,
		opts:      opts,
		fs:        opts.FS,
		gens:      make(map[uint32]uint64),
		compacted: make(map[uint32]bool),
	}
	s.handles = newHandleCache(opts.MaxOpenSegments, s.openSegment, s.activeSeg.Load)
	return s, nil
}

func (s *Store) segPath(n uint32) string {
	return filepath.Join(s.dir, fmt.Sprintf("blocks-%06d.seg", n))
}

// openSegment opens a read backend for one segment: a memory map for
// sealed segments when Options.Mmap is set and the filesystem can,
// positional reads otherwise. Mapping failures (platform without mmap,
// injected faults, exotic filesystems) fall back to pread — the slower
// tier is always correct.
func (s *Store) openSegment(seg uint32, sealed bool) (SegmentReader, error) {
	path := s.segPath(seg)
	if sealed && s.opts.Mmap {
		if mp, ok := s.fs.(faultfs.Mapper); ok {
			m, err := mp.Mmap(path)
			if err == nil {
				return &mmapReader{m: m, data: m.Bytes()}, nil
			}
			if errors.Is(err, faultfs.ErrCrashed) {
				return nil, fmt.Errorf("storage: %w", err)
			}
			mMmapFallbacks.Inc()
			s.opts.Log.Warn("mmap failed; falling back to pread", "segment", path, "error", err.Error())
		} else {
			mMmapFallbacks.Inc()
		}
	}
	f, err := s.fs.Open(path)
	if err != nil {
		return nil, fmt.Errorf("storage: %w", err)
	}
	return preadReader{f: f}, nil
}

// listSegs enumerates the store's segment file numbers in order and
// verifies they are contiguous from zero. Names must match the segment
// pattern exactly: a leftover rewrite temporary ("blocks-000003.seg.tmp")
// must not be mistaken for a segment.
func (s *Store) listSegs() ([]uint32, error) {
	entries, err := s.fs.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("storage: %w", err)
	}
	var segs []uint32
	for _, e := range entries {
		var n uint32
		if _, err := fmt.Sscanf(e.Name(), "blocks-%06d.seg", &n); err == nil &&
			e.Name() == fmt.Sprintf("blocks-%06d.seg", n) {
			segs = append(segs, n)
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	for i, n := range segs {
		if uint32(i) != n {
			return nil, fmt.Errorf("storage: segment files not contiguous: missing %06d", i)
		}
	}
	return segs, nil
}

// removeLeftoverTmp deletes rewrite temporaries from a crashed
// recompression. The original segment is still intact (the rename never
// happened), so the temporary is garbage.
func (s *Store) removeLeftoverTmp() error {
	entries, err := s.fs.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".seg.tmp") {
			path := filepath.Join(s.dir, e.Name())
			if err := s.fs.Remove(path); err != nil {
				return fmt.Errorf("storage: removing leftover rewrite temporary: %w", err)
			}
			s.opts.Log.Warn("removed leftover rewrite temporary", "path", path)
		}
	}
	return nil
}

// repairTail truncates segment n to valid when bytes beyond it exist —
// a torn final record. A clean tail is left untouched so opening an
// intact store on a read-only filesystem succeeds; a failed truncation
// is an error (the tail would stay corrupt), reported with the segment
// path.
func (s *Store) repairTail(n uint32, valid int64) error {
	path := s.segPath(n)
	fi, err := s.fs.Stat(path)
	if err != nil {
		return fmt.Errorf("storage: stat %s: %w", path, err)
	}
	if fi.Size() <= valid {
		return nil
	}
	if err := s.fs.Truncate(path, valid); err != nil {
		return fmt.Errorf("storage: truncating torn tail of %s: %w", path, err)
	}
	s.opts.Log.Warn("torn tail truncated",
		"segment", path, "dropped_bytes", fi.Size()-valid, "valid_bytes", valid)
	return nil
}

// recover scans segment files in order, validating records and chain
// linkage, and truncates a torn final record if one exists.
func (s *Store) recover() error {
	if err := s.removeLeftoverTmp(); err != nil {
		return err
	}
	segs, err := s.listSegs()
	if err != nil {
		return err
	}

	for _, n := range segs {
		f, err := s.fs.Open(s.segPath(n))
		if err != nil {
			return fmt.Errorf("storage: %w", err)
		}
		valid, err := s.scanSegment(f, n, 0)
		if cerr := f.Close(); err == nil && cerr != nil {
			err = fmt.Errorf("storage: %w", cerr)
		}
		if err != nil {
			return err
		}
		// A torn write can only be at the tail of the last segment.
		if n == segs[len(segs)-1] {
			if err := s.repairTail(n, valid); err != nil {
				return err
			}
			s.curSeg, s.curSize = n, valid
		}
	}
	if len(segs) == 0 {
		s.curSeg, s.curSize = 0, 0
	}
	s.activeSeg.Store(s.curSeg)
	f, err := s.fs.OpenFile(s.segPath(s.curSeg), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	s.cur = f
	return nil
}

// scanSegment reads records from r (positioned at byte offset base of
// segment seg), appending to the in-memory state, and returns the
// offset of the first invalid byte (the valid length). Plain and
// compressed records may be mixed within one segment.
func (s *Store) scanSegment(r io.Reader, seg uint32, base int64) (int64, error) {
	off := base
	hdr := make([]byte, headerSize)
	for {
		if _, err := io.ReadFull(r, hdr); err != nil {
			return off, nil // clean EOF or torn header: stop here
		}
		magic := binary.BigEndian.Uint32(hdr)
		if magic != recordMagic && magic != recordMagicZ {
			return off, nil
		}
		n := binary.BigEndian.Uint32(hdr[4:])
		payload := make([]byte, int(n)+trailerSize)
		if _, err := io.ReadFull(r, payload); err != nil {
			return off, nil // torn payload
		}
		stored := payload[:n]
		want := binary.BigEndian.Uint32(payload[n:])
		if crc32.ChecksumIEEE(stored) != want {
			return off, nil // corrupt tail
		}
		body := stored
		compressed := magic == recordMagicZ
		if compressed {
			var err error
			if body, err = inflateBody(stored); err != nil {
				return off, nil // CRC passed but the stream is malformed: treat as invalid tail
			}
		}
		b, offs, err := decodeBlockOffsets(body)
		if err != nil {
			return off, nil
		}
		if err := s.checkLinkage(&b.Header); err != nil {
			return 0, err // mid-chain corruption is not recoverable silently
		}
		s.locs = append(s.locs, Location{Segment: seg, Offset: off})
		s.headers = append(s.headers, b.Header)
		s.txBase = append(s.txBase, b.Header.FirstTid)
		s.txOffs = append(s.txOffs, offs)
		s.lens = append(s.lens, int64(len(body)))
		s.stored = append(s.stored, int64(n))
		s.comp = append(s.comp, compressed)
		if compressed {
			s.compacted[seg] = true
		}
		off += headerSize + int64(n) + trailerSize
	}
}

// encodeRecord frames one payload as a segment record: magic and
// length header, payload, CRC trailer.
func encodeRecord(magic uint32, payload []byte) []byte {
	if int64(len(payload)) > math.MaxUint32 {
		// Unreachable through the public surface: appendLocked rejects
		// oversize bodies before framing, and rewrite payloads derive
		// from records that already fit the prefix.
		panic(fmt.Sprintf("storage: record payload of %d bytes exceeds the length prefix", len(payload)))
	}
	rec := make([]byte, headerSize+len(payload)+trailerSize)
	binary.BigEndian.PutUint32(rec, magic)
	binary.BigEndian.PutUint32(rec[4:], uint32(len(payload)))
	copy(rec[headerSize:], payload)
	binary.BigEndian.PutUint32(rec[headerSize+len(payload):], crc32.ChecksumIEEE(payload))
	return rec
}

func (s *Store) checkLinkage(h *types.BlockHeader) error {
	if len(s.headers) == 0 {
		if h.Height != 0 {
			return fmt.Errorf("%w: first block has height %d", ErrNotLinked, h.Height)
		}
		return nil
	}
	tip := &s.headers[len(s.headers)-1]
	if h.Height != tip.Height+1 {
		return fmt.Errorf("%w: height %d after %d", ErrNotLinked, h.Height, tip.Height)
	}
	if h.PrevHash != tip.Hash() {
		return fmt.Errorf("%w: prev hash mismatch at height %d", ErrNotLinked, h.Height)
	}
	return nil
}

// Append validates and durably appends a block, returning its location.
func (s *Store) Append(b *types.Block) (Location, error) {
	if err := b.Validate(); err != nil {
		return Location{}, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	//sebdb:ignore-lockio reason: the store lock is the segment-file lock — Append's contract is a durable record, so the fsync must happen under it
	return s.appendLocked(b, true)
}

// AppendNoSync appends a block the caller has already validated,
// deferring the segment fsync to a later SyncBatch. It is the commit
// pipeline's append: block validation (types.Block.ValidateWorkers)
// runs in the lock-free prepare stage, and a batch of blocks committed
// together is made durable by one SyncBatch instead of one fsync per
// block. This is safe because recovery truncates a torn or unsynced
// suffix back to the last valid record — a crash between appends and
// the batch sync can only shorten the chain, never leave a gap. Chain
// linkage is still checked here, under the store lock.
func (s *Store) AppendNoSync(b *types.Block) (Location, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	//sebdb:ignore-lockio reason: buffered append; appendLocked reaches Sync only on a segment roll, which must be atomic with respect to the segment-file lock
	return s.appendLocked(b, false)
}

// SyncBatch fsyncs the current segment when unsynced appends are
// pending and Options.Sync is set; otherwise it is a no-op. Appends
// that cross a segment roll are covered too: rollSegment syncs the old
// segment before closing it.
func (s *Store) SyncBatch() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.dirty {
		return nil
	}
	//sebdb:ignore-lockio reason: the group fsync must run under the segment-file lock so no append can roll the segment out from under it
	if err := s.cur.Sync(); err != nil {
		return fmt.Errorf("storage: sync: %w", err)
	}
	s.dirty = false
	return nil
}

func (s *Store) appendLocked(b *types.Block, sync bool) (Location, error) {
	if err := s.checkLinkage(&b.Header); err != nil {
		return Location{}, err
	}

	body := b.EncodeBytes()
	if int64(len(body)) > math.MaxUint32 {
		return Location{}, fmt.Errorf("storage: block of %d bytes exceeds the record length prefix", len(body))
	}
	rec := encodeRecord(recordMagic, body)

	if s.curSize > 0 && s.curSize+int64(len(rec)) > s.opts.SegmentSize {
		if err := s.rollSegment(); err != nil {
			return Location{}, err
		}
	}
	loc := Location{Segment: s.curSeg, Offset: s.curSize}
	if _, err := s.cur.Write(rec); err != nil {
		return Location{}, fmt.Errorf("storage: append: %w", err)
	}
	if s.opts.Sync {
		if sync {
			if err := s.cur.Sync(); err != nil {
				return Location{}, fmt.Errorf("storage: sync: %w", err)
			}
		} else {
			s.dirty = true
		}
	}
	s.curSize += int64(len(rec))
	mAppends.Inc()
	mAppendWr.Add(uint64(len(rec)))
	s.locs = append(s.locs, loc)
	s.headers = append(s.headers, b.Header)
	s.txBase = append(s.txBase, b.Header.FirstTid)
	_, offs, err := decodeBlockOffsets(body)
	if err != nil {
		return Location{}, fmt.Errorf("storage: offsets: %w", err)
	}
	s.txOffs = append(s.txOffs, offs)
	s.lens = append(s.lens, int64(len(body)))
	s.stored = append(s.stored, int64(len(body)))
	s.comp = append(s.comp, false)
	return loc, nil
}

func (s *Store) rollSegment() error {
	// A batch of unsynced appends may span the roll: the old segment must
	// be durable before it is closed, or SyncBatch on the new one would
	// leave a hole in the middle of the batch.
	if s.dirty {
		if err := s.cur.Sync(); err != nil {
			return fmt.Errorf("storage: sync: %w", err)
		}
		s.dirty = false
	}
	if err := s.cur.Close(); err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	s.curSeg++
	s.curSize = 0
	s.activeSeg.Store(s.curSeg)
	f, err := s.fs.OpenFile(s.segPath(s.curSeg), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	s.cur = f
	s.opts.Log.Info("segment rolled", "segment", s.segPath(s.curSeg), "blocks", len(s.locs))
	return nil
}

// Count returns the number of blocks in the chain.
func (s *Store) Count() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.locs)
}

// Tip returns the header of the newest block; ok is false for an empty
// chain.
func (s *Store) Tip() (types.BlockHeader, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if len(s.headers) == 0 {
		return types.BlockHeader{}, false
	}
	return s.headers[len(s.headers)-1], true
}

// Header returns the header of the block at the given height.
func (s *Store) Header(height uint64) (types.BlockHeader, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if height >= uint64(len(s.headers)) {
		return types.BlockHeader{}, ErrNoBlock
	}
	return s.headers[height], nil
}

// Headers returns a copy of all block headers in height order.
func (s *Store) Headers() []types.BlockHeader {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]types.BlockHeader, len(s.headers))
	copy(out, s.headers)
	return out
}

// FirstTid returns the Tid of the first transaction in the block at the
// given height.
func (s *Store) FirstTid(height uint64) (uint64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if height >= uint64(len(s.txBase)) {
		return 0, ErrNoBlock
	}
	return s.txBase[height], nil
}

// recordRef is a snapshot of one block's on-disk coordinates plus the
// segment generation they belong to.
type recordRef struct {
	loc    Location
	stored int64
	comp   bool
	gen    uint64
	sealed bool
}

// resolve snapshots the coordinates of the block at height under the
// read lock. The generation lets the caller detect a recompression
// swap between this lookup and the positional read.
func (s *Store) resolve(height uint64) (recordRef, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if height >= uint64(len(s.locs)) {
		return recordRef{}, ErrNoBlock
	}
	loc := s.locs[height]
	return recordRef{
		loc:    loc,
		stored: s.stored[height],
		comp:   s.comp[height],
		gen:    s.gens[loc.Segment],
		sealed: loc.Segment != s.curSeg,
	}, nil
}

// genOf re-reads a segment's current generation.
func (s *Store) genOf(seg uint32) uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.gens[seg]
}

// acquireRef turns a resolved recordRef into a referenced segment
// handle whose bytes are guaranteed to match the ref's generation, or
// reports stale=true when a recompression swap intervened and the
// caller must re-resolve. The guarantee works in both directions: a
// handle opened before the swap pins the old inode (rename does not
// disturb open descriptors or mappings), and a handle opened on the new
// inode under an old ref fails the post-acquire generation check.
func (s *Store) acquireRef(ref recordRef) (h *segHandle, stale bool, err error) {
	h, err = s.handles.acquire(ref.loc.Segment, ref.gen, ref.sealed)
	if err != nil {
		return nil, false, err
	}
	if s.genOf(ref.loc.Segment) != ref.gen {
		h.release()
		return nil, true, nil
	}
	return h, false, nil
}

// readRecordBody reads the record at off with ONE contiguous positional
// read — header and payload together, sized from the in-memory stored
// length — then validates the header against expectations and inflates
// compressed payloads. Half the syscalls of the old header-then-body
// sequence on the pread tier, and a single bounds-checked copy on mmap.
func readRecordBody(r SegmentReader, off, stored int64, comp bool) ([]byte, error) {
	buf := make([]byte, headerSize+stored)
	if _, err := r.ReadAt(buf, off); err != nil {
		return nil, fmt.Errorf("storage: %w", err)
	}
	magic, want := binary.BigEndian.Uint32(buf), uint32(recordMagic)
	if comp {
		want = recordMagicZ
	}
	if magic != want {
		return nil, fmt.Errorf("storage: bad magic %#x at offset %d", magic, off)
	}
	if n := binary.BigEndian.Uint32(buf[4:]); int64(n) != stored {
		return nil, fmt.Errorf("storage: record length %d != expected %d at offset %d", n, stored, off)
	}
	payload := buf[headerSize:]
	if comp {
		return inflateBody(payload)
	}
	return payload, nil
}

// readBody returns the raw (decompressed) body of the block at height,
// plus the tier that served it.
func (s *Store) readBody(height uint64) ([]byte, string, error) {
	for range [maxReadRetries]struct{}{} {
		ref, err := s.resolve(height)
		if err != nil {
			return nil, "", err
		}
		h, stale, err := s.acquireRef(ref)
		if err != nil {
			return nil, "", err
		}
		if stale {
			continue
		}
		body, err := readRecordBody(h.r, ref.loc.Offset, ref.stored, ref.comp)
		tier := h.r.Tier()
		h.release()
		if err != nil {
			return nil, "", err
		}
		return body, tier, nil
	}
	return nil, "", errSegSwapped
}

// Block reads the full block at the given height from disk.
func (s *Store) Block(height uint64) (*types.Block, error) {
	body, tier, err := s.readBody(height)
	if err != nil {
		return nil, err
	}
	mBlockReads.Inc()
	mBlockBytes.Add(uint64(headerSize + len(body)))
	tierCounter(tier).Inc()
	return types.DecodeBlock(types.NewDecoder(body))
}

// Close releases the store's read handles and the append descriptor,
// reporting the first failure. Handles still referenced by in-flight
// reads or open iterators close when their last reference is released.
func (s *Store) Close() error {
	s.handles.closeAll()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cur == nil {
		return nil
	}
	err := s.cur.Close()
	s.cur = nil
	return err
}

// decodeBlockOffsets decodes a block and records each transaction's
// byte offset within body, with a final sentinel at the body's end.
func decodeBlockOffsets(body []byte) (*types.Block, []uint32, error) {
	d := types.NewDecoder(body)
	h, err := types.DecodeBlockHeader(d)
	if err != nil {
		return nil, nil, err
	}
	n, err := d.Uint32()
	if err != nil {
		return nil, nil, err
	}
	if int(n) > d.Remaining() {
		return nil, nil, types.ErrCorrupt
	}
	b := &types.Block{Header: h, Txs: make([]*types.Transaction, n)}
	offs := make([]uint32, n+1)
	for i := range b.Txs {
		offs[i] = uint32(d.Offset())
		if b.Txs[i], err = types.DecodeTransaction(d); err != nil {
			return nil, nil, err
		}
	}
	offs[n] = uint32(d.Offset())
	return b, offs, nil
}

// BodyLen returns the raw encoded length in bytes of the block stored
// at the given height — the exact size Append wrote — so callers can
// account for a block's storage footprint without re-encoding it.
// Recompression does not change it; see StoredLen for the on-disk size.
func (s *Store) BodyLen(height uint64) (int64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if height >= uint64(len(s.lens)) {
		return 0, ErrNoBlock
	}
	return s.lens[height], nil
}

// StoredLen returns the on-disk payload length of the block's record:
// equal to BodyLen for plain records, smaller for compressed ones.
func (s *Store) StoredLen(height uint64) (int64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if height >= uint64(len(s.stored)) {
		return 0, ErrNoBlock
	}
	return s.stored[height], nil
}

// Compressed reports whether the block's record is compressed on disk.
func (s *Store) Compressed(height uint64) (bool, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if height >= uint64(len(s.comp)) {
		return false, ErrNoBlock
	}
	return s.comp[height], nil
}

// OpenHandles returns the number of segments with a live read handle.
func (s *Store) OpenHandles() int { return s.handles.Len() }

// Iter is a read-only snapshot over the block height range [lo, hi):
// locations, lengths and referenced segment handles are resolved once
// at construction, so the workers of a parallel read pipeline issue
// pure positional reads without re-taking the store lock per block.
// Close must be called to release the handle references; a concurrent
// recompression swap cannot disturb the iterator (its handles pin the
// pre-swap files), it only delays handle reclamation until Close.
type Iter struct {
	lo, hi  uint64
	locs    []Location
	stored  []int64
	comp    []bool
	handles map[uint32]*segHandle
	closed  bool
}

// Blocks snapshots the range [lo, hi) for iteration, clamping hi to
// the current chain height. Blocks appended after the call are not
// part of the snapshot. Callers must Close the iterator.
func (s *Store) Blocks(lo, hi uint64) (*Iter, error) {
	for range [maxReadRetries]struct{}{} {
		it, stale, err := s.tryBlocks(lo, hi)
		if err != nil {
			return nil, err
		}
		if !stale {
			return it, nil
		}
	}
	return nil, errSegSwapped
}

func (s *Store) tryBlocks(lo, hi uint64) (it *Iter, stale bool, err error) {
	s.mu.RLock()
	if hi > uint64(len(s.locs)) {
		hi = uint64(len(s.locs))
	}
	if lo > hi {
		lo = hi
	}
	it = &Iter{lo: lo, hi: hi, handles: make(map[uint32]*segHandle)}
	gens := make(map[uint32]uint64)
	sealed := make(map[uint32]bool)
	if lo < hi {
		it.locs = append([]Location(nil), s.locs[lo:hi]...)
		it.stored = append([]int64(nil), s.stored[lo:hi]...)
		it.comp = append([]bool(nil), s.comp[lo:hi]...)
		for _, loc := range it.locs {
			gens[loc.Segment] = s.gens[loc.Segment]
			sealed[loc.Segment] = loc.Segment != s.curSeg
		}
	}
	s.mu.RUnlock()
	for seg, gen := range gens {
		h, err := s.handles.acquire(seg, gen, sealed[seg])
		if err != nil {
			it.Close()
			return nil, false, err
		}
		it.handles[seg] = h
	}
	// Re-validate every generation: if a recompression swapped any
	// snapshot segment while we were acquiring, the whole snapshot is
	// rebuilt from fresh locations.
	for seg, gen := range gens {
		if s.genOf(seg) != gen {
			it.Close()
			return nil, true, nil
		}
	}
	return it, false, nil
}

// Lo returns the first height of the snapshot.
func (it *Iter) Lo() uint64 { return it.lo }

// Hi returns the exclusive upper height of the snapshot.
func (it *Iter) Hi() uint64 { return it.hi }

// Len returns the number of blocks in the snapshot.
func (it *Iter) Len() int { return int(it.hi - it.lo) }

// Read decodes the block at the given absolute height, which must lie
// within the snapshot's range. It takes no locks and is safe for
// concurrent use by multiple workers.
func (it *Iter) Read(height uint64) (*types.Block, error) {
	if height < it.lo || height >= it.hi {
		return nil, ErrNoBlock
	}
	i := height - it.lo
	loc := it.locs[i]
	h := it.handles[loc.Segment]
	body, err := readRecordBody(h.r, loc.Offset, it.stored[i], it.comp[i])
	if err != nil {
		return nil, err
	}
	mBlockReads.Inc()
	mBlockBytes.Add(uint64(len(body)))
	tierCounter(h.r.Tier()).Inc()
	return types.DecodeBlock(types.NewDecoder(body))
}

// Close releases the iterator's segment handle references. Safe to call
// once concurrent Read calls have finished; idempotent.
func (it *Iter) Close() {
	if it.closed {
		return
	}
	it.closed = true
	for _, h := range it.handles {
		h.release()
	}
	it.handles = nil
}

// ReadTx reads a single transaction with one tuple-sized random read —
// the access pattern of the layered index's second level (Equation 3),
// as opposed to Block's whole-block transfer (Equations 1 and 2). For a
// compressed record the whole payload is read and inflated first:
// random access within a DEFLATE stream is not possible, which is why
// only cold segments are recompressed.
func (s *Store) ReadTx(height uint64, pos uint32) (*types.Transaction, error) {
	s.mu.RLock()
	if height >= uint64(len(s.locs)) {
		s.mu.RUnlock()
		return nil, ErrNoBlock
	}
	offs := s.txOffs[height]
	s.mu.RUnlock()
	if int(pos)+1 >= len(offs) {
		return nil, fmt.Errorf("storage: block %d has no tx at %d", height, pos)
	}
	start, end := offs[pos], offs[pos+1]
	for range [maxReadRetries]struct{}{} {
		ref, err := s.resolve(height)
		if err != nil {
			return nil, err
		}
		h, stale, err := s.acquireRef(ref)
		if err != nil {
			return nil, err
		}
		if stale {
			continue
		}
		var buf []byte
		if ref.comp {
			body, err := readRecordBody(h.r, ref.loc.Offset, ref.stored, true)
			if err == nil {
				buf = body[start:end]
			} else {
				h.release()
				return nil, err
			}
		} else {
			buf = make([]byte, end-start)
			if _, err := h.r.ReadAt(buf, ref.loc.Offset+headerSize+int64(start)); err != nil {
				h.release()
				return nil, fmt.Errorf("storage: %w", err)
			}
		}
		tier := h.r.Tier()
		h.release()
		mTxReads.Inc()
		mTxBytes.Add(uint64(len(buf)))
		tierCounter(tier).Inc()
		return types.DecodeTransaction(types.NewDecoder(buf))
	}
	return nil, errSegSwapped
}
