package storage

import (
	"crypto/ed25519"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"sebdb/internal/types"
)

var storeKey = ed25519.NewKeyFromSeed(make([]byte, ed25519.SeedSize))

func mkBlock(prev *types.BlockHeader, firstTid uint64, n int) *types.Block {
	txs := make([]*types.Transaction, n)
	for i := range txs {
		txs[i] = &types.Transaction{
			Tid: firstTid + uint64(i), Ts: int64(firstTid) * 10,
			SenID: "org1", Tname: "donate",
			Args: []types.Value{types.Str("Jack"), types.Dec(float64(i))},
		}
	}
	b := types.NewBlock(prev, txs, int64(firstTid)*100, "node0")
	b.Header.Sign(storeKey)
	return b
}

func appendChain(t testing.TB, s *Store, blocks, txPerBlock int) []*types.Block {
	t.Helper()
	var out []*types.Block
	var prev *types.BlockHeader
	tid := uint64(1)
	for i := 0; i < blocks; i++ {
		b := mkBlock(prev, tid, txPerBlock)
		if _, err := s.Append(b); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		prev = &b.Header
		tid += uint64(txPerBlock)
		out = append(out, b)
	}
	return out
}

func TestAppendAndRead(t *testing.T) {
	s, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	blocks := appendChain(t, s, 5, 3)
	if s.Count() != 5 {
		t.Fatalf("Count = %d", s.Count())
	}
	for i, want := range blocks {
		got, err := s.Block(uint64(i))
		if err != nil {
			t.Fatal(err)
		}
		if got.Header.Hash() != want.Header.Hash() {
			t.Errorf("block %d hash mismatch", i)
		}
		if len(got.Txs) != 3 {
			t.Errorf("block %d has %d txs", i, len(got.Txs))
		}
	}
	tip, ok := s.Tip()
	if !ok || tip.Height != 4 {
		t.Errorf("Tip = %+v, %v", tip, ok)
	}
	if ft, _ := s.FirstTid(2); ft != 7 {
		t.Errorf("FirstTid(2) = %d", ft)
	}
	if _, err := s.Block(99); err != ErrNoBlock {
		t.Errorf("missing block err = %v", err)
	}
	if _, err := s.Header(99); err != ErrNoBlock {
		t.Errorf("missing header err = %v", err)
	}
	if _, err := s.FirstTid(99); err != ErrNoBlock {
		t.Errorf("missing FirstTid err = %v", err)
	}
}

func TestLinkageEnforced(t *testing.T) {
	s, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	appendChain(t, s, 2, 2)
	// A block not linked to the tip must be rejected.
	orphan := mkBlock(nil, 100, 1)
	if _, err := s.Append(orphan); err == nil {
		t.Error("unlinked block accepted")
	}
	// A block failing self-validation must be rejected.
	tip, _ := s.Tip()
	bad := mkBlock(&tip, 5, 2)
	bad.Txs[1].Args[1] = types.Dec(777) // break merkle root
	if _, err := s.Append(bad); err == nil {
		t.Error("invalid block accepted")
	}
}

func TestRecoveryAfterReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	blocks := appendChain(t, s, 10, 4)
	s.Close()

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Count() != 10 {
		t.Fatalf("recovered Count = %d", s2.Count())
	}
	got, err := s2.Block(7)
	if err != nil || got.Header.Hash() != blocks[7].Header.Hash() {
		t.Errorf("recovered block 7 mismatch: %v", err)
	}
	// And the chain keeps growing from where it left off.
	tip, _ := s2.Tip()
	next := mkBlock(&tip, 41, 2)
	if _, err := s2.Append(next); err != nil {
		t.Errorf("append after recovery: %v", err)
	}
}

func TestSegmentRolling(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{SegmentSize: 2048})
	if err != nil {
		t.Fatal(err)
	}
	appendChain(t, s, 20, 3)
	s.Close()

	segs, _ := filepath.Glob(filepath.Join(dir, "blocks-*.seg"))
	if len(segs) < 2 {
		t.Fatalf("expected multiple segments, got %d", len(segs))
	}
	s2, err := Open(dir, Options{SegmentSize: 2048})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Count() != 20 {
		t.Errorf("recovered across segments: Count = %d", s2.Count())
	}
	for i := 0; i < 20; i++ {
		if _, err := s2.Block(uint64(i)); err != nil {
			t.Errorf("block %d unreadable after segment roll: %v", i, err)
		}
	}
}

func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendChain(t, s, 3, 2)
	s.Close()

	// Simulate a torn write: append garbage to the last segment.
	path := filepath.Join(dir, "blocks-000000.seg")
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0x5E, 0xBD, 0xB1, 0x0C, 0x00, 0x00, 0x10}) // truncated header
	f.Close()

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("recovery with torn tail: %v", err)
	}
	defer s2.Close()
	if s2.Count() != 3 {
		t.Errorf("Count after torn tail = %d", s2.Count())
	}
	tip, _ := s2.Tip()
	if _, err := s2.Append(mkBlock(&tip, 7, 1)); err != nil {
		t.Errorf("append after torn-tail recovery: %v", err)
	}
}

func TestHeadersCopy(t *testing.T) {
	s, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	appendChain(t, s, 4, 1)
	hs := s.Headers()
	if len(hs) != 4 {
		t.Fatalf("Headers len = %d", len(hs))
	}
	hs[0].Height = 999 // mutating the copy must not affect the store
	h0, _ := s.Header(0)
	if h0.Height != 0 {
		t.Error("Headers returned aliased memory")
	}
}

func TestEmptyStore(t *testing.T) {
	s, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Count() != 0 {
		t.Error("fresh store not empty")
	}
	if _, ok := s.Tip(); ok {
		t.Error("empty store has a tip")
	}
	// Genesis must have height 0.
	bad := mkBlock(nil, 1, 1)
	bad.Header.Height = 3
	if _, err := s.Append(bad); err == nil {
		t.Error("non-zero-height genesis accepted")
	}
}

func TestSyncOption(t *testing.T) {
	s, err := Open(t.TempDir(), Options{Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	appendChain(t, s, 2, 1)
	if s.Count() != 2 {
		t.Error("sync append failed")
	}
}

func TestReadTx(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	blocks := appendChain(t, s, 4, 5)
	for bid, blk := range blocks {
		for pos, want := range blk.Txs {
			got, err := s.ReadTx(uint64(bid), uint32(pos))
			if err != nil {
				t.Fatalf("ReadTx(%d,%d): %v", bid, pos, err)
			}
			if got.Hash() != want.Hash() {
				t.Errorf("ReadTx(%d,%d) returned wrong tx", bid, pos)
			}
		}
	}
	if _, err := s.ReadTx(0, 99); err == nil {
		t.Error("out-of-range pos accepted")
	}
	if _, err := s.ReadTx(99, 0); err != ErrNoBlock {
		t.Errorf("missing block err = %v", err)
	}
	s.Close()

	// Offsets survive recovery.
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got, err := s2.ReadTx(2, 3)
	if err != nil || got.Hash() != blocks[2].Txs[3].Hash() {
		t.Errorf("ReadTx after recovery: %v", err)
	}
}

// TestAppendReopenProperty drives random append/reopen sequences and
// checks every block stays readable with intact content.
func TestAppendReopenProperty(t *testing.T) {
	dir := t.TempDir()
	var all []*types.Block
	var prev *types.BlockHeader
	tid := uint64(1)
	rng := int64(1)
	s, err := Open(dir, Options{SegmentSize: 4096})
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 60; round++ {
		rng = rng*6364136223846793005 + 1442695040888963407
		n := int(uint64(rng)>>60) + 1 // 1..16 txs
		b := mkBlock(prev, tid, n)
		if _, err := s.Append(b); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		prev = &b.Header
		tid += uint64(n)
		all = append(all, b)
		if round%7 == 3 { // periodic crash/reopen
			s.Close()
			if s, err = Open(dir, Options{SegmentSize: 4096}); err != nil {
				t.Fatalf("reopen at %d: %v", round, err)
			}
			tipNow, ok := s.Tip()
			if !ok || tipNow.Hash() != prev.Hash() {
				t.Fatalf("round %d: tip lost across reopen", round)
			}
		}
	}
	defer s.Close()
	if s.Count() != len(all) {
		t.Fatalf("Count = %d, want %d", s.Count(), len(all))
	}
	for i, want := range all {
		got, err := s.Block(uint64(i))
		if err != nil || got.Header.Hash() != want.Header.Hash() {
			t.Fatalf("block %d: %v", i, err)
		}
		for pos := range want.Txs {
			tx, err := s.ReadTx(uint64(i), uint32(pos))
			if err != nil || tx.Hash() != want.Txs[pos].Hash() {
				t.Fatalf("tx %d/%d: %v", i, pos, err)
			}
		}
	}
}

// TestBodyLen checks the stored body length matches the block's actual
// encoding, both freshly appended and after a recovery scan.
func TestBodyLen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{SegmentSize: 4096})
	if err != nil {
		t.Fatal(err)
	}
	blocks := appendChain(t, s, 6, 4)
	check := func(s *Store) {
		t.Helper()
		for i, b := range blocks {
			n, err := s.BodyLen(uint64(i))
			if err != nil {
				t.Fatal(err)
			}
			if want := int64(len(b.EncodeBytes())); n != want {
				t.Fatalf("block %d: BodyLen %d, want %d", i, n, want)
			}
		}
		if _, err := s.BodyLen(uint64(len(blocks))); err == nil {
			t.Fatal("BodyLen past the tip: expected error")
		}
	}
	check(s)
	s.Close()
	if s, err = Open(dir, Options{SegmentSize: 4096}); err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	check(s)
}

// TestBlocksIter checks the snapshot iterator: range clamping, per-
// height positional reads across segment boundaries, and safety under
// concurrent readers.
func TestBlocksIter(t *testing.T) {
	s, err := Open(t.TempDir(), Options{SegmentSize: 2048}) // force several segments
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	blocks := appendChain(t, s, 12, 5)

	it, err := s.Blocks(2, 100) // hi clamps to the chain height
	if err != nil {
		t.Fatal(err)
	}
	if it.Lo() != 2 || it.Hi() != 12 || it.Len() != 10 {
		t.Fatalf("range [%d,%d) len %d, want [2,12) len 10", it.Lo(), it.Hi(), it.Len())
	}
	if _, err := it.Read(1); err == nil {
		t.Fatal("read below lo: expected error")
	}
	if _, err := it.Read(12); err == nil {
		t.Fatal("read at hi: expected error")
	}

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for h := it.Lo(); h < it.Hi(); h++ {
				b, err := it.Read(h)
				if err != nil {
					t.Errorf("read %d: %v", h, err)
					return
				}
				if b.Header.Hash() != blocks[h].Header.Hash() {
					t.Errorf("block %d: hash mismatch", h)
					return
				}
			}
		}()
	}
	wg.Wait()

	// The snapshot must not see blocks appended after it was taken.
	tip := blocks[len(blocks)-1].Header
	next := mkBlock(&tip, 12*5+1, 2)
	if _, err := s.Append(next); err != nil {
		t.Fatal(err)
	}
	if _, err := it.Read(12); err == nil {
		t.Fatal("snapshot saw a block appended after it was taken")
	}

	empty, err := s.Blocks(5, 5)
	if err != nil {
		t.Fatal(err)
	}
	if empty.Len() != 0 {
		t.Fatalf("empty range len %d", empty.Len())
	}
}
