package parallel

import "sebdb/internal/obs"

// Pipeline metrics, reported to the default registry. The package is a
// leaf (no engine handle), so unlike exec it cannot resolve a
// per-chain registry; Ordered is only ever driven by one engine per
// process in practice, and the default registry is what the server
// exposes.
var (
	// mTasks counts produce calls issued, split by path so the
	// sequential degenerate case stays distinguishable.
	mTasksSeq = obs.Default.Counter(`sebdb_parallel_tasks_total{path="seq"}`)
	mTasksPar = obs.Default.Counter(`sebdb_parallel_tasks_total{path="par"}`)
	// mRuns counts Ordered invocations that took the parallel path.
	mRuns = obs.Default.Counter("sebdb_parallel_runs_total")
	// mInflight gauges produce calls currently executing on workers.
	mInflight = obs.Default.Gauge("sebdb_parallel_workers_inflight")
	// mQueueDepth gauges futures issued but not yet consumed — the
	// distance the producers have run ahead of the ordered merge.
	mQueueDepth = obs.Default.Gauge("sebdb_parallel_queue_depth")
	// mMergeStall observes how long the ordered consumer waited for the
	// next index's result to land (microseconds). A hot merge stall
	// means one slow block read is holding back the whole pipeline.
	mMergeStall = obs.Default.Histogram("sebdb_parallel_merge_stall_micros")
)
