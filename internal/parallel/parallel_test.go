package parallel

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

// TestOrderedPreservesOrder checks that consume sees every index in
// order even when workers finish out of order.
func TestOrderedPreservesOrder(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 64} {
		const n = 500
		var got []int
		err := Ordered(workers, n,
			func(i int) (int, error) {
				// Skew the work so later indexes often finish first.
				v := 0
				for k := 0; k < (n-i)*50; k++ {
					v += k
				}
				_ = v
				return i * 2, nil
			},
			func(i, v int) error {
				if v != i*2 {
					return fmt.Errorf("index %d got value %d", i, v)
				}
				got = append(got, v)
				return nil
			})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != n {
			t.Fatalf("workers=%d: consumed %d of %d", workers, len(got), n)
		}
		for i, v := range got {
			if v != i*2 {
				t.Fatalf("workers=%d: out of order at %d: %d", workers, i, v)
			}
		}
	}
}

// TestOrderedLowestErrorWins checks the deterministic error contract:
// the lowest failing index's error is returned and consume saw exactly
// the indexes before it.
func TestOrderedLowestErrorWins(t *testing.T) {
	fail := map[int]bool{7: true, 3: true, 90: true}
	for _, workers := range []int{1, 4, 16} {
		consumed := 0
		err := Ordered(workers, 100,
			func(i int) (int, error) {
				if fail[i] {
					return 0, fmt.Errorf("boom %d", i)
				}
				return i, nil
			},
			func(i, v int) error {
				consumed++
				return nil
			})
		if err == nil || err.Error() != "boom 3" {
			t.Fatalf("workers=%d: got err %v, want boom 3", workers, err)
		}
		if consumed != 3 {
			t.Fatalf("workers=%d: consumed %d indexes, want 3", workers, consumed)
		}
	}
}

// TestOrderedStop checks early termination via the Stop sentinel.
func TestOrderedStop(t *testing.T) {
	for _, workers := range []int{1, 8} {
		var got []int
		err := Ordered(workers, 1000,
			func(i int) (int, error) { return i, nil },
			func(i, v int) error {
				got = append(got, v)
				if len(got) >= 10 {
					return Stop
				}
				return nil
			})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != 10 {
			t.Fatalf("workers=%d: consumed %d, want 10", workers, len(got))
		}
	}
}

// TestOrderedConsumeError checks that a non-Stop consume error is
// returned as-is.
func TestOrderedConsumeError(t *testing.T) {
	want := errors.New("consume failed")
	err := Ordered(4, 50,
		func(i int) (int, error) { return i, nil },
		func(i, v int) error {
			if i == 5 {
				return want
			}
			return nil
		})
	if !errors.Is(err, want) {
		t.Fatalf("got %v, want %v", err, want)
	}
}

// TestOrderedBoundsWorkers checks the pool never runs more than the
// requested number of produce calls at once.
func TestOrderedBoundsWorkers(t *testing.T) {
	const workers = 4
	var inFlight, peak atomic.Int32
	err := Ordered(workers, 200,
		func(i int) (struct{}, error) {
			cur := inFlight.Add(1)
			for {
				p := peak.Load()
				if cur <= p || peak.CompareAndSwap(p, cur) {
					break
				}
			}
			inFlight.Add(-1)
			return struct{}{}, nil
		},
		func(int, struct{}) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("peak concurrency %d exceeds bound %d", p, workers)
	}
}

// TestOrderedEmpty checks the degenerate sizes.
func TestOrderedEmpty(t *testing.T) {
	called := false
	err := Ordered(8, 0,
		func(i int) (int, error) { called = true; return 0, nil },
		func(int, int) error { called = true; return nil })
	if err != nil || called {
		t.Fatalf("empty run: err=%v called=%v", err, called)
	}
}
