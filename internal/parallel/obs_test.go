package parallel

import (
	"bytes"
	"sync"
	"testing"

	"sebdb/internal/obs"
)

// TestOrderedObsCounters checks the task counters the package reports
// against a run of known size on each path.
func TestOrderedObsCounters(t *testing.T) {
	before := mTasksSeq.Value()
	if err := Ordered(1, 7,
		func(i int) (int, error) { return i, nil },
		func(int, int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if got := mTasksSeq.Value() - before; got != 7 {
		t.Errorf("sequential tasks += %d, want 7", got)
	}

	beforePar, beforeRuns := mTasksPar.Value(), mRuns.Value()
	if err := Ordered(4, 9,
		func(i int) (int, error) { return i, nil },
		func(int, int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if got := mTasksPar.Value() - beforePar; got != 9 {
		t.Errorf("parallel tasks += %d, want 9", got)
	}
	if got := mRuns.Value() - beforeRuns; got != 1 {
		t.Errorf("runs += %d, want 1", got)
	}
	if got := mInflight.Value(); got != 0 {
		t.Errorf("inflight gauge = %d after run, want 0", got)
	}
	if got := mQueueDepth.Value(); got != 0 {
		t.Errorf("queue depth gauge = %d after run, want 0", got)
	}
}

// TestOrderedScrapeDuringRun scrapes obs.Default while parallel runs
// write counters, gauges and the merge-stall histogram; under -race
// this pins that instrumentation never tears the read pipeline.
func TestOrderedScrapeDuringRun(t *testing.T) {
	stop := make(chan struct{})
	scraped := make(chan struct{})
	go func() {
		defer close(scraped)
		for {
			select {
			case <-stop:
				return
			default:
			}
			var buf bytes.Buffer
			if err := obs.Default.WritePrometheus(&buf); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sum := 0
			err := Ordered(4, 200,
				func(i int) (int, error) { return i, nil },
				func(_, v int) error { sum += v; return nil })
			if err != nil {
				t.Error(err)
			}
			if want := 199 * 200 / 2; sum != want {
				t.Errorf("sum = %d, want %d", sum, want)
			}
		}()
	}
	wg.Wait()
	close(stop)
	<-scraped
}
