// Package parallel provides the bounded-worker, order-preserving
// fan-out primitive behind SEBDB's read pipeline. The paper's cost
// model (§VII, Equations 1-3) is dominated by how fast blocks and
// tuples come off disk; the block files are immutable once written, so
// independent block reads can proceed concurrently as long as the
// consumers that build chain state (indexes, result sets, statistics)
// still observe them in height order. Ordered encodes exactly that
// contract: produce in parallel, consume sequentially in index order.
package parallel

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"

	"sebdb/internal/obs"
)

// Stop is returned by a consume callback to end an Ordered run early
// without reporting an error (e.g. a sampler that has enough values).
// Outstanding produce calls are cancelled best-effort.
var Stop = errors.New("parallel: stop")

// errCanceled marks results of produce calls skipped after a stop; it
// never escapes Ordered.
var errCanceled = errors.New("parallel: canceled")

// Default is the default worker bound: the runtime's GOMAXPROCS.
func Default() int { return runtime.GOMAXPROCS(0) }

// Ordered runs produce(0..n-1) on up to workers goroutines and feeds
// every result to consume on the calling goroutine in index order, so
// consumers that require sequential input (chain-order merges, index
// appends, deterministic statistics) need no locking of their own.
//
// Error semantics are deterministic regardless of scheduling: the
// error of the lowest failing index is returned, and consume sees
// exactly the results of the indexes before it. A consume error stops
// the run the same way; returning Stop stops it with a nil error.
// workers <= 1 degenerates to a plain sequential loop.
func Ordered[T any](workers, n int, produce func(i int) (T, error), consume func(i int, v T) error) error {
	if n <= 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			mTasksSeq.Inc()
			v, err := produce(i)
			if err != nil {
				return err
			}
			if err := consume(i, v); err != nil {
				if errors.Is(err, Stop) {
					return nil
				}
				return err
			}
		}
		return nil
	}

	type result struct {
		v   T
		err error
	}
	mRuns.Inc()
	var stop atomic.Bool
	// futures carries one buffered channel per index, in index order;
	// the buffer lets workers complete out of order without blocking.
	futures := make(chan chan result, workers)
	go func() {
		defer close(futures)
		sem := make(chan struct{}, workers)
		var wg sync.WaitGroup
		for i := 0; i < n && !stop.Load(); i++ {
			fut := make(chan result, 1)
			mQueueDepth.Add(1)
			futures <- fut
			sem <- struct{}{}
			wg.Add(1)
			go func(i int, fut chan result) {
				defer wg.Done()
				defer func() { <-sem }()
				if stop.Load() {
					var zero T
					fut <- result{zero, errCanceled}
					return
				}
				mTasksPar.Inc()
				mInflight.Add(1)
				v, err := produce(i)
				mInflight.Add(-1)
				fut <- result{v, err}
			}(i, fut)
		}
		wg.Wait()
	}()

	var first error
	i := 0
	for fut := range futures {
		waitStart := obs.Default.Now()
		r := <-fut
		mMergeStall.Observe(obs.Default.Now() - waitStart)
		mQueueDepth.Add(-1)
		switch {
		case first != nil:
			// Draining after a failure or stop; results are dropped.
		case r.err != nil:
			first = r.err
			stop.Store(true)
		default:
			if err := consume(i, r.v); err != nil {
				first = err
				stop.Store(true)
			}
		}
		i++
	}
	if errors.Is(first, Stop) {
		return nil
	}
	return first
}
