package types

import (
	"testing"
)

func sampleBlock(t testing.TB, prev *BlockHeader, firstTid uint64, n int) *Block {
	t.Helper()
	txs := make([]*Transaction, n)
	for i := range txs {
		txs[i] = sampleTx(firstTid + uint64(i))
	}
	b := NewBlock(prev, txs, 5_000_000, "node0")
	b.Header.Sign(testKey(t))
	return b
}

func TestBlockRoundTrip(t *testing.T) {
	b := sampleBlock(t, nil, 1, 5)
	got, err := DecodeBlock(NewDecoder(b.EncodeBytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Header.Hash() != b.Header.Hash() {
		t.Error("header hash changed across round-trip")
	}
	if len(got.Txs) != 5 || got.Txs[4].Tid != 5 {
		t.Errorf("txs mismatch: %d", len(got.Txs))
	}
	if err := got.Validate(); err != nil {
		t.Errorf("decoded block invalid: %v", err)
	}
	if !got.Header.VerifySig() {
		t.Error("packager signature must survive round-trip")
	}
}

func TestBlockChainLinkage(t *testing.T) {
	b0 := sampleBlock(t, nil, 1, 3)
	b1 := sampleBlock(t, &b0.Header, 4, 3)
	if b1.Header.Height != 1 {
		t.Errorf("height = %d", b1.Header.Height)
	}
	if b1.Header.PrevHash != b0.Header.Hash() {
		t.Error("prev hash not linked")
	}
}

func TestBlockValidateDetectsTampering(t *testing.T) {
	b := sampleBlock(t, nil, 1, 4)
	if err := b.Validate(); err != nil {
		t.Fatalf("fresh block invalid: %v", err)
	}

	tamper := func(mutate func(*Block)) error {
		c, err := DecodeBlock(NewDecoder(b.EncodeBytes()))
		if err != nil {
			t.Fatal(err)
		}
		mutate(c)
		return c.Validate()
	}

	if err := tamper(func(c *Block) { c.Txs[2].Args[2] = Dec(9999) }); err == nil {
		t.Error("modified tx payload must break merkle root")
	}
	if err := tamper(func(c *Block) { c.Txs = c.Txs[:3]; c.Header.TxCount = 4 }); err == nil {
		t.Error("dropped tx must be detected")
	}
	if err := tamper(func(c *Block) { c.Txs[0].Tid = 99 }); err == nil {
		t.Error("first tid mismatch must be detected")
	}
	if err := tamper(func(c *Block) { c.Txs[1].Tid = c.Txs[0].Tid }); err == nil {
		t.Error("non-increasing tids must be detected")
	}
	if err := tamper(func(c *Block) { c.Txs[0], c.Txs[1] = c.Txs[1], c.Txs[0] }); err == nil {
		t.Error("reordered txs must be detected")
	}
}

func TestEmptyBlock(t *testing.T) {
	b := NewBlock(nil, nil, 1, "node0")
	if err := b.Validate(); err != nil {
		t.Errorf("empty block should be valid: %v", err)
	}
	got, err := DecodeBlock(NewDecoder(b.EncodeBytes()))
	if err != nil || len(got.Txs) != 0 {
		t.Errorf("empty block round-trip: %v", err)
	}
}

func TestHeaderSigVerifyRejectsTamper(t *testing.T) {
	b := sampleBlock(t, nil, 1, 2)
	h := b.Header
	h.Timestamp++
	if h.VerifySig() {
		t.Error("tampered header must not verify")
	}
}

func TestDecodeBlockCorrupt(t *testing.T) {
	b := sampleBlock(t, nil, 1, 3)
	raw := b.EncodeBytes()
	for _, cut := range []int{0, 10, len(raw) / 2, len(raw) - 1} {
		if _, err := DecodeBlock(NewDecoder(raw[:cut])); err == nil {
			t.Errorf("truncated block at %d decoded without error", cut)
		}
	}
}
