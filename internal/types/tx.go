package types

import (
	"crypto/ed25519"
	"crypto/sha256"
	"errors"
	"fmt"
)

// Hash is the 32-byte SHA-256 digest used throughout SEBDB.
type Hash = [32]byte

// Transaction is one on-chain tuple. Following the paper (§IV-A), every
// transaction carries the system-level attributes Tid, Ts, Sig, SenID
// and Tname, plus the application-level attributes of its table's
// schema, in schema order.
type Transaction struct {
	// Tid is the globally unique, monotonically increasing transaction id
	// assigned when the transaction is ordered into a block.
	Tid uint64
	// Ts is the time the transaction was sent, in Unix microseconds.
	Ts int64
	// SenID identifies the sender (a participant of the consortium).
	SenID string
	// Tname is the transaction type, i.e. the table the tuple belongs to.
	Tname string
	// Sig is the sender's ed25519 signature over SigningBytes.
	Sig []byte
	// PubKey is the sender's ed25519 public key. In a deployed consortium
	// the key would be looked up in a membership registry; carrying it in
	// the transaction keeps verification self-contained.
	PubKey []byte
	// Args holds the application-level attribute values in schema order.
	Args []Value

	// enc caches the canonical encoding computed by Seal, with the
	// (Tid, Ts) it was computed for. Those are the two fields legitimately
	// mutated after construction (Tid assignment at commit, loaders
	// re-stamping Ts), so a stale cache is detected by comparing them;
	// mutating any other field after Seal is a bug. Only Seal writes
	// these fields — EncodeBytes merely reads them — so sealed
	// transactions can be encoded from many goroutines at once.
	enc    []byte
	encTid uint64
	encTs  int64
}

// SigningBytes is the deterministic encoding the sender signs: all
// fields except Tid (assigned post-ordering) and the signature itself.
func (t *Transaction) SigningBytes() []byte {
	e := NewEncoder(64 + 16*len(t.Args))
	e.Int64(t.Ts)
	e.Str(t.SenID)
	e.Str(t.Tname)
	e.Blob(t.PubKey)
	e.Values(t.Args)
	return e.Bytes()
}

// Sign signs the transaction with the given private key and records the
// matching public key.
func (t *Transaction) Sign(priv ed25519.PrivateKey) {
	t.PubKey = append([]byte(nil), priv.Public().(ed25519.PublicKey)...)
	t.Sig = ed25519.Sign(priv, t.SigningBytes())
}

// VerifySig checks the sender signature. Transactions created before a
// key was configured (e.g. genesis/schema bootstrap) carry no signature
// and fail verification.
func (t *Transaction) VerifySig() bool {
	if len(t.PubKey) != ed25519.PublicKeySize || len(t.Sig) != ed25519.SignatureSize {
		return false
	}
	return ed25519.Verify(ed25519.PublicKey(t.PubKey), t.SigningBytes(), t.Sig)
}

// Encode serialises the full transaction including Tid and signature.
func (t *Transaction) Encode(e *Encoder) {
	e.Uint64(t.Tid)
	e.Int64(t.Ts)
	e.Str(t.SenID)
	e.Str(t.Tname)
	e.Blob(t.Sig)
	e.Blob(t.PubKey)
	e.Values(t.Args)
}

// EncodeBytes returns the transaction's canonical encoding: the bytes
// cached by a prior Seal when still current, a fresh encoding otherwise.
// The returned slice may alias the seal cache and must not be modified.
func (t *Transaction) EncodeBytes() []byte {
	if t.enc != nil && t.encTid == t.Tid && t.encTs == t.Ts {
		return t.enc
	}
	e := NewEncoder(96 + 16*len(t.Args))
	t.Encode(e)
	return e.Bytes()
}

// Seal computes, caches and returns the canonical encoding. The commit
// pipeline seals every transaction exactly once in its prepare stage —
// after Tid assignment, fanned out over the worker pool — so Merkle
// leaf hashing, block encoding and ALI record extraction all reuse one
// buffer instead of each re-encoding the transaction. Seal is not safe
// for concurrent use on the same transaction; once sealed, concurrent
// EncodeBytes calls are.
func (t *Transaction) Seal() []byte {
	if t.enc != nil && t.encTid == t.Tid && t.encTs == t.Ts {
		return t.enc
	}
	e := NewEncoder(96 + 16*len(t.Args))
	t.Encode(e)
	t.enc, t.encTid, t.encTs = e.Bytes(), t.Tid, t.Ts
	return t.enc
}

// DecodeTransaction reads one transaction from d.
func DecodeTransaction(d *Decoder) (*Transaction, error) {
	t := &Transaction{}
	var err error
	if t.Tid, err = d.Uint64(); err != nil {
		return nil, err
	}
	if t.Ts, err = d.Int64(); err != nil {
		return nil, err
	}
	if t.SenID, err = d.Str(); err != nil {
		return nil, err
	}
	if t.Tname, err = d.Str(); err != nil {
		return nil, err
	}
	if t.Sig, err = d.Blob(); err != nil {
		return nil, err
	}
	if t.PubKey, err = d.Blob(); err != nil {
		return nil, err
	}
	if t.Args, err = d.Values(); err != nil {
		return nil, err
	}
	return t, nil
}

// Hash returns the SHA-256 digest of the encoded transaction; it is the
// leaf value of the block's Merkle tree.
func (t *Transaction) Hash() Hash {
	return sha256.Sum256(t.EncodeBytes())
}

// Size returns the encoded size in bytes, used by the block packager to
// respect the configured block size.
func (t *Transaction) Size() int { return len(t.EncodeBytes()) }

// SystemColumns are the names of the system-level attributes every
// SEBDB table implicitly starts with (paper §III-A/IV-A).
var SystemColumns = []string{"tid", "ts", "senid", "tname"}

// SystemColumnKind returns the kind of a system-level column, or an
// error if name is not a system column.
func SystemColumnKind(name string) (Kind, error) {
	switch name {
	case "tid":
		return KindInt, nil
	case "ts":
		return KindTimestamp, nil
	case "senid", "tname":
		return KindString, nil
	default:
		return KindNull, fmt.Errorf("types: %q is not a system column", name)
	}
}

// SystemValue extracts the value of a system-level column from t.
func (t *Transaction) SystemValue(name string) (Value, error) {
	switch name {
	case "tid":
		return Int(int64(t.Tid)), nil
	case "ts":
		return Time(t.Ts), nil
	case "senid":
		return Str(t.SenID), nil
	case "tname":
		return Str(t.Tname), nil
	default:
		return Null, fmt.Errorf("types: %q is not a system column", name)
	}
}

// ErrNoColumn is returned by Column for an out-of-range index.
var ErrNoColumn = errors.New("types: column index out of range")

// Column returns the i-th application-level attribute.
func (t *Transaction) Column(i int) (Value, error) {
	if i < 0 || i >= len(t.Args) {
		return Null, ErrNoColumn
	}
	return t.Args[i], nil
}
