package types

import (
	"crypto/ed25519"
	"testing"
)

func testKey(t testing.TB) ed25519.PrivateKey {
	t.Helper()
	seed := make([]byte, ed25519.SeedSize)
	for i := range seed {
		seed[i] = byte(i * 7)
	}
	return ed25519.NewKeyFromSeed(seed)
}

func sampleTx(tid uint64) *Transaction {
	return &Transaction{
		Tid:   tid,
		Ts:    int64(1000 + tid),
		SenID: "org1",
		Tname: "donate",
		Args:  []Value{Str("Jack"), Str("Education"), Dec(100)},
	}
}

func TestTransactionSignVerify(t *testing.T) {
	tx := sampleTx(1)
	if tx.VerifySig() {
		t.Error("unsigned tx must not verify")
	}
	tx.Sign(testKey(t))
	if !tx.VerifySig() {
		t.Error("signed tx must verify")
	}
	tx.Args[2] = Dec(1e6) // tamper
	if tx.VerifySig() {
		t.Error("tampered tx must not verify")
	}
}

func TestTransactionEncodeDecode(t *testing.T) {
	tx := sampleTx(42)
	tx.Sign(testKey(t))
	got, err := DecodeTransaction(NewDecoder(tx.EncodeBytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Tid != tx.Tid || got.Ts != tx.Ts || got.SenID != tx.SenID || got.Tname != tx.Tname {
		t.Errorf("system fields mismatch: %+v", got)
	}
	if len(got.Args) != 3 || got.Args[0] != Str("Jack") || got.Args[2] != Dec(100) {
		t.Errorf("args mismatch: %v", got.Args)
	}
	if !got.VerifySig() {
		t.Error("decoded tx must still verify")
	}
	if got.Hash() != tx.Hash() {
		t.Error("hash must survive round-trip")
	}
}

func TestTransactionHashChangesWithTid(t *testing.T) {
	a, b := sampleTx(1), sampleTx(2)
	if a.Hash() == b.Hash() {
		t.Error("different tids must hash differently")
	}
}

func TestTransactionSize(t *testing.T) {
	tx := sampleTx(1)
	if tx.Size() != len(tx.EncodeBytes()) {
		t.Error("Size must match encoding length")
	}
}

func TestSystemColumns(t *testing.T) {
	tx := sampleTx(9)
	for _, c := range SystemColumns {
		if _, err := SystemColumnKind(c); err != nil {
			t.Errorf("SystemColumnKind(%q): %v", c, err)
		}
		if _, err := tx.SystemValue(c); err != nil {
			t.Errorf("SystemValue(%q): %v", c, err)
		}
	}
	if v, _ := tx.SystemValue("tid"); v != Int(9) {
		t.Errorf("tid = %v", v)
	}
	if v, _ := tx.SystemValue("senid"); v != Str("org1") {
		t.Errorf("senid = %v", v)
	}
	if v, _ := tx.SystemValue("tname"); v != Str("donate") {
		t.Errorf("tname = %v", v)
	}
	if v, _ := tx.SystemValue("ts"); v != Time(1009) {
		t.Errorf("ts = %v", v)
	}
	if _, err := tx.SystemValue("nope"); err == nil {
		t.Error("unknown system column should error")
	}
	if _, err := SystemColumnKind("nope"); err == nil {
		t.Error("unknown system column kind should error")
	}
}

func TestColumn(t *testing.T) {
	tx := sampleTx(1)
	v, err := tx.Column(1)
	if err != nil || v != Str("Education") {
		t.Errorf("Column(1) = %v, %v", v, err)
	}
	if _, err := tx.Column(-1); err == nil {
		t.Error("negative index should error")
	}
	if _, err := tx.Column(3); err == nil {
		t.Error("out of range index should error")
	}
}
