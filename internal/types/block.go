package types

import (
	"crypto/ed25519"
	"crypto/sha256"
	"fmt"

	"sebdb/internal/merkle"
	"sebdb/internal/parallel"
)

// BlockHeader is the metadata of a block (paper §IV-A, Fig. 3). Thin
// clients store only headers.
type BlockHeader struct {
	// PrevHash is the hash of the previous block; zero for genesis.
	PrevHash Hash
	// Height is the number of blocks preceding this one (genesis = 0).
	Height uint64
	// Timestamp is the packaging time in Unix microseconds.
	Timestamp int64
	// TransRoot is the Merkle root over the block's transactions.
	TransRoot Hash
	// FirstTid is the Tid of the first transaction in the block. The
	// paper's block-level B+-tree keys blocks by (bid, tid, Ts); carrying
	// the first tid in the header makes the index rebuildable from
	// headers alone.
	FirstTid uint64
	// TxCount is the number of transactions in the body.
	TxCount uint32
	// Signer identifies the packager of the block.
	Signer string
	// Signature is the packager's ed25519 signature over HashContent.
	Signature []byte
	// SignerKey is the packager's public key.
	SignerKey []byte
}

// hashContent is the deterministic encoding the block hash and packager
// signature are computed over (everything except the signature).
func (h *BlockHeader) hashContent() []byte {
	e := NewEncoder(160)
	e.Bytes32(h.PrevHash)
	e.Uint64(h.Height)
	e.Int64(h.Timestamp)
	e.Bytes32(h.TransRoot)
	e.Uint64(h.FirstTid)
	e.Uint32(h.TxCount)
	e.Str(h.Signer)
	e.Blob(h.SignerKey)
	return e.Bytes()
}

// Hash returns the block hash: SHA-256 over the header content.
func (h *BlockHeader) Hash() Hash {
	return sha256.Sum256(h.hashContent())
}

// Sign signs the header as its packager.
func (h *BlockHeader) Sign(priv ed25519.PrivateKey) {
	h.SignerKey = append([]byte(nil), priv.Public().(ed25519.PublicKey)...)
	h.Signature = ed25519.Sign(priv, h.hashContent())
}

// VerifySig checks the packager signature.
func (h *BlockHeader) VerifySig() bool {
	if len(h.SignerKey) != ed25519.PublicKeySize || len(h.Signature) != ed25519.SignatureSize {
		return false
	}
	return ed25519.Verify(ed25519.PublicKey(h.SignerKey), h.hashContent(), h.Signature)
}

// Encode serialises the header.
func (h *BlockHeader) Encode(e *Encoder) {
	e.Bytes32(h.PrevHash)
	e.Uint64(h.Height)
	e.Int64(h.Timestamp)
	e.Bytes32(h.TransRoot)
	e.Uint64(h.FirstTid)
	e.Uint32(h.TxCount)
	e.Str(h.Signer)
	e.Blob(h.Signature)
	e.Blob(h.SignerKey)
}

// DecodeBlockHeader reads a header from d.
func DecodeBlockHeader(d *Decoder) (BlockHeader, error) {
	var h BlockHeader
	var err error
	if h.PrevHash, err = d.Bytes32(); err != nil {
		return h, err
	}
	if h.Height, err = d.Uint64(); err != nil {
		return h, err
	}
	if h.Timestamp, err = d.Int64(); err != nil {
		return h, err
	}
	if h.TransRoot, err = d.Bytes32(); err != nil {
		return h, err
	}
	if h.FirstTid, err = d.Uint64(); err != nil {
		return h, err
	}
	if h.TxCount, err = d.Uint32(); err != nil {
		return h, err
	}
	if h.Signer, err = d.Str(); err != nil {
		return h, err
	}
	if h.Signature, err = d.Blob(); err != nil {
		return h, err
	}
	if h.SignerKey, err = d.Blob(); err != nil {
		return h, err
	}
	return h, nil
}

// Block is one unit of the chain: a header plus the ordered transactions
// it commits.
type Block struct {
	Header BlockHeader
	Txs    []*Transaction
}

// TxLeaves returns the Merkle leaf digests of the block's transactions.
func TxLeaves(txs []*Transaction) []Hash {
	leaves := make([]Hash, len(txs))
	for i, t := range txs {
		leaves[i] = merkle.HashLeaf(t.EncodeBytes())
	}
	return leaves
}

// TxLeavesWorkers computes TxLeaves with the per-transaction encode and
// leaf hash fanned out over up to workers goroutines. Every transaction
// is Sealed as a side effect, so downstream consumers of the same batch
// (block encoding, ALI record extraction) reuse the cached bytes. The
// result is identical to TxLeaves; workers <= 1 runs sequentially
// (still sealing).
func TxLeavesWorkers(txs []*Transaction, workers int) []Hash {
	leaves := make([]Hash, len(txs))
	if workers <= 1 || len(txs) < 2 {
		for i, t := range txs {
			leaves[i] = merkle.HashLeaf(t.Seal())
		}
		return leaves
	}
	chunk := (len(txs) + workers - 1) / workers
	nchunks := (len(txs) + chunk - 1) / chunk
	// Chunks write disjoint ranges of leaves, so no consume step is
	// needed; errors are impossible.
	_ = parallel.Ordered(workers, nchunks, //sebdb:ignore-err tasks always return nil; chunks write leaves in place
		func(c int) (struct{}, error) {
			for i := c * chunk; i < len(txs) && i < (c+1)*chunk; i++ {
				leaves[i] = merkle.HashLeaf(txs[i].Seal())
			}
			return struct{}{}, nil
		},
		func(int, struct{}) error { return nil })
	return leaves
}

// NewBlock assembles (but does not sign) a block on top of prev with the
// given ordered transactions. prev may be nil for the genesis block.
func NewBlock(prev *BlockHeader, txs []*Transaction, timestamp int64, signer string) *Block {
	return NewBlockFromRoot(prev, txs, merkle.Root(TxLeaves(txs)), timestamp, signer)
}

// NewBlockFromRoot assembles a block whose Merkle root the caller
// already computed — the commit pipeline hashes the leaves in parallel
// with TxLeavesWorkers and reduces them with merkle.RootWorkers.
// NewBlock is equivalent to NewBlockFromRoot with
// merkle.Root(TxLeaves(txs)).
func NewBlockFromRoot(prev *BlockHeader, txs []*Transaction, root Hash, timestamp int64, signer string) *Block {
	h := BlockHeader{
		Timestamp: timestamp,
		TransRoot: root,
		TxCount:   uint32(len(txs)),
		Signer:    signer,
	}
	if prev != nil {
		h.PrevHash = prev.Hash()
		h.Height = prev.Height + 1
	}
	if len(txs) > 0 {
		h.FirstTid = txs[0].Tid
	}
	return &Block{Header: h, Txs: txs}
}

// Encode serialises the full block (header + body). Transactions sealed
// by the commit pipeline contribute their cached encoding; the bytes
// are identical either way.
func (b *Block) Encode(e *Encoder) {
	b.Header.Encode(e)
	e.Count(len(b.Txs))
	for _, t := range b.Txs {
		if t.enc != nil && t.encTid == t.Tid && t.encTs == t.Ts {
			e.Raw(t.enc)
		} else {
			t.Encode(e)
		}
	}
}

// EncodeBytes is a convenience wrapper around Encode.
func (b *Block) EncodeBytes() []byte {
	e := NewEncoder(256 + 350*len(b.Txs))
	b.Encode(e)
	return e.Bytes()
}

// DecodeBlock reads a full block from d.
func DecodeBlock(d *Decoder) (*Block, error) {
	h, err := DecodeBlockHeader(d)
	if err != nil {
		return nil, err
	}
	n, err := d.Uint32()
	if err != nil {
		return nil, err
	}
	if int(n) > d.Remaining() {
		return nil, ErrCorrupt
	}
	b := &Block{Header: h, Txs: make([]*Transaction, n)}
	for i := range b.Txs {
		if b.Txs[i], err = DecodeTransaction(d); err != nil {
			return nil, err
		}
	}
	return b, nil
}

// Validate checks the block's internal consistency: the declared
// transaction count, first Tid, Merkle root, and the monotonicity of
// transaction ids. It does not check chain linkage (the store does) or
// signatures (membership policy decides which signers are acceptable).
func (b *Block) Validate() error {
	if int(b.Header.TxCount) != len(b.Txs) {
		return fmt.Errorf("types: block %d declares %d txs, has %d",
			b.Header.Height, b.Header.TxCount, len(b.Txs))
	}
	if len(b.Txs) > 0 && b.Header.FirstTid != b.Txs[0].Tid {
		return fmt.Errorf("types: block %d first tid mismatch", b.Header.Height)
	}
	for i := 1; i < len(b.Txs); i++ {
		if b.Txs[i].Tid <= b.Txs[i-1].Tid {
			return fmt.Errorf("types: block %d tids not increasing at %d", b.Header.Height, i)
		}
	}
	if merkle.Root(TxLeaves(b.Txs)) != b.Header.TransRoot {
		return fmt.Errorf("types: block %d merkle root mismatch", b.Header.Height)
	}
	return nil
}

// ValidateWorkers is Validate with the Merkle-root recomputation — the
// dominant cost on large blocks — fanned out over up to workers
// goroutines. The outcome is identical to Validate; the commit
// pipeline's prepare stage uses it so foreign blocks are verified off
// the engine lock.
func (b *Block) ValidateWorkers(workers int) error {
	if int(b.Header.TxCount) != len(b.Txs) {
		return fmt.Errorf("types: block %d declares %d txs, has %d",
			b.Header.Height, b.Header.TxCount, len(b.Txs))
	}
	if len(b.Txs) > 0 && b.Header.FirstTid != b.Txs[0].Tid {
		return fmt.Errorf("types: block %d first tid mismatch", b.Header.Height)
	}
	for i := 1; i < len(b.Txs); i++ {
		if b.Txs[i].Tid <= b.Txs[i-1].Tid {
			return fmt.Errorf("types: block %d tids not increasing at %d", b.Header.Height, i)
		}
	}
	if merkle.RootWorkers(TxLeavesWorkers(b.Txs, workers), workers) != b.Header.TransRoot {
		return fmt.Errorf("types: block %d merkle root mismatch", b.Header.Height)
	}
	return nil
}
