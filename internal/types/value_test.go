package types

import (
	"math"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindNull: "null", KindString: "string", KindInt: "int",
		KindDecimal: "decimal", KindBool: "bool", KindTimestamp: "timestamp",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
	if got := Kind(99).String(); got != "kind(99)" {
		t.Errorf("unknown kind rendered as %q", got)
	}
}

func TestParseKind(t *testing.T) {
	for name, want := range map[string]Kind{
		"string": KindString, "VARCHAR": KindString, "text": KindString,
		"int": KindInt, "Integer": KindInt, "bigint": KindInt,
		"decimal": KindDecimal, "FLOAT": KindDecimal, "double": KindDecimal,
		"bool": KindBool, "timestamp": KindTimestamp, "datetime": KindTimestamp,
	} {
		got, err := ParseKind(name)
		if err != nil || got != want {
			t.Errorf("ParseKind(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := ParseKind("blob"); err == nil {
		t.Error("ParseKind(blob) should fail")
	}
}

func TestValueConstructorsAndString(t *testing.T) {
	if s := Str("abc").String(); s != "abc" {
		t.Errorf("Str = %q", s)
	}
	if s := Int(-42).String(); s != "-42" {
		t.Errorf("Int = %q", s)
	}
	if s := Dec(3.5).String(); s != "3.5" {
		t.Errorf("Dec = %q", s)
	}
	if s := Bool(true).String(); s != "true" {
		t.Errorf("Bool(true) = %q", s)
	}
	if s := Bool(false).String(); s != "false" {
		t.Errorf("Bool(false) = %q", s)
	}
	if s := Null.String(); s != "NULL" {
		t.Errorf("Null = %q", s)
	}
	if s := Time(123).String(); s != "123" {
		t.Errorf("Time = %q", s)
	}
	if !Null.IsNull() || Str("x").IsNull() {
		t.Error("IsNull misbehaves")
	}
	if !Bool(true).AsBool() || Bool(false).AsBool() || Int(1).AsBool() {
		t.Error("AsBool misbehaves")
	}
}

func TestCompareOrdering(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{Null, Null, 0},
		{Null, Int(0), -1},
		{Int(0), Null, 1},
		{Int(1), Int(2), -1},
		{Int(2), Int(1), 1},
		{Int(7), Int(7), 0},
		{Int(3), Dec(3.0), 0},  // cross-kind numeric equality
		{Dec(2.5), Int(3), -1}, // cross-kind numeric order
		{Time(5), Int(5), 0},   // timestamps are numeric
		{Str("a"), Str("b"), -1},
		{Str("b"), Str("a"), 1},
		{Str("a"), Str("a"), 0},
		{Bool(false), Bool(true), -1},
	}
	for _, c := range cases {
		got := Compare(c.a, c.b)
		if sign(got) != c.want {
			t.Errorf("Compare(%v, %v) = %d, want sign %d", c.a, c.b, got, c.want)
		}
	}
	if !Equal(Int(3), Dec(3)) || Equal(Int(3), Int(4)) {
		t.Error("Equal misbehaves")
	}
}

func sign(x int) int {
	switch {
	case x < 0:
		return -1
	case x > 0:
		return 1
	}
	return 0
}

func TestCompareIsTotalOrder(t *testing.T) {
	// Antisymmetry property over random value pairs.
	f := func(ai, bi int64, as, bs string, pick uint8) bool {
		mk := func(which uint8, i int64, s string) Value {
			switch which % 5 {
			case 0:
				return Int(i)
			case 1:
				return Dec(float64(i) / 3)
			case 2:
				return Str(s)
			case 3:
				return Bool(i%2 == 0)
			default:
				return Time(i)
			}
		}
		a := mk(pick, ai, as)
		b := mk(pick>>4, bi, bs)
		return sign(Compare(a, b)) == -sign(Compare(b, a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFloatAndNumeric(t *testing.T) {
	if Int(4).Float() != 4 || Dec(2.5).Float() != 2.5 || Time(9).Float() != 9 {
		t.Error("Float conversions wrong")
	}
	if !math.IsNaN(Str("x").Float()) || !math.IsNaN(Null.Float()) {
		t.Error("non-numeric Float should be NaN")
	}
	if !Int(1).Numeric() || !Dec(1).Numeric() || !Time(1).Numeric() {
		t.Error("numeric kinds misreported")
	}
	if Str("x").Numeric() || Bool(true).Numeric() || Null.Numeric() {
		t.Error("non-numeric kinds misreported")
	}
}

func TestCoerce(t *testing.T) {
	v, err := Coerce(Int(5), KindDecimal)
	if err != nil || v.Kind != KindDecimal || v.F != 5 {
		t.Errorf("int→decimal: %v, %v", v, err)
	}
	v, err = Coerce(Dec(7), KindInt)
	if err != nil || v.I != 7 {
		t.Errorf("whole decimal→int: %v, %v", v, err)
	}
	if _, err = Coerce(Dec(7.5), KindInt); err == nil {
		t.Error("fractional decimal→int should fail")
	}
	v, err = Coerce(Str("12"), KindInt)
	if err != nil || v.I != 12 {
		t.Errorf("string→int: %v, %v", v, err)
	}
	v, err = Coerce(Str("1.5"), KindDecimal)
	if err != nil || v.F != 1.5 {
		t.Errorf("string→decimal: %v, %v", v, err)
	}
	if _, err = Coerce(Str("xyz"), KindInt); err == nil {
		t.Error("garbage string→int should fail")
	}
	if _, err = Coerce(Bool(true), KindString); err == nil {
		t.Error("bool→string should fail")
	}
	v, err = Coerce(Null, KindInt)
	if err != nil || !v.IsNull() {
		t.Error("null coerces to anything, stays null")
	}
	v, err = Coerce(Int(99), KindTimestamp)
	if err != nil || v.Kind != KindTimestamp || v.I != 99 {
		t.Errorf("int→timestamp: %v, %v", v, err)
	}
}
