package types

import (
	"math/rand"
	"testing"
)

// TestDecodersNeverPanic feeds random byte soup to every decoder: they
// must return errors, not panic or allocate absurdly.
func TestDecodersNeverPanic(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 5000; i++ {
		n := rng.Intn(200)
		buf := make([]byte, n)
		rng.Read(buf)
		d := NewDecoder(buf)
		switch i % 4 {
		case 0:
			_, _ = DecodeTransaction(d)
		case 1:
			_, _ = DecodeBlock(d)
		case 2:
			_, _ = DecodeBlockHeader(d)
		case 3:
			_, _ = d.Values()
		}
	}
}

// TestDecodeMutatedValidBlock flips random bytes in a valid encoding;
// the decoder either errors or yields a block that fails validation or
// differs — never a silent identical-accept of corrupt data (the CRC
// layer in storage catches lower-level corruption; this guards the
// decoder itself).
func TestDecodeMutatedValidBlock(t *testing.T) {
	b := sampleBlock(t, nil, 1, 6)
	raw := b.EncodeBytes()
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		mut := append([]byte(nil), raw...)
		pos := rng.Intn(len(mut))
		mut[pos] ^= byte(1 + rng.Intn(255))
		got, err := DecodeBlock(NewDecoder(mut))
		if err != nil {
			continue // rejected: fine
		}
		if got.Validate() == nil && got.Header.Hash() == b.Header.Hash() {
			// Decoded cleanly, validates, same header hash: the flipped
			// byte must then decode back to identical bytes (e.g. a
			// mutation inside a signature blob that Validate does not
			// cover would differ). Re-encode and compare.
			if string(got.EncodeBytes()) == string(raw) {
				t.Fatalf("mutation at %d silently vanished", pos)
			}
		}
	}
}
