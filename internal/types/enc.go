package types

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// The encoding in this file is the canonical wire and disk format of
// SEBDB. It must be deterministic — two nodes encoding the same logical
// transaction must produce identical bytes, because hashes and
// signatures are computed over it. Everything is big-endian with
// length-prefixed variable data; no maps, no floats-as-text.

// ErrCorrupt is returned when decoding runs off the end of the buffer or
// meets an impossible tag.
var ErrCorrupt = errors.New("types: corrupt encoding")

// Encoder builds a deterministic byte string.
type Encoder struct {
	buf []byte
}

// NewEncoder returns an Encoder with the given initial capacity.
func NewEncoder(capacity int) *Encoder {
	return &Encoder{buf: make([]byte, 0, capacity)}
}

// Bytes returns the accumulated encoding. The slice aliases the
// encoder's buffer; callers must not keep writing through the encoder
// while holding it.
func (e *Encoder) Bytes() []byte { return e.buf }

// Len returns the number of bytes written so far.
func (e *Encoder) Len() int { return len(e.buf) }

// Uint8 appends a single byte.
func (e *Encoder) Uint8(v uint8) { e.buf = append(e.buf, v) }

// Uint32 appends a big-endian uint32.
func (e *Encoder) Uint32(v uint32) {
	e.buf = binary.BigEndian.AppendUint32(e.buf, v)
}

// Uint64 appends a big-endian uint64.
func (e *Encoder) Uint64(v uint64) {
	e.buf = binary.BigEndian.AppendUint64(e.buf, v)
}

// Int64 appends a big-endian int64 (two's complement).
func (e *Encoder) Int64(v int64) { e.Uint64(uint64(v)) }

// Float64 appends the IEEE-754 bits of v.
func (e *Encoder) Float64(v float64) { e.Uint64(math.Float64bits(v)) }

// Bytes32 appends a fixed 32-byte array (hashes).
func (e *Encoder) Bytes32(v [32]byte) { e.buf = append(e.buf, v[:]...) }

// Count appends a uint32 count/length prefix. It panics when n does not
// fit: a >4 GiB length cannot be represented on the wire, and silently
// truncating the prefix would desynchronise every decoder downstream.
func (e *Encoder) Count(n int) {
	if n < 0 || int64(n) > math.MaxUint32 {
		panic(fmt.Sprintf("types: count %d does not fit the uint32 wire prefix", n))
	}
	e.Uint32(uint32(n))
}

// Raw appends pre-encoded bytes verbatim, with no length prefix. It
// splices an encoding produced elsewhere (a sealed transaction, say)
// into a larger one; the caller is responsible for v already being in
// canonical form.
func (e *Encoder) Raw(v []byte) { e.buf = append(e.buf, v...) }

// Blob appends a uint32 length prefix followed by the bytes.
func (e *Encoder) Blob(v []byte) {
	e.Count(len(v))
	e.buf = append(e.buf, v...)
}

// Str appends a length-prefixed string.
func (e *Encoder) Str(v string) {
	e.Count(len(v))
	e.buf = append(e.buf, v...)
}

// Value appends a tagged attribute value.
func (e *Encoder) Value(v Value) {
	e.Uint8(uint8(v.Kind))
	switch v.Kind {
	case KindNull:
	case KindString:
		e.Str(v.S)
	case KindInt, KindBool, KindTimestamp:
		e.Int64(v.I)
	case KindDecimal:
		e.Float64(v.F)
	}
}

// Values appends a count-prefixed slice of values.
func (e *Encoder) Values(vs []Value) {
	e.Count(len(vs))
	for _, v := range vs {
		e.Value(v)
	}
}

// Decoder reads back what Encoder wrote.
type Decoder struct {
	buf []byte
	off int
}

// NewDecoder wraps buf for decoding.
func NewDecoder(buf []byte) *Decoder { return &Decoder{buf: buf} }

// Remaining returns the number of unread bytes.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

// Offset returns the number of bytes consumed so far; the storage layer
// uses it to record where each transaction starts inside a block.
func (d *Decoder) Offset() int { return d.off }

func (d *Decoder) take(n int) ([]byte, error) {
	if n < 0 || d.off+n > len(d.buf) {
		return nil, ErrCorrupt
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b, nil
}

// Uint8 reads one byte.
func (d *Decoder) Uint8() (uint8, error) {
	b, err := d.take(1)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

// Uint32 reads a big-endian uint32.
func (d *Decoder) Uint32() (uint32, error) {
	b, err := d.take(4)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint32(b), nil
}

// Uint64 reads a big-endian uint64.
func (d *Decoder) Uint64() (uint64, error) {
	b, err := d.take(8)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint64(b), nil
}

// Int64 reads a big-endian int64.
func (d *Decoder) Int64() (int64, error) {
	v, err := d.Uint64()
	return int64(v), err
}

// Float64 reads IEEE-754 bits.
func (d *Decoder) Float64() (float64, error) {
	v, err := d.Uint64()
	return math.Float64frombits(v), err
}

// Bytes32 reads a fixed 32-byte array.
func (d *Decoder) Bytes32() ([32]byte, error) {
	var out [32]byte
	b, err := d.take(32)
	if err != nil {
		return out, err
	}
	copy(out[:], b)
	return out, nil
}

// Blob reads a length-prefixed byte slice. The result is a copy so the
// caller may retain it independently of the decode buffer.
func (d *Decoder) Blob() ([]byte, error) {
	n, err := d.Uint32()
	if err != nil {
		return nil, err
	}
	b, err := d.take(int(n))
	if err != nil {
		return nil, err
	}
	out := make([]byte, len(b))
	copy(out, b)
	return out, nil
}

// Str reads a length-prefixed string.
func (d *Decoder) Str() (string, error) {
	n, err := d.Uint32()
	if err != nil {
		return "", err
	}
	b, err := d.take(int(n))
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// Value reads a tagged attribute value.
func (d *Decoder) Value() (Value, error) {
	tag, err := d.Uint8()
	if err != nil {
		return Null, err
	}
	switch Kind(tag) {
	case KindNull:
		return Null, nil
	case KindString:
		s, err := d.Str()
		if err != nil {
			return Null, err
		}
		return Str(s), nil
	case KindInt:
		i, err := d.Int64()
		if err != nil {
			return Null, err
		}
		return Int(i), nil
	case KindBool:
		i, err := d.Int64()
		if err != nil {
			return Null, err
		}
		return Bool(i != 0), nil
	case KindTimestamp:
		i, err := d.Int64()
		if err != nil {
			return Null, err
		}
		return Time(i), nil
	case KindDecimal:
		f, err := d.Float64()
		if err != nil {
			return Null, err
		}
		return Dec(f), nil
	default:
		return Null, fmt.Errorf("%w: value tag %d", ErrCorrupt, tag)
	}
}

// Values reads a count-prefixed slice of values.
func (d *Decoder) Values() ([]Value, error) {
	n, err := d.Uint32()
	if err != nil {
		return nil, err
	}
	if int(n) > d.Remaining() { // each value is at least 1 byte
		return nil, ErrCorrupt
	}
	vs := make([]Value, n)
	for i := range vs {
		if vs[i], err = d.Value(); err != nil {
			return nil, err
		}
	}
	return vs, nil
}
