package types

import (
	"bytes"
	"fmt"
	"testing"
)

func sealTx(i int) *Transaction {
	return &Transaction{
		Tid: uint64(i), Ts: int64(i) * 1000,
		SenID: fmt.Sprintf("org%d", i%3), Tname: "donate",
		Args: []Value{Str(fmt.Sprintf("donor%03d", i)), Dec(float64(i))},
	}
}

func TestSealMatchesEncodeBytes(t *testing.T) {
	tx := sealTx(7)
	fresh := tx.EncodeBytes()
	sealed := tx.Seal()
	if !bytes.Equal(fresh, sealed) {
		t.Fatal("Seal bytes differ from EncodeBytes")
	}
	// A second Seal and a post-seal EncodeBytes serve the cache.
	if &tx.Seal()[0] != &sealed[0] || &tx.EncodeBytes()[0] != &sealed[0] {
		t.Fatal("sealed transaction re-encoded instead of serving the cache")
	}
}

// TestSealInvalidatedByTidTs pins the cache guard: mutating Tid or Ts —
// the two fields the engine legitimately rewrites after construction —
// must make both EncodeBytes and a re-Seal produce fresh, correct bytes.
func TestSealInvalidatedByTidTs(t *testing.T) {
	tx := sealTx(7)
	stale := tx.Seal()

	tx.Tid = 99
	want := (&Transaction{Tid: 99, Ts: tx.Ts, SenID: tx.SenID, Tname: tx.Tname,
		Sig: tx.Sig, PubKey: tx.PubKey, Args: tx.Args}).EncodeBytes()
	if got := tx.EncodeBytes(); !bytes.Equal(got, want) {
		t.Fatal("EncodeBytes served a stale cache after Tid mutation")
	}
	if got := tx.Seal(); !bytes.Equal(got, want) || bytes.Equal(got, stale) {
		t.Fatal("re-Seal after Tid mutation did not refresh the cache")
	}

	tx.Ts += 5
	if bytes.Equal(tx.EncodeBytes(), want) {
		t.Fatal("EncodeBytes served a stale cache after Ts mutation")
	}
}

// TestTxLeavesWorkersMatchesSerial pins the chunked hashing to the
// serial TxLeaves across sizes and worker counts, and checks the
// sealing side effect.
func TestTxLeavesWorkersMatchesSerial(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 7, 64, 201} {
		txs := make([]*Transaction, n)
		for i := range txs {
			txs[i] = sealTx(i)
		}
		want := TxLeaves(txs)
		for _, w := range []int{1, 2, 4, 8} {
			got := TxLeavesWorkers(txs, w)
			if len(got) != len(want) {
				t.Fatalf("n=%d workers=%d: %d leaves", n, w, len(got))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("n=%d workers=%d: leaf %d diverges", n, w, i)
				}
			}
		}
		for i, tx := range txs {
			if tx.enc == nil {
				t.Fatalf("n=%d: tx %d not sealed by TxLeavesWorkers", n, i)
			}
		}
	}
}

// TestBlockEncodeSealedUnsealedIdentical: a block over sealed
// transactions must serialise byte-identically to one over unsealed
// clones — the seal cache is an optimisation, never a format change.
func TestBlockEncodeSealedUnsealedIdentical(t *testing.T) {
	sealed := make([]*Transaction, 10)
	plain := make([]*Transaction, 10)
	for i := range sealed {
		sealed[i] = sealTx(i)
		cp := *sealed[i]
		plain[i] = &cp
	}
	TxLeavesWorkers(sealed, 4)
	bs := NewBlock(nil, sealed, 12345, "node0")
	bp := NewBlock(nil, plain, 12345, "node0")
	if !bytes.Equal(bs.EncodeBytes(), bp.EncodeBytes()) {
		t.Fatal("sealed and unsealed block encodings differ")
	}
}
