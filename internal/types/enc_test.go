package types

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func TestEncoderDecoderRoundTrip(t *testing.T) {
	e := NewEncoder(0)
	e.Uint8(7)
	e.Uint32(1 << 30)
	e.Uint64(1 << 60)
	e.Int64(-5)
	e.Float64(math.Pi)
	e.Bytes32([32]byte{1, 2, 3})
	e.Blob([]byte{9, 8})
	e.Str("héllo")

	d := NewDecoder(e.Bytes())
	if v, _ := d.Uint8(); v != 7 {
		t.Errorf("Uint8 = %d", v)
	}
	if v, _ := d.Uint32(); v != 1<<30 {
		t.Errorf("Uint32 = %d", v)
	}
	if v, _ := d.Uint64(); v != 1<<60 {
		t.Errorf("Uint64 = %d", v)
	}
	if v, _ := d.Int64(); v != -5 {
		t.Errorf("Int64 = %d", v)
	}
	if v, _ := d.Float64(); v != math.Pi {
		t.Errorf("Float64 = %v", v)
	}
	if v, _ := d.Bytes32(); v != ([32]byte{1, 2, 3}) {
		t.Errorf("Bytes32 = %v", v)
	}
	if v, _ := d.Blob(); !bytes.Equal(v, []byte{9, 8}) {
		t.Errorf("Blob = %v", v)
	}
	if v, _ := d.Str(); v != "héllo" {
		t.Errorf("Str = %q", v)
	}
	if d.Remaining() != 0 {
		t.Errorf("Remaining = %d", d.Remaining())
	}
}

func TestValueRoundTripQuick(t *testing.T) {
	f := func(i int64, fl float64, s string, b bool, pick uint8) bool {
		var v Value
		switch pick % 6 {
		case 0:
			v = Null
		case 1:
			v = Str(s)
		case 2:
			v = Int(i)
		case 3:
			if math.IsNaN(fl) {
				fl = 0
			}
			v = Dec(fl)
		case 4:
			v = Bool(b)
		default:
			v = Time(i)
		}
		e := NewEncoder(0)
		e.Value(v)
		got, err := NewDecoder(e.Bytes()).Value()
		return err == nil && got == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestValuesRoundTrip(t *testing.T) {
	vs := []Value{Str("a"), Int(1), Dec(2.5), Bool(true), Time(99), Null}
	e := NewEncoder(0)
	e.Values(vs)
	got, err := NewDecoder(e.Bytes()).Values()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(vs) {
		t.Fatalf("len = %d", len(got))
	}
	for i := range vs {
		if got[i] != vs[i] {
			t.Errorf("values[%d] = %v, want %v", i, got[i], vs[i])
		}
	}
}

func TestDecoderCorruption(t *testing.T) {
	// Truncated buffers must yield ErrCorrupt, not panic.
	e := NewEncoder(0)
	e.Str("hello world")
	full := e.Bytes()
	for cut := 0; cut < len(full); cut++ {
		d := NewDecoder(full[:cut])
		if _, err := d.Str(); err == nil {
			t.Errorf("truncation at %d not detected", cut)
		}
	}
	// Bad value tag.
	if _, err := NewDecoder([]byte{0xFF}).Value(); err == nil {
		t.Error("bad tag not detected")
	}
	// Values() with an absurd count must not allocate unbounded memory.
	if _, err := NewDecoder([]byte{0xFF, 0xFF, 0xFF, 0xFF}).Values(); err == nil {
		t.Error("absurd count not detected")
	}
}

func TestEncodingIsDeterministic(t *testing.T) {
	mk := func() []byte {
		e := NewEncoder(0)
		e.Values([]Value{Str("x"), Dec(1.25), Int(-9)})
		return e.Bytes()
	}
	if !bytes.Equal(mk(), mk()) {
		t.Error("encoding not deterministic")
	}
}
