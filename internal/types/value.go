// Package types defines the fundamental on-chain data types of SEBDB:
// attribute values, transactions (tuples with system-level attributes),
// and blocks, together with their deterministic binary encoding and the
// cryptographic material (hashes, ed25519 signatures) that makes blocks
// tamper-evident.
package types

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Kind enumerates the attribute types supported by SEBDB schemas.
type Kind uint8

const (
	// KindNull is the zero Value; it compares less than every other value.
	KindNull Kind = iota
	// KindString is a UTF-8 string attribute.
	KindString
	// KindInt is a signed 64-bit integer attribute.
	KindInt
	// KindDecimal is a fixed-point decimal attribute, stored as a float64.
	KindDecimal
	// KindBool is a boolean attribute.
	KindBool
	// KindTimestamp is a point in time, stored as Unix microseconds.
	KindTimestamp
)

// String returns the SQL-facing name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindString:
		return "string"
	case KindInt:
		return "int"
	case KindDecimal:
		return "decimal"
	case KindBool:
		return "bool"
	case KindTimestamp:
		return "timestamp"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// ParseKind maps a SQL type name to its Kind. It accepts the aliases
// commonly used in the paper's examples (e.g. "varchar", "integer").
func ParseKind(name string) (Kind, error) {
	switch strings.ToLower(name) {
	case "string", "varchar", "text", "char":
		return KindString, nil
	case "int", "integer", "bigint", "long":
		return KindInt, nil
	case "decimal", "float", "double", "numeric":
		return KindDecimal, nil
	case "bool", "boolean":
		return KindBool, nil
	case "timestamp", "time", "datetime":
		return KindTimestamp, nil
	default:
		return KindNull, fmt.Errorf("types: unknown attribute type %q", name)
	}
}

// Value is a single attribute value. It is a compact tagged union rather
// than an interface so tuples can be compared and hashed without
// allocation in the hot paths of index maintenance and query execution.
type Value struct {
	Kind Kind
	S    string
	I    int64 // also carries Bool (0/1) and Timestamp (unix micros)
	F    float64
}

// Null is the null value.
var Null = Value{Kind: KindNull}

// Str returns a string Value.
func Str(s string) Value { return Value{Kind: KindString, S: s} }

// Int returns an int Value.
func Int(i int64) Value { return Value{Kind: KindInt, I: i} }

// Dec returns a decimal Value.
func Dec(f float64) Value { return Value{Kind: KindDecimal, F: f} }

// Bool returns a bool Value.
func Bool(b bool) Value {
	v := Value{Kind: KindBool}
	if b {
		v.I = 1
	}
	return v
}

// Time returns a timestamp Value from Unix microseconds.
func Time(unixMicro int64) Value { return Value{Kind: KindTimestamp, I: unixMicro} }

// IsNull reports whether v is the null value.
func (v Value) IsNull() bool { return v.Kind == KindNull }

// AsBool reports the boolean interpretation of a KindBool value.
func (v Value) AsBool() bool { return v.Kind == KindBool && v.I != 0 }

// Float returns the numeric interpretation of v (int, decimal or
// timestamp) as a float64; it is used by histogram bucketing.
func (v Value) Float() float64 {
	switch v.Kind {
	case KindInt, KindTimestamp, KindBool:
		return float64(v.I)
	case KindDecimal:
		return v.F
	default:
		return math.NaN()
	}
}

// Numeric reports whether v belongs to a numerically ordered kind.
func (v Value) Numeric() bool {
	switch v.Kind {
	case KindInt, KindDecimal, KindTimestamp:
		return true
	}
	return false
}

// String renders the value for display and for SQL result rows.
func (v Value) String() string {
	switch v.Kind {
	case KindNull:
		return "NULL"
	case KindString:
		return v.S
	case KindInt:
		return strconv.FormatInt(v.I, 10)
	case KindDecimal:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case KindBool:
		if v.I != 0 {
			return "true"
		}
		return "false"
	case KindTimestamp:
		return strconv.FormatInt(v.I, 10)
	default:
		return "?"
	}
}

// Compare orders two values. Null sorts lowest; across numeric kinds the
// comparison is by numeric value so int 3 == decimal 3.0; otherwise the
// kinds must match.
func Compare(a, b Value) int {
	if a.Kind == KindNull || b.Kind == KindNull {
		switch {
		case a.Kind == b.Kind:
			return 0
		case a.Kind == KindNull:
			return -1
		default:
			return 1
		}
	}
	if a.Numeric() && b.Numeric() {
		af, bf := a.Float(), b.Float()
		switch {
		case af < bf:
			return -1
		case af > bf:
			return 1
		default:
			return 0
		}
	}
	if a.Kind != b.Kind {
		// Different, non-comparable kinds: order by kind tag so sorting is
		// still total (needed by sort-merge join on mixed data).
		return int(a.Kind) - int(b.Kind)
	}
	switch a.Kind {
	case KindString:
		return strings.Compare(a.S, b.S)
	case KindBool:
		return int(a.I - b.I)
	default:
		return 0
	}
}

// Equal reports whether two values compare equal.
func Equal(a, b Value) bool { return Compare(a, b) == 0 }

// Coerce converts v to kind k when a lossless or conventional conversion
// exists (e.g. int literal into a decimal column). It returns an error
// when the conversion would change meaning.
func Coerce(v Value, k Kind) (Value, error) {
	if v.Kind == k || v.Kind == KindNull {
		return v, nil
	}
	switch {
	case v.Kind == KindInt && k == KindDecimal:
		return Dec(float64(v.I)), nil
	case v.Kind == KindDecimal && k == KindInt && v.F == math.Trunc(v.F):
		return Int(int64(v.F)), nil
	case v.Kind == KindInt && k == KindTimestamp:
		return Time(v.I), nil
	case v.Kind == KindString && k == KindInt:
		i, err := strconv.ParseInt(v.S, 10, 64)
		if err != nil {
			return Null, fmt.Errorf("types: cannot coerce %q to int", v.S)
		}
		return Int(i), nil
	case v.Kind == KindString && k == KindDecimal:
		f, err := strconv.ParseFloat(v.S, 64)
		if err != nil {
			return Null, fmt.Errorf("types: cannot coerce %q to decimal", v.S)
		}
		return Dec(f), nil
	default:
		return Null, fmt.Errorf("types: cannot coerce %s to %s", v.Kind, k)
	}
}
