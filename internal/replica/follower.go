package replica

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"sebdb/internal/clock"
	"sebdb/internal/core"
	"sebdb/internal/network"
	"sebdb/internal/obs"
	"sebdb/internal/types"
)

// Follower tuning defaults. The read deadline is a multiple of the
// leader heartbeat: three missed heartbeats mean the leader (or the
// path to it) is gone and the follower should redial.
const (
	DefaultBackoff      = 200 * time.Millisecond
	DefaultMaxBackoff   = 5 * time.Second
	heartbeatGraceRatio = 3
)

// FollowerConfig configures a tail-following replica.
type FollowerConfig struct {
	// Leader is the leader node's wire address.
	Leader string
	// Heartbeat is the leader's heartbeat interval; the follower's read
	// deadline is heartbeatGraceRatio times it. Defaults to
	// DefaultHeartbeat.
	Heartbeat time.Duration
	// Backoff/MaxBackoff bound the reconnect loop's exponential pause.
	Backoff    time.Duration
	MaxBackoff time.Duration
	// Log receives subscribe/resume/lag/rejection events; nil is fine.
	Log *obs.Logger
}

func (c *FollowerConfig) fill() {
	if c.Heartbeat <= 0 {
		c.Heartbeat = DefaultHeartbeat
	}
	if c.Backoff <= 0 {
		c.Backoff = DefaultBackoff
	}
	if c.MaxBackoff < c.Backoff {
		c.MaxBackoff = DefaultMaxBackoff
	}
	if c.MaxBackoff < c.Backoff {
		c.MaxBackoff = c.Backoff
	}
}

// Follower tails a leader's block stream and applies every pushed block
// to its local engine after re-verifying it. Reads (SELECT/TRACE/VO)
// are served by the engine's own height-pinned views and never touch
// the replication path; staleness is bounded by the stream and measured
// as sebdb_replica_lag_blocks.
type Follower struct {
	eng *core.Engine
	cfg FollowerConfig
	log *obs.Logger
	reg *obs.Registry

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}

	// connMu guards the live connection pointer only (never held across
	// I/O); Stop closes the conn through it to unblock a pending read.
	connMu sync.Mutex
	conn   net.Conn

	gLag        *obs.Gauge
	hApply      *obs.Histogram
	cApplied    *obs.Counter
	cRejected   *obs.Counter
	cReconnects *obs.Counter
}

// StartFollower spawns the tail loop over an engine already switched to
// follower mode (core.Engine.SetFollower) and returns immediately. The
// loop bootstraps its cursor from the engine height — callers that want
// a fast initial catch-up run node.FastSync before opening the engine —
// and survives leader restarts by redialing with exponential backoff and
// resuming from the cursor.
func StartFollower(eng *core.Engine, cfg FollowerConfig) *Follower {
	cfg.fill()
	reg := eng.Obs()
	f := &Follower{
		eng:         eng,
		cfg:         cfg,
		log:         cfg.Log.With("replica"),
		reg:         reg,
		stop:        make(chan struct{}),
		done:        make(chan struct{}),
		gLag:        reg.Gauge("sebdb_replica_lag_blocks"),
		hApply:      reg.Histogram("sebdb_replica_apply_micros"),
		cApplied:    reg.Counter("sebdb_replica_applied_blocks_total"),
		cRejected:   reg.Counter("sebdb_replica_rejected_blocks_total"),
		cReconnects: reg.Counter("sebdb_replica_reconnects_total"),
	}
	go f.run()
	return f
}

// Stop ends the tail loop and waits for it to exit. Idempotent.
func (f *Follower) Stop() {
	f.stopOnce.Do(func() {
		close(f.stop)
		f.connMu.Lock()
		conn := f.conn
		f.connMu.Unlock()
		if conn != nil {
			conn.Close() //sebdb:ignore-err best-effort unblock of the tail read
		}
	})
	<-f.done
}

// Lag returns the last observed leader-height minus local-height gap.
func (f *Follower) Lag() int64 { return f.gLag.Value() }

// run is the reconnect loop: each tail session ends with an error
// (stream severed, verification failure, leader gone) and the loop
// redials with exponential backoff, resuming from the engine height.
func (f *Follower) run() {
	defer close(f.done)
	backoff := f.cfg.Backoff
	for {
		progressed, err := f.tail()
		select {
		case <-f.stop:
			return
		default:
		}
		if progressed {
			backoff = f.cfg.Backoff
		}
		if err != nil {
			f.log.Warn("stream ended; reconnecting",
				"leader", f.cfg.Leader, "cursor", f.eng.Height(),
				"backoff_ms", int64(backoff/time.Millisecond), "err", err.Error())
		}
		f.cReconnects.Inc()
		select {
		case <-f.stop:
			return
		case <-time.After(backoff):
		}
		backoff *= 2
		if backoff > f.cfg.MaxBackoff {
			backoff = f.cfg.MaxBackoff
		}
	}
}

// setConn publishes the live session connection for Stop to close; a
// racing Stop closes it here.
func (f *Follower) setConn(conn net.Conn) (stopped bool) {
	f.connMu.Lock()
	f.conn = conn
	f.connMu.Unlock()
	select {
	case <-f.stop:
		if conn != nil {
			conn.Close() //sebdb:ignore-err already stopping; conn is being discarded
		}
		return true
	default:
		return false
	}
}

// tail runs one subscription session: dial, subscribe from the current
// engine height, then verify+apply pushed blocks until the stream ends.
// progressed reports whether the session received at least one frame
// (used to reset the reconnect backoff).
func (f *Follower) tail() (progressed bool, err error) {
	conn, err := net.Dial("tcp", f.cfg.Leader)
	if err != nil {
		return false, err
	}
	defer conn.Close() //sebdb:ignore-err best-effort teardown of a finished session
	if f.setConn(conn) {
		return false, nil
	}
	defer f.setConn(nil)

	cursor := f.eng.Height()
	e := types.NewEncoder(8)
	e.Uint64(cursor)
	if derr := conn.SetWriteDeadline(clock.Wall().Add(DefaultWriteTimeout)); derr != nil {
		return false, derr
	}
	if werr := network.WriteFrame(conn, network.KindSubscribe, e.Bytes()); werr != nil {
		return false, werr
	}
	f.log.Info("subscribed", "leader", f.cfg.Leader, "cursor", cursor)

	readDeadline := f.cfg.Heartbeat * heartbeatGraceRatio
	for {
		if derr := conn.SetReadDeadline(clock.Wall().Add(readDeadline)); derr != nil {
			return progressed, derr
		}
		kind, payload, rerr := network.ReadFrame(conn)
		if rerr != nil {
			return progressed, rerr
		}
		progressed = true
		switch kind {
		case network.KindError:
			return progressed, fmt.Errorf("replica: leader refused: %s", string(payload))
		case network.KindBlockPush:
		default:
			return progressed, fmt.Errorf("replica: unexpected frame kind %d on stream", kind)
		}
		leaderH, blockBytes, perr := decodePush(payload)
		if perr != nil {
			f.cRejected.Inc()
			return progressed, perr
		}
		if blockBytes == nil { // heartbeat
			f.observeLag(leaderH)
			continue
		}
		if aerr := f.applyPushed(blockBytes); aerr != nil {
			// Reconnecting re-requests from the cursor: a tampered or
			// out-of-order block never advances the chain.
			f.cRejected.Inc()
			f.log.Warn("pushed block rejected", "height", f.eng.Height(), "err", aerr.Error())
			return progressed, aerr
		}
		f.observeLag(leaderH)
	}
}

// decodePush splits a KindBlockPush payload into the leader height and
// the block bytes; nil bytes mean a heartbeat.
func decodePush(payload []byte) (leaderH uint64, blockBytes []byte, err error) {
	d := types.NewDecoder(payload)
	if leaderH, err = d.Uint64(); err != nil {
		return 0, nil, fmt.Errorf("replica: malformed push frame: %w", err)
	}
	if blockBytes, err = d.Blob(); err != nil {
		return 0, nil, fmt.Errorf("replica: malformed push frame: %w", err)
	}
	if len(blockBytes) == 0 {
		return leaderH, nil, nil
	}
	return leaderH, blockBytes, nil
}

// applyPushed verifies one pushed block against the follower's local
// chain and applies it. The verification chain is the same as
// fast-sync's: the header must carry a valid packager signature and
// extend the local chain (height + PrevHash against our verified tip);
// ApplyBlock then Merkle-checks the body against the header and the
// store re-enforces linkage on append. Nothing from the wire reaches
// any state sink except through ApplyBlock.
func (f *Follower) applyPushed(blockBytes []byte) error {
	b, err := types.DecodeBlock(types.NewDecoder(blockBytes))
	if err != nil {
		return fmt.Errorf("replica: undecodable block: %w", err)
	}
	h := f.eng.Height()
	if b.Header.Height != h {
		return fmt.Errorf("replica: pushed block height %d, want %d", b.Header.Height, h)
	}
	if !b.Header.VerifySig() {
		return errors.New("replica: pushed block has invalid packager signature")
	}
	if tip := f.eng.CurrentView().Tip(); tip != nil {
		if b.Header.PrevHash != tip.Hash() {
			return errors.New("replica: pushed block does not link to local tip")
		}
	} else if b.Header.PrevHash != (types.Hash{}) {
		return errors.New("replica: genesis push carries a non-zero prev hash")
	}
	start := f.reg.Now()
	if err := f.eng.ApplyBlock(b); err != nil {
		return fmt.Errorf("replica: apply failed: %w", err)
	}
	f.hApply.Observe(f.reg.Now() - start)
	f.cApplied.Inc()
	return nil
}

// observeLag updates sebdb_replica_lag_blocks from the leader height a
// push frame advertised.
func (f *Follower) observeLag(leaderH uint64) {
	local := f.eng.Height()
	lag := int64(0)
	if leaderH > local {
		lag = int64(leaderH - local)
	}
	f.gLag.Set(lag)
	if lag > 0 {
		f.log.Debug("replica lag", "leader_height", leaderH, "local_height", local, "lag", lag)
	}
}
