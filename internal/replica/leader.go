// Package replica implements SEBDB's streaming replication: a
// leader-side subscription service that pushes sealed blocks to
// followers as they commit, and a follower loop that tails the stream,
// re-verifies every block against the signed header chain and applies it
// through the engine's ApplyBlock pipeline.
//
// The trust model is the same as fast-sync's (see internal/node): a
// follower NEVER installs peer state. Every pushed block must carry a
// valid packager signature (BlockHeader.VerifySig) and extend the
// follower's locally verified chain (height + PrevHash linkage, enforced
// again by the store on append), and all derived state — catalog,
// bitmaps, layered indexes, ALIs — is rebuilt locally by ApplyBlock,
// which also Merkle-checks the body against the header. A leader that
// lies can only stall a follower, never corrupt it.
//
// The wire protocol is one KindSubscribe request frame carrying a uint64
// height cursor ("I have blocks [0, cursor)"), answered by an open-ended
// stream of KindBlockPush frames: uint64 leader height + length-prefixed
// block bytes, with an empty blob serving as a heartbeat so followers
// can detect a dead leader and measure lag while idle.
package replica

import (
	"fmt"
	"net"
	"sync"
	"time"

	"sebdb/internal/clock"
	"sebdb/internal/core"
	"sebdb/internal/network"
	"sebdb/internal/obs"
	"sebdb/internal/types"
)

// Leader tuning defaults: heartbeats keep idle subscriptions verifiably
// alive; the write deadline bounds how long a stalled follower can pin a
// session goroutine.
const (
	DefaultHeartbeat    = 1 * time.Second
	DefaultWriteTimeout = 10 * time.Second
)

// Leader is the subscription service a full node registers on its wire
// server. Each KindSubscribe frame turns its connection into a push
// stream: the leader drains blocks from the subscriber's cursor to the
// current height, then waits on the engine's height signal and streams
// every new block as it commits.
type Leader struct {
	eng          *core.Engine
	log          *obs.Logger
	heartbeat    time.Duration
	writeTimeout time.Duration

	// stopOnce/stop end every session when the node shuts down; sessions
	// run inside the wire server's connection goroutines, which
	// Server.Close joins, so Close here must fire first (FullNode.Close
	// orders it that way).
	stopOnce sync.Once
	stop     chan struct{}

	gSessions   *obs.Gauge
	cPushed     *obs.Counter
	cHeartbeats *obs.Counter
	cResumes    *obs.Counter
}

// NewLeader builds the subscription service over an engine. The logger
// may be nil; metrics land in the engine's registry
// (sebdb_replica_sessions, sebdb_replica_pushed_blocks_total,
// sebdb_replica_heartbeats_total, sebdb_replica_resumed_sessions_total).
func NewLeader(eng *core.Engine, log *obs.Logger) *Leader {
	reg := eng.Obs()
	return &Leader{
		eng:          eng,
		log:          log.With("replica"),
		heartbeat:    DefaultHeartbeat,
		writeTimeout: DefaultWriteTimeout,
		stop:         make(chan struct{}),
		gSessions:    reg.Gauge("sebdb_replica_sessions"),
		cPushed:      reg.Counter("sebdb_replica_pushed_blocks_total"),
		cHeartbeats:  reg.Counter("sebdb_replica_heartbeats_total"),
		cResumes:     reg.Counter("sebdb_replica_resumed_sessions_total"),
	}
}

// SetHeartbeat tunes the idle-session heartbeat interval (tests shrink
// it). Call before Register.
func (l *Leader) SetHeartbeat(d time.Duration) {
	if d > 0 {
		l.heartbeat = d
	}
}

// Register installs the KindSubscribe stream handler on the wire server.
func (l *Leader) Register(srv *network.Server) {
	srv.HandleStream(network.KindSubscribe, l.serve)
}

// Close ends every subscription session. Idempotent.
func (l *Leader) Close() {
	l.stopOnce.Do(func() { close(l.stop) })
}

// serve runs one subscription session; it owns conn until it returns.
// The payload is the subscriber's height cursor — peer-controlled, so it
// is range-checked and only ever compared against local heights.
func (l *Leader) serve(payload []byte, conn net.Conn) {
	cursor, err := types.NewDecoder(payload).Uint64()
	if err != nil {
		l.refuse(conn, "replica: malformed subscribe cursor")
		return
	}
	h := l.eng.Height()
	if cursor > h {
		// A cursor past our height means the follower tracked a different
		// (or wiped) leader; refusing is the only safe answer.
		l.refuse(conn, fmt.Sprintf("replica: cursor %d beyond leader height %d", cursor, h))
		return
	}
	if cursor > 0 {
		l.cResumes.Inc()
	}
	// next walks the chain from the validated cursor; bounded by the
	// local height h on every lap, never by the wire value itself.
	next := cursor
	l.gSessions.Add(1)
	defer l.gSessions.Add(-1)
	l.log.Info("subscription started",
		"peer", conn.RemoteAddr().String(), "cursor", cursor, "height", h)

	ticker := time.NewTicker(l.heartbeat)
	defer ticker.Stop()
	for {
		// Drain everything the subscriber is missing. Block reads go
		// through the engine's lock-free store/cache path.
		for next < h {
			b, err := l.eng.Block(next)
			if err != nil {
				l.log.Error("subscription read failed", "height", next, "err", err.Error())
				return
			}
			if err := l.push(conn, h, b.EncodeBytes()); err != nil {
				l.log.Info("subscription ended", "peer", conn.RemoteAddr().String(),
					"cursor", next, "err", err.Error())
				return
			}
			next++
			l.cPushed.Inc()
		}
		// Height signal protocol: grab the channel, then re-check the
		// height — publish closes-and-replaces the channel, so checking
		// first would race a commit landing in between.
		sig := l.eng.HeightSignal()
		if nh := l.eng.Height(); nh > h {
			h = nh
			continue
		}
		select {
		case <-l.stop:
			return
		case <-sig:
			h = l.eng.Height()
		case <-ticker.C:
			if err := l.push(conn, h, nil); err != nil {
				l.log.Info("subscription ended", "peer", conn.RemoteAddr().String(),
					"cursor", next, "err", err.Error())
				return
			}
			l.cHeartbeats.Inc()
		}
	}
}

// push writes one KindBlockPush frame: leader height + block bytes (nil
// = heartbeat), under the session write deadline.
func (l *Leader) push(conn net.Conn, height uint64, blockBytes []byte) error {
	if l.writeTimeout > 0 {
		// Deadlines need absolute wall time; clock.Wall is the audited
		// exception to the injected-clock rule.
		if err := conn.SetWriteDeadline(clock.Wall().Add(l.writeTimeout)); err != nil {
			return err
		}
	}
	e := types.NewEncoder(12 + len(blockBytes))
	e.Uint64(height)
	e.Blob(blockBytes)
	return network.WriteFrame(conn, network.KindBlockPush, e.Bytes())
}

// refuse answers a bad subscribe request with a KindError frame.
func (l *Leader) refuse(conn net.Conn, msg string) {
	l.log.Warn("subscription refused", "peer", conn.RemoteAddr().String(), "reason", msg)
	if l.writeTimeout > 0 {
		if err := conn.SetWriteDeadline(clock.Wall().Add(l.writeTimeout)); err != nil {
			return
		}
	}
	if err := network.WriteFrame(conn, network.KindError, []byte(msg)); err != nil {
		l.log.Debug("refusal write failed", "err", err.Error())
	}
}
