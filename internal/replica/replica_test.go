package replica_test

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sebdb/internal/core"
	"sebdb/internal/network"
	"sebdb/internal/node"
	"sebdb/internal/obs"
	"sebdb/internal/replica"
	"sebdb/internal/types"
)

// openEngine opens an engine over dir with a private metrics registry,
// so per-follower counters (applied/rejected blocks) don't bleed across
// the engines of one test.
func openEngine(t testing.TB, dir string) (*core.Engine, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry(nil)
	e, err := core.Open(core.Config{Dir: dir, HistogramDepth: 10, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	return e, reg
}

// seedChain gives the engine the donate table plus nBlocks committed
// blocks of three transactions each.
func seedChain(t testing.TB, e *core.Engine, nBlocks int) {
	t.Helper()
	if !e.CurrentView().HasTable("donate") {
		if _, err := e.Execute(`CREATE donate (donor string, project string, amount decimal)`); err != nil {
			t.Fatal(err)
		}
		if err := e.FlushAt(1); err != nil {
			t.Fatal(err)
		}
	}
	commitBlocks(t, e, nBlocks)
}

// commitBlocks appends nBlocks more blocks to the engine's chain.
func commitBlocks(t testing.TB, e *core.Engine, nBlocks int) {
	t.Helper()
	base := int(e.Height())
	for b := 0; b < nBlocks; b++ {
		var batch []*types.Transaction
		for i := 0; i < 3; i++ {
			seq := base*10 + b*3 + i
			tx, err := e.NewTransaction(fmt.Sprintf("org%d", seq%3), "donate", []types.Value{
				types.Str(fmt.Sprintf("donor%02d", seq%5)),
				types.Str("education"),
				types.Dec(float64(seq)),
			})
			if err != nil {
				t.Fatal(err)
			}
			tx.Ts = int64(base+b+1) * 1000
			batch = append(batch, tx)
		}
		if _, err := e.CommitBlock(batch, int64(base+b+1)*1000); err != nil {
			t.Fatal(err)
		}
	}
}

// serveLeader wraps the engine in a full node with a fast replication
// heartbeat and serves it on a fresh port.
func serveLeader(t testing.TB, e *core.Engine) (*node.FullNode, string) {
	t.Helper()
	n := node.New(e)
	n.Replication().SetHeartbeat(20 * time.Millisecond)
	addr, err := n.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return n, addr
}

// startFollower flips the engine into follower mode and starts a tail
// loop tuned for test speed. The heartbeat (which sets the stream-read
// grace at 3x) stays generous: on a single-CPU box under the race
// detector a busy test goroutine can hold the scheduler for tens of
// milliseconds, and a tight grace turns that into spurious reconnects.
func startFollower(e *core.Engine, leaderAddr string) *replica.Follower {
	e.SetFollower(true)
	return replica.StartFollower(e, replica.FollowerConfig{
		Leader:     leaderAddr,
		Heartbeat:  200 * time.Millisecond,
		Backoff:    10 * time.Millisecond,
		MaxBackoff: 200 * time.Millisecond,
	})
}

// waitConverged blocks until the follower's chain matches the leader's
// height and tip hash.
func waitConverged(t testing.TB, leader, follower *core.Engine, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		lh, fh := leader.Height(), follower.Height()
		if lh == fh && lh > 0 {
			lt, ft := leader.CurrentView().Tip(), follower.CurrentView().Tip()
			if lt != nil && ft != nil && lt.Hash() == ft.Hash() {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("no convergence: leader height %d, follower height %d", lh, fh)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestFollowerBootstrapsAndServesReads(t *testing.T) {
	le, _ := openEngine(t, t.TempDir())
	defer le.Close()
	seedChain(t, le, 5)
	ln, addr := serveLeader(t, le)
	defer ln.Close()

	fe, freg := openEngine(t, t.TempDir())
	defer fe.Close()
	f := startFollower(fe, addr)
	defer f.Stop()
	waitConverged(t, le, fe, 10*time.Second)

	// The follower serves SELECT and TRACE from its own views.
	res, err := fe.Execute(`SELECT * FROM donate`)
	if err != nil {
		t.Fatalf("follower SELECT: %v", err)
	}
	want := 5 * 3
	if len(res.Rows) != want {
		t.Errorf("follower SELECT rows = %d, want %d", len(res.Rows), want)
	}
	if _, err := fe.Execute(`TRACE OPERATOR = "org1"`); err != nil {
		t.Errorf("follower TRACE: %v", err)
	}

	// Local writes are rejected; the chain only advances via the stream.
	if err := fe.Submit(&types.Transaction{}); !errors.Is(err, core.ErrFollower) {
		t.Errorf("follower Submit err = %v, want ErrFollower", err)
	}
	if _, err := fe.CommitBlock(nil, 1); !errors.Is(err, core.ErrFollower) {
		t.Errorf("follower CommitBlock err = %v, want ErrFollower", err)
	}

	// New commits on the leader stream through while the follower is live.
	commitBlocks(t, le, 3)
	waitConverged(t, le, fe, 10*time.Second)
	res, err = fe.Execute(`SELECT * FROM donate`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != want+3*3 {
		t.Errorf("follower SELECT rows after stream = %d, want %d", len(res.Rows), want+3*3)
	}
	if got := freg.Counter("sebdb_replica_applied_blocks_total").Value(); got == 0 {
		t.Error("applied-blocks counter did not move")
	}
}

func TestFollowerRestartResumesFromCursor(t *testing.T) {
	le, _ := openEngine(t, t.TempDir())
	defer le.Close()
	seedChain(t, le, 4)
	ln, addr := serveLeader(t, le)
	defer ln.Close()

	fdir := t.TempDir()
	fe, _ := openEngine(t, fdir)
	f := startFollower(fe, addr)
	waitConverged(t, le, fe, 10*time.Second)
	f.Stop()
	if err := fe.Close(); err != nil {
		t.Fatal(err)
	}

	// The leader moves on while the follower is down.
	commitBlocks(t, le, 3)

	// On restart the follower subscribes from its cursor: only the three
	// missed blocks are applied, nothing is re-applied.
	fe2, freg2 := openEngine(t, fdir)
	defer fe2.Close()
	if fe2.Height() != 5 { // 1 DDL block + 4 data blocks
		t.Fatalf("restarted follower height = %d, want 5", fe2.Height())
	}
	f2 := startFollower(fe2, addr)
	defer f2.Stop()
	waitConverged(t, le, fe2, 10*time.Second)
	if got := freg2.Counter("sebdb_replica_applied_blocks_total").Value(); got != 3 {
		t.Errorf("applied after restart = %d, want 3 (resume must not re-apply)", got)
	}
}

func TestLeaderRestartMidStream(t *testing.T) {
	le, _ := openEngine(t, t.TempDir())
	defer le.Close()
	seedChain(t, le, 3)
	ln, addr := serveLeader(t, le)

	fe, _ := openEngine(t, t.TempDir())
	defer fe.Close()
	f := startFollower(fe, addr)
	defer f.Stop()
	waitConverged(t, le, fe, 10*time.Second)

	// Leader restarts: its node goes away and comes back on the same
	// address with more blocks; the follower must resume from its cursor.
	if err := ln.Close(); err != nil {
		t.Fatal(err)
	}
	commitBlocks(t, le, 4)
	ln2 := node.New(le)
	ln2.Replication().SetHeartbeat(20 * time.Millisecond)
	var err error
	for i := 0; i < 50; i++ { // the old listener's port may take a moment to free
		if _, err = ln2.Serve(addr); err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("leader re-listen: %v", err)
	}
	defer ln2.Close()
	waitConverged(t, le, fe, 15*time.Second)
}

// tamperingLeader is a fake leader: the first subscription session gets
// a tampered copy of block 0 (body altered after signing, so the header
// signature is intact but the Merkle root no longer matches); later
// sessions serve the honest chain.
type tamperingLeader struct {
	src      *core.Engine
	sessions atomic.Int64
}

func (tl *tamperingLeader) serve(payload []byte, conn net.Conn) {
	cursor, err := types.NewDecoder(payload).Uint64()
	if err != nil {
		return
	}
	session := tl.sessions.Add(1)
	h := tl.src.Height()
	for next := cursor; next < h; next++ {
		b, err := tl.src.Block(next)
		if err != nil {
			return
		}
		raw := b.EncodeBytes()
		if session == 1 {
			// Flip a byte in the last transaction's tail: the header
			// (including its signature) is untouched, the body no longer
			// matches the Merkle root.
			raw[len(raw)-1] ^= 0xFF
		}
		e := types.NewEncoder(12 + len(raw))
		e.Uint64(h)
		e.Blob(raw)
		if network.WriteFrame(conn, network.KindBlockPush, e.Bytes()) != nil {
			return
		}
		if session == 1 {
			return // honest leaders close too; the follower must re-request
		}
	}
	// Heartbeat so the converged follower doesn't time out mid-test.
	for {
		e := types.NewEncoder(12)
		e.Uint64(h)
		e.Blob(nil)
		if network.WriteFrame(conn, network.KindBlockPush, e.Bytes()) != nil {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestTamperedPushRejectedAndRerequested(t *testing.T) {
	src, _ := openEngine(t, t.TempDir())
	defer src.Close()
	seedChain(t, src, 2)

	tl := &tamperingLeader{src: src}
	srv := network.NewServer()
	srv.HandleStream(network.KindSubscribe, tl.serve)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Close()

	fe, freg := openEngine(t, t.TempDir())
	defer fe.Close()
	f := startFollower(fe, ln.Addr().String())
	defer f.Stop()
	waitConverged(t, src, fe, 15*time.Second)

	if got := freg.Counter("sebdb_replica_rejected_blocks_total").Value(); got == 0 {
		t.Error("tampered block was not counted as rejected")
	}
	// Despite the tamper the follower converged to the honest chain by
	// re-requesting from its (unchanged) cursor.
	if fe.Height() != src.Height() {
		t.Errorf("follower height = %d, want %d", fe.Height(), src.Height())
	}
	if tl.sessions.Load() < 2 {
		t.Errorf("sessions = %d, want >= 2 (re-request after rejection)", tl.sessions.Load())
	}
}

func TestForgedSignatureRejected(t *testing.T) {
	src, _ := openEngine(t, t.TempDir())
	defer src.Close()
	seedChain(t, src, 1)
	b, err := src.Block(0)
	if err != nil {
		t.Fatal(err)
	}
	// Strip the signature: VerifySig must fail before ApplyBlock runs.
	forged := *b
	forged.Header.Signature = nil

	fe, freg := openEngine(t, t.TempDir())
	defer fe.Close()
	fe.SetFollower(true)

	srv := network.NewServer()
	srv.HandleStream(network.KindSubscribe, func(payload []byte, conn net.Conn) {
		e := types.NewEncoder(1024)
		e.Uint64(1)
		e.Blob(forged.EncodeBytes())
		_ = network.WriteFrame(conn, network.KindBlockPush, e.Bytes())
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Close()

	f := replica.StartFollower(fe, replica.FollowerConfig{
		Leader:     ln.Addr().String(),
		Heartbeat:  200 * time.Millisecond,
		Backoff:    10 * time.Millisecond,
		MaxBackoff: 200 * time.Millisecond,
	})
	defer f.Stop()

	deadline := time.Now().Add(10 * time.Second)
	for freg.Counter("sebdb_replica_rejected_blocks_total").Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("forged block was never rejected")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if fe.Height() != 0 {
		t.Errorf("forged block advanced the chain to height %d", fe.Height())
	}
}

// TestFollowerReadStressDuringPushes races SELECT/TRACE readers on the
// follower against the apply loop while the leader commits; run with
// -race it is the reader-vs-replication data-race gate.
func TestFollowerReadStressDuringPushes(t *testing.T) {
	le, _ := openEngine(t, t.TempDir())
	defer le.Close()
	seedChain(t, le, 3)
	ln, addr := serveLeader(t, le)
	defer ln.Close()

	fe, _ := openEngine(t, t.TempDir())
	defer fe.Close()
	f := startFollower(fe, addr)
	defer f.Stop()
	waitConverged(t, le, fe, 10*time.Second)

	stop := make(chan struct{})
	stopReaders := sync.OnceFunc(func() { close(stop) })
	defer stopReaders() // a convergence fatal must not leak spinning readers
	var wg sync.WaitGroup
	readErr := make([]error, 4)
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			last := 0
			for {
				select {
				case <-stop:
					return
				// Yield between queries: on a single-CPU runner four
				// hot loops would starve the apply goroutine outright.
				case <-time.After(time.Millisecond):
				}
				var res *core.Result
				var err error
				if r%2 == 0 {
					res, err = fe.Execute(`SELECT * FROM donate`)
				} else {
					res, err = fe.Execute(`TRACE OPERATOR = "org1"`)
				}
				if err != nil {
					readErr[r] = err
					return
				}
				// Row counts only grow as blocks stream in.
				if len(res.Rows) < last {
					readErr[r] = fmt.Errorf("rows shrank: %d -> %d", last, len(res.Rows))
					return
				}
				last = len(res.Rows)
			}
		}(r)
	}
	commitBlocks(t, le, 20)
	waitConverged(t, le, fe, 30*time.Second)
	stopReaders()
	wg.Wait()
	for r, err := range readErr {
		if err != nil {
			t.Errorf("reader %d: %v", r, err)
		}
	}
}
