package snapshot

import (
	"crypto/ed25519"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"sebdb/internal/contract"
	"sebdb/internal/faultfs"
	"sebdb/internal/index/layered"
	"sebdb/internal/mbtree"
	"sebdb/internal/schema"
	"sebdb/internal/storage"
	"sebdb/internal/types"
)

var testKey = ed25519.NewKeyFromSeed(make([]byte, ed25519.SeedSize))

// buildChain appends n tiny blocks to a fresh store in dir and returns
// the store (left open).
func buildChain(t *testing.T, dir string, n int) *storage.Store {
	t.Helper()
	s, err := storage.Open(dir, storage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var prev *types.BlockHeader
	tid := uint64(1)
	for i := 0; i < n; i++ {
		tx := &types.Transaction{
			Tid: tid, Ts: int64(i+1) * 1000, SenID: "org1", Tname: "donate",
			Args: []types.Value{types.Str("Jack"), types.Dec(float64(i))},
		}
		b := types.NewBlock(prev, []*types.Transaction{tx}, int64(i+1)*1000, "node0")
		b.Header.Sign(testKey)
		if _, err := s.Append(b); err != nil {
			t.Fatal(err)
		}
		prev = &b.Header
		tid++
	}
	return s
}

// mkCheckpoint assembles a checkpoint over the full chain in s with
// one of every state family populated.
func mkCheckpoint(t *testing.T, s *storage.Store) *Checkpoint {
	t.Helper()
	h := uint64(s.Count())
	m, err := s.Meta(h)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := schema.NewTable("donate", []schema.Column{
		{Name: "uname", Kind: types.KindString},
		{Name: "money", Kind: types.KindDecimal},
	})
	if err != nil {
		t.Fatal(err)
	}
	ct, err := contract.Parse("pay", []string{"INSERT INTO donate VALUES ($1, $2)"})
	if err != nil {
		t.Fatal(err)
	}
	return &Checkpoint{
		Height:    h,
		Anchor:    m.Headers[h-1].Hash(),
		LastTid:   h,
		LastTs:    int64(h) * 1000,
		Store:     m,
		Tables:    []*schema.Table{tbl},
		Contracts: []*contract.Contract{ct},
		TableIdx:  map[string][]uint32{"donate": {0, 1}, "senid:org1": {0, 1, 2}},
		Indexes: []IndexState{{
			Key: ".senid", Attr: "senid",
			Blocks: [][]layered.Entry{
				{{Key: types.Str("org1"), Pos: 0}},
				{{Key: types.Str("org1"), Pos: 0}},
				nil,
			},
		}, {
			Key: ".tname", Attr: "tname",
			Blocks: [][]layered.Entry{
				{{Key: types.Str("donate"), Pos: 0}},
				{{Key: types.Str("donate"), Pos: 0}},
				nil,
			},
		}, {
			Key: "donate.money", Attr: "money", Continuous: true,
			Bounds: []float64{10, 20},
			Blocks: [][]layered.Entry{
				{{Key: types.Dec(5), Pos: 0}},
				nil,
				{{Key: types.Dec(25), Pos: 0}},
			},
		}},
		ALIs: []ALIState{{
			Key: "donate.money", Attr: "money", Continuous: true,
			Bounds: []float64{10, 20},
			Blocks: [][]mbtree.Record{
				{{Key: types.Dec(5), Payload: []byte("tx0")}},
				nil,
				{{Key: types.Dec(25), Payload: []byte("tx2")}},
			},
		}},
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	s := buildChain(t, t.TempDir(), 3)
	defer s.Close()
	ck := mkCheckpoint(t, s)
	got, err := Decode(ck.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Height != ck.Height || got.Anchor != ck.Anchor ||
		got.LastTid != ck.LastTid || got.LastTs != ck.LastTs {
		t.Fatalf("pin mismatch: %+v", got)
	}
	if !reflect.DeepEqual(got.Store, ck.Store) {
		t.Fatal("store meta mismatch")
	}
	if len(got.Tables) != 1 || got.Tables[0].Name != "donate" || len(got.Tables[0].Columns) != 2 {
		t.Fatalf("tables mismatch: %+v", got.Tables)
	}
	if len(got.Contracts) != 1 || got.Contracts[0].Name != "pay" {
		t.Fatalf("contracts mismatch: %+v", got.Contracts)
	}
	if !reflect.DeepEqual(got.TableIdx, ck.TableIdx) {
		t.Fatalf("table idx mismatch: %v", got.TableIdx)
	}
	if !reflect.DeepEqual(got.Indexes, ck.Indexes) {
		t.Fatalf("indexes mismatch: %+v", got.Indexes)
	}
	if !reflect.DeepEqual(got.ALIs, ck.ALIs) {
		t.Fatalf("alis mismatch: %+v", got.ALIs)
	}
}

func TestDecodeRejectsTampering(t *testing.T) {
	s := buildChain(t, t.TempDir(), 3)
	defer s.Close()
	ck := mkCheckpoint(t, s)
	good := ck.Encode()

	if _, err := Decode(nil); err == nil {
		t.Fatal("empty payload must fail")
	}
	if _, err := Decode(good[:len(good)-1]); err == nil {
		t.Fatal("truncated payload must fail")
	}
	if _, err := Decode(append(append([]byte(nil), good...), 0)); err == nil {
		t.Fatal("trailing bytes must fail")
	}
	// Flip the anchor: the embedded tip header no longer hashes to it.
	bad := append([]byte(nil), good...)
	bad[16] ^= 0xFF // first anchor byte (after magic+version+height)
	if _, err := Decode(bad); err == nil {
		t.Fatal("anchor tamper must fail")
	}
}

func TestDirWriteLoadAndGC(t *testing.T) {
	dataDir := t.TempDir()
	s := buildChain(t, dataDir, 3)
	defer s.Close()
	d := NewDir(nil, dataDir)

	if ck, err := d.Load(); err != nil || ck != nil {
		t.Fatalf("Load on empty dir = %v, %v", ck, err)
	}

	ck := mkCheckpoint(t, s)
	if err := d.Write(ck); err != nil {
		t.Fatal(err)
	}
	got, err := d.Load()
	if err != nil || got == nil {
		t.Fatalf("Load = %v, %v", got, err)
	}
	if got.Height != ck.Height || got.Anchor != ck.Anchor {
		t.Fatalf("loaded pin mismatch: %+v", got)
	}

	// Three more writes at "later heights": only 2 .snap files survive.
	for h := uint64(4); h <= 6; h++ {
		c2 := *ck
		c2.Height = ck.Height // decode requires consistency; fake file names via height bump below
		// Reuse the same consistent checkpoint but bump its file name by
		// writing under a different height is not possible through the
		// public API, so just rewrite the same checkpoint; GC keeps the
		// file count bounded either way.
		if err := d.Write(&c2); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := os.ReadDir(d.Path())
	if err != nil {
		t.Fatal(err)
	}
	snaps := 0
	for _, e := range entries {
		if filepath.Ext(e.Name()) == ".snap" {
			snaps++
		}
		if filepath.Ext(e.Name()) == ".tmp" {
			t.Fatalf("stale temp file %s", e.Name())
		}
	}
	if snaps > keepCheckpoints {
		t.Fatalf("%d snap files retained, want <= %d", snaps, keepCheckpoints)
	}
}

func TestDirLoadCorruptFallsBack(t *testing.T) {
	dataDir := t.TempDir()
	s := buildChain(t, dataDir, 3)
	defer s.Close()
	d := NewDir(nil, dataDir)
	ck := mkCheckpoint(t, s)
	if err := d.Write(ck); err != nil {
		t.Fatal(err)
	}

	snap := filepath.Join(d.Path(), ckptFileName(ck.Height))
	blob, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	blob[len(blob)/2] ^= 0xFF
	if err := os.WriteFile(snap, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	if got, err := d.Load(); err != nil || got != nil {
		t.Fatalf("corrupt checkpoint: Load = %v, %v (want nil, nil)", got, err)
	}

	// Corrupt manifest: same silent fallback.
	mf := filepath.Join(d.Path(), manifestName)
	if err := os.WriteFile(mf, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if got, err := d.Load(); err != nil || got != nil {
		t.Fatalf("corrupt manifest: Load = %v, %v (want nil, nil)", got, err)
	}
}

// TestDirWriteCrashMatrix drives Dir.Write through every faultfs
// crash-point and asserts the directory always recovers to a valid
// checkpoint: either the previous one or the new one, never garbage.
func TestDirWriteCrashMatrix(t *testing.T) {
	// Rehearsal: count the mutating operations of one Write.
	setup := func(t *testing.T) (dataDir string, old, new_ *Checkpoint) {
		dataDir = t.TempDir()
		s := buildChain(t, dataDir, 5)
		defer s.Close()
		old = mkCheckpoint(t, s)
		m3, err := s.Meta(3)
		if err != nil {
			t.Fatal(err)
		}
		old = &Checkpoint{
			Height: 3, Anchor: m3.Headers[2].Hash(), LastTid: 3, LastTs: 3000, Store: m3,
			TableIdx: map[string][]uint32{},
		}
		new_ = mkCheckpoint(t, s)
		return dataDir, old, new_
	}

	dataDir, old, newCk := setup(t)
	d := NewDir(nil, dataDir)
	if err := d.Write(old); err != nil {
		t.Fatal(err)
	}
	rehearse := faultfs.New(faultfs.Options{OpsBeforeCrash: -1})
	if err := NewDir(rehearse, dataDir).Write(newCk); err != nil {
		t.Fatal(err)
	}
	total := rehearse.Mutations()
	if total < 6 { // 2×(create+write+sync+rename) at minimum
		t.Fatalf("implausible mutation count %d", total)
	}

	for k := 0; k < total; k++ {
		dataDir, old, newCk := setup(t)
		if err := NewDir(nil, dataDir).Write(old); err != nil {
			t.Fatal(err)
		}
		inj := faultfs.New(faultfs.Options{OpsBeforeCrash: k})
		err := NewDir(inj, dataDir).Write(newCk)
		if !inj.Crashed() {
			// Later crash-points can fall inside GC, after the write
			// itself committed; a nil error is fine there.
			_ = err
		}
		// "Reboot": a clean FS must load a valid checkpoint.
		got, err := NewDir(nil, dataDir).Load()
		if err != nil {
			t.Fatalf("crash at op %d: Load error %v", k, err)
		}
		if got == nil {
			t.Fatalf("crash at op %d: checkpoint lost entirely", k)
		}
		if got.Height != old.Height && got.Height != newCk.Height {
			t.Fatalf("crash at op %d: recovered height %d, want %d or %d",
				k, got.Height, old.Height, newCk.Height)
		}
		if got.Height == old.Height && got.Anchor != old.Anchor {
			t.Fatalf("crash at op %d: old checkpoint anchor mismatch", k)
		}
		if got.Height == newCk.Height && got.Anchor != newCk.Anchor {
			t.Fatalf("crash at op %d: new checkpoint anchor mismatch", k)
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode([]byte("not a checkpoint")); err == nil {
		t.Fatal("Decode must accept only checkpoint payloads")
	}
}

func TestRawPayloadRoundTrip(t *testing.T) {
	srcDir := t.TempDir()
	s := buildChain(t, srcDir, 3)
	defer s.Close()
	ck := mkCheckpoint(t, s)
	src := NewDir(nil, srcDir)
	if err := src.Write(ck); err != nil {
		t.Fatal(err)
	}
	m, payload, err := src.Raw()
	if err != nil || m == nil {
		t.Fatalf("Raw = %v, %v", m, err)
	}

	got, err := Decode(payload)
	if err != nil {
		t.Fatal(err)
	}
	if got.Height != ck.Height || got.Anchor != ck.Anchor {
		t.Fatalf("decoded pin mismatch: %+v", got)
	}
	if err := Diverges(got, ck); err != nil {
		t.Fatalf("decoded payload diverges from its source: %v", err)
	}
	dst := NewDir(nil, t.TempDir())
	if err := dst.Write(got); err != nil {
		t.Fatal(err)
	}
	re, err := dst.Load()
	if err != nil || re == nil || re.Height != ck.Height {
		t.Fatalf("reload after write = %v, %v", re, err)
	}
}

// TestDivergesFlagsChainFacts tampers each chain-derived fact of a
// decoded checkpoint and expects Diverges to flag it against the
// untampered reference, while node-local differences (user index
// state) pass.
func TestDivergesFlagsChainFacts(t *testing.T) {
	s := buildChain(t, t.TempDir(), 3)
	defer s.Close()
	ref := mkCheckpoint(t, s)

	fresh := func() *Checkpoint {
		c, err := Decode(ref.Encode())
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	if err := Diverges(fresh(), ref); err != nil {
		t.Fatalf("identical checkpoints diverge: %v", err)
	}

	// A peer with different node-local configuration is not divergent.
	local := fresh()
	local.Indexes = local.Indexes[:2] // drop the user index, keep system ones
	local.ALIs = nil
	if err := Diverges(local, ref); err != nil {
		t.Fatalf("node-local index differences flagged: %v", err)
	}

	for name, tamper := range map[string]func(*Checkpoint){
		"lastTid":     func(c *Checkpoint) { c.LastTid++ },
		"lastTs":      func(c *Checkpoint) { c.LastTs++ },
		"bodyLen":     func(c *Checkpoint) { c.Store.Lens[0]++ },
		"txOffs":      func(c *Checkpoint) { c.Store.TxOffs[0] = append(c.Store.TxOffs[0], 7) },
		"table":       func(c *Checkpoint) { c.Tables = nil },
		"contract":    func(c *Checkpoint) { c.Contracts = nil },
		"tableIdx":    func(c *Checkpoint) { c.TableIdx["phantom"] = []uint32{0} },
		"tableIdxIds": func(c *Checkpoint) { c.TableIdx["donate"][0] = 2 },
		"sysIndex": func(c *Checkpoint) {
			c.Indexes[0].Blocks[0][0].Pos++
		},
	} {
		c := fresh()
		tamper(c)
		if err := Diverges(c, ref); err == nil {
			t.Errorf("%s tamper not flagged", name)
		}
	}
}

func TestManifestAlone(t *testing.T) {
	dir := t.TempDir()
	d := NewDir(nil, dir)
	if m, err := d.Manifest(); err != nil || m != nil {
		t.Fatalf("Manifest on empty dir = %v, %v", m, err)
	}
	s := buildChain(t, dir, 2)
	defer s.Close()
	ck := mkCheckpoint(t, s)
	if err := d.Write(ck); err != nil {
		t.Fatal(err)
	}
	m, err := d.Manifest()
	if err != nil || m == nil {
		t.Fatalf("Manifest = %v, %v", m, err)
	}
	if m.Height != ck.Height || m.Anchor != ck.Anchor {
		t.Fatalf("manifest pin mismatch: %+v", m)
	}
}
